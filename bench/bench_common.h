// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>

#include "gen/taskgen.h"
#include "opt/policy_assignment.h"

namespace ftes::bench {

/// One experimental instance drawn with the paper's parameter ranges
/// (Section 6: 20-100 processes, 2-6 nodes, k = 3-7).
struct Instance {
  Application app;
  Architecture arch;
  int k = 3;
  std::uint64_t seed = 0;
};

inline Instance make_instance(int processes, std::uint64_t seed) {
  TaskGenParams params;
  params.process_count = processes;
  Rng seeder(seed);
  params.node_count = static_cast<int>(seeder.uniform_int(2, 6));
  Instance inst;
  inst.k = static_cast<int>(seeder.uniform_int(3, 7));
  inst.seed = seed;
  inst.app = generate_application(params, seeder);
  inst.arch = generate_architecture(params);
  return inst;
}

/// Shared tabu budget for all approaches (fairness of Fig. 7).
inline OptimizeOptions bench_options(std::uint64_t seed) {
  OptimizeOptions opts;
  opts.iterations = 80;
  opts.neighborhood = 12;
  opts.seed = seed;
  return opts;
}

}  // namespace ftes::bench
