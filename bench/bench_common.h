// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_report.h"
#include "gen/taskgen.h"
#include "opt/policy_assignment.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftes::bench {

/// One experimental instance drawn with the paper's parameter ranges
/// (Section 6: 20-100 processes, 2-6 nodes, k = 3-7).
struct Instance {
  Application app;
  Architecture arch;
  int k = 3;
  std::uint64_t seed = 0;
};

inline Instance make_instance(int processes, std::uint64_t seed) {
  TaskGenParams params;
  params.process_count = processes;
  Rng seeder(seed);
  params.node_count = static_cast<int>(seeder.uniform_int(2, 6));
  Instance inst;
  inst.k = static_cast<int>(seeder.uniform_int(3, 7));
  inst.seed = seed;
  inst.app = generate_application(params, seeder);
  inst.arch = generate_architecture(params);
  return inst;
}

/// Shared tabu budget for all approaches (fairness of Fig. 7).
inline OptimizeOptions bench_options(std::uint64_t seed) {
  OptimizeOptions opts;
  opts.iterations = 80;
  opts.neighborhood = 12;
  opts.seed = seed;
  return opts;
}

/// Command line shared by the sweep benches:
///   <bench> [seeds_per_size] [--threads n] [--bench-json <file>]
/// Threads parallelize across instances (the per-instance optimizers stay
/// serial so per-seed results are identical for every thread count).
/// --bench-json additionally writes a machine-readable BenchReport
/// (bench_report.h) to the given path.
struct SweepConfig {
  int seeds_per_size = 5;
  int threads = 1;
  const char* bench_json = nullptr;
};

inline SweepConfig parse_sweep_args(int argc, char** argv) {
  SweepConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --threads needs a value\n", argv[0]);
        std::exit(1);
      }
      cfg.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--bench-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --bench-json needs a path\n", argv[0]);
        std::exit(1);
      }
      cfg.bench_json = argv[++i];
    } else if (argv[i][0] >= '0' && argv[i][0] <= '9') {
      cfg.seeds_per_size = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [seeds_per_size] [--threads n] "
                   "[--bench-json <file>]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  return cfg;
}

/// Evaluates body(seed_index) for every seed of one sweep size, `threads`
/// at a time, collecting results in seed order (deterministic output for
/// any thread count).  `body` must be pure in everything but its slot.
template <class Result, class Body>
std::vector<Result> sweep_seeds(int seeds_per_size, int threads,
                                const Body& body) {
  std::vector<Result> results(static_cast<std::size_t>(seeds_per_size));
  parallel_for(results.size(), resolve_threads(threads),
               [&](std::size_t s) { results[s] = body(static_cast<int>(s)); });
  return results;
}

using ftes::Stopwatch;  // wall-clock helper for the sweeps' summary lines

/// Appends the sweeps' shared "total" BenchReport entry: throughput plus
/// the three cache-hit rates of the incremental evaluator.  One helper so
/// the fig7/fig8 artifact schemas cannot drift apart.
inline void add_total_entry(BenchReport& report, const EvalStats& total,
                            double seconds) {
  BenchReport::Entry& entry = report.add("total");
  entry.wall_seconds = seconds;
  entry.metric("evaluations", static_cast<double>(total.evaluations));
  entry.metric("evaluations_per_sec",
               seconds > 0
                   ? static_cast<double>(total.evaluations) / seconds
                   : 0.0);
  entry.metric("dp_cache_hit_rate", total.dp_reuse_fraction());
  entry.metric("sched_resume_rate", total.ls_resume_fraction());
  entry.metric("rebase_cache_hit_rate",
               total.rebases > 0
                   ? static_cast<double>(total.rebase_cache_hits) /
                         static_cast<double>(total.rebases)
                   : 0.0);
  entry.metric("heap_pops", static_cast<double>(total.heap_pops));
  // Accepted-move rebases: logs produced by record-while-resuming vs
  // schedules still built from scratch (CI asserts these exist and that
  // the fig7 sweep actually resumes some).
  entry.metric("rebase_log_recorded",
               static_cast<double>(total.rebase_log_recorded));
  entry.metric("rebase_log_events_resumed",
               static_cast<double>(total.rebase_log_events_resumed));
  entry.metric("rebase_full_builds",
               static_cast<double>(total.rebase_full_builds));
  // Copy-on-write snapshot storage: prefix snapshots adopted by reference
  // vs bytes materialized (CI asserts the fig7 sweep shares some and that
  // per-rebase bytes grow sublinearly with problem size).
  entry.metric("rebase_batched", static_cast<double>(total.rebase_batched));
  entry.metric("rebase_interval_mismatch",
               static_cast<double>(total.rebase_interval_mismatch));
  entry.metric("snapshot_refs_shared",
               static_cast<double>(total.snapshot_refs_shared));
  entry.metric("snapshot_bytes_copied",
               static_cast<double>(total.snapshot_bytes_copied));
  entry.metric("snapshot_bytes_shared",
               static_cast<double>(total.snapshot_bytes_shared));
}

}  // namespace ftes::bench
