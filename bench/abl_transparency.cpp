// Ablation: the transparency/performance trade-off of Section 3.3 ([14]).
//
// For a fixed set of small applications, an increasing fraction of
// processes and messages is declared frozen; we report the scenario-exact
// worst-case schedule length (WCSL) and the schedule-table size produced by
// the conditional scheduler.  Expectation: WCSL grows monotonically-ish
// with the frozen fraction while the table size shrinks -- transparency
// costs performance but buys debugability and smaller tables.
#include <cstdio>
#include <vector>

#include "core/metrics.h"
#include "gen/taskgen.h"
#include "opt/policy_assignment.h"
#include "sched/cond_scheduler.h"

using namespace ftes;

int main() {
  std::printf("=== Ablation: transparency vs performance and table size ===\n\n");
  std::printf("  frozen%%   WCSL(avg)   table entries(avg)\n");

  const std::vector<double> fractions{0.0, 0.25, 0.5, 0.75, 1.0};
  const int instances = 4;
  for (double fraction : fractions) {
    std::vector<double> wcsls, entries;
    for (int s = 0; s < instances; ++s) {
      TaskGenParams params;
      params.process_count = 8;
      params.node_count = 2;
      params.frozen_process_fraction = fraction;
      params.frozen_message_fraction = fraction;
      Rng rng(777 + static_cast<std::uint64_t>(s));
      const Application app = generate_application(params, rng);
      const Architecture arch = generate_architecture(params);
      const FaultModel fm{2};
      const PolicyAssignment pa = greedy_initial(
          app, arch, fm, PolicySpace::kReexecutionOnly, 1);
      const CondScheduleResult r = conditional_schedule(app, arch, pa, fm);
      wcsls.push_back(static_cast<double>(r.wcsl));
      entries.push_back(static_cast<double>(r.tables.total_entries()));
    }
    std::printf("  %5.0f%%   %9.1f   %12.1f\n", fraction * 100, mean(wcsls),
                mean(entries));
  }
  std::printf("\n(frozen fraction up -> longer worst case, smaller tables)\n");
  return 0;
}
