// Ablation for the TDMA bus access optimization ([8]): worst-case schedule
// length before and after tuning slot order and lengths for the mapped
// application.
#include <cstdio>
#include <vector>

#include "core/metrics.h"
#include "gen/taskgen.h"
#include "opt/bus_opt.h"
#include "opt/policy_assignment.h"

using namespace ftes;

int main() {
  std::printf("=== Ablation: TDMA bus access optimization ===\n\n");
  std::printf("  nodes   WCSL before   WCSL after   gain%%\n");

  for (int nodes : {2, 3, 4, 5}) {
    std::vector<double> before, after, gains;
    for (int s = 0; s < 4; ++s) {
      TaskGenParams params;
      params.process_count = 20;
      params.node_count = nodes;
      params.slot_length = 12;  // deliberately ample slots: room to tune
      Rng rng(6000 + static_cast<std::uint64_t>(s));
      const Application app = generate_application(params, rng);
      const Architecture arch = generate_architecture(params);
      const FaultModel fm{3};
      const PolicyAssignment pa =
          greedy_initial(app, arch, fm, PolicySpace::kReexecutionOnly, 1);
      BusOptOptions opts;
      opts.iterations = 120;
      opts.seed = 6000 + static_cast<std::uint64_t>(s);
      const BusOptResult r = optimize_bus_access(app, arch, pa, fm, opts);
      before.push_back(static_cast<double>(r.wcsl_before));
      after.push_back(static_cast<double>(r.wcsl_after));
      gains.push_back(100.0 *
                      static_cast<double>(r.wcsl_before - r.wcsl_after) /
                      static_cast<double>(r.wcsl_before));
    }
    std::printf("  %5d   %11.1f   %10.1f   %5.1f\n", nodes, mean(before),
                mean(after), mean(gains));
  }
  return 0;
}
