// Ablation: the two ends and the middle of the transparency spectrum.
//
//   conditional, nothing frozen  -- best worst-case performance, largest
//                                   schedule tables (most scenarios
//                                   distinguished);
//   conditional, designer frozen -- the paper's regime (Section 3.3);
//   root schedule                -- everything frozen: one start per
//                                   activation, maximal fault containment,
//                                   longest worst case.
#include <cstdio>
#include <vector>

#include "core/metrics.h"
#include "gen/taskgen.h"
#include "opt/policy_assignment.h"
#include "sched/cond_scheduler.h"
#include "sched/root_schedule.h"

using namespace ftes;

int main() {
  std::printf("=== Ablation: conditional tables vs root schedule ===\n\n");
  std::printf("  variant                  WCSL(avg)  entries(avg)\n");

  const int instances = 4;
  std::vector<double> wcsl_open, wcsl_frozen, wcsl_root;
  std::vector<double> size_open, size_frozen, size_root;
  for (int s = 0; s < instances; ++s) {
    TaskGenParams params;
    params.process_count = 8;
    params.node_count = 2;
    params.frozen_process_fraction = 0.4;
    params.frozen_message_fraction = 0.4;
    Rng rng(4242 + static_cast<std::uint64_t>(s));
    const Application app = generate_application(params, rng);
    const Architecture arch = generate_architecture(params);
    const FaultModel fm{2};
    const PolicyAssignment pa =
        greedy_initial(app, arch, fm, PolicySpace::kReexecutionOnly, 1);

    CondScheduleOptions open_opts;
    open_opts.respect_transparency = false;
    const CondScheduleResult open =
        conditional_schedule(app, arch, pa, fm, open_opts);
    const CondScheduleResult frozen = conditional_schedule(app, arch, pa, fm);
    const RootSchedule root = build_root_schedule(app, arch, pa, fm);

    wcsl_open.push_back(static_cast<double>(open.wcsl));
    wcsl_frozen.push_back(static_cast<double>(frozen.wcsl));
    wcsl_root.push_back(static_cast<double>(root.wcsl));
    size_open.push_back(static_cast<double>(open.tables.total_entries()));
    size_frozen.push_back(static_cast<double>(frozen.tables.total_entries()));
    size_root.push_back(static_cast<double>(root.total_entries()));
  }
  std::printf("  conditional, 0%% frozen   %9.1f  %9.1f\n", mean(wcsl_open),
              mean(size_open));
  std::printf("  conditional, 40%% frozen  %9.1f  %9.1f\n", mean(wcsl_frozen),
              mean(size_frozen));
  std::printf("  root (100%% frozen)       %9.1f  %9.1f\n", mean(wcsl_root),
              mean(size_root));
  std::printf("\n(transparency: shorter tables, longer worst case)\n");
  return 0;
}
