// Microbenches for the library's hot paths: the WCSL DP (called tens of
// thousands of times by the optimizers), incremental vs. full per-move
// evaluation, the list scheduler, the FT-CPG construction, the conditional
// scheduler, the recovery algebra and the task-graph generator.  Runs on
// Google Benchmark when available, else on the plain-chrono fallback of
// plain_bench.h.
#include "plain_bench.h"

#include <cstring>

#include "bench_report.h"
#include "fault/recovery.h"
#include "ftcpg/builder.h"
#include "gen/taskgen.h"
#include "opt/eval_context.h"
#include "opt/policy_assignment.h"
#include "reference_list_schedule.h"
#include "sched/cond_scheduler.h"
#include "sched/wcsl.h"

namespace {

using namespace ftes;

struct Setup {
  Application app;
  Architecture arch;
  PolicyAssignment assignment;
  FaultModel model;
};

Setup make_setup(int processes, int nodes, int k) {
  TaskGenParams params;
  params.process_count = processes;
  params.node_count = nodes;
  Rng rng(1234);
  Setup s{generate_application(params, rng), generate_architecture(params),
          PolicyAssignment{}, FaultModel{k}};
  s.assignment = greedy_initial(s.app, s.arch, s.model,
                                PolicySpace::kCheckpointingOnly, 8);
  return s;
}

void BM_RecoveryAlgebra(benchmark::State& state) {
  const RecoveryParams p{60, 10, 10, 5};
  for (auto _ : state) {
    for (int n = 1; n <= 8; ++n) {
      benchmark::DoNotOptimize(checkpointed_exec_time(p, n, 3));
    }
  }
}
BENCHMARK(BM_RecoveryAlgebra);

void BM_LocalOptCheckpoints(benchmark::State& state) {
  const RecoveryParams p{60, 10, 10, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_checkpoints_local(p, 4, 64));
  }
}
BENCHMARK(BM_LocalOptCheckpoints);

void BM_ListSchedule(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(s.app, s.arch, s.assignment));
  }
}
BENCHMARK(BM_ListSchedule)->Arg(20)->Arg(50)->Arg(100);

void BM_WcslDp(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 5);
  const ListSchedule sched = list_schedule(s.app, s.arch, s.assignment);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        worst_case_schedule_length(s.app, s.arch, s.assignment, s.model, sched));
  }
}
BENCHMARK(BM_WcslDp)->Arg(20)->Arg(50)->Arg(100);

void BM_EvaluateWcsl(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_wcsl(s.app, s.arch, s.assignment, s.model));
  }
}
BENCHMARK(BM_EvaluateWcsl)->Arg(20)->Arg(50)->Arg(100);

// The checkpoint-move target: a DAG sink (args == 1, the evaluator's
// favorable case -- nothing downstream to dirty) or the first source
// (args == 0, the unfavorable case).  The tabu mix samples in between.
ProcessId move_target(const Setup& s, bool sink) {
  const std::vector<ProcessId> order = s.app.topological_order();
  return sink ? order.back() : order.front();
}

// A per-move evaluation the way the tabu search used to do it: copy the
// whole assignment, flip one checkpoint count, evaluate from scratch.
void BM_EvalMoveFullCopy(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 5);
  const ProcessId pid = move_target(s, state.range(1) != 0);
  int flip = 0;
  for (auto _ : state) {
    PolicyAssignment candidate = s.assignment;
    CopyPlan& cp = candidate.plan(pid).copies[0];
    cp.checkpoints = 1 + (cp.checkpoints + (flip ^= 1)) % 8;
    benchmark::DoNotOptimize(
        assignment_cost(s.app, s.arch, candidate, s.model));
  }
}
BENCHMARK(BM_EvalMoveFullCopy)->Args({50, 0})->Args({50, 1})->Args({100, 1});

// The same moves through the incremental EvalContext: one plan copied, DP
// rows outside the affected DAG region reused from the base cache.
void BM_EvalMoveIncremental(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 5);
  const ProcessId pid = move_target(s, state.range(1) != 0);
  EvalContext eval(s.app, s.arch, s.model);
  eval.rebase(s.assignment);
  int flip = 0;
  for (auto _ : state) {
    ProcessPlan plan = s.assignment.plan(pid);
    CopyPlan& cp = plan.copies[0];
    cp.checkpoints = 1 + (cp.checkpoints + (flip ^= 1)) % 8;
    benchmark::DoNotOptimize(eval.evaluate_move(pid, plan).cost);
  }
}
BENCHMARK(BM_EvalMoveIncremental)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({100, 1});

// ---------------------------------------------------------------------------
// Incremental list scheduling: a candidate move's schedule rebuilt from
// scratch vs resumed from the base's checkpoint log.  arg0 = processes,
// arg1 = 1 for a DAG-sink move (long resumable prefix), 0 for a source
// move (resume degenerates to a full rebuild -- the honest worst case).
// ---------------------------------------------------------------------------

struct MoveSetup {
  Setup s;
  ScheduleCheckpointLog log;
  ProcessId pid;
  PolicyAssignment candidates[2];
};

MoveSetup make_move_setup(int processes, bool sink) {
  MoveSetup ms{make_setup(processes, 4, 3), ScheduleCheckpointLog{},
               ProcessId{}, {}};
  (void)list_schedule(ms.s.app, ms.s.arch, ms.s.assignment, ms.log);
  ms.pid = move_target(ms.s, sink);
  for (int flip = 0; flip < 2; ++flip) {
    PolicyAssignment candidate = ms.s.assignment;
    CopyPlan& cp = candidate.plan(ms.pid).copies[0];
    cp.checkpoints = 1 + (cp.checkpoints + flip) % 8;
    ms.candidates[flip] = std::move(candidate);
  }
  return ms;
}

void BM_MoveScheduleFull(benchmark::State& state) {
  const MoveSetup ms =
      make_move_setup(static_cast<int>(state.range(0)), state.range(1) != 0);
  int flip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        list_schedule(ms.s.app, ms.s.arch, ms.candidates[flip ^= 1]));
  }
}
BENCHMARK(BM_MoveScheduleFull)->Args({50, 1})->Args({100, 1})->Args({100, 0});

void BM_MoveScheduleResume(benchmark::State& state) {
  const MoveSetup ms =
      make_move_setup(static_cast<int>(state.range(0)), state.range(1) != 0);
  int flip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule_resume(ms.s.app, ms.s.arch,
                                                  ms.s.assignment, ms.log,
                                                  ms.candidates[flip ^= 1],
                                                  ms.pid));
  }
}
BENCHMARK(BM_MoveScheduleResume)
    ->Args({50, 1})
    ->Args({100, 1})
    ->Args({100, 0});

// ---------------------------------------------------------------------------
// Accepted-move rebases: rebuilding the new base's schedule *and* its
// checkpoint log from scratch (what every rebase paid before
// record-while-resuming) vs replaying the accepted move from the old log
// while recording the new one.  Same sink/source split as the move benches.
// ---------------------------------------------------------------------------

void BM_RebaseLogFullRebuild(benchmark::State& state) {
  const MoveSetup ms =
      make_move_setup(static_cast<int>(state.range(0)), state.range(1) != 0);
  ScheduleCheckpointLog fresh;
  int flip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        list_schedule(ms.s.app, ms.s.arch, ms.candidates[flip ^= 1], fresh));
  }
}
BENCHMARK(BM_RebaseLogFullRebuild)
    ->Args({50, 1})
    ->Args({100, 1})
    ->Args({100, 0});

void BM_RebaseLogRerecord(benchmark::State& state) {
  const MoveSetup ms =
      make_move_setup(static_cast<int>(state.range(0)), state.range(1) != 0);
  ScheduleCheckpointLog fresh;
  int flip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule_resume(
        ms.s.app, ms.s.arch, ms.s.assignment, ms.log, ms.candidates[flip ^= 1],
        ms.pid, nullptr, &fresh));
  }
}
BENCHMARK(BM_RebaseLogRerecord)
    ->Args({50, 1})
    ->Args({100, 1})
    ->Args({100, 0});

// Copy-on-write snapshot sharing: the same record-while-resuming rebase as
// BM_RebaseLogRerecord, with its prefix-snapshot traffic surfaced as
// deterministic per-rebase counters -- prefix snapshots adopted by
// reference (zero bytes) vs bytes actually materialized (the changed
// suffix).  Across the 50 -> 100 sizes, bytes_copied_per_rebase growing
// slower than the schedule's event count is the sublinearity the CI ratio
// check on the fig7 sweep asserts at full scale.
void BM_RebaseSnapshotShare(benchmark::State& state) {
  const MoveSetup ms =
      make_move_setup(static_cast<int>(state.range(0)), state.range(1) != 0);
  ScheduleCheckpointLog fresh;
  int flip = 0;
  double bytes = 0.0;
  double shared = 0.0;
  double rebases = 0.0;
  for (auto _ : state) {
    ListScheduleResumeStats rstats;
    benchmark::DoNotOptimize(list_schedule_resume(
        ms.s.app, ms.s.arch, ms.s.assignment, ms.log, ms.candidates[flip ^= 1],
        ms.pid, &rstats, &fresh));
    bytes += static_cast<double>(rstats.snapshot_bytes_copied);
    shared += static_cast<double>(rstats.snapshots_shared);
    rebases += 1.0;
  }
  if (rebases > 0) {
    state.counters["bytes_copied_per_rebase"] = bytes / rebases;
    state.counters["refs_shared_per_rebase"] = shared / rebases;
  }
}
BENCHMARK(BM_RebaseSnapshotShare)
    ->Args({50, 1})
    ->Args({100, 1})
    ->Args({100, 0});

// ---------------------------------------------------------------------------
// Ready-set management: the production heap-based scheduler vs the
// historical O(V^2) linear ready-scan (kept here as a reference so the
// asymptotic win stays measurable).
// ---------------------------------------------------------------------------

void BM_ReadySetLinearScan(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ftes::testing::reference_list_schedule(s.app, s.arch, s.assignment));
  }
}
BENCHMARK(BM_ReadySetLinearScan)->Arg(50)->Arg(100);

void BM_ReadySetHeap(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(s.app, s.arch, s.assignment));
  }
}
BENCHMARK(BM_ReadySetHeap)->Arg(50)->Arg(100);

void BM_FtcpgBuild(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 2,
                             static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_ftcpg(s.app, s.assignment, s.model));
  }
}
BENCHMARK(BM_FtcpgBuild)->Args({6, 1})->Args({6, 2})->Args({10, 2});

void BM_ConditionalSchedule(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conditional_schedule(s.app, s.arch, s.assignment, s.model));
  }
}
BENCHMARK(BM_ConditionalSchedule)->Arg(6)->Arg(8);

void BM_TaskGen(benchmark::State& state) {
  TaskGenParams params;
  params.process_count = static_cast<int>(state.range(0));
  params.node_count = 4;
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_application(params, rng));
  }
}
BENCHMARK(BM_TaskGen)->Arg(20)->Arg(100);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): both harness paths understand
// `--bench-json <file>` and write a BenchReport (bench_report.h) with one
// entry per benchmark run (nanoseconds/op as the metric).
#if defined(FTES_HAVE_GOOGLE_BENCHMARK)

namespace {

/// Console output as usual, plus capture of every run into the report.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(ftes::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      ftes::bench::BenchReport::Entry& e = report_->add(run.benchmark_name());
      const double ns = run.GetAdjustedRealTime();
      // wall_seconds is the timed loop's elapsed time (docs/CLI.md);
      // per-op cost lives in the ns_per_op metric.
      e.wall_seconds = ns * static_cast<double>(run.iterations) * 1e-9;
      e.metric("ns_per_op", ns);
      e.metric("iterations", static_cast<double>(run.iterations));
      for (const auto& [counter_name, counter] : run.counters) {
        e.metric(counter_name, static_cast<double>(counter));
      }
    }
  }

 private:
  ftes::bench::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  ftes::bench::BenchReport report;
  report.bench = "micro_benchmarks";
  JsonCapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json_path) report.write(json_path);
  return 0;
}

#else  // plain-chrono fallback

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  ftes::bench::BenchReport report;
  report.bench = "micro_benchmarks";
  benchmark::RunAllPlainBenchmarks(
      [&](const std::string& name, double ns, std::int64_t iters,
          const std::map<std::string, double>& counters) {
        ftes::bench::BenchReport::Entry& e = report.add(name);
        e.wall_seconds = ns * static_cast<double>(iters) * 1e-9;
        e.metric("ns_per_op", ns);
        e.metric("iterations", static_cast<double>(iters));
        for (const auto& [counter_name, value] : counters) {
          e.metric(counter_name, value);
        }
      });
  if (json_path) report.write(json_path);
  return 0;
}

#endif  // FTES_HAVE_GOOGLE_BENCHMARK
