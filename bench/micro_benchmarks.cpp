// Microbenches for the library's hot paths: the WCSL DP (called tens of
// thousands of times by the optimizers), incremental vs. full per-move
// evaluation, the list scheduler, the FT-CPG construction, the conditional
// scheduler, the recovery algebra and the task-graph generator.  Runs on
// Google Benchmark when available, else on the plain-chrono fallback of
// plain_bench.h.
#include "plain_bench.h"

#include "fault/recovery.h"
#include "ftcpg/builder.h"
#include "gen/taskgen.h"
#include "opt/eval_context.h"
#include "opt/policy_assignment.h"
#include "sched/cond_scheduler.h"
#include "sched/wcsl.h"

namespace {

using namespace ftes;

struct Setup {
  Application app;
  Architecture arch;
  PolicyAssignment assignment;
  FaultModel model;
};

Setup make_setup(int processes, int nodes, int k) {
  TaskGenParams params;
  params.process_count = processes;
  params.node_count = nodes;
  Rng rng(1234);
  Setup s{generate_application(params, rng), generate_architecture(params),
          PolicyAssignment{}, FaultModel{k}};
  s.assignment = greedy_initial(s.app, s.arch, s.model,
                                PolicySpace::kCheckpointingOnly, 8);
  return s;
}

void BM_RecoveryAlgebra(benchmark::State& state) {
  const RecoveryParams p{60, 10, 10, 5};
  for (auto _ : state) {
    for (int n = 1; n <= 8; ++n) {
      benchmark::DoNotOptimize(checkpointed_exec_time(p, n, 3));
    }
  }
}
BENCHMARK(BM_RecoveryAlgebra);

void BM_LocalOptCheckpoints(benchmark::State& state) {
  const RecoveryParams p{60, 10, 10, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_checkpoints_local(p, 4, 64));
  }
}
BENCHMARK(BM_LocalOptCheckpoints);

void BM_ListSchedule(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(s.app, s.arch, s.assignment));
  }
}
BENCHMARK(BM_ListSchedule)->Arg(20)->Arg(50)->Arg(100);

void BM_WcslDp(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 5);
  const ListSchedule sched = list_schedule(s.app, s.arch, s.assignment);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        worst_case_schedule_length(s.app, s.arch, s.assignment, s.model, sched));
  }
}
BENCHMARK(BM_WcslDp)->Arg(20)->Arg(50)->Arg(100);

void BM_EvaluateWcsl(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_wcsl(s.app, s.arch, s.assignment, s.model));
  }
}
BENCHMARK(BM_EvaluateWcsl)->Arg(20)->Arg(50)->Arg(100);

// The checkpoint-move target: a DAG sink (args == 1, the evaluator's
// favorable case -- nothing downstream to dirty) or the first source
// (args == 0, the unfavorable case).  The tabu mix samples in between.
ProcessId move_target(const Setup& s, bool sink) {
  const std::vector<ProcessId> order = s.app.topological_order();
  return sink ? order.back() : order.front();
}

// A per-move evaluation the way the tabu search used to do it: copy the
// whole assignment, flip one checkpoint count, evaluate from scratch.
void BM_EvalMoveFullCopy(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 5);
  const ProcessId pid = move_target(s, state.range(1) != 0);
  int flip = 0;
  for (auto _ : state) {
    PolicyAssignment candidate = s.assignment;
    CopyPlan& cp = candidate.plan(pid).copies[0];
    cp.checkpoints = 1 + (cp.checkpoints + (flip ^= 1)) % 8;
    benchmark::DoNotOptimize(
        assignment_cost(s.app, s.arch, candidate, s.model));
  }
}
BENCHMARK(BM_EvalMoveFullCopy)->Args({50, 0})->Args({50, 1})->Args({100, 1});

// The same moves through the incremental EvalContext: one plan copied, DP
// rows outside the affected DAG region reused from the base cache.
void BM_EvalMoveIncremental(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 4, 5);
  const ProcessId pid = move_target(s, state.range(1) != 0);
  EvalContext eval(s.app, s.arch, s.model);
  eval.rebase(s.assignment);
  int flip = 0;
  for (auto _ : state) {
    ProcessPlan plan = s.assignment.plan(pid);
    CopyPlan& cp = plan.copies[0];
    cp.checkpoints = 1 + (cp.checkpoints + (flip ^= 1)) % 8;
    benchmark::DoNotOptimize(eval.evaluate_move(pid, plan).cost);
  }
}
BENCHMARK(BM_EvalMoveIncremental)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({100, 1});

void BM_FtcpgBuild(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 2,
                             static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_ftcpg(s.app, s.assignment, s.model));
  }
}
BENCHMARK(BM_FtcpgBuild)->Args({6, 1})->Args({6, 2})->Args({10, 2});

void BM_ConditionalSchedule(benchmark::State& state) {
  const Setup s = make_setup(static_cast<int>(state.range(0)), 2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conditional_schedule(s.app, s.arch, s.assignment, s.model));
  }
}
BENCHMARK(BM_ConditionalSchedule)->Arg(6)->Arg(8);

void BM_TaskGen(benchmark::State& state) {
  TaskGenParams params;
  params.process_count = static_cast<int>(state.range(0));
  params.node_count = 4;
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_application(params, rng));
  }
}
BENCHMARK(BM_TaskGen)->Arg(20)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
