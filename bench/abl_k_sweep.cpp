// Ablation: fault tolerance overhead as a function of the fault bound k,
// per policy family.  The paper fixes k in [3,7]; this sweep shows how each
// policy's FTO scales with k (re-execution linearly through time
// redundancy, replication through resource pressure, the optimized mix
// tracking the lower envelope).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/metrics.h"
#include "opt/baselines.h"

using namespace ftes;
using namespace ftes::bench;

int main() {
  std::printf("=== Ablation: FTO vs fault bound k ===\n\n");
  std::printf("  k    FTO_MXR   FTO_MX    FTO_MR\n");

  const int instances = 4;
  for (int k = 1; k <= 7; ++k) {
    std::vector<double> mxr, mx, mr;
    for (int s = 0; s < instances; ++s) {
      TaskGenParams params;
      params.process_count = 25;
      params.node_count = 4;
      Rng rng(900 + static_cast<std::uint64_t>(s));
      const Application app = generate_application(params, rng);
      const Architecture arch = generate_architecture(params);
      const FaultModel fm{k};
      const OptimizeOptions opts = bench_options(static_cast<std::uint64_t>(k * 100 + s));
      const Time nft = non_ft_reference(app, arch, opts);
      mxr.push_back(fto_percent(run_mxr(app, arch, fm, opts).wcsl, nft));
      mx.push_back(fto_percent(run_mx(app, arch, fm, opts).wcsl, nft));
      mr.push_back(fto_percent(run_mr(app, arch, fm, opts).wcsl, nft));
    }
    std::printf("  %d   %7.1f   %7.1f   %7.1f\n", k, mean(mxr), mean(mx),
                mean(mr));
  }
  return 0;
}
