// Micro-benchmark harness selector: uses Google Benchmark when the build
// found it (FTES_HAVE_GOOGLE_BENCHMARK), otherwise provides a small
// plain-chrono stand-in for the subset of its API micro_benchmarks.cpp
// uses (State iteration with `for (auto _ : state)`, state.range(i),
// DoNotOptimize, BENCHMARK(fn)->Arg/Args chains, BENCHMARK_MAIN).  The
// fallback keeps perf visibility on machines without the library: numbers
// are comparable run-to-run on one machine, not across harnesses.
#pragma once

#if defined(FTES_HAVE_GOOGLE_BENCHMARK)

#include <benchmark/benchmark.h>

#else

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

class State {
 public:
  State(std::vector<std::int64_t> args, std::int64_t max_iterations)
      : args_(std::move(args)), max_iterations_(max_iterations) {}

  [[nodiscard]] std::int64_t range(std::size_t i = 0) const {
    return args_.at(i);
  }
  [[nodiscard]] std::int64_t iterations() const { return max_iterations_; }
  /// Wall-clock of the timed loop (valid after the loop completed).
  [[nodiscard]] double seconds() const { return elapsed_; }

  /// User counters, mirroring Google Benchmark's `state.counters["x"]`
  /// (reported alongside time/op and forwarded to --bench-json).
  std::map<std::string, double> counters;

  /// Loop variable of `for (auto _ : state)`; the user-declared destructor
  /// keeps -Wunused-variable quiet about the intentionally unused binding.
  struct IterationMarker {
    ~IterationMarker() {}
  };
  struct Iterator {
    State* state;
    bool operator!=(const Iterator&) { return state->keep_running(); }
    void operator++() {}
    IterationMarker operator*() const { return IterationMarker{}; }
  };
  Iterator begin() {
    remaining_ = max_iterations_;
    started_ = Clock::now();
    return Iterator{this};
  }
  Iterator end() { return Iterator{this}; }

 private:
  using Clock = std::chrono::steady_clock;

  bool keep_running() {
    if (remaining_-- > 0) return true;
    elapsed_ = std::chrono::duration<double>(Clock::now() - started_).count();
    return false;
  }

  std::vector<std::int64_t> args_;
  std::int64_t max_iterations_ = 1;
  std::int64_t remaining_ = 0;
  double elapsed_ = 0.0;
  Clock::time_point started_;
};

template <class T>
inline void DoNotOptimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile const void* sink = &value;
  (void)sink;
#endif
}

struct Benchmark {
  std::string name;
  void (*fn)(State&) = nullptr;
  std::vector<std::vector<std::int64_t>> runs;

  Benchmark* Arg(std::int64_t a) {
    runs.push_back({a});
    return this;
  }
  Benchmark* Args(std::vector<std::int64_t> a) {
    runs.push_back(std::move(a));
    return this;
  }
};

inline std::vector<Benchmark*>& registry() {
  static std::vector<Benchmark*> benchmarks;
  return benchmarks;
}

inline Benchmark* RegisterPlainBenchmark(const char* name, void (*fn)(State&)) {
  auto* b = new Benchmark{name, fn, {}};
  registry().push_back(b);
  return b;
}

/// Runs every registered benchmark; `record(label, ns_per_op, iterations,
/// counters)` is additionally invoked per run when provided (the
/// --bench-json hook).
inline void RunAllPlainBenchmarks(
    const std::function<void(const std::string&, double, std::int64_t,
                             const std::map<std::string, double>&)>&
        record = {}) {
  std::printf("plain-chrono micro-benchmark fallback "
              "(Google Benchmark not found at configure time)\n");
  std::printf("%-44s %14s %12s\n", "benchmark", "time/op", "iterations");
  for (Benchmark* b : registry()) {
    std::vector<std::vector<std::int64_t>> runs = b->runs;
    if (runs.empty()) runs.push_back({});
    for (const std::vector<std::int64_t>& args : runs) {
      std::string label = b->name;
      for (std::int64_t a : args) label += "/" + std::to_string(a);
      // Grow the iteration count until the timed loop is long enough to
      // damp clock noise.
      std::int64_t iters = 1;
      double secs = 0.0;
      std::map<std::string, double> counters;
      for (;;) {
        State state(args, iters);
        b->fn(state);
        secs = state.seconds();
        counters = state.counters;
        if (secs >= 0.2 || iters >= (std::int64_t{1} << 26)) break;
        const std::int64_t by_time =
            secs > 0 ? static_cast<std::int64_t>(
                           static_cast<double>(iters) * 0.25 / secs) + 1
                     : iters * 16;
        iters = std::max(iters * 2, std::min(by_time, iters * 16));
      }
      const double ns = secs / static_cast<double>(iters) * 1e9;
      std::printf("%-44s %11.0f ns %12lld", label.c_str(), ns,
                  static_cast<long long>(iters));
      for (const auto& [name, value] : counters) {
        std::printf("  %s=%.0f", name.c_str(), value);
      }
      std::printf("\n");
      if (record) record(label, ns, iters, counters);
    }
  }
}

}  // namespace benchmark

#define BENCHMARK(fn)                                    \
  static ::benchmark::Benchmark* plain_bench_reg_##fn = \
      ::benchmark::RegisterPlainBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                 \
  int main() {                           \
    ::benchmark::RunAllPlainBenchmarks(); \
    return 0;                            \
  }

#endif  // FTES_HAVE_GOOGLE_BENCHMARK
