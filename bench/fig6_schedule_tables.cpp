// Regenerates the paper's Fig. 6: quasi-static schedule tables for the
// Fig. 5 example (one table per node plus the bus rows with message
// transmissions and condition broadcasts), and validates them over all 15
// fault scenarios.
#include <cstdio>

#include "sched/cond_scheduler.h"
#include "sim/executor.h"

using namespace ftes;

int main() {
  // The Fig. 5 application, re-execution everywhere, k = 2, P1/P2 on N1,
  // P3/P4 on N2, P3/m2/m3 frozen -- the configuration behind Fig. 6.
  Architecture arch = Architecture::homogeneous(2, 5);
  const NodeId n1{0}, n2{1};
  Application app;
  const ProcessId p1 = app.add_process("P1", {{n1, 30}, {n2, 30}}, 5, 0, 0);
  const ProcessId p2 = app.add_process("P2", {{n1, 25}, {n2, 25}}, 5, 0, 0);
  Process proc3;
  proc3.name = "P3";
  proc3.wcet[n1] = 25;
  proc3.wcet[n2] = 25;
  proc3.alpha = 5;
  proc3.frozen = true;
  const ProcessId p3 = app.add_process(std::move(proc3));
  const ProcessId p4 = app.add_process("P4", {{n1, 30}, {n2, 30}}, 5, 0, 0);
  app.connect(p1, p2, "m0");
  app.connect(p1, p4, "m1");
  Message m2;
  m2.src = p2;
  m2.dst = p3;
  m2.name = "m2";
  m2.frozen = true;
  app.add_message(std::move(m2));
  Message m3;
  m3.src = p4;
  m3.dst = p3;
  m3.name = "m3";
  m3.frozen = true;
  app.add_message(std::move(m3));
  app.set_deadline(500);

  FaultModel model{2};
  PolicyAssignment assignment(app.process_count());
  auto reexec = [&](ProcessId pid, NodeId node) {
    ProcessPlan plan = make_checkpointing_plan(model.k, 1);
    plan.copies[0].node = node;
    assignment.plan(pid) = plan;
  };
  reexec(p1, n1);
  reexec(p2, n1);
  reexec(p3, n2);
  reexec(p4, n2);

  const CondScheduleResult result =
      conditional_schedule(app, arch, assignment, model);

  std::printf("=== Fig. 6: schedule tables for the Fig. 5 example ===\n\n");
  std::printf("%s\n", result.tables.to_text(arch).c_str());

  std::printf("Frozen starts (transparency pins):\n");
  for (const auto& [name, at] : result.frozen_starts) {
    std::printf("  %s at t = %lld in every scenario\n", name.c_str(),
                static_cast<long long>(at));
  }

  const ExecutionReport report = check_all_scenarios(app, assignment, result);
  std::printf("\nValidation over %d scenarios: %s\n", result.scenario_count,
              report.ok ? "OK" : "FAILED");
  for (const std::string& v : report.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
  return report.ok ? 0 : 1;
}
