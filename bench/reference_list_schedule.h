// Reference implementation of the historical O(V^2) list scheduler:
// linear ready scans and a linear pending-transmission minimum search.
// The production scheduler (sched/list_scheduler.cpp) replaced both with
// binary heaps; this reference pins the exact tie-breaking the heaps must
// preserve.  Shared by the equivalence property test
// (tests/test_list_scheduler_incremental.cpp) and the heap-vs-scan
// micro-benchmarks (bench/micro_benchmarks.cpp) so the pinned behavior and
// the measured baseline cannot drift apart.  Not part of the library.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "sched/list_scheduler.h"

namespace ftes::testing {

inline ListSchedule reference_list_schedule(const Application& app,
                                     const Architecture& arch,
                                     const PolicyAssignment& assignment) {
  struct CopyVertex {
    CopyRef ref;
    NodeId node;
    Time duration = 0;
    Time release = 0;
  };
  std::vector<CopyVertex> verts;
  std::map<std::pair<std::int32_t, int>, int> vert_of;
  ListSchedule result;
  result.first_copy.assign(static_cast<std::size_t>(app.process_count()) + 1,
                           0);
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    const ProcessPlan& plan = assignment.plan(pid);
    result.first_copy[static_cast<std::size_t>(i) + 1] =
        result.first_copy[static_cast<std::size_t>(i)] + plan.copy_count();
    for (int j = 0; j < plan.copy_count(); ++j) {
      const CopyPlan& copy = plan.copies[static_cast<std::size_t>(j)];
      CopyVertex v;
      v.ref = CopyRef{pid, j};
      v.node = copy.node;
      v.duration = fault_free_duration(app, copy, pid);
      v.release = app.process(pid).release;
      vert_of[{pid.get(), j}] = static_cast<int>(verts.size());
      verts.push_back(v);
    }
  }

  Digraph g(static_cast<int>(verts.size()));
  for (const Message& m : app.messages()) {
    const ProcessPlan& sp = assignment.plan(m.src);
    const ProcessPlan& dp = assignment.plan(m.dst);
    for (int sj = 0; sj < sp.copy_count(); ++sj) {
      for (int dj = 0; dj < dp.copy_count(); ++dj) {
        g.add_edge(vert_of.at({m.src.get(), sj}), vert_of.at({m.dst.get(), dj}));
      }
    }
  }
  const std::vector<Time> rank = g.critical_path_from([&](int v) {
    const CopyVertex& cv = verts[static_cast<std::size_t>(v)];
    Time comm = 0;
    for (MessageId mid : app.outputs(cv.ref.process)) {
      comm = std::max(
          comm, arch.bus().worst_case_duration(cv.node, app.message(mid).size));
    }
    return cv.duration + comm;
  });

  result.copies.resize(verts.size());
  result.node_order.resize(static_cast<std::size_t>(arch.node_count()));
  std::vector<Time> node_free(static_cast<std::size_t>(arch.node_count()), 0);
  Time bus_free = 0;
  std::vector<bool> placed(verts.size(), false);
  std::vector<int> deps_left(verts.size(), 0);
  for (std::size_t v = 0; v < verts.size(); ++v) {
    deps_left[v] = static_cast<int>(g.predecessors(static_cast<int>(v)).size());
  }
  std::vector<Time> data_ready(verts.size(), 0);

  struct PendingTx {
    Time ready;
    MessageId msg;
    int src_copy;
    NodeId sender;
  };
  std::vector<PendingTx> pending_tx;

  auto deliver = [&](const Message& m, Time delivery) {
    const ProcessPlan& dp = assignment.plan(m.dst);
    for (int dj = 0; dj < dp.copy_count(); ++dj) {
      const int dv = vert_of.at({m.dst.get(), dj});
      data_ready[static_cast<std::size_t>(dv)] =
          std::max(data_ready[static_cast<std::size_t>(dv)], delivery);
      --deps_left[static_cast<std::size_t>(dv)];
    }
  };

  std::size_t remaining = verts.size();
  while (remaining > 0) {
    Time best_start = kTimeInfinity;
    int best_vertex = -1;
    for (std::size_t v = 0; v < verts.size(); ++v) {
      if (placed[v] || deps_left[v] > 0) continue;
      const CopyVertex& cv = verts[v];
      const Time start =
          std::max({data_ready[v], cv.release,
                    node_free[static_cast<std::size_t>(cv.node.get())]});
      if (start < best_start ||
          (start == best_start &&
           rank[static_cast<std::size_t>(best_vertex)] < rank[v])) {
        best_start = start;
        best_vertex = static_cast<int>(v);
      }
    }

    Time earliest_tx = kTimeInfinity;
    std::size_t tx_index = pending_tx.size();
    for (std::size_t t = 0; t < pending_tx.size(); ++t) {
      if (pending_tx[t].ready < earliest_tx ||
          (pending_tx[t].ready == earliest_tx && tx_index < pending_tx.size() &&
           pending_tx[t].msg < pending_tx[tx_index].msg)) {
        earliest_tx = pending_tx[t].ready;
        tx_index = t;
      }
    }

    if (tx_index < pending_tx.size() &&
        (best_vertex < 0 || earliest_tx <= best_start)) {
      const PendingTx tx = pending_tx[tx_index];
      pending_tx.erase(pending_tx.begin() +
                       static_cast<std::ptrdiff_t>(tx_index));
      const Message& m = app.message(tx.msg);
      const Time ready = std::max(tx.ready, bus_free);
      const Time start = arch.bus().next_slot_start(tx.sender, ready);
      const Time finish =
          arch.bus().transmission_finish(tx.sender, ready, m.size);
      bus_free = finish;
      result.bus_order.push_back(static_cast<int>(result.messages.size()));
      result.messages.push_back(ScheduledMessage{tx.msg, tx.src_copy, tx.sender,
                                                 tx.ready, start, finish});
      deliver(m, finish);
      continue;
    }

    if (best_vertex < 0) {
      throw std::logic_error("reference scheduler deadlock");
    }

    const std::size_t v = static_cast<std::size_t>(best_vertex);
    const CopyVertex& cv = verts[v];
    ScheduledCopy sc;
    sc.ref = cv.ref;
    sc.node = cv.node;
    sc.start = best_start;
    sc.finish = best_start + cv.duration;
    result.copies[v] = sc;
    placed[v] = true;
    --remaining;
    node_free[static_cast<std::size_t>(cv.node.get())] = sc.finish;
    result.node_order[static_cast<std::size_t>(cv.node.get())].push_back(
        static_cast<int>(v));
    result.makespan = std::max(result.makespan, sc.finish);

    for (MessageId mid : app.outputs(cv.ref.process)) {
      const Message& m = app.message(mid);
      const ProcessPlan& dp = assignment.plan(m.dst);
      bool cross_node = false;
      for (const CopyPlan& d : dp.copies) {
        if (d.node != cv.node) cross_node = true;
      }
      if (cross_node) {
        pending_tx.push_back(PendingTx{sc.finish, mid, cv.ref.copy, cv.node});
      } else {
        deliver(m, sc.finish);
      }
    }
  }
  for (const ScheduledMessage& m : result.messages) {
    result.makespan = std::max(result.makespan, m.finish);
  }
  return result;
}

}  // namespace ftes::testing
