// Regenerates the paper's Fig. 8: efficiency of the checkpointing
// optimization ([15] vs the per-process local optimum of [27]).
//
// For 40..100-process applications, checkpoint counts are set either by the
// isolated closed-form optimum of [27] (baseline) or by the global
// WCSL-driven optimization of [15]; the series is the average % deviation
// of the global FTO from the baseline FTO (larger deviation == smaller
// overhead, as in the paper's Fig. 8 which peaks around 10-40%).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "core/metrics.h"
#include "opt/baselines.h"
#include "opt/checkpoint_opt.h"
#include "sched/wcsl.h"

using namespace ftes;
using namespace ftes::bench;

namespace {

struct SeedResult {
  double fto_local = 0.0;
  double fto_global = 0.0;
  double deviation = 0.0;
  EvalStats stats;  ///< evaluator counters of the global optimization
};

}  // namespace

int main(int argc, char** argv) {
  const SweepConfig cfg = parse_sweep_args(argc, argv);
  const std::vector<int> sizes{40, 60, 80, 100};
  const int max_checkpoints = 8;

  std::printf("=== Fig. 8: efficiency of checkpointing optimization ===\n");
  std::printf("(avg %% FTO reduction of global [15] vs local [27]; "
              "%d instances/size, %d thread(s))\n\n",
              cfg.seeds_per_size, resolve_threads(cfg.threads));
  std::printf("  procs   FTO_local  FTO_global  deviation%%\n");

  Stopwatch watch;
  EvalStats total;
  BenchReport report;
  report.bench = "fig8_checkpoint_opt";
  report.threads = resolve_threads(cfg.threads);
  for (int size : sizes) {
    const Stopwatch size_watch;
    const std::vector<SeedResult> seeds = sweep_seeds<SeedResult>(
        cfg.seeds_per_size, cfg.threads, [&](int s) {
          const std::uint64_t seed = 2000ull * static_cast<std::uint64_t>(size) +
                                     static_cast<std::uint64_t>(s);
          // Checkpointing-focused instances: chi/alpha/mu at 10-30% of the
          // WCET (the upper half of the overhead range), where the
          // per-process local optimum of [27] visibly over-checkpoints
          // off-critical processes.
          TaskGenParams params;
          params.process_count = size;
          Rng seeder(seed);
          params.node_count = static_cast<int>(seeder.uniform_int(2, 6));
          params.overhead_min_fraction = 0.10;
          params.overhead_max_fraction = 0.30;
          Instance inst;
          inst.k = static_cast<int>(seeder.uniform_int(3, 7));
          inst.app = generate_application(params, seeder);
          inst.arch = generate_architecture(params);
          const FaultModel fm{inst.k};
          OptimizeOptions opts = bench_options(seed);
          opts.space = PolicySpace::kCheckpointingOnly;
          opts.max_checkpoints = max_checkpoints;

          const Time nft = non_ft_reference(inst.app, inst.arch, opts);

          // Shared mapping (optimized once in the checkpointing space),
          // then the two checkpoint policies on top of it.
          const OptimizeResult mapped =
              optimize_policy_and_mapping(inst.app, inst.arch, fm, opts);

          PolicyAssignment local = mapped.assignment;
          apply_local_checkpointing(inst.app, local, max_checkpoints);
          const Time wcsl_local =
              evaluate_wcsl(inst.app, inst.arch, local, fm).makespan;

          const CheckpointOptResult global = optimize_checkpoints_global(
              inst.app, inst.arch, fm, local, max_checkpoints);

          SeedResult r;
          r.fto_local = fto_percent(wcsl_local, nft);
          r.fto_global = fto_percent(global.wcsl, nft);
          r.deviation = 100.0 * (r.fto_local - r.fto_global) /
                        (r.fto_local > 0 ? r.fto_local : 1.0);
          r.stats = global.eval_stats;
          return r;
        });

    std::vector<double> local_ftos, global_ftos, deviations;
    for (const SeedResult& r : seeds) {
      local_ftos.push_back(r.fto_local);
      global_ftos.push_back(r.fto_global);
      deviations.push_back(r.deviation);
      total.add(r.stats);
    }
    std::printf("  %5d   %8.1f   %9.1f   %9.1f\n", size, mean(local_ftos),
                mean(global_ftos), mean(deviations));

    BenchReport::Entry& entry = report.add("procs_" + std::to_string(size));
    entry.wall_seconds = size_watch.seconds();
    entry.metric("fto_local_pct", mean(local_ftos));
    entry.metric("fto_global_pct", mean(global_ftos));
    entry.metric("deviation_pct", mean(deviations));
  }
  std::printf("\n  (paper's Fig. 8 reports deviations up to ~40%%, larger "
              "deviation = smaller overhead)\n");
  std::printf("  incremental evaluator: %lld evaluations, %.1f%% of the "
              "WCSL DP row work served from the base cache\n",
              total.evaluations, 100.0 * total.dp_reuse_fraction());
  std::printf("  list scheduler: %.1f%% of candidate placements resumed; "
              "%lld of %lld rebases served by the winning-move cache\n",
              100.0 * total.ls_resume_fraction(), total.rebase_cache_hits,
              total.rebases);
  const double seconds = watch.seconds();
  std::printf("  wall-clock: %.2fs\n", seconds);

  if (cfg.bench_json) {
    add_total_entry(report, total, seconds);
    report.write(cfg.bench_json);
  }
  return 0;
}
