// Regenerates the paper's Fig. 8: efficiency of the checkpointing
// optimization ([15] vs the per-process local optimum of [27]).
//
// For 40..100-process applications, checkpoint counts are set either by the
// isolated closed-form optimum of [27] (baseline) or by the global
// WCSL-driven optimization of [15]; the series is the average % deviation
// of the global FTO from the baseline FTO (larger deviation == smaller
// overhead, as in the paper's Fig. 8 which peaks around 10-40%).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "core/synthesis.h"
#include "opt/baselines.h"
#include "opt/checkpoint_opt.h"
#include "sched/wcsl.h"

using namespace ftes;
using namespace ftes::bench;

namespace {

struct SeedResult {
  double fto_local = 0.0;
  double fto_global = 0.0;
  double deviation = 0.0;
  EvalStats stats;  ///< evaluator counters of the global optimization
};

}  // namespace

int main(int argc, char** argv) {
  const SweepConfig cfg = parse_sweep_args(argc, argv);
  const std::vector<int> sizes{40, 60, 80, 100};
  const int max_checkpoints = 8;

  std::printf("=== Fig. 8: efficiency of checkpointing optimization ===\n");
  std::printf("(avg %% FTO reduction of global [15] vs local [27]; "
              "%d instances/size, %d thread(s))\n\n",
              cfg.seeds_per_size, resolve_threads(cfg.threads));
  std::printf("  procs   FTO_local  FTO_global  deviation%%\n");

  Stopwatch watch;
  EvalStats total;
  BenchReport report;
  report.bench = "fig8_checkpoint_opt";
  report.threads = resolve_threads(cfg.threads);
  for (int size : sizes) {
    const Stopwatch size_watch;
    const std::vector<SeedResult> seeds = sweep_seeds<SeedResult>(
        cfg.seeds_per_size, cfg.threads, [&](int s) {
          const std::uint64_t seed = 2000ull * static_cast<std::uint64_t>(size) +
                                     static_cast<std::uint64_t>(s);
          // Checkpointing-focused instances: chi/alpha/mu at 10-30% of the
          // WCET (the upper half of the overhead range), where the
          // per-process local optimum of [27] visibly over-checkpoints
          // off-critical processes.
          TaskGenParams params;
          params.process_count = size;
          Rng seeder(seed);
          params.node_count = static_cast<int>(seeder.uniform_int(2, 6));
          params.overhead_min_fraction = 0.10;
          params.overhead_max_fraction = 0.30;
          Instance inst;
          inst.k = static_cast<int>(seeder.uniform_int(3, 7));
          inst.app = generate_application(params, seeder);
          inst.arch = generate_architecture(params);
          const FaultModel fm{inst.k};
          OptimizeOptions opts = bench_options(seed);
          opts.space = PolicySpace::kCheckpointingOnly;
          opts.max_checkpoints = max_checkpoints;

          const Time nft = non_ft_reference(inst.app, inst.arch, opts);

          // Shared mapping (optimized once in the checkpointing space),
          // then the two checkpoint policies on top of it.
          const OptimizeResult mapped =
              optimize_policy_and_mapping(inst.app, inst.arch, fm, opts);

          PolicyAssignment local = mapped.assignment;
          apply_local_checkpointing(inst.app, local, max_checkpoints);
          const Time wcsl_local =
              evaluate_wcsl(inst.app, inst.arch, local, fm).makespan;

          const CheckpointOptResult global = optimize_checkpoints_global(
              inst.app, inst.arch, fm, local, max_checkpoints);

          SeedResult r;
          r.fto_local = fto_percent(wcsl_local, nft);
          r.fto_global = fto_percent(global.wcsl, nft);
          r.deviation = 100.0 * (r.fto_local - r.fto_global) /
                        (r.fto_local > 0 ? r.fto_local : 1.0);
          r.stats = global.eval_stats;
          return r;
        });

    std::vector<double> local_ftos, global_ftos, deviations;
    for (const SeedResult& r : seeds) {
      local_ftos.push_back(r.fto_local);
      global_ftos.push_back(r.fto_global);
      deviations.push_back(r.deviation);
      total.add(r.stats);
    }
    std::printf("  %5d   %8.1f   %9.1f   %9.1f\n", size, mean(local_ftos),
                mean(global_ftos), mean(deviations));

    BenchReport::Entry& entry = report.add("procs_" + std::to_string(size));
    entry.wall_seconds = size_watch.seconds();
    entry.metric("fto_local_pct", mean(local_ftos));
    entry.metric("fto_global_pct", mean(global_ftos));
    entry.metric("deviation_pct", mean(deviations));
  }
  // --- speculative stage execution (--speculate): hide table latency ------
  // Small-k instances where the scenario tree is buildable: run the
  // default pipeline serially and with speculation on the same problems.
  // The adoption counters are deterministic (same seeds, any thread
  // count), so the "speculation:" line is part of the committed golden
  // (tests/golden/fig8_tiny.txt); the wall-clock line below it is
  // filtered like every other volatile line.  The recorded hidden share
  // is the table stage's serial wall time minus what the consuming stage
  // still paid with speculation on -- with refinement dominating and a
  // worker available, that approaches the table stage's full serial share.
  long long spec_hits = 0, spec_misses = 0;
  double serial_table_seconds = 0.0, spec_stage_seconds = 0.0;
  double spec_task_seconds = 0.0;
  const int spec_instances = std::max(2, cfg.seeds_per_size);
  for (int s = 0; s < spec_instances; ++s) {
    const std::uint64_t seed = 9000ull + static_cast<std::uint64_t>(s);
    TaskGenParams params;
    params.process_count = 12;
    Rng seeder(seed);
    params.node_count = static_cast<int>(seeder.uniform_int(2, 3));
    Application app = generate_application(params, seeder);
    Architecture arch = generate_architecture(params);

    SynthesisOptions opts;
    opts.fault_model.k = 2;
    opts.optimize = bench_options(seed);
    opts.optimize.space = PolicySpace::kCheckpointingOnly;
    opts.optimize.threads = cfg.threads;
    opts.schedule.max_scenarios = 500000;

    SynthesisContext serial_ctx(app, arch, opts);
    Pipeline serial = Pipeline::default_pipeline();
    const SynthesisResult serial_result = serial.run(serial_ctx);
    serial_table_seconds += serial.metrics()[2].seconds;

    opts.speculate = true;
    SynthesisContext spec_ctx(app, arch, opts);
    Pipeline spec = Pipeline::default_pipeline();
    const SynthesisResult spec_result = spec.run(spec_ctx);
    spec_hits += spec.metrics()[2].spec_hits;
    spec_misses += spec.metrics()[2].spec_misses;
    spec_stage_seconds += spec.metrics()[2].seconds;
    spec_task_seconds += spec.metrics()[2].spec_seconds;

    if (serial_result.wcsl.makespan != spec_result.wcsl.makespan ||
        serial_result.schedulable != spec_result.schedulable) {
      std::fprintf(stderr,
                   "fig8: speculative run diverged from serial (seed %llu)\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
  }
  std::printf("\n  speculation: %lld adopted / %lld discarded over %d "
              "instances (bit-identical to serial, checked)\n",
              spec_hits, spec_misses, spec_instances);
  std::printf("  speculation wall-clock: table stage %.2fs serial vs %.2fs "
              "speculative (task %.2fs overlapped with refinement)\n",
              serial_table_seconds, spec_stage_seconds, spec_task_seconds);
  BenchReport::Entry& spec_entry = report.add("speculation");
  spec_entry.wall_seconds = spec_stage_seconds;
  spec_entry.metric("spec_hits", static_cast<double>(spec_hits));
  spec_entry.metric("spec_misses", static_cast<double>(spec_misses));
  spec_entry.metric("table_stage_serial_seconds", serial_table_seconds);
  spec_entry.metric("table_stage_speculative_seconds", spec_stage_seconds);
  spec_entry.metric("hidden_seconds",
                    serial_table_seconds - spec_stage_seconds);

  std::printf("\n  (paper's Fig. 8 reports deviations up to ~40%%, larger "
              "deviation = smaller overhead)\n");
  std::printf("  incremental evaluator: %lld evaluations, %.1f%% of the "
              "WCSL DP row work served from the base cache\n",
              total.evaluations, 100.0 * total.dp_reuse_fraction());
  std::printf("  list scheduler: %.1f%% of candidate placements resumed; "
              "%lld of %lld rebases served by the winning-move cache\n",
              100.0 * total.ls_resume_fraction(), total.rebase_cache_hits,
              total.rebases);
  const double seconds = watch.seconds();
  std::printf("  wall-clock: %.2fs\n", seconds);

  if (cfg.bench_json) {
    add_total_entry(report, total, seconds);
    report.write(cfg.bench_json);
  }
  return 0;
}
