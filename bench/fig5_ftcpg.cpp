// Regenerates the paper's Fig. 5: the FT-CPG of the four-process example
// application under k = 2 with transparency on P3, m2 and m3.
//
// Prints the node census (copy counts per process, sync nodes, conditional
// edges) that characterizes the figure, the GraphViz DOT text of the graph,
// and a size comparison against the fully transparent / fully opaque
// variants (the Section 3.3 trade-off).
#include <cstdio>

#include "ftcpg/analysis.h"
#include "ftcpg/builder.h"

using namespace ftes;

namespace {

struct Fig5Instance {
  Application app;
  PolicyAssignment assignment{4};
  FaultModel model{2};
};

Fig5Instance make(bool frozen_p3, bool frozen_msgs) {
  Fig5Instance f;
  const NodeId n1{0}, n2{1};
  const ProcessId p1 = f.app.add_process("P1", {{n1, 30}, {n2, 30}}, 5, 0, 0);
  const ProcessId p2 = f.app.add_process("P2", {{n1, 25}, {n2, 25}}, 5, 0, 0);
  Process p3;
  p3.name = "P3";
  p3.wcet[n1] = 25;
  p3.wcet[n2] = 25;
  p3.alpha = 5;
  p3.frozen = frozen_p3;
  const ProcessId id3 = f.app.add_process(std::move(p3));
  const ProcessId p4 = f.app.add_process("P4", {{n1, 30}, {n2, 30}}, 5, 0, 0);
  f.app.connect(p1, p2, "m0");
  f.app.connect(p1, p4, "m1");
  Message m2;
  m2.src = p2;
  m2.dst = id3;
  m2.name = "m2";
  m2.frozen = frozen_msgs;
  f.app.add_message(std::move(m2));
  Message m3;
  m3.src = p4;
  m3.dst = id3;
  m3.name = "m3";
  m3.frozen = frozen_msgs;
  f.app.add_message(std::move(m3));
  f.app.set_deadline(500);

  auto reexec = [&](ProcessId pid, NodeId node) {
    ProcessPlan plan = make_checkpointing_plan(f.model.k, 1);
    plan.copies[0].node = node;
    f.assignment.plan(pid) = plan;
  };
  reexec(p1, n1);
  reexec(p2, n1);
  reexec(id3, n2);
  reexec(p4, n2);
  return f;
}

void census_line(const char* label, const Ftcpg& g) {
  const Ftcpg::Census c = g.census();
  std::printf("  %-28s %3d nodes (%d cond, %d reg, %d sync), %d edges "
              "(%d cond)\n",
              label, g.node_count(), c.conditional, c.regular,
              c.synchronization, g.edge_count(), c.conditional_edges);
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: fault-tolerant conditional process graph ===\n\n");

  Fig5Instance paper = make(true, true);
  const Ftcpg g = build_ftcpg(paper.app, paper.assignment, paper.model);

  std::printf("Copy counts (paper's P_i^m numbering, k = 2):\n");
  for (int i = 0; i < paper.app.process_count(); ++i) {
    std::printf("  %s: %zu copies\n",
                paper.app.process(ProcessId{i}).name.c_str(),
                g.copies_of(ProcessId{i}).size());
  }

  std::printf("\nGraph size vs transparency (Section 3.3 trade-off):\n");
  census_line("frozen {P3, m2, m3} (paper):", g);
  const Fig5Instance opaque = make(false, false);
  census_line("nothing frozen:",
              build_ftcpg(opaque.app, opaque.assignment, opaque.model));

  std::printf("\nFT-CPG critical path (budgeted, k = %d): %lld ticks "
              "(lower bound on any schedule's WCSL)\n",
              paper.model.k,
              static_cast<long long>(ftcpg_critical_path(
                  g, paper.app, paper.assignment, paper.model)));

  std::printf("\nDOT of the paper's FT-CPG:\n%s", g.to_dot().c_str());
  return 0;
}
