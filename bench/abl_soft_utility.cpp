// Ablation for the soft/hard extension ([17]): total worst-case utility
// delivered as the deadline tightens.  With a loose deadline everything
// runs at full utility; as it tightens, the optimizer sheds low-density
// soft work to keep the hard deadline, and utility degrades gracefully.
#include <cstdio>
#include <vector>

#include "core/metrics.h"
#include "gen/taskgen.h"
#include "opt/policy_assignment.h"
#include "opt/soft_hard.h"
#include "sched/wcsl.h"

using namespace ftes;

int main() {
  std::printf("=== Ablation: worst-case utility vs deadline tightness ===\n\n");
  std::printf("  deadline/WCSL   kept softs(avg)   utility%%(avg)\n");

  const int instances = 4;
  const std::vector<double> tightness{1.2, 1.0, 0.85, 0.7, 0.55};
  for (double factor : tightness) {
    std::vector<double> utilities, kept_counts;
    for (int s = 0; s < instances; ++s) {
      TaskGenParams params;
      params.process_count = 14;
      params.node_count = 2;
      Rng rng(555 + static_cast<std::uint64_t>(s));
      Application app = generate_application(params, rng);
      const Architecture arch = generate_architecture(params);
      const FaultModel fm{2};

      // Mark the sink half of the processes soft (leaves first keeps the
      // drop sets closed), utilities proportional to WCET.
      double max_utility = 0;
      const auto topo = app.topological_order();
      for (std::size_t i = topo.size() / 2; i < topo.size(); ++i) {
        Process& p = app.process(topo[i]);
        if (!app.outputs(topo[i]).empty()) continue;  // keep closure simple
        SoftSpec spec;
        spec.utility = static_cast<double>(10 + 2 * (i % 5));
        spec.soft_deadline = app.deadline() / 2;
        spec.window = app.deadline();
        p.soft = spec;
        max_utility += spec.utility;
      }
      if (max_utility == 0) continue;

      const PolicyAssignment pa =
          greedy_initial(app, arch, fm, PolicySpace::kReexecutionOnly, 1);
      const Time wcsl = evaluate_wcsl(app, arch, pa, fm).makespan;
      app.set_deadline(static_cast<Time>(static_cast<double>(wcsl) * factor));

      SoftHardOptions opts;
      opts.iterations = 60;
      opts.seed = 555 + static_cast<std::uint64_t>(s);
      const SoftHardResult r = optimize_soft_hard(app, arch, pa, fm, opts);
      utilities.push_back(100.0 * r.evaluation.total_utility / max_utility);
      int kept = 0;
      for (int i = 0; i < app.process_count(); ++i) {
        if (app.process(ProcessId{i}).soft &&
            !r.dropped[static_cast<std::size_t>(i)]) {
          ++kept;
        }
      }
      kept_counts.push_back(kept);
    }
    std::printf("  %11.2f   %15.1f   %12.1f\n", factor, mean(kept_counts),
                mean(utilities));
  }
  std::printf("\n(tighter deadline -> soft work shed, utility degrades "
              "gracefully)\n");
  return 0;
}
