// Ablation: solution quality vs tabu-search budget (the design choice
// behind DESIGN.md's "hundreds of objective evaluations per instance").
// Reports the average WCSL of MXR normalized to the greedy initial solution
// for increasing iteration budgets.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/metrics.h"
#include "sched/wcsl.h"

using namespace ftes;
using namespace ftes::bench;

int main() {
  std::printf("=== Ablation: tabu-search budget vs solution quality ===\n\n");
  std::printf("  iterations   WCSL/greedy(avg)\n");

  const int instances = 4;
  const std::vector<int> budgets{0, 20, 40, 80, 160};
  for (int budget : budgets) {
    std::vector<double> ratios;
    for (int s = 0; s < instances; ++s) {
      const Instance inst = make_instance(30, 3000 + static_cast<std::uint64_t>(s));
      const FaultModel fm{inst.k};
      OptimizeOptions opts = bench_options(inst.seed);
      opts.iterations = budget;
      const PolicyAssignment greedy = greedy_initial(
          inst.app, inst.arch, fm, PolicySpace::kFull, opts.max_checkpoints);
      const double greedy_wcsl = static_cast<double>(
          evaluate_wcsl(inst.app, inst.arch, greedy, fm).makespan);
      const OptimizeResult r =
          optimize_from(inst.app, inst.arch, fm, opts, greedy);
      ratios.push_back(static_cast<double>(r.wcsl) / greedy_wcsl);
    }
    std::printf("  %10d   %10.3f\n", budget, mean(ratios));
  }
  std::printf("\n(1.0 = greedy; lower is better; returns diminish)\n");
  return 0;
}
