// Machine-readable benchmark reports (`--bench-json <file>`).
//
// The sweeps and micro-benches print human-readable tables; perf tracking
// across commits needs stable, parseable artifacts instead.  A BenchReport
// collects named entries -- each with a wall-clock and a flat list of
// numeric metrics (evaluations/sec, cache-hit rates, ...) -- and writes
// them as one JSON object.  Every report carries build metadata (compiler,
// build type, thread count) so BENCH_*.json trajectory entries from
// different environments are comparable -- a Debug/clang artifact is not a
// regression against a Release/gcc one.  The recommended artifact name is
// BENCH_<bench>.json; see docs/CLI.md for the schema and the regeneration
// commands.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/json_io.h"

namespace ftes::bench {

/// Compiler id + version derived from predefined macros (clang first:
/// it defines __GNUC__ too).
inline std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#elif defined(_MSC_VER)
  return "msvc " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

/// CMake's build type when the build system provides it (FTES_BUILD_TYPE,
/// see CMakeLists.txt); an NDEBUG-based guess otherwise.
inline std::string build_type_id() {
#if defined(FTES_BUILD_TYPE)
  return FTES_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release?";
#else
  return "Debug?";
#endif
}

struct BenchReport {
  struct Entry {
    std::string name;
    double wall_seconds = 0.0;
    /// Flat metric list (insertion order preserved in the JSON).
    std::vector<std::pair<std::string, double>> metrics;

    void metric(std::string key, double value) {
      metrics.emplace_back(std::move(key), value);
    }
  };

  std::string bench;  ///< binary name, e.g. "fig7_policy_assignment"
  int threads = 1;
  std::vector<Entry> entries;

  Entry& add(std::string name) {
    entries.push_back(Entry{});
    entries.back().name = std::move(name);
    return entries.back();
  }

  [[nodiscard]] std::string to_json() const {
    std::ostringstream out;
    out << "{\"bench\": ";
    json_escape(out, bench);
    out << ", \"threads\": " << threads << ", \"compiler\": ";
    json_escape(out, compiler_id());
    out << ", \"build_type\": ";
    json_escape(out, build_type_id());
    out << ", \"entries\": [";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      if (i > 0) out << ", ";
      out << "{\"name\": ";
      json_escape(out, e.name);
      out << ", \"wall_seconds\": ";
      json_seconds(out, e.wall_seconds);
      out << ", \"metrics\": {";
      for (std::size_t m = 0; m < e.metrics.size(); ++m) {
        if (m > 0) out << ", ";
        json_escape(out, e.metrics[m].first);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.9g", e.metrics[m].second);
        out << ": " << buf;
      }
      out << "}}";
    }
    out << "]}\n";
    return out.str();
  }

  /// Writes to_json() to `path`; complains on stderr instead of throwing
  /// (a failed perf artifact must not fail the bench run).
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench-json: cannot open %s\n", path.c_str());
      return false;
    }
    const std::string json = to_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "bench-json: short write to %s\n", path.c_str());
    return ok;
  }
};

}  // namespace ftes::bench
