// Regenerates the paper's Fig. 7: efficiency of the mapping and fault
// tolerance policy assignment approach ([13]).
//
// For applications of 20..100 processes on 2-6 nodes with k = 3..7 faults,
// the fault tolerance overhead FTO = (WCSL_ft - L_nft)/L_nft of four
// approaches is measured:
//   MXR -- mapping + policy assignment (the paper's approach, baseline),
//   MR  -- mapping + replication only,
//   SFX -- FT-ignorant mapping + re-execution,
//   MX  -- mapping + re-execution only,
// and the series reported is each approach's average % deviation of FTO
// from MXR's, measured as (FTO_x - FTO_MXR)/FTO_x * 100 -- "MXR is that
// many percent better" -- which is bounded by 100 exactly like the paper's
// y-axis.  The paper reports MXR on average 77% better than MR and 17.6%
// better than MX; the reproduction target is the ordering MR >> SFX > MX > 0
// with comparable magnitudes (DESIGN.md Section 3).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "core/metrics.h"
#include "opt/baselines.h"

using namespace ftes;
using namespace ftes::bench;

namespace {

struct SeedResult {
  double mr = 0.0;
  double sfx = 0.0;
  double mx = 0.0;
  EvalStats stats;  ///< evaluator counters over all four approaches
};

}  // namespace

int main(int argc, char** argv) {
  const SweepConfig cfg = parse_sweep_args(argc, argv);
  const std::vector<int> sizes{20, 40, 60, 80, 100};

  std::printf("=== Fig. 7: efficiency of FT policy assignment ===\n");
  std::printf("(avg %% deviation of FTO from MXR; %d instances/size, "
              "%d thread(s))\n\n",
              cfg.seeds_per_size, resolve_threads(cfg.threads));
  std::printf("  procs     MR      SFX     MX\n");

  Stopwatch watch;
  std::vector<double> all_mr, all_sfx, all_mx;
  EvalStats total;
  BenchReport report;
  report.bench = "fig7_policy_assignment";
  report.threads = resolve_threads(cfg.threads);
  for (int size : sizes) {
    const Stopwatch size_watch;
    const std::vector<SeedResult> seeds = sweep_seeds<SeedResult>(
        cfg.seeds_per_size, cfg.threads, [&](int s) {
          const std::uint64_t seed = 1000ull * static_cast<std::uint64_t>(size) +
                                     static_cast<std::uint64_t>(s);
          const Instance inst = make_instance(size, seed);
          const FaultModel fm{inst.k};
          const OptimizeOptions opts = bench_options(seed);

          const Time nft = non_ft_reference(inst.app, inst.arch, opts);
          const OptimizeResult mxr = run_mxr(inst.app, inst.arch, fm, opts);
          const OptimizeResult mr = run_mr(inst.app, inst.arch, fm, opts);
          const OptimizeResult sfx = run_sfx(inst.app, inst.arch, fm, opts);
          const OptimizeResult mx = run_mx(inst.app, inst.arch, fm, opts);
          const double fto_mxr = fto_percent(mxr.wcsl, nft);
          const double fto_mr = fto_percent(mr.wcsl, nft);
          const double fto_sfx = fto_percent(sfx.wcsl, nft);
          const double fto_mx = fto_percent(mx.wcsl, nft);

          // (FTO_x - FTO_MXR)/FTO_x: how much smaller MXR's overhead is.
          auto improvement = [&](double fto_x) {
            return fto_x > 0 ? 100.0 * (fto_x - fto_mxr) / fto_x : 0.0;
          };
          SeedResult r{improvement(fto_mr), improvement(fto_sfx),
                       improvement(fto_mx), EvalStats{}};
          r.stats.add(mxr.eval_stats);
          r.stats.add(mr.eval_stats);
          r.stats.add(sfx.eval_stats);
          r.stats.add(mx.eval_stats);
          return r;
        });

    std::vector<double> dev_mr, dev_sfx, dev_mx;
    EvalStats size_total;
    for (const SeedResult& r : seeds) {
      dev_mr.push_back(r.mr);
      dev_sfx.push_back(r.sfx);
      dev_mx.push_back(r.mx);
      size_total.add(r.stats);
      total.add(r.stats);
    }
    std::printf("  %5d  %6.1f  %6.1f  %6.1f\n", size, mean(dev_mr),
                mean(dev_sfx), mean(dev_mx));
    all_mr.insert(all_mr.end(), dev_mr.begin(), dev_mr.end());
    all_sfx.insert(all_sfx.end(), dev_sfx.begin(), dev_sfx.end());
    all_mx.insert(all_mx.end(), dev_mx.begin(), dev_mx.end());

    BenchReport::Entry& entry =
        report.add("procs_" + std::to_string(size));
    entry.wall_seconds = size_watch.seconds();
    entry.metric("deviation_mr_pct", mean(dev_mr));
    entry.metric("deviation_sfx_pct", mean(dev_sfx));
    entry.metric("deviation_mx_pct", mean(dev_mx));
    // Per-size rebase cost, in deterministic byte counters rather than
    // wall-clock, so CI can assert the copy-on-write rebase path stays
    // sublinear in problem size (ratio check across the largest sizes).
    const long long records =
        size_total.rebase_log_recorded + size_total.rebase_full_builds;
    const long long schedules =
        size_total.ls_resumes + size_total.ls_full_builds;
    entry.metric("snapshot_refs_shared",
                 static_cast<double>(size_total.snapshot_refs_shared));
    entry.metric("snapshot_bytes_copied",
                 static_cast<double>(size_total.snapshot_bytes_copied));
    entry.metric("rebase_bytes_per_record",
                 records > 0
                     ? static_cast<double>(size_total.snapshot_bytes_copied) /
                           static_cast<double>(records)
                     : 0.0);
    entry.metric(
        "rebase_bytes_if_copied_per_record",
        records > 0
            ? static_cast<double>(size_total.snapshot_bytes_copied +
                                  size_total.snapshot_bytes_shared) /
                  static_cast<double>(records)
            : 0.0);
    entry.metric("events_per_schedule",
                 schedules > 0
                     ? static_cast<double>(size_total.ls_events_total) /
                           static_cast<double>(schedules)
                     : 0.0);
    entry.metric(
        "rebase_events_replayed_per_record",
        size_total.rebase_log_recorded > 0
            ? static_cast<double>(size_total.rebase_log_events_replayed) /
                  static_cast<double>(size_total.rebase_log_recorded)
            : 0.0);
  }
  std::printf("\n  overall averages: MXR better than MR by %.1f%%, than SFX "
              "by %.1f%%, than MX by %.1f%%\n",
              mean(all_mr), mean(all_sfx), mean(all_mx));
  std::printf("  (paper: 77%% better than MR, 17.6%% better than MX on "
              "average)\n");
  std::printf("\n  incremental evaluator: %lld evaluations (%lld incremental"
              ", %lld fault-free, %lld rebases)\n",
              total.evaluations, total.incremental_evals,
              total.fault_free_evals, total.rebases);
  std::printf("  WCSL DP rows: %lld of %lld served from the base cache "
              "(%.1f%% of the DP work skipped)\n",
              total.dp_vertices_reused, total.dp_vertices_total,
              100.0 * total.dp_reuse_fraction());
  std::printf("  list scheduler: %lld of %lld candidate schedules resumed; "
              "%lld of %lld placements served by snapshots (%.1f%%)\n",
              total.ls_resumes, total.ls_resumes + total.ls_full_builds,
              total.ls_events_resumed, total.ls_events_total,
              100.0 * total.ls_resume_fraction());
  std::printf("  rebases: %lld of %lld served by the winning-move cache\n",
              total.rebase_cache_hits, total.rebases);
  const double seconds = watch.seconds();
  std::printf("  wall-clock: %.2fs\n", seconds);

  if (cfg.bench_json) {
    add_total_entry(report, total, seconds);
    report.write(cfg.bench_json);
  }
  return 0;
}
