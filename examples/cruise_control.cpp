// Domain scenario: an adaptive cruise controller (the safety-critical
// automotive workload motivating the paper's introduction) plus a lower-rate
// telemetry application, merged per Section 4 and synthesized end to end.
//
// Demonstrates:
//   * designer-fixed mappings (sensor/actuator processes pinned to the node
//     wired to their peripherals),
//   * transparency (the actuation command is frozen for debugability),
//   * merging two periodic applications into one virtual application,
//   * full synthesis, FTO reporting, and exhaustive fault-scenario
//     validation of the generated schedule tables.
#include <cstdio>

#include "app/merge.h"
#include "core/metrics.h"
#include "core/synthesis.h"
#include "opt/baselines.h"
#include "sim/executor.h"

using namespace ftes;

namespace {

Application cruise_controller(NodeId sensor_node, NodeId actuator_node,
                              NodeId compute_node) {
  Application app;
  auto proc = [&](const char* name, Time c_sensor, Time c_actuator,
                  Time c_compute, Time overhead) {
    Process p;
    p.name = name;
    if (c_sensor > 0) p.wcet[sensor_node] = c_sensor;
    if (c_actuator > 0) p.wcet[actuator_node] = c_actuator;
    if (c_compute > 0) p.wcet[compute_node] = c_compute;
    p.alpha = p.mu = p.chi = overhead;
    return app.add_process(std::move(p));
  };

  const ProcessId speed = proc("SpeedSense", 8, 0, 0, 1);
  const ProcessId radar = proc("RadarSense", 12, 0, 0, 1);
  const ProcessId fuse = proc("SensorFusion", 20, 22, 18, 2);
  const ProcessId ctrl = proc("ControlLaw", 30, 32, 24, 2);
  const ProcessId limit = proc("SafetyLimiter", 10, 10, 8, 1);
  const ProcessId act = proc("ThrottleAct", 0, 9, 0, 1);
  const ProcessId log = proc("StateLogger", 14, 14, 10, 1);

  // Sensors and actuator are physically wired.
  app.process(speed).fixed_mapping = sensor_node;
  app.process(radar).fixed_mapping = sensor_node;
  app.process(act).fixed_mapping = actuator_node;

  app.connect(speed, fuse, "m_speed");
  app.connect(radar, fuse, "m_radar");
  app.connect(fuse, ctrl, "m_state");
  app.connect(ctrl, limit, "m_cmd");
  {
    Message m;
    m.src = limit;
    m.dst = act;
    m.name = "m_throttle";
    m.frozen = true;  // actuation command observable at one fixed time
    app.add_message(std::move(m));
  }
  app.connect(fuse, log, "m_log");
  app.set_deadline(290);
  return app;
}

Application telemetry(NodeId compute_node, NodeId actuator_node) {
  Application app;
  const ProcessId collect =
      app.add_process("TelemCollect", {{compute_node, 10}}, 1, 1, 1);
  const ProcessId pack = app.add_process(
      "TelemPack", {{compute_node, 12}, {actuator_node, 14}}, 1, 1, 1);
  app.connect(collect, pack, "m_telem");
  return app;
}

}  // namespace

int main() {
  const Architecture arch = Architecture::homogeneous(3, 4);
  const NodeId sensor{0}, actuator{1}, compute{2};

  // Cruise control runs with period 300 ticks, telemetry
  // at half that rate; Section 4 merges them over the LCM hyperperiod.
  const Application merged =
      merge({PeriodicApplication{cruise_controller(sensor, actuator, compute),
                                 300},
             PeriodicApplication{telemetry(compute, actuator), 600}});

  std::printf("=== cruise control + telemetry, merged over %lld ticks ===\n",
              static_cast<long long>(merged.period()));
  std::printf("%d processes, %d messages\n\n", merged.process_count(),
              merged.message_count());

  SynthesisOptions options;
  options.fault_model.k = 2;
  options.optimize.iterations = 200;
  options.optimize.seed = 42;
  options.schedule.max_scenarios = 100000;

  const SynthesisResult result = synthesize(merged, arch, options);
  std::printf("Policy assignment:\n%s\n", result.assignment.summary(merged).c_str());
  std::printf("WCSL %lld / deadline %lld -> %s\n",
              static_cast<long long>(result.wcsl.makespan),
              static_cast<long long>(merged.deadline()),
              result.schedulable ? "schedulable" : "NOT schedulable");
  const Time nft = non_ft_reference(merged, arch, options.optimize);
  std::printf("FTO: %.1f%%\n", fto_percent(result.wcsl.makespan, nft));

  if (result.schedule) {
    const ExecutionReport report =
        check_all_scenarios(merged, result.assignment, *result.schedule);
    std::printf("\nValidation over %d fault scenarios: %s\n",
                result.schedule->scenario_count, report.ok ? "OK" : "FAILED");
    for (const std::string& v : report.violations) {
      std::printf("  violation: %s\n", v.c_str());
    }
    std::printf("Frozen starts:\n");
    for (const auto& [name, at] : result.schedule->frozen_starts) {
      std::printf("  %s pinned at t = %lld\n", name.c_str(),
                  static_cast<long long>(at));
    }
    return report.ok && result.schedulable ? 0 : 1;
  }
  return result.schedulable ? 0 : 1;
}
