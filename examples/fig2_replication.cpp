// Reproduces the paper's Fig. 2: active replication vs. primary-backup for
// process P1 (C = 60 ms, alpha = 10 ms) replicated on nodes N1 and N2 to
// tolerate a single fault, and demonstrates the same trade-off with the
// library's WCSL analysis on a two-node architecture.
#include <cstdio>

#include "fault/recovery.h"
#include "sched/wcsl.h"

using namespace ftes;

int main() {
  const Time c = 60, alpha = 10;
  std::printf("=== Fig. 2: active replication vs primary-backup ===\n");
  std::printf("P1: C = %lld ms, alpha = %lld ms, k = 1\n\n",
              static_cast<long long>(c), static_cast<long long>(alpha));

  // Fig. 2b: active replication -- both replicas always run in parallel.
  std::printf("Active replication (P1(1) on N1, P1(2) on N2):\n");
  std::printf("  b1) no fault:   both finish at %lld ms\n",
              static_cast<long long>(c));
  std::printf("  b2) P1(1) faults: P1(2) still finishes at %lld ms\n\n",
              static_cast<long long>(c));

  // Fig. 2c: primary-backup -- the backup runs only after the primary's
  // fault is detected.
  std::printf("Primary-backup (backup activated on fault):\n");
  std::printf("  c1) no fault:   P1(1) finishes at %lld ms, P1(2) never runs\n",
              static_cast<long long>(c));
  std::printf("  c2) P1(1) faults: detection at %lld ms, P1(2) finishes at %lld ms\n\n",
              static_cast<long long>(c + alpha),
              static_cast<long long>(c + alpha + c));

  // The same comparison through the library: replication occupies both
  // nodes (resource cost) but its worst case stays C; recovery-based
  // tolerance (re-execution ~ primary-backup restricted to one node) pays
  // the time redundancy.
  Application app;
  const ProcessId p1 =
      app.add_process("P1", {{NodeId{0}, c}, {NodeId{1}, c}}, alpha, 0, 0);
  app.set_deadline(1000);
  const Architecture arch = Architecture::homogeneous(2, 5);
  const FaultModel fm{1};

  PolicyAssignment replication(app.process_count());
  {
    ProcessPlan plan = make_replication_plan(fm.k);
    plan.copies[0].node = NodeId{0};
    plan.copies[1].node = NodeId{1};
    replication.plan(p1) = plan;
  }
  PolicyAssignment reexecution(app.process_count());
  {
    ProcessPlan plan = make_checkpointing_plan(fm.k, 1);
    plan.copies[0].node = NodeId{0};
    reexecution.plan(p1) = plan;
  }

  std::printf("Library WCSL under k = 1:\n");
  std::printf("  active replication:     %lld ms (spatial redundancy)\n",
              static_cast<long long>(
                  evaluate_wcsl(app, arch, replication, fm).makespan));
  std::printf("  re-execution (1 ckpt):  %lld ms (time redundancy)\n",
              static_cast<long long>(
                  evaluate_wcsl(app, arch, reexecution, fm).makespan));
  return 0;
}
