// Quickstart: synthesize a fault-tolerant implementation of the paper's
// Fig. 3 example application on a two-node architecture.
//
//   * build the application model (WCET table with a mapping restriction),
//   * ask for k = 2 transient faults to be tolerated,
//   * run the full synthesis (policy assignment + mapping + checkpoint
//     refinement + schedule tables),
//   * print the resulting configuration psi = <F, M, S>.
#include <cstdio>

#include "core/metrics.h"
#include "core/synthesis.h"
#include "opt/baselines.h"

using namespace ftes;

int main() {
  // --- architecture: two nodes on a TDMA bus with 5 ms slots -------------
  Architecture arch = Architecture::homogeneous(2, 5);
  const NodeId n1{0}, n2{1};

  // --- application: Fig. 3 (WCETs in ms; X = restriction) ----------------
  Application app;
  const ProcessId p1 = app.add_process("P1", {{n1, 20}, {n2, 30}}, 5, 5, 5);
  const ProcessId p2 = app.add_process("P2", {{n1, 40}, {n2, 60}}, 5, 5, 5);
  const ProcessId p3 = app.add_process("P3", {{n1, 60}}, 5, 5, 5);  // X on N2
  const ProcessId p4 = app.add_process("P4", {{n1, 40}, {n2, 60}}, 5, 5, 5);
  const ProcessId p5 = app.add_process("P5", {{n1, 40}, {n2, 60}}, 5, 5, 5);
  app.connect(p1, p2, "m1");
  app.connect(p1, p3, "m2");
  app.connect(p2, p4, "m3");
  app.connect(p3, p5, "m4");
  app.set_deadline(600);

  // --- synthesis -----------------------------------------------------------
  SynthesisOptions options;
  options.fault_model.k = 2;
  options.optimize.iterations = 150;
  options.optimize.seed = 2008;

  const SynthesisResult result = synthesize(app, arch, options);

  std::printf("=== ftes quickstart: Fig. 3 application, k = %d ===\n\n",
              options.fault_model.k);
  std::printf("Policy assignment F and mapping M:\n%s\n",
              result.assignment.summary(app).c_str());
  std::printf("Worst-case schedule length: %lld ms (deadline %lld ms) -> %s\n",
              static_cast<long long>(result.wcsl.makespan),
              static_cast<long long>(app.deadline()),
              result.schedulable ? "schedulable" : "NOT schedulable");

  const Time nft = non_ft_reference(app, arch, options.optimize);
  std::printf("Fault tolerance overhead (FTO): %.1f%%\n",
              fto_percent(result.wcsl.makespan, nft));

  if (result.schedule) {
    std::printf("\nSchedule tables (S):\n%s",
                result.schedule->tables.to_text(arch).c_str());
  }
  return result.schedulable ? 0 : 1;
}
