// Reproduces the paper's Fig. 1: rollback recovery with checkpointing for
// process P1 with C1 = 60 ms, alpha = 10 ms, mu = 10 ms, chi = 5 ms.
//
// Prints the fault-free two-checkpoint timeline (Fig. 1b) and the timeline
// with one fault (Fig. 1c; with equidistant checkpoints every segment costs
// the same to re-execute, so the library places faults on the first
// segment), plus the checkpoint-count trade-off table the algebra implies.
#include <cstdio>

#include "fault/recovery.h"

using namespace ftes;

namespace {

void timeline(const char* title, const RecoveryParams& p, int n, int faults) {
  std::printf("%s\n", title);
  const Time seg = segment_length(p.wcet, n);
  Time at = 0;
  // Faults strike the first segment (worst-case-equivalent convention).
  for (int f = 1; f <= faults; ++f) {
    std::printf("  %3lld ms  P1/1 segment 1 (attempt %d) ... FAULT\n",
                static_cast<long long>(at), f);
    at += seg;
    std::printf("  %3lld ms  error detection (alpha = %lld)\n",
                static_cast<long long>(at), static_cast<long long>(p.alpha));
    at += p.alpha;
    std::printf("  %3lld ms  restore checkpoint (mu = %lld)\n",
                static_cast<long long>(at), static_cast<long long>(p.mu));
    at += p.mu;
  }
  for (int s = 1; s <= n; ++s) {
    std::printf("  %3lld ms  execution segment %d/%d (%lld ms)\n",
                static_cast<long long>(at), s, n,
                static_cast<long long>(seg));
    at += (s == n) ? p.wcet - seg * (n - 1) : seg;
    std::printf("  %3lld ms  save checkpoint (chi = %lld)\n",
                static_cast<long long>(at), static_cast<long long>(p.chi));
    at += p.chi;
  }
  std::printf("  total: %lld ms (algebra: %lld ms)\n\n",
              static_cast<long long>(at),
              static_cast<long long>(checkpointed_exec_time(p, n, faults)));
}

}  // namespace

int main() {
  const RecoveryParams p{60, 10, 10, 5};  // Fig. 1a
  std::printf("=== Fig. 1: rollback recovery with checkpointing ===\n");
  std::printf("P1: C = %lld, alpha = %lld, mu = %lld, chi = %lld (ms)\n\n",
              static_cast<long long>(p.wcet), static_cast<long long>(p.alpha),
              static_cast<long long>(p.mu), static_cast<long long>(p.chi));

  timeline("Fig. 1b -- two checkpoints, no fault:", p, 2, 0);
  timeline("Fig. 1c -- two checkpoints, one fault:", p, 2, 1);

  std::printf("Checkpoint-count trade-off, k faults to tolerate:\n");
  std::printf("  n   E(n,0)  E(n,1)  E(n,2)  E(n,3)\n");
  for (int n = 1; n <= 6; ++n) {
    std::printf("  %d   %5lld   %5lld   %5lld   %5lld\n", n,
                static_cast<long long>(checkpointed_exec_time(p, n, 0)),
                static_cast<long long>(checkpointed_exec_time(p, n, 1)),
                static_cast<long long>(checkpointed_exec_time(p, n, 2)),
                static_cast<long long>(checkpointed_exec_time(p, n, 3)));
  }
  for (int k = 1; k <= 3; ++k) {
    std::printf("locally optimal n for k = %d: %d ([27])\n", k,
                optimal_checkpoints_local(p, k));
  }
  return 0;
}
