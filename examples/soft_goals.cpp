// Soft/hard scheduling scenario (the [17] extension): a hard control chain
// shares two nodes with best-effort diagnostic and logging work.  As the
// deadline tightens, the optimizer sheds soft work by descending utility
// density while the hard chain stays guaranteed under k = 2 faults.
#include <cstdio>

#include "opt/policy_assignment.h"
#include "opt/soft_hard.h"
#include "sched/wcsl.h"

using namespace ftes;

int main() {
  const Architecture arch = Architecture::homogeneous(2, 4);
  const NodeId n1{0}, n2{1};
  const FaultModel fm{2};

  Application app;
  // Hard chain: sense -> control -> actuate.
  const ProcessId sense = app.add_process("Sense", {{n1, 10}, {n2, 12}}, 1, 1, 1);
  const ProcessId control =
      app.add_process("Control", {{n1, 24}, {n2, 24}}, 2, 2, 2);
  const ProcessId act = app.add_process("Actuate", {{n1, 8}, {n2, 8}}, 1, 1, 1);
  app.connect(sense, control);
  app.connect(control, act);

  // Soft work with decreasing value density.
  auto soft = [&](const char* name, Time wcet, double utility) {
    Process p;
    p.name = name;
    p.wcet[n1] = wcet;
    p.wcet[n2] = wcet;
    p.alpha = p.mu = p.chi = 1;
    p.soft = SoftSpec{utility, 120, 200};
    return app.add_process(std::move(p));
  };
  soft("Diagnose", 16, 12.0);
  soft("LogFast", 10, 6.0);
  soft("LogBulk", 40, 4.0);

  PolicyAssignment pa =
      greedy_initial(app, arch, fm, PolicySpace::kReexecutionOnly, 1);

  std::printf("=== soft/hard scheduling under k = %d faults ===\n\n", fm.k);
  std::printf("  deadline   feasible  utility  kept\n");
  for (Time deadline : {400, 260, 200, 160, 120}) {
    app.set_deadline(deadline);
    SoftHardOptions opts;
    opts.iterations = 120;
    opts.seed = 9;
    const SoftHardResult r = optimize_soft_hard(app, arch, pa, fm, opts);
    std::printf("  %8lld   %8s  %7.1f  ", static_cast<long long>(deadline),
                r.evaluation.hard_feasible ? "yes" : "NO",
                r.evaluation.total_utility);
    for (int i = 0; i < app.process_count(); ++i) {
      if (app.process(ProcessId{i}).soft &&
          !r.dropped[static_cast<std::size_t>(i)]) {
        std::printf("%s ", app.process(ProcessId{i}).name.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("\nHard chain Sense->Control->Actuate is never dropped.\n");
  return 0;
}
