// Tests of the policy model F = <P, Q, R, X> (Section 4, Fig. 4) and its
// tolerance invariant.
#include "fault/policy.h"

#include <gtest/gtest.h>

#include "fault/scenario.h"
#include "fixtures.h"

namespace ftes {
namespace {

using ::ftes::testing::fig3_app;
using ::ftes::testing::two_node_arch;

TEST(Policy, CheckpointingPlanShape) {
  const ProcessPlan plan = make_checkpointing_plan(2, 3);
  EXPECT_EQ(plan.kind, PolicyKind::kCheckpointing);
  EXPECT_EQ(plan.copy_count(), 1);
  EXPECT_EQ(plan.replica_count(), 0);       // Q = 0
  EXPECT_EQ(plan.copies[0].recoveries, 2);  // R = k
  EXPECT_EQ(plan.copies[0].checkpoints, 3); // X = 3
  EXPECT_TRUE(plan.tolerates(2));
}

TEST(Policy, ReplicationPlanShape) {
  // Fig. 4b: k = 2 -> three copies, R = 0 each.
  const ProcessPlan plan = make_replication_plan(2);
  EXPECT_EQ(plan.kind, PolicyKind::kReplication);
  EXPECT_EQ(plan.copy_count(), 3);
  EXPECT_EQ(plan.replica_count(), 2);  // Q = k
  for (const CopyPlan& c : plan.copies) {
    EXPECT_EQ(c.recoveries, 0);
    EXPECT_EQ(c.checkpoints, 0);
  }
  EXPECT_TRUE(plan.tolerates(2));
  EXPECT_FALSE(plan.tolerates(3));
}

TEST(Policy, HybridPlanShape) {
  // Fig. 4c: k = 2, one extra replica, one recovery in total.
  const ProcessPlan plan = make_hybrid_plan(2, 1, 1);
  EXPECT_EQ(plan.kind, PolicyKind::kReplicationAndCheckpointing);
  EXPECT_EQ(plan.copy_count(), 2);
  EXPECT_EQ(plan.total_recoveries(), 1);
  EXPECT_TRUE(plan.tolerates(2));
}

TEST(Policy, HybridRejectsDegenerateQ) {
  EXPECT_THROW((void)make_hybrid_plan(2, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)make_hybrid_plan(2, 2, 1), std::invalid_argument);
}

// Property (Section 4 / DESIGN.md): the closed-form invariant
// copies + total recoveries >= k+1 holds exactly when every adversarial
// split of k faults leaves a surviving copy.
class ToleranceInvariant
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ToleranceInvariant, MatchesExhaustiveAdversary) {
  const auto [k, copies, total_recoveries] = GetParam();
  // Distribute the recoveries in a few shapes and compare invariant vs.
  // exhaustive enumeration.
  for (int front = 0; front <= total_recoveries; ++front) {
    ProcessPlan plan;
    plan.kind = PolicyKind::kReplicationAndCheckpointing;
    plan.copies.assign(static_cast<std::size_t>(copies), CopyPlan{});
    plan.copies[0].recoveries = front;
    plan.copies[0].checkpoints = front > 0 ? 1 : 0;
    if (copies > 1) {
      plan.copies[1].recoveries = total_recoveries - front;
      plan.copies[1].checkpoints = total_recoveries - front > 0 ? 1 : 0;
    } else if (front != total_recoveries) {
      continue;  // cannot place the rest
    }
    EXPECT_EQ(plan.tolerates(k), process_tolerates_all_scenarios(plan, k))
        << "k=" << k << " copies=" << copies << " front=" << front;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ToleranceInvariant,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),   // k
                       ::testing::Values(1, 2, 3, 5),   // copies
                       ::testing::Values(0, 1, 2, 4))); // total recoveries

TEST(PolicyAssignment, ValidateAcceptsMappedCheckpointing) {
  auto f = fig3_app();
  const FaultModel fm{2};
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(2, 1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  EXPECT_NO_THROW(pa.validate(f.app, fm));
}

TEST(PolicyAssignment, ValidateRejectsUnmappedCopy) {
  auto f = fig3_app();
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(2, 1));
  EXPECT_THROW(pa.validate(f.app, FaultModel{2}), std::invalid_argument);
}

TEST(PolicyAssignment, ValidateRejectsRestrictedNode) {
  auto f = fig3_app();
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(2, 1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  pa.plan(f.p3).copies[0].node = NodeId{1};  // P3 is restricted on N2
  EXPECT_THROW(pa.validate(f.app, FaultModel{2}), std::invalid_argument);
}

TEST(PolicyAssignment, ValidateRejectsInsufficientTolerance) {
  auto f = fig3_app();
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(1, 1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  EXPECT_THROW(pa.validate(f.app, FaultModel{3}), std::invalid_argument);
}

TEST(PolicyAssignment, ValidateRejectsRecoveryWithoutCheckpoint) {
  auto f = fig3_app();
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(2, 1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  pa.plan(f.p1).copies[0].checkpoints = 0;  // still has recoveries
  EXPECT_THROW(pa.validate(f.app, FaultModel{2}), std::invalid_argument);
}

TEST(PolicyAssignment, ValidateRejectsViolatedFixedMapping) {
  auto f = fig3_app();
  f.app.process(f.p1).fixed_mapping = NodeId{1};
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(2, 1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  EXPECT_THROW(pa.validate(f.app, FaultModel{2}), std::invalid_argument);
}

TEST(PolicyAssignment, SummaryMentionsEveryProcess) {
  auto f = fig3_app();
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(2, 1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  const std::string s = pa.summary(f.app);
  for (const Process& p : f.app.processes()) {
    EXPECT_NE(s.find(p.name), std::string::npos);
  }
}

}  // namespace
}  // namespace ftes
