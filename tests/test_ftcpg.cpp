// Tests of the FT-CPG construction (Section 5.1), including the structural
// reproduction of the paper's Fig. 5 example.
#include "ftcpg/builder.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

TEST(Guard, AddAndContains) {
  Guard g;
  g.add(Literal{3, true});
  g.add(Literal{1, false});
  g.add(Literal{3, true});  // duplicate ignored
  EXPECT_EQ(g.literals().size(), 2u);
  EXPECT_TRUE(g.contains(Literal{3, true}));
  EXPECT_FALSE(g.contains(Literal{3, false}));
  EXPECT_EQ(g.faults(), 1);
  EXPECT_THROW(g.add(Literal{3, false}), std::logic_error);
}

TEST(Guard, ContradictionAndConjunction) {
  Guard a;
  a.add(Literal{1, true});
  Guard b;
  b.add(Literal{1, false});
  Guard c;
  c.add(Literal{2, true});
  EXPECT_TRUE(a.contradicts(b));
  EXPECT_FALSE(a.contradicts(c));
  const Guard ac = a.conjoin(c);
  EXPECT_EQ(ac.faults(), 2);
  EXPECT_THROW(a.conjoin(b), std::logic_error);
}

TEST(Ftcpg, Fig5CopyCounts) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);

  // The paper's Fig. 5b copy counts for k = 2 with re-execution:
  // P1: 1 + 2 recoveries = 3 copies; P2 and P4 inherit P1's three fault
  // contexts: 3 + 2 + 1 = 6 copies; frozen P3 collapses contexts: 3 copies.
  EXPECT_EQ(g.copies_of(f.p1).size(), 3u);
  EXPECT_EQ(g.copies_of(f.p2).size(), 6u);
  EXPECT_EQ(g.copies_of(f.p4).size(), 6u);
  EXPECT_EQ(g.copies_of(f.p3).size(), 3u);
}

TEST(Ftcpg, Fig5Census) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  const Ftcpg::Census c = g.census();
  // Synchronization nodes: S_m2, S_m3, S_P3 (m0 between co-located P1 and
  // P2 is folded; m1 is a regular cross-node message).
  EXPECT_EQ(c.synchronization, 3);
  // Conditional executions: P1 (2) + P2 (3) + P4 (3) + P3 (2) = 10.
  EXPECT_EQ(c.conditional, 10);
  // Regular: final attempts 8 (P1 1, P2 3, P4 3, P3 1) + 3 m1 copies = 11.
  EXPECT_EQ(c.regular, 11);
  EXPECT_EQ(g.node_count(), 24);
  EXPECT_NO_THROW(g.check_invariants());
}

TEST(Ftcpg, Fig5MessageCopies) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  int m1_copies = 0;
  for (const FtcpgNode& n : g.nodes()) {
    if (n.role == FtcpgNodeRole::kMessage && n.message == f.m1) ++m1_copies;
  }
  EXPECT_EQ(m1_copies, 3);  // one per completion alternative of P1
}

TEST(Ftcpg, GuardsCarryFaultContexts) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  // Each copy's guard consumes at most k faults, and copies of one process
  // have pairwise distinct guards (disjoint alternatives).
  for (ProcessId pid : {f.p1, f.p2, f.p4}) {
    const std::vector<int> copies = g.copies_of(pid);
    for (std::size_t i = 0; i < copies.size(); ++i) {
      EXPECT_LE(g.node(copies[i]).guard.faults(), f.model.k);
      for (std::size_t j = i + 1; j < copies.size(); ++j) {
        EXPECT_FALSE(g.node(copies[i]).guard == g.node(copies[j]).guard);
      }
    }
  }
  // Frozen P3's copies have context-free guards (only their own literals).
  for (int v : g.copies_of(f.p3)) {
    for (const Literal& lit : g.node(v).guard.literals()) {
      EXPECT_EQ(g.node(lit.vertex).process, f.p3);
    }
  }
}

TEST(Ftcpg, TransparencyShrinksTheGraph) {
  auto frozen = fig5_app();
  auto open = fig5_app();
  open.app.process(open.p3).frozen = false;
  open.app.message(open.m2).frozen = false;
  open.app.message(open.m3).frozen = false;
  const Ftcpg g_frozen = build_ftcpg(frozen.app, frozen.assignment, frozen.model);
  const Ftcpg g_open = build_ftcpg(open.app, open.assignment, open.model);
  // Without sync nodes P3 inherits every joint fault context of P2 and P4,
  // so the FT-CPG grows (Section 3.3's debugability argument).
  EXPECT_GT(g_open.copies_of(open.p3).size(), g_frozen.copies_of(frozen.p3).size());
  EXPECT_GT(g_open.node_count(), g_frozen.node_count());
  EXPECT_NO_THROW(g_open.check_invariants());
}

TEST(Ftcpg, ReplicationProducesParallelCopies) {
  auto f = fig5_app();
  // Replicate P1 instead of re-executing it.
  ProcessPlan plan = make_replication_plan(f.model.k);
  plan.copies[0].node = NodeId{0};
  plan.copies[1].node = NodeId{1};
  plan.copies[2].node = NodeId{0};
  f.assignment.plan(f.p1) = plan;
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  EXPECT_EQ(g.copies_of(f.p1).size(), 3u);  // k+1 replicas, one context each
  for (int v : g.copies_of(f.p1)) {
    EXPECT_EQ(g.node(v).kind, FtcpgNodeKind::kRegular);
  }
  EXPECT_NO_THROW(g.check_invariants());
}

TEST(Ftcpg, VertexCapGuardsExplosion) {
  auto f = fig5_app();
  FtcpgBuildOptions opts;
  opts.max_vertices = 5;
  EXPECT_THROW((void)build_ftcpg(f.app, f.assignment, f.model, opts),
               std::length_error);
}

TEST(Ftcpg, DotExportMentionsSyncNodes) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("S_P3"), std::string::npos);
  EXPECT_NE(dot.find("S_m2"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
}

TEST(Ftcpg, ZeroFaultGraphIsPlain) {
  auto f = fig5_app();
  FaultModel fm{0};
  PolicyAssignment pa(f.app.process_count());
  for (int i = 0; i < f.app.process_count(); ++i) {
    ProcessPlan plan;
    CopyPlan copy;
    copy.node = NodeId{i < 2 ? 0 : 1};
    copy.checkpoints = 1;
    plan.copies.push_back(copy);
    pa.plan(ProcessId{i}) = plan;
  }
  const Ftcpg g = build_ftcpg(f.app, pa, fm);
  const Ftcpg::Census c = g.census();
  EXPECT_EQ(c.conditional, 0);
  EXPECT_EQ(c.conditional_edges, 0);
  // 4 processes + 1 m1 message + 3 sync (P3, m2, m3 still frozen).
  EXPECT_EQ(g.node_count(), 8);
}

}  // namespace
}  // namespace ftes
