// Tests of the design-space exploration (Section 6): policy assignment,
// mapping, checkpoint optimization and the Fig. 7/8 baselines.
#include <gtest/gtest.h>

#include "fault/recovery.h"
#include "gen/taskgen.h"
#include "opt/baselines.h"
#include "opt/checkpoint_opt.h"
#include "opt/mapping_opt.h"
#include "opt/policy_assignment.h"
#include "sched/wcsl.h"

namespace ftes {
namespace {

struct Instance {
  Application app;
  Architecture arch;
};

Instance make_instance(int processes, int nodes, std::uint64_t seed) {
  TaskGenParams params;
  params.process_count = processes;
  params.node_count = nodes;
  Rng rng(seed);
  Instance inst{generate_application(params, rng),
                generate_architecture(params)};
  return inst;
}

OptimizeOptions quick_options(std::uint64_t seed) {
  OptimizeOptions opts;
  opts.iterations = 60;
  opts.neighborhood = 10;
  opts.seed = seed;
  return opts;
}

TEST(GreedyInitial, ProducesValidAssignments) {
  const Instance inst = make_instance(30, 3, 11);
  const FaultModel fm{3};
  for (PolicySpace space :
       {PolicySpace::kReexecutionOnly, PolicySpace::kCheckpointingOnly,
        PolicySpace::kReplicationOnly, PolicySpace::kFull}) {
    const PolicyAssignment pa =
        greedy_initial(inst.app, inst.arch, fm, space, 8);
    EXPECT_NO_THROW(pa.validate(inst.app, fm));
  }
}

TEST(GreedyInitial, RespectsFixedMappings) {
  Instance inst = make_instance(20, 3, 12);
  // Fix a process that can run on node 0.
  for (int i = 0; i < inst.app.process_count(); ++i) {
    if (inst.app.process(ProcessId{i}).can_run_on(NodeId{0})) {
      inst.app.process(ProcessId{i}).fixed_mapping = NodeId{0};
      break;
    }
  }
  const FaultModel fm{2};
  const PolicyAssignment pa = greedy_initial(
      inst.app, inst.arch, fm, PolicySpace::kReexecutionOnly, 8);
  EXPECT_NO_THROW(pa.validate(inst.app, fm));
}

TEST(TabuSearch, NeverWorseThanGreedyStart) {
  const Instance inst = make_instance(25, 3, 13);
  const FaultModel fm{3};
  const OptimizeOptions opts = quick_options(13);
  const PolicyAssignment initial =
      greedy_initial(inst.app, inst.arch, fm, PolicySpace::kFull,
                     opts.max_checkpoints);
  const Time initial_cost =
      evaluate_wcsl(inst.app, inst.arch, initial, fm).makespan;
  const OptimizeResult result =
      optimize_from(inst.app, inst.arch, fm, opts, initial);
  EXPECT_LE(result.wcsl, initial_cost);
  EXPECT_NO_THROW(result.assignment.validate(inst.app, fm));
  EXPECT_GT(result.evaluations, 1);
}

TEST(TabuSearch, ResultIsValidAcrossSpaces) {
  const Instance inst = make_instance(20, 4, 14);
  const FaultModel fm{3};
  for (PolicySpace space :
       {PolicySpace::kReexecutionOnly, PolicySpace::kReplicationOnly,
        PolicySpace::kFull}) {
    OptimizeOptions opts = quick_options(14);
    opts.space = space;
    if (space != PolicySpace::kFull) opts.optimize_checkpoints = false;
    const OptimizeResult r =
        optimize_policy_and_mapping(inst.app, inst.arch, fm, opts);
    EXPECT_NO_THROW(r.assignment.validate(inst.app, fm)) << static_cast<int>(space);
    EXPECT_GT(r.wcsl, 0);
  }
}

TEST(Baselines, FullSpaceDominatesRestrictedSpaces) {
  // MXR explores a superset of MX's and MR's spaces; with a shared seed and
  // budget it should (almost surely) not be worse than both on average.
  // We assert the average over instances to keep the test robust.
  double mxr_sum = 0, mx_sum = 0, mr_sum = 0, sfx_sum = 0;
  const int instances = 3;
  for (int i = 0; i < instances; ++i) {
    const Instance inst = make_instance(20, 3, 100 + static_cast<std::uint64_t>(i));
    const FaultModel fm{3};
    const OptimizeOptions opts = quick_options(100 + static_cast<std::uint64_t>(i));
    mxr_sum += static_cast<double>(run_mxr(inst.app, inst.arch, fm, opts).wcsl);
    mx_sum += static_cast<double>(run_mx(inst.app, inst.arch, fm, opts).wcsl);
    mr_sum += static_cast<double>(run_mr(inst.app, inst.arch, fm, opts).wcsl);
    sfx_sum += static_cast<double>(run_sfx(inst.app, inst.arch, fm, opts).wcsl);
  }
  EXPECT_LE(mxr_sum, mx_sum * 1.02);  // small tolerance for heuristic noise
  EXPECT_LE(mxr_sum, mr_sum * 1.02);
  EXPECT_LE(mx_sum, sfx_sum * 1.05);  // FT-aware mapping helps re-execution
}

TEST(Baselines, NonFtReferenceIsShortest) {
  const Instance inst = make_instance(22, 3, 19);
  const FaultModel fm{3};
  const OptimizeOptions opts = quick_options(19);
  const Time nft = non_ft_reference(inst.app, inst.arch, opts);
  EXPECT_LT(nft, run_mxr(inst.app, inst.arch, fm, opts).wcsl);
}

TEST(MappingOpt, ImprovesOrMatchesGreedy) {
  const Instance inst = make_instance(30, 4, 21);
  MappingOptOptions opts;
  opts.iterations = 80;
  opts.seed = 21;
  const MappingOptResult r = optimize_mapping_no_ft(inst.app, inst.arch, opts);
  EXPECT_GT(r.makespan, 0);
  // All copies plain (no FT overheads).
  for (int i = 0; i < inst.app.process_count(); ++i) {
    EXPECT_EQ(r.assignment.plan(ProcessId{i}).copies[0].checkpoints, 0);
    EXPECT_EQ(r.assignment.plan(ProcessId{i}).copies[0].recoveries, 0);
  }
}

// --- checkpoint optimization ----------------------------------------------

TEST(CheckpointOpt, LocalAssignmentMatchesClosedForm) {
  const Instance inst = make_instance(15, 2, 23);
  const FaultModel fm{4};
  PolicyAssignment pa = greedy_initial(inst.app, inst.arch, fm,
                                       PolicySpace::kCheckpointingOnly, 8);
  apply_local_checkpointing(inst.app, pa, 8);
  for (int i = 0; i < inst.app.process_count(); ++i) {
    const Process& p = inst.app.process(ProcessId{i});
    const CopyPlan& c = pa.plan(ProcessId{i}).copies[0];
    RecoveryParams params{p.wcet_on(c.node), p.alpha, p.mu, p.chi};
    EXPECT_EQ(c.checkpoints, optimal_checkpoints_local(params, c.recoveries, 8));
  }
}

TEST(CheckpointOpt, GlobalNeverWorseThanLocal) {
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    const Instance inst = make_instance(18, 3, seed);
    const FaultModel fm{3};
    PolicyAssignment pa = greedy_initial(inst.app, inst.arch, fm,
                                         PolicySpace::kCheckpointingOnly, 8);
    apply_local_checkpointing(inst.app, pa, 8);
    const Time local = evaluate_wcsl(inst.app, inst.arch, pa, fm).makespan;
    const CheckpointOptResult global =
        optimize_checkpoints_global(inst.app, inst.arch, fm, pa, 8);
    EXPECT_LE(global.wcsl, local) << "seed " << seed;
  }
}

TEST(CheckpointOpt, GreedyMatchesExactOnTinyInstances) {
  // The coordinate descent should land close to the exhaustive optimum on
  // instances small enough to enumerate (the ILP stand-in oracle).
  const Instance inst = make_instance(5, 2, 41);
  const FaultModel fm{2};
  PolicyAssignment pa = greedy_initial(inst.app, inst.arch, fm,
                                       PolicySpace::kCheckpointingOnly, 4);
  const CheckpointOptResult greedy =
      optimize_checkpoints_global(inst.app, inst.arch, fm, pa, 4);
  const CheckpointOptResult exact =
      optimize_checkpoints_exact(inst.app, inst.arch, fm, pa, 4);
  EXPECT_GE(greedy.wcsl, exact.wcsl);
  EXPECT_LE(static_cast<double>(greedy.wcsl),
            1.05 * static_cast<double>(exact.wcsl));
}

TEST(CheckpointOpt, ExactGuardsSearchSpace) {
  const Instance inst = make_instance(30, 2, 43);
  const FaultModel fm{2};
  PolicyAssignment pa = greedy_initial(inst.app, inst.arch, fm,
                                       PolicySpace::kCheckpointingOnly, 8);
  EXPECT_THROW(
      optimize_checkpoints_exact(inst.app, inst.arch, fm, pa, 8, 1000),
      std::length_error);
}

}  // namespace
}  // namespace ftes
