// Randomized cross-validation properties over generated applications:
// the pieces of the pipeline must agree with each other on arbitrary
// instances, not just on the hand-built fixtures.
#include <gtest/gtest.h>

#include "gen/taskgen.h"
#include "opt/policy_assignment.h"
#include "sched/cond_scheduler.h"
#include "sched/root_schedule.h"
#include "sched/wcsl.h"
#include "sim/executor.h"

namespace ftes {
namespace {

struct RandomInstance {
  Application app;
  Architecture arch;
  PolicyAssignment pa;
  FaultModel fm;
};

RandomInstance make(std::uint64_t seed, int processes, int k,
                    double frozen_fraction) {
  TaskGenParams params;
  params.process_count = processes;
  params.node_count = 2;
  params.frozen_process_fraction = frozen_fraction;
  params.frozen_message_fraction = frozen_fraction;
  Rng rng(seed);
  RandomInstance inst{generate_application(params, rng),
                      generate_architecture(params), PolicyAssignment{},
                      FaultModel{k}};
  inst.pa = greedy_initial(inst.app, inst.arch, inst.fm,
                           PolicySpace::kReexecutionOnly, 1);
  return inst;
}

class RandomPipeline : public ::testing::TestWithParam<std::uint64_t> {};

// Property 1: the synthesized conditional schedule passes the exhaustive
// executor check (deadlines irrelevant here -- we check consistency and
// transparency, so give a generous deadline).
TEST_P(RandomPipeline, CondSchedulePassesExecutor) {
  RandomInstance inst = make(GetParam(), 7, 2, 0.3);
  inst.app.set_deadline(kTimeInfinity / 2);
  const CondScheduleResult r =
      conditional_schedule(inst.app, inst.arch, inst.pa, inst.fm);
  const ExecutionReport report = check_all_scenarios(inst.app, inst.pa, r);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

// Property 2: the analytic WCSL DP dominates the scenario-exact worst case
// (with idealized signalling, which is what the DP models).
TEST_P(RandomPipeline, DpDominatesScenarioExact) {
  RandomInstance inst = make(GetParam() + 100, 7, 2, 0.0);
  inst.app.set_deadline(kTimeInfinity / 2);
  CondScheduleOptions opts;
  opts.respect_transparency = false;
  opts.schedule_condition_broadcasts = false;
  const CondScheduleResult exact =
      conditional_schedule(inst.app, inst.arch, inst.pa, inst.fm, opts);
  const WcslResult dp = evaluate_wcsl(inst.app, inst.arch, inst.pa, inst.fm);
  EXPECT_GE(dp.makespan, exact.wcsl) << "seed " << GetParam();
}

// Property 3: root schedules validate over all scenarios and dominate the
// budget-DP WCSL (full transparency can only cost).
TEST_P(RandomPipeline, RootScheduleValidAndDominates) {
  RandomInstance inst = make(GetParam() + 200, 8, 2, 0.0);
  inst.app.set_deadline(kTimeInfinity / 2);
  const RootSchedule root =
      build_root_schedule(inst.app, inst.arch, inst.pa, inst.fm);
  const RootValidation v =
      validate_root_schedule(inst.app, inst.arch, inst.pa, inst.fm, root);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations.front());
  EXPECT_GE(root.wcsl,
            evaluate_wcsl(inst.app, inst.arch, inst.pa, inst.fm).makespan);
}

// Property 4: WCSL is monotone in k for fixed plans (more faults can only
// lengthen the worst case) -- checked on the same mapping with growing
// recovery budgets.
TEST_P(RandomPipeline, WcslMonotoneInFaults) {
  Time prev = 0;
  for (int k = 0; k <= 3; ++k) {
    RandomInstance inst = make(GetParam() + 300, 12, k, 0.0);
    const Time m = evaluate_wcsl(inst.app, inst.arch, inst.pa, inst.fm).makespan;
    EXPECT_GE(m, prev) << "seed " << GetParam() << " k " << k;
    prev = m;
  }
}

// Property 5: every generated scenario-exact schedule tolerates its k
// faults -- each process completes in every admissible scenario.
TEST_P(RandomPipeline, AllProcessesCompleteInEveryScenario) {
  RandomInstance inst = make(GetParam() + 400, 6, 2, 0.2);
  inst.app.set_deadline(kTimeInfinity / 2);
  const CondScheduleResult r =
      conditional_schedule(inst.app, inst.arch, inst.pa, inst.fm);
  for (const ScenarioTrace& tr : r.traces) {
    std::vector<bool> completed(
        static_cast<std::size_t>(inst.app.process_count()), false);
    for (const ExecTrace& e : tr.execs) {
      if (!e.died) completed[static_cast<std::size_t>(e.copy.process.get())] = true;
    }
    for (int i = 0; i < inst.app.process_count(); ++i) {
      EXPECT_TRUE(completed[static_cast<std::size_t>(i)])
          << inst.app.process(ProcessId{i}).name << " in "
          << tr.scenario.to_string(inst.app);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ftes
