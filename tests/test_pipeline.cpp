// Tests of the stage-based synthesis pipeline (core/pipeline.h): the
// default pipeline must be bit-identical to the legacy synthesize() facade
// and to a manually chained run of the stage functions, for any thread
// count; progress callbacks and cancellation must behave as documented;
// per-stage metrics must serialize to JSON.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/synthesis.h"
#include "fixtures.h"
#include "gen/taskgen.h"
#include "opt/checkpoint_opt.h"
#include "util/thread_pool.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

struct Instance {
  Application app;
  Architecture arch;
};

Instance make_instance(int processes, int nodes, std::uint64_t seed) {
  TaskGenParams params;
  params.process_count = processes;
  params.node_count = nodes;
  Rng rng(seed);
  return Instance{generate_application(params, rng),
                  generate_architecture(params)};
}

SynthesisOptions quick(int k, std::uint64_t seed) {
  SynthesisOptions opts;
  opts.fault_model.k = k;
  opts.optimize.iterations = 40;
  opts.optimize.neighborhood = 8;
  opts.optimize.seed = seed;
  return opts;
}

void expect_same_assignment(const PolicyAssignment& a,
                            const PolicyAssignment& b) {
  ASSERT_EQ(a.process_count(), b.process_count());
  for (int i = 0; i < a.process_count(); ++i) {
    const ProcessPlan& pa = a.plan(ProcessId{i});
    const ProcessPlan& pb = b.plan(ProcessId{i});
    ASSERT_EQ(pa.copy_count(), pb.copy_count()) << "process " << i;
    for (int j = 0; j < pa.copy_count(); ++j) {
      const CopyPlan& ca = pa.copies[static_cast<std::size_t>(j)];
      const CopyPlan& cb = pb.copies[static_cast<std::size_t>(j)];
      EXPECT_EQ(ca.node, cb.node) << i << "/" << j;
      EXPECT_EQ(ca.checkpoints, cb.checkpoints) << i << "/" << j;
      EXPECT_EQ(ca.recoveries, cb.recoveries) << i << "/" << j;
    }
  }
}

void expect_same_result(const SynthesisResult& a, const SynthesisResult& b) {
  expect_same_assignment(a.assignment, b.assignment);
  EXPECT_EQ(a.wcsl.makespan, b.wcsl.makespan);
  EXPECT_EQ(a.wcsl.process_finish, b.wcsl.process_finish);
  EXPECT_EQ(a.schedulable, b.schedulable);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.schedule.has_value(), b.schedule.has_value());
  if (a.schedule) {
    EXPECT_EQ(a.schedule->wcsl, b.schedule->wcsl);
    EXPECT_EQ(a.schedule->scenario_count, b.schedule->scenario_count);
    EXPECT_EQ(a.schedule->tables.total_entries(),
              b.schedule->tables.total_entries());
  }
}

// The headline acceptance criterion: synthesize() (the thin wrapper) and a
// hand-built default Pipeline produce bit-identical results across seeds
// and thread counts.
TEST(Pipeline, DefaultPipelineBitIdenticalToSynthesize) {
  auto f = fig5_app();
  ThreadPool pool(3);  // real helpers even on single-core hosts
  for (std::uint64_t seed : {1ull, 7ull, 2008ull}) {
    for (int threads : {1, 4}) {
      SynthesisOptions opts = quick(2, seed);
      opts.optimize.threads = threads;
      opts.optimize.pool = &pool;

      const SynthesisResult via_facade = synthesize(f.app, f.arch, opts);

      SynthesisContext ctx(f.app, f.arch, opts);
      Pipeline pipeline = Pipeline::default_pipeline();
      const SynthesisResult via_pipeline = pipeline.run(ctx);

      expect_same_result(via_facade, via_pipeline);
      ASSERT_TRUE(via_pipeline.schedule.has_value());
    }
  }
}

// The pipeline must also equal the legacy facade's body: the stage
// functions chained by hand exactly as the monolithic synthesize() did.
TEST(Pipeline, MatchesManuallyChainedStageFunctions) {
  const Instance inst = make_instance(20, 3, 31);
  SynthesisOptions opts = quick(3, 31);
  opts.build_schedule_tables = false;

  OptimizeResult opt = optimize_policy_and_mapping(inst.app, inst.arch,
                                                   opts.fault_model,
                                                   opts.optimize);
  int evaluations = opt.evaluations;
  CheckpointOptResult refined = optimize_checkpoints_global(
      inst.app, inst.arch, opts.fault_model, std::move(opt.assignment),
      opts.optimize.max_checkpoints);
  evaluations += refined.evaluations;
  const WcslResult wcsl = evaluate_wcsl(inst.app, inst.arch,
                                        refined.assignment, opts.fault_model);

  const SynthesisResult result = synthesize(inst.app, inst.arch, opts);
  expect_same_assignment(result.assignment, refined.assignment);
  EXPECT_EQ(result.wcsl.makespan, wcsl.makespan);
  EXPECT_EQ(result.schedulable, wcsl.meets_deadlines(inst.app));
  EXPECT_EQ(result.evaluations, evaluations);
}

TEST(Pipeline, ThreadCountDoesNotChangeResults) {
  const Instance inst = make_instance(14, 2, 11);
  ThreadPool pool(3);

  SynthesisResult results[2];
  int i = 0;
  for (int threads : {1, 4}) {
    SynthesisOptions opts = quick(2, 11);
    opts.optimize.threads = threads;
    opts.optimize.pool = &pool;
    opts.build_schedule_tables = false;
    results[i++] = synthesize(inst.app, inst.arch, opts);
  }
  expect_same_result(results[0], results[1]);
}

TEST(Pipeline, ReportsProgressPerStage) {
  auto f = fig5_app();
  SynthesisOptions opts = quick(2, 3);

  SynthesisContext ctx(f.app, f.arch, opts);
  std::vector<std::string> events;
  ctx.on_progress([&](const StageProgress& p) {
    EXPECT_EQ(p.count, 3);
    events.push_back(p.stage + (p.finished ? "/done" : "/start"));
  });
  Pipeline pipeline = Pipeline::default_pipeline();
  (void)pipeline.run(ctx);

  const std::vector<std::string> expected{
      "policy_assignment/start", "policy_assignment/done",
      "checkpoint_refine/start", "checkpoint_refine/done",
      "schedule_tables/start",   "schedule_tables/done"};
  EXPECT_EQ(events, expected);
}

TEST(Pipeline, CancelBeforeRunSkipsEveryStage) {
  auto f = fig5_app();
  SynthesisContext ctx(f.app, f.arch, quick(2, 3));
  ctx.request_cancel();
  Pipeline pipeline = Pipeline::default_pipeline();
  const SynthesisResult result = pipeline.run(ctx);

  EXPECT_EQ(result.evaluations, 0);
  EXPECT_FALSE(result.schedulable);
  ASSERT_EQ(pipeline.metrics().size(), 3u);
  for (const StageMetrics& m : pipeline.metrics()) {
    EXPECT_TRUE(m.skipped) << m.stage;
  }
}

TEST(Pipeline, CancelDuringFirstStageSkipsTheRest) {
  auto f = fig5_app();
  SynthesisContext ctx(f.app, f.arch, quick(2, 3));
  // Cancel as soon as the first stage starts: its tabu loop exits at the
  // next iteration check and the remaining stages never run.
  ctx.on_progress([&](const StageProgress& p) {
    if (p.index == 0 && !p.finished) ctx.request_cancel();
  });
  Pipeline pipeline = Pipeline::default_pipeline();
  const SynthesisResult result = pipeline.run(ctx);

  ASSERT_EQ(pipeline.metrics().size(), 3u);
  EXPECT_FALSE(pipeline.metrics()[0].skipped);
  EXPECT_TRUE(pipeline.metrics()[1].skipped);
  EXPECT_TRUE(pipeline.metrics()[2].skipped);
  // The cancelled tabu search still returns its (validated) incumbent.
  EXPECT_NO_THROW(result.assignment.validate(f.app, FaultModel{2}));
  EXPECT_GE(result.evaluations, 1);
  EXPECT_FALSE(result.schedule.has_value());
}

TEST(Pipeline, StageMetricsCountEvaluationsAndCacheHits) {
  auto f = fig5_app();
  SynthesisContext ctx(f.app, f.arch, quick(2, 5));
  Pipeline pipeline = Pipeline::default_pipeline();
  const SynthesisResult result = pipeline.run(ctx);

  const std::vector<StageMetrics>& metrics = pipeline.metrics();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].stage, "policy_assignment");
  EXPECT_FALSE(metrics[0].skipped);
  EXPECT_GT(metrics[0].evaluations, 1);
  EXPECT_GT(metrics[0].cache_hits, 0);
  EXPECT_GT(metrics[0].cache_misses, 0);
  // The optimizer stages account for (almost all of) the facade's legacy
  // evaluation count; the final analysis eval is reported by the tables
  // stage.
  EXPECT_LE(metrics[0].evaluations + metrics[1].evaluations,
            result.evaluations);
  EXPECT_EQ(metrics[2].evaluations, 1);
  EXPECT_GE(metrics[0].seconds, 0.0);
}

TEST(Pipeline, SkippedRefineStageIsReported) {
  auto f = fig5_app();
  SynthesisOptions opts = quick(2, 5);
  opts.refine_checkpoints = false;
  SynthesisContext ctx(f.app, f.arch, opts);
  Pipeline pipeline = Pipeline::default_pipeline();
  (void)pipeline.run(ctx);
  EXPECT_TRUE(pipeline.metrics()[1].skipped);
  EXPECT_FALSE(pipeline.metrics()[0].skipped);
  EXPECT_FALSE(pipeline.metrics()[2].skipped);
}

TEST(Pipeline, MetricsSerializeToJson) {
  auto f = fig5_app();
  SynthesisContext ctx(f.app, f.arch, quick(2, 9));
  Pipeline pipeline = Pipeline::default_pipeline();
  (void)pipeline.run(ctx);

  const std::string json = metrics_to_json(pipeline.metrics());
  EXPECT_NE(json.find("\"stage\": \"policy_assignment\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"checkpoint_refine\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"schedule_tables\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"seconds\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

// --- speculative stage execution ---------------------------------------------

// The headline property of SynthesisOptions::speculate: the result must be
// bit-identical to the serial pipeline for random apps/archs/seeds/thread
// counts, whether the speculation is adopted (refinement did not improve)
// or discarded (it did).  Exactly one speculation is launched per run and
// accounted as a hit or a miss.
TEST(Pipeline, SpeculationBitIdenticalAcrossMatrix) {
  ThreadPool pool(3);  // real helpers even on single-core hosts
  struct Config {
    int processes, nodes, k;
    std::uint64_t seed;
  };
  for (const Config& cfg : {Config{10, 2, 2, 5}, Config{14, 3, 2, 9},
                            Config{12, 2, 3, 23}}) {
    const Instance inst = make_instance(cfg.processes, cfg.nodes, cfg.seed);
    for (int threads : {1, 4}) {
      SynthesisOptions opts = quick(cfg.k, cfg.seed);
      opts.optimize.threads = threads;
      opts.optimize.pool = &pool;
      // Keep the scenario tree buildable so tables exercise the adoption.
      opts.schedule.max_scenarios = 300000;

      SynthesisContext serial_ctx(inst.app, inst.arch, opts);
      Pipeline serial = Pipeline::default_pipeline();
      const SynthesisResult serial_result = serial.run(serial_ctx);

      opts.speculate = true;
      SynthesisContext spec_ctx(inst.app, inst.arch, opts);
      Pipeline spec = Pipeline::default_pipeline();
      const SynthesisResult spec_result = spec.run(spec_ctx);

      expect_same_result(serial_result, spec_result);
      const StageMetrics& tables = spec.metrics()[2];
      EXPECT_EQ(tables.spec_hits + tables.spec_misses, 1)
          << "exactly one speculation per run (procs=" << cfg.processes
          << " threads=" << threads << ")";
      EXPECT_GE(tables.spec_seconds, 0.0);
      // The serial pipeline never speculates.
      EXPECT_EQ(serial.metrics()[2].spec_hits, 0);
      EXPECT_EQ(serial.metrics()[2].spec_misses, 0);
    }
  }
}

// Forced adoption: with max_checkpoints = 1 the refinement has no legal
// candidate counts, so it never improves and the speculative tables MUST be
// adopted -- pinning the hit path (and its runtime assertion against the
// evaluator's cached rows) deterministically.
TEST(Pipeline, SpeculationAdoptedWhenRefinementCannotImprove) {
  auto f = fig5_app();
  ThreadPool pool(3);
  for (int threads : {1, 4}) {
    SynthesisOptions opts = quick(2, 41);
    opts.optimize.max_checkpoints = 1;
    opts.optimize.threads = threads;
    opts.optimize.pool = &pool;

    SynthesisContext serial_ctx(f.app, f.arch, opts);
    Pipeline serial = Pipeline::default_pipeline();
    const SynthesisResult serial_result = serial.run(serial_ctx);

    opts.speculate = true;
    SynthesisContext spec_ctx(f.app, f.arch, opts);
    Pipeline spec = Pipeline::default_pipeline();
    const SynthesisResult spec_result = spec.run(spec_ctx);

    expect_same_result(serial_result, spec_result);
    ASSERT_TRUE(spec_result.schedule.has_value());
    EXPECT_EQ(spec.metrics()[2].spec_hits, 1);
    EXPECT_EQ(spec.metrics()[2].spec_misses, 0);
  }
}

// Speculation without a table stage to consume it (--no-tables) must not
// launch at all; with refinement disabled it still adopts cleanly.
TEST(Pipeline, SpeculationRespectsDisabledStages) {
  auto f = fig5_app();
  {
    SynthesisOptions opts = quick(2, 7);
    opts.speculate = true;
    opts.build_schedule_tables = false;
    SynthesisContext ctx(f.app, f.arch, opts);
    Pipeline pipeline = Pipeline::default_pipeline();
    const SynthesisResult result = pipeline.run(ctx);
    EXPECT_FALSE(result.schedule.has_value());
    EXPECT_EQ(pipeline.metrics()[2].spec_hits, 0);
    EXPECT_EQ(pipeline.metrics()[2].spec_misses, 0);
  }
  {
    SynthesisOptions opts = quick(2, 7);
    opts.speculate = true;
    opts.refine_checkpoints = false;  // refine no-ops -> incumbent survives
    SynthesisContext ctx(f.app, f.arch, opts);
    Pipeline pipeline = Pipeline::default_pipeline();
    const SynthesisResult result = pipeline.run(ctx);
    ASSERT_TRUE(result.schedule.has_value());
    EXPECT_EQ(pipeline.metrics()[2].spec_hits, 1);
  }
}

// The new StageMetrics fields must serialize (schema in docs/CLI.md).
TEST(Pipeline, SpeculationAndWatchdogFieldsSerializeToJson) {
  auto f = fig5_app();
  SynthesisOptions opts = quick(2, 9);
  opts.speculate = true;
  SynthesisContext ctx(f.app, f.arch, opts);
  Pipeline pipeline = Pipeline::default_pipeline();
  (void)pipeline.run(ctx);
  const std::string json = metrics_to_json(pipeline.metrics());
  EXPECT_NE(json.find("\"spec_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"spec_misses\""), std::string::npos);
  EXPECT_NE(json.find("\"spec_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"timed_out\": false"), std::string::npos);
  EXPECT_NE(json.find("\"cancel_latency_seconds\""), std::string::npos);
}

// A custom pipeline: running only the policy-assignment stage must leave
// the schedule empty and still produce a valid assignment (the use case of
// tools that explore mappings without paying for tables).
TEST(Pipeline, CustomStageListRunsSubset) {
  auto f = fig5_app();
  SynthesisContext ctx(f.app, f.arch, quick(2, 13));
  Pipeline pipeline;
  pipeline.add(std::make_unique<PolicyAssignmentStage>());
  const SynthesisResult result = pipeline.run(ctx);
  EXPECT_FALSE(result.schedule.has_value());
  EXPECT_NO_THROW(result.assignment.validate(f.app, FaultModel{2}));
  EXPECT_GT(result.evaluations, 1);
}

}  // namespace
}  // namespace ftes
