// Tests of the adversarial scenario fuzzer (sim/fuzzer.h): clean replay of
// correct tables, thread-count invariance, corrupted-table detection,
// counterexample shrinking, and fixture round-trips.
#include "sim/fuzzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "fixtures.h"
#include "gen/taskgen.h"
#include "opt/policy_assignment.h"
#include "sim/executor.h"
#include "util/thread_pool.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

struct Synth {
  ::ftes::testing::Fig5 f;
  CondScheduleResult schedule;
};

Synth make_synth() {
  Synth s;
  s.f = fig5_app();
  s.schedule =
      conditional_schedule(s.f.app, s.f.arch, s.f.assignment, s.f.model);
  return s;
}

// --- the monotonicity invariant ----------------------------------------------

// A correct table replays clean under *any* admissible perturbation at
// phase 0: early completions and early fault arrivals only move reveals
// earlier, never later.
TEST(Fuzzer, CorrectTablesSurviveAdmissiblePerturbations) {
  const Synth s = make_synth();
  const ScheduleFuzzer fuzzer(s.f.app, s.f.arch, s.f.assignment, s.f.model,
                              s.schedule);
  FuzzOptions options;
  options.trials = 300;
  options.seed = 42;
  const FuzzReport report = fuzzer.fuzz(options);
  EXPECT_EQ(report.trials, 300);
  EXPECT_EQ(report.failing_trials, 0);
  EXPECT_EQ(report.violations, 0);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.counterexamples.empty());
  EXPECT_EQ(report.first_failing_trial, -1);
  // Early completions can only shorten the makespan.
  EXPECT_LE(report.worst_completion, s.schedule.wcsl);
  EXPECT_GT(report.worst_completion, 0);
}

TEST(Fuzzer, ReportIsThreadCountInvariant) {
  const Synth s = make_synth();
  const ScheduleFuzzer fuzzer(s.f.app, s.f.arch, s.f.assignment, s.f.model,
                              s.schedule);
  FuzzOptions serial;
  serial.trials = 120;
  serial.seed = 7;
  const FuzzReport a = fuzzer.fuzz(serial);

  ThreadPool pool(4);  // real helpers even on single-core hosts
  FuzzOptions parallel = serial;
  parallel.threads = 4;
  parallel.pool = &pool;
  const FuzzReport b = fuzzer.fuzz(parallel);

  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.failing_trials, b.failing_trials);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.violations_by_kind, b.violations_by_kind);
  EXPECT_EQ(a.worst_completion, b.worst_completion);
  EXPECT_EQ(a.first_failing_trial, b.first_failing_trial);
  ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
  for (std::size_t i = 0; i < a.counterexamples.size(); ++i) {
    EXPECT_EQ(a.counterexamples[i].trial, b.counterexamples[i].trial);
    EXPECT_EQ(a.counterexamples[i].violations,
              b.counterexamples[i].violations);
  }
}

// --- corrupted tables --------------------------------------------------------

// Moves the first fault-free (empty-guard) entry of some process row
// earlier by `shift`, returning the corruption that describes the flip.
TableCorruption flip_first_entry(CondScheduleResult& broken, Time shift) {
  for (std::size_t node = 0; node < broken.tables.node_rows.size(); ++node) {
    for (auto& [row, entries] : broken.tables.node_rows[node]) {
      for (TableEntry& e : entries) {
        if (!e.guard.literals().empty() || e.start < shift) continue;
        TableCorruption c;
        c.node = static_cast<int>(node);
        c.row = row;
        c.label = e.label;
        c.old_start = e.start;
        c.new_start = e.start - shift;
        apply_corruptions({c}, broken.tables);
        return c;
      }
    }
  }
  ADD_FAILURE() << "no corruptible entry found";
  return {};
}

TEST(Fuzzer, CatchesCorruptedStartAndShrinks) {
  const Synth s = make_synth();
  CondScheduleResult broken = s.schedule;
  // Push some fault-free start earlier than its data can arrive.
  const TableCorruption corruption = flip_first_entry(broken, 20);
  ASSERT_FALSE(corruption.row.empty());

  const ScheduleFuzzer fuzzer(s.f.app, s.f.arch, s.f.assignment, s.f.model,
                              broken);
  FuzzOptions options;
  options.trials = 100;
  options.seed = 5;
  const FuzzReport report = fuzzer.fuzz(options);
  ASSERT_FALSE(report.ok()) << "the fuzzer missed a flipped start";
  ASSERT_FALSE(report.counterexamples.empty());

  // Shrinking kept the failure and produced a minimal perturbation: no
  // leftover jitter vectors unless they are load-bearing.
  const FuzzCounterexample& cx = report.counterexamples.front();
  EXPECT_FALSE(cx.violations.empty());
  const std::vector<FuzzViolation> again = fuzzer.replay(cx.perturbation);
  EXPECT_EQ(again, cx.violations) << "shrunk counterexample must replay";
}

TEST(Fuzzer, ShrinkDropsIrrelevantFaults) {
  const Synth s = make_synth();
  CondScheduleResult broken = s.schedule;
  flip_first_entry(broken, 20);
  const ScheduleFuzzer fuzzer(s.f.app, s.f.arch, s.f.assignment, s.f.model,
                              broken);

  // A perturbation that fails even with zero faults: pile on faults and
  // full jitter, then shrink -- everything should fall away.
  FuzzPerturbation fat;
  fat.scenario.add_fault(CopyRef{s.f.p2, 0}, 1);
  fat.scenario.add_fault(CopyRef{s.f.p4, 0}, 1);
  fat.exec_scale.assign(static_cast<std::size_t>(fuzzer.copy_count()), 128);
  ASSERT_FALSE(fuzzer.replay(fat).empty());

  int steps = 0;
  const FuzzPerturbation slim = fuzzer.shrink(fat, &steps);
  EXPECT_GT(steps, 0);
  EXPECT_FALSE(fuzzer.replay(slim).empty());
  EXPECT_EQ(slim.scenario.total_faults(), 0) << "faults were load-bearing?";
  EXPECT_TRUE(slim.exec_scale.empty());
  EXPECT_TRUE(slim.arrival_scale.empty());
  EXPECT_EQ(slim.bus_phase, 0);
}

TEST(Fuzzer, ShrinkReturnsPassingInputUnchanged) {
  const Synth s = make_synth();
  const ScheduleFuzzer fuzzer(s.f.app, s.f.arch, s.f.assignment, s.f.model,
                              s.schedule);
  FuzzPerturbation nominal;
  int steps = 99;
  const FuzzPerturbation out = fuzzer.shrink(nominal, &steps);
  EXPECT_EQ(steps, 0);
  EXPECT_EQ(out.scenario.total_faults(), 0);
}

// --- fixtures ----------------------------------------------------------------

TEST(Fuzzer, FixtureRoundTrips) {
  const Synth s = make_synth();
  FuzzFixture fixture;
  fixture.note = "round trip";
  fixture.perturbation.scenario.add_fault(CopyRef{s.f.p1, 0}, 2);
  fixture.perturbation.exec_scale.assign(4, kFuzzScaleOne);
  fixture.perturbation.exec_scale[1] = 77;
  fixture.perturbation.arrival_scale.assign(4, kFuzzScaleOne);
  fixture.perturbation.arrival_scale[0] = 200;
  fixture.perturbation.bus_phase = 3;
  TableCorruption c;
  c.node = 1;
  c.row = "P3";
  c.label = "P3/1";
  c.old_start = 70;
  c.new_start = 40;
  fixture.corruptions.push_back(c);
  TableCorruption erase;
  erase.node = -1;
  erase.row = "m1";
  erase.old_start = 35;
  erase.erase = true;
  fixture.corruptions.push_back(erase);
  fixture.expect = {FuzzKind::kNotReady, FuzzKind::kTableGap};

  const std::string text =
      fixture_to_text(fixture, s.f.app, s.f.assignment);
  std::istringstream in(text);
  const FuzzFixture back = parse_fixture(in, s.f.app, s.f.assignment);

  EXPECT_EQ(back.note, fixture.note);
  EXPECT_EQ(back.perturbation.scenario.hits(),
            fixture.perturbation.scenario.hits());
  EXPECT_EQ(back.perturbation.exec_scale, fixture.perturbation.exec_scale);
  EXPECT_EQ(back.perturbation.arrival_scale,
            fixture.perturbation.arrival_scale);
  EXPECT_EQ(back.perturbation.bus_phase, fixture.perturbation.bus_phase);
  ASSERT_EQ(back.corruptions.size(), 2u);
  EXPECT_EQ(back.corruptions[0].node, 1);
  EXPECT_EQ(back.corruptions[0].row, "P3");
  EXPECT_EQ(back.corruptions[0].label, "P3/1");
  EXPECT_EQ(back.corruptions[0].old_start, 70);
  EXPECT_EQ(back.corruptions[0].new_start, 40);
  EXPECT_FALSE(back.corruptions[0].erase);
  EXPECT_EQ(back.corruptions[1].node, -1);
  EXPECT_TRUE(back.corruptions[1].erase);
  EXPECT_EQ(back.expect, fixture.expect);
}

TEST(Fuzzer, ParseFixtureRejectsGarbage) {
  const Synth s = make_synth();
  {
    std::istringstream in("fault NoSuchProcess 0 1\n");
    EXPECT_THROW((void)parse_fixture(in, s.f.app, s.f.assignment),
                 std::runtime_error);
  }
  {
    std::istringstream in("exec-scale P1 0 999\n");  // scale out of range
    EXPECT_THROW((void)parse_fixture(in, s.f.app, s.f.assignment),
                 std::runtime_error);
  }
  {
    std::istringstream in("expect no-such-kind\n");
    EXPECT_THROW((void)parse_fixture(in, s.f.app, s.f.assignment),
                 std::runtime_error);
  }
}

TEST(Fuzzer, ApplyCorruptionsRejectsStaleSelectors) {
  const Synth s = make_synth();
  CondScheduleResult broken = s.schedule;
  TableCorruption c;
  c.node = 0;
  c.row = "P1";
  c.label = "P1/1";
  c.old_start = 12345;  // no such entry
  EXPECT_THROW(apply_corruptions({c}, broken.tables), std::runtime_error);
}

// End-to-end: corrupt -> fuzz -> shrink -> serialize -> parse -> replay
// reproduces the violation kinds (the regression-fixture life cycle).
TEST(Fuzzer, ShrunkCounterexampleSurvivesFixtureRoundTrip) {
  const Synth s = make_synth();
  CondScheduleResult broken = s.schedule;
  const TableCorruption corruption = flip_first_entry(broken, 20);
  const ScheduleFuzzer fuzzer(s.f.app, s.f.arch, s.f.assignment, s.f.model,
                              broken);
  FuzzOptions options;
  options.trials = 60;
  options.seed = 3;
  const FuzzReport report = fuzzer.fuzz(options);
  ASSERT_FALSE(report.counterexamples.empty());
  const FuzzCounterexample& cx = report.counterexamples.front();

  FuzzFixture fixture;
  fixture.perturbation = cx.perturbation;
  fixture.corruptions.push_back(corruption);
  for (const FuzzViolation& v : cx.violations) {
    if (std::find(fixture.expect.begin(), fixture.expect.end(), v.kind) ==
        fixture.expect.end()) {
      fixture.expect.push_back(v.kind);
    }
  }

  const std::string text =
      fixture_to_text(fixture, s.f.app, s.f.assignment);
  std::istringstream in(text);
  const FuzzFixture back = parse_fixture(in, s.f.app, s.f.assignment);

  // Rebuild the broken schedule from the *fixture's* corruption list and
  // replay: every expected kind must reappear.
  CondScheduleResult again = s.schedule;
  apply_corruptions(back.corruptions, again.tables);
  const ScheduleFuzzer replayer(s.f.app, s.f.arch, s.f.assignment, s.f.model,
                                again);
  const std::vector<FuzzViolation> violations =
      replayer.replay(back.perturbation);
  for (FuzzKind kind : back.expect) {
    EXPECT_TRUE(std::any_of(
        violations.begin(), violations.end(),
        [&](const FuzzViolation& v) { return v.kind == kind; }))
        << "expected kind lost in round trip: " << to_string(kind);
  }
}

// --- phase offsets -----------------------------------------------------------

// A shifted TDMA round is *inadmissible* (the tables assume phase 0): on a
// tight enough schedule it must surface robustness findings, and they are
// clean kinds (not-ready / deadline-miss), not spurious internal errors.
TEST(Fuzzer, PhaseShiftProbesRobustness) {
  const Synth s = make_synth();
  const ScheduleFuzzer fuzzer(s.f.app, s.f.arch, s.f.assignment, s.f.model,
                              s.schedule);
  const Time round = s.f.arch.bus().round_length();
  ASSERT_GT(round, 1);
  FuzzPerturbation shifted;
  shifted.bus_phase = round / 2;
  // Deterministic single replay: phase shifts move physical transmissions
  // later, so either the schedule has slack (clean) or the findings are
  // kNotReady/kDeadlineMiss -- never table gaps or guard violations.
  const std::vector<FuzzViolation> violations = fuzzer.replay(shifted);
  for (const FuzzViolation& v : violations) {
    EXPECT_TRUE(v.kind == FuzzKind::kNotReady ||
                v.kind == FuzzKind::kDeadlineMiss)
        << to_string(v.kind) << ": " << v.message;
  }
}

// --- scale families ----------------------------------------------------------

TEST(ScaleFamilies, GenerateValidLargeGraphs) {
  for (const ScaleFamily& family : scale_families()) {
    Rng rng(2008);
    const TaskGenParams& p = family.params;
    EXPECT_GE(p.process_count, 500) << family.name;
    EXPECT_LE(p.process_count, 1000) << family.name;
    const Application app = generate_application(p, rng);
    const Architecture arch = generate_architecture(p);
    EXPECT_EQ(app.process_count(), p.process_count) << family.name;
    EXPECT_EQ(arch.node_count(), p.node_count) << family.name;
    app.validate(arch);  // throws on a malformed graph
    EXPECT_GT(app.deadline(), 0) << family.name;
  }
}

// The standing fuzz workload end-to-end at the small end of the family:
// generate, map greedily, build tables with k = 1 (the scenario tree is
// Theta(copies^k), so scale instances keep k small), fuzz, expect clean.
TEST(ScaleFamilies, ScaledInstanceFuzzesClean) {
  TaskGenParams params = scale_family_params(500, 2);
  // Trim to a tractable tier-1 instance while keeping the family's shape:
  // the full 500-process run is the CI smoke job's job, not a unit test's.
  params.process_count = 60;
  Rng rng(77);
  const Application app = generate_application(params, rng);
  const Architecture arch = generate_architecture(params);
  const FaultModel model{1};
  const PolicyAssignment assignment = greedy_initial(
      app, arch, model, PolicySpace::kReexecutionOnly, 1);
  const CondScheduleResult schedule =
      conditional_schedule(app, arch, assignment, model);
  const ScheduleFuzzer fuzzer(app, arch, assignment, model, schedule);
  FuzzOptions options;
  options.trials = 50;
  options.seed = 9;
  const FuzzReport report = fuzzer.fuzz(options);
  EXPECT_EQ(report.failing_trials, 0)
      << (report.counterexamples.empty()
              ? std::string("?")
              : report.counterexamples.front().violations.front().message);
}

}  // namespace
}  // namespace ftes
