// Tests of fault scenarios and their enumeration (fault model, Section 2).
#include "fault/scenario.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fixtures.h"

namespace ftes {
namespace {

using ::ftes::testing::fig3_app;

TEST(FaultScenario, AccumulatesHits) {
  FaultScenario s;
  const CopyRef c{ProcessId{0}, 0};
  EXPECT_TRUE(s.empty());
  s.add_fault(c);
  s.add_fault(c, 2);
  EXPECT_EQ(s.faults_on(c), 3);
  EXPECT_EQ(s.total_faults(), 3);
  EXPECT_EQ(s.faults_on(CopyRef{ProcessId{1}, 0}), 0);
  EXPECT_THROW((void)s.add_fault(c, -1), std::invalid_argument);
}

TEST(FaultScenario, CopySurvivalAgainstRecoveries) {
  FaultScenario s;
  const CopyRef c{ProcessId{0}, 0};
  s.add_fault(c, 2);
  CopyPlan with_two{NodeId{0}, 1, 2};
  CopyPlan with_one{NodeId{0}, 1, 1};
  EXPECT_TRUE(s.copy_survives(with_two, c));
  EXPECT_FALSE(s.copy_survives(with_one, c));
}

TEST(FaultScenario, ToStringNamesProcesses) {
  auto f = fig3_app();
  FaultScenario s;
  s.add_fault(CopyRef{f.p2, 0}, 2);
  EXPECT_EQ(s.to_string(f.app), "{P2x2}");
  EXPECT_EQ(FaultScenario{}.to_string(f.app), "{no faults}");
}

// Enumeration size: distributing <= k faults over m copies yields
// C(m + k, k) scenarios (stars and bars, including the empty one).
TEST(ScenarioEnumeration, CountsMatchStarsAndBars) {
  auto f = fig3_app();
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(2, 1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  // m = 5 copies, k = 2: C(7,2) = 21.
  EXPECT_EQ(enumerate_scenarios(f.app, pa, 2).size(), 21u);
  // k = 1: C(6,1) = 6.
  EXPECT_EQ(enumerate_scenarios(f.app, pa, 1).size(), 6u);
  // k = 0: only the fault-free scenario.
  EXPECT_EQ(enumerate_scenarios(f.app, pa, 0).size(), 1u);
}

TEST(ScenarioEnumeration, RespectsBudgetAndUniqueness) {
  auto f = fig3_app();
  PolicyAssignment pa = uniform_assignment(f.app, make_checkpointing_plan(3, 1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  const auto scenarios = enumerate_scenarios(f.app, pa, 3);
  std::set<std::string> seen;
  for (const FaultScenario& s : scenarios) {
    EXPECT_LE(s.total_faults(), 3);
    EXPECT_TRUE(seen.insert(s.to_string(f.app)).second)
        << "duplicate scenario " << s.to_string(f.app);
  }
}

TEST(ScenarioEnumeration, CoversReplicaCopies) {
  auto f = fig3_app();
  PolicyAssignment pa = uniform_assignment(f.app, make_replication_plan(1));
  for (int i = 0; i < f.app.process_count(); ++i) {
    for (CopyPlan& c : pa.plan(ProcessId{i}).copies) c.node = NodeId{0};
  }
  // m = 10 copies, k = 1: 11 scenarios.
  EXPECT_EQ(enumerate_scenarios(f.app, pa, 1).size(), 11u);
}

}  // namespace
}  // namespace ftes
