// Tests of the thread pool and parallel_for (util/thread_pool.h): coverage
// of every index, determinism of slot-indexed writes, nesting safety, and
// exception propagation.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ftes {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_count(), 2);
  int ran = 0;
  std::mutex mutex;
  std::condition_variable cv;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mutex);
      if (++ran == 16) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return ran == 16; });
  EXPECT_EQ(ran, 16);
}

TEST(ThreadPool, ZeroWorkerPoolIsLegal) {
  // parallel_for never strands work on a zero-worker pool because the
  // caller participates; the pool itself just holds the queue.
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0);
}

// An explicit multi-worker pool exercises the genuinely concurrent path
// even on single-core machines, where ThreadPool::shared() has no workers
// and the shared-pool overload degrades to the inline loop.
TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(97);
    for (auto& h : hits) h.store(0);
    parallel_for(pool, hits.size(), threads,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelFor, SlotWritesAreDeterministicAcrossThreadCounts) {
  ThreadPool pool(4);
  auto run = [&pool](int threads) {
    std::vector<long> out(500);
    parallel_for(pool, out.size(), threads, [&](std::size_t i) {
      out[i] = static_cast<long>(i * i + 7);
    });
    return out;
  };
  const std::vector<long> serial = run(1);
  EXPECT_EQ(serial, run(3));
  EXPECT_EQ(serial, run(16));
}

TEST(ParallelFor, HandlesEmptyAndSingleton) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // Outer tasks each run an inner parallel_for on the same pool; with
  // caller participation this completes even when every worker is busy.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> inner_sums(8);
  for (auto& s : inner_sums) s.store(0);
  parallel_for(pool, inner_sums.size(), 4, [&](std::size_t outer) {
    parallel_for(pool, 32, 4,
                 [&](std::size_t) { inner_sums[outer].fetch_add(1); });
  });
  for (auto& s : inner_sums) EXPECT_EQ(s.load(), 32);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      parallel_for(pool, 64, 4,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> ran{0};
  parallel_for(pool, 16, 4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ResolveThreads, MapsRequestsSensibly) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(4), 4);
  EXPECT_EQ(resolve_threads(-3), 1);
  EXPECT_GE(resolve_threads(0), 1);  // "all hardware threads"
}

}  // namespace
}  // namespace ftes
