// Tests of the job server's concurrent execution mode (--serve-jobs N):
// the response stream at any job width must be byte-identical to the
// serial stream apart from the wall-clock `seconds` field -- including
// cache hit/miss patterns, retry counts, injected-fault schedules and
// the final stats line -- and quit/EOF must drain every in-flight job
// (exactly one response per request, never a dropped line).  Also pins
// the saturating retry-backoff arithmetic and the surfaced `backoff_ms`
// field.
#include "serve/job_server.h"

#include <gtest/gtest.h>

#include <climits>
#include <sstream>
#include <string>
#include <vector>

#include "util/fault_injection.h"

namespace ftes::serve {
namespace {

// The paper's Fig. 3-style example, escaped for a one-line text= value.
const char* const kInlineProblem =
    "arch nodes=2 slot=5\\nk 2\\ndeadline 600\\n"
    "process P1 wcet N1=20 N2=30 alpha=5 mu=5 chi=5\\n"
    "process P2 wcet N1=40 N2=60 alpha=5 mu=5 chi=5\\n"
    "process P3 wcet N1=60 alpha=5 mu=5 chi=5\\n"
    "message m1 P1 P2\\nmessage m2 P1 P3";

struct DisarmGuard {
  ~DisarmGuard() { fi::disarm(); }
};

std::vector<std::string> run_server(const ServerOptions& options,
                                    const std::string& input,
                                    ServerStats* stats_out = nullptr) {
  JobServer server(options);
  std::istringstream in(input);
  std::ostringstream out;
  const ServerStats stats = server.serve(in, out);
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) lines.push_back(line);
  return lines;
}

std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  std::size_t end = line.find_first_of(",}", start);
  if (line[start] == '"') end = line.find('"', start + 1) + 1;
  return line.substr(start, end - start);
}

/// Blanks every `"seconds": <number>` value: the one wall-clock field of
/// a response (docs/SERVER.md -- the byte-identity guarantee is "modulo
/// the seconds field").
std::string normalize_seconds(std::string line) {
  const std::string needle = "\"seconds\": ";
  std::size_t at = 0;
  while ((at = line.find(needle, at)) != std::string::npos) {
    const std::size_t start = at + needle.size();
    std::size_t end = start;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    line.replace(start, end - start, "_");
    at = start;
  }
  return line;
}

std::vector<std::string> normalized(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (const std::string& l : lines) out.push_back(normalize_seconds(l));
  return out;
}

/// A mixed request stream exercising every response shape the server can
/// emit: fresh computes, duplicate cache-hit fodder, problem-text parse
/// failures, malformed request lines, zero-budget degradation ladders,
/// and a mid-stream `stats` barrier.
std::string mixed_stream(int jobs) {
  std::ostringstream in;
  for (int i = 0; i < jobs; ++i) {
    switch (i % 5) {
      case 0:
        in << "job id=ok" << i << " seed=" << (i / 5) % 3
           << " iterations=20 tables=0 text=" << kInlineProblem << "\n";
        break;
      case 1:
        in << "job id=dup" << i
           << " seed=1 iterations=20 tables=0 text=" << kInlineProblem
           << "\n";
        break;
      case 2:
        in << "job id=garbage" << i << " text=k k k not a problem\n";
        break;
      case 3:
        in << "job id=malformed" << i << " seed=1\n";
        break;
      default:
        in << "job id=budget" << i << " seed=" << 1000 + i
           << " tables=1 total-budget-ms=0 text=" << kInlineProblem << "\n";
        break;
    }
    if (i == jobs / 2) in << "stats\n";
  }
  return in.str();
}

void expect_taxonomy_identity(const ServerStats& stats, int jobs) {
  EXPECT_EQ(stats.jobs, jobs);
  EXPECT_EQ(stats.responses, jobs);
  EXPECT_EQ(stats.ok + stats.parse_error + stats.timed_out + stats.cancelled +
                stats.resource_exhausted + stats.internal,
            jobs);
}

// ------------------------------------------------------- determinism --

// The tentpole guarantee: the same request stream answered at widths 1,
// 2 and 8 produces byte-identical output (after blanking the wall-clock
// seconds), including which jobs were cache hits, every attempt count,
// every injected fault and the mid-stream + final stats lines.
TEST(ServeConcurrency, OutputIsByteIdenticalAcrossJobWidths) {
  const DisarmGuard guard;
  constexpr int kJobs = 60;
  const std::string stream = mixed_stream(kJobs);

  std::vector<std::vector<std::string>> outputs;
  std::vector<ServerStats> stats;
  for (const int width : {1, 2, 8}) {
    fi::configure({
        fi::parse_rule("parse:throw:every=11"),
        fi::parse_rule("pipeline.stage:bad-alloc:every=3:limit=1"),
        fi::parse_rule("serve.job:cancel:every=17"),
    });
    ServerOptions options;
    options.threads = 1;
    options.serve_jobs = width;
    ServerStats s;
    outputs.push_back(normalized(run_server(options, stream, &s)));
    stats.push_back(s);
  }

  ASSERT_EQ(outputs[0].size(), static_cast<std::size_t>(kJobs) + 2);
  for (std::size_t w = 1; w < outputs.size(); ++w) {
    ASSERT_EQ(outputs[w].size(), outputs[0].size()) << "width " << w;
    for (std::size_t i = 0; i < outputs[0].size(); ++i) {
      EXPECT_EQ(outputs[w][i], outputs[0][i])
          << "line " << i << " diverges from serial at width index " << w;
    }
  }
  for (const ServerStats& s : stats) {
    expect_taxonomy_identity(s, kJobs);
    EXPECT_EQ(s.ok, stats[0].ok);
    EXPECT_EQ(s.parse_error, stats[0].parse_error);
    EXPECT_EQ(s.timed_out, stats[0].timed_out);
    EXPECT_EQ(s.cancelled, stats[0].cancelled);
    EXPECT_EQ(s.resource_exhausted, stats[0].resource_exhausted);
    EXPECT_EQ(s.internal, stats[0].internal);
    EXPECT_EQ(s.retries, stats[0].retries);
    EXPECT_EQ(s.degraded, stats[0].degraded);
    EXPECT_EQ(s.cache_hits, stats[0].cache_hits);
    EXPECT_EQ(s.cache_misses, stats[0].cache_misses);
    EXPECT_EQ(s.cache_evictions, stats[0].cache_evictions);
  }
  // The stream has real work in every class it can force.
  EXPECT_GT(stats[0].ok, 0);
  EXPECT_GT(stats[0].cache_hits, 0);
  EXPECT_GT(stats[0].parse_error, 0);
  EXPECT_GT(stats[0].timed_out, 0);
  EXPECT_GT(stats[0].retries, 0);
}

// Same-key coalescing: at width 8, a burst of identical jobs behind one
// fresh compute must all come back ok with bit-identical payloads and
// count as cache hits, exactly as the serial order would have served
// them.
TEST(ServeConcurrency, ConcurrentDuplicateBurstCoalescesIntoCacheHits) {
  std::ostringstream in;
  for (int i = 0; i < 12; ++i) {
    in << "job id=d" << i << " seed=7 iterations=20 tables=0 text="
       << kInlineProblem << "\n";
  }
  ServerOptions options;
  options.threads = 1;
  options.serve_jobs = 8;
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);
  ASSERT_EQ(lines.size(), 13u);
  const std::string reference = normalize_seconds(lines[0]);
  EXPECT_EQ(field(lines[0], "status"), "\"ok\"");
  EXPECT_EQ(field(lines[0], "cached"), "false");
  for (int i = 1; i < 12; ++i) {
    const std::string& line = lines[static_cast<std::size_t>(i)];
    EXPECT_EQ(field(line, "status"), "\"ok\"") << line;
    EXPECT_EQ(field(line, "cached"), "true") << line;
    EXPECT_EQ(field(line, "id"), "\"d" + std::to_string(i) + "\"");
  }
  EXPECT_EQ(stats.cache_hits, 11);
  EXPECT_EQ(stats.cache_misses, 1);
}

// --------------------------------------------------------------- drain --

// quit mid-stream is a drain barrier, not an abort: every job read
// before it gets a well-formed response (in request order) and the final
// stats line still balances jobs == responses == the taxonomy sum.
TEST(ServeConcurrency, QuitMidStreamDrainsEveryInFlightJob) {
  std::ostringstream in;
  constexpr int kBefore = 9;
  for (int i = 0; i < kBefore; ++i) {
    in << "job id=pre" << i << " seed=" << i
       << " iterations=20 tables=0 text=" << kInlineProblem << "\n";
  }
  in << "quit\n";
  for (int i = 0; i < 4; ++i) {
    in << "job id=post" << i << " tables=0 text=" << kInlineProblem << "\n";
  }
  ServerOptions options;
  options.threads = 1;
  options.serve_jobs = 4;
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);

  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBefore) + 1);
  for (int i = 0; i < kBefore; ++i) {
    const std::string& line = lines[static_cast<std::size_t>(i)];
    EXPECT_EQ(field(line, "id"), "\"pre" + std::to_string(i) + "\"") << line;
    EXPECT_EQ(field(line, "status"), "\"ok\"") << line;
  }
  EXPECT_EQ(field(lines.back(), "status"), "\"stats\"");
  expect_taxonomy_identity(stats, kBefore);
}

// The invariant under fault pressure at both widths: a fault-injected
// mixed soak must answer every job exactly once, with the terminal
// classes summing to the job count, serial and concurrent alike -- and
// the two runs must agree on every counter.
TEST(ServeConcurrency, FaultInjectedSoakKeepsResponsesEqualJobsAtAnyWidth) {
  const DisarmGuard guard;
  constexpr int kJobs = 120;
  const std::string stream = mixed_stream(kJobs);

  std::vector<ServerStats> stats;
  for (const int width : {1, 4}) {
    fi::configure({
        fi::parse_rule("parse:throw:every=7"),
        fi::parse_rule("pipeline.stage:bad-alloc:every=3:limit=1"),
        fi::parse_rule("serve.job:cancel:every=13"),
        fi::parse_rule("cache.lookup:throw:every=41"),
        fi::parse_rule("cache.insert:throw:every=43"),
    });
    ServerOptions options;
    options.threads = 1;
    options.serve_jobs = width;
    ServerStats s;
    const std::vector<std::string> lines = run_server(options, stream, &s);
    EXPECT_EQ(lines.size(), static_cast<std::size_t>(kJobs) + 2);
    expect_taxonomy_identity(s, kJobs);
    stats.push_back(s);
  }
  EXPECT_EQ(stats[0].ok, stats[1].ok);
  EXPECT_EQ(stats[0].parse_error, stats[1].parse_error);
  EXPECT_EQ(stats[0].timed_out, stats[1].timed_out);
  EXPECT_EQ(stats[0].cancelled, stats[1].cancelled);
  EXPECT_EQ(stats[0].resource_exhausted, stats[1].resource_exhausted);
  EXPECT_EQ(stats[0].internal, stats[1].internal);
  EXPECT_EQ(stats[0].retries, stats[1].retries);
  EXPECT_EQ(stats[0].cache_hits, stats[1].cache_hits);
  EXPECT_EQ(stats[0].cache_misses, stats[1].cache_misses);
}

// ------------------------------------------------------------- backoff --

// Regression for the retry-backoff overflow: the delay doubles only
// while it is at most cap/2, so the arithmetic is saturating for any
// flag values (the old recomputed doubling loop could overflow a signed
// long long before its std::min clamp).  The total slept is surfaced as
// the deterministic `backoff_ms` response field: base 6 ms doubling
// under a 10 ms cap across two retries is 6 + 10 = 16 ms.
TEST(ServeConcurrency, BackoffSaturatesAtCapAndIsSurfacedPerResponse) {
  const DisarmGuard guard;
  for (const int width : {1, 4}) {
    fi::configure({fi::parse_rule("serve.job:throw")});
    ServerOptions options;
    options.serve_jobs = width;
    options.max_retries = 2;
    options.retry_backoff_ms = 6;
    options.retry_backoff_cap_ms = 10;
    std::ostringstream in;
    in << "job id=b tables=0 text=" << kInlineProblem << "\n";
    ServerStats stats;
    const std::vector<std::string> lines =
        run_server(options, in.str(), &stats);
    ASSERT_EQ(lines.size(), 2u) << "width " << width;
    EXPECT_EQ(field(lines[0], "status"), "\"internal\"");
    EXPECT_EQ(field(lines[0], "attempts"), "3");
    EXPECT_EQ(field(lines[0], "backoff_ms"), "16");
    EXPECT_EQ(stats.retries, 2);
  }
}

// A base already past the cap (LLONG_MAX-adjacent, the overflow trigger)
// clamps to the cap on every retry instead of wrapping negative.
TEST(ServeConcurrency, HugeBackoffBaseClampsToCapWithoutOverflow) {
  const DisarmGuard guard;
  fi::configure({fi::parse_rule("serve.job:throw")});
  ServerOptions options;
  options.max_retries = 2;
  options.retry_backoff_ms = LLONG_MAX - 1;
  options.retry_backoff_cap_ms = 4;
  std::ostringstream in;
  in << "job id=huge tables=0 text=" << kInlineProblem << "\n";
  const std::vector<std::string> lines = run_server(options, in.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(field(lines[0], "attempts"), "3");
  EXPECT_EQ(field(lines[0], "backoff_ms"), "8");  // 2 retries x the 4 ms cap
}

}  // namespace
}  // namespace ftes::serve
