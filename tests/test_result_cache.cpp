// Tests of the job server's structural result cache (serve/result_cache.h):
// canonical-key normalization (what is and is not part of a result's
// identity) and the byte-budgeted LRU behind it.
#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/synthesis.h"
#include "io/app_parser.h"

namespace ftes::serve {
namespace {

constexpr const char* kProblem = R"(
arch nodes=2 slot=5
k 2
deadline 600
process P1 wcet N1=20 N2=30 alpha=5 mu=5 chi=5
process P2 wcet N1=40 N2=60 alpha=5 mu=5 chi=5
process P3 wcet N1=60 alpha=5 mu=5 chi=5
message m1 P1 P2
message m2 P1 P3
)";

// The same structure under different process/message names.
constexpr const char* kRenamed = R"(
arch nodes=2 slot=5
k 2
deadline 600
process Alpha wcet N1=20 N2=30 alpha=5 mu=5 chi=5
process Beta wcet N1=40 N2=60 alpha=5 mu=5 chi=5
process Gamma wcet N1=60 alpha=5 mu=5 chi=5
message x Alpha Beta
message y Alpha Gamma
)";

std::string key_of(const char* text, const SynthesisOptions& options) {
  const ParsedProblem p = parse_problem_string(text);
  return canonical_key(p.app, p.arch, p.model, options);
}

TEST(CanonicalKey, ProcessNamesAreStructurallyIrrelevant) {
  const SynthesisOptions options;
  EXPECT_EQ(key_of(kProblem, options), key_of(kRenamed, options));
}

TEST(CanonicalKey, ThreadsPoolAndBudgetsAreExcluded) {
  SynthesisOptions a;
  SynthesisOptions b;
  b.optimize.threads = 8;
  b.stage_budget_ms = 5000;
  b.total_budget_ms = 60000;
  b.speculate = true;
  // None of these change the result's value, only how fast (or whether)
  // it is computed -- so they must not fragment the cache.
  EXPECT_EQ(key_of(kProblem, a), key_of(kProblem, b));
}

TEST(CanonicalKey, ResultAffectingOptionsAreIncluded) {
  const SynthesisOptions base;
  SynthesisOptions seed = base;
  seed.optimize.seed = 99;
  SynthesisOptions iter = base;
  iter.optimize.iterations = 77;
  SynthesisOptions tables = base;
  tables.build_schedule_tables = false;
  SynthesisOptions refine = base;
  refine.refine_checkpoints = false;
  const std::string k0 = key_of(kProblem, base);
  EXPECT_NE(k0, key_of(kProblem, seed));
  EXPECT_NE(k0, key_of(kProblem, iter));
  EXPECT_NE(k0, key_of(kProblem, tables));
  EXPECT_NE(k0, key_of(kProblem, refine));
}

TEST(CanonicalKey, StructuralChangesChangeTheKey) {
  const SynthesisOptions options;
  const std::string k0 = key_of(kProblem, options);

  std::string wcet(kProblem);
  wcet.replace(wcet.find("N1=20"), 5, "N1=21");
  EXPECT_NE(k0, key_of(wcet.c_str(), options));

  std::string faults(kProblem);
  faults.replace(faults.find("k 2"), 3, "k 1");
  EXPECT_NE(k0, key_of(faults.c_str(), options));

  std::string deadline(kProblem);
  deadline.replace(deadline.find("deadline 600"), 12, "deadline 601");
  EXPECT_NE(k0, key_of(deadline.c_str(), options));

  std::string edge(kProblem);
  edge.replace(edge.find("message m2 P1 P3"), 16, "message m2 P2 P3");
  EXPECT_NE(k0, key_of(edge.c_str(), options));
}

// ------------------------------------------------------------------- LRU --

TEST(ResultCache, HitsMissesAndRoundTrip) {
  ResultCache cache(1 << 20);
  std::string out;
  EXPECT_FALSE(cache.lookup("k1", out));
  EXPECT_EQ(cache.misses(), 1);
  cache.insert("k1", "payload-1");
  ASSERT_TRUE(cache.lookup("k1", out));
  EXPECT_EQ(out, "payload-1");
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Each entry charges key (2) + payload (10) + 64 overhead = 76 bytes;
  // a 200-byte budget holds two entries, never three.
  const std::string payload(10, 'x');
  ResultCache cache(200);
  cache.insert("k1", payload);
  cache.insert("k2", payload);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.evictions(), 0);

  std::string out;
  ASSERT_TRUE(cache.lookup("k1", out));  // refresh k1: k2 becomes LRU
  cache.insert("k3", payload);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_LE(cache.bytes_used(), cache.budget_bytes());
  EXPECT_TRUE(cache.lookup("k1", out));
  EXPECT_TRUE(cache.lookup("k3", out));
  EXPECT_FALSE(cache.lookup("k2", out));  // the evicted one
}

TEST(ResultCache, RefreshingAKeyReplacesItsPayload) {
  ResultCache cache(1 << 20);
  cache.insert("k", "old");
  cache.insert("k", "new");
  EXPECT_EQ(cache.entry_count(), 1u);
  std::string out;
  ASSERT_TRUE(cache.lookup("k", out));
  EXPECT_EQ(out, "new");
}

TEST(ResultCache, OversizedEntryIsDroppedNotStored) {
  ResultCache cache(100);
  cache.insert("k", std::string(200, 'x'));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.evictions(), 0);
  std::string out;
  EXPECT_FALSE(cache.lookup("k", out));
}

TEST(ResultCache, ZeroBudgetDisablesStorage) {
  ResultCache cache(0);
  cache.insert("k", "v");
  std::string out;
  EXPECT_FALSE(cache.lookup("k", out));
  EXPECT_EQ(cache.entry_count(), 0u);
}

// ------------------------------------------------------------ threading --

// Regression for the duplicate-key insert accounting: the whole
// subtract-mutate-re-add of a refresh runs under one lock, so hammering
// the same keys with different-size payloads from many threads can never
// drift `bytes_used_` away from the sum of the live entries' charges.
// Before the fix, a concurrent refresh could interleave with a lookup or
// an eviction between the subtract and the re-add and leave the budget
// accounting permanently wrong (negative/overflowed bytes, or a cache
// that never evicts again).
TEST(ResultCache, ConcurrentHammeringKeepsByteAccountingExact) {
  // Small budget so insertions constantly evict while other threads
  // look up and refresh: the worst interleaving pressure on the
  // accounting.
  ResultCache cache(600);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &failed, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 7);
        switch (i % 4) {
          case 0:  // fresh or duplicate-key insert, varying charge
            cache.insert(key, std::string(static_cast<std::size_t>(i % 90),
                                          'p'));
            break;
          case 1: {  // lookup refreshes recency under the insert storm
            std::string out;
            (void)cache.lookup(key, out);
            break;
          }
          case 2:  // oversized: must be dropped without touching state
            cache.insert(key, std::string(1000, 'x'));
            break;
          default: {  // read-only probe alongside the mutations
            std::string out;
            (void)cache.peek(key, out);
            break;
          }
        }
        if (!cache.audit()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_FALSE(failed.load()) << "byte accounting diverged from the live "
                                 "entries' charges under concurrency";
  EXPECT_TRUE(cache.audit());
  EXPECT_LE(cache.bytes_used(), cache.budget_bytes());
}

// The degenerate budgets under the same concurrent load: a zero budget
// stores nothing (every insert is a no-op, every lookup a miss) and the
// accounting invariant still holds trivially.
TEST(ResultCache, ZeroBudgetStaysEmptyUnderConcurrentInserts) {
  ResultCache cache(0);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        cache.insert("k" + std::to_string(i % 5),
                     std::string(static_cast<std::size_t>(t + 1), 'z'));
        std::string out;
        (void)cache.lookup("k" + std::to_string(i % 5), out);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_TRUE(cache.audit());
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(ResultCache, MetricsSurfaceAsResultCachePseudoStage) {
  ResultCache cache(1 << 20);
  std::string out;
  (void)cache.lookup("a", out);
  cache.insert("a", "v");
  (void)cache.lookup("a", out);
  const StageMetrics m = cache.metrics();
  EXPECT_EQ(m.stage, "result_cache");
  EXPECT_EQ(m.result_cache_hits, 1);
  EXPECT_EQ(m.result_cache_misses, 1);
  EXPECT_EQ(m.result_cache_evictions, 0);
  EXPECT_NE(m.to_json().find("\"result_cache_hits\": 1"), std::string::npos);
}

}  // namespace
}  // namespace ftes::serve
