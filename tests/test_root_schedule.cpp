// Tests of root schedules (fully transparent recovery, [19]/[16]).
#include "sched/root_schedule.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "sched/cond_scheduler.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

TEST(RootSchedule, ValidatesOverAllScenarios) {
  auto f = fig5_app();
  const RootSchedule root =
      build_root_schedule(f.app, f.arch, f.assignment, f.model);
  const RootValidation v =
      validate_root_schedule(f.app, f.arch, f.assignment, f.model, root);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations.front());
}

TEST(RootSchedule, SlackAbsorbsAllLocalFaults) {
  auto f = fig5_app();
  const RootSchedule root =
      build_root_schedule(f.app, f.arch, f.assignment, f.model);
  for (const RootSlot& s : root.slots) {
    EXPECT_GE(s.slack, 0) << f.app.process(s.ref.process).name;
    EXPECT_GE(s.worst_finish, s.start);
  }
}

TEST(RootSchedule, OneEntryPerCopyAndMessage) {
  auto f = fig5_app();
  const RootSchedule root =
      build_root_schedule(f.app, f.arch, f.assignment, f.model);
  EXPECT_EQ(root.slots.size(), 4u);  // one copy per process
  // m1 crosses nodes; frozen m2/m3 are bus-pinned by the conditional
  // scheduler, but the root schedule transmits only cross-node data
  // (everything is implicitly frozen anyway).
  EXPECT_GE(root.messages.size(), 1u);
  EXPECT_EQ(root.total_entries(),
            static_cast<int>(root.slots.size() + root.messages.size()));
}

TEST(RootSchedule, TransparencyCostsAgainstConditional) {
  // Full transparency can only lengthen the worst case versus conditional
  // tables with designer-chosen transparency, but shrinks the table to one
  // entry per activation.
  auto f = fig5_app();
  const RootSchedule root =
      build_root_schedule(f.app, f.arch, f.assignment, f.model);
  CondScheduleOptions opts;
  opts.respect_transparency = false;
  opts.schedule_condition_broadcasts = false;
  const CondScheduleResult cond =
      conditional_schedule(f.app, f.arch, f.assignment, f.model, opts);
  EXPECT_GE(root.wcsl, cond.wcsl);
  EXPECT_LT(root.total_entries(), cond.tables.total_entries());
}

TEST(RootSchedule, TransparentAnalysisDominatesBudgetDp) {
  auto f = fig5_app();
  const ListSchedule sched = list_schedule(f.app, f.arch, f.assignment);
  const WcslResult dp =
      worst_case_schedule_length(f.app, f.arch, f.assignment, f.model, sched);
  const WcslResult transparent =
      worst_case_transparent(f.app, f.arch, f.assignment, f.model, sched);
  EXPECT_GE(transparent.makespan, dp.makespan);
  for (std::size_t i = 0; i < dp.copy_worst_start.size(); ++i) {
    EXPECT_GE(transparent.copy_worst_start[i], dp.copy_worst_start[i]);
  }
}

TEST(RootSchedule, ZeroFaultsEqualsListSchedule) {
  auto f = fig5_app();
  FaultModel fm{0};
  PolicyAssignment pa(f.app.process_count());
  for (int i = 0; i < f.app.process_count(); ++i) {
    ProcessPlan plan;
    CopyPlan copy;
    copy.node = f.assignment.plan(ProcessId{i}).copies[0].node;
    plan.copies.push_back(copy);
    pa.plan(ProcessId{i}) = plan;
  }
  const RootSchedule root = build_root_schedule(f.app, f.arch, pa, fm);
  const RootValidation v = validate_root_schedule(f.app, f.arch, pa, fm, root);
  EXPECT_TRUE(v.ok);
}

TEST(RootSchedule, TextRenderingMentionsNodes) {
  auto f = fig5_app();
  const RootSchedule root =
      build_root_schedule(f.app, f.arch, f.assignment, f.model);
  const std::string text = root.to_text(f.app, f.arch);
  EXPECT_NE(text.find("N1"), std::string::npos);
  EXPECT_NE(text.find("WCSL"), std::string::npos);
}

TEST(RootSchedule, DetectsSabotage) {
  auto f = fig5_app();
  RootSchedule root =
      build_root_schedule(f.app, f.arch, f.assignment, f.model);
  // Pull a pinned start far too early: recoveries upstream now overrun.
  ASSERT_FALSE(root.slots.empty());
  // Find the latest-starting slot and pin it at 1.
  std::size_t latest = 0;
  for (std::size_t i = 0; i < root.slots.size(); ++i) {
    if (root.slots[i].start > root.slots[latest].start) latest = i;
  }
  root.slots[latest].start = 1;
  const RootValidation v =
      validate_root_schedule(f.app, f.arch, f.assignment, f.model, root);
  EXPECT_FALSE(v.ok);
}

}  // namespace
}  // namespace ftes
