// Tests of the application model (Section 4) and the LCM merge.
#include "app/application.h"

#include <gtest/gtest.h>

#include "app/merge.h"
#include "fixtures.h"

namespace ftes {
namespace {

using ::ftes::testing::fig3_app;
using ::ftes::testing::two_node_arch;

TEST(Application, WcetTableAndRestrictions) {
  auto f = fig3_app();
  EXPECT_EQ(f.app.process(f.p2).wcet_on(NodeId{0}), 40);
  EXPECT_EQ(f.app.process(f.p2).wcet_on(NodeId{1}), 60);
  EXPECT_FALSE(f.app.process(f.p3).can_run_on(NodeId{1}));
  EXPECT_THROW((void)f.app.process(f.p3).wcet_on(NodeId{1}), std::invalid_argument);
}

TEST(Application, AdjacencyAndTopo) {
  auto f = fig3_app();
  EXPECT_EQ(f.app.predecessors(f.p4), std::vector<ProcessId>{f.p2});
  EXPECT_EQ(f.app.successors(f.p1), (std::vector<ProcessId>{f.p2, f.p3}));
  const auto order = f.app.topological_order();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.front(), f.p1);
  EXPECT_EQ(f.app.roots(), std::vector<ProcessId>{f.p1});
  EXPECT_EQ(f.app.sinks(), (std::vector<ProcessId>{f.p4, f.p5}));
}

TEST(Application, RejectsSelfMessage) {
  auto f = fig3_app();
  EXPECT_THROW(f.app.connect(f.p1, f.p1), std::invalid_argument);
}

TEST(Application, ValidatePassesOnFixture) {
  auto f = fig3_app();
  EXPECT_NO_THROW(f.app.validate(two_node_arch()));
}

TEST(Application, ValidateRejectsUnknownNodeInWcet) {
  auto f = fig3_app();
  f.app.process(f.p1).wcet[NodeId{7}] = 10;
  EXPECT_THROW(f.app.validate(two_node_arch()), std::invalid_argument);
}

TEST(Application, ValidateRejectsNonPositiveWcet) {
  auto f = fig3_app();
  f.app.process(f.p1).wcet[NodeId{0}] = 0;
  EXPECT_THROW(f.app.validate(two_node_arch()), std::invalid_argument);
}

TEST(Application, ValidateRejectsEmptyApp) {
  Application app;
  EXPECT_THROW(app.validate(two_node_arch()), std::invalid_argument);
}

// --- merge -----------------------------------------------------------------

Application simple_chain(const std::string& prefix, Time wcet) {
  Application app;
  const ProcessId a = app.add_process(prefix + "a", {{NodeId{0}, wcet}}, 1, 1, 1);
  const ProcessId b = app.add_process(prefix + "b", {{NodeId{0}, wcet}}, 1, 1, 1);
  app.connect(a, b);
  return app;
}

TEST(Merge, LcmPeriod) {
  EXPECT_EQ(lcm_period({4, 6}), 12);
  EXPECT_EQ(lcm_period({5}), 5);
  EXPECT_EQ(lcm_period({2, 3, 7}), 42);
  EXPECT_THROW((void)lcm_period({0}), std::invalid_argument);
  EXPECT_THROW((void)lcm_period({}), std::invalid_argument);
}

TEST(Merge, InstantiatesShorterPeriodApps) {
  PeriodicApplication a{simple_chain("A", 10), 40};
  PeriodicApplication b{simple_chain("B", 5), 20};
  const Application merged = merge({a, b});
  EXPECT_EQ(merged.period(), 40);
  // A appears once (2 processes), B twice (4 processes).
  EXPECT_EQ(merged.process_count(), 6);
  EXPECT_EQ(merged.message_count(), 3);
  // Second instance of B is released one period later.
  int released_late = 0;
  for (const Process& p : merged.processes()) {
    if (p.release == 20) ++released_late;
  }
  EXPECT_EQ(released_late, 2);
}

TEST(Merge, InheritsDeadlinesAsLocalDeadlines) {
  Application chain = simple_chain("A", 10);
  chain.set_deadline(15);
  PeriodicApplication a{chain, 20};
  PeriodicApplication b{simple_chain("B", 5), 40};
  const Application merged = merge({a, b});
  // Each instance's sink gets deadline offset + 15.
  int with_deadline = 0;
  for (const Process& p : merged.processes()) {
    if (p.local_deadline) {
      ++with_deadline;
      EXPECT_TRUE(*p.local_deadline == 15 || *p.local_deadline == 35);
    }
  }
  EXPECT_EQ(with_deadline, 2);
}

TEST(Merge, MergedGraphIsAcyclicAndValid) {
  PeriodicApplication a{simple_chain("A", 10), 30};
  PeriodicApplication b{simple_chain("B", 5), 15};
  const Application merged = merge({a, b});
  EXPECT_NO_THROW(merged.validate(two_node_arch()));
  EXPECT_EQ(merged.topological_order().size(),
            static_cast<std::size_t>(merged.process_count()));
}

}  // namespace
}  // namespace ftes
