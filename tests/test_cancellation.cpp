// Concurrency / cancellation stress suite for the synthesis pipeline
// (core/pipeline.h + util/cancellation.h), in the race-hunting spirit of
// NodeFz: fire the cancel token at randomized points -- from a watchdog
// thread, from progress callbacks, and via armed wall-clock budgets --
// across seeds and thread counts, and assert the invariants that must hold
// under EVERY interleaving:
//
//   * no deadlock, no crash (the test completing is the assertion),
//   * the partial result is well-formed (the assignment validates, the
//     metrics are structurally consistent),
//   * a 0ms budget cancels before the first stage does any search work,
//   * a timed-out batch task does not stop the sweep.
//
// CI runs this suite under ThreadSanitizer (see .github/workflows/ci.yml),
// which is where the randomized interleavings earn their keep.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch_runner.h"
#include "core/pipeline.h"
#include "core/synthesis.h"
#include "gen/taskgen.h"
#include "util/cancellation.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftes {
namespace {

struct Instance {
  Application app;
  Architecture arch;
};

Instance make_instance(int processes, int nodes, std::uint64_t seed) {
  TaskGenParams params;
  params.process_count = processes;
  params.node_count = nodes;
  Rng rng(seed);
  return Instance{generate_application(params, rng),
                  generate_architecture(params)};
}

SynthesisOptions quick(int k, std::uint64_t seed) {
  SynthesisOptions opts;
  opts.fault_model.k = k;
  opts.optimize.iterations = 60;
  opts.optimize.neighborhood = 8;
  opts.optimize.seed = seed;
  return opts;
}

/// The invariants every cancelled (or completed) run must satisfy.
void expect_well_formed(const SynthesisResult& result,
                        const Pipeline& pipeline, const Application& app,
                        const FaultModel& model) {
  EXPECT_NO_THROW(result.assignment.validate(app, model));
  ASSERT_EQ(pipeline.metrics().size(), 3u);
  const std::vector<StageMetrics>& m = pipeline.metrics();
  EXPECT_EQ(m[0].stage, "policy_assignment");
  EXPECT_EQ(m[1].stage, "checkpoint_refine");
  EXPECT_EQ(m[2].stage, "schedule_tables");
  for (const StageMetrics& s : m) {
    EXPECT_GE(s.evaluations, 0);
    EXPECT_GE(s.seconds, 0.0);
    EXPECT_GE(s.cancel_latency_seconds, 0.0);
    if (s.skipped) {
      EXPECT_EQ(s.evaluations, 0) << s.stage;
    }
  }
  // Once a stage is skipped by a cancellation, everything after it is too.
  for (std::size_t i = 1; i < m.size(); ++i) {
    if (m[i - 1].skipped && result.cancelled) {
      EXPECT_TRUE(m[i].skipped) << "stage " << i << " ran after a skip";
    }
  }
}

/// A linear chain of `procs` heavy processes with a large k: every WCSL
/// evaluation walks a long DAG with many recovery slots, so an un-budgeted
/// tabu search over `iterations` would run for minutes -- the pathological
/// batch instance the deadline watchdog exists for.
std::string pathological_ftes(int procs, int k) {
  std::ostringstream o;
  o << "arch nodes=3 slot=4\nk " << k << "\ndeadline 1000000\n";
  for (int i = 1; i <= procs; ++i) {
    o << "process P" << i << " wcet N1=" << 40 + (i % 7) * 10
      << " N2=" << 50 + (i % 5) * 10 << " N3=" << 60 + (i % 3) * 10
      << " alpha=5 mu=5 chi=5\n";
  }
  for (int i = 1; i < procs; ++i) {
    o << "message m" << i << " P" << i << " P" << i + 1 << "\n";
  }
  return o.str();
}

// --- token semantics ---------------------------------------------------------

TEST(Cancellation, HugeBudgetSaturatesInsteadOfOverflowing) {
  CancellationToken token;
  // "Practically unlimited" values must not wrap negative and fire
  // instantly (now_ns + ms * 1e6 would overflow signed 64-bit).
  token.arm_total_budget_ms(10'000'000'000'000);  // ~317 years
  token.arm_stage_budget_ms(9'000'000'000'000'000);
  EXPECT_FALSE(token.poll());
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, ChildObservesParentFlagNotParentDeadlines) {
  CancellationToken parent;
  CancellationToken child(&parent);
  parent.arm_stage_budget_ms(0);
  // Deadlines are enforced only by the parent's own pollers: a child poll
  // must not flip an expired-but-unobserved stage budget (otherwise a
  // background task could time a stage out after it already completed
  // under budget).
  EXPECT_FALSE(child.poll());
  EXPECT_FALSE(parent.cancelled());
  EXPECT_TRUE(parent.poll());
  EXPECT_TRUE(child.poll());
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(parent.deadline_expired());
  EXPECT_FALSE(child.deadline_expired());  // the child itself had no budget
}

// --- watchdog thread at randomized points -----------------------------------

TEST(Cancellation, WatchdogThreadAtRandomizedPoints) {
  ThreadPool pool(3);  // real helpers even on single-core hosts
  Rng delays(20260730);
  for (std::uint64_t seed : {1ull, 7ull, 13ull}) {
    for (int threads : {1, 4}) {
      const Instance inst = make_instance(14, 3, seed);
      SynthesisOptions opts = quick(2, seed);
      opts.optimize.threads = threads;
      opts.optimize.pool = &pool;
      SynthesisContext ctx(inst.app, inst.arch, opts);

      // The watchdog thread: sleep a pseudo-random slice of the expected
      // run time, then flip the token from outside.
      const auto delay =
          std::chrono::microseconds(delays.uniform_int(0, 30000));
      std::thread watchdog([&ctx, delay] {
        std::this_thread::sleep_for(delay);
        ctx.request_cancel();
      });

      Pipeline pipeline = Pipeline::default_pipeline();
      const SynthesisResult result = pipeline.run(ctx);
      watchdog.join();

      expect_well_formed(result, pipeline, inst.app, opts.fault_model);
      // An external cancel is not a deadline expiry.
      EXPECT_FALSE(result.timed_out);
    }
  }
}

// --- cancellation from a progress callback at every stage boundary ----------

TEST(Cancellation, CancelAtEveryStageBoundary) {
  const Instance inst = make_instance(10, 2, 3);
  for (int cancel_at = 0; cancel_at < 6; ++cancel_at) {
    SynthesisOptions opts = quick(2, 3);
    SynthesisContext ctx(inst.app, inst.arch, opts);
    int event = 0;
    ctx.on_progress([&](const StageProgress&) {
      if (event++ == cancel_at) ctx.request_cancel();
    });
    Pipeline pipeline = Pipeline::default_pipeline();
    const SynthesisResult result = pipeline.run(ctx);
    expect_well_formed(result, pipeline, inst.app, opts.fault_model);
    EXPECT_TRUE(result.cancelled);
    // Cancelling at the start event of stage i skips every later stage.
    const int stage_of_event = cancel_at / 2;
    for (std::size_t i = static_cast<std::size_t>(stage_of_event) + 1;
         i < pipeline.metrics().size(); ++i) {
      EXPECT_TRUE(pipeline.metrics()[i].skipped)
          << "cancel at event " << cancel_at << ", stage " << i;
    }
  }
}

// --- deadline watchdog -------------------------------------------------------

TEST(Cancellation, ZeroStageBudgetCancelsBeforeFirstStageCompletes) {
  const Instance inst = make_instance(16, 3, 11);
  SynthesisOptions opts = quick(3, 11);
  opts.optimize.iterations = 100000;  // would run for a long time
  opts.stage_budget_ms = 0;
  SynthesisContext ctx(inst.app, inst.arch, opts);
  Pipeline pipeline = Pipeline::default_pipeline();
  const SynthesisResult result = pipeline.run(ctx);

  expect_well_formed(result, pipeline, inst.app, opts.fault_model);
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(result.timed_out);
  // The tabu search is cut at its first cancellation point: only the
  // initial rebase evaluation happened, no search iteration completed.
  EXPECT_EQ(result.evaluations, 1);
  EXPECT_TRUE(pipeline.metrics()[0].timed_out);
  EXPECT_TRUE(pipeline.metrics()[1].skipped);
  EXPECT_TRUE(pipeline.metrics()[2].skipped);
  // The partial state still reports the initial assignment's bound.
  EXPECT_GT(result.wcsl.makespan, 0);
}

TEST(Cancellation, TotalBudgetBoundsPathologicalRun) {
  const Instance inst = make_instance(40, 3, 17);
  SynthesisOptions opts = quick(5, 17);
  opts.optimize.iterations = 1000000;
  opts.optimize.neighborhood = 32;
  opts.total_budget_ms = 150;
  SynthesisContext ctx(inst.app, inst.arch, opts);
  Pipeline pipeline = Pipeline::default_pipeline();
  const Stopwatch watch;
  const SynthesisResult result = pipeline.run(ctx);
  const double seconds = watch.seconds();

  expect_well_formed(result, pipeline, inst.app, opts.fault_model);
  EXPECT_TRUE(result.timed_out);
  // Cancelled within budget + one chunk (one candidate evaluation) of
  // latency; the bound is generous for loaded CI machines but far below
  // the minutes an un-budgeted run would take.
  EXPECT_LT(seconds, 30.0);
  const StageMetrics& first = pipeline.metrics()[0];
  EXPECT_TRUE(first.timed_out);
  EXPECT_GE(first.cancel_latency_seconds, 0.0);
  EXPECT_LT(first.cancel_latency_seconds, first.seconds + 1e-9);
}

// --- batch sweeps survive pathological instances -----------------------------

TEST(Cancellation, BatchContinuesPastTimedOutTasks) {
  std::vector<BatchTask> tasks;
  tasks.push_back({"pathological_a", pathological_ftes(30, 5)});
  tasks.push_back({"tiny", "arch nodes=2 slot=5\nk 1\ndeadline 4000\n"
                           "process A wcet N1=20 N2=30 alpha=5 mu=5 chi=5\n"
                           "process B wcet N1=40 N2=60 alpha=5 mu=5 chi=5\n"
                           "message m A B\n"});
  tasks.push_back({"pathological_b", pathological_ftes(30, 6)});

  ThreadPool pool(2);
  BatchOptions options;
  options.threads = 2;
  options.pool = &pool;
  options.synthesis.optimize.iterations = 1000000;
  options.synthesis.build_schedule_tables = false;
  options.synthesis.stage_budget_ms = 100;

  const Stopwatch watch;
  const BatchReport report = run_batch(tasks, options);
  EXPECT_LT(watch.seconds(), 60.0);

  ASSERT_EQ(report.results.size(), 3u);
  for (const BatchTaskResult& r : report.results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
  }
  // The pathological tasks timed out with a usable partial WCSL; the tiny
  // task in between still synthesized (watchdogs are per-task).
  EXPECT_TRUE(report.results[0].timed_out);
  EXPECT_TRUE(report.results[2].timed_out);
  EXPECT_GT(report.results[0].wcsl, 0);
  EXPECT_EQ(report.failed_count, 0);
  EXPECT_EQ(report.timed_out_count,
            (report.results[1].timed_out ? 1 : 0) + 2);
  // The report carries the timeout in both serializations.
  EXPECT_NE(format_batch_report(report).find("TIMEOUT"), std::string::npos);
  EXPECT_NE(format_batch_report_json(report).find("\"timed_out\": true"),
            std::string::npos);
}

// --- speculation under cancellation ------------------------------------------

TEST(Cancellation, SpeculationIsDrainedWhenCancelledMidRefinement) {
  ThreadPool pool(3);
  for (std::uint64_t seed : {2ull, 9ull}) {
    const Instance inst = make_instance(12, 2, seed);
    SynthesisOptions opts = quick(2, seed);
    opts.speculate = true;
    opts.optimize.threads = 4;
    opts.optimize.pool = &pool;
    SynthesisContext ctx(inst.app, inst.arch, opts);
    // Cancel the moment the refinement stage starts: the just-launched
    // speculative task must be cancelled and drained, not leaked.
    ctx.on_progress([&](const StageProgress& p) {
      if (p.index == 1 && !p.finished) ctx.request_cancel();
    });
    Pipeline pipeline = Pipeline::default_pipeline();
    const SynthesisResult result = pipeline.run(ctx);
    expect_well_formed(result, pipeline, inst.app, opts.fault_model);
    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.schedule.has_value());
  }
}

// --- the randomized stress core ----------------------------------------------

// Every run mixes a watchdog thread with pseudo-random fire time, random
// budgets, random thread counts and speculation; the invariants (and TSAN
// in CI) do the judging.  Instances are tiny to keep wall time bounded.
TEST(Cancellation, RandomizedStressMatrix) {
  ThreadPool pool(3);
  Rng rng(424242);
  for (int round = 0; round < 12; ++round) {
    const std::uint64_t seed = 100 + static_cast<std::uint64_t>(round);
    const Instance inst = make_instance(
        10 + static_cast<int>(rng.uniform_int(0, 6)), 2, seed);
    SynthesisOptions opts = quick(2, seed);
    opts.optimize.threads = rng.chance(0.5) ? 4 : 1;
    opts.optimize.pool = &pool;
    opts.speculate = rng.chance(0.5);
    if (rng.chance(0.3)) {
      opts.stage_budget_ms = static_cast<long long>(rng.uniform_int(0, 20));
    }
    if (rng.chance(0.3)) {
      opts.total_budget_ms = static_cast<long long>(rng.uniform_int(0, 40));
    }
    SynthesisContext ctx(inst.app, inst.arch, opts);

    std::thread watchdog;
    if (rng.chance(0.7)) {
      const auto delay =
          std::chrono::microseconds(rng.uniform_int(0, 25000));
      watchdog = std::thread([&ctx, delay] {
        std::this_thread::sleep_for(delay);
        ctx.request_cancel();
      });
    }

    Pipeline pipeline = Pipeline::default_pipeline();
    const SynthesisResult result = pipeline.run(ctx);
    if (watchdog.joinable()) watchdog.join();

    expect_well_formed(result, pipeline, inst.app, opts.fault_model);
  }
}

}  // namespace
}  // namespace ftes
