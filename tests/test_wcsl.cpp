// Tests of the worst-case schedule length analysis (fault-budget DP).
#include "sched/wcsl.h"

#include <gtest/gtest.h>

#include "fault/recovery.h"
#include "fixtures.h"
#include "sched/cond_scheduler.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;
using ::ftes::testing::two_node_arch;

PolicyAssignment single(const Application& app, NodeId node, int k, int n) {
  PolicyAssignment pa = uniform_assignment(app, make_checkpointing_plan(k, n));
  for (int i = 0; i < app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = node;
  }
  return pa;
}

TEST(Wcsl, SingleProcessMatchesRecoveryAlgebra) {
  Application app;
  (void)app.add_process("A", {{NodeId{0}, 60}}, 10, 10, 5);
  app.set_deadline(1000);
  const Architecture arch = Architecture::homogeneous(1, 5);
  for (int k : {0, 1, 2, 3}) {
    const PolicyAssignment pa = single(app, NodeId{0}, k, 2);
    const WcslResult r = evaluate_wcsl(app, arch, pa, FaultModel{k});
    EXPECT_EQ(r.makespan,
              checkpointed_exec_time(RecoveryParams{60, 10, 10, 5}, 2, k));
  }
}

TEST(Wcsl, AdversaryConcentratesFaultsOnWorstProcess) {
  // Two independent processes on one node: all k faults go to the process
  // with the larger per-fault recovery cost.
  Application app;
  (void)app.add_process("A", {{NodeId{0}, 100}}, 5, 5, 5);  // rec = 110
  (void)app.add_process("B", {{NodeId{0}, 20}}, 5, 5, 5);   // rec = 30
  app.set_deadline(10000);
  const Architecture arch = Architecture::homogeneous(1, 5);
  const int k = 3;
  const PolicyAssignment pa = single(app, NodeId{0}, k, 1);
  const WcslResult r = evaluate_wcsl(app, arch, pa, FaultModel{k});
  const Time fault_free = (100 + 5) + (20 + 5);  // chi = 5 each, n = 1
  EXPECT_EQ(r.makespan, fault_free + k * (100 + 5 + 5));
}

TEST(Wcsl, BudgetSplitsAcrossSerialChainOptimally) {
  // A -> B on one node with different recovery costs; the DP must consider
  // mixed splits, not only all-on-one.
  Application app;
  const ProcessId a = app.add_process("A", {{NodeId{0}, 50}}, 1, 1, 1);
  const ProcessId b = app.add_process("B", {{NodeId{0}, 48}}, 1, 1, 1);
  app.connect(a, b);
  app.set_deadline(10000);
  const Architecture arch = Architecture::homogeneous(1, 5);
  const int k = 2;
  const PolicyAssignment pa = single(app, NodeId{0}, k, 1);
  const WcslResult r = evaluate_wcsl(app, arch, pa, FaultModel{k});
  // Best adversary: both faults on A (52 each) vs split; all-on-A wins.
  const Time fault_free = 51 + 49;
  EXPECT_EQ(r.makespan, fault_free + 2 * (50 + 1 + 1));
}

TEST(Wcsl, MoreCheckpointsReduceWorstCase) {
  Application app;
  (void)app.add_process("A", {{NodeId{0}, 100}}, 2, 2, 2);
  app.set_deadline(10000);
  const Architecture arch = Architecture::homogeneous(1, 5);
  const int k = 4;
  const Time with_one =
      evaluate_wcsl(app, arch, single(app, NodeId{0}, k, 1), FaultModel{k})
          .makespan;
  const Time with_five =
      evaluate_wcsl(app, arch, single(app, NodeId{0}, k, 5), FaultModel{k})
          .makespan;
  EXPECT_LT(with_five, with_one);
}

TEST(Wcsl, ReplicationAvoidsTimeRedundancy) {
  // One heavy process: replication's worst case is the slowest replica,
  // re-execution's is k recoveries in sequence.
  Application app;
  const ProcessId a =
      app.add_process("A", {{NodeId{0}, 100}, {NodeId{1}, 100}}, 5, 5, 5);
  app.set_deadline(10000);
  const Architecture arch = two_node_arch();
  const int k = 1;

  PolicyAssignment repl(app.process_count());
  ProcessPlan plan = make_replication_plan(k);
  plan.copies[0].node = NodeId{0};
  plan.copies[1].node = NodeId{1};
  repl.plan(a) = plan;
  const Time t_repl =
      evaluate_wcsl(app, arch, repl, FaultModel{k}).makespan;
  EXPECT_EQ(t_repl, 100);  // replicas in parallel, faults kill not delay

  const Time t_reexec =
      evaluate_wcsl(app, arch, single(app, NodeId{0}, k, 1), FaultModel{k})
          .makespan;
  EXPECT_EQ(t_reexec, 105 + (100 + 5 + 5));
  EXPECT_LT(t_repl, t_reexec);
}

TEST(Wcsl, MonotoneInFaultCount) {
  auto f = fig5_app();
  Time prev = 0;
  for (int k = 0; k <= 4; ++k) {
    PolicyAssignment pa(f.app.process_count());
    for (int i = 0; i < f.app.process_count(); ++i) {
      ProcessPlan plan = make_checkpointing_plan(k, 1);
      plan.copies[0].node = f.assignment.plan(ProcessId{i}).copies[0].node;
      pa.plan(ProcessId{i}) = plan;
    }
    const Time m = evaluate_wcsl(f.app, f.arch, pa, FaultModel{k}).makespan;
    EXPECT_GE(m, prev) << "k=" << k;
    prev = m;
  }
}

TEST(Wcsl, UpperBoundsScenarioExactWcsl) {
  // The DP is conservative: it must dominate the scenario-exact worst case
  // computed by the conditional scheduler (transparency ignored).
  auto f = fig5_app();
  CondScheduleOptions opts;
  opts.respect_transparency = false;
  // The DP models data traffic but not condition-broadcast contention
  // (Section 6's estimators do the same), so compare against the
  // broadcast-free exact schedule.
  opts.schedule_condition_broadcasts = false;
  const CondScheduleResult exact =
      conditional_schedule(f.app, f.arch, f.assignment, f.model, opts);
  const WcslResult dp = evaluate_wcsl(f.app, f.arch, f.assignment, f.model);
  EXPECT_GE(dp.makespan, exact.wcsl);
}

TEST(Wcsl, ProcessFinishFeedsLocalDeadlines) {
  Application app;
  const ProcessId a = app.add_process("A", {{NodeId{0}, 30}}, 5, 5, 5);
  app.process(a).local_deadline = 40;
  app.set_deadline(1000);
  const Architecture arch = Architecture::homogeneous(1, 5);
  const PolicyAssignment pa = single(app, NodeId{0}, 1, 1);
  const WcslResult r = evaluate_wcsl(app, arch, pa, FaultModel{1});
  // Worst case 35 + 40 = 75 > 40: local deadline violated.
  EXPECT_FALSE(r.meets_deadlines(app));
  app.process(a).local_deadline = 100;
  EXPECT_TRUE(evaluate_wcsl(app, arch, pa, FaultModel{1}).meets_deadlines(app));
}

TEST(Wcsl, DeadlineCheckUsesGlobalDeadline) {
  auto f = fig5_app();
  const WcslResult r = evaluate_wcsl(f.app, f.arch, f.assignment, f.model);
  f.app.set_deadline(r.makespan);
  EXPECT_TRUE(
      evaluate_wcsl(f.app, f.arch, f.assignment, f.model).meets_deadlines(f.app));
  f.app.set_deadline(r.makespan - 1);
  EXPECT_FALSE(
      evaluate_wcsl(f.app, f.arch, f.assignment, f.model).meets_deadlines(f.app));
}

}  // namespace
}  // namespace ftes
