// Tests of the parallel batch-synthesis engine (batch/batch_runner.h) and
// of the thread-count invariance of the parallel optimizers: the same
// seeds must give the same best costs whether evaluation is serial or
// concurrent.
#include "batch/batch_runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fixtures.h"
#include "opt/policy_assignment.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace ftes {
namespace {

constexpr const char* kQuickstartProblem = R"(
arch nodes=2 slot=5
k 2
deadline 600
process P1 wcet N1=20 N2=30 alpha=5 mu=5 chi=5
process P2 wcet N1=40 N2=60 alpha=5 mu=5 chi=5
process P3 wcet N1=60 alpha=5 mu=5 chi=5
process P4 wcet N1=40 N2=60 alpha=5 mu=5 chi=5
process P5 wcet N1=40 N2=60 alpha=5 mu=5 chi=5
message m1 P1 P2
message m2 P1 P3
message m3 P2 P4
message m4 P3 P5
)";

std::vector<BatchTask> make_tasks(int count) {
  std::vector<BatchTask> tasks;
  for (int i = 0; i < count; ++i) {
    tasks.push_back(BatchTask{"task" + std::to_string(i), kQuickstartProblem});
  }
  return tasks;
}

TEST(TaskSeeds, DependOnlyOnBaseSeedAndIndex) {
  EXPECT_EQ(derive_task_seed(1, 0), derive_task_seed(1, 0));
  EXPECT_NE(derive_task_seed(1, 0), derive_task_seed(1, 1));
  EXPECT_NE(derive_task_seed(1, 0), derive_task_seed(2, 0));
}

TEST(BatchRunner, SynthesizesEveryTaskInOrder) {
  BatchOptions options;
  options.threads = 2;
  options.synthesis.optimize.iterations = 40;
  options.synthesis.build_schedule_tables = false;
  const BatchReport report = run_batch(make_tasks(5), options);

  ASSERT_EQ(report.results.size(), 5u);
  EXPECT_EQ(report.failed_count, 0);
  EXPECT_EQ(report.schedulable_count, 5);
  for (int i = 0; i < 5; ++i) {
    const BatchTaskResult& r = report.results[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.name, "task" + std::to_string(i));
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.schedulable);
    EXPECT_GT(r.wcsl, 0);
    EXPECT_EQ(r.deadline, 600);
    EXPECT_EQ(r.seed, derive_task_seed(options.base_seed,
                                       static_cast<std::size_t>(i)));
  }
}

TEST(BatchRunner, ThreadCountDoesNotChangeResults) {
  // An explicit multi-worker pool keeps this invariant meaningful on
  // single-core machines, where the shared pool has no workers and both
  // runs would otherwise degrade to the same inline loop.
  ThreadPool pool(3);
  BatchOptions options;
  options.pool = &pool;
  options.synthesis.optimize.iterations = 40;
  options.synthesis.build_schedule_tables = false;

  options.threads = 1;
  const BatchReport serial = run_batch(make_tasks(6), options);
  options.threads = 4;
  const BatchReport parallel = run_batch(make_tasks(6), options);

  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].wcsl, parallel.results[i].wcsl) << i;
    EXPECT_EQ(serial.results[i].schedulable, parallel.results[i].schedulable);
    EXPECT_EQ(serial.results[i].evaluations, parallel.results[i].evaluations);
    EXPECT_EQ(serial.results[i].seed, parallel.results[i].seed);
  }
}

TEST(BatchRunner, BadTaskFailsAloneAndIsReported) {
  std::vector<BatchTask> tasks = make_tasks(2);
  tasks.insert(tasks.begin() + 1,
               BatchTask{"broken", "arch nodes=0 slot=5\ndeadline 100\n"});
  BatchOptions options;
  options.threads = 3;
  options.synthesis.optimize.iterations = 20;
  options.synthesis.build_schedule_tables = false;
  const BatchReport report = run_batch(tasks, options);

  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.failed_count, 1);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_FALSE(report.results[1].error.empty());
  EXPECT_TRUE(report.results[2].ok);

  const std::string text = format_batch_report(report);
  EXPECT_NE(text.find("broken"), std::string::npos);
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("1 failed"), std::string::npos);
}

TEST(BatchRunner, JsonReportCarriesTasksAndStageMetrics) {
  BatchOptions options;
  options.synthesis.optimize.iterations = 20;
  options.synthesis.build_schedule_tables = false;
  BatchReport report = run_batch(make_tasks(2), options);
  ASSERT_EQ(report.results.size(), 2u);
  ASSERT_EQ(report.results[0].stages.size(), 3u);
  EXPECT_EQ(report.results[0].stages[0].stage, "policy_assignment");
  EXPECT_GT(report.results[0].stages[0].cache_hits, 0);

  const std::string json = format_batch_report_json(report);
  EXPECT_NE(json.find("\"tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"task0\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": "), std::string::npos);
  EXPECT_NE(json.find("\"schedulable\": true"), std::string::npos);
  EXPECT_NE(json.find("\"wcsl\": "), std::string::npos);
  EXPECT_NE(json.find("\"evaluations\": "), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"policy_assignment\""), std::string::npos);
  EXPECT_NE(json.find("\"task_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"failed_count\": 0"), std::string::npos);

  // Failures surface as "ok": false with an error string.
  report.results[1].ok = false;
  report.results[1].error = R"(bad "quote")";
  const std::string with_error = format_batch_report_json(report);
  EXPECT_NE(with_error.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(with_error.find("\"error\": \"bad \\\"quote\\\"\""),
            std::string::npos);
}

TEST(BatchRunner, MalformedFtesFileInDirFailsAloneNotTheSweep) {
  // Regression for the serve-era hardening: a malformed .ftes dropped into
  // a batch directory must yield one failed task, not a thrown-out sweep.
  const std::string dir = ::testing::TempDir() + "ftes_batch_malformed";
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/a_good.ftes") << kQuickstartProblem;
  std::ofstream(dir + "/b_bad.ftes") << "arch nodes=2 slot=5\n\x01\x02 what\n";
  std::ofstream(dir + "/c_truncated.ftes")
      << "arch nodes=2 slot=5\nk 2\nprocess P1 wcet";
  BatchOptions options;
  options.threads = 2;
  options.synthesis.optimize.iterations = 20;
  options.synthesis.build_schedule_tables = false;
  const BatchReport report = run_batch(load_batch_dir(dir), options);
  std::filesystem::remove_all(dir);

  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.failed_count, 2);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_NE(report.results[1].error.find("line"), std::string::npos);
  EXPECT_FALSE(report.results[2].ok);
}

#ifndef FTES_FI_DISABLED
TEST(BatchRunner, InjectedStageFaultIsCapturedPerTask) {
  // With threads=1 the stage-execution order is deterministic: each of
  // the 3 tasks passes 3 pipeline stage points, so hit 4 (0-based) is the
  // middle task's second stage.  The fault must land in that task's error
  // slot and nowhere else.
  struct Guard {
    ~Guard() { fi::disarm(); }
  } guard;
  fi::configure(
      {fi::parse_rule("pipeline.stage:throw:every=1000:offset=4:limit=1")});
  BatchOptions options;
  options.threads = 1;
  options.synthesis.optimize.iterations = 20;
  options.synthesis.build_schedule_tables = false;
  const BatchReport report = run_batch(make_tasks(3), options);

  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.failed_count, 1);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_NE(report.results[1].error.find("injected fault"), std::string::npos);
  EXPECT_TRUE(report.results[2].ok);
}
#endif

TEST(BatchRunner, LoadBatchDirRejectsMissingDirectory) {
  EXPECT_THROW((void)load_batch_dir("/nonexistent/ftes/batch/dir"),
               std::runtime_error);
}

TEST(BatchRunner, LoadBatchDirReadsSortedFtesFiles) {
  const std::string dir = ::testing::TempDir() + "ftes_batch_test";
  std::filesystem::create_directories(dir);
  for (const char* name : {"b.ftes", "a.ftes", "ignored.txt"}) {
    std::ofstream(dir + "/" + name) << kQuickstartProblem;
  }
  const std::vector<BatchTask> tasks = load_batch_dir(dir);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_NE(tasks[0].name.find("a.ftes"), std::string::npos);
  EXPECT_NE(tasks[1].name.find("b.ftes"), std::string::npos);
  EXPECT_EQ(tasks[0].text, kQuickstartProblem);
  std::filesystem::remove_all(dir);
}

// The tentpole invariant: the tabu search's parallel neighborhood
// evaluation must be bit-compatible with the serial one.
TEST(ParallelOptimizer, SameSeedSameBestCostForAnyThreadCount) {
  const auto f = ftes::testing::fig3_app();
  const Architecture arch = ftes::testing::two_node_arch();
  const FaultModel model{2};

  ThreadPool pool(3);  // real helpers even on single-core hosts
  OptimizeOptions options;
  options.pool = &pool;
  options.iterations = 60;
  options.seed = 2008;

  options.threads = 1;
  const OptimizeResult serial =
      optimize_policy_and_mapping(f.app, arch, model, options);
  options.threads = 4;
  const OptimizeResult parallel =
      optimize_policy_and_mapping(f.app, arch, model, options);

  EXPECT_EQ(serial.wcsl, parallel.wcsl);
  EXPECT_EQ(serial.schedulable, parallel.schedulable);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  for (int i = 0; i < f.app.process_count(); ++i) {
    const ProcessPlan& a = serial.assignment.plan(ProcessId{i});
    const ProcessPlan& b = parallel.assignment.plan(ProcessId{i});
    ASSERT_EQ(a.copy_count(), b.copy_count()) << i;
    for (int j = 0; j < a.copy_count(); ++j) {
      const CopyPlan& ca = a.copies[static_cast<std::size_t>(j)];
      const CopyPlan& cb = b.copies[static_cast<std::size_t>(j)];
      EXPECT_EQ(ca.node, cb.node);
      EXPECT_EQ(ca.checkpoints, cb.checkpoints);
      EXPECT_EQ(ca.recoveries, cb.recoveries);
    }
  }
}

}  // namespace
}  // namespace ftes
