// Tests of the fault-free list scheduler (substrate of Section 5/6).
#include "sched/list_scheduler.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace ftes {
namespace {

using ::ftes::testing::fig3_app;
using ::ftes::testing::fig5_app;
using ::ftes::testing::two_node_arch;

PolicyAssignment all_on(const Application& app, NodeId node, int k, int n) {
  PolicyAssignment pa = uniform_assignment(app, make_checkpointing_plan(k, n));
  for (int i = 0; i < app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = node;
  }
  return pa;
}

TEST(ListScheduler, ChainOnOneNodeSerializes) {
  Application app;
  const ProcessId a = app.add_process("A", {{NodeId{0}, 10}}, 0, 0, 0);
  const ProcessId b = app.add_process("B", {{NodeId{0}, 20}}, 0, 0, 0);
  app.connect(a, b);
  app.set_deadline(100);
  const Architecture arch = Architecture::homogeneous(1, 5);
  const PolicyAssignment pa = all_on(app, NodeId{0}, 0, 1);
  // n = 1 checkpoint with chi = 0: durations are the plain WCETs.
  const ListSchedule s = list_schedule(app, arch, pa);
  EXPECT_EQ(s.makespan, 30);
  EXPECT_EQ(s.copies[0].start, 0);
  EXPECT_EQ(s.copies[1].start, 10);
  EXPECT_TRUE(s.messages.empty());  // co-located: no bus traffic
}

TEST(ListScheduler, CrossNodeMessageUsesTdmaSlots) {
  Application app;
  const ProcessId a = app.add_process("A", {{NodeId{0}, 12}}, 0, 0, 0);
  const ProcessId b = app.add_process("B", {{NodeId{1}, 10}}, 0, 0, 0);
  app.connect(a, b, "m", 1);
  app.set_deadline(100);
  const Architecture arch = two_node_arch();  // 5-tick slots, 10-tick round
  PolicyAssignment pa(app.process_count());
  ProcessPlan plan;
  plan.copies.push_back(CopyPlan{NodeId{0}, 1, 0});
  pa.plan(a) = plan;
  plan.copies[0].node = NodeId{1};
  pa.plan(b) = plan;
  const ListSchedule s = list_schedule(app, arch, pa);
  // A finishes at 12; N1's next slot starts at 20, transmission ends at 25;
  // B runs 25..35.
  ASSERT_EQ(s.messages.size(), 1u);
  EXPECT_EQ(s.messages[0].start, 20);
  EXPECT_EQ(s.messages[0].finish, 25);
  EXPECT_EQ(s.makespan, 35);
}

TEST(ListScheduler, CheckpointOverheadExtendsDurations) {
  Application app;
  (void)app.add_process("A", {{NodeId{0}, 30}}, 5, 5, 5);
  app.set_deadline(100);
  const Architecture arch = Architecture::homogeneous(1, 5);
  // 3 checkpoints: fault-free duration 30 + 3*5 = 45.
  const PolicyAssignment pa = all_on(app, NodeId{0}, 2, 3);
  EXPECT_EQ(list_schedule(app, arch, pa).makespan, 45);
}

TEST(ListScheduler, ReplicasScheduledOnTheirNodes) {
  Application app;
  const ProcessId a = app.add_process("A", {{NodeId{0}, 10}, {NodeId{1}, 14}},
                                      0, 0, 0);
  app.set_deadline(100);
  const Architecture arch = two_node_arch();
  PolicyAssignment pa(app.process_count());
  ProcessPlan plan = make_replication_plan(1);
  plan.copies[0].node = NodeId{0};
  plan.copies[1].node = NodeId{1};
  pa.plan(a) = plan;
  const ListSchedule s = list_schedule(app, arch, pa);
  ASSERT_EQ(s.copies.size(), 2u);
  EXPECT_EQ(s.copies[0].finish, 10);
  EXPECT_EQ(s.copies[1].finish, 14);
  EXPECT_EQ(s.makespan, 14);  // slowest replica
}

TEST(ListScheduler, ReleaseOffsetsRespected) {
  Application app;
  Process p;
  p.name = "A";
  p.wcet[NodeId{0}] = 10;
  p.release = 50;
  (void)app.add_process(std::move(p));
  app.set_deadline(100);
  const Architecture arch = Architecture::homogeneous(1, 5);
  const PolicyAssignment pa = all_on(app, NodeId{0}, 0, 1);
  const ListSchedule s = list_schedule(app, arch, pa);
  EXPECT_EQ(s.copies[0].start, 50);
  EXPECT_EQ(s.makespan, 60);
}

TEST(ListScheduler, Fig3FixtureProducesFeasibleSchedule) {
  auto f = fig3_app();
  const Architecture arch = two_node_arch();
  PolicyAssignment pa =
      uniform_assignment(f.app, make_checkpointing_plan(2, 1));
  // Map everything legally: P3 must be on N1.
  for (int i = 0; i < f.app.process_count(); ++i) {
    pa.plan(ProcessId{i}).copies[0].node = NodeId{0};
  }
  pa.plan(f.p2).copies[0].node = NodeId{1};
  pa.plan(f.p4).copies[0].node = NodeId{1};
  const ListSchedule s = list_schedule(f.app, arch, pa);
  EXPECT_GT(s.makespan, 0);
  // Precedence sanity: every consumer starts after its producers finish.
  for (const Message& m : f.app.messages()) {
    const int src = s.copy_index(CopyRef{m.src, 0});
    const int dst = s.copy_index(CopyRef{m.dst, 0});
    EXPECT_GE(s.copies[static_cast<std::size_t>(dst)].start,
              s.copies[static_cast<std::size_t>(src)].finish);
  }
  // Node exclusivity: no overlap within a node's static order.
  for (const auto& order : s.node_order) {
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_GE(s.copies[static_cast<std::size_t>(order[i])].start,
                s.copies[static_cast<std::size_t>(order[i - 1])].finish);
    }
  }
}

TEST(ListScheduler, StripFaultToleranceKeepsMapping) {
  auto f = fig5_app();
  const PolicyAssignment stripped = strip_fault_tolerance(f.app, f.assignment);
  for (int i = 0; i < f.app.process_count(); ++i) {
    const ProcessId pid{i};
    EXPECT_EQ(stripped.plan(pid).copy_count(), 1);
    EXPECT_EQ(stripped.plan(pid).copies[0].checkpoints, 0);
    EXPECT_EQ(stripped.plan(pid).copies[0].node,
              f.assignment.plan(pid).copies[0].node);
  }
  // No-FT schedule is never longer than the FT fault-free schedule.
  const Architecture arch = two_node_arch();
  EXPECT_LE(list_schedule(f.app, arch, stripped).makespan,
            list_schedule(f.app, arch, f.assignment).makespan);
}

}  // namespace
}  // namespace ftes
