// Tests of the utility substrate (ids, RNG, logging).
#include <gtest/gtest.h>

#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"
#include "util/time_types.h"

namespace ftes {
namespace {

TEST(Ids, StrongTypingAndValidity) {
  ProcessId p;
  EXPECT_FALSE(p.valid());
  ProcessId q{3};
  EXPECT_TRUE(q.valid());
  EXPECT_EQ(q.get(), 3);
  EXPECT_TRUE(ProcessId{1} < ProcessId{2});
  EXPECT_TRUE(ProcessId{2} == ProcessId{2});
  EXPECT_TRUE(ProcessId{2} != ProcessId{3});
}

TEST(Ids, HashableInUnorderedContainers) {
  std::unordered_set<NodeId> nodes{NodeId{0}, NodeId{1}, NodeId{0}};
  EXPECT_EQ(nodes.size(), 2u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(2);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, IndexCoversRange) {
  Rng rng(3);
  std::unordered_set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.index(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Logging, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  FTES_LOG(kError) << "must not crash while disabled";
  set_log_level(before);
}

}  // namespace
}  // namespace ftes
