// Cross-module integration tests: merged periodic applications through the
// full synthesis pipeline, hybrid policies through the conditional
// scheduler, designer-fixed policies through the optimizer, and the
// export/validation loop.
#include <gtest/gtest.h>

#include "app/merge.h"
#include "core/synthesis.h"
#include "io/app_parser.h"
#include "opt/baselines.h"
#include "opt/bus_opt.h"
#include "sched/root_schedule.h"
#include "sched/table_export.h"
#include "sim/executor.h"

namespace ftes {
namespace {

Application control_chain(const std::string& prefix, Time base) {
  Application app;
  const NodeId n1{0}, n2{1};
  const ProcessId a =
      app.add_process(prefix + "_in", {{n1, base}, {n2, base + 5}}, 2, 2, 2);
  const ProcessId b = app.add_process(prefix + "_calc",
                                      {{n1, 2 * base}, {n2, 2 * base}}, 2, 2, 2);
  const ProcessId c =
      app.add_process(prefix + "_out", {{n1, base}, {n2, base}}, 2, 2, 2);
  app.connect(a, b);
  app.connect(b, c);
  return app;
}

TEST(Integration, MergedPeriodicAppsSynthesizeAndValidate) {
  const Application merged =
      merge({PeriodicApplication{control_chain("fast", 8), 200},
             PeriodicApplication{control_chain("slow", 12), 400}});
  const Architecture arch = Architecture::homogeneous(2, 4);
  SynthesisOptions opts;
  opts.fault_model.k = 2;
  opts.optimize.iterations = 60;
  opts.optimize.seed = 77;
  const SynthesisResult r = synthesize(merged, arch, opts);
  EXPECT_TRUE(r.schedulable);
  ASSERT_TRUE(r.schedule.has_value());
  const ExecutionReport report =
      check_all_scenarios(merged, r.assignment, *r.schedule);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
  // Release offsets respected: the second fast instance never starts
  // before 200.
  for (const ScenarioTrace& tr : r.schedule->traces) {
    for (const ExecTrace& e : tr.execs) {
      const Process& p = merged.process(e.copy.process);
      EXPECT_GE(e.start, p.release) << p.name;
    }
  }
}

TEST(Integration, HybridPolicyThroughConditionalScheduler) {
  Application app = control_chain("h", 10);
  app.set_deadline(2000);
  const Architecture arch = Architecture::homogeneous(2, 4);
  const FaultModel fm{2};
  PolicyAssignment pa(app.process_count());
  // _in: hybrid (1 replica + 1 recovery); _calc: checkpointing; _out:
  // replication.
  {
    ProcessPlan plan = make_hybrid_plan(2, 1, 2);
    plan.copies[0].node = NodeId{0};
    plan.copies[1].node = NodeId{1};
    pa.plan(ProcessId{0}) = plan;
  }
  {
    ProcessPlan plan = make_checkpointing_plan(2, 2);
    plan.copies[0].node = NodeId{0};
    pa.plan(ProcessId{1}) = plan;
  }
  {
    ProcessPlan plan = make_replication_plan(2);
    plan.copies[0].node = NodeId{0};
    plan.copies[1].node = NodeId{1};
    plan.copies[2].node = NodeId{0};
    pa.plan(ProcessId{2}) = plan;
  }
  const CondScheduleResult r = conditional_schedule(app, arch, pa, fm);
  const ExecutionReport report = check_all_scenarios(app, pa, r);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
  // Every process completes in every scenario despite copy deaths.
  for (const ScenarioTrace& tr : r.traces) {
    std::vector<bool> done(3, false);
    for (const ExecTrace& e : tr.execs) {
      if (!e.died) done[static_cast<std::size_t>(e.copy.process.get())] = true;
    }
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(done[static_cast<std::size_t>(i)])
          << tr.scenario.to_string(app);
    }
  }
}

TEST(Integration, DesignerFixedPolicyHonoured) {
  Application app = control_chain("f", 10);
  app.set_deadline(2000);
  app.process(ProcessId{0}).fixed_policy = PolicyKind::kReplication;
  const Architecture arch = Architecture::homogeneous(2, 4);
  const FaultModel fm{2};
  OptimizeOptions opts;
  opts.iterations = 60;
  opts.seed = 3;
  const OptimizeResult r = optimize_policy_and_mapping(app, arch, fm, opts);
  EXPECT_EQ(r.assignment.plan(ProcessId{0}).kind, PolicyKind::kReplication);
  EXPECT_NO_THROW(r.assignment.validate(app, fm));
}

TEST(Integration, FixedPolicyViolationRejected) {
  Application app = control_chain("v", 10);
  app.set_deadline(2000);
  app.process(ProcessId{0}).fixed_policy = PolicyKind::kReplication;
  const FaultModel fm{1};
  PolicyAssignment pa(app.process_count());
  for (int i = 0; i < 3; ++i) {
    ProcessPlan plan = make_checkpointing_plan(1, 1);
    plan.copies[0].node = NodeId{0};
    pa.plan(ProcessId{i}) = plan;
  }
  EXPECT_THROW(pa.validate(app, fm), std::invalid_argument);
}

TEST(Integration, ParserFixedPolicyRoundTrip) {
  const ParsedProblem p = parse_problem_string(R"(
arch nodes=2 slot=5
k 1
deadline 400
process A wcet N1=10 N2=10 policy=replication
process B wcet N1=10 N2=10 policy=checkpointing
message m A B
)");
  EXPECT_EQ(p.app.process(ProcessId{0}).fixed_policy,
            PolicyKind::kReplication);
  EXPECT_EQ(p.app.process(ProcessId{1}).fixed_policy,
            PolicyKind::kCheckpointing);
  OptimizeOptions opts;
  opts.iterations = 30;
  const OptimizeResult r =
      optimize_policy_and_mapping(p.app, p.arch, p.model, opts);
  EXPECT_EQ(r.assignment.plan(ProcessId{0}).kind, PolicyKind::kReplication);
  EXPECT_EQ(r.assignment.plan(ProcessId{1}).kind, PolicyKind::kCheckpointing);
}

TEST(Integration, BusOptComposesWithSynthesis) {
  Application app = control_chain("b", 10);
  app.set_deadline(4000);
  Architecture arch = Architecture::homogeneous(2, 16);  // oversized slots
  const FaultModel fm{2};
  OptimizeOptions opts;
  opts.iterations = 40;
  const OptimizeResult mapped = optimize_policy_and_mapping(app, arch, fm, opts);
  BusOptOptions bus_opts;
  bus_opts.iterations = 60;
  const BusOptResult tuned =
      optimize_bus_access(app, arch, mapped.assignment, fm, bus_opts);
  EXPECT_LE(tuned.wcsl_after, tuned.wcsl_before);
  // Re-synthesizing tables on the tuned architecture still validates.
  arch.set_bus(tuned.bus);
  const CondScheduleResult r =
      conditional_schedule(app, arch, mapped.assignment, fm);
  EXPECT_TRUE(check_all_scenarios(app, mapped.assignment, r).ok);
}

TEST(Integration, ExportsAreConsistentWithTables) {
  Application app = control_chain("e", 10);
  app.set_deadline(2000);
  const Architecture arch = Architecture::homogeneous(2, 4);
  const FaultModel fm{1};
  PolicyAssignment pa(app.process_count());
  for (int i = 0; i < 3; ++i) {
    ProcessPlan plan = make_checkpointing_plan(1, 1);
    plan.copies[0].node = NodeId{i == 1 ? 1 : 0};
    pa.plan(ProcessId{i}) = plan;
  }
  const CondScheduleResult r = conditional_schedule(app, arch, pa, fm);
  const std::string json = tables_to_json(r.tables, arch);
  const std::string c = tables_to_c_source(r.tables, arch);
  // Every row name appears in both exports.
  for (const TableRows* rows :
       {&r.tables.node_rows[0], &r.tables.node_rows[1], &r.tables.bus_rows}) {
    for (const auto& [name, entries] : *rows) {
      EXPECT_NE(json.find('"' + name + '"'), std::string::npos) << name;
      EXPECT_NE(c.find('"' + name + '"'), std::string::npos) << name;
    }
  }
}

TEST(Integration, RootScheduleForMergedApps) {
  const Application merged =
      merge({PeriodicApplication{control_chain("r", 8), 300}});
  const Architecture arch = Architecture::homogeneous(2, 4);
  const FaultModel fm{2};
  PolicyAssignment pa(merged.process_count());
  for (int i = 0; i < merged.process_count(); ++i) {
    ProcessPlan plan = make_checkpointing_plan(2, 1);
    plan.copies[0].node = NodeId{0};
    pa.plan(ProcessId{i}) = plan;
  }
  const RootSchedule root = build_root_schedule(merged, arch, pa, fm);
  const RootValidation v = validate_root_schedule(merged, arch, pa, fm, root);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations.front());
}

}  // namespace
}  // namespace ftes
