// Shared test fixtures: the paper's running examples.
#pragma once

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"

namespace ftes::testing {

/// Two-node architecture (N1, N2) with a uniform TDMA bus, 5-tick slots.
inline Architecture two_node_arch() { return Architecture::homogeneous(2, 5); }

/// The Fig. 3 application: five processes on two nodes with the paper's
/// WCET table (X = mapping restriction for P3 on N2).
struct Fig3 {
  Application app;
  ProcessId p1, p2, p3, p4, p5;
};

inline Fig3 fig3_app() {
  Fig3 f;
  const NodeId n1{0}, n2{1};
  // WCETs from Fig. 3c; overheads 5 ticks each (the paper's Fig. 4 uses
  // alpha = mu = chi = 5 ms).
  f.p1 = f.app.add_process("P1", {{n1, 20}, {n2, 30}}, 5, 5, 5);
  f.p2 = f.app.add_process("P2", {{n1, 40}, {n2, 60}}, 5, 5, 5);
  f.p3 = f.app.add_process("P3", {{n1, 60}}, 5, 5, 5);  // X on N2
  f.p4 = f.app.add_process("P4", {{n1, 40}, {n2, 60}}, 5, 5, 5);
  f.p5 = f.app.add_process("P5", {{n1, 40}, {n2, 60}}, 5, 5, 5);
  f.app.connect(f.p1, f.p2, "m1");
  f.app.connect(f.p1, f.p3, "m2");
  f.app.connect(f.p2, f.p4, "m3");
  f.app.connect(f.p3, f.p5, "m4");
  f.app.set_deadline(1000);
  return f;
}

/// The Fig. 5 application: P1 -> {P2 (co-located), P4 via m1}; P2 -> P3 via
/// frozen m2; P4 -> P3 via frozen m3; P3 frozen.  Re-execution everywhere,
/// k = 2, P1/P2 on N1, P3/P4 on N2 (matching the Fig. 6 tables).
struct Fig5 {
  Application app;
  Architecture arch;
  PolicyAssignment assignment;
  FaultModel model{2};
  ProcessId p1, p2, p3, p4;
  MessageId m_p1p2, m1, m2, m3;
};

inline Fig5 fig5_app() {
  Fig5 f;
  f.arch = two_node_arch();
  const NodeId n1{0}, n2{1};
  f.p1 = f.app.add_process("P1", {{n1, 30}, {n2, 30}}, 5, 0, 0);
  f.p2 = f.app.add_process("P2", {{n1, 25}, {n2, 25}}, 5, 0, 0);
  {
    Process p3;
    p3.name = "P3";
    p3.wcet[n1] = 25;
    p3.wcet[n2] = 25;
    p3.alpha = 5;
    p3.frozen = true;  // transparency requirement of Fig. 5
    f.p3 = f.app.add_process(std::move(p3));
  }
  f.p4 = f.app.add_process("P4", {{n1, 30}, {n2, 30}}, 5, 0, 0);
  f.m_p1p2 = f.app.connect(f.p1, f.p2, "m0");
  f.m1 = f.app.connect(f.p1, f.p4, "m1");
  {
    Message m2;
    m2.src = f.p2;
    m2.dst = f.p3;
    m2.name = "m2";
    m2.frozen = true;
    f.m2 = f.app.add_message(std::move(m2));
  }
  {
    Message m3;
    m3.src = f.p4;
    m3.dst = f.p3;
    m3.name = "m3";
    m3.frozen = true;
    f.m3 = f.app.add_message(std::move(m3));
  }
  f.app.set_deadline(500);

  f.assignment = PolicyAssignment(f.app.process_count());
  auto reexec = [&](ProcessId pid, NodeId node) {
    ProcessPlan plan = make_checkpointing_plan(f.model.k, 1);
    plan.copies[0].node = node;
    f.assignment.plan(pid) = plan;
  };
  reexec(f.p1, n1);
  reexec(f.p2, n1);
  reexec(f.p3, n2);
  reexec(f.p4, n2);
  return f;
}

}  // namespace ftes::testing
