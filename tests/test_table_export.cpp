// Tests of the JSON / C-source exporters and the Gantt renderer.
#include "sched/table_export.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "sim/gantt.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

TEST(TableExport, JsonContainsStructure) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const std::string json = tables_to_json(r.tables, f.arch);
  for (const char* token :
       {"\"wcsl\"", "\"nodes\"", "\"N1\"", "\"N2\"", "\"bus\"", "\"guard\"",
        "\"start\"", "\"P1\"", "\"m2\""}) {
    EXPECT_NE(json.find(token), std::string::npos) << token;
  }
  // Balanced braces (cheap well-formedness check).
  int depth = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (c == '"' && prev != '\\') in_string = !in_string;
    if (!in_string) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
      EXPECT_GE(depth, 0);
    }
    prev = c;
  }
  EXPECT_EQ(depth, 0);
}

TEST(TableExport, JsonGuardPolarity) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const std::string json = tables_to_json(r.tables, f.arch);
  EXPECT_NE(json.find("\"value\": true"), std::string::npos);
  EXPECT_NE(json.find("\"value\": false"), std::string::npos);
}

TEST(TableExport, CSourceCompilesShapes) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const std::string c = tables_to_c_source(r.tables, f.arch);
  for (const char* token :
       {"ftes_guard_literal", "ftes_table_entry", "ftes_node1_table",
        "ftes_node2_table", "ftes_bus_table", "ftes_condition_names",
        "#include <stdint.h>"}) {
    EXPECT_NE(c.find(token), std::string::npos) << token;
  }
}

TEST(TableExport, CSourceHonoursPrefix) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const std::string c = tables_to_c_source(r.tables, f.arch, "cc");
  EXPECT_NE(c.find("cc_table_entry"), std::string::npos);
  EXPECT_EQ(c.find("ftes_table_entry"), std::string::npos);
}

TEST(Gantt, RendersLanesAndMarks) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // Pick a scenario with faults so recovery marks appear.
  const ScenarioTrace* faulty = nullptr;
  for (const ScenarioTrace& tr : r.traces) {
    if (tr.scenario.total_faults() == 2) {
      faulty = &tr;
      break;
    }
  }
  ASSERT_NE(faulty, nullptr);
  const std::string g = render_gantt(f.app, f.arch, f.assignment, *faulty);
  EXPECT_NE(g.find("N1 |"), std::string::npos);
  EXPECT_NE(g.find("N2 |"), std::string::npos);
  EXPECT_NE(g.find("bus"), std::string::npos);
  EXPECT_NE(g.find('#'), std::string::npos);   // execution
  EXPECT_NE(g.find('='), std::string::npos);   // data transmission
}

TEST(Gantt, WidthIsRespected) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  GanttOptions opts;
  opts.width = 40;
  const std::string g =
      render_gantt(f.app, f.arch, f.assignment, r.traces.front(), opts);
  // Every lane line contains a 40-char field between the pipes.
  std::istringstream in(g);
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const std::size_t open = line.find('|');
    const std::size_t close = line.find('|', open + 1);
    ASSERT_NE(open, std::string::npos);
    ASSERT_NE(close, std::string::npos);
    EXPECT_EQ(close - open - 1, 40u) << line;
  }
}

}  // namespace
}  // namespace ftes
