// End-to-end tests of the synthesis facade (psi = <F, M, S>).
#include "core/synthesis.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "fixtures.h"
#include "gen/taskgen.h"
#include "sim/executor.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

SynthesisOptions quick(int k) {
  SynthesisOptions opts;
  opts.fault_model.k = k;
  opts.optimize.iterations = 50;
  opts.optimize.neighborhood = 8;
  opts.optimize.seed = 5;
  return opts;
}

TEST(Synthesis, EndToEndOnFig5App) {
  auto f = fig5_app();
  const SynthesisResult r = synthesize(f.app, f.arch, quick(2));
  EXPECT_NO_THROW(r.assignment.validate(f.app, FaultModel{2}));
  EXPECT_TRUE(r.schedulable);
  ASSERT_TRUE(r.schedule.has_value());
  const ExecutionReport report =
      check_all_scenarios(f.app, r.assignment, *r.schedule);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

TEST(Synthesis, TablesOptionalForLargeDesigns) {
  TaskGenParams params;
  params.process_count = 30;
  params.node_count = 3;
  Rng rng(9);
  const Application app = generate_application(params, rng);
  const Architecture arch = generate_architecture(params);
  SynthesisOptions opts = quick(3);
  opts.build_schedule_tables = false;
  const SynthesisResult r = synthesize(app, arch, opts);
  EXPECT_FALSE(r.schedule.has_value());
  EXPECT_GT(r.wcsl.makespan, 0);
}

TEST(Synthesis, InfeasibleDeadlineReported) {
  auto f = fig5_app();
  f.app.set_deadline(10);  // impossible
  const SynthesisResult r = synthesize(f.app, f.arch, quick(2));
  EXPECT_FALSE(r.schedulable);
}

TEST(Synthesis, CheckpointRefinementNeverHurts) {
  TaskGenParams params;
  params.process_count = 16;
  params.node_count = 2;
  Rng rng(10);
  const Application app = generate_application(params, rng);
  const Architecture arch = generate_architecture(params);
  SynthesisOptions with = quick(3);
  SynthesisOptions without = quick(3);
  without.refine_checkpoints = false;
  with.build_schedule_tables = false;
  without.build_schedule_tables = false;
  EXPECT_LE(synthesize(app, arch, with).wcsl.makespan,
            synthesize(app, arch, without).wcsl.makespan);
}

TEST(Metrics, FtoPercent) {
  EXPECT_DOUBLE_EQ(fto_percent(150, 100), 50.0);
  EXPECT_DOUBLE_EQ(fto_percent(100, 100), 0.0);
  EXPECT_THROW((void)fto_percent(100, 0), std::invalid_argument);
}

TEST(Metrics, PercentDeviationAndMean) {
  EXPECT_DOUBLE_EQ(percent_deviation(77.0, 70.0), 10.0);
  EXPECT_THROW((void)percent_deviation(1.0, 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

}  // namespace
}  // namespace ftes
