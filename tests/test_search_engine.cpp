// Tests of the generic neighborhood-search engine (opt/search_engine.h)
// against scripted toy problems: tabu tenure expiry, the
// aspiration-by-objective criterion, cancellation mid-neighborhood (the
// partially evaluated sample must be abandoned wholesale), coordinate-
// descent acceptance, and thread-count invariance of the accepted
// trajectory.  The real optimizers' equivalence to their pre-engine
// implementations is pinned elsewhere (goldens + optimizer suites); these
// tests isolate the engine's own contract.
#include "opt/search_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/cancellation.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ftes {
namespace {

/// One-process assignment whose copy-0 checkpoint count encodes an integer
/// search variable; the engine never validates plans, so no application or
/// architecture is needed.
PolicyAssignment encode(int value) {
  PolicyAssignment pa(1);
  ProcessPlan plan;
  plan.copies.push_back(CopyPlan{});
  plan.copies[0].checkpoints = value;
  pa.plan(ProcessId{0}) = plan;
  return pa;
}

Move move_to(int value, int key_tag = 0) {
  Move m;
  m.pid = ProcessId{0};
  m.plan = encode(value).plan(ProcessId{0});
  m.key = TabuList::Key{key_tag, value, 0, 0};
  return m;
}

int decode(const PolicyAssignment& pa) {
  return pa.plan(ProcessId{0}).copies[0].checkpoints;
}

/// Scripted two-move landscape: value 1 costs 10, value 2 costs 20, the
/// start (value 0) costs 100.  Both moves are offered every iteration.
class TwoMoveProblem final : public SearchProblem {
 public:
  bool neighborhood(int /*iteration*/, const PolicyAssignment& /*current*/,
                    bool /*accepted_last*/, std::vector<Move>& out) override {
    out.push_back(move_to(1));
    out.push_back(move_to(2));
    return true;
  }
  Time evaluate(const Move& move) override {
    return cost_of(move.plan.copies[0].checkpoints);
  }
  Time commit(const PolicyAssignment& current) override {
    accepted.push_back(decode(current));
    return cost_of(decode(current));
  }
  static Time cost_of(int value) {
    switch (value) {
      case 1: return 10;
      case 2: return 20;
      default: return 100;
    }
  }
  std::vector<int> accepted;  ///< first entry is the initial commit
};

TEST(SearchEngine, TabuTenureExpiresAndReadmitsMoves) {
  TwoMoveProblem problem;
  SearchOptions options;
  options.max_iterations = 4;
  options.tenure = 2;
  SearchResult r = neighborhood_search(problem, encode(0), options);

  // iter 0: value 1 (cost 10) wins and becomes tabu until iteration 2.
  // iter 1: value 1 is tabu (10 >= best 10, no aspiration): value 2 is
  //         accepted uphill -- classic tabu diversification.
  // iter 2: value 1's tenure expired, value 2 now tabu: back to value 1.
  // iter 3: mirror of iter 1.
  const std::vector<int> expected{0, 1, 2, 1, 2};
  EXPECT_EQ(problem.accepted, expected);
  EXPECT_EQ(r.best_cost, 10);
  EXPECT_EQ(decode(r.best), 1);
  EXPECT_EQ(r.stats.accepted_moves, 4);
  EXPECT_EQ(r.stats.tabu_rejected, 3);  // 1@iter1, 2@iter2, 1@iter3
  EXPECT_EQ(r.stats.aspiration_accepted, 0);
  EXPECT_EQ(r.stats.evaluations, 1 + 4 * 2);
  EXPECT_EQ(r.stats.iterations, 4);
  EXPECT_FALSE(r.stats.cancelled);
}

/// One move with a fixed tabu key whose cost drops each iteration: the
/// second visit is tabu-recent but beats the global best, so aspiration
/// must admit it.
class AspirationProblem final : public SearchProblem {
 public:
  bool neighborhood(int iteration, const PolicyAssignment& /*current*/,
                    bool /*accepted_last*/, std::vector<Move>& out) override {
    iteration_ = iteration;
    out.push_back(move_to(1));
    return true;
  }
  Time evaluate(const Move& /*move*/) override { return 10 - iteration_; }
  Time commit(const PolicyAssignment& /*current*/) override { return 100; }

 private:
  int iteration_ = 0;
};

TEST(SearchEngine, AspirationAdmitsImprovingTabuMove) {
  AspirationProblem problem;
  SearchOptions options;
  options.max_iterations = 3;
  options.tenure = 10;  // never expires within the run
  SearchResult r = neighborhood_search(problem, encode(0), options);

  // iter 0 accepts at cost 10; iters 1 and 2 re-accept the tabu move only
  // because 9 < 10 and 8 < 9 strictly improve the global best.
  EXPECT_EQ(r.stats.accepted_moves, 3);
  EXPECT_EQ(r.stats.aspiration_accepted, 2);
  EXPECT_EQ(r.stats.tabu_rejected, 0);
  EXPECT_EQ(r.best_cost, 8);
}

TEST(SearchEngine, AspirationRequiresStrictImprovement) {
  TwoMoveProblem problem;
  SearchOptions options;
  options.max_iterations = 2;
  options.tenure = 10;
  SearchResult r = neighborhood_search(problem, encode(0), options);
  // iter 1: value 1 is tabu at cost 10 == best 10 -- equality must NOT
  // aspire (value 2 is accepted instead).
  const std::vector<int> expected{0, 1, 2};
  EXPECT_EQ(problem.accepted, expected);
  EXPECT_EQ(r.stats.aspiration_accepted, 0);
}

/// Emits `width` moves per iteration; a designated evaluation requests
/// cancellation through the token, simulating a deadline firing while the
/// neighborhood is being evaluated.
class CancelMidNeighborhoodProblem final : public SearchProblem {
 public:
  CancelMidNeighborhoodProblem(CancellationToken& token, int cancel_iteration)
      : token_(token), cancel_iteration_(cancel_iteration) {}

  bool neighborhood(int iteration, const PolicyAssignment& /*current*/,
                    bool /*accepted_last*/, std::vector<Move>& out) override {
    iteration_ = iteration;
    for (int v = 1; v <= kWidth; ++v) out.push_back(move_to(v));
    return true;
  }
  Time evaluate(const Move& move) override {
    if (iteration_ == cancel_iteration_) token_.request_cancel();
    return 50 - iteration_ - move.plan.copies[0].checkpoints;
  }
  Time commit(const PolicyAssignment& current) override {
    last_committed = decode(current);
    return 100;
  }

  static constexpr int kWidth = 8;
  int last_committed = -1;

 private:
  CancellationToken& token_;
  int cancel_iteration_;
  int iteration_ = 0;
};

TEST(SearchEngine, CancellationMidNeighborhoodAbandonsTheIteration) {
  CancellationToken token;
  CancelMidNeighborhoodProblem problem(token, 2);
  SearchOptions options;
  options.max_iterations = 100;
  options.tenure = 0;
  options.cancel = &token;
  SearchResult r = neighborhood_search(problem, encode(0), options);

  // Iterations 0 and 1 complete; iteration 2's partially evaluated sample
  // is abandoned wholesale (its kWidth evaluations are not counted and no
  // move from it is committed), and no further iteration starts.
  EXPECT_TRUE(r.stats.cancelled);
  EXPECT_EQ(r.stats.evaluations,
            1 + 2 * CancelMidNeighborhoodProblem::kWidth);
  EXPECT_EQ(r.stats.accepted_moves, 2);
  // The incumbent predates the cancelled neighborhood: iteration 1's best
  // move (the largest value, 50 - iter - v minimal at v = kWidth).
  EXPECT_EQ(problem.last_committed, CancelMidNeighborhoodProblem::kWidth);
  EXPECT_EQ(decode(r.best), CancelMidNeighborhoodProblem::kWidth);
}

TEST(SearchEngine, ZeroIterationBudgetReturnsTheStartWithoutSampling) {
  // The optimizers' historical `--iterations 0` contract: commit the start,
  // run nothing (in particular: never loop forever on a generator that
  // never stops, like the tabu problems').
  TwoMoveProblem problem;
  SearchOptions options;
  options.max_iterations = 0;
  SearchResult r = neighborhood_search(problem, encode(7), options);
  EXPECT_EQ(decode(r.best), 7);
  EXPECT_EQ(r.stats.evaluations, 1);
  EXPECT_EQ(r.stats.iterations, 0);
  EXPECT_EQ(problem.accepted, std::vector<int>{7});
}

TEST(SearchEngine, CancellationBeforeFirstIterationKeepsTheStart) {
  CancellationToken token;
  token.request_cancel();
  TwoMoveProblem problem;
  SearchOptions options;
  options.max_iterations = 10;
  options.cancel = &token;
  SearchResult r = neighborhood_search(problem, encode(7), options);
  EXPECT_TRUE(r.stats.cancelled);
  EXPECT_EQ(r.stats.evaluations, 1);  // only the initial commit
  EXPECT_EQ(decode(r.best), 7);
}

/// Descent landscape f(v) = (v - 6)^2 walked with +-1 neighbors; the
/// generator stops once an iteration accepted nothing.
class DescentProblem final : public SearchProblem {
 public:
  bool neighborhood(int iteration, const PolicyAssignment& current,
                    bool accepted_last, std::vector<Move>& out) override {
    if (iteration > 0 && !accepted_last) return false;  // converged
    const int v = decode(current);
    out.push_back(move_to(v - 1));
    out.push_back(move_to(v + 1));
    return true;
  }
  Time evaluate(const Move& move) override {
    const int v = move.plan.copies[0].checkpoints;
    return static_cast<Time>((v - 6) * (v - 6));
  }
  Time commit(const PolicyAssignment& current) override {
    const int v = decode(current);
    trajectory.push_back(v);
    return static_cast<Time>((v - 6) * (v - 6));
  }
  std::vector<int> trajectory;
};

TEST(SearchEngine, RequireImprovementDescendsAndStopsAtTheOptimum) {
  DescentProblem problem;
  SearchOptions options;
  options.require_improvement = true;
  SearchResult r = neighborhood_search(problem, encode(2), options);

  const std::vector<int> expected{2, 3, 4, 5, 6};  // strict descent to 6
  EXPECT_EQ(problem.trajectory, expected);
  EXPECT_EQ(decode(r.best), 6);
  EXPECT_EQ(r.best_cost, 0);
  EXPECT_EQ(r.stats.accepted_moves, 4);
  // The converged iteration (both neighbors worse) still evaluated its
  // sample; the generator then ended the search.
  EXPECT_EQ(r.stats.evaluations, 1 + 5 * 2);
}

/// Pseudo-random but reproducible landscape: the sampled values come from
/// the problem's own RNG (serial phase) and the objective is a pure hash
/// of (iteration, value), so two runs with any thread counts must walk
/// identical trajectories.
class HashProblem final : public SearchProblem {
 public:
  explicit HashProblem(std::uint64_t seed) : rng_(seed) {}

  bool neighborhood(int iteration, const PolicyAssignment& /*current*/,
                    bool /*accepted_last*/, std::vector<Move>& out) override {
    iteration_ = iteration;
    for (int s = 0; s < 6; ++s) {
      const int value = 1 + static_cast<int>(rng_.uniform_int(0, 40));
      out.push_back(move_to(value, value % 3));
    }
    return true;
  }
  Time evaluate(const Move& move) override {
    const int v = move.plan.copies[0].checkpoints;
    std::uint64_t x = static_cast<std::uint64_t>(v) * 2654435761u +
                      static_cast<std::uint64_t>(iteration_) * 40503u;
    x ^= x >> 13;
    return static_cast<Time>(100 + (x % 1000));
  }
  Time commit(const PolicyAssignment& current) override {
    trajectory.push_back(decode(current));
    return 5000;
  }
  std::vector<int> trajectory;

 private:
  Rng rng_;
  int iteration_ = 0;
};

TEST(SearchEngine, AcceptedTrajectoryIsThreadCountInvariant) {
  auto run = [&](int threads, ThreadPool* pool) {
    HashProblem problem(99);
    SearchOptions options;
    options.max_iterations = 40;
    options.tenure = 3;
    options.threads = threads;
    options.pool = pool;
    SearchResult r = neighborhood_search(problem, encode(0), options);
    return std::make_pair(problem.trajectory, r);
  };
  ThreadPool pool(3);  // real helper threads even on single-core hosts
  const auto [serial_traj, serial] = run(1, nullptr);
  const auto [parallel_traj, parallel] = run(4, &pool);

  EXPECT_EQ(serial_traj, parallel_traj);
  EXPECT_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_EQ(decode(serial.best), decode(parallel.best));
  EXPECT_EQ(serial.stats.evaluations, parallel.stats.evaluations);
  EXPECT_EQ(serial.stats.accepted_moves, parallel.stats.accepted_moves);
  EXPECT_EQ(serial.stats.tabu_rejected, parallel.stats.tabu_rejected);
  EXPECT_EQ(serial.stats.aspiration_accepted,
            parallel.stats.aspiration_accepted);
  EXPECT_EQ(serial.stats.sampled_moves, parallel.stats.sampled_moves);
}

}  // namespace
}  // namespace ftes
