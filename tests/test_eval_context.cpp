// Tests of the incremental evaluation context (opt/eval_context.h): the
// dirty-successor DP reuse must be bit-identical to a from-scratch
// evaluation for every move family, thread-safe under the parallel
// neighborhood evaluation, and must actually reuse cached rows.
#include "opt/eval_context.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/taskgen.h"
#include "opt/policy_assignment.h"
#include "sched/list_scheduler.h"
#include "sched/wcsl.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ftes {
namespace {

struct Instance {
  Application app;
  Architecture arch;
};

Instance make_instance(int processes, int nodes, std::uint64_t seed) {
  TaskGenParams params;
  params.process_count = processes;
  params.node_count = nodes;
  Rng rng(seed);
  return Instance{generate_application(params, rng),
                  generate_architecture(params)};
}

/// A randomly mutated plan for `pid`: checkpoint-count change, remap of a
/// copy, or a policy-kind switch (the tabu search's three move families).
ProcessPlan random_move(const Instance& inst, const PolicyAssignment& base,
                        ProcessId pid, const FaultModel& model, Rng& rng) {
  ProcessPlan plan = base.plan(pid);
  const Process& proc = inst.app.process(pid);
  std::vector<NodeId> allowed;
  for (NodeId n : inst.arch.node_ids()) {
    if (proc.can_run_on(n)) allowed.push_back(n);
  }
  switch (rng.index(3)) {
    case 0: {  // checkpoint count
      CopyPlan& cp = plan.copies[rng.index(plan.copies.size())];
      if (cp.checkpoints >= 1) {
        cp.checkpoints = 1 + static_cast<int>(rng.uniform_int(0, 7));
        break;
      }
      [[fallthrough]];
    }
    case 1: {  // remap one copy
      CopyPlan& cp = plan.copies[rng.index(plan.copies.size())];
      cp.node = allowed[rng.index(allowed.size())];
      break;
    }
    default: {  // policy switch (changes the copy structure)
      if (rng.chance(0.5)) {
        plan = make_replication_plan(model.k);
        for (CopyPlan& cp : plan.copies) {
          cp.node = allowed[rng.index(allowed.size())];
        }
      } else {
        plan = make_checkpointing_plan(model.k,
                                       1 + static_cast<int>(rng.uniform_int(0, 5)));
        plan.copies[0].node = allowed[rng.index(allowed.size())];
      }
      break;
    }
  }
  return plan;
}

TEST(EvalContext, IncrementalMatchesFullForRandomMoves) {
  const Instance inst = make_instance(18, 3, 77);
  const FaultModel model{2};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase(base);

  Rng rng(4242);
  for (int move = 0; move < 150; ++move) {
    const ProcessId pid{static_cast<std::int32_t>(
        rng.index(static_cast<std::size_t>(inst.app.process_count())))};
    const ProcessPlan plan = random_move(inst, base, pid, model, rng);

    PolicyAssignment candidate = base;
    candidate.plan(pid) = plan;
    const WcslResult full =
        evaluate_wcsl(inst.app, inst.arch, candidate, model);
    const Time full_cost =
        assignment_cost(inst.app, inst.arch, candidate, model);

    const EvalContext::Outcome incremental = eval.evaluate_move(pid, plan);
    ASSERT_EQ(incremental.makespan, full.makespan) << "move " << move;
    ASSERT_EQ(incremental.cost, full_cost) << "move " << move;

    // Occasionally accept the move so later diffs run against fresh bases.
    if (move % 17 == 0) {
      base = std::move(candidate);
      eval.rebase(base);
    }
  }
}

TEST(EvalContext, RebaseOutcomeMatchesFullEvaluation) {
  const Instance inst = make_instance(14, 2, 5);
  const FaultModel model{3};
  const PolicyAssignment base = greedy_initial(
      inst.app, inst.arch, model, PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  const EvalContext::Outcome out = eval.rebase(base);
  EXPECT_EQ(out.makespan,
            evaluate_wcsl(inst.app, inst.arch, base, model).makespan);
  EXPECT_EQ(out.cost, assignment_cost(inst.app, inst.arch, base, model));
}

TEST(EvalContext, ReusesCachedRowsForLocalizedMoves) {
  const Instance inst = make_instance(30, 3, 9);
  const FaultModel model{3};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase(base);

  // A checkpoint change on the last process in topological order leaves
  // most of the DAG untouched.
  const ProcessId pid = inst.app.topological_order().back();
  ProcessPlan plan = base.plan(pid);
  plan.copies[0].checkpoints = plan.copies[0].checkpoints == 1 ? 2 : 1;
  (void)eval.evaluate_move(pid, plan);

  const EvalStats stats = eval.stats();
  EXPECT_EQ(stats.incremental_evals, 1);
  EXPECT_GT(stats.dp_vertices_total, 0);
  EXPECT_GT(stats.dp_vertices_reused, stats.dp_vertices_total / 2)
      << "a sink-move should reuse most cached DP rows";
}

TEST(EvalContext, FaultFreeMakespanMatchesListSchedule) {
  const Instance inst = make_instance(16, 3, 21);
  const FaultModel model{0};
  PolicyAssignment base = strip_fault_tolerance(
      inst.app, greedy_initial(inst.app, inst.arch, FaultModel{1},
                               PolicySpace::kReexecutionOnly, 4));
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase_fault_free(base);

  Rng rng(3);
  for (int move = 0; move < 40; ++move) {
    const ProcessId pid{static_cast<std::int32_t>(
        rng.index(static_cast<std::size_t>(inst.app.process_count())))};
    const Process& proc = inst.app.process(pid);
    std::vector<NodeId> allowed;
    for (NodeId n : inst.arch.node_ids()) {
      if (proc.can_run_on(n)) allowed.push_back(n);
    }
    ProcessPlan plan = base.plan(pid);
    plan.copies[0].node = allowed[rng.index(allowed.size())];

    PolicyAssignment candidate = base;
    candidate.plan(pid) = plan;
    EXPECT_EQ(eval.fault_free_makespan(pid, plan),
              list_schedule(inst.app, inst.arch, candidate).makespan);
  }
}

TEST(EvalContext, ConcurrentMoveEvaluationsMatchSerial) {
  const Instance inst = make_instance(20, 3, 55);
  const FaultModel model{2};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase(base);

  // One fixed move per process: flip copy 0's checkpoint count.
  std::vector<ProcessPlan> moves;
  for (int i = 0; i < inst.app.process_count(); ++i) {
    ProcessPlan plan = base.plan(ProcessId{i});
    plan.copies[0].checkpoints = plan.copies[0].checkpoints == 1 ? 3 : 1;
    moves.push_back(std::move(plan));
  }

  std::vector<Time> serial(moves.size(), 0);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    serial[i] = eval.evaluate_move(ProcessId{static_cast<std::int32_t>(i)},
                                   moves[i])
                    .cost;
  }

  ThreadPool pool(3);  // real helpers even on single-core hosts
  std::vector<Time> parallel(moves.size(), 0);
  parallel_for(pool, moves.size(), 4, [&](std::size_t i) {
    parallel[i] = eval.evaluate_move(ProcessId{static_cast<std::int32_t>(i)},
                                     moves[i])
                      .cost;
  });
  EXPECT_EQ(serial, parallel);
}

// Regression guard for the accepted-move path (ROADMAP: "resume logs for
// accepted moves"): a rebase served by the winning-move cache skips the DP
// rebuild but MUST still rebuild the base schedule's checkpoint log --
// otherwise the next round of list_schedule_resume would replay against a
// stale log and silently produce wrong schedules.  The test forces a
// cache-hit rebase, then pins (a) that subsequent incremental evaluations
// against the new base are bit-identical to from-scratch evaluations and
// (b) that they are actually served by snapshot resumes from the fresh log.
TEST(EvalContext, CacheHitRebaseLeavesUsableCheckpointLog) {
  const Instance inst = make_instance(20, 3, 31);
  const FaultModel model{2};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase(base);

  // Candidate moves on one process, generated in increasing move-key
  // order (checkpoint count ascending): picking the first strict minimum
  // below then matches the winning-move cache's deterministic tie-break.
  const ProcessId pid = inst.app.topological_order().front();
  std::vector<ProcessPlan> moves;
  for (int count = 1; count <= 6; ++count) {
    ProcessPlan plan = base.plan(pid);
    plan.copies[0].checkpoints = count;
    if (plan == base.plan(pid)) continue;
    moves.push_back(std::move(plan));
  }
  ASSERT_GE(moves.size(), 2u);

  Time best_cost = kTimeInfinity;
  std::size_t best = 0;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const Time cost = eval.evaluate_move(pid, moves[i]).cost;
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }

  // Accept the winning move: this rebase must be served by the cache.
  const EvalStats before = eval.stats();
  base.plan(pid) = moves[best];
  const EvalContext::Outcome accepted = eval.rebase(base);
  const EvalStats after_rebase = eval.stats().since(before);
  ASSERT_EQ(after_rebase.rebase_cache_hits, 1)
      << "the accepted move must hit the winning-move cache";
  EXPECT_EQ(accepted.cost, best_cost);

  // Next round: moves against the new base must resume from the freshly
  // recorded log and match from-scratch evaluations exactly.
  Rng rng(77);
  for (int round = 0; round < 25; ++round) {
    const ProcessId mover{static_cast<std::int32_t>(
        rng.index(static_cast<std::size_t>(inst.app.process_count())))};
    const ProcessPlan plan = random_move(inst, base, mover, model, rng);
    PolicyAssignment candidate = base;
    candidate.plan(mover) = plan;
    const EvalContext::Outcome incremental = eval.evaluate_move(mover, plan);
    EXPECT_EQ(incremental.makespan,
              evaluate_wcsl(inst.app, inst.arch, candidate, model).makespan)
        << "round " << round;
  }
  const EvalStats next_round = eval.stats().since(before);
  EXPECT_GT(next_round.ls_events_resumed, 0)
      << "post-rebase evaluations must be served by the rebuilt log";
}

// The accepted-move fast path itself: a rebase onto a single-plan diff
// must obtain the new base's checkpoint log by record-while-resuming (not
// a from-scratch build), and the resulting evaluator state must be
// indistinguishable from a full rebuild.
TEST(EvalContext, AcceptedMoveRebaseRecordsLogViaResume) {
  const Instance inst = make_instance(30, 3, 77);
  const FaultModel model{2};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase(base);

  // A checkpoint flip on the topological sink keeps the event count (and
  // with it the default snapshot interval) unchanged and leaves a long
  // resumable prefix.
  const ProcessId pid = inst.app.topological_order().back();
  ProcessPlan plan = base.plan(pid);
  plan.copies[0].checkpoints = plan.copies[0].checkpoints == 1 ? 2 : 1;
  (void)eval.evaluate_move(pid, plan);

  const EvalStats before = eval.stats();
  EXPECT_EQ(before.rebase_full_builds, 1);  // only the initial rebase
  base.plan(pid) = plan;
  eval.rebase(base);
  const EvalStats spent = eval.stats().since(before);
  EXPECT_EQ(spent.rebase_cache_hits, 1);
  EXPECT_EQ(spent.rebase_log_recorded, 1)
      << "the accepted-move rebase must record its log via resume";
  EXPECT_EQ(spent.rebase_full_builds, 0);
  EXPECT_GT(spent.rebase_log_events_resumed, 0);
  // Move-evaluation counters stay untouched by the rebase path.
  EXPECT_EQ(spent.ls_resumes + spent.ls_full_builds, 0);

  // The recorded log must serve the next round exactly like a fresh one.
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    const ProcessId mover{static_cast<std::int32_t>(
        rng.index(static_cast<std::size_t>(inst.app.process_count())))};
    const ProcessPlan moved = random_move(inst, base, mover, model, rng);
    PolicyAssignment candidate = base;
    candidate.plan(mover) = moved;
    EXPECT_EQ(eval.evaluate_move(mover, moved).makespan,
              evaluate_wcsl(inst.app, inst.arch, candidate, model).makespan)
        << "round " << round;
  }
}

// Consecutive acceptances are re-recorded as a batch against the retained
// grand-base log (kRebaseBatchWindow).  A run of layout-preserving
// checkpoint flips -- the common accepted move -- must (a) stay
// bit-identical to from-scratch evaluation after every rebase, (b)
// actually batch (>1 pending move diffed against one anchor), and (c)
// share prefix snapshots by reference instead of copying them.
TEST(EvalContext, BatchedAcceptRunSharesSnapshotsAndStaysExact) {
  const Instance inst = make_instance(26, 3, 99);
  const FaultModel model{2};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase(base);

  // Checkpoint flips keep the event count (and with it the layout and the
  // default snapshot interval) unchanged, so every acceptance is eligible
  // for prefix sharing.  Cycle over the three latest processes in
  // topological order to keep the resumable prefix long.
  const auto& topo = inst.app.topological_order();
  for (int accept = 0; accept < 9; ++accept) {
    const ProcessId pid = topo[topo.size() - 1 -
                               static_cast<std::size_t>(accept % 3)];
    ProcessPlan plan = base.plan(pid);
    plan.copies[0].checkpoints = plan.copies[0].checkpoints == 1 ? 2 : 1;
    base.plan(pid) = plan;
    const EvalContext::Outcome out = eval.rebase(base, pid);
    EXPECT_EQ(out.makespan,
              evaluate_wcsl(inst.app, inst.arch, base, model).makespan)
        << "accept " << accept;
    EXPECT_EQ(out.cost, assignment_cost(inst.app, inst.arch, base, model))
        << "accept " << accept;
  }

  const EvalStats stats = eval.stats();
  EXPECT_GT(stats.rebase_log_recorded, 0);
  EXPECT_GT(stats.rebase_batched, 0)
      << "consecutive accepts never diffed a >1-move batch";
  EXPECT_GT(stats.snapshot_refs_shared, 0)
      << "no prefix snapshot was adopted by reference";
  EXPECT_GT(stats.snapshot_bytes_shared, 0);

  // The evaluator must still be exact for the next neighborhood.
  Rng rng(808);
  for (int round = 0; round < 15; ++round) {
    const ProcessId mover{static_cast<std::int32_t>(
        rng.index(static_cast<std::size_t>(inst.app.process_count())))};
    const ProcessPlan plan = random_move(inst, base, mover, model, rng);
    PolicyAssignment candidate = base;
    candidate.plan(mover) = plan;
    EXPECT_EQ(eval.evaluate_move(mover, plan).makespan,
              evaluate_wcsl(inst.app, inst.arch, candidate, model).makespan)
        << "round " << round;
  }
}

// Random accepted moves of all three families: the batched rebase path
// must stay exact under layout changes and interval-gate misses, and
// every interval mismatch must be accounted as a full rebuild (the gate
// that keeps recorded logs bit-identical never records through a
// mismatched interval).
TEST(EvalContext, RandomAcceptChainIsExactAndCountsIntervalMisses) {
  const Instance inst = make_instance(18, 3, 404);
  const FaultModel model{2};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase(base);

  Rng rng(1717);
  for (int accept = 0; accept < 12; ++accept) {
    const ProcessId pid{static_cast<std::int32_t>(
        rng.index(static_cast<std::size_t>(inst.app.process_count())))};
    base.plan(pid) = random_move(inst, base, pid, model, rng);
    const EvalContext::Outcome out = eval.rebase(base, pid);
    EXPECT_EQ(out.makespan,
              evaluate_wcsl(inst.app, inst.arch, base, model).makespan)
        << "accept " << accept;
  }
  const EvalStats stats = eval.stats();
  EXPECT_GT(stats.rebase_log_recorded + stats.rebase_full_builds, 0);
  EXPECT_LE(stats.rebase_interval_mismatch, stats.rebase_full_builds)
      << "an interval-gate miss must always fall back to a full rebuild";
}

TEST(EvalContext, EvaluateMoveWithoutRebaseThrows) {
  const Instance inst = make_instance(6, 2, 1);
  const FaultModel model{1};
  EvalContext eval(inst.app, inst.arch, model);
  const PolicyAssignment base = greedy_initial(
      inst.app, inst.arch, model, PolicySpace::kReexecutionOnly, 4);
  EXPECT_THROW((void)eval.evaluate_move(ProcessId{0}, base.plan(ProcessId{0})),
               std::logic_error);
}

}  // namespace
}  // namespace ftes
