// Tests of the conditional scheduler / schedule tables (Section 5, Fig. 6).
#include "sched/cond_scheduler.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "sim/executor.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

TEST(CondScheduler, FaultFreeScenarioMatchesListScheduleShape) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  ASSERT_FALSE(r.traces.empty());
  // The first enumerated scenario is fault-free.
  const ScenarioTrace& ff = r.traces.front();
  EXPECT_EQ(ff.scenario.total_faults(), 0);
  for (const ExecTrace& e : ff.execs) {
    EXPECT_FALSE(e.died);
    EXPECT_EQ(e.attempt_starts.size(), 1u);
  }
}

TEST(CondScheduler, ScenarioCountIsStarsAndBars) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // 4 copies, k = 2: C(6,2) = 15 scenarios.
  EXPECT_EQ(r.scenario_count, 15);
}

TEST(CondScheduler, Fig6ReexecutionStartsOfP1) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // P1 (C = 30, alpha = 5, mu = chi = 0) re-executes at 0 / 35 / 70,
  // exactly the paper's Fig. 6 N1 row for P1.
  FaultScenario two_faults;
  two_faults.add_fault(CopyRef{f.p1, 0}, 2);
  bool found = false;
  for (const ScenarioTrace& tr : r.traces) {
    if (!(tr.scenario.hits() == two_faults.hits())) continue;
    found = true;
    for (const ExecTrace& e : tr.execs) {
      if (e.copy.process == f.p1) {
        ASSERT_EQ(e.attempt_starts.size(), 3u);
        EXPECT_EQ(e.attempt_starts[0], 0);
        EXPECT_EQ(e.attempt_starts[1], 35);
        EXPECT_EQ(e.attempt_starts[2], 70);
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(CondScheduler, TransparencyPinsFrozenStarts) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // P3 and the frozen messages must start at one single time across all 15
  // scenarios (checked exhaustively by the executor).
  const ExecutionReport report =
      check_all_scenarios(f.app, f.assignment, r);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
  ASSERT_TRUE(r.frozen_starts.count("P3"));
  ASSERT_TRUE(r.frozen_starts.count("m2"));
  ASSERT_TRUE(r.frozen_starts.count("m3"));
  // The pinned start must accommodate the worst input path.
  Time latest_m3 = 0;
  for (const ScenarioTrace& tr : r.traces) {
    for (const TxTrace& tx : tr.txs) {
      if (!tx.is_condition && tx.msg == f.m3) {
        latest_m3 = std::max(latest_m3, tx.start);
      }
    }
  }
  EXPECT_EQ(latest_m3, r.frozen_starts.at("m3"));
}

TEST(CondScheduler, TransparencyCostsScheduleLength) {
  auto frozen = fig5_app();
  const CondScheduleResult with =
      conditional_schedule(frozen.app, frozen.arch, frozen.assignment,
                           frozen.model);
  CondScheduleOptions opts;
  opts.respect_transparency = false;
  const CondScheduleResult without =
      conditional_schedule(frozen.app, frozen.arch, frozen.assignment,
                           frozen.model, opts);
  // Section 3.3: transparency may only lengthen the worst case...
  EXPECT_GE(with.wcsl, without.wcsl);
  // ...but shrinks the tables (fewer distinct columns downstream).
  EXPECT_LE(with.tables.total_entries(), without.tables.total_entries());
}

TEST(CondScheduler, FrozenMessageOccupiesBusEvenWhenCoLocated) {
  auto f = fig5_app();
  // m3: P4 -> P3, both on N2, but frozen => must appear on the bus, like
  // the paper's Fig. 6 where frozen m3 takes a slot at t = 120.
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  EXPECT_TRUE(r.tables.bus_rows.count("m3"));
}

TEST(CondScheduler, ConditionBroadcastsAppearInBusRows) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // P1 can fault twice: both condition rows must exist (Fig. 6's F rows).
  EXPECT_TRUE(r.tables.bus_rows.count("F_P1^1"));
  EXPECT_TRUE(r.tables.bus_rows.count("F_P1^2"));
}

TEST(CondScheduler, TablesSeparateRowsByNode) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const TableRows& n1 = r.tables.node_rows[0];
  const TableRows& n2 = r.tables.node_rows[1];
  EXPECT_TRUE(n1.count("P1"));
  EXPECT_TRUE(n1.count("P2"));
  EXPECT_FALSE(n1.count("P3"));
  EXPECT_TRUE(n2.count("P3"));
  EXPECT_TRUE(n2.count("P4"));
}

TEST(CondScheduler, GuardsGrowWithFaultHistory) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // P1's first activation is unconditional; its re-executions carry the
  // fault literals of the earlier attempts.
  const auto& p1_row = r.tables.node_rows[0].at("P1");
  bool unconditional_first = false;
  bool conditional_reexec = false;
  for (const TableEntry& e : p1_row) {
    if (e.start == 0 && e.guard.literals().empty()) unconditional_first = true;
    if (e.start == 35 && e.guard.faults() >= 1) conditional_reexec = true;
  }
  EXPECT_TRUE(unconditional_first);
  EXPECT_TRUE(conditional_reexec);
}

TEST(CondScheduler, WcslDominatesEveryScenario) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  for (const ScenarioTrace& tr : r.traces) {
    EXPECT_LE(tr.makespan, r.wcsl);
  }
  EXPECT_GT(r.wcsl, 0);
}

TEST(CondScheduler, ScenarioCapThrows) {
  auto f = fig5_app();
  CondScheduleOptions opts;
  opts.max_scenarios = 3;
  EXPECT_THROW(
      conditional_schedule(f.app, f.arch, f.assignment, f.model, opts),
      std::length_error);
}

TEST(CondScheduler, ReplicationSchedulesAllCopies) {
  auto f = fig5_app();
  ProcessPlan plan = make_replication_plan(f.model.k);
  plan.copies[0].node = NodeId{0};
  plan.copies[1].node = NodeId{1};
  plan.copies[2].node = NodeId{0};
  f.assignment.plan(f.p1) = plan;
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const ScenarioTrace& ff = r.traces.front();
  int p1_copies = 0;
  for (const ExecTrace& e : ff.execs) {
    if (e.copy.process == f.p1) ++p1_copies;
  }
  EXPECT_EQ(p1_copies, 3);
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

TEST(CondScheduler, TextRenderingMentionsAllRows) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const std::string text = r.tables.to_text(f.arch);
  for (const char* token : {"P1", "P2", "P3", "P4", "m1", "m2", "m3",
                            "F_P1^1", "WCSL"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace ftes
