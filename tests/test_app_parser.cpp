// Tests of the problem-file parser (src/io), including the adversarial
// corpus added when the parser became a network-facing surface (the job
// server feeds it arbitrary `text=` request bytes): every malformed input
// must produce a clean std::exception, never a crash, hang or huge
// allocation.
#include "io/app_parser.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace ftes {
namespace {

constexpr const char* kFig5 = R"(
# Fig. 5 example
arch nodes=2 slot=5
k 2
deadline 500

process P1 wcet N1=30 N2=30 alpha=5 mu=0 chi=0
process P2 wcet N1=25 N2=25 alpha=5
process P3 wcet N1=25 N2=25 alpha=5 frozen
process P4 wcet N1=30 N2=30 alpha=5

message m0 P1 P2
message m1 P1 P4 size=2
message m2 P2 P3 frozen
message m3 P4 P3 frozen
)";

TEST(AppParser, ParsesFig5) {
  const ParsedProblem p = parse_problem_string(kFig5);
  EXPECT_EQ(p.app.process_count(), 4);
  EXPECT_EQ(p.app.message_count(), 4);
  EXPECT_EQ(p.arch.node_count(), 2);
  EXPECT_EQ(p.model.k, 2);
  EXPECT_EQ(p.app.deadline(), 500);
  EXPECT_TRUE(p.app.process(ProcessId{2}).frozen);
  EXPECT_FALSE(p.app.process(ProcessId{0}).frozen);
  EXPECT_EQ(p.app.message(MessageId{1}).size, 2);
  EXPECT_TRUE(p.app.message(MessageId{2}).frozen);
  EXPECT_EQ(p.app.process(ProcessId{0}).wcet_on(NodeId{1}), 30);
  EXPECT_EQ(p.app.process(ProcessId{0}).alpha, 5);
}

TEST(AppParser, ParsesMappingRestrictionAndAttributes) {
  const ParsedProblem p = parse_problem_string(R"(
arch nodes=3 slot=4 payload=2
k 1
deadline 100
process A wcet N1=10 N3=12 map=N1 deadline=50 release=5
process B wcet N2=20 soft=7:40:20
message m A B
)");
  const Process& a = p.app.process(ProcessId{0});
  EXPECT_FALSE(a.can_run_on(NodeId{1}));  // N2 restricted
  EXPECT_EQ(a.fixed_mapping, NodeId{0});
  EXPECT_EQ(a.local_deadline, 50);
  EXPECT_EQ(a.release, 5);
  const Process& b = p.app.process(ProcessId{1});
  ASSERT_TRUE(b.soft.has_value());
  EXPECT_DOUBLE_EQ(b.soft->utility, 7.0);
  EXPECT_EQ(b.soft->soft_deadline, 40);
  EXPECT_EQ(b.soft->window, 20);
  EXPECT_EQ(p.arch.bus().slot_payload(), 2);
}

TEST(AppParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_problem_string("arch nodes=2 slot=5\nk 1\nbogus directive\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(AppParser, RejectsUnknownProcessInMessage) {
  EXPECT_THROW((void)parse_problem_string(R"(
arch nodes=1 slot=5
k 0
deadline 10
process A wcet N1=5
message m A Z
)"),
               std::invalid_argument);
}

TEST(AppParser, RejectsNodeOutOfRange) {
  EXPECT_THROW((void)parse_problem_string(R"(
arch nodes=2 slot=5
k 0
deadline 10
process A wcet N3=5
)"),
               std::invalid_argument);
}

TEST(AppParser, RejectsDuplicateProcess) {
  EXPECT_THROW((void)parse_problem_string(R"(
arch nodes=1 slot=5
k 0
deadline 10
process A wcet N1=5
process A wcet N1=6
)"),
               std::invalid_argument);
}

TEST(AppParser, RequiresArchAndDeadline) {
  EXPECT_THROW((void)parse_problem_string("k 1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_problem_string("arch nodes=1 slot=5\nprocess A wcet N1=5\n"),
               std::invalid_argument);
}

TEST(AppParser, RejectsProcessBeforeArch) {
  EXPECT_THROW((void)parse_problem_string("process A wcet N1=5\n"),
               std::invalid_argument);
}

// ------------------------------------------------------- adversarial corpus --

/// Parsing either succeeds or throws std::exception; anything else
/// (crash, uncaught non-standard type) fails the test by terminating.
void expect_clean(const std::string& text) {
  try {
    (void)parse_problem_string(text);
  } catch (const std::exception&) {
    // expected shape for malformed input
  }
}

TEST(AppParserAdversarial, EveryBytePrefixOfAValidProblemParsesCleanly) {
  const std::string whole(kFig5);
  for (std::size_t len = 0; len <= whole.size(); ++len) {
    expect_clean(whole.substr(0, len));
  }
}

TEST(AppParserAdversarial, GarbageAndBinaryLinesAreCleanErrors) {
  expect_clean("\x01\x02\xff\xfe\n");
  expect_clean(std::string("arch nodes=2 slot=5\n\x00\x7f\n", 23));  // NUL byte
  expect_clean("{\"json\": \"not ftes\"}\n");
  expect_clean("process process process\n");
  expect_clean(std::string(4096, '='));
  expect_clean("arch nodes=2 slot=5\nk 1\ndeadline 10\nprocess = wcet\n");
}

TEST(AppParserAdversarial, HugeTokensDoNotBlowUp) {
  const std::string big_name(1 << 20, 'A');
  expect_clean("arch nodes=2 slot=5\nk 1\ndeadline 100\nprocess " + big_name +
               " wcet N1=5\n");
  expect_clean("arch nodes=" + std::string(5000, '9') + " slot=5\n");
  expect_clean(std::string(1 << 20, ' ') + "\n");
}

TEST(AppParserAdversarial, ResourceBoundsAreEnforced) {
  // A giant node count would otherwise allocate slot tables eagerly.
  EXPECT_THROW(
      (void)parse_problem_string("arch nodes=999999999 slot=5\nk 0\n"
                                 "deadline 10\nprocess A wcet N1=5\n"),
      std::invalid_argument);
  // k beyond the supported bound, and a zero bus payload.
  EXPECT_THROW((void)parse_problem_string("arch nodes=1 slot=5\nk 99999\n"
                                          "deadline 10\nprocess A wcet N1=5\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_problem_string("arch nodes=1 slot=5 payload=0\nk 0\n"
                                 "deadline 10\nprocess A wcet N1=5\n"),
      std::invalid_argument);
}

TEST(AppParserAdversarial, NumericOverflowAndNegativesAreCleanErrors) {
  EXPECT_THROW(
      (void)parse_problem_string("arch nodes=2 slot=5\nk 1\n"
                                 "deadline 99999999999999999999999999\n"
                                 "process A wcet N1=5\n"),
      std::invalid_argument);
  // Magnitudes past the documented 1e15 cap cannot silently overflow the
  // integer time arithmetic downstream.
  EXPECT_THROW(
      (void)parse_problem_string("arch nodes=2 slot=5\nk 1\n"
                                 "deadline 9999999999999999\n"
                                 "process A wcet N1=5\n"),
      std::invalid_argument);
  // Negative durations are rejected at the parse boundary.
  EXPECT_THROW((void)parse_problem_string("arch nodes=2 slot=5\nk 1\n"
                                          "deadline 100\n"
                                          "process A wcet N1=-5\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_problem_string("arch nodes=2 slot=5\nk 1\n"
                                          "deadline 100\n"
                                          "process A wcet N1=5 alpha=-1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_problem_string("arch nodes=2 slot=5\nk 1\n"
                                          "deadline 100\n"
                                          "process A wcet N1=5\n"
                                          "process B wcet N1=5\n"
                                          "message m A B size=-2\n"),
               std::invalid_argument);
}

TEST(AppParser, CommentsAndBlankLinesIgnored)
{
  const ParsedProblem p = parse_problem_string(R"(
# leading comment

arch nodes=1 slot=5   # trailing comment
k 0

deadline 10
process A wcet N1=5   # another
)");
  EXPECT_EQ(p.app.process_count(), 1);
}

}  // namespace
}  // namespace ftes
