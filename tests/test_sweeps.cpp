// Parameterized configuration sweeps: the conditional scheduler and the
// executor must uphold their invariants across the (k, transparency,
// broadcast) grid, and the optimizer across all policy spaces and fault
// bounds -- not just at the fixture's single configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "fixtures.h"
#include "opt/policy_assignment.h"
#include "sched/cond_scheduler.h"
#include "sched/wcsl.h"
#include "sim/executor.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

// --- conditional scheduler grid ---------------------------------------------

class CondGrid
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {};

TEST_P(CondGrid, InvariantsHoldAcrossConfigurations) {
  const auto [k, transparent, broadcasts] = GetParam();
  auto f = fig5_app();
  f.model.k = k;
  // Rebuild plans for this k.
  for (int i = 0; i < f.app.process_count(); ++i) {
    ProcessPlan plan = make_checkpointing_plan(k, 1);
    plan.copies[0].node = f.assignment.plan(ProcessId{i}).copies[0].node;
    f.assignment.plan(ProcessId{i}) = plan;
  }
  CondScheduleOptions opts;
  opts.respect_transparency = transparent;
  opts.schedule_condition_broadcasts = broadcasts;
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model, opts);

  // Scenario count is stars-and-bars over 4 copies.
  int expected = 1;
  for (int i = 1; i <= k; ++i) {
    expected = expected * (4 + i) / i;  // C(4+k, k) built incrementally
  }
  EXPECT_EQ(r.scenario_count, expected);

  // Makespans dominated by the reported WCSL; fault-free is the shortest.
  Time fault_free = 0;
  for (const ScenarioTrace& tr : r.traces) {
    EXPECT_LE(tr.makespan, r.wcsl);
    if (tr.scenario.empty()) fault_free = tr.makespan;
  }
  EXPECT_GT(fault_free, 0);
  EXPECT_LE(fault_free, r.wcsl);

  // Every process completes in every scenario.
  for (const ScenarioTrace& tr : r.traces) {
    std::vector<bool> done(4, false);
    for (const ExecTrace& e : tr.execs) {
      if (!e.died) done[static_cast<std::size_t>(e.copy.process.get())] = true;
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(done[static_cast<std::size_t>(i)])
          << "k=" << k << " " << tr.scenario.to_string(f.app);
    }
  }

  // With transparency on, the executor's full check (incl. frozen pins)
  // must pass; with it off, guard-entailment and deadlines still hold for
  // every per-scenario trace.
  if (transparent) {
    EXPECT_TRUE(check_all_scenarios(f.app, f.assignment, r).ok);
  } else {
    for (const ScenarioTrace& tr : r.traces) {
      EXPECT_TRUE(execute_scenario(f.app, f.assignment, r, tr).ok);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CondGrid,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// --- transparency monotonicity across k -------------------------------------

class TransparencyCost : public ::testing::TestWithParam<int> {};

TEST_P(TransparencyCost, FrozenNeverShortensSchedules) {
  const int k = GetParam();
  auto f = fig5_app();
  f.model.k = k;
  for (int i = 0; i < f.app.process_count(); ++i) {
    ProcessPlan plan = make_checkpointing_plan(k, 1);
    plan.copies[0].node = f.assignment.plan(ProcessId{i}).copies[0].node;
    f.assignment.plan(ProcessId{i}) = plan;
  }
  CondScheduleOptions open;
  open.respect_transparency = false;
  const Time with = conditional_schedule(f.app, f.arch, f.assignment,
                                         f.model)
                        .wcsl;
  const Time without = conditional_schedule(f.app, f.arch, f.assignment,
                                            f.model, open)
                           .wcsl;
  EXPECT_GE(with, without) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Faults, TransparencyCost, ::testing::Values(1, 2, 3));

// --- optimizer across spaces and k ------------------------------------------

class OptimizerGrid
    : public ::testing::TestWithParam<std::tuple<PolicySpace, int>> {};

TEST_P(OptimizerGrid, ValidAndNoWorseThanGreedy) {
  const auto [space, k] = GetParam();
  auto f = fig5_app();
  f.app.set_deadline(kTimeInfinity / 2);
  const FaultModel fm{k};
  OptimizeOptions opts;
  opts.space = space;
  opts.iterations = 30;
  opts.neighborhood = 8;
  opts.seed = 17;
  if (space != PolicySpace::kFull &&
      space != PolicySpace::kCheckpointingOnly) {
    opts.optimize_checkpoints = false;
  }
  const PolicyAssignment greedy =
      greedy_initial(f.app, f.arch, fm, space, opts.max_checkpoints);
  const Time greedy_cost = evaluate_wcsl(f.app, f.arch, greedy, fm).makespan;
  const OptimizeResult r = optimize_from(f.app, f.arch, fm, opts, greedy);
  EXPECT_LE(r.wcsl, greedy_cost);
  EXPECT_NO_THROW(r.assignment.validate(f.app, fm));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimizerGrid,
    ::testing::Combine(::testing::Values(PolicySpace::kReexecutionOnly,
                                         PolicySpace::kCheckpointingOnly,
                                         PolicySpace::kReplicationOnly,
                                         PolicySpace::kFull),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ftes
