// Tests of the soft/hard utility scheduling extension ([17]).
#include "opt/soft_hard.h"

#include <gtest/gtest.h>

#include "opt/policy_assignment.h"

namespace ftes {
namespace {

TEST(Utility, PiecewiseLinearShape) {
  SoftSpec spec{10.0, 100, 50};
  EXPECT_DOUBLE_EQ(utility_at(spec, 0), 10.0);
  EXPECT_DOUBLE_EQ(utility_at(spec, 100), 10.0);
  EXPECT_DOUBLE_EQ(utility_at(spec, 125), 5.0);
  EXPECT_DOUBLE_EQ(utility_at(spec, 150), 0.0);
  EXPECT_DOUBLE_EQ(utility_at(spec, 1000), 0.0);
}

TEST(Utility, ZeroWindowIsAStepFunction) {
  SoftSpec spec{4.0, 50, 0};
  EXPECT_DOUBLE_EQ(utility_at(spec, 50), 4.0);
  EXPECT_DOUBLE_EQ(utility_at(spec, 51), 0.0);
}

/// Fixture: hard chain H1 -> H2 plus two independent soft processes on one
/// node; the node is tight enough that dropping soft work helps.
struct SoftFixture {
  Application app;
  Architecture arch = Architecture::homogeneous(1, 5);
  FaultModel model{1};
  PolicyAssignment pa;
  ProcessId h1, h2, s1, s2;
};

SoftFixture make_fixture(Time deadline) {
  SoftFixture f;
  f.h1 = f.app.add_process("H1", {{NodeId{0}, 30}}, 2, 2, 2);
  f.h2 = f.app.add_process("H2", {{NodeId{0}, 30}}, 2, 2, 2);
  f.app.connect(f.h1, f.h2);
  {
    Process s;
    s.name = "S1";
    s.wcet[NodeId{0}] = 20;
    s.alpha = s.mu = s.chi = 2;
    s.soft = SoftSpec{8.0, 200, 100};
    f.s1 = f.app.add_process(std::move(s));
  }
  {
    Process s;
    s.name = "S2";
    s.wcet[NodeId{0}] = 40;
    s.alpha = s.mu = s.chi = 2;
    s.soft = SoftSpec{2.0, 200, 100};
    f.s2 = f.app.add_process(std::move(s));
  }
  f.app.set_deadline(deadline);
  f.pa = PolicyAssignment(f.app.process_count());
  for (int i = 0; i < f.app.process_count(); ++i) {
    ProcessPlan plan = make_checkpointing_plan(f.model.k, 1);
    plan.copies[0].node = NodeId{0};
    f.pa.plan(ProcessId{i}) = plan;
  }
  return f;
}

TEST(SoftHard, EvaluateRejectsIllegalDropSets) {
  SoftFixture f = make_fixture(1000);
  std::vector<bool> drop_hard(4, false);
  drop_hard[static_cast<std::size_t>(f.h1.get())] = true;
  EXPECT_THROW((void)evaluate_soft_hard(f.app, f.arch, f.pa, f.model, drop_hard),
               std::invalid_argument);
}

TEST(SoftHard, EvaluateRejectsNonClosedDropSets) {
  SoftFixture f = make_fixture(1000);
  // Chain S1 -> S2 to create a closure constraint, then drop only S1.
  f.app.connect(f.s1, f.s2);
  std::vector<bool> dropped(4, false);
  dropped[static_cast<std::size_t>(f.s1.get())] = true;
  EXPECT_THROW((void)evaluate_soft_hard(f.app, f.arch, f.pa, f.model, dropped),
               std::invalid_argument);
}

TEST(SoftHard, KeepsEverythingWhenRelaxed) {
  SoftFixture f = make_fixture(1000);
  SoftHardOptions opts;
  opts.iterations = 60;
  const SoftHardResult r =
      optimize_soft_hard(f.app, f.arch, f.pa, f.model, opts);
  EXPECT_TRUE(r.evaluation.hard_feasible);
  EXPECT_FALSE(r.dropped[static_cast<std::size_t>(f.s1.get())]);
  EXPECT_FALSE(r.dropped[static_cast<std::size_t>(f.s2.get())]);
  EXPECT_GT(r.evaluation.total_utility, 9.9);  // both at full utility
}

TEST(SoftHard, DropsSoftWorkToMeetHardDeadline) {
  // Deadline admits the hard chain with recovery slack but not all soft
  // work: hard chain worst case = 2*(32) + (30+4) = 98-ish.
  SoftFixture f = make_fixture(130);
  SoftHardOptions opts;
  opts.iterations = 80;
  const SoftHardResult r =
      optimize_soft_hard(f.app, f.arch, f.pa, f.model, opts);
  EXPECT_TRUE(r.evaluation.hard_feasible);
  // Something soft must have been dropped, and hard processes never are.
  EXPECT_FALSE(r.dropped[static_cast<std::size_t>(f.h1.get())]);
  EXPECT_FALSE(r.dropped[static_cast<std::size_t>(f.h2.get())]);
  EXPECT_TRUE(r.dropped[static_cast<std::size_t>(f.s1.get())] ||
              r.dropped[static_cast<std::size_t>(f.s2.get())]);
}

TEST(SoftHard, PrefersDroppingLowValueDensity) {
  // S2 has lower utility and higher WCET; with room for exactly one soft
  // process the optimizer should keep S1.
  SoftFixture f = make_fixture(160);
  SoftHardOptions opts;
  opts.iterations = 120;
  const SoftHardResult r =
      optimize_soft_hard(f.app, f.arch, f.pa, f.model, opts);
  EXPECT_TRUE(r.evaluation.hard_feasible);
  if (r.dropped[static_cast<std::size_t>(f.s1.get())]) {
    // If S1 was dropped, keeping it must not have been feasible with S2
    // also kept; at minimum utility should be positive or both dropped.
    SUCCEED();
  } else {
    EXPECT_GT(r.evaluation.total_utility, 0.0);
  }
}

TEST(SoftHard, UtilityMonotoneInDeadline) {
  SoftHardOptions opts;
  opts.iterations = 80;
  SoftFixture tight = make_fixture(120);
  SoftFixture loose = make_fixture(400);
  const double u_tight =
      optimize_soft_hard(tight.app, tight.arch, tight.pa, tight.model, opts)
          .evaluation.total_utility;
  const double u_loose =
      optimize_soft_hard(loose.app, loose.arch, loose.pa, loose.model, opts)
          .evaluation.total_utility;
  EXPECT_LE(u_tight, u_loose + 1e-9);
}

TEST(SoftHard, DropClosureCascades) {
  SoftFixture f = make_fixture(110);
  f.app.connect(f.s1, f.s2);  // S1 -> S2: dropping S1 must drop S2
  SoftHardOptions opts;
  opts.iterations = 80;
  const SoftHardResult r =
      optimize_soft_hard(f.app, f.arch, f.pa, f.model, opts);
  if (r.dropped[static_cast<std::size_t>(f.s1.get())]) {
    EXPECT_TRUE(r.dropped[static_cast<std::size_t>(f.s2.get())]);
  }
}

}  // namespace
}  // namespace ftes
