// Tests of the FT-CPG analyses and the bound triangle
// FT-CPG critical path <= scenario-exact WCSL <= budgeted-DP WCSL.
#include "ftcpg/analysis.h"

#include <gtest/gtest.h>

#include "fault/recovery.h"
#include "fixtures.h"
#include "ftcpg/builder.h"
#include "sched/cond_scheduler.h"
#include "sched/wcsl.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

TEST(FtcpgAnalysis, ChainWeightsSumToRecoveryAlgebra) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  // P1's chain: E(1,0) + 2 * (seg + alpha + mu) == E(1,2).
  Time chain = 0;
  for (int v : g.copies_of(f.p1)) {
    chain += ftcpg_vertex_weight(g, v, f.app, f.assignment);
  }
  const Process& p1 = f.app.process(f.p1);
  RecoveryParams params{p1.wcet_on(NodeId{0}), p1.alpha, p1.mu, p1.chi};
  EXPECT_EQ(chain, checkpointed_exec_time(params, 1, 2));
}

TEST(FtcpgAnalysis, SyncNodesAreFree) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  for (int v = 0; v < g.node_count(); ++v) {
    if (g.node(v).kind == FtcpgNodeKind::kSynchronization) {
      EXPECT_EQ(ftcpg_vertex_weight(g, v, f.app, f.assignment), 0);
    }
  }
}

TEST(FtcpgAnalysis, BoundTriangleHolds) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  const Time lower = ftcpg_critical_path(g, f.app, f.assignment, f.model);

  CondScheduleOptions opts;
  opts.respect_transparency = false;
  opts.schedule_condition_broadcasts = false;
  const Time exact =
      conditional_schedule(f.app, f.arch, f.assignment, f.model, opts).wcsl;
  const Time upper = evaluate_wcsl(f.app, f.arch, f.assignment, f.model).makespan;

  EXPECT_LE(lower, exact);
  EXPECT_LE(exact, upper);
  EXPECT_GT(lower, 0);
}

TEST(FtcpgAnalysis, CriticalPathGrowsWithFaults) {
  auto f = fig5_app();
  Time prev = 0;
  for (int k = 0; k <= 3; ++k) {
    PolicyAssignment pa(f.app.process_count());
    for (int i = 0; i < f.app.process_count(); ++i) {
      ProcessPlan plan = make_checkpointing_plan(k, 1);
      plan.copies[0].node = f.assignment.plan(ProcessId{i}).copies[0].node;
      pa.plan(ProcessId{i}) = plan;
    }
    const Ftcpg g = build_ftcpg(f.app, pa, FaultModel{k});
    const Time cp = ftcpg_critical_path(g, f.app, pa, FaultModel{k});
    EXPECT_GE(cp, prev) << "k=" << k;
    prev = cp;
  }
}

TEST(FtcpgAnalysis, ScenarioWidthMatchesContexts) {
  auto f = fig5_app();
  const Ftcpg g = build_ftcpg(f.app, f.assignment, f.model);
  // Every copy of P2 carries a distinct guard (6 contexts); frozen P3's
  // three copies are distinguished only by its own fault literals.
  EXPECT_EQ(ftcpg_scenario_width(g, f.p2), 6);
  EXPECT_EQ(ftcpg_scenario_width(g, f.p3), 3);
  EXPECT_EQ(ftcpg_scenario_width(g, f.p1), 3);
}

}  // namespace
}  // namespace ftes
