// Property tests of the incremental list scheduler
// (sched/list_scheduler.h): prefix-resume schedules must be bit-identical
// to from-scratch builds for random applications, architectures and moves,
// across snapshot intervals (including the interval = 1 and interval >=
// total-events edge cases); the heap-based ready/transmission queues must
// reproduce the historical linear scans exactly; and the EvalContext
// counters built on top (resumed events, rebase cache hits) must be
// thread-count invariant.
#include "sched/list_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/taskgen.h"
#include "opt/eval_context.h"
#include "opt/policy_assignment.h"
#include "reference_list_schedule.h"
#include "util/random.h"

namespace ftes {
namespace {

struct Instance {
  Application app;
  Architecture arch;
};

Instance make_instance(int processes, int nodes, std::uint64_t seed) {
  TaskGenParams params;
  params.process_count = processes;
  params.node_count = nodes;
  Rng rng(seed);
  return Instance{generate_application(params, rng),
                  generate_architecture(params)};
}

/// A randomly mutated plan for `pid`: checkpoint-count change, remap of a
/// copy, or a policy-kind switch (the tabu search's three move families;
/// the last one changes the copy count and therefore the vertex layout).
ProcessPlan random_move(const Instance& inst, const PolicyAssignment& base,
                        ProcessId pid, const FaultModel& model, Rng& rng) {
  ProcessPlan plan = base.plan(pid);
  const Process& proc = inst.app.process(pid);
  std::vector<NodeId> allowed;
  for (NodeId n : inst.arch.node_ids()) {
    if (proc.can_run_on(n)) allowed.push_back(n);
  }
  switch (rng.index(3)) {
    case 0: {  // checkpoint count
      CopyPlan& cp = plan.copies[rng.index(plan.copies.size())];
      if (cp.checkpoints >= 1) {
        cp.checkpoints = 1 + static_cast<int>(rng.uniform_int(0, 7));
        break;
      }
      [[fallthrough]];
    }
    case 1: {  // remap one copy
      CopyPlan& cp = plan.copies[rng.index(plan.copies.size())];
      cp.node = allowed[rng.index(allowed.size())];
      break;
    }
    default: {  // policy switch (changes the copy structure)
      if (rng.chance(0.5)) {
        plan = make_replication_plan(model.k);
        for (CopyPlan& cp : plan.copies) {
          cp.node = allowed[rng.index(allowed.size())];
        }
      } else {
        plan = make_checkpointing_plan(
            model.k, 1 + static_cast<int>(rng.uniform_int(0, 5)));
        plan.copies[0].node = allowed[rng.index(allowed.size())];
      }
      break;
    }
  }
  return plan;
}

void expect_identical(const ListSchedule& a, const ListSchedule& b,
                      const char* what, int round) {
  ASSERT_EQ(a.makespan, b.makespan) << what << " round " << round;
  ASSERT_EQ(a.first_copy, b.first_copy) << what << " round " << round;
  ASSERT_EQ(a.copies.size(), b.copies.size()) << what << " round " << round;
  for (std::size_t i = 0; i < a.copies.size(); ++i) {
    EXPECT_EQ(a.copies[i].ref, b.copies[i].ref) << what << " copy " << i;
    EXPECT_EQ(a.copies[i].node, b.copies[i].node) << what << " copy " << i;
    EXPECT_EQ(a.copies[i].start, b.copies[i].start) << what << " copy " << i;
    EXPECT_EQ(a.copies[i].finish, b.copies[i].finish) << what << " copy " << i;
  }
  ASSERT_EQ(a.messages.size(), b.messages.size())
      << what << " round " << round;
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].msg, b.messages[i].msg) << what << " msg " << i;
    EXPECT_EQ(a.messages[i].src_copy, b.messages[i].src_copy)
        << what << " msg " << i;
    EXPECT_EQ(a.messages[i].sender, b.messages[i].sender)
        << what << " msg " << i;
    EXPECT_EQ(a.messages[i].ready, b.messages[i].ready) << what << " msg " << i;
    EXPECT_EQ(a.messages[i].start, b.messages[i].start) << what << " msg " << i;
    EXPECT_EQ(a.messages[i].finish, b.messages[i].finish)
        << what << " msg " << i;
  }
  EXPECT_EQ(a.node_order, b.node_order) << what << " round " << round;
  EXPECT_EQ(a.bus_order, b.bus_order) << what << " round " << round;
}

TEST(ListSchedulerIncremental, HeapSchedulerMatchesLinearScanReference) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance inst = make_instance(10 + static_cast<int>(seed) * 3,
                                        2 + static_cast<int>(seed % 3), seed);
    const FaultModel model{1 + static_cast<int>(seed % 3)};
    PolicyAssignment pa =
        greedy_initial(inst.app, inst.arch, model,
                       seed % 2 == 0 ? PolicySpace::kCheckpointingOnly
                                     : PolicySpace::kFull,
                       8);
    const ListSchedule heap_based = list_schedule(inst.app, inst.arch, pa);
    const ListSchedule reference =
        ftes::testing::reference_list_schedule(inst.app, inst.arch, pa);
    expect_identical(heap_based, reference, "heap-vs-scan",
                     static_cast<int>(seed));
  }
}

TEST(ListSchedulerIncremental, ResumeMatchesFullRebuildForRandomMoves) {
  // Snapshot intervals: default (~sqrt(E)), the dense edge case (1), and an
  // interval past the event count (only the initial snapshot exists, so
  // every "resume" degenerates to a full rebuild -- still exact).
  for (const int interval : {0, 1, 1 << 20}) {
    const Instance inst = make_instance(22, 3, 1234);
    const FaultModel model{2};
    PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                           PolicySpace::kCheckpointingOnly, 8);
    ScheduleCheckpointLog log;
    ListSchedule base_sched =
        list_schedule(inst.app, inst.arch, base, log, interval);

    Rng rng(99 + static_cast<std::uint64_t>(interval));
    for (int move = 0; move < 120; ++move) {
      const ProcessId pid{static_cast<std::int32_t>(
          rng.index(static_cast<std::size_t>(inst.app.process_count())))};
      PolicyAssignment candidate = base;
      candidate.plan(pid) = random_move(inst, base, pid, model, rng);

      ListScheduleResumeStats stats;
      const ListSchedule resumed = list_schedule_resume(
          inst.app, inst.arch, base, log, candidate, pid, &stats);
      const ListSchedule full = list_schedule(inst.app, inst.arch, candidate);
      expect_identical(resumed, full, "resume-vs-full", move);
      EXPECT_EQ(stats.events_total,
                stats.events_resumed + stats.events_replayed);

      // Occasionally accept the move so later resumes run against fresh
      // bases (and fresh logs).
      if (move % 13 == 0) {
        base = std::move(candidate);
        base_sched = list_schedule(inst.app, inst.arch, base, log, interval);
      }
    }
  }
}

void expect_snapshot_identical(const ScheduleSnapshot& a,
                               const ScheduleSnapshot& b, int round,
                               std::size_t index) {
  ASSERT_EQ(a.event_index, b.event_index) << "round " << round;
  EXPECT_EQ(a.remaining, b.remaining) << "snapshot " << index;
  EXPECT_EQ(a.bus_free, b.bus_free) << "snapshot " << index;
  EXPECT_EQ(a.tx_seq, b.tx_seq) << "snapshot " << index;
  EXPECT_EQ(a.node_free, b.node_free) << "snapshot " << index;
  EXPECT_EQ(a.placed, b.placed) << "snapshot " << index;
  EXPECT_EQ(a.deps_left, b.deps_left) << "snapshot " << index;
  EXPECT_EQ(a.data_ready, b.data_ready) << "snapshot " << index;
  ASSERT_EQ(a.ready_heap.size(), b.ready_heap.size()) << "snapshot " << index;
  for (std::size_t i = 0; i < a.ready_heap.size(); ++i) {
    EXPECT_EQ(a.ready_heap[i].start, b.ready_heap[i].start)
        << "snapshot " << index << " ready " << i;
    EXPECT_EQ(a.ready_heap[i].vertex, b.ready_heap[i].vertex)
        << "snapshot " << index << " ready " << i;
  }
  ASSERT_EQ(a.tx_heap.size(), b.tx_heap.size()) << "snapshot " << index;
  for (std::size_t i = 0; i < a.tx_heap.size(); ++i) {
    EXPECT_EQ(a.tx_heap[i].ready, b.tx_heap[i].ready)
        << "snapshot " << index << " tx " << i;
    EXPECT_EQ(a.tx_heap[i].msg, b.tx_heap[i].msg)
        << "snapshot " << index << " tx " << i;
    EXPECT_EQ(a.tx_heap[i].seq, b.tx_heap[i].seq)
        << "snapshot " << index << " tx " << i;
    EXPECT_EQ(a.tx_heap[i].src_copy, b.tx_heap[i].src_copy)
        << "snapshot " << index << " tx " << i;
    EXPECT_EQ(a.tx_heap[i].sender, b.tx_heap[i].sender)
        << "snapshot " << index << " tx " << i;
  }
  expect_identical(a.partial, b.partial, "snapshot partial", round);
}

void expect_log_identical(const ScheduleCheckpointLog& a,
                          const ScheduleCheckpointLog& b, int round) {
  ASSERT_EQ(a.snapshot_interval, b.snapshot_interval) << "round " << round;
  ASSERT_EQ(a.event_count, b.event_count) << "round " << round;
  EXPECT_EQ(a.avail_event, b.avail_event) << "round " << round;
  EXPECT_EQ(a.placed_event, b.placed_event) << "round " << round;
  EXPECT_EQ(a.rank, b.rank) << "round " << round;
  ASSERT_EQ(a.ties.size(), b.ties.size()) << "round " << round;
  for (std::size_t i = 0; i < a.ties.size(); ++i) {
    EXPECT_EQ(a.ties[i].event, b.ties[i].event) << "tie " << i;
    EXPECT_EQ(a.ties[i].winner, b.ties[i].winner) << "tie " << i;
    EXPECT_EQ(a.ties[i].contenders, b.ties[i].contenders) << "tie " << i;
  }
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size()) << "round " << round;
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    expect_snapshot_identical(a.snapshots[i], b.snapshots[i], round, i);
  }
}

// Record-while-resuming must produce a log bit-identical -- snapshots
// (full scheduler states), tie groups, event indices, ranks -- to the log
// of a from-scratch candidate build at the same snapshot interval, for
// random moves of all three families across the dense (1), default and
// degenerate (>= total events) intervals.  Accepted moves chain: the
// recorded log becomes the next round's base log, so transplant errors
// compound instead of hiding.
TEST(ListSchedulerIncremental, RecordWhileResumingMatchesFromScratchLog) {
  for (const int interval : {0, 1, 1 << 20}) {
    const Instance inst = make_instance(24, 3, 4321);
    const FaultModel model{2};
    PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                           PolicySpace::kCheckpointingOnly, 8);
    ScheduleCheckpointLog log;
    (void)list_schedule(inst.app, inst.arch, base, log, interval);

    Rng rng(1000 + static_cast<std::uint64_t>(interval));
    int resumed_recordings = 0;
    for (int move = 0; move < 80; ++move) {
      const ProcessId pid{static_cast<std::int32_t>(
          rng.index(static_cast<std::size_t>(inst.app.process_count())))};
      PolicyAssignment candidate = base;
      candidate.plan(pid) = random_move(inst, base, pid, model, rng);

      ListScheduleResumeStats stats;
      ScheduleCheckpointLog recorded;
      const ListSchedule resumed =
          list_schedule_resume(inst.app, inst.arch, base, log, candidate, pid,
                               &stats, &recorded);
      ScheduleCheckpointLog scratch;
      const ListSchedule full = list_schedule(inst.app, inst.arch, candidate,
                                              scratch, log.snapshot_interval);
      expect_identical(resumed, full, "record-resume", move);
      expect_log_identical(recorded, scratch, move);
      if (stats.resumed) ++resumed_recordings;

      if (move % 9 == 0) {  // accept: the recorded log is the new base log
        base = std::move(candidate);
        log = std::move(recorded);
      }
    }
    if (interval != 1 << 20) {
      EXPECT_GT(resumed_recordings, 0)
          << "interval " << interval
          << ": every recording degenerated to a full build";
    }
  }
}

// Copy-on-write sharing invariant (util/snapshot_store.h): a recording
// resume of a layout-preserving sink move adopts the base log's prefix
// snapshots by reference -- pointer identity, not equality.  Because the
// store hands out shared_ptr<const ScheduleSnapshot>, nothing done to the
// derived log afterwards -- mutating its replay vectors, clearing its
// ties, dropping its snapshot refs, destroying it -- may change a single
// byte of the base log's snapshots.
TEST(ListSchedulerIncremental, SharedTailRebaseAliasesBaseSnapshots) {
  const Instance inst = make_instance(30, 3, 77);
  const FaultModel model{2};
  const PolicyAssignment base = greedy_initial(
      inst.app, inst.arch, model, PolicySpace::kCheckpointingOnly, 8);
  ScheduleCheckpointLog log;
  (void)list_schedule(inst.app, inst.arch, base, log);
  ASSERT_GT(log.snapshots.size(), 1u);

  // Deep copy of the base snapshots, taken before any sharing happens.
  std::vector<ScheduleSnapshot> pristine;
  for (const auto& ref : log.snapshots) pristine.push_back(*ref);

  const ProcessId pid = inst.app.topological_order().back();
  PolicyAssignment candidate = base;
  candidate.plan(pid).copies[0].checkpoints =
      candidate.plan(pid).copies[0].checkpoints == 1 ? 2 : 1;
  ListScheduleResumeStats stats;
  {
    ScheduleCheckpointLog derived;
    (void)list_schedule_resume(inst.app, inst.arch, base, log, candidate, pid,
                               &stats, &derived);
    ASSERT_GT(stats.snapshots_shared, 0u);
    EXPECT_GT(stats.snapshot_bytes_shared, 0u);
    for (std::size_t i = 0; i < stats.snapshots_shared; ++i) {
      EXPECT_TRUE(derived.snapshots.aliases(i, log.snapshots, i))
          << "prefix snapshot " << i << " was copied, not shared";
    }
    // Vandalize everything mutable about the derived log, then drop its
    // snapshot refs and the log itself.
    derived.avail_event.assign(derived.avail_event.size(), 0);
    derived.placed_event.clear();
    derived.rank.clear();
    derived.ties.clear();
    derived.snapshots.clear();
  }
  ASSERT_EQ(log.snapshots.size(), pristine.size());
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    expect_snapshot_identical(log.snapshots[i], pristine[i], 0, i);
  }
}

// Worst case for compounding transplant errors: EVERY move is accepted,
// so each recording resume runs against the previous round's recorded log
// (never a from-scratch one).  Ten consecutive accepted moves of all
// three families must stay bit-identical -- schedule and full log -- to
// from-scratch builds at the dense (1), default and degenerate (>= total
// events) snapshot intervals.
TEST(ListSchedulerIncremental, ChainedConsecutiveAcceptsStayBitIdentical) {
  for (const int interval : {0, 1, 1 << 20}) {
    const Instance inst = make_instance(24, 3, 2026);
    const FaultModel model{2};
    PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                           PolicySpace::kCheckpointingOnly, 8);
    ScheduleCheckpointLog log;
    (void)list_schedule(inst.app, inst.arch, base, log, interval);

    Rng rng(600 + static_cast<std::uint64_t>(interval));
    for (int accept = 0; accept < 10; ++accept) {
      const ProcessId pid{static_cast<std::int32_t>(
          rng.index(static_cast<std::size_t>(inst.app.process_count())))};
      PolicyAssignment candidate = base;
      candidate.plan(pid) = random_move(inst, base, pid, model, rng);

      ListScheduleResumeStats stats;
      ScheduleCheckpointLog recorded;
      const ListSchedule resumed =
          list_schedule_resume(inst.app, inst.arch, base, log, candidate, pid,
                               &stats, &recorded);
      ScheduleCheckpointLog scratch;
      const ListSchedule full = list_schedule(inst.app, inst.arch, candidate,
                                              scratch, log.snapshot_interval);
      expect_identical(resumed, full, "chained-accept", accept);
      expect_log_identical(recorded, scratch, accept);

      base = std::move(candidate);
      log = std::move(recorded);
    }
  }
}

// The batched-accept path's primitive: one resume against a base log with
// a *set* of moved processes (the multi-move overload) must be
// bit-identical -- schedule and recorded log -- to a from-scratch build
// of the candidate, for random move sets of all three families.
TEST(ListSchedulerIncremental, MultiMoveResumeMatchesFullRebuild) {
  const Instance inst = make_instance(22, 3, 909);
  const FaultModel model{2};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  ScheduleCheckpointLog log;
  (void)list_schedule(inst.app, inst.arch, base, log);

  Rng rng(31337);
  for (int round = 0; round < 40; ++round) {
    const std::size_t move_count = 2 + rng.index(2);  // 2 or 3 moved plans
    std::vector<ProcessId> moved;
    PolicyAssignment candidate = base;
    for (std::size_t m = 0; m < move_count; ++m) {
      const ProcessId pid{static_cast<std::int32_t>(
          rng.index(static_cast<std::size_t>(inst.app.process_count())))};
      candidate.plan(pid) = random_move(inst, base, pid, model, rng);
      moved.push_back(pid);  // duplicates allowed: the resume dedups
    }

    ListScheduleResumeStats stats;
    ScheduleCheckpointLog recorded;
    const ListSchedule resumed = list_schedule_resume(
        inst.app, inst.arch, base, log, candidate, moved, &stats, &recorded);
    ScheduleCheckpointLog scratch;
    const ListSchedule full = list_schedule(inst.app, inst.arch, candidate,
                                            scratch, log.snapshot_interval);
    expect_identical(resumed, full, "multi-move", round);
    expect_log_identical(recorded, scratch, round);

    if (round % 7 == 0) {  // occasionally accept the whole batch
      base = std::move(candidate);
      log = std::move(recorded);
    }
  }
}

TEST(ListSchedulerIncremental, ResumeActuallySkipsEventsForSinkMoves) {
  const Instance inst = make_instance(30, 3, 77);
  const FaultModel model{2};
  const PolicyAssignment base = greedy_initial(
      inst.app, inst.arch, model, PolicySpace::kCheckpointingOnly, 8);
  ScheduleCheckpointLog log;
  (void)list_schedule(inst.app, inst.arch, base, log);

  // A checkpoint flip on the last process in topological order affects only
  // the tail of the event sequence; a healthy log must resume past a
  // non-trivial prefix.
  const ProcessId pid = inst.app.topological_order().back();
  PolicyAssignment candidate = base;
  candidate.plan(pid).copies[0].checkpoints =
      candidate.plan(pid).copies[0].checkpoints == 1 ? 2 : 1;
  ListScheduleResumeStats stats;
  const ListSchedule resumed = list_schedule_resume(
      inst.app, inst.arch, base, log, candidate, pid, &stats);
  expect_identical(resumed, list_schedule(inst.app, inst.arch, candidate),
                   "sink-move", 0);
  EXPECT_TRUE(stats.resumed);
  EXPECT_GT(stats.events_resumed, 0u);
  EXPECT_GT(stats.heap_pops, 0u);
}

TEST(ListSchedulerIncremental, EvalContextReportsResumesAndRebaseCacheHits) {
  const Instance inst = make_instance(24, 3, 5);
  const FaultModel model{2};
  PolicyAssignment base = greedy_initial(inst.app, inst.arch, model,
                                         PolicySpace::kCheckpointingOnly, 8);
  EvalContext eval(inst.app, inst.arch, model);
  eval.rebase(base);

  // Evaluate one move and rebase onto exactly that move: the winning-move
  // cache must serve the rebase.
  const ProcessId pid = inst.app.topological_order().back();
  ProcessPlan plan = base.plan(pid);
  plan.copies[0].checkpoints = plan.copies[0].checkpoints == 1 ? 2 : 1;
  const EvalContext::Outcome moved = eval.evaluate_move(pid, plan);

  PolicyAssignment accepted = base;
  accepted.plan(pid) = plan;
  const EvalContext::Outcome rebased = eval.rebase(accepted);
  EXPECT_EQ(moved.makespan, rebased.makespan);
  EXPECT_EQ(moved.cost, rebased.cost);

  const EvalStats stats = eval.stats();
  EXPECT_EQ(stats.rebase_cache_hits, 1);
  EXPECT_EQ(stats.ls_resumes + stats.ls_full_builds, 1);
  EXPECT_GT(stats.ls_events_total, 0);
  EXPECT_GT(stats.heap_pops, 0);
  // The adopted rebase must leave the evaluator fully usable.
  const EvalContext::Outcome after = eval.evaluate_move(pid, base.plan(pid));
  PolicyAssignment back = accepted;
  back.plan(pid) = base.plan(pid);
  EXPECT_EQ(after.makespan,
            evaluate_wcsl(inst.app, inst.arch, back, model).makespan);
}

TEST(ListSchedulerIncremental, OptimizerCountersAreThreadCountInvariant) {
  const Instance inst = make_instance(20, 3, 31);
  const FaultModel model{3};
  OptimizeOptions opts;
  opts.iterations = 25;
  opts.neighborhood = 8;
  opts.seed = 42;

  auto run = [&](int threads) {
    OptimizeOptions o = opts;
    o.threads = threads;
    return optimize_policy_and_mapping(inst.app, inst.arch, model, o);
  };
  const OptimizeResult serial = run(1);
  const OptimizeResult parallel = run(4);
  EXPECT_EQ(serial.wcsl, parallel.wcsl);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  EXPECT_EQ(serial.eval_stats.ls_resumes, parallel.eval_stats.ls_resumes);
  EXPECT_EQ(serial.eval_stats.ls_events_resumed,
            parallel.eval_stats.ls_events_resumed);
  EXPECT_EQ(serial.eval_stats.ls_events_total,
            parallel.eval_stats.ls_events_total);
  EXPECT_EQ(serial.eval_stats.heap_pops, parallel.eval_stats.heap_pops);
  EXPECT_EQ(serial.eval_stats.rebase_cache_hits,
            parallel.eval_stats.rebase_cache_hits);
  EXPECT_EQ(serial.eval_stats.dp_vertices_reused,
            parallel.eval_stats.dp_vertices_reused);
  // The accepted-move rebase path (batching, copy-on-write sharing) runs
  // on the serial accept step, so its counters -- including raw byte
  // counts -- must be exactly thread-count invariant too.
  EXPECT_EQ(serial.eval_stats.rebase_log_recorded,
            parallel.eval_stats.rebase_log_recorded);
  EXPECT_EQ(serial.eval_stats.rebase_log_events_replayed,
            parallel.eval_stats.rebase_log_events_replayed);
  EXPECT_EQ(serial.eval_stats.rebase_batched,
            parallel.eval_stats.rebase_batched);
  EXPECT_EQ(serial.eval_stats.rebase_interval_mismatch,
            parallel.eval_stats.rebase_interval_mismatch);
  EXPECT_EQ(serial.eval_stats.snapshot_refs_shared,
            parallel.eval_stats.snapshot_refs_shared);
  EXPECT_EQ(serial.eval_stats.snapshot_bytes_copied,
            parallel.eval_stats.snapshot_bytes_copied);
  EXPECT_EQ(serial.eval_stats.snapshot_bytes_shared,
            parallel.eval_stats.snapshot_bytes_shared);
  for (int i = 0; i < inst.app.process_count(); ++i) {
    EXPECT_EQ(serial.assignment.plan(ProcessId{i}),
              parallel.assignment.plan(ProcessId{i}))
        << "process " << i;
  }
}

}  // namespace
}  // namespace ftes
