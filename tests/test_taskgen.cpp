// Tests of the synthetic task-graph generator.
#include "gen/taskgen.h"

#include <gtest/gtest.h>

namespace ftes {
namespace {

TEST(TaskGen, ProducesRequestedSize) {
  TaskGenParams params;
  params.process_count = 40;
  params.node_count = 4;
  Rng rng(1);
  const Application app = generate_application(params, rng);
  EXPECT_EQ(app.process_count(), 40);
  EXPECT_GT(app.message_count(), 0);
}

TEST(TaskGen, GraphIsAcyclicAndValid) {
  TaskGenParams params;
  params.process_count = 60;
  params.node_count = 3;
  Rng rng(2);
  const Application app = generate_application(params, rng);
  const Architecture arch = generate_architecture(params);
  EXPECT_NO_THROW(app.validate(arch));
}

TEST(TaskGen, DeterministicUnderSeed) {
  TaskGenParams params;
  params.process_count = 25;
  Rng a(42), b(42);
  const Application x = generate_application(params, a);
  const Application y = generate_application(params, b);
  ASSERT_EQ(x.process_count(), y.process_count());
  ASSERT_EQ(x.message_count(), y.message_count());
  for (int i = 0; i < x.process_count(); ++i) {
    EXPECT_EQ(x.process(ProcessId{i}).wcet, y.process(ProcessId{i}).wcet);
  }
}

TEST(TaskGen, WcetsWithinScaledRange) {
  TaskGenParams params;
  params.process_count = 50;
  params.wcet_min = 10;
  params.wcet_max = 100;
  Rng rng(3);
  const Application app = generate_application(params, rng);
  for (const Process& p : app.processes()) {
    for (const auto& [node, c] : p.wcet) {
      EXPECT_GE(c, 1);
      EXPECT_LE(c, 131);  // 100 * 1.3 rounded
    }
    EXPECT_GE(p.alpha, 1);
    EXPECT_GE(p.mu, 1);
    EXPECT_GE(p.chi, 1);
  }
}

TEST(TaskGen, RestrictionsNeverStrandAProcess) {
  TaskGenParams params;
  params.process_count = 80;
  params.node_count = 2;
  params.restriction_probability = 0.8;  // aggressive
  Rng rng(4);
  const Application app = generate_application(params, rng);
  for (const Process& p : app.processes()) {
    EXPECT_GE(p.wcet.size(), 1u) << p.name;
  }
}

TEST(TaskGen, FrozenFractionsApplied) {
  TaskGenParams params;
  params.process_count = 100;
  params.frozen_process_fraction = 1.0;
  params.frozen_message_fraction = 1.0;
  Rng rng(5);
  const Application app = generate_application(params, rng);
  for (const Process& p : app.processes()) EXPECT_TRUE(p.frozen);
  for (const Message& m : app.messages()) EXPECT_TRUE(m.frozen);
}

TEST(TaskGen, InDegreeBounded) {
  TaskGenParams params;
  params.process_count = 70;
  params.max_in_degree = 2;
  Rng rng(6);
  const Application app = generate_application(params, rng);
  for (int i = 0; i < app.process_count(); ++i) {
    EXPECT_LE(app.inputs(ProcessId{i}).size(), 2u);
  }
}

TEST(TaskGen, DeadlineScalesWithCriticalPath) {
  TaskGenParams params;
  params.process_count = 30;
  params.deadline_factor = 2.0;
  Rng a(7);
  const Application app2 = generate_application(params, a);
  params.deadline_factor = 8.0;
  Rng b(7);
  const Application app8 = generate_application(params, b);
  EXPECT_EQ(app8.deadline(), 4 * app2.deadline());
}

}  // namespace
}  // namespace ftes
