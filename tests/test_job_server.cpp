// Tests of the synthesis job server (serve/job_server.h): the line
// protocol, the typed error taxonomy, retry/degradation, the result
// cache's bit-identity guarantee, and a 500+ job fault-injected soak
// asserting that the server answers every request exactly once and never
// dies, whatever the seam throws at it.
#include "serve/job_server.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/fault_injection.h"

namespace ftes::serve {
namespace {

// The paper's Fig. 3-style example, escaped for a one-line text= value.
const char* const kInlineProblem =
    "arch nodes=2 slot=5\\nk 2\\ndeadline 600\\n"
    "process P1 wcet N1=20 N2=30 alpha=5 mu=5 chi=5\\n"
    "process P2 wcet N1=40 N2=60 alpha=5 mu=5 chi=5\\n"
    "process P3 wcet N1=60 alpha=5 mu=5 chi=5\\n"
    "message m1 P1 P2\\nmessage m2 P1 P3";

struct DisarmGuard {
  ~DisarmGuard() { fi::disarm(); }
};

std::vector<std::string> run_server(const ServerOptions& options,
                                    const std::string& input,
                                    ServerStats* stats_out = nullptr) {
  JobServer server(options);
  std::istringstream in(input);
  std::ostringstream out;
  const ServerStats stats = server.serve(in, out);
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) lines.push_back(line);
  return lines;
}

std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  std::size_t end = line.find_first_of(",}", start);
  if (line[start] == '"') end = line.find('"', start + 1) + 1;
  return line.substr(start, end - start);
}

/// The `"result": {...}` object of a response line (empty when absent).
std::string result_of(const std::string& line) {
  const std::size_t at = line.find("\"result\": ");
  if (at == std::string::npos) return {};
  // The payload runs to the response's closing brace.
  return line.substr(at + 10, line.size() - (at + 10) - 1);
}

TEST(JobServer, AnswersInlineFileAndMalformedRequestsInOrder) {
  ServerOptions options;
  options.default_iterations = 20;
  std::ostringstream in;
  in << "# comment line\n"
     << "\n"
     << "job id=good seed=3 tables=0 text=" << kInlineProblem << "\n"
     << "job id=nofile file=/nonexistent/problem.ftes\n"
     << "job id=bad text=utter garbage\n"
     << "job id=keyless wibble\n"
     << "wibble\n"
     << "quit\n"
     << "job id=after-quit text=" << kInlineProblem << "\n";
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);

  ASSERT_EQ(lines.size(), 6u);  // 5 responses + the final stats line
  EXPECT_EQ(field(lines[0], "id"), "\"good\"");
  EXPECT_EQ(field(lines[0], "status"), "\"ok\"");
  EXPECT_NE(result_of(lines[0]).find("\"schedulable\": true"),
            std::string::npos);
  EXPECT_EQ(field(lines[1], "id"), "\"nofile\"");
  EXPECT_EQ(field(lines[1], "status"), "\"parse_error\"");
  EXPECT_EQ(field(lines[2], "status"), "\"parse_error\"");
  EXPECT_EQ(field(lines[3], "status"), "\"parse_error\"");
  EXPECT_EQ(field(lines[4], "status"), "\"parse_error\"");
  EXPECT_EQ(field(lines[5], "status"), "\"stats\"");

  EXPECT_EQ(stats.jobs, 5);  // after-quit is never read
  EXPECT_EQ(stats.responses, 5);
  EXPECT_EQ(stats.ok, 1);
  EXPECT_EQ(stats.parse_error, 4);
}

TEST(JobServer, RepeatSubmissionsAreCacheHitsAndBitIdentical) {
  for (const char* seed : {"1", "7", "42"}) {
    std::ostringstream in;
    in << "job id=fresh seed=" << seed << " iterations=40 text="
       << kInlineProblem << "\n"
       << "job id=dup seed=" << seed << " iterations=40 text="
       << kInlineProblem << "\n";

    ServerOptions serial;
    serial.threads = 1;
    ServerStats serial_stats;
    const std::vector<std::string> a =
        run_server(serial, in.str(), &serial_stats);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(field(a[0], "cached"), "false") << "seed " << seed;
    EXPECT_EQ(field(a[1], "cached"), "true") << "seed " << seed;
    const std::string fresh = result_of(a[0]);
    ASSERT_FALSE(fresh.empty());
    // The cached copy replays the fresh payload byte for byte.
    EXPECT_EQ(fresh, result_of(a[1])) << "seed " << seed;
    EXPECT_EQ(serial_stats.cache_hits, 1);
    EXPECT_EQ(serial_stats.cache_misses, 1);

    // A fresh run on a different thread count produces the same bytes:
    // the payload zeroes wall-clock fields and everything else is
    // deterministic, so the cache can serve any client.
    ServerOptions parallel;
    parallel.threads = 4;
    const std::vector<std::string> b = run_server(parallel, in.str());
    ASSERT_EQ(b.size(), 3u);
    EXPECT_EQ(fresh, result_of(b[0])) << "seed " << seed;
  }
}

TEST(JobServer, TablesAndSeedChangesAreDistinctCacheEntries) {
  std::ostringstream in;
  in << "job id=a seed=1 tables=0 text=" << kInlineProblem << "\n"
     << "job id=b seed=2 tables=0 text=" << kInlineProblem << "\n"
     << "job id=c seed=1 tables=1 text=" << kInlineProblem << "\n";
  ServerOptions options;
  options.default_iterations = 20;
  ServerStats stats;
  (void)run_server(options, in.str(), &stats);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_misses, 3);
}

TEST(JobServer, TinyCacheBudgetEvictsObservably) {
  // One tables=0 payload is ~2.5 KB, so a 3 KB budget holds exactly one
  // entry: A, B, A again is insert, evict+insert, evict+insert.
  std::ostringstream in;
  in << "job id=a seed=1 tables=0 text=" << kInlineProblem << "\n"
     << "job id=b seed=2 tables=0 text=" << kInlineProblem << "\n"
     << "job id=a2 seed=1 tables=0 text=" << kInlineProblem << "\n";
  ServerOptions options;
  options.default_iterations = 20;
  options.cache_bytes = 3000;
  ServerStats stats;
  (void)run_server(options, in.str(), &stats);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_misses, 3);
  EXPECT_EQ(stats.cache_evictions, 2);
}

TEST(JobServer, ZeroBudgetDegradesThenReportsTimedOut) {
  std::ostringstream in;
  in << "job id=z tables=1 total-budget-ms=0 text=" << kInlineProblem << "\n";
  ServerOptions options;
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);
  ASSERT_EQ(lines.size(), 2u);
  // Rung 1 (full tables) and rung 2 (analytic-only) both blow the 0 ms
  // budget; the response is a typed timeout, not a dead server.
  EXPECT_EQ(field(lines[0], "status"), "\"timed_out\"");
  EXPECT_EQ(field(lines[0], "degraded"), "true");
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.degraded, 1);
  EXPECT_EQ(stats.ok, 0);
}

TEST(JobServer, TransientFaultsAreRetriedWithSurfacedAttempts) {
  const DisarmGuard guard;
  fi::configure({fi::parse_rule("serve.job:throw:limit=2")});
  std::ostringstream in;
  in << "job id=flaky tables=0 text=" << kInlineProblem << "\n";
  ServerOptions options;
  options.default_iterations = 20;
  options.max_retries = 2;
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(field(lines[0], "status"), "\"ok\"");
  EXPECT_EQ(field(lines[0], "attempts"), "3");
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.ok, 1);
}

TEST(JobServer, PersistentFaultExhaustsRetriesIntoInternal) {
  const DisarmGuard guard;
  fi::configure({fi::parse_rule("serve.job:throw")});  // fires every attempt
  std::ostringstream in;
  in << "job id=doomed tables=0 text=" << kInlineProblem << "\n"
     << "job id=also-doomed tables=0 text=" << kInlineProblem << "\n";
  ServerOptions options;
  options.max_retries = 2;
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);
  ASSERT_EQ(lines.size(), 3u);  // the server survives to answer both + stats
  EXPECT_EQ(field(lines[0], "status"), "\"internal\"");
  EXPECT_EQ(field(lines[0], "attempts"), "3");
  EXPECT_EQ(field(lines[1], "status"), "\"internal\"");
  EXPECT_EQ(stats.internal, 2);
  EXPECT_EQ(stats.retries, 4);
}

TEST(JobServer, AllocationFailureDegradesBeforeGivingUp) {
  const DisarmGuard guard;
  // The first attempt's first pipeline stage dies of bad_alloc; the
  // degraded retry runs clean and succeeds analytic-only.
  fi::configure({fi::parse_rule("pipeline.stage:bad-alloc:limit=1")});
  std::ostringstream in;
  in << "job id=tight tables=1 text=" << kInlineProblem << "\n";
  ServerOptions options;
  options.default_iterations = 20;
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(field(lines[0], "status"), "\"ok\"");
  EXPECT_EQ(field(lines[0], "degraded"), "true");
  EXPECT_EQ(field(lines[0], "attempts"), "2");
  EXPECT_NE(result_of(lines[0]).find("\"tables\": false"), std::string::npos);
  EXPECT_EQ(stats.degraded, 1);
  // Degraded results must not poison the cache with a lesser answer.
  EXPECT_EQ(stats.cache_hits, 0);
}

TEST(JobServer, InjectedCancellationIsTypedNotRetried) {
  const DisarmGuard guard;
  fi::configure({fi::parse_rule("serve.job:cancel:limit=1")});
  std::ostringstream in;
  in << "job id=x tables=0 text=" << kInlineProblem << "\n";
  ServerOptions options;
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(field(lines[0], "status"), "\"cancelled\"");
  EXPECT_EQ(field(lines[0], "attempts"), "1");
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.retries, 0);
}

// ------------------------------------------------------------------ soak --

// The acceptance soak: 520 mixed jobs with all three fault kinds armed on
// a deterministic schedule.  Every request gets exactly one well-formed
// response, every taxonomy class and fault kind is exercised, and the
// duplicate jobs that complete are answered bit-identically.
//
// Fault schedules are matched per job (fi::JobScope): a hit's schedule
// key is the job's stream index plus its own per-site hit count, and
// `limit` is charged per job.  Only a handful of jobs in this stream
// ever run the pipeline (the rest are cache hits, parse failures or
// zero-budget jobs that cancel before the stage seam), so the
// pipeline.stage rule uses every=3:limit=1 -- each pipeline-running job
// takes exactly one bad_alloc somewhere in its three stage hits and
// then completes on retry.
TEST(JobServerSoak, FiveHundredFaultInjectedJobsNeverKillTheServer) {
  const DisarmGuard guard;
  fi::configure({
      fi::parse_rule("parse:throw:every=11"),
      fi::parse_rule("pipeline.stage:bad-alloc:every=3:limit=1"),
      fi::parse_rule("serve.job:cancel:every=17"),
  });

  constexpr int kJobs = 520;
  std::ostringstream in;
  for (int i = 0; i < kJobs; ++i) {
    switch (i % 5) {
      case 0:  // a rotating trio of valid jobs: heavy duplication
        in << "job id=ok" << i << " seed=" << (i / 5) % 3
           << " iterations=20 tables=0 text=" << kInlineProblem << "\n";
        break;
      case 1:  // exact duplicate of the seed=1 job: cache-hit fodder
        in << "job id=dup" << i
           << " seed=1 iterations=20 tables=0 text=" << kInlineProblem
           << "\n";
        break;
      case 2:  // problem text that cannot parse
        in << "job id=garbage" << i << " text=k k k not a problem\n";
        break;
      case 3:  // request line that cannot parse (no file=/text=)
        in << "job id=malformed" << i << " seed=1\n";
        break;
      default:  // 0 ms budget: the degradation ladder under pressure
        in << "job id=budget" << i << " seed=" << 1000 + i
           << " tables=1 total-budget-ms=0 text=" << kInlineProblem << "\n";
        break;
    }
  }

  ServerOptions options;
  options.threads = 1;
  options.max_retries = 2;
  ServerStats stats;
  const std::vector<std::string> lines = run_server(options, in.str(), &stats);

  // Exactly one response per request, plus the final stats line.
  EXPECT_EQ(stats.jobs, kJobs);
  EXPECT_EQ(stats.responses, kJobs);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kJobs) + 1);
  for (int i = 0; i < kJobs; ++i) {
    const std::string& line = lines[static_cast<std::size_t>(i)];
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    const std::string status = field(line, "status");
    EXPECT_TRUE(status == "\"ok\"" || status == "\"parse_error\"" ||
                status == "\"timed_out\"" || status == "\"cancelled\"" ||
                status == "\"resource_exhausted\"" || status == "\"internal\"")
        << line;
  }
  EXPECT_EQ(field(lines.back(), "status"), "\"stats\"");
  EXPECT_EQ(stats.ok + stats.parse_error + stats.timed_out + stats.cancelled +
                stats.resource_exhausted + stats.internal,
            kJobs);

  // Every taxonomy class the stream can force deterministically showed up.
  EXPECT_GT(stats.ok, 0);
  EXPECT_GT(stats.parse_error, 0);
  EXPECT_GT(stats.timed_out, 0);
  EXPECT_GT(stats.cancelled, 0);
  EXPECT_GT(stats.retries, 0);
  EXPECT_GT(stats.cache_hits, 0);

  // No armed fault class went unexercised.
  const auto fired = fi::stats();
  ASSERT_EQ(fired.count("parse"), 1u);
  ASSERT_EQ(fired.count("pipeline.stage"), 1u);
  ASSERT_EQ(fired.count("serve.job"), 1u);
  EXPECT_GT(fired.at("parse").fired, 0u);
  EXPECT_GT(fired.at("pipeline.stage").fired, 0u);
  EXPECT_GT(fired.at("serve.job").fired, 0u);

  // Duplicate jobs that completed agree byte for byte.
  std::string reference;
  int completed_dups = 0;
  for (int i = 1; i < kJobs; i += 5) {
    const std::string& line = lines[static_cast<std::size_t>(i)];
    if (field(line, "status") != "\"ok\"") continue;
    ++completed_dups;
    const std::string payload = result_of(line);
    ASSERT_FALSE(payload.empty()) << line;
    if (reference.empty()) {
      reference = payload;
    } else {
      EXPECT_EQ(payload, reference) << "line " << i;
    }
  }
  EXPECT_GT(completed_dups, 1);
}

}  // namespace
}  // namespace ftes::serve
