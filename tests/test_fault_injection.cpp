// Tests of the deterministic fault-injection seam (util/fault_injection.h):
// rule parsing, the per-site firing schedule, limits/offsets, the three
// fault kinds, and the hit/fired counters the server's soak test asserts.
#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>
#include <string>

#include "util/cancellation.h"

namespace ftes::fi {
namespace {

#ifdef FTES_FI_DISABLED
// With the seam compiled out, the only contract left is that the macro is
// a well-formed no-op expression.
TEST(FaultInjection, DisabledSeamCompilesToNoOp) {
  FTES_FAULT_POINT("parse");
  SUCCEED();
}
#else

/// Every test leaves the process-global registry disarmed, whatever path
/// it exits through (ASSERT failures included).
struct DisarmGuard {
  ~DisarmGuard() { disarm(); }
};

TEST(FaultRuleParse, AcceptsFullAndMinimalSpecs) {
  const FaultRule minimal = parse_rule("parse:throw");
  EXPECT_EQ(minimal.site, "parse");
  EXPECT_EQ(minimal.kind, FaultKind::kThrow);
  EXPECT_EQ(minimal.every, 1u);
  EXPECT_EQ(minimal.offset, 0u);
  EXPECT_EQ(minimal.limit, 0u);

  const FaultRule full = parse_rule("pool.chunk:bad-alloc:every=7:offset=3:limit=2");
  EXPECT_EQ(full.site, "pool.chunk");
  EXPECT_EQ(full.kind, FaultKind::kBadAlloc);
  EXPECT_EQ(full.every, 7u);
  EXPECT_EQ(full.offset, 3u);
  EXPECT_EQ(full.limit, 2u);

  EXPECT_EQ(parse_rule("serve.job:bad_alloc").kind, FaultKind::kBadAlloc);
  EXPECT_EQ(parse_rule("serve.job:cancel").kind, FaultKind::kCancel);
}

TEST(FaultRuleParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_rule(""), std::invalid_argument);
  EXPECT_THROW((void)parse_rule("parse"), std::invalid_argument);
  EXPECT_THROW((void)parse_rule(":throw"), std::invalid_argument);
  EXPECT_THROW((void)parse_rule("parse:explode"), std::invalid_argument);
  EXPECT_THROW((void)parse_rule("parse:throw:every=0"), std::invalid_argument);
  EXPECT_THROW((void)parse_rule("parse:throw:every=x"), std::invalid_argument);
  EXPECT_THROW((void)parse_rule("parse:throw:every"), std::invalid_argument);
  EXPECT_THROW((void)parse_rule("parse:throw:bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_rule("parse:throw:every=-1"), std::invalid_argument);
}

TEST(FaultInjection, DisarmedSeamIsInert) {
  const DisarmGuard guard;
  disarm();
  EXPECT_FALSE(armed());
  for (int i = 0; i < 100; ++i) FTES_FAULT_POINT("parse");
  EXPECT_TRUE(stats().empty());
}

TEST(FaultInjection, FiresOnTheDeterministicSchedule) {
  const DisarmGuard guard;
  // Hit numbers are 0-based: every=3 offset=0 fires on hits 0, 3, 6, 9.
  configure({parse_rule("site.a:throw:every=3")});
  ASSERT_TRUE(armed());
  int fired = 0;
  std::string fired_at;
  for (int i = 0; i < 10; ++i) {
    try {
      FTES_FAULT_POINT("site.a");
    } catch (const InjectedFault& e) {
      ++fired;
      fired_at += std::to_string(i) + ",";
      EXPECT_NE(std::string(e.what()).find("site.a"), std::string::npos);
    }
  }
  EXPECT_EQ(fired_at, "0,3,6,9,");
  EXPECT_EQ(fired, 4);

  const auto st = stats();
  ASSERT_EQ(st.count("site.a"), 1u);
  EXPECT_EQ(st.at("site.a").hits, 10u);
  EXPECT_EQ(st.at("site.a").fired, 4u);
}

TEST(FaultInjection, OffsetAndLimitShapeTheSchedule) {
  const DisarmGuard guard;
  configure({parse_rule("site.b:throw:every=4:offset=1:limit=2")});
  std::string fired_at;
  for (int i = 0; i < 16; ++i) {
    try {
      FTES_FAULT_POINT("site.b");
    } catch (const InjectedFault&) {
      fired_at += std::to_string(i) + ",";
    }
  }
  // Would fire at 1, 5, 9, 13 -- but limit=2 stops after two.
  EXPECT_EQ(fired_at, "1,5,");
  EXPECT_EQ(stats().at("site.b").fired, 2u);
}

TEST(FaultInjection, OtherSitesAreUntouched) {
  const DisarmGuard guard;
  configure({parse_rule("site.c:throw")});
  for (int i = 0; i < 5; ++i) FTES_FAULT_POINT("site.other");
  EXPECT_THROW(FTES_FAULT_POINT("site.c"), InjectedFault);
  const auto st = stats();
  EXPECT_EQ(st.at("site.other").fired, 0u);
  EXPECT_EQ(st.at("site.other").hits, 5u);
  EXPECT_EQ(st.at("site.c").fired, 1u);
}

TEST(FaultInjection, EachKindThrowsItsExceptionType) {
  const DisarmGuard guard;
  configure({parse_rule("k.throw:throw"), parse_rule("k.alloc:bad-alloc"),
             parse_rule("k.cancel:cancel")});
  EXPECT_THROW(FTES_FAULT_POINT("k.throw"), InjectedFault);
  EXPECT_THROW(FTES_FAULT_POINT("k.alloc"), std::bad_alloc);
  EXPECT_THROW(FTES_FAULT_POINT("k.cancel"), CancelledError);
  // InjectedFault is a runtime_error so existing std::exception boundaries
  // (batch tasks, serve jobs) classify it without special cases.
  EXPECT_THROW(FTES_FAULT_POINT("k.throw"), std::runtime_error);
}

TEST(FaultInjection, ReconfigureResetsCountersAndSchedules) {
  const DisarmGuard guard;
  configure({parse_rule("site.d:throw:limit=1")});
  EXPECT_THROW(FTES_FAULT_POINT("site.d"), InjectedFault);
  FTES_FAULT_POINT("site.d");  // limit exhausted: no fire
  EXPECT_EQ(stats().at("site.d").hits, 2u);

  configure({parse_rule("site.d:throw:limit=1")});
  EXPECT_TRUE(stats().empty());  // fresh registry
  EXPECT_THROW(FTES_FAULT_POINT("site.d"), InjectedFault);  // limit reset
  disarm();
  EXPECT_FALSE(armed());
}

#endif  // FTES_FI_DISABLED

}  // namespace
}  // namespace ftes::fi
