// R4 fixture: floating point in integer-scaled result code.
namespace fixture {

struct Result {
  double utility = 0.0;
};

}  // namespace fixture
