// R4 fixture: integer-scaled result code (and a justified exception).
namespace fixture {

struct Result {
  long long utility_scaled = 0;  ///< fixed-point, kFuzzScaleOne units
  // lint: float-ok -- wall-clock metadata for reports, never a result
  double seconds = 0.0;
};

}  // namespace fixture
