// R1 fixture: iterating an unordered container without an annotation.
#include <unordered_map>

namespace fixture {

struct Inventory {
  std::unordered_map<int, long> stock;
};

long total(const Inventory& inv) {
  long sum = 0;
  for (const auto& [sku, count] : inv.stock) sum += count;
  return sum;
}

}  // namespace fixture
