// R2 fixture: wall-clock and entropy reads outside the allowlist.
#include <chrono>
#include <cstdlib>

namespace fixture {

long stamp() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count() + std::rand();
}

}  // namespace fixture
