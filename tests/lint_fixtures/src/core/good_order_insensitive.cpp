// R1 fixture: the same iteration, proven order-insensitive.
#include <unordered_map>

namespace fixture {

struct Inventory {
  std::unordered_map<int, long> stock;
};

long total(const Inventory& inv) {
  long sum = 0;
  // lint: order-insensitive -- integer sum over values is commutative
  for (const auto& [sku, count] : inv.stock) sum += count;
  return sum;
}

}  // namespace fixture
