// R6 fixture: the same job boundary, exhaustively caught.
#include <exception>

namespace fixture {

int risky();

int run_job() {
  try {
    return risky();
  } catch (const std::exception&) {
    return -1;
  } catch (...) {
    return -2;
  }
}

}  // namespace fixture
