// R6 fixture: a job-boundary catch chain that lets non-standard
// exceptions escape and kill the server.
#include <exception>

namespace fixture {

int risky();

int run_job() {
  try {
    return risky();
  } catch (const std::exception&) {
    return -1;
  }
}

}  // namespace fixture
