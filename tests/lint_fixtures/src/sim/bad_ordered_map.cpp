// R5 fixture: a node-based ordered container on the eval hot path.
#include <map>

namespace fixture {

struct Cache {
  std::map<int, long> by_key;
};

}  // namespace fixture
