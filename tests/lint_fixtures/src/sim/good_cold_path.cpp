// R5 fixture: the same container, proven off the hot path.
#include <map>

namespace fixture {

struct Report {
  // lint: cold-path -- built once per report, never per candidate move
  std::map<int, long> by_key;
};

}  // namespace fixture
