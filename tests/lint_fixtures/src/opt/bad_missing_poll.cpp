// R3 fixture: a parallel_for chunk body that never polls cancellation.
#include <cstddef>

namespace fixture {

template <class Body>
void parallel_for(std::size_t n, int threads, Body body);

void evaluate(long* out, std::size_t n) {
  parallel_for(n, 4, [&](std::size_t i) {
    out[i] = static_cast<long>(i) * 3;
  });
}

}  // namespace fixture
