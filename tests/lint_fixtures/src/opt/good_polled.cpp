// R3 fixture: the same chunk body, with a cancellation point per chunk.
#include <cstddef>

namespace fixture {

struct Token {
  bool poll() const { return false; }
};

template <class Body>
void parallel_for(std::size_t n, int threads, Body body);

void evaluate(long* out, std::size_t n, const Token& cancel) {
  parallel_for(n, 4, [&](std::size_t i) {
    if (cancel.poll()) return;
    out[i] = static_cast<long>(i) * 3;
  });
}

}  // namespace fixture
