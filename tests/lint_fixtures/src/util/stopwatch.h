// R2 fixture: the allowlisted path src/util/stopwatch.h may read the clock.
#pragma once

#include <chrono>

namespace fixture {

inline long long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
