// Tests of the generic digraph substrate.
#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace ftes {
namespace {

Digraph diamond() {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Digraph, BasicAdjacency) {
  const Digraph g = diamond();
  EXPECT_EQ(g.vertex_count(), 4);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
}

TEST(Digraph, RejectsSelfLoopAndBadVertices) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW((void)g.successors(9), std::out_of_range);
}

TEST(Digraph, TopologicalOrderRespectsEdges) {
  const Digraph g = diamond();
  const std::vector<int> order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Digraph, CycleDetection) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(2, 0);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW((void)g.topological_order(), std::invalid_argument);
}

TEST(Digraph, Reachability) {
  const Digraph g = diamond();
  const std::vector<bool> r = g.reachable_from(1);
  EXPECT_FALSE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_FALSE(r[2]);
  EXPECT_TRUE(r[3]);
}

TEST(Digraph, LongestPathAndCriticalPath) {
  const Digraph g = diamond();
  // Weights: 0->5, 1->10, 2->1, 3->2.
  auto w = [](int v) { return std::vector<Time>{5, 10, 1, 2}[static_cast<std::size_t>(v)]; };
  EXPECT_EQ(g.longest_path(w), 17);  // 0 -> 1 -> 3
  const std::vector<Time> dist = g.longest_distance_to(w);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 5);
  EXPECT_EQ(dist[3], 15);
  const std::vector<Time> crit = g.critical_path_from(w);
  EXPECT_EQ(crit[3], 2);
  EXPECT_EQ(crit[1], 12);
  EXPECT_EQ(crit[0], 17);
}

TEST(Digraph, DotExportContainsVerticesAndEdges) {
  const Digraph g = diamond();
  const std::string dot = g.to_dot([](int v) { return "V" + std::to_string(v); });
  EXPECT_NE(dot.find("V0"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Digraph, AddVertexGrowsGraph) {
  Digraph g(1);
  const int v = g.add_vertex();
  EXPECT_EQ(v, 1);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.is_acyclic());
}

}  // namespace
}  // namespace ftes
