// Tests of the ftes-lint static-analysis pass (src/lint) against the
// fixture tree in tests/lint_fixtures: one known-bad and one known-good
// snippet per rule R1-R6, plus unit tests of the lexer, baseline and
// --fix-annotations machinery.
#include "lint/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/lexer.h"
#include "lint/rules.h"

namespace ftes::lint {
namespace {

constexpr const char* kFixtureRoot = FTES_SOURCE_DIR "/tests/lint_fixtures";

LintConfig fixture_config() {
  LintConfig config;  // project defaults; the fixture tree mirrors src/ layout
  return config;
}

std::string loc(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ":" + d.rule;
}

// ---------------------------------------------------------------- lexer --

TEST(LintLexer, StripsCommentsStringsAndPreprocessor) {
  const LexedFile f = lex(
      "#include <cstdlib>\n"
      "// std::rand in a comment\n"
      "const char* s = \"std::rand()\";\n"
      "int x = 1; /* rand */ int y = 2;\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "rand") << "line " << t.line;
    EXPECT_NE(t.text, "include") << "line " << t.line;
  }
  // The string literal's contents are gone but the declaration survives.
  auto has = [&](const std::string& text) {
    return std::any_of(f.tokens.begin(), f.tokens.end(),
                       [&](const Token& t) { return t.text == text; });
  };
  EXPECT_TRUE(has("s"));
  EXPECT_TRUE(has("x"));
  EXPECT_TRUE(has("y"));
}

TEST(LintLexer, RawStringsDoNotLeakTokens) {
  const LexedFile f = lex(
      "const char* r = R\"doc(std::rand() \" ignored)doc\";\n"
      "int after = 3;\n");
  for (const Token& t : f.tokens) EXPECT_NE(t.text, "rand");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens.back().text, ";");
  EXPECT_EQ(f.tokens.back().line, 2);
}

TEST(LintLexer, FusesScopeAndArrowOnly) {
  const LexedFile f = lex("a::b->c < d > e;\n");
  std::vector<std::string> puncts;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::Punct) puncts.push_back(t.text);
  EXPECT_EQ(puncts, (std::vector<std::string>{"::", "->", "<", ">", ";"}));
}

TEST(LintLexer, TrailingAnnotationGovernsItsOwnLine) {
  const LexedFile f =
      lex("std::map<int, int> m;  // lint: cold-path -- report-only\n");
  ASSERT_EQ(f.annotations.size(), 1u);
  EXPECT_EQ(f.annotations[0].line, 1);
  EXPECT_EQ(f.annotations[0].target_line, 1);
  EXPECT_EQ(f.annotations[0].tags, (std::vector<std::string>{"cold-path"}));
  EXPECT_TRUE(f.annotations[0].justified);
  EXPECT_EQ(f.annotations[0].why, "report-only");
}

TEST(LintLexer, FullLineAnnotationGovernsNextCodeLine) {
  const LexedFile f = lex(
      "// lint: order-insensitive, float-ok -- sum is commutative\n"
      "// an intervening plain comment is fine\n"
      "for (auto& kv : m) total += kv.second;\n");
  ASSERT_EQ(f.annotations.size(), 1u);
  EXPECT_EQ(f.annotations[0].line, 1);
  EXPECT_EQ(f.annotations[0].target_line, 3);
  EXPECT_EQ(f.annotations[0].tags,
            (std::vector<std::string>{"order-insensitive", "float-ok"}));
}

TEST(LintLexer, UnjustifiedAnnotationParsesButIsMarked) {
  const LexedFile f = lex("double d = 0;  // lint: float-ok\n");
  ASSERT_EQ(f.annotations.size(), 1u);
  EXPECT_FALSE(f.annotations[0].justified);
  EXPECT_TRUE(f.annotations[0].why.empty());
}

// --------------------------------------------------- fixture tree, R1-R6 --

TEST(LintFixtures, BadFixturesProduceExactDiagnostics) {
  const LintConfig config = fixture_config();
  const std::vector<SourceFile> files = load_tree(kFixtureRoot, config);
  ASSERT_EQ(files.size(), 12u) << "fixture tree changed shape";
  const LintResult result = run_lint(files, config);

  std::vector<std::string> got;
  for (const Diagnostic& d : result.diagnostics) got.push_back(loc(d));
  const std::vector<std::string> want = {
      "src/core/bad_nondeterminism.cpp:8:nondeterminism",
      "src/core/bad_nondeterminism.cpp:9:nondeterminism",
      "src/core/bad_unordered_iter.cpp:12:unordered-iter",
      "src/opt/bad_missing_poll.cpp:10:missing-cancel-poll",
      "src/sched/bad_float.cpp:5:float-in-result-path",
      "src/serve/bad_narrow_catch.cpp:12:missing-catch-all",
      "src/sim/bad_ordered_map.cpp:7:ordered-container-hot-path",
  };
  EXPECT_EQ(got, want);
  EXPECT_EQ(result.files_scanned, 12);
}

TEST(LintFixtures, GoodFixturesAreSuppressedByAnnotations) {
  const LintConfig config = fixture_config();
  const LintResult result = run_lint(load_tree(kFixtureRoot, config), config);
  // good_order_insensitive (R1) + good_integer_time (R4) + good_cold_path
  // (R5); good_polled passes by actually polling, good_exhaustive_catch by
  // its final catch (...), stopwatch.h by allowlist.
  EXPECT_EQ(result.suppressed, 3);
  for (const Diagnostic& d : result.diagnostics)
    EXPECT_EQ(d.file.find("good_"), std::string::npos) << loc(d);
}

TEST(LintFixtures, AllowlistIsExactPathNotPrefix) {
  LintConfig config = fixture_config();
  config.nondet_allowlist.clear();  // revoke stopwatch.h's clock license
  const LintResult result = run_lint(load_tree(kFixtureRoot, config), config);
  const bool flagged = std::any_of(
      result.diagnostics.begin(), result.diagnostics.end(),
      [](const Diagnostic& d) {
        return d.file == "src/util/stopwatch.h" && d.rule == kRuleNondeterminism;
      });
  EXPECT_TRUE(flagged);
}

TEST(LintFixtures, DiagnosticFormatIsFileLineRuleMessage) {
  const LintConfig config = fixture_config();
  const LintResult result = run_lint(load_tree(kFixtureRoot, config), config);
  ASSERT_FALSE(result.diagnostics.empty());
  const Diagnostic& d = result.diagnostics.front();
  const std::string line = format(d);
  EXPECT_EQ(line.rfind(d.file + ":" + std::to_string(d.line) + ": " + d.rule +
                           ": ",
                       0),
            0)
      << line;
  EXPECT_FALSE(d.message.empty());
}

// ------------------------------------------------------ inline rule cases --

LintConfig inline_config() {
  LintConfig config;
  config.scan_roots = {"src"};
  return config;
}

TEST(LintRules, RangeForOverUnorderedMemberDeclaredElsewhere) {
  // The unordered member is declared in one file, iterated in another --
  // the cross-file case that motivated the tree-wide index.
  const std::vector<SourceFile> files = {
      {"src/app/decl.h",
       "#include <unordered_map>\n"
       "struct P { std::unordered_map<int, long> wcet; };\n"},
      {"src/opt/use.cpp",
       "#include \"decl.h\"\n"
       "long f(const P& p) {\n"
       "  long s = 0;\n"
       "  for (const auto& kv : p.wcet) s += kv.second;\n"
       "  return s;\n"
       "}\n"},
  };
  const LintResult result = run_lint(files, inline_config());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(loc(result.diagnostics[0]), "src/opt/use.cpp:4:unordered-iter");
}

TEST(LintRules, ExplicitBeginWalkIsAlsoFlagged) {
  const std::vector<SourceFile> files = {
      {"src/core/walk.cpp",
       "#include <unordered_set>\n"
       "std::unordered_set<int> seen;\n"
       "int first() { return *seen.begin(); }\n"},
  };
  const LintResult result = run_lint(files, inline_config());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(loc(result.diagnostics[0]), "src/core/walk.cpp:3:unordered-iter");
}

TEST(LintRules, UnknownTagIsAlwaysAnError) {
  const std::vector<SourceFile> files = {
      {"src/core/odd.cpp", "int x = 1;  // lint: no-such-tag -- whatever\n"},
  };
  const LintResult result = run_lint(files, inline_config());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, kRuleUnknownAnnotation);
}

TEST(LintRules, RequireJustificationsFlagsBareAndTodoSuppressions) {
  LintConfig config = inline_config();
  config.require_justifications = true;
  const std::vector<SourceFile> files = {
      {"src/sim/a.cpp",
       "#include <map>\n"
       "// lint: cold-path\n"
       "std::map<int, int> bare;\n"},
      {"src/sim/b.cpp",
       "#include <map>\n"
       "// lint: cold-path -- TODO(lint): justify this suppression\n"
       "std::map<int, int> todo;\n"},
      {"src/sim/c.cpp",
       "#include <map>\n"
       "// lint: cold-path -- built once at shutdown\n"
       "std::map<int, int> justified;\n"},
  };
  const LintResult result = run_lint(files, config);
  std::vector<std::string> got;
  for (const Diagnostic& d : result.diagnostics) got.push_back(loc(d));
  // a.cpp and b.cpp each: the suppression works (no hot-path diag) but the
  // annotation itself is flagged; c.cpp is fully clean.
  const std::vector<std::string> want = {
      "src/sim/a.cpp:2:annotation-needs-justification",
      "src/sim/b.cpp:2:annotation-needs-justification",
  };
  EXPECT_EQ(got, want);
  EXPECT_EQ(result.suppressed, 3);
}

TEST(LintRules, AnnotationOnWrongLineDoesNotSuppress) {
  const std::vector<SourceFile> files = {
      {"src/sim/far.cpp",
       "#include <map>\n"
       "// lint: cold-path -- too far away\n"
       "int unrelated = 0;\n"
       "std::map<int, int> m;\n"},
  };
  const LintResult result = run_lint(files, inline_config());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(loc(result.diagnostics[0]),
            "src/sim/far.cpp:4:ordered-container-hot-path");
  EXPECT_EQ(result.suppressed, 0);
}

TEST(LintRules, ServeScopeParallelForMustPoll) {
  // PR 8 put src/serve/ into cancel_scopes: the job server runs jobs on
  // the shared pool under per-job budgets, so its chunk bodies must poll.
  const std::vector<SourceFile> files = {
      {"src/serve/fanout.cpp",
       "void fan(long* out, unsigned long n) {\n"
       "  parallel_for(pool, n, 4, [&](unsigned long i) {\n"
       "    out[i] = 1;\n"
       "  });\n"
       "}\n"},
  };
  const LintResult result = run_lint(files, inline_config());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(loc(result.diagnostics[0]),
            "src/serve/fanout.cpp:2:missing-cancel-poll");
}

TEST(LintRules, CatchAllOnlyRequiredInServeScope) {
  // The identical narrow catch is fine outside the job boundary: R6 is
  // scoped to src/serve/, where an escaping exception kills the server.
  const std::string text =
      "int risky();\n"
      "int f() {\n"
      "  try {\n"
      "    return risky();\n"
      "  } catch (int e) {\n"
      "    return e;\n"
      "  }\n"
      "}\n";
  const std::vector<SourceFile> outside = {{"src/core/narrow.cpp", text}};
  EXPECT_TRUE(run_lint(outside, inline_config()).diagnostics.empty());

  const std::vector<SourceFile> inside = {{"src/serve/narrow.cpp", text}};
  const LintResult result = run_lint(inside, inline_config());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(loc(result.diagnostics[0]),
            "src/serve/narrow.cpp:5:missing-catch-all");
}

TEST(LintRules, CatchAllAnywhereInTheChainSatisfiesR6) {
  const std::vector<SourceFile> files = {
      {"src/serve/chain.cpp",
       "int risky();\n"
       "int f() {\n"
       "  try {\n"
       "    return risky();\n"
       "  } catch (int e) {\n"
       "    return e;\n"
       "  } catch (...) {\n"
       "    return -1;\n"
       "  }\n"
       "}\n"},
      {"src/serve/bare_try.cpp",
       // A catch-all-only chain is the minimal compliant form.
       "int g() {\n"
       "  try {\n"
       "    return 1;\n"
       "  } catch (...) {\n"
       "    return 0;\n"
       "  }\n"
       "}\n"},
  };
  EXPECT_TRUE(run_lint(files, inline_config()).diagnostics.empty());
}

TEST(LintRules, CatchOkAnnotationSuppressesR6) {
  const std::vector<SourceFile> files = {
      {"src/serve/annotated.cpp",
       "int risky();\n"
       "int f() {\n"
       "  try {\n"
       "    return risky();\n"
       "  // lint: catch-ok -- rethrown by design, outer boundary catches\n"
       "  } catch (int e) {\n"
       "    return e;\n"
       "  }\n"
       "}\n"},
  };
  const LintResult result = run_lint(files, inline_config());
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed, 1);
}

// ---------------------------------------------------------------- baseline --

TEST(LintBaseline, RoundTripSwallowsExactlyTheRenderedFindings) {
  const LintConfig config = fixture_config();
  const LintResult result = run_lint(load_tree(kFixtureRoot, config), config);
  ASSERT_EQ(result.diagnostics.size(), 7u);

  const std::string rendered = render_baseline(result.diagnostics);
  const BaselineSplit split =
      apply_baseline(result.diagnostics, parse_baseline(rendered));
  EXPECT_TRUE(split.fresh.empty());
  EXPECT_EQ(split.grandfathered, 7);

  // Rendering is byte-stable: same findings, same bytes.
  EXPECT_EQ(rendered, render_baseline(result.diagnostics));
}

TEST(LintBaseline, KeysAreAnchoredToSourceTextNotLineNumbers) {
  const LintConfig config = fixture_config();
  const LintResult before = run_lint(load_tree(kFixtureRoot, config), config);
  const std::set<std::string> baseline =
      parse_baseline(render_baseline(before.diagnostics));

  // Simulate edits that shift every finding down two lines; the anchors --
  // and therefore the baseline keys -- are unchanged.
  std::vector<SourceFile> shifted = load_tree(kFixtureRoot, config);
  for (SourceFile& f : shifted) f.content = "\n\n" + f.content;
  const LintResult after = run_lint(shifted, config);
  ASSERT_EQ(after.diagnostics.size(), before.diagnostics.size());
  EXPECT_NE(after.diagnostics[0].line, before.diagnostics[0].line);

  const BaselineSplit split = apply_baseline(after.diagnostics, baseline);
  EXPECT_TRUE(split.fresh.empty());
  EXPECT_EQ(split.grandfathered, 7);
}

TEST(LintBaseline, CommentsAndBlanksInBaselineAreIgnored) {
  const std::set<std::string> keys =
      parse_baseline("# header\n\nsrc/a.cpp|r|int x;\n# trailer\n");
  EXPECT_EQ(keys, (std::set<std::string>{"src/a.cpp|r|int x;"}));
}

// ---------------------------------------------------------- fix-annotations --

TEST(LintFix, InsertsSuppressionsThatSilenceSuppressibleFindings) {
  LintConfig config = fixture_config();
  std::vector<SourceFile> files = load_tree(kFixtureRoot, config);
  const LintResult before = run_lint(files, config);
  ASSERT_EQ(before.diagnostics.size(), 7u);

  const int inserted = fix_annotations(&files, before.diagnostics);
  // Five of the seven findings are suppressible; the two nondeterminism
  // findings need a code fix and must NOT get a comment.
  EXPECT_EQ(inserted, 5);

  const LintResult after = run_lint(files, config);
  for (const Diagnostic& d : after.diagnostics)
    EXPECT_EQ(d.rule, kRuleNondeterminism) << loc(d);
  EXPECT_EQ(after.diagnostics.size(), 2u);

  // But the mechanical TODO justification does not survive the strict
  // lint_tree gate: a human still has to write the real why.
  config.require_justifications = true;
  const LintResult strict = run_lint(files, config);
  int todo_flags = 0;
  for (const Diagnostic& d : strict.diagnostics)
    if (d.rule == kRuleNeedsJustification) ++todo_flags;
  EXPECT_EQ(todo_flags, 5);
}

TEST(LintFix, InsertedCommentMatchesIndentation) {
  std::vector<SourceFile> files = {
      {"src/sim/indent.cpp",
       "#include <map>\n"
       "struct S {\n"
       "    std::map<int, int> deep;\n"
       "};\n"},
  };
  const LintResult before = run_lint(files, inline_config());
  ASSERT_EQ(before.diagnostics.size(), 1u);
  ASSERT_EQ(fix_annotations(&files, before.diagnostics), 1);
  EXPECT_NE(files[0].content.find("    // lint: cold-path -- TODO"),
            std::string::npos)
      << files[0].content;
}

// ------------------------------------------------------------------ rules --

TEST(LintRules, EveryRuleHasATableRowAndConsistentTag) {
  const std::vector<RuleInfo> table = rule_table();
  EXPECT_GE(table.size(), 5u);
  for (const RuleInfo& info : table) {
    EXPECT_FALSE(info.summary.empty()) << info.id;
    EXPECT_EQ(info.tag, suppression_tag(info.id)) << info.id;
  }
  EXPECT_EQ(suppression_tag(kRuleNondeterminism), "");  // allowlist-only
  EXPECT_EQ(suppression_tag(kRuleUnorderedIter), kTagOrderInsensitive);
}

}  // namespace
}  // namespace ftes::lint
