// Tests of the TDMA bus access optimization ([8]).
#include "opt/bus_opt.h"

#include <gtest/gtest.h>

#include "gen/taskgen.h"
#include "opt/policy_assignment.h"
#include "sched/wcsl.h"

namespace ftes {
namespace {

struct BusFixture {
  Application app;
  Architecture arch;
  PolicyAssignment pa;
  FaultModel fm{2};
};

BusFixture make_fixture(std::uint64_t seed) {
  TaskGenParams params;
  params.process_count = 15;
  params.node_count = 3;
  params.slot_length = 8;
  Rng rng(seed);
  BusFixture f{generate_application(params, rng),
               generate_architecture(params), PolicyAssignment{}, FaultModel{2}};
  f.pa = greedy_initial(f.app, f.arch, f.fm, PolicySpace::kReexecutionOnly, 1);
  return f;
}

TEST(BusOpt, NeverWorseThanInitialBus) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    BusFixture f = make_fixture(seed);
    BusOptOptions opts;
    opts.iterations = 60;
    opts.seed = seed;
    const BusOptResult r =
        optimize_bus_access(f.app, f.arch, f.pa, f.fm, opts);
    EXPECT_LE(r.wcsl_after, r.wcsl_before) << "seed " << seed;
  }
}

TEST(BusOpt, ResultBusIsConsistent) {
  BusFixture f = make_fixture(7);
  BusOptOptions opts;
  opts.iterations = 60;
  const BusOptResult r = optimize_bus_access(f.app, f.arch, f.pa, f.fm, opts);
  // Every node still owns at least one slot.
  for (NodeId n : f.arch.node_ids()) {
    bool owns = false;
    for (const TdmaSlot& s : r.bus.slots()) {
      if (s.owner == n) owns = true;
    }
    EXPECT_TRUE(owns) << "node " << n.get();
  }
  // Installing the tuned bus reproduces the reported WCSL.
  Architecture tuned = f.arch;
  tuned.set_bus(r.bus);
  EXPECT_EQ(evaluate_wcsl(f.app, tuned, f.pa, f.fm).makespan, r.wcsl_after);
}

TEST(BusOpt, SlotLengthsStayInBounds) {
  BusFixture f = make_fixture(9);
  BusOptOptions opts;
  opts.iterations = 80;
  opts.min_slot_length = 4;
  opts.max_slot_length = 16;
  const BusOptResult r = optimize_bus_access(f.app, f.arch, f.pa, f.fm, opts);
  for (const TdmaSlot& s : r.bus.slots()) {
    EXPECT_GE(s.length, 4);
    EXPECT_LE(s.length, 16);
  }
}

TEST(BusOpt, ZeroIterationsIsIdentity) {
  BusFixture f = make_fixture(11);
  BusOptOptions opts;
  opts.iterations = 0;
  const BusOptResult r = optimize_bus_access(f.app, f.arch, f.pa, f.fm, opts);
  EXPECT_EQ(r.wcsl_after, r.wcsl_before);
  EXPECT_EQ(r.bus.slots().size(), f.arch.bus().slots().size());
}

}  // namespace
}  // namespace ftes
