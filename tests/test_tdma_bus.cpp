// Tests of the TDMA/TTP bus model (Section 2).
#include "arch/tdma_bus.h"

#include <gtest/gtest.h>

#include "arch/architecture.h"

namespace ftes {
namespace {

TEST(TdmaBus, UniformRoundLayout) {
  const TdmaBus bus = TdmaBus::uniform(3, 10);
  EXPECT_EQ(bus.round_length(), 30);
  ASSERT_EQ(bus.slots().size(), 3u);
  EXPECT_EQ(bus.slot_offset(0), 0);
  EXPECT_EQ(bus.slot_offset(1), 10);
  EXPECT_EQ(bus.slot_offset(2), 20);
}

TEST(TdmaBus, RejectsDegenerateConfigs) {
  EXPECT_THROW((void)TdmaBus::uniform(0, 10), std::invalid_argument);
  EXPECT_THROW((void)TdmaBus::uniform(2, 0), std::invalid_argument);
  EXPECT_THROW((void)TdmaBus::from_slots({}), std::invalid_argument);
}

TEST(TdmaBus, NextSlotStartWaitsForOwnSlot) {
  const TdmaBus bus = TdmaBus::uniform(2, 10);  // N1: [0,10), N2: [10,20)
  const NodeId n1{0}, n2{1};
  EXPECT_EQ(bus.next_slot_start(n1, 0), 0);
  EXPECT_EQ(bus.next_slot_start(n1, 1), 20);   // missed its slot start
  EXPECT_EQ(bus.next_slot_start(n2, 0), 10);
  EXPECT_EQ(bus.next_slot_start(n2, 10), 10);
  EXPECT_EQ(bus.next_slot_start(n2, 11), 30);
  EXPECT_EQ(bus.next_slot_start(n1, 39), 40);
}

TEST(TdmaBus, TransmissionFinishSingleFrame) {
  const TdmaBus bus = TdmaBus::uniform(2, 10);
  EXPECT_EQ(bus.transmission_finish(NodeId{0}, 0, 1), 10);
  EXPECT_EQ(bus.transmission_finish(NodeId{1}, 0, 1), 20);
}

TEST(TdmaBus, MultiFrameMessagesSpanRounds) {
  TdmaBus bus = TdmaBus::uniform(2, 10);
  bus.set_slot_payload(4);
  EXPECT_EQ(bus.frames_needed(4), 1);
  EXPECT_EQ(bus.frames_needed(5), 2);
  // Two frames from N1: slots [0,10) and [20,30).
  EXPECT_EQ(bus.transmission_finish(NodeId{0}, 0, 5), 30);
}

TEST(TdmaBus, WorstCaseDurationBoundsAnyReadyTime) {
  TdmaBus bus = TdmaBus::uniform(3, 7);
  bus.set_slot_payload(2);
  for (NodeId sender : {NodeId{0}, NodeId{1}, NodeId{2}}) {
    for (std::int64_t size : {1, 2, 3, 5}) {
      const Time bound = bus.worst_case_duration(sender, size);
      for (Time ready = 0; ready < 2 * bus.round_length(); ++ready) {
        const Time latency =
            bus.transmission_finish(sender, ready, size) - ready;
        EXPECT_LE(latency, bound)
            << "sender=" << sender.get() << " size=" << size
            << " ready=" << ready;
      }
    }
  }
}

TEST(TdmaBus, HeterogeneousSlotLengths) {
  const TdmaBus bus = TdmaBus::from_slots(
      {TdmaSlot{NodeId{0}, 5}, TdmaSlot{NodeId{1}, 15}, TdmaSlot{NodeId{0}, 5}});
  EXPECT_EQ(bus.round_length(), 25);
  // N1 owns two slots per round: at 0 and at 20.
  EXPECT_EQ(bus.next_slot_start(NodeId{0}, 1), 20);
  EXPECT_EQ(bus.next_slot_start(NodeId{0}, 21), 25);
}

TEST(Architecture, HomogeneousFactory) {
  const Architecture arch = Architecture::homogeneous(4, 5);
  EXPECT_EQ(arch.node_count(), 4);
  EXPECT_EQ(arch.node(NodeId{0}).name, "N1");
  EXPECT_EQ(arch.node(NodeId{3}).name, "N4");
  EXPECT_EQ(arch.bus().round_length(), 20);
  EXPECT_THROW((void)arch.node(NodeId{4}), std::out_of_range);
}

}  // namespace
}  // namespace ftes
