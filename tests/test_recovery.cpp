// Unit + property tests of the checkpointing recovery algebra (Section 3.1).
#include "fault/recovery.h"

#include <gtest/gtest.h>

namespace ftes {
namespace {

// The paper's Fig. 1: C1 = 60 ms, alpha = 10, mu = 10, chi = 5.
constexpr RecoveryParams kFig1{60, 10, 10, 5};

TEST(Recovery, SegmentLengthIsCeilDiv) {
  EXPECT_EQ(segment_length(60, 1), 60);
  EXPECT_EQ(segment_length(60, 2), 30);
  EXPECT_EQ(segment_length(61, 2), 31);
  EXPECT_EQ(segment_length(60, 7), 9);
}

TEST(Recovery, SegmentLengthRejectsBadArgs) {
  EXPECT_THROW((void)segment_length(60, 0), std::invalid_argument);
  EXPECT_THROW((void)segment_length(0, 1), std::invalid_argument);
}

TEST(Recovery, Fig1bFaultFreeWithTwoCheckpoints) {
  // Fig. 1b: two checkpoints -> 60 + 2*chi = 70 ms.
  EXPECT_EQ(checkpointed_exec_time(kFig1, 2, 0), 70);
}

TEST(Recovery, Fig1cSingleFaultSecondSegment) {
  // Fig. 1c: one fault -> 70 + (30 + alpha + mu) = 120 ms.
  EXPECT_EQ(checkpointed_exec_time(kFig1, 2, 1), 120);
}

TEST(Recovery, ReexecutionIsSingleCheckpointCase) {
  // n = 1: every fault re-executes the whole process.
  EXPECT_EQ(checkpointed_exec_time(kFig1, 1, 0), 65);  // 60 + chi
  EXPECT_EQ(checkpointed_exec_time(kFig1, 1, 2), 65 + 2 * (60 + 10 + 10));
}

TEST(Recovery, ReplicaTimeIsPlainWcet) {
  EXPECT_EQ(replica_exec_time(kFig1), 60);
}

TEST(Recovery, FaultOccurrenceAndRecoveryOffsets) {
  // n = 1 re-execution: fault j occurs at j*C + (j-1)*(alpha+mu); the
  // recovery starts alpha+mu later.  Matches Fig. 6's P1 row (0/35/70 for
  // C = 30, alpha+mu = 5).
  const RecoveryParams p{30, 5, 0, 0};
  EXPECT_EQ(fault_occurrence_offset(p, 1, 1), 30);
  EXPECT_EQ(recovery_start_offset(p, 1, 1), 35);
  EXPECT_EQ(fault_occurrence_offset(p, 1, 2), 65);
  EXPECT_EQ(recovery_start_offset(p, 1, 2), 70);
}

TEST(Recovery, ExecTimeMonotoneInFaults) {
  for (int n = 1; n <= 8; ++n) {
    for (int f = 0; f < 6; ++f) {
      EXPECT_LT(checkpointed_exec_time(kFig1, n, f),
                checkpointed_exec_time(kFig1, n, f + 1));
    }
  }
}

TEST(Recovery, CompletionConsistentWithRecoveryOffsets) {
  // With all faults on the first segment, the f-th recovery re-runs the
  // whole remaining fault-free schedule of the copy:
  //   E(n, f) == recovery_start_offset(f) + E(n, 0).
  for (int n : {1, 2, 3, 5}) {
    for (int f : {1, 2, 3}) {
      EXPECT_EQ(checkpointed_exec_time(kFig1, n, f),
                recovery_start_offset(kFig1, n, f) +
                    checkpointed_exec_time(kFig1, n, 0))
          << "n=" << n << " f=" << f;
    }
  }
}

// --- local optimal checkpoint count ([27]) --------------------------------

TEST(Recovery, LocalOptimumMinimizesExecTime) {
  // Exhaustive check: the returned n is no worse than any n in range.
  const int cap = 32;
  for (Time chi : {1, 3, 5, 10}) {
    for (Time c : {20, 60, 100, 250}) {
      for (int k : {1, 2, 4, 7}) {
        const RecoveryParams p{c, 5, 5, chi};
        const int n0 = optimal_checkpoints_local(p, k, cap);
        const Time best = checkpointed_exec_time(p, n0, k);
        for (int n = 1; n <= cap; ++n) {
          EXPECT_LE(best, checkpointed_exec_time(p, n, k))
              << "chi=" << chi << " C=" << c << " k=" << k << " n=" << n;
        }
      }
    }
  }
}

TEST(Recovery, LocalOptimumNoFaultsIsOne) {
  EXPECT_EQ(optimal_checkpoints_local(kFig1, 0), 1);
}

TEST(Recovery, LocalOptimumFreeCheckpointsHitsCap) {
  const RecoveryParams p{60, 10, 10, 0};
  EXPECT_EQ(optimal_checkpoints_local(p, 2, 16), 16);
}

TEST(Recovery, MoreCheckpointsTradeOverheadForRecovery) {
  // With many faults, more checkpoints pay off; with none, they only cost.
  const RecoveryParams p{100, 2, 2, 2};
  EXPECT_GT(checkpointed_exec_time(p, 1, 5),
            checkpointed_exec_time(p, 5, 5));
  EXPECT_LT(checkpointed_exec_time(p, 1, 0),
            checkpointed_exec_time(p, 5, 0));
}

// Parameterized sweep: the optimum from the closed form never loses to its
// neighbours (guards the floor/ceil adjustment).
class LocalOptSweep : public ::testing::TestWithParam<int> {};

TEST_P(LocalOptSweep, NeighbourhoodOptimal) {
  const int k = GetParam();
  for (Time c = 10; c <= 200; c += 17) {
    const RecoveryParams p{c, 3, 4, 6};
    const int n0 = optimal_checkpoints_local(p, k, 64);
    const Time best = checkpointed_exec_time(p, n0, k);
    for (int d : {-2, -1, 1, 2}) {
      const int n = n0 + d;
      if (n < 1 || n > 64) continue;
      EXPECT_LE(best, checkpointed_exec_time(p, n, k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Faults, LocalOptSweep, ::testing::Values(1, 2, 3, 5, 7));

}  // namespace
}  // namespace ftes
