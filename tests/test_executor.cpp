// Tests of the table-driven execution checker (Section 5.2 run-time side).
#include "sim/executor.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "sim/fault_injector.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

TEST(Executor, AllScenariosPassOnSynthesizedTables) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.completion, r.wcsl);
}

TEST(Executor, DetectsMissedDeadline) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  f.app.set_deadline(r.wcsl - 1);  // now the worst scenario must fail
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_FALSE(report.ok);
  bool mentions_deadline = false;
  for (const std::string& v : report.violations) {
    if (v.find("deadline") != std::string::npos) mentions_deadline = true;
  }
  EXPECT_TRUE(mentions_deadline);
}

TEST(Executor, DetectsTamperedTables) {
  auto f = fig5_app();
  CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // Remove P1's row from N1's table: its activations become orphans.
  r.tables.node_rows[0].erase("P1");
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_FALSE(report.ok);
}

TEST(Executor, DetectsBrokenTransparency) {
  auto f = fig5_app();
  // Sabotage: schedule without honouring transparency, then check against
  // the transparency requirement -- the checker must object.
  CondScheduleOptions opts;
  opts.respect_transparency = false;
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model, opts);
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_FALSE(report.ok);
}

TEST(FaultInjector, ScenariosRespectBudget) {
  auto f = fig5_app();
  Rng rng(7);
  const auto scenarios =
      random_scenarios(f.app, f.assignment, f.model, 200, rng);
  EXPECT_EQ(scenarios.size(), 200u);
  for (const FaultScenario& s : scenarios) {
    EXPECT_LE(s.total_faults(), f.model.k);
  }
}

TEST(FaultInjector, ExactFaultCount) {
  auto f = fig5_app();
  Rng rng(11);
  for (int n = 0; n <= 2; ++n) {
    const FaultScenario s = random_scenario(f.app, f.assignment, n, rng);
    EXPECT_EQ(s.total_faults(), n);
  }
}

TEST(FaultInjector, HitsOnlyExistingCopies) {
  auto f = fig5_app();
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const FaultScenario s = random_scenario(f.app, f.assignment, 2, rng);
    for (const auto& [ref, count] : s.hits()) {
      ASSERT_GE(ref.process.get(), 0);
      ASSERT_LT(ref.process.get(), f.app.process_count());
      EXPECT_LT(ref.copy, f.assignment.plan(ref.process).copy_count());
      EXPECT_GT(count, 0);
    }
  }
}

}  // namespace
}  // namespace ftes
