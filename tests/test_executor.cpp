// Tests of the table-driven execution checker (Section 5.2 run-time side).
#include "sim/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "fixtures.h"
#include "sim/fault_injector.h"
#include "util/thread_pool.h"

namespace ftes {
namespace {

using ::ftes::testing::fig5_app;

TEST(Executor, AllScenariosPassOnSynthesizedTables) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.completion, r.wcsl);
}

TEST(Executor, DetectsMissedDeadline) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  f.app.set_deadline(r.wcsl - 1);  // now the worst scenario must fail
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_FALSE(report.ok);
  bool mentions_deadline = false;
  for (const std::string& v : report.violations) {
    if (v.find("deadline") != std::string::npos) mentions_deadline = true;
  }
  EXPECT_TRUE(mentions_deadline);
}

TEST(Executor, DetectsTamperedTables) {
  auto f = fig5_app();
  CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // Remove P1's row from N1's table: its activations become orphans.
  r.tables.node_rows[0].erase("P1");
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_FALSE(report.ok);
}

TEST(Executor, DetectsBrokenTransparency) {
  auto f = fig5_app();
  // Sabotage: schedule without honouring transparency, then check against
  // the transparency requirement -- the checker must object.
  CondScheduleOptions opts;
  opts.respect_transparency = false;
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model, opts);
  const ExecutionReport report = check_all_scenarios(f.app, f.assignment, r);
  EXPECT_FALSE(report.ok);
}

// --- exact violation strings, one test per kind ------------------------------
//
// Hand-broken tables/traces pin the report wording: fixtures and scripts
// grep these messages, so a rewording must be deliberate.

TEST(ExecutorStrings, NeverCompletes) {
  auto f = fig5_app();
  CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  ScenarioTrace trace = r.traces.front();  // fault-free
  for (ExecTrace& e : trace.execs) {
    if (e.copy.process == f.p1) e.died = true;  // no surviving copy of P1
  }
  const ExecutionReport report =
      execute_scenario(f.app, f.assignment, r, trace);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front(),
            "process P1 never completes in scenario " +
                trace.scenario.to_string(f.app));
}

TEST(ExecutorStrings, LocalDeadlineMiss) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  const ScenarioTrace& trace = r.traces.front();
  Time p2_end = 0;
  for (const ExecTrace& e : trace.execs) {
    if (e.copy.process == f.p2 && !e.died) p2_end = e.end;
  }
  ASSERT_GT(p2_end, 0);
  f.app.process(f.p2).local_deadline = p2_end - 1;
  const ExecutionReport report =
      execute_scenario(f.app, f.assignment, r, trace);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front(),
            "process P2 misses its local deadline in " +
                trace.scenario.to_string(f.app));
}

TEST(ExecutorStrings, GlobalDeadlineMiss) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // The worst trace misses a deadline one tick below the WCSL.
  const ScenarioTrace* worst = &r.traces.front();
  for (const ScenarioTrace& t : r.traces) {
    if (t.makespan > worst->makespan) worst = &t;
  }
  f.app.set_deadline(worst->makespan - 1);
  const ExecutionReport report =
      execute_scenario(f.app, f.assignment, r, *worst);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front(),
            "deadline missed (" + std::to_string(worst->makespan) + " > " +
                std::to_string(worst->makespan - 1) + ") in scenario " +
                worst->scenario.to_string(f.app));
}

TEST(ExecutorStrings, GuardNotEntailedProcess) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  ScenarioTrace trace = r.traces.front();
  // Shift P1's first activation off its table entry: no entry at the new
  // time, so the quasi-static consistency check must object.
  ExecTrace* p1 = nullptr;
  for (ExecTrace& e : trace.execs) {
    if (e.copy.process == f.p1) p1 = &e;
  }
  ASSERT_NE(p1, nullptr);
  const Time moved = p1->attempt_starts.front() + 1;
  p1->attempt_starts.front() = moved;
  const ExecutionReport report =
      execute_scenario(f.app, f.assignment, r, trace);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front(),
            "activation of P1 at t=" + std::to_string(moved) +
                " has no entailed table entry in scenario " +
                trace.scenario.to_string(f.app));
}

TEST(ExecutorStrings, GuardNotEntailedBus) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  ScenarioTrace trace = r.traces.front();
  TxTrace* data = nullptr;
  for (TxTrace& tx : trace.txs) {
    if (!tx.is_condition && tx.msg == f.m1) data = &tx;
  }
  ASSERT_NE(data, nullptr);
  const Time moved = data->start + 1;
  data->start = moved;
  const ExecutionReport report =
      execute_scenario(f.app, f.assignment, r, trace);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front(),
            "bus activation of m1 at t=" + std::to_string(moved) +
                " has no entailed table entry in scenario " +
                trace.scenario.to_string(f.app));
}

TEST(ExecutorStrings, FrozenProcessDivergence) {
  auto f = fig5_app();
  CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // Nudge frozen P3's start in one trace only: two observed starts.
  Time pinned = -1;
  Time moved = -1;
  bool first = true;
  for (ScenarioTrace& trace : r.traces) {
    for (ExecTrace& e : trace.execs) {
      if (e.copy.process != f.p3) continue;
      if (first) {
        pinned = e.start;
        first = false;
      } else if (moved < 0) {
        moved = e.start + 1;
        e.start = moved;
      }
    }
  }
  ASSERT_GE(pinned, 0);
  ASSERT_GE(moved, 0);
  const ExecutionReport report =
      check_all_scenarios(f.app, f.assignment, r);
  EXPECT_FALSE(report.ok);
  const std::string expected = "frozen process P3 starts at both " +
                               std::to_string(pinned) + " and " +
                               std::to_string(moved);
  EXPECT_NE(std::find(report.violations.begin(), report.violations.end(),
                      expected),
            report.violations.end())
      << "missing: " << expected;
}

TEST(ExecutorStrings, FrozenMessageDivergence) {
  auto f = fig5_app();
  CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  Time pinned = -1;
  Time moved = -1;
  bool first = true;
  for (ScenarioTrace& trace : r.traces) {
    for (TxTrace& tx : trace.txs) {
      if (tx.is_condition || tx.msg != f.m2) continue;
      if (first) {
        pinned = tx.start;
        first = false;
      } else if (moved < 0) {
        moved = tx.start + 1;
        tx.start = moved;
      }
    }
  }
  ASSERT_GE(pinned, 0);
  ASSERT_GE(moved, 0);
  const ExecutionReport report =
      check_all_scenarios(f.app, f.assignment, r);
  EXPECT_FALSE(report.ok);
  const std::string expected = "frozen message m2 transmitted at both " +
                               std::to_string(pinned) + " and " +
                               std::to_string(moved);
  EXPECT_NE(std::find(report.violations.begin(), report.violations.end(),
                      expected),
            report.violations.end())
      << "missing: " << expected;
}

// --- deterministic ordering under parallel checking --------------------------

TEST(Executor, ViolationOrderIsThreadCountInvariant) {
  auto f = fig5_app();
  const CondScheduleResult r =
      conditional_schedule(f.app, f.arch, f.assignment, f.model);
  // Break every scenario at once (deadline below the fault-free makespan)
  // so the report carries many violations across many scenarios.
  f.app.set_deadline(r.traces.front().makespan - 1);

  const ExecutionReport serial =
      check_all_scenarios(f.app, f.assignment, r);
  ASSERT_FALSE(serial.ok);
  ASSERT_GT(serial.violations.size(), 1u);

  ThreadPool pool(4);  // real helpers even on single-core hosts
  ExecCheckOptions options;
  options.threads = 4;
  options.pool = &pool;
  const ExecutionReport parallel =
      check_all_scenarios(f.app, f.assignment, r, options);
  EXPECT_EQ(serial.ok, parallel.ok);
  EXPECT_EQ(serial.completion, parallel.completion);
  EXPECT_EQ(serial.violations, parallel.violations);
}

TEST(FaultInjector, ScenariosRespectBudget) {
  auto f = fig5_app();
  Rng rng(7);
  const auto scenarios =
      random_scenarios(f.app, f.assignment, f.model, 200, rng);
  EXPECT_EQ(scenarios.size(), 200u);
  for (const FaultScenario& s : scenarios) {
    EXPECT_LE(s.total_faults(), f.model.k);
  }
}

TEST(FaultInjector, ExactFaultCount) {
  auto f = fig5_app();
  Rng rng(11);
  for (int n = 0; n <= 2; ++n) {
    const FaultScenario s = random_scenario(f.app, f.assignment, n, rng);
    EXPECT_EQ(s.total_faults(), n);
  }
}

TEST(FaultInjector, HitsOnlyExistingCopies) {
  auto f = fig5_app();
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const FaultScenario s = random_scenario(f.app, f.assignment, 2, rng);
    for (const auto& [ref, count] : s.hits()) {
      ASSERT_GE(ref.process.get(), 0);
      ASSERT_LT(ref.process.get(), f.app.process_count());
      EXPECT_LT(ref.copy, f.assignment.plan(ref.process).copy_count());
      EXPECT_GT(count, 0);
    }
  }
}

// Property: single-fault draws cover *every* copy, roughly uniformly.  The
// chi-squared statistic against the uniform law stays under a very loose
// bound (dof = copies - 1; 40 would be a p < 1e-6 outlier) -- tight enough
// to catch a copy the injector can never hit or hits half as often, loose
// enough to never flake on a fixed seed.
TEST(FaultInjector, SingleFaultCoverageIsRoughlyUniform) {
  auto f = fig5_app();
  Rng rng(17);
  std::map<std::pair<int, int>, int> tally;
  int total_copies = 0;
  for (int p = 0; p < f.app.process_count(); ++p) {
    total_copies += f.assignment.plan(ProcessId{p}).copy_count();
  }
  const int trials = 400 * total_copies;
  for (int t = 0; t < trials; ++t) {
    const FaultScenario s = random_scenario(f.app, f.assignment, 1, rng);
    ASSERT_EQ(s.hits().size(), 1u);
    const CopyRef ref = s.hits().begin()->first;
    ++tally[{ref.process.get(), ref.copy}];
  }
  EXPECT_EQ(static_cast<int>(tally.size()), total_copies)
      << "some copy was never hit";
  const double expected = static_cast<double>(trials) / total_copies;
  double chi2 = 0.0;
  for (const auto& [copy, observed] : tally) {
    const double d = observed - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

// Property: every batch draw is admissible -- total faults in [0, k] and
// only existing copies are hit -- and the batch exercises the whole range
// of fault counts, 0 and k included.
TEST(FaultInjector, BatchCountsSpanZeroToK) {
  auto f = fig5_app();
  Rng rng(19);
  const auto scenarios =
      random_scenarios(f.app, f.assignment, f.model, 300, rng);
  std::set<int> counts;
  for (const FaultScenario& s : scenarios) {
    ASSERT_GE(s.total_faults(), 0);
    ASSERT_LE(s.total_faults(), f.model.k);
    counts.insert(s.total_faults());
    for (const auto& [ref, count] : s.hits()) {
      ASSERT_LT(ref.copy, f.assignment.plan(ref.process).copy_count());
    }
  }
  EXPECT_TRUE(counts.count(0)) << "no fault-free draw in 300";
  EXPECT_TRUE(counts.count(f.model.k)) << "no full-budget draw in 300";
}

}  // namespace
}  // namespace ftes
