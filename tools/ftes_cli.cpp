// ftes_cli: synthesize a fault-tolerant implementation from a problem file.
//
// Usage:
//   ftes_cli <problem.ftes> [options]
//
// Options:
//   --seed <n>          tabu-search seed (default 1)
//   --iterations <n>    tabu iterations (default 300)
//   --no-tables         skip schedule-table generation (large designs)
//   --root              emit a root schedule (fully transparent recovery)
//   --json              dump schedule tables as JSON
//   --c-source          dump schedule tables as C source
//   --dot               dump the FT-CPG in GraphViz DOT
//   --gantt             render the fault-free and a worst-case Gantt chart
//
// Exit status: 0 if a schedulable configuration was found, 2 otherwise,
// 1 on usage/parse errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/synthesis.h"
#include "ftcpg/builder.h"
#include "io/app_parser.h"
#include "sched/root_schedule.h"
#include "sched/table_export.h"
#include "sim/executor.h"
#include "sim/gantt.h"

using namespace ftes;

namespace {

struct CliOptions {
  std::string input;
  std::uint64_t seed = 1;
  int iterations = 300;
  bool tables = true;
  bool root = false;
  bool json = false;
  bool c_source = false;
  bool dot = false;
  bool gantt = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: ftes_cli <problem.ftes> [--seed n] [--iterations n] "
               "[--no-tables] [--root] [--json] [--c-source] [--dot] "
               "[--gantt]\n");
  return 1;
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--iterations" && i + 1 < argc) {
      opts.iterations = std::atoi(argv[++i]);
    } else if (arg == "--no-tables") {
      opts.tables = false;
    } else if (arg == "--root") {
      opts.root = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--c-source") {
      opts.c_source = true;
    } else if (arg == "--dot") {
      opts.dot = true;
    } else if (arg == "--gantt") {
      opts.gantt = true;
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else if (opts.input.empty()) {
      opts.input = arg;
    } else {
      return false;
    }
  }
  return !opts.input.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) return usage();

  std::ifstream in(opts.input);
  if (!in) {
    std::fprintf(stderr, "ftes_cli: cannot open '%s'\n", opts.input.c_str());
    return 1;
  }

  ParsedProblem problem;
  try {
    problem = parse_problem(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ftes_cli: %s: %s\n", opts.input.c_str(), e.what());
    return 1;
  }

  SynthesisOptions synth;
  synth.fault_model = problem.model;
  synth.optimize.iterations = opts.iterations;
  synth.optimize.seed = opts.seed;
  synth.build_schedule_tables = opts.tables;

  const SynthesisResult result =
      synthesize(problem.app, problem.arch, synth);

  std::printf("ftes: %d processes, %d messages, %d nodes, k = %d\n",
              problem.app.process_count(), problem.app.message_count(),
              problem.arch.node_count(), problem.model.k);
  std::printf("\nPolicy assignment and mapping:\n%s",
              result.assignment.summary(problem.app).c_str());
  std::printf("\nWCSL %lld / deadline %lld -> %s\n",
              static_cast<long long>(result.wcsl.makespan),
              static_cast<long long>(problem.app.deadline()),
              result.schedulable ? "schedulable" : "NOT schedulable");

  if (result.schedule) {
    const ExecutionReport report = check_all_scenarios(
        problem.app, result.assignment, *result.schedule);
    std::printf("Schedule tables: %d entries over %d scenarios, validation %s\n",
                result.schedule->tables.total_entries(),
                result.schedule->scenario_count, report.ok ? "OK" : "FAILED");
    if (opts.json) {
      std::printf("%s", tables_to_json(result.schedule->tables, problem.arch)
                            .c_str());
    }
    if (opts.c_source) {
      std::printf("%s",
                  tables_to_c_source(result.schedule->tables, problem.arch)
                      .c_str());
    }
    if (opts.gantt && !result.schedule->traces.empty()) {
      std::printf("\nFault-free scenario:\n%s",
                  render_gantt(problem.app, problem.arch, result.assignment,
                               result.schedule->traces.front())
                      .c_str());
      // Worst scenario by makespan.
      const ScenarioTrace* worst = &result.schedule->traces.front();
      for (const ScenarioTrace& tr : result.schedule->traces) {
        if (tr.makespan > worst->makespan) worst = &tr;
      }
      std::printf("\nWorst scenario:\n%s",
                  render_gantt(problem.app, problem.arch, result.assignment,
                               *worst)
                      .c_str());
    }
  }

  if (opts.root) {
    const RootSchedule root = build_root_schedule(
        problem.app, problem.arch, result.assignment, problem.model);
    std::printf("\n%s", root.to_text(problem.app, problem.arch).c_str());
  }

  if (opts.dot) {
    const Ftcpg g =
        build_ftcpg(problem.app, result.assignment, problem.model);
    std::printf("%s", g.to_dot().c_str());
  }

  return result.schedulable ? 0 : 2;
}
