// ftes_cli: synthesize a fault-tolerant implementation from a problem file.
//
// Usage:
//   ftes_cli <problem.ftes> [options]
//   ftes_cli --batch <dir> [options]
//
// Options:
//   --seed <n>          tabu-search seed (default 1)
//   --iterations <n>    tabu iterations (default 300)
//   --threads <n>       parallelism: neighborhood evaluations in single-
//                       problem mode, concurrent problems in --batch mode
//                       (default 1; 0 = all hardware threads)
//   --batch <dir>       synthesize every *.ftes file under <dir>; reports
//                       the analytic WCSL only (tables are never built),
//                       and the per-problem output flags below (except
//                       --json) are rejected
//   --speculate         overlap schedule-table generation with checkpoint
//                       refinement (bit-identical results; single mode)
//   --stage-budget-ms <n>   wall-clock budget per pipeline stage; on expiry
//                       the run is cancelled and the partial result
//                       reported as timed out (-1 = unlimited, default)
//   --total-budget-ms <n>   wall-clock budget for the whole synthesis
//                       (per task in --batch mode; -1 = unlimited)
//   --no-tables         skip schedule-table generation (large designs)
//   --root              emit a root schedule (fully transparent recovery)
//   --json              single mode: dump schedule tables as JSON;
//                       batch mode: emit the machine-readable batch report
//                       (per-task seed, schedulable flag, WCSL, evaluations,
//                       wall-clock, per-stage metrics; see docs/CLI.md)
//   --c-source          dump schedule tables as C source
//   --dot               dump the FT-CPG in GraphViz DOT
//   --gantt             render the fault-free and a worst-case Gantt chart
//   --fuzz <n>          adversarial stress: replay n random admissible
//                       perturbations (fault timing, execution jitter)
//                       against the synthesized tables; any violation makes
//                       the exit status 2.  In --batch mode this builds
//                       tables per task and appends a "fuzz" stage to the
//                       JSON report.  Output is bit-identical for every
//                       --threads value.
//   --fuzz-seed <n>     base seed of the fuzz sweep (default 1)
//   --fuzz-out <file>   write the first (shrunk) counterexample as a
//                       replayable fixture (single mode)
//   --replay <file>     replay a fuzz fixture (tests/fixtures/*.fuzz)
//                       against the synthesized tables: apply its table
//                       corruptions, replay its perturbation, and require
//                       every expected violation kind to show up (an empty
//                       expectation requires a clean replay); mismatch ->
//                       exit status 2 (single mode)
//   --serve             job-server mode: read newline-delimited job
//                       requests from stdin, answer one JSON line each
//                       (docs/SERVER.md); job failures are reported
//                       in-band, never through the exit status
//   --serve-jobs <n>    --serve: max concurrently in-flight jobs
//                       (default 1: serial; 0 = one per hardware thread).
//                       The response stream is byte-identical to
//                       --serve-jobs 1 apart from the wall-clock
//                       `seconds` field (docs/SERVER.md)
//   --cache-bytes <n>   --serve: result-cache byte budget (default 8 MiB;
//                       0 disables the cache)
//   --max-retries <n>   --serve: extra attempts for transient job failures
//                       (default 2)
//   --retry-backoff-ms <n>  --serve: base backoff before a retry, doubled
//                       per attempt and capped at 1000 ms (default 0: no
//                       sleeping)
//   --inject <spec>     arm the fault-injection seam with a rule
//                       `site:kind[:every=N][:offset=N][:limit=N]`, kind
//                       one of throw|bad-alloc|cancel (repeatable; see
//                       util/fault_injection.h).  Testing only.
//
// Exit status (the full contract is documented in docs/CLI.md):
//   0  success -- single mode: schedulable and every requested fuzz/replay
//      check passed; batch mode: no task failed; serve mode: the request
//      stream drained (per-job failures are in-band JSON statuses)
//   1  usage, configuration or input errors (unknown flags, invalid flag
//      combinations, unreadable or malformed problem/fixture files)
//   2  domain failures -- single mode: not schedulable, or a fuzz/replay
//      expectation failed; batch mode: at least one task failed
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>

#include "batch/batch_runner.h"
#include "core/pipeline.h"
#include "core/synthesis.h"
#include "ftcpg/builder.h"
#include "io/app_parser.h"
#include "sched/root_schedule.h"
#include "sched/table_export.h"
#include "serve/job_server.h"
#include "sim/executor.h"
#include "sim/fuzzer.h"
#include "sim/gantt.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

using namespace ftes;

namespace {

struct CliOptions {
  std::string input;
  std::string batch_dir;
  std::uint64_t seed = 1;
  int iterations = 300;
  int threads = 1;
  bool speculate = false;
  long long stage_budget_ms = -1;
  long long total_budget_ms = -1;
  bool tables = true;
  bool root = false;
  bool json = false;
  bool c_source = false;
  bool dot = false;
  bool gantt = false;
  int fuzz_trials = 0;
  std::uint64_t fuzz_seed = 1;
  std::string fuzz_out;
  std::string replay_path;
  bool serve = false;
  int serve_jobs = 1;
  long long cache_bytes = 8ll << 20;
  int max_retries = 2;
  long long retry_backoff_ms = 0;
  std::vector<std::string> inject_specs;
};

int usage() {
  std::fprintf(stderr,
               "usage: ftes_cli <problem.ftes> [--seed n] [--iterations n] "
               "[--threads n] [--speculate] [--stage-budget-ms n] "
               "[--total-budget-ms n] [--no-tables] [--root] [--json] "
               "[--c-source] [--dot] [--gantt] [--fuzz n] [--fuzz-seed n] "
               "[--fuzz-out file] [--replay file]\n"
               "       ftes_cli --batch <dir> [--seed n] [--iterations n] "
               "[--threads n] [--stage-budget-ms n] [--total-budget-ms n] "
               "[--json] [--fuzz n] [--fuzz-seed n]\n"
               "       ftes_cli --serve [--seed n] [--iterations n] "
               "[--threads n] [--serve-jobs n] [--cache-bytes n] "
               "[--max-retries n] [--retry-backoff-ms n] "
               "[--inject spec]...\n");
  return 1;
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--iterations" && i + 1 < argc) {
      opts.iterations = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = std::atoi(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      opts.batch_dir = argv[++i];
    } else if (arg == "--speculate") {
      opts.speculate = true;
    } else if (arg == "--stage-budget-ms" && i + 1 < argc) {
      opts.stage_budget_ms = std::atoll(argv[++i]);
    } else if (arg == "--total-budget-ms" && i + 1 < argc) {
      opts.total_budget_ms = std::atoll(argv[++i]);
    } else if (arg == "--no-tables") {
      opts.tables = false;
    } else if (arg == "--root") {
      opts.root = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--c-source") {
      opts.c_source = true;
    } else if (arg == "--dot") {
      opts.dot = true;
    } else if (arg == "--gantt") {
      opts.gantt = true;
    } else if (arg == "--fuzz" && i + 1 < argc) {
      opts.fuzz_trials = std::atoi(argv[++i]);
    } else if (arg == "--fuzz-seed" && i + 1 < argc) {
      opts.fuzz_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--fuzz-out" && i + 1 < argc) {
      opts.fuzz_out = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      opts.replay_path = argv[++i];
    } else if (arg == "--serve") {
      opts.serve = true;
    } else if (arg == "--serve-jobs" && i + 1 < argc) {
      opts.serve_jobs = std::atoi(argv[++i]);
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      opts.cache_bytes = std::atoll(argv[++i]);
    } else if (arg == "--max-retries" && i + 1 < argc) {
      opts.max_retries = std::atoi(argv[++i]);
    } else if (arg == "--retry-backoff-ms" && i + 1 < argc) {
      opts.retry_backoff_ms = std::atoll(argv[++i]);
    } else if (arg == "--inject" && i + 1 < argc) {
      opts.inject_specs.emplace_back(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else if (opts.input.empty()) {
      opts.input = arg;
    } else {
      return false;
    }
  }
  return !opts.input.empty() || !opts.batch_dir.empty() || opts.serve;
}

int run_batch_mode(const CliOptions& opts) {
  // Per-problem output flags have nowhere to go in the batch report
  // (--json switches the report itself to JSON instead), and speculation
  // only overlaps table generation, which batch mode never performs --
  // reject rather than silently ignore.
  if (opts.root || opts.c_source || opts.dot || opts.gantt ||
      opts.speculate) {
    std::fprintf(stderr,
                 "ftes_cli: --root/--c-source/--dot/--gantt/--speculate are "
                 "not available in --batch mode\n");
    return 1;
  }
  if (!opts.replay_path.empty() || !opts.fuzz_out.empty()) {
    std::fprintf(stderr,
                 "ftes_cli: --replay/--fuzz-out are not available in "
                 "--batch mode\n");
    return 1;
  }

  std::vector<BatchTask> tasks;
  try {
    tasks = load_batch_dir(opts.batch_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ftes_cli: %s\n", e.what());
    return 1;
  }
  if (tasks.empty()) {
    std::fprintf(stderr, "ftes_cli: no .ftes files under '%s'\n",
                 opts.batch_dir.c_str());
    return 1;
  }

  BatchOptions batch;
  batch.threads = opts.threads;
  batch.base_seed = opts.seed;
  batch.synthesis.optimize.iterations = opts.iterations;
  // Deadline watchdog per task: a pathological instance is cut short and
  // reported as timed out while the sweep continues.
  batch.synthesis.stage_budget_ms = opts.stage_budget_ms;
  batch.synthesis.total_budget_ms = opts.total_budget_ms;
  // The batch report only uses the analytic WCSL; building the
  // (exponential-in-k) schedule tables per task would dominate the run
  // and be thrown away.  --fuzz is the exception: the fuzzer replays
  // against the tables, so it pays for them.
  batch.synthesis.build_schedule_tables = opts.fuzz_trials > 0;
  batch.fuzz_trials = opts.fuzz_trials;
  batch.fuzz_seed = opts.fuzz_seed;

  const BatchReport report = run_batch(tasks, batch);
  if (opts.json) {
    std::printf("%s", format_batch_report_json(report).c_str());
  } else {
    std::printf("ftes batch: %zu problems, %d thread(s), %.2fs\n%s",
                tasks.size(), resolve_threads(opts.threads), report.seconds,
                format_batch_report(report).c_str());
  }
  return report.failed_count == 0 ? 0 : 2;
}

int run_serve_mode(const CliOptions& opts) {
  if (!opts.input.empty() || !opts.batch_dir.empty() || opts.fuzz_trials > 0 ||
      !opts.replay_path.empty() || !opts.fuzz_out.empty() || opts.root ||
      opts.c_source || opts.dot || opts.gantt || opts.json || opts.speculate) {
    std::fprintf(stderr,
                 "ftes_cli: --serve takes job requests on stdin; problem "
                 "files and per-problem output flags are not available\n");
    return 1;
  }
  if (opts.cache_bytes < 0 || opts.max_retries < 0 ||
      opts.retry_backoff_ms < 0) {
    std::fprintf(stderr,
                 "ftes_cli: --cache-bytes/--max-retries/--retry-backoff-ms "
                 "must be non-negative\n");
    return 1;
  }
  if (opts.serve_jobs < 0) {
    std::fprintf(stderr,
                 "ftes_cli: --serve-jobs must be >= 0 (0 = one job per "
                 "hardware thread)\n");
    return 1;
  }
  std::vector<fi::FaultRule> rules;
  for (const std::string& spec : opts.inject_specs) {
    try {
      rules.push_back(fi::parse_rule(spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ftes_cli: %s\n", e.what());
      return 1;
    }
  }
  fi::configure(std::move(rules));

  serve::ServerOptions server;
  server.threads = opts.threads;
  server.serve_jobs =
      opts.serve_jobs == 0 ? resolve_threads(0) : opts.serve_jobs;
  server.default_seed = opts.seed;
  server.default_iterations = opts.iterations;
  server.cache_bytes = static_cast<std::size_t>(opts.cache_bytes);
  server.max_retries = opts.max_retries;
  server.retry_backoff_ms = opts.retry_backoff_ms;
  serve::JobServer js(server);
  js.serve(std::cin, std::cout);
  fi::disarm();
  // Draining the stream is success: job-level failures are reported
  // in-band, per response, so one bad request cannot fail a service that
  // answered it correctly.
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) return usage();
  if (opts.serve) return run_serve_mode(opts);
  if (!opts.inject_specs.empty()) {
    // Only the server's soak harness injects faults; the one-shot modes
    // have no retry story, so an armed seam would just corrupt results.
    std::fprintf(stderr, "ftes_cli: --inject requires --serve\n");
    return 1;
  }
  if (opts.speculate && !opts.tables) {
    // Speculation only overlaps table generation: reject the combination
    // rather than silently ignore the flag.
    std::fprintf(stderr,
                 "ftes_cli: --speculate has nothing to overlap with "
                 "--no-tables\n");
    return 1;
  }
  if ((opts.fuzz_trials > 0 || !opts.replay_path.empty()) && !opts.tables) {
    std::fprintf(stderr,
                 "ftes_cli: --fuzz/--replay need the schedule tables "
                 "(drop --no-tables)\n");
    return 1;
  }
  if (!opts.batch_dir.empty()) {
    if (!opts.input.empty()) return usage();  // one mode at a time
    return run_batch_mode(opts);
  }

  std::ifstream in(opts.input);
  if (!in) {
    std::fprintf(stderr, "ftes_cli: cannot open '%s'\n", opts.input.c_str());
    return 1;
  }

  ParsedProblem problem;
  try {
    problem = parse_problem(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ftes_cli: %s: %s\n", opts.input.c_str(), e.what());
    return 1;
  }

  SynthesisOptions synth;
  synth.fault_model = problem.model;
  synth.optimize.iterations = opts.iterations;
  synth.optimize.seed = opts.seed;
  synth.optimize.threads = opts.threads;
  synth.build_schedule_tables = opts.tables;
  synth.speculate = opts.speculate;
  synth.stage_budget_ms = opts.stage_budget_ms;
  synth.total_budget_ms = opts.total_budget_ms;

  // Drive the stage pipeline directly so per-stage metrics can be shown.
  SynthesisContext ctx(problem.app, problem.arch, synth);
  Pipeline pipeline = Pipeline::default_pipeline();
  const SynthesisResult result = pipeline.run(ctx);

  // Adversarial fuzz sweep (before any printing: its summary joins the
  // Stages line).  Everything printed is thread-count-invariant.
  std::vector<StageMetrics> stage_metrics = pipeline.metrics();
  std::optional<FuzzReport> fuzz_report;
  if (opts.fuzz_trials > 0) {
    if (!result.schedule || result.schedule->traces.empty()) {
      std::fprintf(stderr, "ftes_cli: no schedule tables to fuzz\n");
      return 1;
    }
    const ScheduleFuzzer fuzzer(problem.app, problem.arch, result.assignment,
                                problem.model, *result.schedule);
    FuzzOptions fuzz;
    fuzz.trials = opts.fuzz_trials;
    fuzz.seed = opts.fuzz_seed;
    fuzz.threads = opts.threads;
    fuzz_report = fuzzer.fuzz(fuzz);
    StageMetrics fm;
    fm.stage = "fuzz";
    fm.fuzz_trials = fuzz_report->trials;
    fm.fuzz_failing_trials = fuzz_report->failing_trials;
    fm.fuzz_violations = fuzz_report->violations;
    fm.fuzz_worst_completion = fuzz_report->worst_completion;
    fm.seconds = fuzz_report->seconds;
    stage_metrics.push_back(std::move(fm));
  }

  std::printf("ftes: %d processes, %d messages, %d nodes, k = %d\n",
              problem.app.process_count(), problem.app.message_count(),
              problem.arch.node_count(), problem.model.k);
  std::printf("\nPolicy assignment and mapping:\n%s",
              result.assignment.summary(problem.app).c_str());
  std::printf("\nWCSL %lld / deadline %lld -> %s\n",
              static_cast<long long>(result.wcsl.makespan),
              static_cast<long long>(problem.app.deadline()),
              result.schedulable ? "schedulable" : "NOT schedulable");
  // No wall-clock here: single-mode stdout stays bit-identical across
  // --threads values (CI diffs it); timings live in the JSON/batch reports.
  std::printf("Stages:");
  for (const StageMetrics& m : stage_metrics) {
    if (m.skipped) {
      std::printf("  %s skipped;", m.stage.c_str());
      continue;
    }
    if (m.fuzz_trials > 0) {
      std::printf("  %s %lld trials, %lld failing;", m.stage.c_str(),
                  m.fuzz_trials, m.fuzz_failing_trials);
      continue;
    }
    const long long rows = m.cache_hits + m.cache_misses;
    std::printf("  %s %lld evals", m.stage.c_str(), m.evaluations);
    if (rows > 0) {
      std::printf(" (%.1f%% DP rows cached)",
                  100.0 * static_cast<double>(m.cache_hits) /
                      static_cast<double>(rows));
    }
    if (m.sched_events_total > 0) {
      std::printf(" (%.1f%% placements resumed)",
                  100.0 * static_cast<double>(m.sched_events_resumed) /
                      static_cast<double>(m.sched_events_total));
    }
    if (m.search_accepted > 0) {
      std::printf(" (%lld moves accepted)", m.search_accepted);
    }
    if (m.rebase_log_recorded > 0) {
      std::printf(" (%lld rebase logs resumed)", m.rebase_log_recorded);
    }
    if (m.rebase_batched > 0) {
      std::printf(" (%lld rebases batched)", m.rebase_batched);
    }
    if (m.rebase_interval_mismatch > 0) {
      std::printf(" (%lld interval-gate misses)", m.rebase_interval_mismatch);
    }
    if (m.snapshot_refs_shared > 0) {
      std::printf(" (%lld snapshots shared, %lld KiB copied)",
                  m.snapshot_refs_shared, m.snapshot_bytes_copied / 1024);
    }
    // Only printed when the features fired, so default runs stay
    // bit-identical to older goldens; speculation hit/miss is itself
    // deterministic for a fixed seed and any --threads.
    if (m.spec_hits + m.spec_misses > 0) {
      std::printf(" (speculation %s)", m.spec_hits > 0 ? "hit" : "miss");
    }
    if (m.timed_out) std::printf(" timed out");
    std::printf(";");
  }
  std::printf("\n");

  bool fuzz_ok = true;
  bool replay_ok = true;
  if (result.schedule) {
    ExecCheckOptions check;
    check.threads = opts.threads;
    const ExecutionReport report = check_all_scenarios(
        problem.app, result.assignment, *result.schedule, check);
    std::printf("Schedule tables: %d entries over %d scenarios, validation %s\n",
                result.schedule->tables.total_entries(),
                result.schedule->scenario_count, report.ok ? "OK" : "FAILED");
    if (fuzz_report) {
      std::printf("Fuzz: %lld trials, %lld failing, %lld violations, "
                  "worst completion %lld\n",
                  fuzz_report->trials, fuzz_report->failing_trials,
                  fuzz_report->violations,
                  static_cast<long long>(fuzz_report->worst_completion));
      for (const auto& [kind, count] : fuzz_report->violations_by_kind) {
        std::printf("  %s: %lld\n", kind.c_str(), count);
      }
      for (const FuzzCounterexample& cx : fuzz_report->counterexamples) {
        std::printf("  counterexample (trial %lld, %d shrink steps): %s\n",
                    cx.trial, cx.shrink_steps,
                    cx.violations.empty() ? "(no violations after shrink)"
                                          : cx.violations.front().message
                                                .c_str());
      }
      fuzz_ok = fuzz_report->ok();
      if (!opts.fuzz_out.empty()) {
        if (fuzz_report->counterexamples.empty()) {
          std::printf("  fuzz clean: no fixture written to %s\n",
                      opts.fuzz_out.c_str());
        } else {
          const FuzzCounterexample& cx = fuzz_report->counterexamples.front();
          FuzzFixture fixture;
          fixture.perturbation = cx.perturbation;
          for (const FuzzViolation& v : cx.violations) {
            if (std::find(fixture.expect.begin(), fixture.expect.end(),
                          v.kind) == fixture.expect.end()) {
              fixture.expect.push_back(v.kind);
            }
          }
          fixture.note = "shrunk counterexample, trial " +
                         std::to_string(cx.trial) + ", fuzz seed " +
                         std::to_string(opts.fuzz_seed);
          std::ofstream out(opts.fuzz_out);
          if (!out) {
            std::fprintf(stderr, "ftes_cli: cannot write '%s'\n",
                         opts.fuzz_out.c_str());
            return 1;
          }
          out << fixture_to_text(fixture, problem.app, result.assignment);
          std::printf("  wrote fixture %s\n", opts.fuzz_out.c_str());
        }
      }
    }
    if (!opts.replay_path.empty()) {
      std::ifstream fin(opts.replay_path);
      if (!fin) {
        std::fprintf(stderr, "ftes_cli: cannot open '%s'\n",
                     opts.replay_path.c_str());
        return 1;
      }
      try {
        const FuzzFixture fixture =
            parse_fixture(fin, problem.app, result.assignment);
        // Replay against a (possibly corrupted) copy of the tables.
        CondScheduleResult corrupted = *result.schedule;
        apply_corruptions(fixture.corruptions, corrupted.tables);
        const ScheduleFuzzer fuzzer(problem.app, problem.arch,
                                    result.assignment, problem.model,
                                    corrupted);
        const std::vector<FuzzViolation> violations =
            fuzzer.replay(fixture.perturbation);
        std::printf("Replay %s: %zu violation(s)\n", opts.replay_path.c_str(),
                    violations.size());
        for (const FuzzViolation& v : violations) {
          std::printf("  [%s] %s\n", to_string(v.kind), v.message.c_str());
        }
        if (fixture.expect.empty()) {
          replay_ok = violations.empty();
        } else {
          for (FuzzKind kind : fixture.expect) {
            const bool seen =
                std::any_of(violations.begin(), violations.end(),
                            [&](const FuzzViolation& v) {
                              return v.kind == kind;
                            });
            if (!seen) {
              std::printf("  expected %s: NOT observed\n", to_string(kind));
              replay_ok = false;
            }
          }
        }
        std::printf("Replay verdict: %s\n",
                    replay_ok ? "OK (expectations met)" : "FAILED");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ftes_cli: %s: %s\n", opts.replay_path.c_str(),
                     e.what());
        return 1;
      }
    }
    if (opts.json) {
      std::printf("%s", tables_to_json(result.schedule->tables, problem.arch)
                            .c_str());
    }
    if (opts.c_source) {
      std::printf("%s",
                  tables_to_c_source(result.schedule->tables, problem.arch)
                      .c_str());
    }
    if (opts.gantt && !result.schedule->traces.empty()) {
      std::printf("\nFault-free scenario:\n%s",
                  render_gantt(problem.app, problem.arch, result.assignment,
                               result.schedule->traces.front())
                      .c_str());
      // Worst scenario by makespan.
      const ScenarioTrace* worst = &result.schedule->traces.front();
      for (const ScenarioTrace& tr : result.schedule->traces) {
        if (tr.makespan > worst->makespan) worst = &tr;
      }
      std::printf("\nWorst scenario:\n%s",
                  render_gantt(problem.app, problem.arch, result.assignment,
                               *worst)
                      .c_str());
    }
  }

  if (opts.root) {
    const RootSchedule root = build_root_schedule(
        problem.app, problem.arch, result.assignment, problem.model);
    std::printf("\n%s", root.to_text(problem.app, problem.arch).c_str());
  }

  if (!result.schedule && !opts.replay_path.empty()) {
    std::fprintf(stderr, "ftes_cli: no schedule tables to replay against\n");
    return 1;
  }

  if (opts.dot) {
    const Ftcpg g =
        build_ftcpg(problem.app, result.assignment, problem.model);
    std::printf("%s", g.to_dot().c_str());
  }

  return (result.schedulable && fuzz_ok && replay_ok) ? 0 : 2;
}
