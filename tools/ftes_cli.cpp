// ftes_cli: synthesize a fault-tolerant implementation from a problem file.
//
// Usage:
//   ftes_cli <problem.ftes> [options]
//   ftes_cli --batch <dir> [options]
//
// Options:
//   --seed <n>          tabu-search seed (default 1)
//   --iterations <n>    tabu iterations (default 300)
//   --threads <n>       parallelism: neighborhood evaluations in single-
//                       problem mode, concurrent problems in --batch mode
//                       (default 1; 0 = all hardware threads)
//   --batch <dir>       synthesize every *.ftes file under <dir>; reports
//                       the analytic WCSL only (tables are never built),
//                       and the per-problem output flags below (except
//                       --json) are rejected
//   --speculate         overlap schedule-table generation with checkpoint
//                       refinement (bit-identical results; single mode)
//   --stage-budget-ms <n>   wall-clock budget per pipeline stage; on expiry
//                       the run is cancelled and the partial result
//                       reported as timed out (-1 = unlimited, default)
//   --total-budget-ms <n>   wall-clock budget for the whole synthesis
//                       (per task in --batch mode; -1 = unlimited)
//   --no-tables         skip schedule-table generation (large designs)
//   --root              emit a root schedule (fully transparent recovery)
//   --json              single mode: dump schedule tables as JSON;
//                       batch mode: emit the machine-readable batch report
//                       (per-task seed, schedulable flag, WCSL, evaluations,
//                       wall-clock, per-stage metrics; see docs/CLI.md)
//   --c-source          dump schedule tables as C source
//   --dot               dump the FT-CPG in GraphViz DOT
//   --gantt             render the fault-free and a worst-case Gantt chart
//
// Exit status: 0 if a schedulable configuration was found (in batch mode:
// every task synthesized without error), 2 otherwise, 1 on usage/parse
// errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "batch/batch_runner.h"
#include "core/pipeline.h"
#include "core/synthesis.h"
#include "ftcpg/builder.h"
#include "io/app_parser.h"
#include "sched/root_schedule.h"
#include "sched/table_export.h"
#include "sim/executor.h"
#include "sim/gantt.h"
#include "util/thread_pool.h"

using namespace ftes;

namespace {

struct CliOptions {
  std::string input;
  std::string batch_dir;
  std::uint64_t seed = 1;
  int iterations = 300;
  int threads = 1;
  bool speculate = false;
  long long stage_budget_ms = -1;
  long long total_budget_ms = -1;
  bool tables = true;
  bool root = false;
  bool json = false;
  bool c_source = false;
  bool dot = false;
  bool gantt = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: ftes_cli <problem.ftes> [--seed n] [--iterations n] "
               "[--threads n] [--speculate] [--stage-budget-ms n] "
               "[--total-budget-ms n] [--no-tables] [--root] [--json] "
               "[--c-source] [--dot] [--gantt]\n"
               "       ftes_cli --batch <dir> [--seed n] [--iterations n] "
               "[--threads n] [--stage-budget-ms n] [--total-budget-ms n] "
               "[--json]\n");
  return 1;
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--iterations" && i + 1 < argc) {
      opts.iterations = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = std::atoi(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      opts.batch_dir = argv[++i];
    } else if (arg == "--speculate") {
      opts.speculate = true;
    } else if (arg == "--stage-budget-ms" && i + 1 < argc) {
      opts.stage_budget_ms = std::atoll(argv[++i]);
    } else if (arg == "--total-budget-ms" && i + 1 < argc) {
      opts.total_budget_ms = std::atoll(argv[++i]);
    } else if (arg == "--no-tables") {
      opts.tables = false;
    } else if (arg == "--root") {
      opts.root = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--c-source") {
      opts.c_source = true;
    } else if (arg == "--dot") {
      opts.dot = true;
    } else if (arg == "--gantt") {
      opts.gantt = true;
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else if (opts.input.empty()) {
      opts.input = arg;
    } else {
      return false;
    }
  }
  return !opts.input.empty() || !opts.batch_dir.empty();
}

int run_batch_mode(const CliOptions& opts) {
  // Per-problem output flags have nowhere to go in the batch report
  // (--json switches the report itself to JSON instead), and speculation
  // only overlaps table generation, which batch mode never performs --
  // reject rather than silently ignore.
  if (opts.root || opts.c_source || opts.dot || opts.gantt ||
      opts.speculate) {
    std::fprintf(stderr,
                 "ftes_cli: --root/--c-source/--dot/--gantt/--speculate are "
                 "not available in --batch mode\n");
    return 1;
  }

  std::vector<BatchTask> tasks;
  try {
    tasks = load_batch_dir(opts.batch_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ftes_cli: %s\n", e.what());
    return 1;
  }
  if (tasks.empty()) {
    std::fprintf(stderr, "ftes_cli: no .ftes files under '%s'\n",
                 opts.batch_dir.c_str());
    return 1;
  }

  BatchOptions batch;
  batch.threads = opts.threads;
  batch.base_seed = opts.seed;
  batch.synthesis.optimize.iterations = opts.iterations;
  // Deadline watchdog per task: a pathological instance is cut short and
  // reported as timed out while the sweep continues.
  batch.synthesis.stage_budget_ms = opts.stage_budget_ms;
  batch.synthesis.total_budget_ms = opts.total_budget_ms;
  // The batch report only uses the analytic WCSL; building the
  // (exponential-in-k) schedule tables per task would dominate the run
  // and be thrown away.
  batch.synthesis.build_schedule_tables = false;

  const BatchReport report = run_batch(tasks, batch);
  if (opts.json) {
    std::printf("%s", format_batch_report_json(report).c_str());
  } else {
    std::printf("ftes batch: %zu problems, %d thread(s), %.2fs\n%s",
                tasks.size(), resolve_threads(opts.threads), report.seconds,
                format_batch_report(report).c_str());
  }
  return report.failed_count == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) return usage();
  if (opts.speculate && !opts.tables) {
    // Speculation only overlaps table generation: reject the combination
    // rather than silently ignore the flag.
    std::fprintf(stderr,
                 "ftes_cli: --speculate has nothing to overlap with "
                 "--no-tables\n");
    return 1;
  }
  if (!opts.batch_dir.empty()) {
    if (!opts.input.empty()) return usage();  // one mode at a time
    return run_batch_mode(opts);
  }

  std::ifstream in(opts.input);
  if (!in) {
    std::fprintf(stderr, "ftes_cli: cannot open '%s'\n", opts.input.c_str());
    return 1;
  }

  ParsedProblem problem;
  try {
    problem = parse_problem(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ftes_cli: %s: %s\n", opts.input.c_str(), e.what());
    return 1;
  }

  SynthesisOptions synth;
  synth.fault_model = problem.model;
  synth.optimize.iterations = opts.iterations;
  synth.optimize.seed = opts.seed;
  synth.optimize.threads = opts.threads;
  synth.build_schedule_tables = opts.tables;
  synth.speculate = opts.speculate;
  synth.stage_budget_ms = opts.stage_budget_ms;
  synth.total_budget_ms = opts.total_budget_ms;

  // Drive the stage pipeline directly so per-stage metrics can be shown.
  SynthesisContext ctx(problem.app, problem.arch, synth);
  Pipeline pipeline = Pipeline::default_pipeline();
  const SynthesisResult result = pipeline.run(ctx);

  std::printf("ftes: %d processes, %d messages, %d nodes, k = %d\n",
              problem.app.process_count(), problem.app.message_count(),
              problem.arch.node_count(), problem.model.k);
  std::printf("\nPolicy assignment and mapping:\n%s",
              result.assignment.summary(problem.app).c_str());
  std::printf("\nWCSL %lld / deadline %lld -> %s\n",
              static_cast<long long>(result.wcsl.makespan),
              static_cast<long long>(problem.app.deadline()),
              result.schedulable ? "schedulable" : "NOT schedulable");
  // No wall-clock here: single-mode stdout stays bit-identical across
  // --threads values (CI diffs it); timings live in the JSON/batch reports.
  std::printf("Stages:");
  for (const StageMetrics& m : pipeline.metrics()) {
    if (m.skipped) {
      std::printf("  %s skipped;", m.stage.c_str());
      continue;
    }
    const long long rows = m.cache_hits + m.cache_misses;
    std::printf("  %s %lld evals", m.stage.c_str(), m.evaluations);
    if (rows > 0) {
      std::printf(" (%.1f%% DP rows cached)",
                  100.0 * static_cast<double>(m.cache_hits) /
                      static_cast<double>(rows));
    }
    if (m.sched_events_total > 0) {
      std::printf(" (%.1f%% placements resumed)",
                  100.0 * static_cast<double>(m.sched_events_resumed) /
                      static_cast<double>(m.sched_events_total));
    }
    if (m.search_accepted > 0) {
      std::printf(" (%lld moves accepted)", m.search_accepted);
    }
    if (m.rebase_log_recorded > 0) {
      std::printf(" (%lld rebase logs resumed)", m.rebase_log_recorded);
    }
    // Only printed when the features fired, so default runs stay
    // bit-identical to older goldens; speculation hit/miss is itself
    // deterministic for a fixed seed and any --threads.
    if (m.spec_hits + m.spec_misses > 0) {
      std::printf(" (speculation %s)", m.spec_hits > 0 ? "hit" : "miss");
    }
    if (m.timed_out) std::printf(" timed out");
    std::printf(";");
  }
  std::printf("\n");

  if (result.schedule) {
    const ExecutionReport report = check_all_scenarios(
        problem.app, result.assignment, *result.schedule);
    std::printf("Schedule tables: %d entries over %d scenarios, validation %s\n",
                result.schedule->tables.total_entries(),
                result.schedule->scenario_count, report.ok ? "OK" : "FAILED");
    if (opts.json) {
      std::printf("%s", tables_to_json(result.schedule->tables, problem.arch)
                            .c_str());
    }
    if (opts.c_source) {
      std::printf("%s",
                  tables_to_c_source(result.schedule->tables, problem.arch)
                      .c_str());
    }
    if (opts.gantt && !result.schedule->traces.empty()) {
      std::printf("\nFault-free scenario:\n%s",
                  render_gantt(problem.app, problem.arch, result.assignment,
                               result.schedule->traces.front())
                      .c_str());
      // Worst scenario by makespan.
      const ScenarioTrace* worst = &result.schedule->traces.front();
      for (const ScenarioTrace& tr : result.schedule->traces) {
        if (tr.makespan > worst->makespan) worst = &tr;
      }
      std::printf("\nWorst scenario:\n%s",
                  render_gantt(problem.app, problem.arch, result.assignment,
                               *worst)
                      .c_str());
    }
  }

  if (opts.root) {
    const RootSchedule root = build_root_schedule(
        problem.app, problem.arch, result.assignment, problem.model);
    std::printf("\n%s", root.to_text(problem.app, problem.arch).c_str());
  }

  if (opts.dot) {
    const Ftcpg g =
        build_ftcpg(problem.app, result.assignment, problem.model);
    std::printf("%s", g.to_dot().c_str());
  }

  return result.schedulable ? 0 : 2;
}
