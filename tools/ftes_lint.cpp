// ftes_lint -- the project-invariant static-analysis pass.
//
// Proves, at the source level, the properties every dynamic check in this
// repo only samples: bit-identical results for any --threads count (R1/R2),
// bounded cooperative-cancellation latency (R3), float-free integer-scaled
// evaluation (R4), and the flattened hot paths PRs 2-3 bought (R5).  See
// docs/INVARIANTS.md for the catalogue and src/lint/ for the engine.
//
// Usage:
//   ftes_lint [--root DIR] [--baseline FILE] [--write-baseline FILE]
//             [--fix-annotations] [--require-justifications] [--list-rules]
//
//   --root DIR          tree to scan (default "."); src/, tools/, bench/
//                       under it are linted
//   --baseline FILE     swallow findings listed in FILE; fail only on new
//                       ones
//   --write-baseline F  write the current findings as a baseline to F and
//                       exit 0 (CI diffs this against the committed file)
//   --fix-annotations   insert `// lint: <tag> -- TODO(lint): ...`
//                       suppression comments above each suppressible
//                       finding, rewriting files in place
//   --require-justifications
//                       also fail on suppression annotations lacking a
//                       `-- why` part (the lint_tree ctest target sets this)
//   --list-rules        print the rule table and exit
//
// Exit status: 0 clean, 1 findings (or annotation hygiene failures),
// 2 usage/environment error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/engine.h"
#include "lint/rules.h"

namespace {

[[nodiscard]] bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

[[nodiscard]] bool write_file(const std::string& path,
                              const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return bool(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  bool fix = false;
  bool list_rules = false;
  ftes::lint::LintConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "ftes_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--baseline") {
      baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline_path = value("--write-baseline");
    } else if (arg == "--fix-annotations") {
      fix = true;
    } else if (arg == "--require-justifications") {
      config.require_justifications = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ftes_lint [--root DIR] [--baseline FILE] "
                   "[--write-baseline FILE] [--fix-annotations] "
                   "[--require-justifications] [--list-rules]\n";
      return 0;
    } else {
      std::cerr << "ftes_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  if (list_rules) {
    for (const ftes::lint::RuleInfo& r : ftes::lint::rule_table()) {
      std::printf("%-28s %-18s %s\n", r.id.c_str(),
                  r.tag.empty() ? "-" : r.tag.c_str(), r.summary.c_str());
    }
    return 0;
  }

  std::vector<ftes::lint::SourceFile> files =
      ftes::lint::load_tree(root, config);
  if (files.empty()) {
    std::cerr << "ftes_lint: nothing to scan under '" << root
              << "' (expected src/, tools/ or bench/)\n";
    return 2;
  }

  ftes::lint::LintResult result = ftes::lint::run_lint(files, config);

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::cerr << "ftes_lint: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    baseline = ftes::lint::parse_baseline(text);
  }
  ftes::lint::BaselineSplit split =
      ftes::lint::apply_baseline(result.diagnostics, baseline);

  if (!write_baseline_path.empty()) {
    const std::string rendered =
        ftes::lint::render_baseline(result.diagnostics);
    if (!write_file(write_baseline_path, rendered)) {
      std::cerr << "ftes_lint: cannot write '" << write_baseline_path
                << "'\n";
      return 2;
    }
    std::cout << "ftes_lint: wrote " << result.diagnostics.size()
              << " finding(s) to " << write_baseline_path << "\n";
    return 0;
  }

  if (fix) {
    const int inserted =
        ftes::lint::fix_annotations(&files, split.fresh);
    int rewritten = 0;
    for (const ftes::lint::SourceFile& f : files) {
      // Only files that gained an annotation changed; rewriting the rest
      // would churn mtimes for the whole tree.
      bool touched = false;
      for (const ftes::lint::Diagnostic& d : split.fresh) {
        if (d.file == f.path &&
            !ftes::lint::suppression_tag(d.rule).empty()) {
          touched = true;
          break;
        }
      }
      if (!touched) continue;
      if (!write_file(root + "/" + f.path, f.content)) {
        std::cerr << "ftes_lint: cannot rewrite '" << f.path << "'\n";
        return 2;
      }
      ++rewritten;
    }
    std::cout << "ftes_lint: inserted " << inserted
              << " suppression comment(s) across " << rewritten
              << " file(s); fill in every TODO(lint) justification\n";
    return 0;
  }

  for (const ftes::lint::Diagnostic& d : split.fresh) {
    std::cout << ftes::lint::format(d) << "\n";
  }
  std::cout << "ftes_lint: " << result.files_scanned << " file(s), "
            << split.fresh.size() << " new finding(s), "
            << split.grandfathered << " baselined, " << result.suppressed
            << " suppressed by annotation\n";
  return split.fresh.empty() ? 0 : 1;
}
