#!/usr/bin/env python3
"""CI soak harness for `ftes_cli --serve` (docs/SERVER.md).

Pipes a deterministic mixed stream of jobs -- valid, duplicated, garbage,
malformed, zero-budget -- into one server process with fault injection
armed on a fixed schedule, then asserts the robustness contract:

  * the server exits 0 with exactly one well-formed JSON response per job,
    in order, plus the final stats line;
  * every response carries a status from the typed taxonomy;
  * the mix deterministically exercises ok / parse_error / timed_out /
    cancelled, retries happen, and the result cache serves hits;
  * every armed fault site actually fired (no injected class went
    unexercised);
  * duplicate submissions that completed are answered byte-identically.

With --serve-jobs N (N > 1) the same stream additionally runs through a
concurrent server, and its output must be byte-identical to the serial
run modulo the wall-clock `seconds` field -- the --serve-jobs ordering
and determinism guarantee (docs/SERVER.md).

Usage: tools/serve_soak.py <path-to-ftes_cli> [--jobs N] [--serve-jobs N]
"""

import argparse
import json
import re
import subprocess
import sys

PROBLEM = (
    "arch nodes=2 slot=5\\nk 2\\ndeadline 600\\n"
    "process P1 wcet N1=20 N2=30 alpha=5 mu=5 chi=5\\n"
    "process P2 wcet N1=40 N2=60 alpha=5 mu=5 chi=5\\n"
    "process P3 wcet N1=60 alpha=5 mu=5 chi=5\\n"
    "message m1 P1 P2\\nmessage m2 P1 P3"
)

# Fault schedules are matched per job (job stream index + the job's own
# per-site hit count; see util/fault_injection.h), so the pipeline.stage
# rule fires once per pipeline-running job rather than on a global
# every-Nth-hit cadence.
INJECT = [
    "parse:throw:every=11",
    "pipeline.stage:bad-alloc:every=3:limit=1",
    "serve.job:cancel:every=17",
]


def make_stream(jobs):
    lines = []
    for i in range(jobs):
        kind = i % 5
        if kind == 0:
            lines.append(
                f"job id=ok{i} seed={(i // 5) % 3} iterations=20 tables=0 "
                f"text={PROBLEM}"
            )
        elif kind == 1:
            lines.append(
                f"job id=dup{i} seed=1 iterations=20 tables=0 text={PROBLEM}"
            )
        elif kind == 2:
            lines.append(f"job id=garbage{i} text=k k k not a problem")
        elif kind == 3:
            lines.append(f"job id=malformed{i} seed=1")
        else:
            lines.append(
                f"job id=budget{i} seed={1000 + i} tables=1 "
                f"total-budget-ms=0 text={PROBLEM}"
            )
    return "\n".join(lines) + "\n"


def raw_result(line):
    """The raw `\"result\": ...` bytes of a response line ('' if absent)."""
    at = line.find('"result": ')
    return line[at:-1] if at >= 0 else ""


def normalize_seconds(text):
    """Blanks the one wall-clock field of every response line."""
    return re.sub(r'"seconds": [0-9.eE+-]+', '"seconds": _', text)


def run_server(cli, stream, serve_jobs):
    cmd = [cli, "--serve", "--max-retries", "2"]
    if serve_jobs > 1:
        cmd += ["--serve-jobs", str(serve_jobs)]
    for spec in INJECT:
        cmd += ["--inject", spec]
    proc = subprocess.run(
        cmd,
        input=stream,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"server (serve_jobs={serve_jobs}) exited {proc.returncode}\n"
        f"stderr: {proc.stderr}"
    )
    return proc.stdout


def check_contract(lines, jobs, label):
    taxonomy = {
        "ok", "parse_error", "timed_out", "cancelled",
        "resource_exhausted", "internal",
    }
    seen = {}
    for i, line in enumerate(lines[:-1]):
        response = json.loads(line)  # well-formed JSON, or this throws
        assert response["status"] in taxonomy, f"{label}: {line}"
        seen.setdefault(response["status"], 0)
        seen[response["status"]] += 1
        # Responses arrive in request order: response i answers job i.
        prefix = ["ok", "dup", "garbage", "malformed", "budget"][i % 5]
        assert response["id"] == f"{prefix}{i}", (
            f"{label} line {i}: {response['id']}"
        )

    stats = json.loads(lines[-1])
    assert stats["status"] == "stats", f"{label}: {lines[-1]}"
    assert stats["jobs"] == jobs, f"{label}: {stats}"
    assert stats["responses"] == jobs, f"{label}: {stats}"
    classes = (
        stats["ok"] + stats["parse_error"] + stats["timed_out"]
        + stats["cancelled"] + stats["resource_exhausted"] + stats["internal"]
    )
    assert classes == jobs, f"{label}: taxonomy sum {classes} != {jobs}"
    assert stats["ok"] > 0, f"{label}: {stats}"
    assert stats["parse_error"] > 0, f"{label}: {stats}"
    assert stats["timed_out"] > 0, f"{label}: {stats}"
    assert stats["cancelled"] > 0, f"{label}: {stats}"
    assert stats["retries"] > 0, f"{label}: {stats}"
    assert stats["cache"]["hits"] > 0, f"{label}: {stats}"
    assert stats["cache"]["bytes"] <= stats["cache"]["budget"], (
        f"{label}: {stats}"
    )

    fi = stats["fault_injection"]
    for spec in INJECT:
        site = spec.split(":")[0]
        assert site in fi, f"{label}: site {site} never hit: {fi}"
        assert fi[site]["fired"] > 0, f"{label}: site {site} never fired: {fi}"

    payloads = {
        raw_result(line)
        for i, line in enumerate(lines[:-1])
        if i % 5 == 1 and json.loads(line)["status"] == "ok"
    }
    assert payloads, f"{label}: no duplicate job completed"
    assert len(payloads) == 1, (
        f"{label}: duplicate jobs answered with {len(payloads)} distinct "
        f"payloads"
    )
    return seen, stats


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("cli", help="path to the ftes_cli binary")
    ap.add_argument("--jobs", type=int, default=200)
    ap.add_argument(
        "--serve-jobs", type=int, default=0,
        help="additionally run the stream through a concurrent server of "
             "this width and byte-diff its output against the serial run",
    )
    args = ap.parse_args()

    stream = make_stream(args.jobs)
    serial_out = run_server(args.cli, stream, serve_jobs=1)
    lines = serial_out.splitlines()
    assert len(lines) == args.jobs + 1, (
        f"expected {args.jobs} responses + 1 stats line, got {len(lines)}"
    )
    seen, stats = check_contract(lines, args.jobs, "serial")

    diffed = ""
    if args.serve_jobs > 1:
        concurrent_out = run_server(args.cli, stream, args.serve_jobs)
        check_contract(
            concurrent_out.splitlines(), args.jobs,
            f"serve-jobs={args.serve_jobs}",
        )
        want = normalize_seconds(serial_out)
        got = normalize_seconds(concurrent_out)
        if want != got:
            for n, (a, b) in enumerate(
                zip(want.splitlines(), got.splitlines())
            ):
                if a != b:
                    sys.stderr.write(
                        f"first divergence at line {n}:\n"
                        f"  serial:     {a}\n"
                        f"  concurrent: {b}\n"
                    )
                    break
            raise AssertionError(
                f"--serve-jobs {args.serve_jobs} output is not "
                f"byte-identical to the serial run (modulo seconds)"
            )
        diffed = (
            f"; serve-jobs={args.serve_jobs} byte-identical modulo seconds"
        )

    counts = ", ".join(f"{k}={v}" for k, v in sorted(seen.items()))
    print(f"serve_soak: {args.jobs} jobs ok ({counts}; "
          f"cache hits={stats['cache']['hits']}, "
          f"retries={stats['retries']}{diffed})")


if __name__ == "__main__":
    sys.exit(main())
