#include "io/app_parser.h"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fault_injection.h"

namespace ftes {

namespace {

// Input caps: the parser fronts untrusted job streams (ftes_cli --serve),
// so structurally valid but absurd values must fail here with a line
// diagnostic instead of turning into multi-gigabyte allocations
// (nodes=1e9), divisions by zero (payload=0), or downstream Time
// overflow (k+1 re-executions of a near-kTimeInfinity WCET).
constexpr int kMaxNodes = 1024;
constexpr int kMaxFaults = 64;
constexpr Time kMaxMagnitude = 1'000'000'000'000'000;  // 1e15 ticks

struct ParserState {
  int line = 0;
  bool have_arch = false;
  int node_count = 0;
  Time slot = 0;
  std::int64_t payload = 1;
  std::map<std::string, ProcessId> process_by_name;

  [[noreturn]] void error(const std::string& what) const {
    throw std::invalid_argument("line " + std::to_string(line) + ": " + what);
  }
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

/// Splits "key=value"; returns false if '=' absent.
bool split_kv(const std::string& tok, std::string& key, std::string& value) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos) return false;
  key = tok.substr(0, eq);
  value = tok.substr(eq + 1);
  return true;
}

Time parse_time(const ParserState& st, const std::string& s) {
  Time v = 0;
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    v = static_cast<Time>(parsed);
  } catch (const std::exception&) {
    st.error("expected an integer, got '" + s + "'");
  }
  if (v > kMaxMagnitude || v < -kMaxMagnitude) {
    st.error("value '" + s + "' exceeds the supported magnitude (1e15)");
  }
  return v;
}

Time parse_nonneg(const ParserState& st, const std::string& s,
                  const std::string& what) {
  const Time v = parse_time(st, s);
  if (v < 0) st.error(what + " must be non-negative, got '" + s + "'");
  return v;
}

NodeId parse_node(const ParserState& st, const std::string& s) {
  if (s.size() < 2 || s[0] != 'N') st.error("expected a node name, got '" + s + "'");
  const Time index = parse_time(st, s.substr(1));
  if (index < 1 || index > st.node_count) {
    st.error("node '" + s + "' out of range (arch has " +
             std::to_string(st.node_count) + " nodes)");
  }
  return NodeId{static_cast<std::int32_t>(index - 1)};
}

void parse_process(ParserState& st, const std::vector<std::string>& tokens,
                   Application& app) {
  if (!st.have_arch) st.error("'process' before 'arch'");
  if (tokens.size() < 4 || tokens[2] != "wcet") {
    st.error("expected: process <name> wcet N<i>=<t> ...");
  }
  Process p;
  p.name = tokens[1];
  if (st.process_by_name.count(p.name)) {
    st.error("duplicate process '" + p.name + "'");
  }
  std::size_t i = 3;
  std::string key, value;
  // WCET pairs until the first non-node key.
  for (; i < tokens.size(); ++i) {
    if (!split_kv(tokens[i], key, value) || key.empty() || key[0] != 'N') break;
    p.wcet[parse_node(st, key)] = parse_nonneg(st, value, "wcet");
  }
  if (p.wcet.empty()) st.error("process '" + p.name + "' has no WCET entries");
  for (; i < tokens.size(); ++i) {
    if (tokens[i] == "frozen") {
      p.frozen = true;
      continue;
    }
    if (!split_kv(tokens[i], key, value)) {
      st.error("unexpected token '" + tokens[i] + "'");
    }
    if (key == "alpha") {
      p.alpha = parse_nonneg(st, value, "alpha");
    } else if (key == "mu") {
      p.mu = parse_nonneg(st, value, "mu");
    } else if (key == "chi") {
      p.chi = parse_nonneg(st, value, "chi");
    } else if (key == "map") {
      p.fixed_mapping = parse_node(st, value);
    } else if (key == "deadline") {
      p.local_deadline = parse_nonneg(st, value, "deadline");
    } else if (key == "release") {
      p.release = parse_nonneg(st, value, "release");
    } else if (key == "policy") {
      if (value == "checkpointing") {
        p.fixed_policy = PolicyKind::kCheckpointing;
      } else if (value == "replication") {
        p.fixed_policy = PolicyKind::kReplication;
      } else if (value == "hybrid") {
        p.fixed_policy = PolicyKind::kReplicationAndCheckpointing;
      } else {
        st.error("policy= expects checkpointing|replication|hybrid");
      }
    } else if (key == "soft") {
      SoftSpec soft;
      std::istringstream parts(value);
      std::string u, d, w;
      if (!std::getline(parts, u, ':') || !std::getline(parts, d, ':') ||
          !std::getline(parts, w, ':')) {
        st.error("soft= expects utility:deadline:window");
      }
      soft.utility = static_cast<double>(parse_time(st, u));
      soft.soft_deadline = parse_time(st, d);
      soft.window = parse_time(st, w);
      p.soft = soft;
    } else {
      st.error("unknown process attribute '" + key + "'");
    }
  }
  const std::string name = p.name;
  st.process_by_name[name] = app.add_process(std::move(p));
}

void parse_message(ParserState& st, const std::vector<std::string>& tokens,
                   Application& app) {
  if (tokens.size() < 4) {
    st.error("expected: message <name> <src> <dst> [size=..] [frozen]");
  }
  Message m;
  m.name = tokens[1];
  auto src = st.process_by_name.find(tokens[2]);
  auto dst = st.process_by_name.find(tokens[3]);
  if (src == st.process_by_name.end()) st.error("unknown process '" + tokens[2] + "'");
  if (dst == st.process_by_name.end()) st.error("unknown process '" + tokens[3] + "'");
  m.src = src->second;
  m.dst = dst->second;
  std::string key, value;
  for (std::size_t i = 4; i < tokens.size(); ++i) {
    if (tokens[i] == "frozen") {
      m.frozen = true;
    } else if (split_kv(tokens[i], key, value) && key == "size") {
      m.size = parse_nonneg(st, value, "size");
    } else {
      st.error("unknown message attribute '" + tokens[i] + "'");
    }
  }
  app.add_message(std::move(m));
}

}  // namespace

ParsedProblem parse_problem(std::istream& in) {
  FTES_FAULT_POINT("parse");
  ParsedProblem problem;
  ParserState st;
  std::string line;
  bool have_deadline = false;
  while (std::getline(in, line)) {
    ++st.line;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    if (head == "arch") {
      std::string key, value;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (!split_kv(tokens[i], key, value)) st.error("expected key=value");
        if (key == "nodes") {
          st.node_count = static_cast<int>(parse_time(st, value));
        } else if (key == "slot") {
          st.slot = parse_time(st, value);
        } else if (key == "payload") {
          st.payload = parse_time(st, value);
        } else {
          st.error("unknown arch attribute '" + key + "'");
        }
      }
      if (st.node_count < 1 || st.slot < 1) {
        st.error("arch needs nodes>=1 and slot>=1");
      }
      if (st.node_count > kMaxNodes) {
        st.error("nodes=" + std::to_string(st.node_count) +
                 " exceeds the supported maximum (" +
                 std::to_string(kMaxNodes) + ")");
      }
      if (st.payload < 1) st.error("arch needs payload>=1");
      problem.arch = Architecture::homogeneous(st.node_count, st.slot);
      problem.arch.bus().set_slot_payload(st.payload);
      st.have_arch = true;
    } else if (head == "k") {
      if (tokens.size() != 2) st.error("expected: k <faults>");
      problem.model.k = static_cast<int>(parse_time(st, tokens[1]));
      if (problem.model.k > kMaxFaults) {
        st.error("k=" + tokens[1] + " exceeds the supported maximum (" +
                 std::to_string(kMaxFaults) + ")");
      }
    } else if (head == "deadline") {
      if (tokens.size() != 2) st.error("expected: deadline <ticks>");
      problem.app.set_deadline(parse_time(st, tokens[1]));
      have_deadline = true;
    } else if (head == "process") {
      parse_process(st, tokens, problem.app);
    } else if (head == "message") {
      parse_message(st, tokens, problem.app);
    } else {
      st.error("unknown directive '" + head + "'");
    }
  }
  if (!st.have_arch) throw std::invalid_argument("missing 'arch' directive");
  if (!have_deadline) throw std::invalid_argument("missing 'deadline' directive");
  problem.model.validate();
  problem.app.validate(problem.arch);
  return problem;
}

ParsedProblem parse_problem_string(const std::string& text) {
  std::istringstream in(text);
  return parse_problem(in);
}

}  // namespace ftes
