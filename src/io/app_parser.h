// Text format for synthesis problems, used by the ftes_cli tool and handy
// for regression fixtures.  Line-oriented; '#' starts a comment.
//
//   arch nodes=<n> slot=<ticks> [payload=<units>]
//   k <faults>
//   deadline <ticks>
//   process <name> wcet <Node>=<ticks> [<Node>=<ticks> ...]
//           [alpha=<t>] [mu=<t>] [chi=<t>] [frozen] [map=<Node>]
//           [deadline=<t>] [release=<t>]
//           [soft=<utility>:<soft_deadline>:<window>]
//   message <name> <src> <dst> [size=<units>] [frozen]
//
// Nodes are named N1..Nn.  Declarations may appear in any order except that
// messages must follow the processes they reference.
#pragma once

#include <istream>
#include <string>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"

namespace ftes {

struct ParsedProblem {
  Application app;
  Architecture arch;
  FaultModel model;
};

/// Parses a problem; throws std::invalid_argument with "line N: ..." on
/// syntax or consistency errors.
[[nodiscard]] ParsedProblem parse_problem(std::istream& in);
[[nodiscard]] ParsedProblem parse_problem_string(const std::string& text);

}  // namespace ftes
