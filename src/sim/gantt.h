// ASCII Gantt rendering of scenario traces -- the visual aid the examples
// and the CLI use to show what a fault scenario does to the timeline.
//
// One lane per node plus one for the bus; executions print as `#` blocks
// (lower-case `x` for the portion re-executed after faults, `!` at a
// death), transmissions as `=`, idle as `.`.
#pragma once

#include <string>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/policy.h"
#include "sched/cond_scheduler.h"

namespace ftes {

struct GanttOptions {
  int width = 80;  ///< characters available for the time axis
};

/// Renders one scenario trace.
[[nodiscard]] std::string render_gantt(const Application& app,
                                       const Architecture& arch,
                                       const PolicyAssignment& assignment,
                                       const ScenarioTrace& trace,
                                       const GanttOptions& options = {});

}  // namespace ftes
