#include "sim/fuzzer.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fault/recovery.h"
#include "sim/executor.h"
#include "sim/fault_injector.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftes {

const char* to_string(FuzzKind kind) {
  switch (kind) {
    case FuzzKind::kDeadlineMiss: return "deadline-miss";
    case FuzzKind::kTableGap: return "table-gap";
    case FuzzKind::kGuardNotEntailed: return "guard-not-entailed";
    case FuzzKind::kNotReady: return "not-ready";
    case FuzzKind::kOverlap: return "overlap";
    case FuzzKind::kFrozenDivergence: return "frozen-divergence";
    case FuzzKind::kSlotMisaligned: return "slot-misaligned";
  }
  return "unknown";
}

std::optional<FuzzKind> fuzz_kind_from_string(const std::string& name) {
  for (FuzzKind k :
       {FuzzKind::kDeadlineMiss, FuzzKind::kTableGap,
        FuzzKind::kGuardNotEntailed, FuzzKind::kNotReady, FuzzKind::kOverlap,
        FuzzKind::kFrozenDivergence, FuzzKind::kSlotMisaligned}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

namespace {

[[nodiscard]] std::vector<int> scenario_key(const FaultScenario& s) {
  std::vector<int> key;
  for (const auto& [ref, count] : s.hits()) {
    if (count <= 0) continue;
    key.push_back(ref.process.get());
    key.push_back(ref.copy);
    key.push_back(count);
  }
  return key;
}

[[nodiscard]] int clamp_scale(int s) {
  return std::min(kFuzzScaleOne, std::max(1, s));
}

/// Scaled-down span: never below one tick (a zero-length execution or an
/// instantaneous fault would be inadmissible).
[[nodiscard]] Time scale_span(Time span, int scale) {
  if (span <= 0) return span;
  return std::max<Time>(1, span * static_cast<Time>(clamp_scale(scale)) /
                               kFuzzScaleOne);
}

}  // namespace

/// Static per-copy data shared by all replays (the fuzzer-side mirror of
/// the conditional scheduler's CopyInfo).
struct ScheduleFuzzer::CopyInfo {
  CopyRef ref;
  NodeId node;
  RecoveryParams params;
  int checkpoints = 0;  ///< 0 = pure replica
  int recoveries = 0;
  Time release = 0;
  bool frozen = false;
  std::string name;  ///< display: "P1" or "P1(2)"
  bool has_pin = false;
  Time pin = 0;  ///< frozen start pin from the schedule
};

struct ScheduleFuzzer::Replayed {
  ScenarioTrace trace;  ///< logical starts (for execute_scenario)
  std::vector<FuzzViolation> violations;
  Time completion = 0;
};

ScheduleFuzzer::~ScheduleFuzzer() = default;

int ScheduleFuzzer::copy_count() const {
  return static_cast<int>(copies_.size());
}

ScheduleFuzzer::ScheduleFuzzer(const Application& app,
                               const Architecture& arch,
                               const PolicyAssignment& assignment,
                               const FaultModel& model,
                               const CondScheduleResult& schedule)
    : app_(app), arch_(arch), pa_(assignment), model_(model),
      schedule_(schedule) {
  if (schedule_.traces.empty()) {
    throw std::invalid_argument(
        "fuzzer needs a schedule with per-scenario traces");
  }

  first_copy_.assign(static_cast<std::size_t>(app_.process_count()) + 1, 0);
  for (int i = 0; i < app_.process_count(); ++i) {
    first_copy_[static_cast<std::size_t>(i) + 1] =
        first_copy_[static_cast<std::size_t>(i)] +
        pa_.plan(ProcessId{i}).copy_count();
  }
  for (int i = 0; i < app_.process_count(); ++i) {
    const ProcessId pid{i};
    const Process& proc = app_.process(pid);
    const ProcessPlan& plan = pa_.plan(pid);
    for (int j = 0; j < plan.copy_count(); ++j) {
      const CopyPlan& cp = plan.copies[static_cast<std::size_t>(j)];
      CopyInfo info;
      info.ref = CopyRef{pid, j};
      info.node = cp.node;
      info.params = RecoveryParams{proc.wcet_on(cp.node), proc.alpha, proc.mu,
                                   proc.chi};
      info.checkpoints = cp.checkpoints;
      info.recoveries = cp.recoveries;
      info.release = proc.release;
      info.name = plan.copy_count() > 1
                      ? proc.name + "(" + std::to_string(j + 1) + ")"
                      : proc.name;
      const auto pin = schedule_.frozen_starts.find(info.name);
      if (pin != schedule_.frozen_starts.end()) {
        info.frozen = true;
        info.has_pin = true;
        info.pin = pin->second;
      }
      assert(copy_at(pid.get(), j) == static_cast<int>(copies_.size()));
      copies_.push_back(std::move(info));
    }
  }

  for (std::size_t t = 0; t < schedule_.traces.size(); ++t) {
    trace_index_.emplace(scenario_key(schedule_.traces[t].scenario), t);
  }
}

const ScenarioTrace& ScheduleFuzzer::trace_for(
    const FaultScenario& scenario) const {
  const auto it = trace_index_.find(scenario_key(scenario));
  if (it == trace_index_.end()) {
    throw std::invalid_argument("scenario " + scenario.to_string(app_) +
                                " is not covered by the schedule");
  }
  return schedule_.traces[it->second];
}

ScheduleFuzzer::Replayed ScheduleFuzzer::replay_trace(
    const FuzzPerturbation& p) const {
  const ScenarioTrace& nom = trace_for(p.scenario);
  Replayed out;
  out.trace.scenario = p.scenario;
  std::vector<FuzzViolation>& bad = out.violations;
  const std::string scen = " in scenario " + p.scenario.to_string(app_);

  // Nominal condition values of this scenario: an entry is outcome-
  // consistent when every guard literal names a condition this scenario
  // reveals, with the revealed value.
  // lint: cold-path -- per-trial replay bookkeeping in the fuzz harness;
  // fuzzing runs after synthesis, never inside move evaluation
  std::map<int, bool> nominal_value;
  for (const Reveal& r : nom.reveals) nominal_value[r.cond_id] = r.value;
  auto consistent = [&](const Guard& g) {
    for (const Literal& lit : g.literals()) {
      const auto it = nominal_value.find(lit.vertex);
      if (it == nominal_value.end() || it->second != lit.faulted) return false;
    }
    return true;
  };

  // The table entry the run-time scheduler fires for one activation.  Fast
  // path: the entry at the nominal start (correct tables replay
  // identically).  Fallback: the earliest outcome-consistent entry of the
  // label (a corrupted table still fires *something*, at the wrong time).
  // Neither: a table gap; the replay continues at the nominal start so one
  // corruption yields one focused violation instead of a cascade.
  auto fired_start = [&](const TableRows& rows, const std::string& row,
                         const std::string& label, Time nominal_start,
                         const std::string& what) {
    const auto it = rows.find(row);
    if (it != rows.end()) {
      for (const TableEntry& e : it->second) {
        if (e.start == nominal_start && e.label == label &&
            consistent(e.guard)) {
          return nominal_start;
        }
      }
      for (const TableEntry& e : it->second) {  // sorted by start
        if (e.label == label && consistent(e.guard)) return e.start;
      }
    }
    bad.push_back(
        {FuzzKind::kTableGap, "no table entry for " + what + scen});
    return nominal_start;
  };

  auto scale_at = [](const std::vector<int>& v, std::size_t i) {
    if (v.empty() || i >= v.size()) return kFuzzScaleOne;
    return clamp_scale(v[i]);
  };

  // ---- pass 1: executions ---------------------------------------------
  // Activation starts come from the tables; completions, fault arrivals
  // and condition reveals move with the perturbation.
  const std::size_t n_copies = copies_.size();
  std::vector<Time> end2(n_copies, 0);
  std::vector<char> died2(n_copies, 0);
  // cond_id -> replayed reveal time
  // lint: cold-path -- per-trial replay bookkeeping in the fuzz harness
  std::map<int, Time> reveal_at;
  out.trace.execs.reserve(nom.execs.size());

  for (const ExecTrace& e : nom.execs) {
    const std::size_t gi = static_cast<std::size_t>(
        copy_at(e.copy.process.get(), e.copy.copy));
    const CopyInfo& ci = copies_[gi];
    const TableRows& rows = schedule_.tables.node_rows.at(
        static_cast<std::size_t>(ci.node.get()));
    const int n = std::max(ci.checkpoints, 1);
    const int r_cond = ci.checkpoints >= 1 ? ci.recoveries : 0;
    const int es = scale_at(p.exec_scale, gi);
    const int as = scale_at(p.arrival_scale, gi);

    std::vector<Time> starts;
    starts.reserve(e.attempt_starts.size());
    for (std::size_t a = 0; a < e.attempt_starts.size(); ++a) {
      const std::string label = ci.name + "/" + std::to_string(a + 1);
      starts.push_back(fired_start(rows, ci.name, label, e.attempt_starts[a],
                                   "attempt " + label));
    }

    // Perturbed fault arrivals: fault j strikes during attempt j-1, at an
    // admissible fraction of its worst-case in-attempt offset.
    const int revealed_faults = e.died ? r_cond + 1 : e.faults;
    std::vector<Time> occ(static_cast<std::size_t>(revealed_faults) + 1, 0);
    for (int j = 1; j <= revealed_faults; ++j) {
      const std::size_t a = static_cast<std::size_t>(j - 1);
      const Time rel = fault_occurrence_offset(ci.params, n, j) -
                       (e.attempt_starts[a] - e.start);
      occ[static_cast<std::size_t>(j)] = starts[a] + scale_span(rel, as);
    }
    // A recovery may only fire after its fault is detected and the
    // checkpoint restored.
    for (int j = 1; j <= revealed_faults; ++j) {
      const std::size_t a = static_cast<std::size_t>(j);
      if (a >= starts.size()) break;  // the killing fault has no recovery
      const Time ready =
          occ[static_cast<std::size_t>(j)] + ci.params.alpha + ci.params.mu;
      if (starts[a] < ready) {
        bad.push_back({FuzzKind::kNotReady,
                       "recovery " + ci.name + "/" + std::to_string(a + 1) +
                           " fires at t=" + std::to_string(starts[a]) +
                           " before recovery readiness at t=" +
                           std::to_string(ready) + scen});
      }
    }

    Time end = 0;
    if (e.died) {
      end = occ[static_cast<std::size_t>(r_cond + 1)] + ci.params.alpha;
    } else {
      const Time tail = e.end - e.attempt_starts.back();
      end = starts.back() + scale_span(tail, es);
    }

    // Condition reveals, mirroring the conditional scheduler's semantics.
    const int last_reveal =
        e.died ? r_cond + 1 : std::min(e.faults + 1, r_cond);
    for (int j = 1; j <= last_reveal; ++j) {
      const bool value = e.died || j <= e.faults;
      const Time at = value ? occ[static_cast<std::size_t>(j)] : end;
      const int cond = schedule_.tables.conds.find(ci.ref, j);
      if (cond < 0) continue;  // never scheduled; nothing to reveal
      reveal_at[cond] = at;
      out.trace.reveals.push_back(Reveal{cond, value, at});
    }

    if (ci.has_pin && starts.front() != ci.pin) {
      bad.push_back({FuzzKind::kFrozenDivergence,
                     "frozen process " + ci.name + " starts at t=" +
                         std::to_string(starts.front()) +
                         " instead of its pinned t=" +
                         std::to_string(ci.pin) + scen});
    }

    ExecTrace rexec;
    rexec.copy = e.copy;
    rexec.start = starts.front();
    rexec.end = end;
    rexec.died = e.died;
    rexec.faults = e.faults;
    rexec.attempt_starts = std::move(starts);
    end2[gi] = end;
    died2[gi] = e.died ? 1 : 0;
    out.trace.execs.push_back(std::move(rexec));
  }

  // ---- pass 2: bus transmissions --------------------------------------
  // A phase offset phi shifts every TDMA slot [s, s+len) to [s+phi', ...):
  // the fired entry keeps its logical (table) start, the physical
  // transmission lands in the matching shifted slot.
  const TdmaBus& bus = arch_.bus();
  const Time round = bus.round_length();
  const Time phi =
      round > 0 ? ((p.bus_phase % round) + round) % round : 0;
  const Time base = phi == 0 ? 0 : phi - round;  // <= 0, keeps args positive

  std::vector<Time> tx_start_phys(nom.txs.size(), 0);
  std::vector<Time> tx_finish(nom.txs.size(), 0);
  // Per-trial replay scratch (fuzz harness, off the move-eval path):
  // cond_id -> broadcast finish, msgs carried by a frozen sync tx,
  // (msg, src copy) -> finish, msg -> sync finish.
  std::map<int, Time> cond_tx_finish;    // lint: cold-path -- see above
  std::set<std::int32_t> frozen_msgs;    // lint: cold-path -- see above
  std::map<std::pair<std::int32_t, int>, Time> data_tx_finish;  // lint: cold-path -- see above
  std::map<std::int32_t, Time> sync_finish;  // lint: cold-path -- see above
  out.trace.txs.reserve(nom.txs.size());

  for (std::size_t ti = 0; ti < nom.txs.size(); ++ti) {
    const TxTrace& tx = nom.txs[ti];
    std::string row, label;
    std::int64_t size = 1;
    if (tx.is_condition) {
      row = schedule_.tables.conds.label(tx.cond_id);
    } else {
      const Message& m = app_.message(tx.msg);
      row = m.name;
      label = m.name;
      if (tx.src_copy >= 0 && pa_.plan(m.src).copy_count() > 1) {
        label += "(" + std::to_string(tx.src_copy + 1) + ")";
      }
      size = m.size;
    }
    const std::string what =
        "bus transmission " + (label.empty() ? row : label);
    const Time table_start = fired_start(schedule_.tables.bus_rows, row,
                                         label, tx.start, what);
    if (phi == 0 &&
        bus.next_slot_start(tx.sender, table_start) != table_start) {
      bad.push_back({FuzzKind::kSlotMisaligned,
                     "bus entry " + (label.empty() ? row : label) + " at t=" +
                         std::to_string(table_start) +
                         " is not a slot start of its sender" + scen});
    }
    const Time phys_start =
        base + bus.next_slot_start(tx.sender, table_start - base);
    const Time phys_finish =
        base + bus.transmission_finish(tx.sender, phys_start - base, size);

    // Data / detection readiness of the transmission under perturbation.
    Time ready = 0;
    if (tx.is_condition) {
      const auto it = reveal_at.find(tx.cond_id);
      if (it != reveal_at.end()) ready = it->second;
      cond_tx_finish[tx.cond_id] = phys_finish;
    } else if (tx.src_copy < 0) {
      // Frozen sync: ready once the earliest surviving producer copy
      // completed (and never before the transparency pin).
      const Message& m = app_.message(tx.msg);
      const ProcessPlan& sp = pa_.plan(m.src);
      Time earliest = kTimeInfinity;
      for (int sj = 0; sj < sp.copy_count(); ++sj) {
        const std::size_t gi =
            static_cast<std::size_t>(copy_at(m.src.get(), sj));
        if (!died2[gi]) earliest = std::min(earliest, end2[gi]);
      }
      ready = earliest == kTimeInfinity ? 0 : earliest;
      const auto pin = schedule_.frozen_starts.find(m.name);
      if (pin != schedule_.frozen_starts.end()) {
        ready = std::max(ready, pin->second);
      }
      frozen_msgs.insert(tx.msg.get());
      sync_finish[tx.msg.get()] = phys_finish;
    } else {
      ready = end2[static_cast<std::size_t>(
          copy_at(app_.message(tx.msg).src.get(), tx.src_copy))];
      data_tx_finish[{tx.msg.get(), tx.src_copy}] = phys_finish;
    }
    if (phys_start < ready) {
      bad.push_back({FuzzKind::kNotReady,
                     what + " fires at t=" + std::to_string(phys_start) +
                         " before its data is ready at t=" +
                         std::to_string(ready) + scen});
    }

    if (!tx.is_condition && app_.message(tx.msg).frozen) {
      const auto pin = schedule_.frozen_starts.find(app_.message(tx.msg).name);
      if (pin != schedule_.frozen_starts.end() &&
          table_start != pin->second) {
        bad.push_back({FuzzKind::kFrozenDivergence,
                       "frozen message " + app_.message(tx.msg).name +
                           " transmitted at t=" +
                           std::to_string(table_start) +
                           " instead of its pinned t=" +
                           std::to_string(pin->second) + scen});
      }
    }

    tx_start_phys[ti] = phys_start;
    tx_finish[ti] = phys_finish;
    TxTrace rtx = tx;
    rtx.ready = ready;
    rtx.start = table_start;  // logical activation (execute_scenario checks)
    rtx.finish = phys_finish;
    out.trace.txs.push_back(rtx);
  }

  // ---- pass 3: message resolution & first-attempt readiness -----------
  // Mirrors the conditional scheduler's policy: local consumers at the
  // producer's end, remote data at the transmission's finish, dead-copy
  // remote at the death broadcast's finish (or the producer's end under
  // idealized signalling), frozen syncs resolve every consumer.
  std::vector<Time> data_ready(n_copies, 0);
  auto raise = [&](int dst, Time at) {
    Time& r = data_ready[static_cast<std::size_t>(dst)];
    r = std::max(r, at);
  };
  for (int mi = 0; mi < app_.message_count(); ++mi) {
    const Message& m = app_.message(MessageId{mi});
    const ProcessPlan& sp = pa_.plan(m.src);
    const ProcessPlan& dp = pa_.plan(m.dst);
    if (frozen_msgs.count(mi) > 0) {
      const Time fin = sync_finish[mi];
      for (int dj = 0; dj < dp.copy_count(); ++dj) {
        raise(copy_at(m.dst.get(), dj), fin);
      }
      continue;
    }
    for (int sj = 0; sj < sp.copy_count(); ++sj) {
      const std::size_t gi = static_cast<std::size_t>(copy_at(m.src.get(), sj));
      const CopyInfo& sci = copies_[gi];
      for (int dj = 0; dj < dp.copy_count(); ++dj) {
        const int gd = copy_at(m.dst.get(), dj);
        if (copies_[static_cast<std::size_t>(gd)].node == sci.node) {
          raise(gd, end2[gi]);
          continue;
        }
        if (!died2[gi]) {
          const auto f = data_tx_finish.find({mi, sj});
          raise(gd, f != data_tx_finish.end() ? f->second : end2[gi]);
        } else {
          const int r_cond = sci.checkpoints >= 1 ? sci.recoveries : 0;
          const int death = schedule_.tables.conds.find(sci.ref, r_cond + 1);
          const auto f = cond_tx_finish.find(death);
          raise(gd, f != cond_tx_finish.end() ? f->second : end2[gi]);
        }
      }
    }
  }
  for (std::size_t gi = 0; gi < n_copies; ++gi) {
    const CopyInfo& ci = copies_[gi];
    const ExecTrace* rexec = nullptr;
    for (const ExecTrace& e : out.trace.execs) {
      if (e.copy == ci.ref) { rexec = &e; break; }
    }
    if (rexec == nullptr) continue;
    const Time needed = std::max(data_ready[gi], ci.release);
    if (rexec->start < needed) {
      bad.push_back({FuzzKind::kNotReady,
                     ci.name + " starts at t=" +
                         std::to_string(rexec->start) +
                         " before its inputs are ready at t=" +
                         std::to_string(needed) + scen});
    }
  }

  // ---- pass 4: resource overlap ---------------------------------------
  struct Interval {
    Time start;
    Time end;
    std::string name;
  };
  auto check_overlaps = [&](std::vector<Interval>& iv, const std::string& on) {
    std::sort(iv.begin(), iv.end(), [](const Interval& a, const Interval& b) {
      if (a.start != b.start) return a.start < b.start;
      return a.name < b.name;
    });
    Time busy_until = 0;
    const std::string* owner = nullptr;
    for (const Interval& x : iv) {
      if (owner != nullptr && x.start < busy_until) {
        bad.push_back({FuzzKind::kOverlap,
                       *owner + " and " + x.name + " overlap" + on + scen});
      }
      if (x.end > busy_until || owner == nullptr) {
        busy_until = std::max(busy_until, x.end);
        owner = &x.name;
      }
    }
  };
  std::vector<std::vector<Interval>> per_node(
      static_cast<std::size_t>(arch_.node_count()));
  for (const ExecTrace& e : out.trace.execs) {
    const std::size_t gi = static_cast<std::size_t>(
        copy_at(e.copy.process.get(), e.copy.copy));
    const CopyInfo& ci = copies_[gi];
    if (e.end <= e.start) continue;
    per_node[static_cast<std::size_t>(ci.node.get())].push_back(
        Interval{e.start, e.end, ci.name});
  }
  for (int ni = 0; ni < arch_.node_count(); ++ni) {
    check_overlaps(per_node[static_cast<std::size_t>(ni)],
                   " on node " + arch_.node(NodeId{ni}).name);
  }
  std::vector<Interval> bus_iv;
  for (std::size_t ti = 0; ti < nom.txs.size(); ++ti) {
    const TxTrace& tx = nom.txs[ti];
    const std::string name =
        tx.is_condition ? schedule_.tables.conds.label(tx.cond_id)
                        : app_.message(tx.msg).name;
    if (tx_finish[ti] <= tx_start_phys[ti]) continue;
    bus_iv.push_back(
        Interval{tx_start_phys[ti], tx_finish[ti], "bus " + name});
  }
  check_overlaps(bus_iv, "");

  // ---- the paper's own checks over the replayed trace ------------------
  Time makespan = 0;
  for (std::size_t gi = 0; gi < n_copies; ++gi) {
    if (!died2[gi]) makespan = std::max(makespan, end2[gi]);
  }
  for (std::size_t ti = 0; ti < nom.txs.size(); ++ti) {
    if (!nom.txs[ti].is_condition) {
      makespan = std::max(makespan, tx_finish[ti]);
    }
  }
  out.trace.makespan = makespan;
  out.completion = makespan;
  std::sort(out.trace.reveals.begin(), out.trace.reveals.end(),
            [](const Reveal& a, const Reveal& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.cond_id < b.cond_id;
            });
  const ExecutionReport rep =
      execute_scenario(app_, pa_, schedule_, out.trace);
  for (const std::string& v : rep.violations) {
    const FuzzKind kind = v.find("no entailed table entry") !=
                                  std::string::npos
                              ? FuzzKind::kGuardNotEntailed
                              : FuzzKind::kDeadlineMiss;
    bad.push_back({kind, v});
  }

  std::sort(bad.begin(), bad.end(),
            [](const FuzzViolation& a, const FuzzViolation& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.message < b.message;
            });
  bad.erase(std::unique(bad.begin(), bad.end()), bad.end());
  return out;
}

std::vector<FuzzViolation> ScheduleFuzzer::replay(
    const FuzzPerturbation& perturbation) const {
  return replay_trace(perturbation).violations;
}

Time ScheduleFuzzer::replay_completion(
    const FuzzPerturbation& perturbation) const {
  return replay_trace(perturbation).completion;
}

FuzzPerturbation ScheduleFuzzer::random_perturbation(
    std::uint64_t trial_seed, const FuzzOptions& options) const {
  Rng rng(trial_seed);
  FuzzPerturbation p;
  const int faults = static_cast<int>(rng.uniform_int(0, model_.k));
  p.scenario = random_scenario(app_, pa_, faults, rng);
  const int min_es = clamp_scale(options.min_exec_scale);
  const int min_as = clamp_scale(options.min_arrival_scale);
  p.exec_scale.reserve(copies_.size());
  p.arrival_scale.reserve(copies_.size());
  for (std::size_t i = 0; i < copies_.size(); ++i) {
    p.exec_scale.push_back(
        static_cast<int>(rng.uniform_int(min_es, kFuzzScaleOne)));
    p.arrival_scale.push_back(
        static_cast<int>(rng.uniform_int(min_as, kFuzzScaleOne)));
  }
  p.bus_phase = options.phase_offsets.empty()
                    ? 0
                    : options.phase_offsets[rng.index(
                          options.phase_offsets.size())];
  return p;
}

FuzzReport ScheduleFuzzer::fuzz(const FuzzOptions& options) const {
  const Stopwatch watch;
  FuzzReport report;
  const std::size_t trials =
      options.trials > 0 ? static_cast<std::size_t>(options.trials) : 0;

  struct Trial {
    bool ran = false;
    bool failed = false;
    Time completion = 0;
    std::vector<FuzzViolation> violations;
    FuzzPerturbation perturbation;  ///< stored only on failure
  };
  std::vector<Trial> slots(trials);

  const int threads = resolve_threads(options.threads);
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  parallel_for(pool, trials, threads, [&](std::size_t i) {
    if (options.cancel && options.cancel->poll()) return;
    const std::uint64_t seed = derive_stream_seed(options.seed, i);
    FuzzPerturbation p = random_perturbation(seed, options);
    Replayed r = replay_trace(p);
    Trial& t = slots[i];
    t.ran = true;
    t.completion = r.completion;
    t.violations = std::move(r.violations);
    t.failed = !t.violations.empty();
    if (t.failed) t.perturbation = std::move(p);
  });

  // Serial fold in trial order: the report is bit-identical for every
  // thread count (cancelled runs excepted -- they are timing-dependent).
  for (std::size_t i = 0; i < trials; ++i) {
    Trial& t = slots[i];
    if (!t.ran) continue;
    ++report.trials;
    report.worst_completion = std::max(report.worst_completion, t.completion);
    if (!t.failed) continue;
    ++report.failing_trials;
    if (report.first_failing_trial < 0) {
      report.first_failing_trial = static_cast<long long>(i);
    }
    report.violations += static_cast<long long>(t.violations.size());
    for (const FuzzViolation& v : t.violations) {
      ++report.violations_by_kind[to_string(v.kind)];
    }
    if (static_cast<int>(report.counterexamples.size()) <
        options.max_counterexamples) {
      FuzzCounterexample cx;
      cx.trial = static_cast<long long>(i);
      cx.trial_seed = derive_stream_seed(options.seed, i);
      cx.perturbation = options.shrink
                            ? shrink(t.perturbation, &cx.shrink_steps)
                            : t.perturbation;
      cx.violations = options.shrink ? replay(cx.perturbation)
                                     : std::move(t.violations);
      report.counterexamples.push_back(std::move(cx));
    }
  }
  report.seconds = watch.seconds();
  return report;
}

FuzzPerturbation ScheduleFuzzer::shrink(const FuzzPerturbation& failing,
                                        int* steps) const {
  int count = 0;
  FuzzPerturbation cur = failing;
  auto fails = [&](const FuzzPerturbation& q) {
    return !replay_trace(q).violations.empty();
  };
  if (!fails(cur)) {
    if (steps) *steps = 0;
    return cur;
  }

  auto drop_one = [](const FaultScenario& s, CopyRef ref) {
    FaultScenario out;
    for (const auto& [r, c] : s.hits()) {
      const int cc = r == ref ? c - 1 : c;
      if (cc > 0) out.add_fault(r, cc);
    }
    return out;
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // Drop faults one at a time (greedily, as long as the failure holds).
    {
      std::vector<CopyRef> hit;
      for (const auto& [r, c] : cur.scenario.hits()) {
        if (c > 0) hit.push_back(r);
      }
      for (const CopyRef& r : hit) {
        while (cur.scenario.faults_on(r) > 0) {
          FuzzPerturbation q = cur;
          q.scenario = drop_one(cur.scenario, r);
          if (!fails(q)) break;
          cur = std::move(q);
          ++count;
          changed = true;
        }
      }
    }

    // Push jitter scales back toward nominal (kFuzzScaleOne): try nominal
    // outright, else bisect to the largest still-failing value.
    auto relax_scales = [&](std::vector<int>& scales) {
      for (std::size_t i = 0; i < scales.size(); ++i) {
        const int original = clamp_scale(scales[i]);
        scales[i] = original;
        if (original == kFuzzScaleOne) continue;
        int saved = original;
        scales[i] = kFuzzScaleOne;
        if (fails(cur)) {
          // nominal along this dimension still fails: keep it nominal
        } else {
          int lo = original;        // known failing
          int hi = kFuzzScaleOne;   // known passing
          while (lo + 1 < hi) {
            const int mid = lo + (hi - lo) / 2;
            scales[i] = mid;
            if (fails(cur)) {
              lo = mid;
            } else {
              hi = mid;
            }
          }
          scales[i] = lo;
        }
        if (scales[i] != saved) {
          ++count;
          changed = true;
        }
      }
    };
    relax_scales(cur.exec_scale);
    relax_scales(cur.arrival_scale);

    // Bisect the phase offset toward 0.
    if (cur.bus_phase != 0) {
      const Time original = cur.bus_phase;
      cur.bus_phase = 0;
      if (!fails(cur)) {
        Time lo = 0;            // known passing
        Time hi = original;     // known failing
        while (lo + 1 < hi) {
          const Time mid = lo + (hi - lo) / 2;
          cur.bus_phase = mid;
          if (fails(cur)) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        cur.bus_phase = hi;
      }
      if (cur.bus_phase != original) {
        ++count;
        changed = true;
      }
    }
  }

  // Cosmetic: all-nominal scale vectors collapse to "empty == nominal".
  auto all_nominal = [](const std::vector<int>& v) {
    return std::all_of(v.begin(), v.end(),
                       [](int s) { return s == kFuzzScaleOne; });
  };
  if (all_nominal(cur.exec_scale)) cur.exec_scale.clear();
  if (all_nominal(cur.arrival_scale)) cur.arrival_scale.clear();

  if (steps) *steps = count;
  return cur;
}

// --- fixtures ---------------------------------------------------------------

namespace {

struct CopyNaming {
  std::vector<int> first_copy;  ///< per-process prefix offsets
  int total = 0;
};

CopyNaming copy_naming(const Application& app, const PolicyAssignment& pa) {
  CopyNaming n;
  n.first_copy.assign(static_cast<std::size_t>(app.process_count()) + 1, 0);
  for (int i = 0; i < app.process_count(); ++i) {
    n.first_copy[static_cast<std::size_t>(i) + 1] =
        n.first_copy[static_cast<std::size_t>(i)] +
        pa.plan(ProcessId{i}).copy_count();
  }
  n.total = n.first_copy.back();
  return n;
}

void emit_scales(std::ostringstream& out, const char* directive,
                 const std::vector<int>& scales, const Application& app,
                 const CopyNaming& naming) {
  if (scales.empty()) return;
  for (int pid = 0; pid < app.process_count(); ++pid) {
    const int lo = naming.first_copy[static_cast<std::size_t>(pid)];
    const int hi = naming.first_copy[static_cast<std::size_t>(pid) + 1];
    for (int gi = lo; gi < hi; ++gi) {
      if (gi >= static_cast<int>(scales.size())) break;
      const int s = scales[static_cast<std::size_t>(gi)];
      if (s == kFuzzScaleOne) continue;
      out << directive << " " << app.process(ProcessId{pid}).name << " "
          << gi - lo << " " << s << "\n";
    }
  }
}

}  // namespace

std::string fixture_to_text(const FuzzFixture& fixture,
                            const Application& app,
                            const PolicyAssignment& assignment) {
  const CopyNaming naming = copy_naming(app, assignment);
  std::ostringstream out;
  out << "# ftes fuzz fixture v1\n";
  if (!fixture.note.empty()) {
    std::string note = fixture.note;
    std::replace(note.begin(), note.end(), '\n', ' ');
    out << "note " << note << "\n";
  }
  if (fixture.perturbation.bus_phase != 0) {
    out << "phase " << fixture.perturbation.bus_phase << "\n";
  }
  for (const auto& [ref, count] : fixture.perturbation.scenario.hits()) {
    if (count <= 0) continue;
    out << "fault " << app.process(ref.process).name << " " << ref.copy
        << " " << count << "\n";
  }
  emit_scales(out, "exec-scale", fixture.perturbation.exec_scale, app,
              naming);
  emit_scales(out, "arrival-scale", fixture.perturbation.arrival_scale, app,
              naming);
  for (const TableCorruption& c : fixture.corruptions) {
    out << "corrupt ";
    if (c.node < 0) {
      out << "bus";
    } else {
      out << "node " << c.node;
    }
    out << " " << c.row << " " << (c.label.empty() ? "-" : c.label) << " "
        << c.old_start << " ";
    if (c.erase) {
      out << "delete";
    } else {
      out << c.new_start;
    }
    out << "\n";
  }
  if (fixture.expect.empty()) {
    out << "expect none\n";
  } else {
    for (FuzzKind k : fixture.expect) {
      out << "expect " << to_string(k) << "\n";
    }
  }
  return out.str();
}

FuzzFixture parse_fixture(std::istream& in, const Application& app,
                          const PolicyAssignment& assignment) {
  const CopyNaming naming = copy_naming(app, assignment);
  FuzzFixture f;
  std::string line;
  int lineno = 0;

  auto fail = [&](const std::string& why) -> void {
    throw std::runtime_error("fuzz fixture line " + std::to_string(lineno) +
                             ": " + why);
  };
  auto pid_of = [&](const std::string& name) {
    for (int i = 0; i < app.process_count(); ++i) {
      if (app.process(ProcessId{i}).name == name) return i;
    }
    fail("unknown process '" + name + "'");
    return -1;  // unreachable
  };
  auto parse_time = [&](const std::string& token) {
    std::size_t used = 0;
    long long v = 0;
    try {
      v = std::stoll(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != token.size()) fail("bad number '" + token + "'");
    return static_cast<Time>(v);
  };
  auto copy_index = [&](std::istringstream& ls, const char* directive,
                        int& pid, int& copy) {
    std::string pname;
    if (!(ls >> pname >> copy)) {
      fail(std::string("expected '") + directive + " <process> <copy> ...'");
    }
    pid = pid_of(pname);
    const int copies = assignment.plan(ProcessId{pid}).copy_count();
    if (copy < 0 || copy >= copies) {
      fail("copy index " + std::to_string(copy) + " out of range for " +
           pname);
    }
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd)) continue;

    if (cmd == "note") {
      std::getline(ls, f.note);
      const std::size_t start = f.note.find_first_not_of(" \t");
      f.note = start == std::string::npos ? "" : f.note.substr(start);
    } else if (cmd == "phase") {
      std::string token;
      if (!(ls >> token)) fail("expected 'phase <ticks>'");
      f.perturbation.bus_phase = parse_time(token);
    } else if (cmd == "fault") {
      int pid = 0, copy = 0, count = 0;
      copy_index(ls, "fault", pid, copy);
      if (!(ls >> count) || count <= 0) {
        fail("expected 'fault <process> <copy> <count>' with count >= 1");
      }
      f.perturbation.scenario.add_fault(CopyRef{ProcessId{pid}, copy}, count);
    } else if (cmd == "exec-scale" || cmd == "arrival-scale") {
      int pid = 0, copy = 0, scale = 0;
      copy_index(ls, cmd.c_str(), pid, copy);
      if (!(ls >> scale) || scale < 1 || scale > kFuzzScaleOne) {
        fail("scale must be in [1, " + std::to_string(kFuzzScaleOne) + "]");
      }
      std::vector<int>& v = cmd == "exec-scale"
                                ? f.perturbation.exec_scale
                                : f.perturbation.arrival_scale;
      if (v.empty()) {
        v.assign(static_cast<std::size_t>(naming.total), kFuzzScaleOne);
      }
      v[static_cast<std::size_t>(
          naming.first_copy[static_cast<std::size_t>(pid)] + copy)] = scale;
    } else if (cmd == "corrupt") {
      std::string where;
      if (!(ls >> where)) fail("expected 'corrupt node|bus ...'");
      TableCorruption c;
      if (where == "node") {
        if (!(ls >> c.node) || c.node < 0) fail("bad node index");
      } else if (where == "bus") {
        c.node = -1;
      } else {
        fail("expected 'corrupt node <idx> ...' or 'corrupt bus ...'");
      }
      std::string label, olds, news;
      if (!(ls >> c.row >> label >> olds >> news)) {
        fail("expected '<row> <label|-> <old-start> <new-start|delete>'");
      }
      c.label = label == "-" ? "" : label;
      c.old_start = parse_time(olds);
      if (news == "delete") {
        c.erase = true;
      } else {
        c.new_start = parse_time(news);
      }
      f.corruptions.push_back(std::move(c));
    } else if (cmd == "expect") {
      std::string kind;
      if (!(ls >> kind)) fail("expected 'expect <kind>|none'");
      if (kind == "none") {
        f.expect.clear();
      } else {
        const std::optional<FuzzKind> k = fuzz_kind_from_string(kind);
        if (!k) fail("unknown violation kind '" + kind + "'");
        f.expect.push_back(*k);
      }
    } else {
      fail("unknown directive '" + cmd + "'");
    }
  }
  return f;
}

void apply_corruptions(const std::vector<TableCorruption>& corruptions,
                       ScheduleTables& tables) {
  for (const TableCorruption& c : corruptions) {
    const std::string where =
        c.node < 0 ? "bus" : "node " + std::to_string(c.node);
    if (c.node >= static_cast<int>(tables.node_rows.size())) {
      throw std::runtime_error("corrupt " + where + ": no such node");
    }
    TableRows& rows =
        c.node < 0 ? tables.bus_rows
                   : tables.node_rows[static_cast<std::size_t>(c.node)];
    const auto row = rows.find(c.row);
    if (row == rows.end()) {
      throw std::runtime_error("corrupt " + where + ": no row '" + c.row +
                               "'");
    }
    std::vector<TableEntry>& entries = row->second;
    bool found = false;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].start != c.old_start || entries[i].label != c.label) {
        continue;
      }
      found = true;
      if (c.erase) {
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        entries[i].start = c.new_start;
        std::sort(entries.begin(), entries.end(),
                  [](const TableEntry& x, const TableEntry& y) {
                    return x.start < y.start;
                  });
      }
      break;
    }
    if (!found) {
      throw std::runtime_error("corrupt " + where + ": row '" + c.row +
                               "' has no entry '" + c.label + "' at t=" +
                               std::to_string(c.old_start) +
                               " (stale fixture?)");
    }
  }
}

}  // namespace ftes
