#include "sim/gantt.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

namespace ftes {

std::string render_gantt(const Application& app, const Architecture& arch,
                         const PolicyAssignment& assignment,
                         const ScenarioTrace& trace,
                         const GanttOptions& options) {
  Time horizon = 1;
  for (const ExecTrace& e : trace.execs) horizon = std::max(horizon, e.end);
  for (const TxTrace& t : trace.txs) horizon = std::max(horizon, t.finish);

  const int width = std::max(options.width, 10);
  // Integer column mapping (no floats in sim/, R4): col(t) = t*width/horizon
  // truncated.  `wide` guards the t*width product for absurd horizons by
  // falling back to a ticks-per-column divisor.
  const Time w = static_cast<Time>(width);
  const bool wide = horizon > std::numeric_limits<Time>::max() / w;
  const Time coarse = (horizon + w - 1) / w;  // ticks per column when wide
  auto col = [&](Time t) {
    const Time c = wide ? t / coarse : t * w / horizon;
    return std::min(width - 1, static_cast<int>(c));
  };
  auto tick_at = [&](int c) {  // first tick rendered in column c
    return wide ? static_cast<Time>(c) * coarse
                : static_cast<Time>(c) * horizon / w;
  };

  std::ostringstream out;
  out << "scenario " << trace.scenario.to_string(app) << ", makespan "
      << trace.makespan << ":\n";

  for (int n = 0; n < arch.node_count(); ++n) {
    std::string lane(static_cast<std::size_t>(width), '.');
    std::vector<std::string> labels;
    for (const ExecTrace& e : trace.execs) {
      const NodeId node = assignment.plan(e.copy.process)
                              .copies.at(static_cast<std::size_t>(e.copy.copy))
                              .node;
      if (node.get() != n) continue;
      const int from = col(e.start);
      const int to = std::max(from, col(e.end) - 1);
      // Fault-free part '#', recovery part 'x'.
      const Time first_recovery =
          e.attempt_starts.size() > 1 ? e.attempt_starts[1] : e.end;
      for (int c = from; c <= to; ++c) {
        const Time t = tick_at(c);
        lane[static_cast<std::size_t>(c)] = t >= first_recovery ? 'x' : '#';
      }
      if (e.died) lane[static_cast<std::size_t>(to)] = '!';
      std::ostringstream lbl;
      lbl << app.process(e.copy.process).name;
      if (assignment.plan(e.copy.process).copy_count() > 1) {
        lbl << "(" << e.copy.copy + 1 << ")";
      }
      lbl << "@" << e.start;
      labels.push_back(lbl.str());
    }
    out << "  " << arch.node(NodeId{n}).name << " |" << lane << "|";
    for (const std::string& l : labels) out << " " << l;
    out << "\n";
  }

  std::string bus_lane(static_cast<std::size_t>(width), '.');
  for (const TxTrace& t : trace.txs) {
    const char mark = t.is_condition ? '-' : '=';
    const int from = col(t.start);
    const int to = std::max(from, col(t.finish) - 1);
    for (int c = from; c <= to; ++c) {
      bus_lane[static_cast<std::size_t>(c)] = mark;
    }
  }
  const std::size_t name_width = arch.node(NodeId{0}).name.size();
  out << "  bus" << std::string(name_width > 3 ? name_width - 3 : 0, ' ')
      << " |" << bus_lane << "| (= data, - condition)\n";
  return out.str();
}

}  // namespace ftes
