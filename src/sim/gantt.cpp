#include "sim/gantt.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace ftes {

std::string render_gantt(const Application& app, const Architecture& arch,
                         const PolicyAssignment& assignment,
                         const ScenarioTrace& trace,
                         const GanttOptions& options) {
  Time horizon = 1;
  for (const ExecTrace& e : trace.execs) horizon = std::max(horizon, e.end);
  for (const TxTrace& t : trace.txs) horizon = std::max(horizon, t.finish);

  const int width = std::max(options.width, 10);
  const double scale = static_cast<double>(width) / static_cast<double>(horizon);
  auto col = [&](Time t) {
    return std::min(width - 1,
                    static_cast<int>(static_cast<double>(t) * scale));
  };

  std::ostringstream out;
  out << "scenario " << trace.scenario.to_string(app) << ", makespan "
      << trace.makespan << ":\n";

  for (int n = 0; n < arch.node_count(); ++n) {
    std::string lane(static_cast<std::size_t>(width), '.');
    std::vector<std::string> labels;
    for (const ExecTrace& e : trace.execs) {
      const NodeId node = assignment.plan(e.copy.process)
                              .copies.at(static_cast<std::size_t>(e.copy.copy))
                              .node;
      if (node.get() != n) continue;
      const int from = col(e.start);
      const int to = std::max(from, col(e.end) - 1);
      // Fault-free part '#', recovery part 'x'.
      const Time first_recovery =
          e.attempt_starts.size() > 1 ? e.attempt_starts[1] : e.end;
      for (int c = from; c <= to; ++c) {
        const Time t = static_cast<Time>(c / scale);
        lane[static_cast<std::size_t>(c)] = t >= first_recovery ? 'x' : '#';
      }
      if (e.died) lane[static_cast<std::size_t>(to)] = '!';
      std::ostringstream lbl;
      lbl << app.process(e.copy.process).name;
      if (assignment.plan(e.copy.process).copy_count() > 1) {
        lbl << "(" << e.copy.copy + 1 << ")";
      }
      lbl << "@" << e.start;
      labels.push_back(lbl.str());
    }
    out << "  " << arch.node(NodeId{n}).name << " |" << lane << "|";
    for (const std::string& l : labels) out << " " << l;
    out << "\n";
  }

  std::string bus_lane(static_cast<std::size_t>(width), '.');
  for (const TxTrace& t : trace.txs) {
    const char mark = t.is_condition ? '-' : '=';
    const int from = col(t.start);
    const int to = std::max(from, col(t.finish) - 1);
    for (int c = from; c <= to; ++c) {
      bus_lane[static_cast<std::size_t>(c)] = mark;
    }
  }
  const std::size_t name_width = arch.node(NodeId{0}).name.size();
  out << "  bus" << std::string(name_width > 3 ? name_width - 3 : 0, ' ')
      << " |" << bus_lane << "| (= data, - condition)\n";
  return out.str();
}

}  // namespace ftes
