// Adversarial scenario fuzzer: randomized timing/fault stress for
// synthesized schedule tables (ROADMAP item 5, in the spirit of NodeFz's
// perturbed event schedules).
//
// `check_all_scenarios` (sim/executor.h) validates the enumerated scenario
// set at nominal worst-case timing: every fault lands at the very end of its
// segment, every execution takes exactly its WCET, and the TDMA bus round
// starts at phase 0.  The paper's guarantee is stronger -- the tables must
// hold for *every* admissible run, including early completions and early
// fault arrivals.  The fuzzer hunts that gap: it draws random admissible
// perturbations
//
//   * a fault scenario (<= k faults, via sim/fault_injector.h),
//   * per-copy execution-time jitter (actual <= WCET),
//   * per-copy fault-arrival jitter (faults strike before the segment end),
//   * an optional TDMA bus-slot phase offset (adversarial: the synthesized
//     tables assume phase 0, so a sweep measures robustness slack),
//
// and replays each one through a table-driven executor: activations fire at
// the times the (possibly corrupted) tables dictate, completions and
// condition reveals move with the perturbation, and the replayed trace is
// checked through `execute_scenario` plus fuzzer-level causality checks
// (data readiness, node/bus overlap, frozen-start pins, slot alignment).
//
// A failing trial is greedily shrunk -- drop faults, push jitter back to
// nominal, bisect the phase offset -- and can be serialized as a replayable
// fixture (tests/fixtures/*.fuzz) that `ftes_cli --replay` turns into a
// permanent regression test.
//
// Determinism: trial i perturbs with seed derive_stream_seed(seed, i) and
// results fold in trial order, so a fuzz run is bit-identical for every
// thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "fault/scenario.h"
#include "sched/cond_scheduler.h"
#include "util/cancellation.h"
#include "util/random.h"

namespace ftes {

class ThreadPool;

/// Violation classes the replay distinguishes (FuzzReport buckets,
/// fixture `expect` lines).
enum class FuzzKind {
  kDeadlineMiss,      ///< global/local deadline missed, or never completes
  kTableGap,          ///< an activation has no table entry for its scenario
  kGuardNotEntailed,  ///< execute_scenario: activation without entailed entry
  kNotReady,          ///< activation fires before its inputs/detection
  kOverlap,           ///< two activations overlap on a node or the bus
  kFrozenDivergence,  ///< frozen item off its pinned start
  kSlotMisaligned,    ///< bus entry not on a slot boundary of its sender
};

[[nodiscard]] const char* to_string(FuzzKind kind);
/// Inverse of to_string; empty optional for unknown names.
[[nodiscard]] std::optional<FuzzKind> fuzz_kind_from_string(
    const std::string& name);

struct FuzzViolation {
  FuzzKind kind = FuzzKind::kDeadlineMiss;
  std::string message;

  friend bool operator==(const FuzzViolation& a, const FuzzViolation& b) {
    return a.kind == b.kind && a.message == b.message;
  }
};

/// Jitter scales are integer ratios out of kFuzzScaleOne (no floating point
/// on the replay path, so results are bit-identical everywhere).
inline constexpr int kFuzzScaleOne = 256;

/// One concrete perturbed run.  Scale vectors are indexed by global copy
/// index (process-major, copy-minor -- the conditional scheduler's order);
/// an empty vector means "all nominal".
struct FuzzPerturbation {
  FaultScenario scenario;
  std::vector<int> exec_scale;     ///< completion time ratio, 1..kFuzzScaleOne
  std::vector<int> arrival_scale;  ///< fault arrival ratio, 1..kFuzzScaleOne
  Time bus_phase = 0;              ///< TDMA round phase offset, 0 = as built
};

/// A deliberate table edit applied before a replay (regression fixtures
/// pin "the fuzzer catches this corruption").
struct TableCorruption {
  int node = -1;  ///< node index, or -1 for the bus rows
  std::string row;
  std::string label;
  Time old_start = 0;  ///< entry selector (with row + label)
  Time new_start = 0;  ///< flipped start; ignored when erase
  bool erase = false;  ///< remove the entry instead of moving it
};

/// A replayable fixture: perturbation + optional corruptions + the
/// violation kinds the replay is expected to produce (empty = must be
/// clean).  Text format documented in docs/ARCHITECTURE.md.
struct FuzzFixture {
  FuzzPerturbation perturbation;
  std::vector<TableCorruption> corruptions;
  std::vector<FuzzKind> expect;
  std::string note;
};

struct FuzzCounterexample {
  long long trial = -1;          ///< failing trial index
  std::uint64_t trial_seed = 0;  ///< derive_stream_seed(options.seed, trial)
  FuzzPerturbation perturbation; ///< shrunk when FuzzOptions::shrink
  int shrink_steps = 0;          ///< accepted simplifications
  std::vector<FuzzViolation> violations;  ///< of the (shrunk) perturbation
};

struct FuzzOptions {
  int trials = 200;
  std::uint64_t seed = 1;
  /// Concurrent trials (1 = serial; 0 = all hardware threads).  Reports are
  /// identical for every value.
  int threads = 1;
  ThreadPool* pool = nullptr;  ///< nullptr = ThreadPool::shared()
  /// Phase offsets trials draw from.  The default {0} keeps every
  /// perturbation admissible (a correct table must replay clean); adding
  /// nonzero offsets probes how much slack the schedule has against a
  /// shifted TDMA round.
  std::vector<Time> phase_offsets = {0};
  /// Lower bounds of the jitter scales (out of kFuzzScaleOne); execution
  /// never shrinks below min_exec_scale/kFuzzScaleOne of its worst case.
  int min_exec_scale = 64;
  int min_arrival_scale = 64;
  bool shrink = true;          ///< shrink kept counterexamples
  int max_counterexamples = 3; ///< failing trials kept (in trial order)
  /// Polled once per trial; a fired token stops the sweep early (the
  /// report covers the trials that ran).
  CancellationToken* cancel = nullptr;
};

struct FuzzReport {
  long long trials = 0;          ///< trials actually executed
  long long failing_trials = 0;
  long long violations = 0;      ///< total violations over all trials
  /// Violation counts keyed by to_string(FuzzKind).
  // lint: cold-path -- report counters; ordered keys give the fuzz report
  // its deterministic print order
  std::map<std::string, long long> violations_by_kind;
  Time worst_completion = 0;     ///< max replayed makespan over all trials
  long long first_failing_trial = -1;
  std::vector<FuzzCounterexample> counterexamples;
  // lint: float-ok -- wall-clock metadata for human reports; never printed
  // in thread-count-diffed output and never folded into a result
  double seconds = 0.0;

  [[nodiscard]] bool ok() const { return failing_trials == 0; }
};

/// Table-driven stress executor over one synthesized schedule.  The
/// schedule must have been built with traces and condition broadcasts (the
/// defaults of CondScheduleOptions); all references must outlive the
/// fuzzer.
class ScheduleFuzzer {
 public:
  /// Throws std::invalid_argument when the schedule carries no traces.
  ScheduleFuzzer(const Application& app, const Architecture& arch,
                 const PolicyAssignment& assignment, const FaultModel& model,
                 const CondScheduleResult& schedule);
  ~ScheduleFuzzer();  // out of line: CopyInfo is private to fuzzer.cpp

  /// Replays one perturbation through the tables; violations sorted by
  /// (kind, message).  Throws std::invalid_argument when the perturbation's
  /// scenario is not covered by the schedule.
  [[nodiscard]] std::vector<FuzzViolation> replay(
      const FuzzPerturbation& perturbation) const;

  /// Replayed makespan of the perturbation (worst completion observed).
  [[nodiscard]] Time replay_completion(
      const FuzzPerturbation& perturbation) const;

  /// The perturbation trial `trial_seed` draws under `options`.
  [[nodiscard]] FuzzPerturbation random_perturbation(
      std::uint64_t trial_seed, const FuzzOptions& options) const;

  /// The randomized sweep: options.trials independent perturbations,
  /// options.threads at a time, folded in trial order (bit-identical for
  /// every thread count).  Counterexamples are shrunk when options.shrink.
  [[nodiscard]] FuzzReport fuzz(const FuzzOptions& options) const;

  /// Greedy counterexample minimization: drop faults one at a time, push
  /// jitter scales back toward nominal (bisecting), zero/bisect the phase
  /// offset -- keeping every simplification that still fails.  Returns the
  /// input unchanged when it does not fail.  `steps` (optional) receives
  /// the number of accepted simplifications.
  [[nodiscard]] FuzzPerturbation shrink(const FuzzPerturbation& failing,
                                        int* steps = nullptr) const;

  /// Total process copies (the length of the perturbation scale vectors).
  [[nodiscard]] int copy_count() const;

 private:
  struct CopyInfo;
  struct Replayed;

  [[nodiscard]] int copy_at(std::int32_t pid, int copy) const {
    return first_copy_[static_cast<std::size_t>(pid)] + copy;
  }
  [[nodiscard]] const ScenarioTrace& trace_for(
      const FaultScenario& scenario) const;
  [[nodiscard]] Replayed replay_trace(
      const FuzzPerturbation& perturbation) const;

  const Application& app_;
  const Architecture& arch_;
  const PolicyAssignment& pa_;
  FaultModel model_;
  const CondScheduleResult& schedule_;

  std::vector<CopyInfo> copies_;
  std::vector<int> first_copy_;
  /// scenario key (flattened hits) -> index into schedule_.traces.
  // lint: cold-path -- built once per fuzz session over the final traces
  std::map<std::vector<int>, std::size_t> trace_index_;
};

// --- fixtures ---------------------------------------------------------------

/// Renders a fixture in the line-based text format (docs/ARCHITECTURE.md).
[[nodiscard]] std::string fixture_to_text(const FuzzFixture& fixture,
                                          const Application& app,
                                          const PolicyAssignment& assignment);

/// Parses a fixture; throws std::runtime_error with a line diagnostic on
/// malformed input or unknown process names.
[[nodiscard]] FuzzFixture parse_fixture(std::istream& in,
                                        const Application& app,
                                        const PolicyAssignment& assignment);

/// Applies the corruptions in order; throws std::runtime_error when a
/// selected entry does not exist (stale fixture).
void apply_corruptions(const std::vector<TableCorruption>& corruptions,
                       ScheduleTables& tables);

}  // namespace ftes
