// Table-driven execution checker: the run-time side of Section 5.2.
//
// A distributed run-time scheduler on each node owns its slice of the
// schedule tables and activates processes/messages when the already-known
// condition values match a column guard.  This module *executes* a
// synthesized schedule under an injected fault scenario and verifies the
// properties the paper promises:
//
//   1. every process is completed by a surviving copy and the application
//      finishes by the deadline (and local deadlines) in *every* admissible
//      scenario of at most k faults;
//   2. every activation performed corresponds to a table entry whose guard
//      is entailed by the condition values revealed before the activation
//      (quasi-static consistency: the scheduler never acts on unknown
//      conditions);
//   3. transparency: every frozen process/message has exactly one start
//      time across all scenarios.
#pragma once

#include <string>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "fault/scenario.h"
#include "sched/cond_scheduler.h"
#include "util/cancellation.h"

namespace ftes {

class ThreadPool;

struct ExecutionReport {
  bool ok = true;
  std::vector<std::string> violations;
  Time completion = 0;  ///< worst completion over checked scenarios
  /// The check was cancelled mid-flight: `ok` only covers the scenarios
  /// verified before the token fired, so a cancelled report never counts
  /// as a full validation.
  bool cancelled = false;

  void fail(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }
};

/// Executes the scenario embedded in `trace` against the tables and checks
/// properties 1-2 for it.
[[nodiscard]] ExecutionReport execute_scenario(
    const Application& app, const PolicyAssignment& assignment,
    const CondScheduleResult& schedule, const ScenarioTrace& trace);

struct ExecCheckOptions {
  /// Concurrent scenario checks (1 = serial; 0 = all hardware threads).
  /// The report is identical for every value: per-scenario results land in
  /// scenario-indexed slots and fold in scenario order, and each scenario's
  /// violations are sorted by message.
  int threads = 1;
  ThreadPool* pool = nullptr;  ///< nullptr = ThreadPool::shared()
  /// Cooperative cancellation: polled once per scenario check, so an armed
  /// deadline fires within one scenario instead of after the whole sweep.
  /// A cancelled report has `cancelled` set and covers a scenario prefix.
  CancellationToken* cancel = nullptr;
};

/// Runs properties 1-3 over every scenario covered by the schedule.
/// Violations are ordered by (scenario index, message) regardless of
/// `options.threads`.
[[nodiscard]] ExecutionReport check_all_scenarios(
    const Application& app, const PolicyAssignment& assignment,
    const CondScheduleResult& schedule, const ExecCheckOptions& options = {});

}  // namespace ftes
