#include "sim/executor.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/thread_pool.h"

namespace ftes {

namespace {

/// True if `guard` is entailed by the values revealed in `trace` strictly
/// up to (and including) time `t`.
bool guard_entailed(const Guard& guard, const ScenarioTrace& trace, Time t) {
  for (const Literal& lit : guard.literals()) {
    bool found = false;
    for (const Reveal& r : trace.reveals) {
      if (r.at > t) break;
      if (r.cond_id == lit.vertex && r.value == lit.faulted) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// Finds a table entry for (rows, row, start) whose guard is entailed.
bool entry_matches(const TableRows& rows, const std::string& row, Time start,
                   const ScenarioTrace& trace) {
  auto it = rows.find(row);
  if (it == rows.end()) return false;
  for (const TableEntry& e : it->second) {
    if (e.start == start && guard_entailed(e.guard, trace, start)) {
      return true;
    }
  }
  return false;
}

std::string copy_display_name(const Application& app,
                              const PolicyAssignment& pa, CopyRef ref) {
  const ProcessPlan& plan = pa.plan(ref.process);
  const std::string base = app.process(ref.process).name;
  if (plan.copy_count() > 1) {
    return base + "(" + std::to_string(ref.copy + 1) + ")";
  }
  return base;
}

}  // namespace

ExecutionReport execute_scenario(const Application& app,
                                 const PolicyAssignment& assignment,
                                 const CondScheduleResult& schedule,
                                 const ScenarioTrace& trace) {
  ExecutionReport report;

  // Property 1: each process completed by a surviving copy, on time.
  std::vector<Time> finish(static_cast<std::size_t>(app.process_count()),
                           kTimeInfinity);
  for (const ExecTrace& e : trace.execs) {
    if (e.died) continue;
    auto& f = finish[static_cast<std::size_t>(e.copy.process.get())];
    f = std::min(f, e.end);  // earliest surviving copy delivers the result
  }
  for (int i = 0; i < app.process_count(); ++i) {
    const Process& p = app.process(ProcessId{i});
    const Time f = finish[static_cast<std::size_t>(i)];
    if (f == kTimeInfinity) {
      report.fail("process " + p.name + " never completes in scenario " +
                  trace.scenario.to_string(app));
      continue;
    }
    if (p.local_deadline && f > *p.local_deadline) {
      report.fail("process " + p.name + " misses its local deadline in " +
                  trace.scenario.to_string(app));
    }
  }
  if (trace.makespan > app.deadline()) {
    report.fail("deadline missed (" + std::to_string(trace.makespan) + " > " +
                std::to_string(app.deadline()) + ") in scenario " +
                trace.scenario.to_string(app));
  }
  report.completion = trace.makespan;

  // Property 2: every activation is covered by a matching table column.
  for (const ExecTrace& e : trace.execs) {
    const std::string name = copy_display_name(app, assignment, e.copy);
    const NodeId node =
        assignment.plan(e.copy.process)
            .copies.at(static_cast<std::size_t>(e.copy.copy))
            .node;
    const TableRows& rows =
        schedule.tables.node_rows.at(static_cast<std::size_t>(node.get()));
    for (Time start : e.attempt_starts) {
      if (!entry_matches(rows, name, start, trace)) {
        report.fail("activation of " + name + " at t=" +
                    std::to_string(start) +
                    " has no entailed table entry in scenario " +
                    trace.scenario.to_string(app));
      }
    }
  }
  for (const TxTrace& tx : trace.txs) {
    const std::string row = tx.is_condition
                                ? schedule.tables.conds.label(tx.cond_id)
                                : app.message(tx.msg).name;
    if (!entry_matches(schedule.tables.bus_rows, row, tx.start, trace)) {
      report.fail("bus activation of " + row + " at t=" +
                  std::to_string(tx.start) +
                  " has no entailed table entry in scenario " +
                  trace.scenario.to_string(app));
    }
  }
  return report;
}

ExecutionReport check_all_scenarios(const Application& app,
                                    const PolicyAssignment& assignment,
                                    const CondScheduleResult& schedule,
                                    const ExecCheckOptions& options) {
  ExecutionReport report;

  // Per-scenario checks are independent: run them into scenario-indexed
  // slots and fold serially so the report never depends on thread timing.
  std::vector<ExecutionReport> slots(schedule.traces.size());
  const int threads = resolve_threads(options.threads);
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  parallel_for(pool, schedule.traces.size(), threads, [&](std::size_t i) {
    // Chunk-granular cancellation point: an armed deadline fires within one
    // scenario check; the prefix already verified is folded below.
    if (options.cancel && options.cancel->poll()) return;
    slots[i] = execute_scenario(app, assignment, schedule,
                                schedule.traces[i]);
    std::sort(slots[i].violations.begin(), slots[i].violations.end());
  });
  if (options.cancel && options.cancel->cancelled()) {
    report.cancelled = true;
    return report;  // a partial sweep must never read as a full validation
  }
  for (ExecutionReport& one : slots) {
    report.completion = std::max(report.completion, one.completion);
    if (!one.ok) {
      report.ok = false;
      for (std::string& v : one.violations) {
        report.violations.push_back(std::move(v));
      }
    }
  }

  // Property 3: transparency.
  // lint: cold-path -- one-shot transparency check over final traces; the
  // per-move evaluation path (EvalContext) never runs this.
  std::map<std::string, Time> frozen_start;
  for (const ScenarioTrace& trace : schedule.traces) {
    for (const ExecTrace& e : trace.execs) {
      if (!app.process(e.copy.process).frozen) continue;
      const std::string name = copy_display_name(app, assignment, e.copy);
      auto [it, inserted] = frozen_start.emplace(name, e.start);
      if (!inserted && it->second != e.start) {
        report.fail("frozen process " + name + " starts at both " +
                    std::to_string(it->second) + " and " +
                    std::to_string(e.start));
      }
    }
    for (const TxTrace& tx : trace.txs) {
      if (tx.is_condition || !app.message(tx.msg).frozen) continue;
      const std::string name = app.message(tx.msg).name;
      auto [it, inserted] = frozen_start.emplace(name, tx.start);
      if (!inserted && it->second != tx.start) {
        report.fail("frozen message " + name + " transmitted at both " +
                    std::to_string(it->second) + " and " +
                    std::to_string(tx.start));
      }
    }
  }
  return report;
}

}  // namespace ftes
