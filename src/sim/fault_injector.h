// Random fault injection for property-based testing.
//
// Samples admissible fault scenarios (at most k transient faults anywhere in
// the system, Section 2's fault model) so tests can exercise schedules and
// analyses on scenarios drawn uniformly-ish at random rather than only
// exhaustively for tiny k.
#pragma once

#include <vector>

#include "app/application.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "fault/scenario.h"
#include "util/random.h"

namespace ftes {

/// Draws a scenario with exactly `faults` hits (<= model.k) distributed
/// uniformly over all copies of the assignment (with replacement: the same
/// copy can be struck repeatedly, matching the paper's fault model).
[[nodiscard]] FaultScenario random_scenario(const Application& app,
                                            const PolicyAssignment& assignment,
                                            int faults, Rng& rng);

/// A batch of scenarios with fault counts drawn uniformly from [0, model.k].
[[nodiscard]] std::vector<FaultScenario> random_scenarios(
    const Application& app, const PolicyAssignment& assignment,
    const FaultModel& model, int count, Rng& rng);

}  // namespace ftes
