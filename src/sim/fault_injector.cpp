#include "sim/fault_injector.h"

namespace ftes {

FaultScenario random_scenario(const Application& app,
                              const PolicyAssignment& assignment, int faults,
                              Rng& rng) {
  std::vector<CopyRef> copies;
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    for (int j = 0; j < assignment.plan(pid).copy_count(); ++j) {
      copies.push_back(CopyRef{pid, j});
    }
  }
  FaultScenario scenario;
  for (int f = 0; f < faults && !copies.empty(); ++f) {
    scenario.add_fault(copies[rng.index(copies.size())]);
  }
  return scenario;
}

std::vector<FaultScenario> random_scenarios(const Application& app,
                                            const PolicyAssignment& assignment,
                                            const FaultModel& model, int count,
                                            Rng& rng) {
  std::vector<FaultScenario> result;
  result.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int faults = static_cast<int>(rng.uniform_int(0, model.k));
    result.push_back(random_scenario(app, assignment, faults, rng));
  }
  return result;
}

}  // namespace ftes
