// Synthetic task-graph generator in the TGFF tradition, standing in for the
// authors' in-house benchmark generator (DESIGN.md Section 5).
//
// Generates layered acyclic process graphs with the parameter ranges used
// by the paper's experiments (Section 6): 20-100 processes on 2-6 nodes,
// k = 3..7 tolerated faults, WCETs drawn uniformly, fault-tolerance
// overheads alpha/mu/chi as fractions of the WCET, a configurable fraction
// of mapping restrictions ("X" entries of Fig. 3c) and of frozen
// processes/messages (transparency).
#pragma once

#include <cstdint>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "util/random.h"

namespace ftes {

struct TaskGenParams {
  int process_count = 20;
  int node_count = 3;

  /// Layered DAG shape.
  int min_layer_width = 1;
  int max_layer_width = 5;
  int max_in_degree = 3;

  /// WCET range (ticks) on a reference node; per-node WCETs vary +-30%.
  Time wcet_min = 10;
  Time wcet_max = 100;

  /// Overheads as fractions of the process's mean WCET (the paper's
  /// experiments use 5-15%).
  double overhead_min_fraction = 0.05;
  double overhead_max_fraction = 0.15;

  /// Probability that a (process, node) pair is restricted ("X").
  double restriction_probability = 0.10;

  /// Fraction of processes / messages declared frozen.
  double frozen_process_fraction = 0.0;
  double frozen_message_fraction = 0.0;

  /// Message sizes in abstract payload units (1 unit == 1 TDMA slot).
  std::int64_t msg_size_min = 1;
  std::int64_t msg_size_max = 2;

  /// TDMA slot length in ticks.
  Time slot_length = 4;

  /// Deadline slack factor: deadline = factor * ideal critical path.
  double deadline_factor = 6.0;
};

/// Generates the application; every process can run on >= 1 node.
[[nodiscard]] Application generate_application(const TaskGenParams& params,
                                               Rng& rng);

/// Matching homogeneous architecture (node_count nodes, uniform TDMA bus).
[[nodiscard]] Architecture generate_architecture(const TaskGenParams& params);

// --- scale families ---------------------------------------------------------
//
// Standing large-scale workloads for the adversarial fuzzer and the
// optimizer benchmarks: 500-1000-process graphs, an order of magnitude
// past the paper's 20-100-process sweep.  The shape is tuned for scale --
// wide layers (so the graph stays shallow and the critical path short),
// low in-degree (so message count grows linearly), generous deadline
// slack (so instances stay schedulable and a clean fuzz pass is the
// expected outcome).  Keep k small (1) when building schedule tables on
// these: the scenario tree is Theta(copies^k).

/// Parameters for one scale-family instance.  process_count must be >= 1;
/// typical values 500-1000.
[[nodiscard]] TaskGenParams scale_family_params(int process_count,
                                                int node_count);

/// A named member of the standing scale-family suite.
struct ScaleFamily {
  const char* name;
  TaskGenParams params;
};

/// The standing suite: scale500/2, scale750/4, scale1000/6
/// (process_count/node_count).
[[nodiscard]] std::vector<ScaleFamily> scale_families();

}  // namespace ftes
