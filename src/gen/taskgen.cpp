#include "gen/taskgen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace ftes {

Architecture generate_architecture(const TaskGenParams& params) {
  return Architecture::homogeneous(params.node_count, params.slot_length);
}

Application generate_application(const TaskGenParams& params, Rng& rng) {
  if (params.process_count < 1) throw std::invalid_argument("empty graph");
  if (params.node_count < 1) throw std::invalid_argument("no nodes");

  Application app;

  // ---- layered structure -------------------------------------------------
  std::vector<int> layer_of;  // per process
  {
    int placed = 0;
    int layer = 0;
    while (placed < params.process_count) {
      const int width = static_cast<int>(rng.uniform_int(
          params.min_layer_width,
          std::max<std::int64_t>(params.min_layer_width,
                                 params.max_layer_width)));
      for (int i = 0; i < width && placed < params.process_count; ++i) {
        layer_of.push_back(layer);
        ++placed;
      }
      ++layer;
    }
  }

  // ---- processes ----------------------------------------------------------
  for (int i = 0; i < params.process_count; ++i) {
    Process p;
    p.name = "P" + std::to_string(i + 1);
    const Time base = rng.uniform_int(params.wcet_min, params.wcet_max);
    int allowed = 0;
    for (int n = 0; n < params.node_count; ++n) {
      if (rng.chance(params.restriction_probability) &&
          allowed + (params.node_count - n - 1) >= 1) {
        continue;  // restricted, but keep at least one node reachable
      }
      const double scale = rng.uniform_real(0.7, 1.3);
      p.wcet[NodeId{n}] = std::max<Time>(
          1, static_cast<Time>(std::llround(static_cast<double>(base) * scale)));
      ++allowed;
    }
    if (allowed == 0) p.wcet[NodeId{0}] = base;  // defensive: never empty
    const double frac = rng.uniform_real(params.overhead_min_fraction,
                                         params.overhead_max_fraction);
    const Time overhead =
        std::max<Time>(1, static_cast<Time>(std::llround(
                              static_cast<double>(base) * frac)));
    p.alpha = overhead;
    p.mu = overhead;
    p.chi = overhead;
    p.frozen = rng.chance(params.frozen_process_fraction);
    app.add_process(std::move(p));
  }

  // ---- edges ----------------------------------------------------------------
  for (int i = 0; i < params.process_count; ++i) {
    if (layer_of[static_cast<std::size_t>(i)] == 0) continue;
    // Candidate producers: any process in a strictly earlier layer.
    std::vector<int> producers;
    for (int j = 0; j < params.process_count; ++j) {
      if (layer_of[static_cast<std::size_t>(j)] <
          layer_of[static_cast<std::size_t>(i)]) {
        producers.push_back(j);
      }
    }
    if (producers.empty()) continue;
    const int degree = static_cast<int>(
        rng.uniform_int(1, std::min<std::int64_t>(params.max_in_degree,
                                                  static_cast<std::int64_t>(
                                                      producers.size()))));
    rng.shuffle(producers);
    for (int d = 0; d < degree; ++d) {
      Message m;
      m.src = ProcessId{producers[static_cast<std::size_t>(d)]};
      m.dst = ProcessId{i};
      m.size = rng.uniform_int(params.msg_size_min, params.msg_size_max);
      m.frozen = rng.chance(params.frozen_message_fraction);
      app.add_message(std::move(m));
    }
  }

  // ---- deadline -------------------------------------------------------------
  // Ideal lower bound: critical path of mean WCETs assuming free resources.
  std::vector<Time> depth(static_cast<std::size_t>(params.process_count), 0);
  Time critical = 0;
  for (ProcessId pid : app.topological_order()) {
    const Process& p = app.process(pid);
    Time mean = 0;
    for (const auto& [node, c] : p.wcet) mean += c;
    mean /= static_cast<Time>(p.wcet.size());
    Time in = 0;
    for (ProcessId pred : app.predecessors(pid)) {
      in = std::max(in, depth[static_cast<std::size_t>(pred.get())]);
    }
    depth[static_cast<std::size_t>(pid.get())] = in + mean;
    critical = std::max(critical, in + mean);
  }
  app.set_deadline(static_cast<Time>(
      std::llround(static_cast<double>(critical) * params.deadline_factor)));
  app.set_period(app.deadline());
  return app;
}

}  // namespace ftes
