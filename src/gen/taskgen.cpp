#include "gen/taskgen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace ftes {

Architecture generate_architecture(const TaskGenParams& params) {
  return Architecture::homogeneous(params.node_count, params.slot_length);
}

TaskGenParams scale_family_params(int process_count, int node_count) {
  if (process_count < 1) throw std::invalid_argument("empty scale family");
  TaskGenParams p;
  p.process_count = process_count;
  p.node_count = node_count;
  // Wide and shallow: ~25 layers regardless of size, so the critical path
  // (and with it the schedule horizon) grows slowly while the node load
  // grows linearly.
  p.min_layer_width = std::max(1, process_count / 50);
  p.max_layer_width = std::max(2, process_count / 20);
  p.max_in_degree = 2;
  p.wcet_min = 10;
  p.wcet_max = 60;
  p.overhead_min_fraction = 0.05;
  p.overhead_max_fraction = 0.10;
  p.restriction_probability = 0.05;
  p.msg_size_min = 1;
  p.msg_size_max = 1;
  p.slot_length = 4;
  // Generous slack: the point of the standing workloads is a large *clean*
  // instance (zero expected fuzz violations), not a tight one.
  p.deadline_factor = 10.0;
  return p;
}

std::vector<ScaleFamily> scale_families() {
  return {
      ScaleFamily{"scale500", scale_family_params(500, 2)},
      ScaleFamily{"scale750", scale_family_params(750, 4)},
      ScaleFamily{"scale1000", scale_family_params(1000, 6)},
  };
}

Application generate_application(const TaskGenParams& params, Rng& rng) {
  if (params.process_count < 1) throw std::invalid_argument("empty graph");
  if (params.node_count < 1) throw std::invalid_argument("no nodes");

  Application app;

  // ---- layered structure -------------------------------------------------
  std::vector<int> layer_of;  // per process
  {
    int placed = 0;
    int layer = 0;
    while (placed < params.process_count) {
      const int width = static_cast<int>(rng.uniform_int(
          params.min_layer_width,
          std::max<std::int64_t>(params.min_layer_width,
                                 params.max_layer_width)));
      for (int i = 0; i < width && placed < params.process_count; ++i) {
        layer_of.push_back(layer);
        ++placed;
      }
      ++layer;
    }
  }

  // ---- processes ----------------------------------------------------------
  for (int i = 0; i < params.process_count; ++i) {
    Process p;
    p.name = "P" + std::to_string(i + 1);
    const Time base = rng.uniform_int(params.wcet_min, params.wcet_max);
    int allowed = 0;
    for (int n = 0; n < params.node_count; ++n) {
      if (rng.chance(params.restriction_probability) &&
          allowed + (params.node_count - n - 1) >= 1) {
        continue;  // restricted, but keep at least one node reachable
      }
      const double scale = rng.uniform_real(0.7, 1.3);
      p.wcet[NodeId{n}] = std::max<Time>(
          1, static_cast<Time>(std::llround(static_cast<double>(base) * scale)));
      ++allowed;
    }
    if (allowed == 0) p.wcet[NodeId{0}] = base;  // defensive: never empty
    const double frac = rng.uniform_real(params.overhead_min_fraction,
                                         params.overhead_max_fraction);
    const Time overhead =
        std::max<Time>(1, static_cast<Time>(std::llround(
                              static_cast<double>(base) * frac)));
    p.alpha = overhead;
    p.mu = overhead;
    p.chi = overhead;
    p.frozen = rng.chance(params.frozen_process_fraction);
    app.add_process(std::move(p));
  }

  // ---- edges ----------------------------------------------------------------
  for (int i = 0; i < params.process_count; ++i) {
    if (layer_of[static_cast<std::size_t>(i)] == 0) continue;
    // Candidate producers: any process in a strictly earlier layer.
    std::vector<int> producers;
    for (int j = 0; j < params.process_count; ++j) {
      if (layer_of[static_cast<std::size_t>(j)] <
          layer_of[static_cast<std::size_t>(i)]) {
        producers.push_back(j);
      }
    }
    if (producers.empty()) continue;
    const int degree = static_cast<int>(
        rng.uniform_int(1, std::min<std::int64_t>(params.max_in_degree,
                                                  static_cast<std::int64_t>(
                                                      producers.size()))));
    rng.shuffle(producers);
    for (int d = 0; d < degree; ++d) {
      Message m;
      m.src = ProcessId{producers[static_cast<std::size_t>(d)]};
      m.dst = ProcessId{i};
      m.size = rng.uniform_int(params.msg_size_min, params.msg_size_max);
      m.frozen = rng.chance(params.frozen_message_fraction);
      app.add_message(std::move(m));
    }
  }

  // ---- deadline -------------------------------------------------------------
  // Ideal lower bound: critical path of mean WCETs assuming free resources.
  std::vector<Time> depth(static_cast<std::size_t>(params.process_count), 0);
  Time critical = 0;
  for (ProcessId pid : app.topological_order()) {
    const Process& p = app.process(pid);
    Time mean = 0;
    // lint: order-insensitive -- integer sum over the values; Time is int64
    // ticks, so accumulation order cannot change the mean
    for (const auto& [node, c] : p.wcet) mean += c;
    mean /= static_cast<Time>(p.wcet.size());
    Time in = 0;
    for (ProcessId pred : app.predecessors(pid)) {
      in = std::max(in, depth[static_cast<std::size_t>(pred.get())]);
    }
    depth[static_cast<std::size_t>(pid.get())] = in + mean;
    critical = std::max(critical, in + mean);
  }
  app.set_deadline(static_cast<Time>(
      std::llround(static_cast<double>(critical) * params.deadline_factor)));
  app.set_period(app.deadline());
  return app;
}

}  // namespace ftes
