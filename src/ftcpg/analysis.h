// Analyses over the FT-CPG.
//
// The FT-CPG's paths enumerate the alternative execution traces; its
// longest path under execution-time weights (resources ignored) is
// therefore a *lower bound* on the worst-case schedule length of any
// schedule for the same policy assignment, while the resource-augmented DP
// of sched/wcsl.h is an upper bound and the conditional scheduler's
// scenario-exact WCSL lies between them.  Tests pin this triangle.
#pragma once

#include "app/application.h"
#include "fault/policy.h"
#include "ftcpg/ftcpg.h"
#include "util/time_types.h"

namespace ftes {

/// Execution-time weight of one FT-CPG vertex: the first execution of a
/// checkpointed copy costs E(n,0), each recovery vertex in its chain adds
/// one segment + alpha + mu (so a chain of f faults sums to E(n,f));
/// replicas cost C; messages cost their size in ticks (a valid lower bound
/// whenever one payload unit occupies at least one tick of bus time, true
/// for every shipped configuration); sync nodes are free.
[[nodiscard]] Time ftcpg_vertex_weight(const Ftcpg& graph, int vertex,
                                       const Application& app,
                                       const PolicyAssignment& assignment);

/// Longest execution path through the FT-CPG with at most k fault-edge
/// traversals (each conditional edge labelled with a positive F literal
/// consumes one fault; sync nodes collapse contexts, so an unbudgeted path
/// could otherwise stack more than k faults).  A lower bound on the WCSL of
/// every schedule realizing this assignment under the same fault model the
/// graph was built for.
[[nodiscard]] Time ftcpg_critical_path(const Ftcpg& graph,
                                       const Application& app,
                                       const PolicyAssignment& assignment,
                                       const FaultModel& model);

/// Number of distinct complete fault scenarios the FT-CPG encodes, counted
/// as the number of maximal guards of its sink-side completion vertices of
/// one process (diagnostic; grows exponentially with k).
[[nodiscard]] int ftcpg_scenario_width(const Ftcpg& graph, ProcessId process);

}  // namespace ftes
