#include "ftcpg/ftcpg.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "graph/digraph.h"

namespace ftes {

void Guard::add(Literal lit) {
  if (contains(Literal{lit.vertex, !lit.faulted})) {
    throw std::logic_error("contradictory literal added to guard");
  }
  if (contains(lit)) return;
  lits_.push_back(lit);
  std::sort(lits_.begin(), lits_.end());
}

bool Guard::contains(Literal lit) const {
  return std::binary_search(lits_.begin(), lits_.end(), lit);
}

int Guard::faults() const {
  int n = 0;
  for (const Literal& l : lits_) n += l.faulted ? 1 : 0;
  return n;
}

bool Guard::contradicts(const Guard& other) const {
  for (const Literal& l : lits_) {
    if (other.contains(Literal{l.vertex, !l.faulted})) return true;
  }
  return false;
}

Guard Guard::conjoin(const Guard& other) const {
  if (contradicts(other)) throw std::logic_error("contradictory guards");
  Guard g = *this;
  for (const Literal& l : other.lits_) g.add(l);
  return g;
}

int Ftcpg::add_node(FtcpgNode node) {
  nodes_.push_back(std::move(node));
  return node_count() - 1;
}

void Ftcpg::add_edge(int from, int to, std::optional<Literal> condition) {
  if (from < 0 || from >= node_count() || to < 0 || to >= node_count()) {
    throw std::out_of_range("FT-CPG edge endpoint out of range");
  }
  edges_.push_back(FtcpgEdge{from, to, condition});
}

std::vector<int> Ftcpg::successors(int v) const {
  std::vector<int> out;
  for (const FtcpgEdge& e : edges_) {
    if (e.from == v) out.push_back(e.to);
  }
  return out;
}

std::vector<int> Ftcpg::predecessors(int v) const {
  std::vector<int> in;
  for (const FtcpgEdge& e : edges_) {
    if (e.to == v) in.push_back(e.from);
  }
  return in;
}

Ftcpg::Census Ftcpg::census() const {
  Census c;
  for (const FtcpgNode& n : nodes_) {
    switch (n.kind) {
      case FtcpgNodeKind::kRegular: ++c.regular; break;
      case FtcpgNodeKind::kConditional: ++c.conditional; break;
      case FtcpgNodeKind::kSynchronization: ++c.synchronization; break;
    }
  }
  for (const FtcpgEdge& e : edges_) {
    if (e.condition) {
      ++c.conditional_edges;
    } else {
      ++c.simple_edges;
    }
  }
  return c;
}

std::vector<int> Ftcpg::copies_of(ProcessId p) const {
  std::vector<int> result;
  for (int v = 0; v < node_count(); ++v) {
    const FtcpgNode& n = nodes_[static_cast<std::size_t>(v)];
    if (n.role == FtcpgNodeRole::kProcessExec && n.process == p) {
      result.push_back(v);
    }
  }
  return result;
}

void Ftcpg::check_invariants() const {
  // Acyclicity via the generic digraph.
  Digraph g(node_count());
  for (const FtcpgEdge& e : edges_) g.add_edge(e.from, e.to);
  if (!g.is_acyclic()) throw std::logic_error("FT-CPG has a cycle");

  // Conditional-edge discipline.
  for (int v = 0; v < node_count(); ++v) {
    const FtcpgNode& n = nodes_[static_cast<std::size_t>(v)];
    bool has_conditional_out = false;
    std::map<bool, int> polarity_count;
    for (const FtcpgEdge& e : edges_) {
      if (e.from != v || !e.condition) continue;
      has_conditional_out = true;
      if (e.condition->vertex != v) {
        throw std::logic_error(
            "conditional edge labelled with a foreign condition");
      }
      ++polarity_count[e.condition->faulted];
    }
    if (has_conditional_out && n.kind != FtcpgNodeKind::kConditional) {
      throw std::logic_error("conditional edges leaving a non-conditional node");
    }
    if (n.kind == FtcpgNodeKind::kConditional && !has_conditional_out) {
      throw std::logic_error("conditional node without conditional edges");
    }
  }
}

std::string Ftcpg::to_dot() const {
  std::ostringstream out;
  out << "digraph FTCPG {\n  rankdir=TB;\n";
  for (int v = 0; v < node_count(); ++v) {
    const FtcpgNode& n = nodes_[static_cast<std::size_t>(v)];
    const char* shape = "ellipse";
    if (n.kind == FtcpgNodeKind::kSynchronization) shape = "box";
    if (n.role == FtcpgNodeRole::kMessage) shape = "diamond";
    out << "  v" << v << " [label=\"" << n.label << "\" shape=" << shape;
    if (n.kind == FtcpgNodeKind::kConditional) out << " style=bold";
    out << "];\n";
  }
  for (const FtcpgEdge& e : edges_) {
    out << "  v" << e.from << " -> v" << e.to;
    if (e.condition) {
      out << " [style=dashed label=\"" << (e.condition->faulted ? "F" : "!F")
          << nodes_[static_cast<std::size_t>(e.condition->vertex)].label
          << "\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace ftes
