#include "ftcpg/builder.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ftes {

namespace {

/// One way a value can reach a consumer: the guard under which it happens
/// and the FT-CPG vertices the consumer must wait for.
struct DeliveryAlt {
  Guard guard;
  std::vector<int> parents;
};

/// Completion alternative of one copy: the vertex that finishes the copy
/// successfully plus its success guard; `conditional` says whether the
/// vertex produces a condition (so out-edges need the !F literal).
struct CompletionAlt {
  Guard guard;
  int vertex = -1;
  bool conditional = false;
};

class Builder {
 public:
  Builder(const Application& app, const PolicyAssignment& pa,
          const FaultModel& fm, const FtcpgBuildOptions& opts)
      : app_(app), pa_(pa), fm_(fm), opts_(opts) {}

  Ftcpg build() {
    for (ProcessId pid : app_.topological_order()) {
      expand_process(pid);
    }
    graph_.check_invariants();
    return std::move(graph_);
  }

 private:
  int add_node(FtcpgNode node) {
    if (graph_.node_count() >= opts_.max_vertices) {
      throw std::length_error(
          "FT-CPG exceeds max_vertices; reduce k or add transparency");
    }
    return graph_.add_node(std::move(node));
  }

  /// Edge from a completion vertex, carrying !F if the source still had
  /// recovery branches (i.e. is conditional).
  void add_success_edge(const CompletionAlt& from, int to) {
    if (from.conditional) {
      graph_.add_edge(from.vertex, to, Literal{from.vertex, false});
    } else {
      graph_.add_edge(from.vertex, to);
    }
  }

  void expand_process(ProcessId pid) {
    const Process& proc = app_.process(pid);
    const ProcessPlan& plan = pa_.plan(pid);

    // ---- 1. Input alternatives ------------------------------------------
    std::vector<DeliveryAlt> input_alts;
    if (proc.frozen) {
      // Synchronization node: all alternative input paths meet here and the
      // downstream contexts collapse to the empty guard.
      FtcpgNode sync;
      sync.kind = FtcpgNodeKind::kSynchronization;
      sync.role = FtcpgNodeRole::kProcessSync;
      sync.process = pid;
      sync.label = "S_" + proc.name;
      const int sv = add_node(std::move(sync));
      for (MessageId m : app_.inputs(pid)) {
        for (const DeliveryAlt& alt : deliveries_.at(m)) {
          for (int parent : alt.parents) {
            add_parent_edge(parent, sv);
          }
        }
      }
      input_alts.push_back(DeliveryAlt{Guard{}, {sv}});
    } else if (app_.inputs(pid).empty()) {
      input_alts.push_back(DeliveryAlt{Guard{}, {}});
    } else {
      // Cross product of the delivery alternatives of every input message,
      // keeping only compatible guard combinations within the fault budget.
      input_alts.push_back(DeliveryAlt{Guard{}, {}});
      for (MessageId m : app_.inputs(pid)) {
        std::vector<DeliveryAlt> next;
        for (const DeliveryAlt& base : input_alts) {
          for (const DeliveryAlt& add : deliveries_.at(m)) {
            if (base.guard.contradicts(add.guard)) continue;
            Guard joined = base.guard.conjoin(add.guard);
            if (joined.faults() > fm_.k) continue;
            DeliveryAlt combined;
            combined.guard = std::move(joined);
            combined.parents = base.parents;
            combined.parents.insert(combined.parents.end(),
                                    add.parents.begin(), add.parents.end());
            next.push_back(std::move(combined));
          }
        }
        input_alts = std::move(next);
      }
    }

    // ---- 2. Attempt chains per (input alternative x copy) ---------------
    // completions[copy] = all success alternatives of that copy.
    std::vector<std::vector<CompletionAlt>> completions(
        static_cast<std::size_t>(plan.copy_count()));
    for (const DeliveryAlt& in : input_alts) {
      for (int j = 0; j < plan.copy_count(); ++j) {
        const CopyPlan& copy = plan.copies[static_cast<std::size_t>(j)];
        build_attempt_chain(pid, j, copy, in,
                            completions[static_cast<std::size_t>(j)]);
      }
    }

    // ---- 3. Deliveries for every output message -------------------------
    for (MessageId mid : app_.outputs(pid)) {
      const Message& msg = app_.message(mid);
      if (msg.frozen) {
        // One synchronization node is the message; every completion of
        // every copy feeds it.
        FtcpgNode sync;
        sync.kind = FtcpgNodeKind::kSynchronization;
        sync.role = FtcpgNodeRole::kMessageSync;
        sync.message = mid;
        sync.process = pid;
        sync.label = "S_" + msg.name;
        const int sv = add_node(std::move(sync));
        for (const auto& copy_alts : completions) {
          for (const CompletionAlt& alt : copy_alts) {
            add_success_edge(alt, sv);
          }
        }
        deliveries_[mid] = {DeliveryAlt{Guard{}, {sv}}};
        continue;
      }
      // Non-frozen: cross product over copies (a consumer of a replicated
      // producer waits for all copies -- conservative join, DESIGN.md §4).
      const bool needs_bus = message_needs_bus(mid, plan);
      std::vector<DeliveryAlt> alts{DeliveryAlt{Guard{}, {}}};
      for (int j = 0; j < plan.copy_count(); ++j) {
        std::vector<DeliveryAlt> next;
        for (const DeliveryAlt& base : alts) {
          for (const CompletionAlt& comp :
               completions[static_cast<std::size_t>(j)]) {
            if (base.guard.contradicts(comp.guard)) continue;
            Guard joined = base.guard.conjoin(comp.guard);
            if (joined.faults() > fm_.k) continue;
            DeliveryAlt combined;
            combined.guard = joined;
            combined.parents = base.parents;
            int deliver_vertex = comp.vertex;
            if (needs_bus) {
              FtcpgNode mv;
              mv.kind = FtcpgNodeKind::kRegular;
              mv.role = FtcpgNodeRole::kMessage;
              mv.message = mid;
              mv.process = pid;
              mv.copy = j;
              mv.guard = joined;
              mv.label =
                  msg.name + "^" + std::to_string(++message_counter_[mid]);
              deliver_vertex = add_node(std::move(mv));
              add_success_edge(comp, deliver_vertex);
            }
            combined.parents.push_back(deliver_vertex);
            // Remember how to hang an edge off this delivery vertex later:
            // if it is the completion vertex itself and conditional, the
            // consumer edge needs the !F literal.
            if (!needs_bus && comp.conditional) {
              conditional_sources_[deliver_vertex] = comp.vertex;
            }
            next.push_back(std::move(combined));
          }
        }
        alts = std::move(next);
      }
      deliveries_[mid] = std::move(alts);
    }
  }

  /// Adds the edge parent -> to, restoring the !F literal when the parent
  /// vertex is a conditional execution delivering its own success.
  void add_parent_edge(int parent, int to) {
    auto it = conditional_sources_.find(parent);
    if (it != conditional_sources_.end()) {
      graph_.add_edge(parent, to, Literal{it->second, false});
    } else {
      graph_.add_edge(parent, to);
    }
  }

  void build_attempt_chain(ProcessId pid, int copy_index, const CopyPlan& copy,
                           const DeliveryAlt& in,
                           std::vector<CompletionAlt>& out) {
    const Process& proc = app_.process(pid);
    const int budget_left = fm_.k - in.guard.faults();
    // Recoveries this chain can actually use on this path.
    const int attempts_after_first = std::min(copy.recoveries, budget_left);

    Guard chain_guard = in.guard;
    int prev_vertex = -1;
    for (int a = 0; a <= attempts_after_first; ++a) {
      const bool is_conditional = a < attempts_after_first;
      FtcpgNode node;
      node.kind = is_conditional ? FtcpgNodeKind::kConditional
                                 : FtcpgNodeKind::kRegular;
      node.role = FtcpgNodeRole::kProcessExec;
      node.process = pid;
      node.copy = copy_index;
      node.attempt = a;
      node.guard = chain_guard;
      node.mapped_node = copy.node;
      node.label = proc.name + "^" + std::to_string(++copy_counter_[pid]);
      if (pa_.plan(pid).copy_count() > 1) {
        node.label = proc.name + "(" + std::to_string(copy_index + 1) + ")^" +
                     std::to_string(copy_counter_[pid]);
      }
      const int v = add_node(std::move(node));

      if (a == 0) {
        if (in.parents.empty() && prev_vertex < 0) {
          // Root process: no incoming edges.
        }
        for (int parent : in.parents) add_parent_edge(parent, v);
      } else {
        graph_.add_edge(prev_vertex, v, Literal{prev_vertex, true});
      }

      CompletionAlt comp;
      comp.vertex = v;
      comp.conditional = is_conditional;
      comp.guard = chain_guard;
      if (is_conditional) comp.guard.add(Literal{v, false});
      out.push_back(comp);

      if (is_conditional) chain_guard.add(Literal{v, true});
      prev_vertex = v;
    }
  }

  /// A message needs a bus transmission if any copy of the consumer lives on
  /// a different node than some copy of the producer.
  [[nodiscard]] bool message_needs_bus(MessageId mid,
                                       const ProcessPlan& src_plan) const {
    const Message& msg = app_.message(mid);
    const ProcessPlan& dst_plan = pa_.plan(msg.dst);
    for (const CopyPlan& s : src_plan.copies) {
      for (const CopyPlan& d : dst_plan.copies) {
        if (s.node != d.node) return true;
      }
    }
    return false;
  }

  const Application& app_;
  const PolicyAssignment& pa_;
  const FaultModel& fm_;
  const FtcpgBuildOptions& opts_;
  Ftcpg graph_;
  std::map<MessageId, std::vector<DeliveryAlt>> deliveries_;
  std::map<ProcessId, int> copy_counter_;
  std::map<MessageId, int> message_counter_;
  /// delivery vertex -> conditional execution vertex whose !F guards it
  std::map<int, int> conditional_sources_;
};

}  // namespace ftes::(anonymous)

Ftcpg build_ftcpg(const Application& app, const PolicyAssignment& assignment,
                  const FaultModel& model, const FtcpgBuildOptions& options) {
  assignment.validate(app, model);
  Builder builder(app, assignment, model, options);
  return builder.build();
}

}  // namespace ftes
