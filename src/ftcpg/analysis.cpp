#include "ftcpg/analysis.h"

#include <algorithm>
#include <set>

#include "fault/recovery.h"
#include "graph/digraph.h"

namespace ftes {

Time ftcpg_vertex_weight(const Ftcpg& graph, int vertex,
                         const Application& app,
                         const PolicyAssignment& assignment) {
  const FtcpgNode& node = graph.node(vertex);
  switch (node.role) {
    case FtcpgNodeRole::kProcessExec: {
      const Process& proc = app.process(node.process);
      const CopyPlan& copy =
          assignment.plan(node.process)
              .copies.at(static_cast<std::size_t>(node.copy));
      RecoveryParams params{proc.wcet_on(node.mapped_node), proc.alpha,
                            proc.mu, proc.chi};
      if (copy.checkpoints >= 1) {
        // One chain vertex == one full execution of the copy; the recovery
        // overheads mu/alpha sit on the conditional edge into it, counted
        // here so the path sums to E(n, f).
        const Time base = checkpointed_exec_time(params, copy.checkpoints, 0);
        if (node.attempt > 0) {
          return segment_length(params.wcet, copy.checkpoints) + params.alpha +
                 params.mu;
        }
        return base;
      }
      return replica_exec_time(params);
    }
    case FtcpgNodeRole::kMessage:
      return app.message(node.message).size;  // schedule-free lower bound
    case FtcpgNodeRole::kProcessSync:
    case FtcpgNodeRole::kMessageSync:
      return 0;  // synchronization nodes take zero time (Section 5.1)
  }
  return 0;
}

Time ftcpg_critical_path(const Ftcpg& graph, const Application& app,
                         const PolicyAssignment& assignment,
                         const FaultModel& model) {
  const int k = model.k;
  Digraph g(graph.node_count());
  for (const FtcpgEdge& e : graph.edges()) g.add_edge(e.from, e.to);

  // Budgeted longest path: traversing a conditional edge whose literal is
  // positive (F == the source execution faulted) consumes one fault.
  std::vector<std::vector<Time>> L(
      static_cast<std::size_t>(graph.node_count()),
      std::vector<Time>(static_cast<std::size_t>(k) + 1, -1));
  Time best = 0;
  for (int v : g.topological_order()) {
    const Time w = ftcpg_vertex_weight(graph, v, app, assignment);
    for (int b = 0; b <= k; ++b) {
      Time in = 0;
      bool reachable = g.predecessors(v).empty();
      for (const FtcpgEdge& e : graph.edges()) {
        if (e.to != v) continue;
        const bool costs_fault = e.condition && e.condition->faulted;
        const int need = b - (costs_fault ? 1 : 0);
        if (need < 0) continue;
        const Time pred = L[static_cast<std::size_t>(e.from)]
                           [static_cast<std::size_t>(need)];
        if (pred < 0) continue;
        reachable = true;
        in = std::max(in, pred);
      }
      if (!reachable) continue;
      L[static_cast<std::size_t>(v)][static_cast<std::size_t>(b)] = in + w;
      best = std::max(best, in + w);
    }
  }
  return best;
}

int ftcpg_scenario_width(const Ftcpg& graph, ProcessId process) {
  std::set<Guard> guards;
  for (int v : graph.copies_of(process)) {
    guards.insert(graph.node(v).guard);
  }
  return static_cast<int>(guards.size());
}

}  // namespace ftes
