// Fault-Tolerant Conditional Process Graph (DATE'08 Section 5.1, Fig. 5).
//
// The FT-CPG G(V_P u V_C u V_T, E_S u E_C) unrolls an application under a
// policy assignment and a fault budget k into all alternative execution
// traces:
//   * regular nodes        -- executions that cannot fail any more (their
//                             fault budget is exhausted) and messages;
//   * conditional nodes    -- executions that may fail; they "produce" the
//                             condition F (true iff the execution faults)
//                             and have conditional out-edges;
//   * synchronization nodes-- frozen processes/messages (T(v) = frozen);
//                             alternative paths may only meet here, and the
//                             scheduler gives them one start time across all
//                             scenarios.
//
// Every execution vertex carries its *guard*: the conjunction of condition
// literals under which it runs (the column headers of the paper's Fig. 6
// schedule tables are exactly such guards).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "app/application.h"
#include "fault/policy.h"
#include "util/time_types.h"

namespace ftes {

/// One condition literal: "execution vertex `vertex` faulted" (positive) or
/// "completed fault-free" (negative).
struct Literal {
  int vertex = -1;     ///< FT-CPG vertex id of the conditional execution
  bool faulted = true;

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.vertex == b.vertex && a.faulted == b.faulted;
  }
  friend bool operator<(const Literal& a, const Literal& b) {
    if (a.vertex != b.vertex) return a.vertex < b.vertex;
    return a.faulted < b.faulted;
  }
};

/// A guard: conjunction of literals, kept sorted and duplicate-free.
class Guard {
 public:
  Guard() = default;

  void add(Literal lit);
  [[nodiscard]] const std::vector<Literal>& literals() const { return lits_; }
  [[nodiscard]] bool contains(Literal lit) const;
  /// Number of positive (faulted) literals == faults consumed on this path.
  [[nodiscard]] int faults() const;
  /// True if the two guards cannot hold simultaneously (some vertex appears
  /// with opposite polarity).
  [[nodiscard]] bool contradicts(const Guard& other) const;
  /// Conjunction of two guards; throws std::logic_error if contradictory.
  [[nodiscard]] Guard conjoin(const Guard& other) const;
  friend bool operator==(const Guard& a, const Guard& b) {
    return a.lits_ == b.lits_;
  }
  friend bool operator<(const Guard& a, const Guard& b) {
    return a.lits_ < b.lits_;
  }

 private:
  std::vector<Literal> lits_;
};

enum class FtcpgNodeKind { kRegular, kConditional, kSynchronization };
enum class FtcpgNodeRole { kProcessExec, kMessage, kProcessSync, kMessageSync };

struct FtcpgNode {
  FtcpgNodeKind kind = FtcpgNodeKind::kRegular;
  FtcpgNodeRole role = FtcpgNodeRole::kProcessExec;

  // kProcessExec: which execution this vertex is.
  ProcessId process;       ///< valid for process exec / process sync
  int copy = 0;            ///< replica index within the plan
  int attempt = 0;         ///< 0 = first execution, a = a-th recovery
  MessageId message;       ///< valid for message / message sync

  Guard guard;             ///< conjunction under which this vertex executes
  NodeId mapped_node;      ///< CPU for exec vertices; invalid for bus/sync

  std::string label;       ///< human-readable (P2^3, m1^2, S_P3, ...)
};

struct FtcpgEdge {
  int from = -1;
  int to = -1;
  /// Empty for simple edges E_S; one literal for conditional edges E_C.
  std::optional<Literal> condition;
};

class Ftcpg {
 public:
  int add_node(FtcpgNode node);
  void add_edge(int from, int to, std::optional<Literal> condition = {});

  [[nodiscard]] const std::vector<FtcpgNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<FtcpgEdge>& edges() const { return edges_; }
  [[nodiscard]] const FtcpgNode& node(int v) const { return nodes_.at(v); }
  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] int edge_count() const {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] std::vector<int> successors(int v) const;
  [[nodiscard]] std::vector<int> predecessors(int v) const;

  /// Census by kind, e.g. for reproducing the Fig. 5 structure.
  struct Census {
    int regular = 0;
    int conditional = 0;
    int synchronization = 0;
    int simple_edges = 0;
    int conditional_edges = 0;
  };
  [[nodiscard]] Census census() const;

  /// Copies of a given application process (the paper's P_i^m numbering).
  [[nodiscard]] std::vector<int> copies_of(ProcessId p) const;

  /// Structural sanity: acyclic; conditional out-edges of a vertex are
  /// labelled with literals of that vertex only and cover both polarities
  /// at most once; sync nodes have zero execution time by construction.
  /// Throws std::logic_error on violation.
  void check_invariants() const;

  [[nodiscard]] std::string to_dot() const;

 private:
  std::vector<FtcpgNode> nodes_;
  std::vector<FtcpgEdge> edges_;
};

}  // namespace ftes
