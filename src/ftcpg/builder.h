// FT-CPG construction (DATE'08 Section 5.1).
//
// Unrolls an application under a fully mapped policy assignment and fault
// budget k into the fault-tolerant conditional process graph:
//
//  * a checkpointed/re-executed copy becomes a chain of execution attempts
//    linked by conditional edges (F = "this attempt faulted"); the chain is
//    replicated once per *input context* (combination of ancestor fault
//    alternatives), which yields exactly the paper's copy counts -- e.g. in
//    its Fig. 5 example P2 gets 3+2+1 = 6 copies for k = 2;
//  * replicas become parallel copies; consumers connect to every copy of a
//    replicated producer (worst-case join: any k copies may fail, so the
//    consumer may have to wait for the slowest survivor -- the conservative
//    semantics also used by the schedule-length analysis, see DESIGN.md);
//  * frozen processes/messages become synchronization nodes; alternative
//    paths meet only there, which collapses the input contexts and is
//    precisely why transparency shrinks the FT-CPG.
//
// Cross-node data flow materializes message vertices (scheduled on the TDMA
// bus); co-located communication is folded into the sender's WCET as the
// paper prescribes.  Frozen messages always materialize (as sync nodes), to
// keep their bus slot observable in every scenario.
#pragma once

#include "app/application.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "ftcpg/ftcpg.h"

namespace ftes {

struct FtcpgBuildOptions {
  /// Hard cap guarding against exponential blow-up (the FT-CPG is inherently
  /// exponential in k; the paper's own remedy is transparency).  Exceeding
  /// the cap throws std::length_error.
  int max_vertices = 200000;
};

/// Builds the FT-CPG.  `assignment` must be fully mapped and valid for
/// `model` (call PolicyAssignment::validate first).
[[nodiscard]] Ftcpg build_ftcpg(const Application& app,
                                const PolicyAssignment& assignment,
                                const FaultModel& model,
                                const FtcpgBuildOptions& options = {});

}  // namespace ftes
