// Fault model of DATE'08 Section 2: at most k transient faults may occur
// anywhere in the system during one operation cycle of the application.
// k may exceed the number of processors, several faults may hit the same
// processor, and several processors may be hit simultaneously.
#pragma once

#include <stdexcept>

namespace ftes {

struct FaultModel {
  int k = 1;  ///< maximum transient faults per operation cycle

  void validate() const {
    if (k < 0) throw std::invalid_argument("fault count k must be >= 0");
  }
};

}  // namespace ftes
