#include "fault/recovery.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftes {

Time segment_length(Time wcet, int checkpoints) {
  if (checkpoints < 1) throw std::invalid_argument("checkpoints must be >= 1");
  if (wcet <= 0) throw std::invalid_argument("wcet must be > 0");
  return (wcet + checkpoints - 1) / checkpoints;
}

Time checkpointed_exec_time(const RecoveryParams& p, int checkpoints,
                            int faults) {
  if (faults < 0) throw std::invalid_argument("negative fault count");
  const Time fault_free = p.wcet + static_cast<Time>(checkpoints) * p.chi;
  if (faults == 0) return fault_free;
  const Time per_fault = segment_length(p.wcet, checkpoints) + p.alpha + p.mu;
  return fault_free + static_cast<Time>(faults) * per_fault;
}

Time replica_exec_time(const RecoveryParams& p) {
  if (p.wcet <= 0) throw std::invalid_argument("wcet must be > 0");
  return p.wcet;
}

Time fault_occurrence_offset(const RecoveryParams& p, int checkpoints,
                             int j) {
  if (j < 1) throw std::invalid_argument("fault index must be >= 1");
  const Time seg = segment_length(p.wcet, checkpoints);
  return static_cast<Time>(j) * seg +
         static_cast<Time>(j - 1) * (p.alpha + p.mu);
}

Time recovery_start_offset(const RecoveryParams& p, int checkpoints, int j) {
  return fault_occurrence_offset(p, checkpoints, j) + p.alpha + p.mu;
}

int optimal_checkpoints_local(const RecoveryParams& p, int faults,
                              int max_checkpoints) {
  if (max_checkpoints < 1) {
    throw std::invalid_argument("max_checkpoints must be >= 1");
  }
  if (faults <= 0) return 1;  // no fault to tolerate: checkpoints only cost
  if (p.chi <= 0) {
    // Checkpoints are free: more segments always shrink the re-executed
    // part, so the isolated optimum is the cap.
    return max_checkpoints;
  }
  // The continuous optimum is n0 = sqrt(faults*C/chi), but the ceil() in
  // segment_length flattens E into plateaus that can shift the discrete
  // optimum several steps away, so we scan the (small) range exactly.
  int best = 1;
  Time best_cost = checkpointed_exec_time(p, 1, faults);
  for (int n = 2; n <= max_checkpoints; ++n) {
    const Time cost = checkpointed_exec_time(p, n, faults);
    if (cost < best_cost) {
      best = n;
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace ftes
