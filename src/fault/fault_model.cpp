// fault_model.h is header-only; this TU exists so the build exercises the
// header under the library's warning flags.
#include "fault/fault_model.h"
