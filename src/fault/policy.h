// Fault-tolerance policy assignment F = <P, Q, R, X> of DATE'08 Section 4
// (Fig. 4), together with the mapping M of every process copy.
//
//   P: kind of fault tolerance (checkpointing / replication / both)
//   Q: number of *additional* replicas (copies = Q + 1)
//   R: number of recoveries per copy
//   X: number of checkpoints per copy (0 == not checkpointed)
//
// Copy 0 is the original process; copies 1..Q are the replicas in V_R.
//
// Tolerance invariant.  A copy with r recoveries survives at most r faults
// (a non-checkpointed copy survives none).  Against an adversary that may
// split k faults arbitrarily across copies, at least one copy must survive:
//     sum_j (R(copy_j) + 1)  >=  k + 1.
// The paper's three cases instantiate it: checkpointing (1 copy, R = k),
// replication (k+1 copies, R = 0), and the mixed Fig. 4c (2 copies,
// R = {0, 1}, k = 2).
#pragma once

#include <string>
#include <vector>

#include "app/application.h"
#include "fault/fault_model.h"
#include "fault/policy_kind.h"
#include "util/time_types.h"

namespace ftes {

/// One scheduled copy of a process: its mapping plus its share of the
/// time-redundancy budget.
struct CopyPlan {
  NodeId node;          ///< mapping M(copy); invalid until mapping decided
  int checkpoints = 0;  ///< X: equidistant checkpoints (0 = pure replica)
  int recoveries = 0;   ///< R: recoveries this copy may perform

  friend bool operator==(const CopyPlan& a, const CopyPlan& b) {
    return a.node == b.node && a.checkpoints == b.checkpoints &&
           a.recoveries == b.recoveries;
  }
  friend bool operator!=(const CopyPlan& a, const CopyPlan& b) {
    return !(a == b);
  }
};

/// Complete plan for one process.
struct ProcessPlan {
  PolicyKind kind = PolicyKind::kCheckpointing;
  std::vector<CopyPlan> copies;  ///< size >= 1; [0] is the original

  [[nodiscard]] int copy_count() const {
    return static_cast<int>(copies.size());
  }
  /// Q(Pi): number of additional replicas.
  [[nodiscard]] int replica_count() const { return copy_count() - 1; }
  /// Sum of R over all copies.
  [[nodiscard]] int total_recoveries() const;
  /// Tolerance invariant: sum_j (R_j + 1) >= k + 1.
  [[nodiscard]] bool tolerates(int k) const;

  friend bool operator==(const ProcessPlan& a, const ProcessPlan& b) {
    return a.kind == b.kind && a.copies == b.copies;
  }
  friend bool operator!=(const ProcessPlan& a, const ProcessPlan& b) {
    return !(a == b);
  }
};

/// F + M for the whole application (indexed by ProcessId).
class PolicyAssignment {
 public:
  PolicyAssignment() = default;
  explicit PolicyAssignment(int process_count)
      : plans_(static_cast<std::size_t>(process_count)) {}

  [[nodiscard]] ProcessPlan& plan(ProcessId p) {
    return plans_.at(static_cast<std::size_t>(p.get()));
  }
  [[nodiscard]] const ProcessPlan& plan(ProcessId p) const {
    return plans_.at(static_cast<std::size_t>(p.get()));
  }
  [[nodiscard]] int process_count() const {
    return static_cast<int>(plans_.size());
  }

  /// Throws std::invalid_argument if any plan violates the tolerance
  /// invariant for `model.k`, maps a copy to a restricted node, leaves a
  /// copy unmapped, gives recoveries to an uncheckpointed copy, or places
  /// two copies of one process on the same node (replica copies must be on
  /// distinct nodes to provide spatial redundancy).
  void validate(const Application& app, const FaultModel& model) const;

  [[nodiscard]] std::string summary(const Application& app) const;

 private:
  std::vector<ProcessPlan> plans_;
};

/// P = Checkpointing: one copy, R = k, X = checkpoints (>= 1).
[[nodiscard]] ProcessPlan make_checkpointing_plan(int k, int checkpoints);

/// P = Replication: k+1 pure-replica copies, R = 0, X = 0.
[[nodiscard]] ProcessPlan make_replication_plan(int k);

/// P = Replication & Checkpointing: `extra_replicas` additional copies
/// (0 < extra_replicas < k); recoveries are distributed to satisfy the
/// tolerance invariant with as few recoveries as possible (k - Q in total,
/// the same budget as the paper's Fig. 4c), all carried by copy 0.  Every
/// copy that has recoveries gets `checkpoints` checkpoints.
[[nodiscard]] ProcessPlan make_hybrid_plan(int k, int extra_replicas,
                                           int checkpoints);

/// A whole-application assignment with the same plan shape for every
/// process (mapping left invalid).  Convenience for tests and baselines.
[[nodiscard]] PolicyAssignment uniform_assignment(const Application& app,
                                                  const ProcessPlan& shape);

}  // namespace ftes
