// Recovery-time algebra for equidistant checkpointing with rollback
// recovery (DATE'08 Section 3.1, Fig. 1) and the locally optimal checkpoint
// count in the style of Punnekkat et al. [27] as used by Izosimov [15].
//
// A process copy with n >= 1 equidistant checkpoints consists of n execution
// segments of ceil(C/n) ticks; saving a checkpoint costs chi, detecting a
// fault costs alpha, restoring the last checkpoint costs mu.  The paper's
// accounting (which exactly reproduces its Fig. 1c timeline of 120 ms for
// C=60, n=2, chi=5, alpha=10, mu=10, one fault, and the 0/35/70 ms
// re-execution starts of its Fig. 6 schedule table):
//
//   fault-free:  E(n, 0) = C + n*chi
//   f faults:    E(n, f) = E(n, 0) + f*(ceil(C/n) + alpha + mu)
//
// i.e. alpha is charged once per *detected fault* and each fault re-executes
// at most one segment (worst case: the fault lands at the very end of the
// running segment).  Fault-free detection is folded into C, consistent with
// the paper's schedule tables where a successor starts exactly at the
// producer's WCET.
//
// Plain re-execution (Section 3) is the n = 1 special case: the single
// checkpoint at process activation stores the initial inputs (cost chi,
// zero if the inputs are retained anyway) and restoring them costs mu.
//
// Worst-case timeline detail (used by the schedule-table generator): with f
// faults the adversary gains nothing by choosing segments, so we place all
// faults on the first segment; then
//   occurrence of fault j:    occ_j = start + j*seg + (j-1)*(alpha+mu)
//   start of recovery j:      occ_j + alpha + mu
#pragma once

#include "util/time_types.h"

namespace ftes {

/// Per-copy timing parameters (all in ticks).
struct RecoveryParams {
  Time wcet = 0;   ///< C: worst-case execution time on the mapped node
  Time alpha = 0;  ///< error-detection overhead per fault
  Time mu = 0;     ///< recovery overhead (checkpoint / input restore)
  Time chi = 0;    ///< checkpoint save overhead
};

/// ceil(C/n): worst-case length of one execution segment.
[[nodiscard]] Time segment_length(Time wcet, int checkpoints);

/// E(n, f) as defined above.  Requires n >= 1, f >= 0.
[[nodiscard]] Time checkpointed_exec_time(const RecoveryParams& p,
                                          int checkpoints, int faults);

/// Execution time of a copy that is *not* checkpointed (a pure replica):
/// C.  A fault kills such a copy outright; there is no recovery.
[[nodiscard]] Time replica_exec_time(const RecoveryParams& p);

/// Worst-case occurrence time (relative to the copy's start) of the j-th
/// fault, j >= 1, under the first-segment convention above.
[[nodiscard]] Time fault_occurrence_offset(const RecoveryParams& p,
                                           int checkpoints, int j);

/// Start (relative to the copy's start) of the j-th recovery, j >= 1.
[[nodiscard]] Time recovery_start_offset(const RecoveryParams& p,
                                         int checkpoints, int j);

/// Locally optimal checkpoint count for tolerating `faults` faults,
/// considering the process in isolation ([27]): minimizes E(n, faults) over
/// n in [1, max_checkpoints].  The continuous optimum is
/// n0 = sqrt(faults*C/chi); the better of floor/ceil is returned.  With
/// chi == 0 checkpoints are free and the cap is returned.
[[nodiscard]] int optimal_checkpoints_local(const RecoveryParams& p,
                                            int faults,
                                            int max_checkpoints = 64);

}  // namespace ftes
