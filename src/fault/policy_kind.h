// The fault-tolerance policy kinds of DATE'08 Section 4 (function P).
// Split into its own header so the application model can reference the
// kind (designer-fixed policies) without depending on the full plan types.
#pragma once

namespace ftes {

enum class PolicyKind {
  kCheckpointing,                ///< P(Pi) = Checkpointing (incl. re-execution)
  kReplication,                  ///< P(Pi) = Replication
  kReplicationAndCheckpointing,  ///< P(Pi) = Replication & Checkpointing
};

[[nodiscard]] const char* to_string(PolicyKind kind);

}  // namespace ftes
