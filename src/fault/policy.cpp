#include "fault/policy.h"

#include <sstream>
#include <stdexcept>

namespace ftes {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kCheckpointing: return "Checkpointing";
    case PolicyKind::kReplication: return "Replication";
    case PolicyKind::kReplicationAndCheckpointing:
      return "Replication&Checkpointing";
  }
  return "?";
}

int ProcessPlan::total_recoveries() const {
  int sum = 0;
  for (const CopyPlan& c : copies) sum += c.recoveries;
  return sum;
}

bool ProcessPlan::tolerates(int k) const {
  return copy_count() + total_recoveries() >= k + 1;
}

void PolicyAssignment::validate(const Application& app,
                                const FaultModel& model) const {
  model.validate();
  if (process_count() != app.process_count()) {
    throw std::invalid_argument("policy assignment size mismatch");
  }
  for (int i = 0; i < process_count(); ++i) {
    const ProcessId pid{i};
    const Process& proc = app.process(pid);
    const ProcessPlan& pp = plan(pid);
    if (pp.copies.empty()) {
      throw std::invalid_argument("process '" + proc.name + "' has no copies");
    }
    if (!pp.tolerates(model.k)) {
      throw std::invalid_argument("process '" + proc.name +
                                  "' does not tolerate k faults");
    }
    // Note: two copies *may* share a node -- transient faults strike
    // executions, not nodes, so co-located replicas still tolerate them
    // (they merely serialize and lose the spatial-parallelism benefit).
    for (const CopyPlan& c : pp.copies) {
      if (!c.node.valid()) {
        throw std::invalid_argument("process '" + proc.name +
                                    "' has an unmapped copy");
      }
      if (!proc.can_run_on(c.node)) {
        throw std::invalid_argument("process '" + proc.name +
                                    "' copy mapped to restricted node");
      }
      if (c.checkpoints < 0 || c.recoveries < 0) {
        throw std::invalid_argument("negative checkpoint/recovery count");
      }
      if (c.recoveries > 0 && c.checkpoints < 1) {
        throw std::invalid_argument("process '" + proc.name +
                                    "' recovers without a checkpoint");
      }
    }
    if (proc.fixed_mapping && pp.copies[0].node != *proc.fixed_mapping) {
      throw std::invalid_argument("process '" + proc.name +
                                  "' violates its designer-fixed mapping");
    }
    if (proc.fixed_policy && pp.kind != *proc.fixed_policy) {
      throw std::invalid_argument("process '" + proc.name +
                                  "' violates its designer-fixed policy");
    }
    // Kind consistency with Q, mirroring Section 4's definition of Q.
    switch (pp.kind) {
      case PolicyKind::kCheckpointing:
        if (pp.replica_count() != 0) {
          throw std::invalid_argument("checkpointing plan with replicas");
        }
        break;
      case PolicyKind::kReplication:
        if (pp.replica_count() != model.k) {
          throw std::invalid_argument("replication plan must have Q = k");
        }
        break;
      case PolicyKind::kReplicationAndCheckpointing:
        if (pp.replica_count() < 1 || pp.replica_count() >= model.k) {
          throw std::invalid_argument("hybrid plan needs 0 < Q < k");
        }
        break;
    }
  }
}

std::string PolicyAssignment::summary(const Application& app) const {
  std::ostringstream out;
  for (int i = 0; i < process_count(); ++i) {
    const ProcessId pid{i};
    const ProcessPlan& pp = plan(pid);
    out << app.process(pid).name << ": " << to_string(pp.kind);
    for (const CopyPlan& c : pp.copies) {
      out << " [N" << (c.node.valid() ? std::to_string(c.node.get() + 1) : "?")
          << " X=" << c.checkpoints << " R=" << c.recoveries << "]";
    }
    out << "\n";
  }
  return out.str();
}

ProcessPlan make_checkpointing_plan(int k, int checkpoints) {
  if (checkpoints < 1) throw std::invalid_argument("checkpoints must be >= 1");
  ProcessPlan plan;
  plan.kind = PolicyKind::kCheckpointing;
  CopyPlan copy;
  copy.checkpoints = checkpoints;
  copy.recoveries = k;
  plan.copies.push_back(copy);
  return plan;
}

ProcessPlan make_replication_plan(int k) {
  ProcessPlan plan;
  plan.kind = PolicyKind::kReplication;
  plan.copies.assign(static_cast<std::size_t>(k) + 1, CopyPlan{});
  return plan;
}

ProcessPlan make_hybrid_plan(int k, int extra_replicas, int checkpoints) {
  if (extra_replicas < 1 || extra_replicas >= k) {
    throw std::invalid_argument("hybrid plan needs 0 < Q < k");
  }
  if (checkpoints < 1) throw std::invalid_argument("checkpoints must be >= 1");
  ProcessPlan plan;
  plan.kind = PolicyKind::kReplicationAndCheckpointing;
  plan.copies.assign(static_cast<std::size_t>(extra_replicas) + 1, CopyPlan{});
  // Need copies + recoveries >= k+1  =>  recoveries >= k - extra_replicas.
  int needed = k - extra_replicas;
  plan.copies[0].checkpoints = checkpoints;
  plan.copies[0].recoveries = needed;
  return plan;
}

PolicyAssignment uniform_assignment(const Application& app,
                                    const ProcessPlan& shape) {
  PolicyAssignment pa(app.process_count());
  for (int i = 0; i < app.process_count(); ++i) {
    pa.plan(ProcessId{i}) = shape;
  }
  return pa;
}

}  // namespace ftes
