#include "fault/scenario.h"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace ftes {

void FaultScenario::add_fault(CopyRef copy, int count) {
  if (count < 0) throw std::invalid_argument("negative fault count");
  if (count == 0) return;
  hits_[copy] += count;
  total_ += count;
}

int FaultScenario::faults_on(CopyRef copy) const {
  auto it = hits_.find(copy);
  return it == hits_.end() ? 0 : it->second;
}

bool FaultScenario::copy_survives(const CopyPlan& plan, CopyRef ref) const {
  return faults_on(ref) <= plan.recoveries;
}

std::string FaultScenario::to_string(const Application& app) const {
  if (hits_.empty()) return "{no faults}";
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [ref, count] : hits_) {
    if (!first) out << ", ";
    first = false;
    out << app.process(ref.process).name;
    if (ref.copy > 0) out << "(" << ref.copy + 1 << ")";
    out << "x" << count;
  }
  out << "}";
  return out.str();
}

std::vector<FaultScenario> enumerate_scenarios(
    const Application& app, const PolicyAssignment& assignment, int k) {
  // Collect all copies, then distribute 0..k faults over them
  // (combinations with repetition, generated recursively).
  std::vector<CopyRef> copies;
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    const ProcessPlan& plan = assignment.plan(pid);
    for (int c = 0; c < plan.copy_count(); ++c) {
      copies.push_back(CopyRef{pid, c});
    }
  }
  std::vector<FaultScenario> result;
  FaultScenario current;
  std::function<void(std::size_t, int)> recurse = [&](std::size_t index,
                                                      int remaining) {
    if (index == copies.size()) {
      result.push_back(current);
      return;
    }
    for (int f = 0; f <= remaining; ++f) {
      FaultScenario saved = current;
      current.add_fault(copies[index], f);
      recurse(index + 1, remaining - f);
      current = std::move(saved);
    }
  };
  recurse(0, k);
  return result;
}

bool process_tolerates_all_scenarios(const ProcessPlan& plan, int k) {
  const int copies = plan.copy_count();
  std::vector<int> faults(static_cast<std::size_t>(copies), 0);
  std::function<bool(int, int)> recurse = [&](int index, int remaining) {
    if (index == copies) {
      for (int c = 0; c < copies; ++c) {
        if (faults[static_cast<std::size_t>(c)] <=
            plan.copies[static_cast<std::size_t>(c)].recoveries) {
          return true;  // this copy survives the split
        }
      }
      return false;
    }
    for (int f = 0; f <= remaining; ++f) {
      faults[static_cast<std::size_t>(index)] = f;
      const bool rest_ok =
          recurse(index + 1, remaining - f);
      faults[static_cast<std::size_t>(index)] = 0;
      if (!rest_ok) return false;
    }
    return true;
  };
  return recurse(0, k);
}

}  // namespace ftes
