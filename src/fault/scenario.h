// Concrete fault scenarios: which copy of which process is struck, and how
// many times.  The conditional scheduler branches over these, the runtime
// simulator injects them, and property tests sweep them exhaustively for
// small k.
//
// A scenario assigns every (process, copy) a number of faults; the faults on
// a checkpointed copy strike its successive execution attempts (worst case:
// each fault lands at the very end of the running segment).  The total over
// all copies never exceeds the fault model's k.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/policy.h"
#include "util/time_types.h"

namespace ftes {

/// Identifies one scheduled copy of a process.
struct CopyRef {
  ProcessId process;
  int copy = 0;

  friend bool operator==(const CopyRef& a, const CopyRef& b) {
    return a.process == b.process && a.copy == b.copy;
  }
  friend bool operator<(const CopyRef& a, const CopyRef& b) {
    if (a.process != b.process) return a.process < b.process;
    return a.copy < b.copy;
  }
};

class FaultScenario {
 public:
  FaultScenario() = default;

  void add_fault(CopyRef copy, int count = 1);
  [[nodiscard]] int faults_on(CopyRef copy) const;
  [[nodiscard]] int total_faults() const { return total_; }
  [[nodiscard]] const std::map<CopyRef, int>& hits() const { return hits_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }

  /// A copy survives a scenario iff the faults on it do not exceed its
  /// recovery budget (a pure replica survives only 0 faults).
  [[nodiscard]] bool copy_survives(const CopyPlan& plan, CopyRef ref) const;

  [[nodiscard]] std::string to_string(const Application& app) const;

 private:
  std::map<CopyRef, int> hits_;
  int total_ = 0;
};

/// Enumerates *all* fault scenarios with at most `k` faults distributed over
/// the copies of `assignment` (including the empty scenario).  Exponential
/// in k; intended for small applications in tests and the conditional
/// scheduler.  The count is C(copies + k, k)-ish, so callers should keep
/// k <= 3 and copies modest.
[[nodiscard]] std::vector<FaultScenario> enumerate_scenarios(
    const Application& app, const PolicyAssignment& assignment, int k);

/// Checks the paper's guarantee on one process: for every admissible split
/// of k faults among its copies, at least one copy survives.  Returns the
/// first violating scenario, or an empty optional-like flag via bool.
[[nodiscard]] bool process_tolerates_all_scenarios(const ProcessPlan& plan,
                                                   int k);

}  // namespace ftes
