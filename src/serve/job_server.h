// Synthesis-as-a-service: a long-running, self-healing job server
// (ROADMAP item 3; `ftes_cli --serve`).
//
// The server reads newline-delimited requests from an input stream and
// answers exactly one JSON line per request, in order (the line protocol,
// error taxonomy and retry/degradation semantics are documented in
// docs/SERVER.md).  Robustness invariants, all soak-tested with the
// fault-injection seam (util/fault_injection.h):
//
//   * Per-job isolation: any exception a job raises -- parse errors,
//     injected internal faults, std::bad_alloc, CancelledError -- is
//     caught at the job boundary, classified into the typed taxonomy
//     (parse_error / timed_out / cancelled / resource_exhausted /
//     internal) and reported in that job's response.  The server never
//     dies and the stream position never desynchronizes.
//   * Retry with capped exponential backoff for transient classes
//     (internal, resource_exhausted); deterministic failures (parse
//     errors) are never retried.  The attempt count and the total
//     backoff slept are surfaced per response.
//   * Graceful degradation: when a full-tables run exhausts its budget
//     or memory, the job is retried analytic-WCSL-only (`degraded`:
//     true) before giving up with an error response.
//   * Structural result cache: completed, non-degraded results are
//     cached under their canonical key (serve/result_cache.h) and repeat
//     submissions are answered bit-identically without recomputation.
//
// Concurrency (`serve_jobs` > 1): the reader thread parses request lines
// and dispatches independent jobs to the shared util/thread_pool; each
// job runs in its own SynthesisContext whose CancellationToken chains to
// the server-wide token, under a fi::JobScope so fault-injection
// schedules stay a function of the job's stream index.  Responses flow
// through a sequence-numbered reorder buffer, cache decisions pass a
// sequence-ordered gate (with same-key jobs coalescing onto the first
// in-flight computation), and cache mutations plus stats bumps are
// replayed in sequence order at drain time -- so the output stream is
// byte-identical to a serial run, wall-clock `seconds` aside (see
// docs/SERVER.md for the exact guarantee and its one eviction-pressure
// caveat).  A bounded in-flight window backpressures the reader;
// `quit`/EOF/`stats` drain every in-flight job before emitting, so no
// response is ever dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/result_cache.h"
#include "util/cancellation.h"

namespace ftes::serve {

struct ServerOptions {
  int threads = 1;                 ///< worker threads per job (0 = all)
  int serve_jobs = 1;              ///< max concurrent in-flight jobs (>= 1)
  std::uint64_t default_seed = 1;  ///< seed when the request has none
  int default_iterations = 300;    ///< tabu iterations when none given
  std::size_t cache_bytes = 8u << 20;  ///< result-cache budget (0 = off)
  int max_retries = 2;             ///< extra attempts for transient classes
  /// Base backoff before retry r (0-based) is `retry_backoff_ms << r`,
  /// capped at retry_backoff_cap_ms.  0 disables sleeping (tests).
  long long retry_backoff_ms = 0;
  long long retry_backoff_cap_ms = 1000;
};

/// Aggregate outcome of one serve() run (also emitted as the final stats
/// line of the stream).
struct ServerStats {
  long long jobs = 0;       ///< job requests read
  long long responses = 0;  ///< responses written (== jobs on exit)
  long long ok = 0;
  long long parse_error = 0;
  long long timed_out = 0;
  long long cancelled = 0;
  long long resource_exhausted = 0;
  long long internal = 0;
  long long retries = 0;    ///< extra attempts across all jobs
  long long degraded = 0;   ///< responses served from the degraded rung
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long cache_evictions = 0;
};

class JobServer {
 public:
  explicit JobServer(ServerOptions options);

  /// Runs the request loop until EOF or a `quit` command, writing one
  /// response line per request plus one final stats line.  Never throws
  /// for job-level failures; the caller owns stream lifetime.
  ServerStats serve(std::istream& in, std::ostream& out);

  /// Cancels the server-wide parent token every job's context chains to:
  /// in-flight jobs wind down cooperatively (well-formed `cancelled`
  /// responses), so a transport can shut down without dropping lines.
  void cancel_all() noexcept { server_token_.request_cancel(); }

  [[nodiscard]] const ServerOptions& options() const { return options_; }

  /// Opaque to callers (defined in job_server.cpp); public so the
  /// response-formatting helpers there can name them.
  struct Request;
  struct Outcome;
  struct JobTrace;
  class CacheConsult;
  struct ServeState;

 private:

  /// Parses one `job ...` command line.  Returns false (with `error`
  /// filled) on malformed requests.
  static bool parse_request(const std::string& line, Request& req,
                            std::string& error);
  /// One synthesis attempt; never throws (every failure is classified
  /// into the returned Outcome).  The first attempt to compute the cache
  /// key invokes `consult` exactly once (flagging `consulted`); a hit
  /// short-circuits the attempt.
  Outcome run_attempt(const Request& req, bool degraded, bool& consulted,
                      CacheConsult& consult);
  /// The full job: attempt/retry/degradation loop, insert-intent
  /// recording, response formatting.  Cache *application* (the ordered
  /// lookup/insert replay) is the caller's job -- immediate in serial
  /// mode, at drain time in concurrent mode.
  JobTrace handle_job(const Request& req, CacheConsult& consult);
  /// Saturating capped exponential backoff before attempt `attempts`+1.
  [[nodiscard]] long long backoff_delay_ms(int attempts) const;

  ServerStats serve_serial(std::istream& in, std::ostream& out);
  ServerStats serve_concurrent(std::istream& in, std::ostream& out);
  std::string stats_line(const ServerStats& stats) const;

  ServerOptions options_;
  ResultCache cache_;
  CancellationToken server_token_;  ///< parent of every job's token
};

}  // namespace ftes::serve
