#include "serve/job_server.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <istream>
#include <memory>
#include <new>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/json_io.h"
#include "util/stopwatch.h"

namespace ftes::serve {

struct JobServer::Request {
  std::string id;
  std::string file;  ///< problem path; exactly one of file/text is set
  std::string text;  ///< inline problem (escaped newlines unpacked)
  bool has_text = false;
  std::uint64_t seed = 0;
  bool has_seed = false;
  int iterations = 0;
  bool has_iterations = false;
  bool tables = true;
  long long stage_budget_ms = -1;
  long long total_budget_ms = -1;
};

struct JobServer::Outcome {
  enum Class {
    kOk,
    kParseError,
    kTimedOut,
    kCancelled,
    kResourceExhausted,
    kInternal,
  };
  Class cls = kInternal;
  bool cached = false;
  std::string error;
  std::string payload;    ///< result JSON; may be empty (pure error)
  std::string cache_key;  ///< set once parse + setup succeeded
};

namespace {

const char* status_name(JobServer::Outcome::Class cls);

/// Unescapes the `text=` value: \n, \t and \\ (a problem file is inlined
/// into one request line).  Returns false on a dangling backslash.
bool unescape_text(const std::string& in, std::string& out,
                   std::string& error) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\') {
      out.push_back(in[i]);
      continue;
    }
    if (i + 1 >= in.size()) {
      error = "text= ends in a dangling backslash";
      return false;
    }
    const char c = in[++i];
    if (c == 'n') {
      out.push_back('\n');
    } else if (c == 't') {
      out.push_back('\t');
    } else if (c == '\\') {
      out.push_back('\\');
    } else {
      error = std::string("text= has an unknown escape '\\") + c + "'";
      return false;
    }
  }
  return true;
}

bool parse_ll(const std::string& value, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(value, &pos);
    return pos == value.size();
  } catch (...) {
    return false;
  }
}

bool parse_u64(const std::string& value, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoull(value, &pos);
    return pos == value.size() && value[0] != '-';
  } catch (...) {
    return false;
  }
}

/// The job's result payload: every field is a deterministic function of
/// the problem + options (wall-clock metrics are zeroed), so a cached
/// payload is bit-identical to a fresh one for any thread count.
std::string result_payload(Time deadline, const SynthesisResult& result,
                           std::vector<StageMetrics> stages) {
  for (StageMetrics& m : stages) {
    m.seconds = 0.0;
    m.spec_seconds = 0.0;
    m.cancel_latency_seconds = 0.0;
  }
  std::ostringstream out;
  out << "{\"schedulable\": " << (result.schedulable ? "true" : "false")
      << ", \"timed_out\": " << (result.timed_out ? "true" : "false")
      << ", \"cancelled\": " << (result.cancelled ? "true" : "false")
      << ", \"wcsl\": " << result.wcsl.makespan
      << ", \"deadline\": " << deadline
      << ", \"evaluations\": " << result.evaluations
      << ", \"tables\": " << (result.schedule ? "true" : "false")
      << ", \"stages\": " << metrics_to_json(stages) << "}";
  return out.str();
}

const char* status_name(JobServer::Outcome::Class cls) {
  switch (cls) {
    case JobServer::Outcome::kOk: return "ok";
    case JobServer::Outcome::kParseError: return "parse_error";
    case JobServer::Outcome::kTimedOut: return "timed_out";
    case JobServer::Outcome::kCancelled: return "cancelled";
    case JobServer::Outcome::kResourceExhausted: return "resource_exhausted";
    case JobServer::Outcome::kInternal: return "internal";
  }
  return "internal";
}

}  // namespace

JobServer::JobServer(ServerOptions options)
    : options_(options), cache_(options.cache_bytes) {}

bool JobServer::parse_request(const std::string& line, Request& req,
                              std::string& error) {
  std::istringstream in(line);
  std::string tok;
  in >> tok;
  if (tok != "job") {
    error = "unknown command '" + tok + "' (expected job, stats or quit)";
    return false;
  }
  while (in >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      error = "expected key=value, got '" + tok + "'";
      return false;
    }
    const std::string key = tok.substr(0, eq);
    std::string value = tok.substr(eq + 1);
    if (key == "text") {
      // text= swallows the rest of the line (the value may contain
      // spaces; newlines travel as \n escapes).
      std::string rest;
      std::getline(in, rest);
      value += rest;
      if (!unescape_text(value, req.text, error)) return false;
      req.has_text = true;
      continue;
    }
    if (key == "id") {
      req.id = value;
    } else if (key == "file") {
      req.file = value;
    } else if (key == "seed") {
      if (!parse_u64(value, req.seed)) {
        error = "seed= expects an unsigned integer, got '" + value + "'";
        return false;
      }
      req.has_seed = true;
    } else if (key == "iterations") {
      long long it = 0;
      if (!parse_ll(value, it) || it < 1 || it > 1'000'000) {
        error = "iterations= expects 1..1000000, got '" + value + "'";
        return false;
      }
      req.iterations = static_cast<int>(it);
      req.has_iterations = true;
    } else if (key == "tables") {
      if (value == "0") {
        req.tables = false;
      } else if (value == "1") {
        req.tables = true;
      } else {
        error = "tables= expects 0 or 1, got '" + value + "'";
        return false;
      }
    } else if (key == "stage-budget-ms") {
      if (!parse_ll(value, req.stage_budget_ms) || req.stage_budget_ms < -1) {
        error = "stage-budget-ms= expects an integer >= -1, got '" + value +
                "'";
        return false;
      }
    } else if (key == "total-budget-ms") {
      if (!parse_ll(value, req.total_budget_ms) || req.total_budget_ms < -1) {
        error = "total-budget-ms= expects an integer >= -1, got '" + value +
                "'";
        return false;
      }
    } else {
      error = "unknown request key '" + key + "'";
      return false;
    }
  }
  if (req.file.empty() == !req.has_text) {
    error = "exactly one of file= or text= is required";
    return false;
  }
  return true;
}

JobServer::Outcome JobServer::run_attempt(const Request& req, bool degraded) {
  Outcome out;
  enum Phase { kSetup, kRun } phase = kSetup;
  try {
    FTES_FAULT_POINT("serve.job");
    std::string text;
    if (!req.file.empty()) {
      std::ifstream in(req.file);
      if (!in) {
        out.cls = Outcome::kParseError;
        out.error = "cannot read '" + req.file + "'";
        return out;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    } else {
      text = req.text;
    }
    ParsedProblem problem = parse_problem_string(text);
    SynthesisOptions synth;
    synth.fault_model = problem.model;
    synth.optimize.seed = req.has_seed ? req.seed : options_.default_seed;
    synth.optimize.iterations =
        req.has_iterations ? req.iterations : options_.default_iterations;
    synth.optimize.threads = options_.threads;
    synth.build_schedule_tables = req.tables && !degraded;
    synth.stage_budget_ms = req.stage_budget_ms;
    synth.total_budget_ms = req.total_budget_ms;
    out.cache_key =
        canonical_key(problem.app, problem.arch, problem.model, synth);
    if (!degraded && options_.cache_bytes > 0) {
      std::string cached;
      if (cache_.lookup(out.cache_key, cached)) {
        out.cls = Outcome::kOk;
        out.cached = true;
        out.payload = std::move(cached);
        return out;
      }
    }
    // The context owns copies of the problem; construction validates the
    // model (invalid_argument classifies as parse_error via kSetup).
    auto ctx = std::make_unique<SynthesisContext>(problem.app, problem.arch,
                                                  synth);
    phase = kRun;
    Pipeline pipeline = Pipeline::default_pipeline();
    const SynthesisResult result = pipeline.run(*ctx);
    if (result.cancelled) {
      out.cls = result.timed_out ? Outcome::kTimedOut : Outcome::kCancelled;
      out.error = result.timed_out ? "wall-clock budget exhausted"
                                   : "cancelled";
      if (result.wcsl.makespan > 0) {
        // Partial but well-formed: surface what the budget bought.
        out.payload = result_payload(problem.app.deadline(), result,
                                     pipeline.metrics());
      }
      return out;
    }
    out.cls = Outcome::kOk;
    out.payload =
        result_payload(problem.app.deadline(), result, pipeline.metrics());
  } catch (const fi::InjectedFault& e) {
    out.cls = Outcome::kInternal;  // transient by definition: retry
    out.error = e.what();
  } catch (const CancelledError& e) {
    out.cls = Outcome::kCancelled;
    out.error = e.what();
  } catch (const std::bad_alloc&) {
    out.cls = Outcome::kResourceExhausted;
    out.error = "allocation failure";
  } catch (const std::exception& e) {
    // Setup-phase failures (parser, model validation) are deterministic
    // properties of the input; anything a stage throws is internal.
    out.cls = phase == kSetup ? Outcome::kParseError : Outcome::kInternal;
    out.error = e.what();
  } catch (...) {
    out.cls = Outcome::kInternal;
    out.error = "unknown non-standard exception";
  }
  return out;
}

std::string JobServer::handle_job(const Request& req, ServerStats& stats) {
  const Stopwatch watch;
  int attempts = 0;
  bool degraded = false;
  Outcome out;
  for (;;) {
    if (attempts > 0) {
      ++stats.retries;
      if (options_.retry_backoff_ms > 0) {
        long long ms = options_.retry_backoff_ms;
        for (int r = 1; r < attempts && ms < options_.retry_backoff_cap_ms;
             ++r) {
          ms <<= 1;
        }
        ms = std::min(ms, options_.retry_backoff_cap_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
    }
    ++attempts;
    out = run_attempt(req, degraded);
    if (out.cls == Outcome::kOk || out.cls == Outcome::kParseError ||
        out.cls == Outcome::kCancelled) {
      break;
    }
    if (out.cls == Outcome::kTimedOut) {
      // Degradation rung 2: shed the exponential table stage and retry
      // analytic-only (fresh budgets).  Rung 3 is the error response.
      if (!degraded && req.tables) {
        degraded = true;
        continue;
      }
      break;
    }
    // Transient classes: internal faults retry as-is, memory pressure
    // degrades first (the table stage dominates the footprint).
    if (out.cls == Outcome::kResourceExhausted && !degraded && req.tables) {
      degraded = true;
      continue;
    }
    if (attempts < 1 + options_.max_retries) continue;
    break;
  }

  switch (out.cls) {
    case Outcome::kOk: ++stats.ok; break;
    case Outcome::kParseError: ++stats.parse_error; break;
    case Outcome::kTimedOut: ++stats.timed_out; break;
    case Outcome::kCancelled: ++stats.cancelled; break;
    case Outcome::kResourceExhausted: ++stats.resource_exhausted; break;
    case Outcome::kInternal: ++stats.internal; break;
  }
  if (degraded) ++stats.degraded;
  if (out.cls == Outcome::kOk && !out.cached && !degraded &&
      options_.cache_bytes > 0 && !out.cache_key.empty()) {
    try {
      cache_.insert(out.cache_key, out.payload);
    } catch (...) {
      // A cache fault (injected or real) must never affect the response.
    }
  }

  std::ostringstream res;
  res << "{\"id\": ";
  json_escape(res, req.id);
  res << ", \"status\": \"" << status_name(out.cls) << "\""
      << ", \"attempts\": " << attempts
      << ", \"cached\": " << (out.cached ? "true" : "false")
      << ", \"degraded\": " << (degraded ? "true" : "false")
      << ", \"seconds\": ";
  json_seconds(res, watch.seconds());
  if (!out.error.empty()) {
    res << ", \"error\": ";
    json_escape(res, out.error);
  }
  if (!out.payload.empty()) res << ", \"result\": " << out.payload;
  res << "}";
  return res.str();
}

std::string JobServer::stats_line(const ServerStats& stats) const {
  std::ostringstream out;
  out << "{\"status\": \"stats\", \"jobs\": " << stats.jobs
      << ", \"responses\": " << stats.responses << ", \"ok\": " << stats.ok
      << ", \"parse_error\": " << stats.parse_error
      << ", \"timed_out\": " << stats.timed_out
      << ", \"cancelled\": " << stats.cancelled
      << ", \"resource_exhausted\": " << stats.resource_exhausted
      << ", \"internal\": " << stats.internal
      << ", \"retries\": " << stats.retries
      << ", \"degraded\": " << stats.degraded << ", \"cache\": {\"hits\": "
      << cache_.hits() << ", \"misses\": " << cache_.misses()
      << ", \"evictions\": " << cache_.evictions()
      << ", \"entries\": " << cache_.entry_count()
      << ", \"bytes\": " << cache_.bytes_used()
      << ", \"budget\": " << cache_.budget_bytes() << "}"
      << ", \"stages\": [" << cache_.metrics().to_json() << "]"
      << ", \"fault_injection\": {";
  bool first = true;
  for (const auto& [site, st] : fi::stats()) {
    if (!first) out << ", ";
    first = false;
    json_escape(out, site);
    out << ": {\"hits\": " << st.hits << ", \"fired\": " << st.fired << "}";
  }
  out << "}}";
  return out.str();
}

ServerStats JobServer::serve(std::istream& in, std::ostream& out) {
  ServerStats stats;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream head(line);
    std::string cmd;
    head >> cmd;
    if (cmd == "quit") break;
    if (cmd == "stats") {
      out << stats_line(stats) << "\n" << std::flush;
      continue;
    }
    ++stats.jobs;
    std::string response;
    try {
      Request req;
      std::string perr;
      if (!parse_request(line, req, perr)) {
        ++stats.parse_error;
        std::ostringstream res;
        res << "{\"id\": ";
        json_escape(res, req.id);
        res << ", \"status\": \"parse_error\", \"attempts\": 0"
            << ", \"cached\": false, \"degraded\": false"
            << ", \"seconds\": 0.000000, \"error\": ";
        json_escape(res, perr);
        res << "}";
        response = res.str();
      } else {
        response = handle_job(req, stats);
      }
    } catch (...) {
      // Last-ditch per-request guard: even a failure while *formatting*
      // the response must not kill the server or skip a response line.
      ++stats.internal;
      response =
          "{\"id\": \"\", \"status\": \"internal\", \"attempts\": 0, "
          "\"cached\": false, \"degraded\": false, \"seconds\": 0.000000, "
          "\"error\": \"request handling failed\"}";
    }
    ++stats.responses;
    out << response << "\n" << std::flush;
  }
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_evictions = cache_.evictions();
  out << stats_line(stats) << "\n" << std::flush;
  return stats;
}

}  // namespace ftes::serve
