#include "serve/job_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/json_io.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftes::serve {

struct JobServer::Request {
  std::string id;
  std::string file;  ///< problem path; exactly one of file/text is set
  std::string text;  ///< inline problem (escaped newlines unpacked)
  bool has_text = false;
  std::uint64_t seed = 0;
  bool has_seed = false;
  int iterations = 0;
  bool has_iterations = false;
  bool tables = true;
  long long stage_budget_ms = -1;
  long long total_budget_ms = -1;
};

struct JobServer::Outcome {
  enum Class {
    kOk,
    kParseError,
    kTimedOut,
    kCancelled,
    kResourceExhausted,
    kInternal,
  };
  Class cls = kInternal;
  bool cached = false;
  std::string error;
  std::string payload;    ///< result JSON; may be empty (pure error)
  std::string cache_key;  ///< set once parse + setup succeeded
};

/// Everything one job hands back to its caller: the formatted response
/// plus the stats deltas and cache mutations to apply *in sequence
/// order* (immediately in serial mode, at drain time in concurrent
/// mode).  This is the single funnel the `responses == jobs` invariant
/// rests on: every job -- normal, degraded, faulted, even one whose
/// response formatting threw -- produces exactly one JobTrace-shaped
/// record, and the applier bumps exactly one terminal-outcome counter
/// and writes exactly one line per record.
struct JobServer::JobTrace {
  std::string response;
  Outcome::Class cls = Outcome::kInternal;
  long long retries = 0;
  bool degraded = false;
  std::string cache_key;
  bool do_insert = false;
  std::string insert_payload;
};

/// The exactly-once cache decision seam of a job.  run_attempt() invokes
/// consult() at the first attempt that computes the canonical key (never
/// on degraded attempts); a true return is a hit and short-circuits the
/// attempt with the cached payload.
class JobServer::CacheConsult {
 public:
  virtual ~CacheConsult() = default;
  virtual bool consult(const std::string& key, std::string& payload) = 0;
};

namespace {

const char* status_name(JobServer::Outcome::Class cls);

/// Response of last resort: preformatted so emitting it cannot itself
/// throw.  Shape-compatible with format_response() below.
const char* const kLastDitchResponse =
    "{\"id\": \"\", \"status\": \"internal\", \"attempts\": 0, "
    "\"cached\": false, \"degraded\": false, \"backoff_ms\": 0, "
    "\"seconds\": 0.000000, \"error\": \"request handling failed\"}";

/// Unescapes the `text=` value: \n, \t and \\ (a problem file is inlined
/// into one request line).  Returns false on a dangling backslash.
bool unescape_text(const std::string& in, std::string& out,
                   std::string& error) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\') {
      out.push_back(in[i]);
      continue;
    }
    if (i + 1 >= in.size()) {
      error = "text= ends in a dangling backslash";
      return false;
    }
    const char c = in[++i];
    if (c == 'n') {
      out.push_back('\n');
    } else if (c == 't') {
      out.push_back('\t');
    } else if (c == '\\') {
      out.push_back('\\');
    } else {
      error = std::string("text= has an unknown escape '\\") + c + "'";
      return false;
    }
  }
  return true;
}

bool parse_ll(const std::string& value, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(value, &pos);
    return pos == value.size();
  } catch (...) {
    return false;
  }
}

bool parse_u64(const std::string& value, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoull(value, &pos);
    return pos == value.size() && value[0] != '-';
  } catch (...) {
    return false;
  }
}

/// The job's result payload: every field is a deterministic function of
/// the problem + options (wall-clock metrics are zeroed), so a cached
/// payload is bit-identical to a fresh one for any thread count.
std::string result_payload(Time deadline, const SynthesisResult& result,
                           std::vector<StageMetrics> stages) {
  for (StageMetrics& m : stages) {
    m.seconds = 0.0;
    m.spec_seconds = 0.0;
    m.cancel_latency_seconds = 0.0;
  }
  std::ostringstream out;
  out << "{\"schedulable\": " << (result.schedulable ? "true" : "false")
      << ", \"timed_out\": " << (result.timed_out ? "true" : "false")
      << ", \"cancelled\": " << (result.cancelled ? "true" : "false")
      << ", \"wcsl\": " << result.wcsl.makespan
      << ", \"deadline\": " << deadline
      << ", \"evaluations\": " << result.evaluations
      << ", \"tables\": " << (result.schedule ? "true" : "false")
      << ", \"stages\": " << metrics_to_json(stages) << "}";
  return out.str();
}

/// The one response-line formatter: every per-job line -- fresh, cached,
/// degraded, inline parse_error -- funnels through here, so serial and
/// concurrent mode cannot drift apart in shape.  Everything emitted
/// except `seconds` is a deterministic function of the job and its
/// stream index (`backoff_ms` is computed, not measured).
std::string format_response(const std::string& id, const char* status,
                            int attempts, bool cached, bool degraded,
                            long long backoff_ms, double seconds,
                            const std::string& error,
                            const std::string& payload) {
  std::ostringstream res;
  res << "{\"id\": ";
  json_escape(res, id);
  res << ", \"status\": \"" << status << "\""
      << ", \"attempts\": " << attempts
      << ", \"cached\": " << (cached ? "true" : "false")
      << ", \"degraded\": " << (degraded ? "true" : "false")
      << ", \"backoff_ms\": " << backoff_ms << ", \"seconds\": ";
  json_seconds(res, seconds);
  if (!error.empty()) {
    res << ", \"error\": ";
    json_escape(res, error);
  }
  if (!payload.empty()) res << ", \"result\": " << payload;
  res << "}";
  return res.str();
}

const char* status_name(JobServer::Outcome::Class cls) {
  switch (cls) {
    case JobServer::Outcome::kOk: return "ok";
    case JobServer::Outcome::kParseError: return "parse_error";
    case JobServer::Outcome::kTimedOut: return "timed_out";
    case JobServer::Outcome::kCancelled: return "cancelled";
    case JobServer::Outcome::kResourceExhausted: return "resource_exhausted";
    case JobServer::Outcome::kInternal: return "internal";
  }
  return "internal";
}

/// Exactly one terminal-outcome counter bump per job (see JobTrace).
void bump_class(ServerStats& stats, JobServer::Outcome::Class cls) {
  switch (cls) {
    case JobServer::Outcome::kOk: ++stats.ok; break;
    case JobServer::Outcome::kParseError: ++stats.parse_error; break;
    case JobServer::Outcome::kTimedOut: ++stats.timed_out; break;
    case JobServer::Outcome::kCancelled: ++stats.cancelled; break;
    case JobServer::Outcome::kResourceExhausted:
      ++stats.resource_exhausted;
      break;
    case JobServer::Outcome::kInternal: ++stats.internal; break;
  }
}

/// Applies an insert that must never affect the already-formatted
/// response, whatever the allocator does mid-copy.
void guarded_insert(ResultCache& cache, const std::string& key,
                    const std::string& payload) {
  try {
    cache.insert(key, payload);
  } catch (...) {
    // A cache failure must never affect the response.
  }
}

/// Serial mode: the decision *is* the sequenced application, because
/// jobs run one at a time in request order.
class SerialConsult final : public JobServer::CacheConsult {
 public:
  explicit SerialConsult(ResultCache& cache) : cache_(cache) {}
  bool consult(const std::string& key, std::string& payload) override {
    return cache_.lookup(key, payload);
  }

 private:
  ResultCache& cache_;
};

// ------------------------------------------------------- concurrency --

/// Resolution of one in-flight computation of a cache key: same-key
/// successors block on it instead of recomputing, exactly as the serial
/// order would have served them from the cache.
struct KeyState {
  std::mutex m;
  std::condition_variable cv;
  bool resolved = false;
  bool cacheable = false;
  std::string payload;

  void resolve(bool cacheable_now, std::string payload_now) {
    {
      const std::lock_guard<std::mutex> lock(m);
      resolved = true;
      cacheable = cacheable_now;
      payload = std::move(payload_now);
    }
    cv.notify_all();
  }

  /// Blocks until resolved; true (payload filled) iff the predecessor
  /// completed with a cacheable payload.
  bool wait_cacheable(std::string& out) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return resolved; });
    if (!cacheable) return false;
    out = payload;
    return true;
  }
};

/// Admits jobs to their cache decision strictly in stream order, so the
/// decision each job sees depends only on lower-sequence jobs -- the
/// serial order's data dependency, nothing else.  Every sequence number
/// must pass exactly once, via reach() or skip().  Deadlock-free by
/// construction: a job waits only for lower sequence numbers, and FIFO
/// dispatch guarantees those started first.
class SequenceGate {
 public:
  /// Blocks until it is `seq`'s turn, runs `fn` while holding the turn,
  /// then advances past any already-skipped successors.
  void reach(std::uint64_t seq, const std::function<void()>& fn) {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return next_ == seq; });
    fn();
    advance_locked();
    cv_.notify_all();
  }

  /// Marks `seq` as having no cache decision (malformed request, jobs
  /// that never computed a key).  Non-blocking; callable in any order.
  void skip(std::uint64_t seq) {
    const std::lock_guard<std::mutex> lock(m_);
    if (next_ == seq) {
      advance_locked();
      cv_.notify_all();
    } else {
      skipped_.insert(seq);
    }
  }

 private:
  void advance_locked() {
    ++next_;
    while (skipped_.erase(next_) != 0) ++next_;
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::uint64_t next_ = 0;
  std::set<std::uint64_t> skipped_;
};

/// One drained-in-order completion record (JobTrace plus the concurrent
/// bookkeeping the drain needs).
struct Completed {
  std::string response;
  JobServer::Outcome::Class cls = JobServer::Outcome::kInternal;
  long long retries = 0;
  bool degraded = false;
  bool do_insert = false;
  std::string cache_key;       ///< insert target (== consulted key)
  std::string insert_payload;
  bool did_consult = false;    ///< replay one ordered lookup at drain
  bool predicted_hit = false;
  std::string consulted_key;
  std::string hit_payload;     ///< re-convergence payload for a mispredict
  std::shared_ptr<KeyState> self_state;
};

}  // namespace

/// Shared state of one serve_concurrent() run.  Lock order, outermost
/// first: gate / drain mutex (never both), then key_owners_mutex, then the
/// cache's internal mutex.
struct JobServer::ServeState {
  SequenceGate gate;
  std::mutex key_owners_mutex;
  /// Latest decided-but-undrained computation per key; erased when its
  /// job drains (the real cache carries the fact from then on).
  std::unordered_map<std::string, std::shared_ptr<KeyState>> key_owners;

  std::mutex mu;                ///< guards everything below + the output
  std::condition_variable cv;   ///< backpressure + barrier + drain wakeups
  std::map<std::uint64_t, Completed> ready;  ///< reorder buffer
  std::uint64_t next_drain = 0;
};

namespace {

/// Concurrent mode: predict the sequenced lookup at the ordered gate,
/// coalescing same-key jobs onto the first in-flight computation.
class ConcurrentConsult final : public JobServer::CacheConsult {
 public:
  ConcurrentConsult(JobServer::ServeState& st, ResultCache& cache,
                    std::uint64_t seq)
      : st_(st), cache_(cache), seq_(seq) {}

  bool consult(const std::string& key, std::string& payload) override {
    bool peek_hit = false;
    std::string peeked;
    std::shared_ptr<KeyState> pred;
    st_.gate.reach(seq_, [&] {
      const std::lock_guard<std::mutex> lock(st_.key_owners_mutex);
      auto it = st_.key_owners.find(key);
      if (it != st_.key_owners.end()) {
        // A lower-sequence job owns this key and has not drained yet;
        // chain behind it (and become the latest for our successors).
        pred = it->second;
        self_ = std::make_shared<KeyState>();
        it->second = self_;
      } else if (cache_.peek(key, peeked)) {
        peek_hit = true;
      } else {
        self_ = std::make_shared<KeyState>();
        st_.key_owners.emplace(key, self_);
      }
    });
    gate_passed_ = true;
    consulted_key_ = key;
    if (peek_hit) {
      predicted_hit_ = true;
      hit_payload_ = std::move(peeked);
      payload = hit_payload_;
      return true;
    }
    if (pred != nullptr) {
      std::string p;
      if (pred->wait_cacheable(p)) {
        // The predecessor completed cacheably: the serial order would
        // have answered us from its insert.
        self_->resolve(true, p);
        resolved_ = true;
        predicted_hit_ = true;
        hit_payload_ = std::move(p);
        payload = hit_payload_;
        return true;
      }
      // The predecessor failed or degraded (nothing was inserted): the
      // serial order would have missed, so this job runs and owns the
      // resolution its own successors wait on.
    }
    return false;
  }

  /// Folds the decision state into the completion record and settles
  /// the gate/registry bookkeeping exactly once, whatever path the job
  /// took (including the catch-everything one).
  void finish(Completed& c) {
    if (self_ != nullptr && !resolved_) {
      self_->resolve(c.do_insert, c.insert_payload);
      resolved_ = true;
    }
    if (!gate_passed_) {
      st_.gate.skip(seq_);
      gate_passed_ = true;
    }
    c.did_consult = !consulted_key_.empty();
    c.predicted_hit = predicted_hit_;
    c.consulted_key = consulted_key_;
    c.hit_payload = hit_payload_;
    c.self_state = self_;
  }

 private:
  JobServer::ServeState& st_;
  ResultCache& cache_;
  std::uint64_t seq_;
  bool gate_passed_ = false;
  bool predicted_hit_ = false;
  bool resolved_ = false;
  std::string consulted_key_;
  std::string hit_payload_;
  std::shared_ptr<KeyState> self_;
};

/// Drain-time application of one job, in sequence order: replay the
/// cache mutations the serial order would have made, bump exactly one
/// terminal counter, write exactly one line.  Caller holds st.mu.
void apply_completed(JobServer::ServeState& st, Completed&& c,
                     ResultCache& cache, ServerStats& stats,
                     std::ostream& out) {
  bump_class(stats, c.cls);
  stats.retries += c.retries;
  if (c.degraded) ++stats.degraded;
  if (c.did_consult) {
    std::string tmp;
    const bool hit = cache.lookup(c.consulted_key, tmp);
    if (c.predicted_hit && !hit && !c.hit_payload.empty()) {
      // Eviction-pressure mispredict (docs/SERVER.md): an intermediate
      // insert evicted the entry between the gate's peek and this
      // ordered replay.  The response (already formatted from the
      // byte-identical predecessor payload) stands; re-inserting keeps
      // the cache's contents on the serial trajectory.
      guarded_insert(cache, c.consulted_key, c.hit_payload);
    }
  }
  if (c.do_insert) guarded_insert(cache, c.cache_key, c.insert_payload);
  if (c.self_state != nullptr) {
    const std::lock_guard<std::mutex> lock(st.key_owners_mutex);
    const auto it = st.key_owners.find(c.consulted_key);
    if (it != st.key_owners.end() && it->second == c.self_state) {
      st.key_owners.erase(it);
    }
  }
  ++stats.responses;
  out << c.response << "\n" << std::flush;
}

/// Parks `seq`'s record in the reorder buffer and drains every
/// consecutive ready record.  Whichever worker (or the reader, for
/// inline responses) completes the next-in-order job performs the drain;
/// no dedicated writer thread exists.
void complete_job(JobServer::ServeState& st, std::uint64_t seq, Completed&& c,
                  ResultCache& cache, ServerStats& stats, std::ostream& out) {
  const std::lock_guard<std::mutex> lock(st.mu);
  st.ready.emplace(seq, std::move(c));
  for (;;) {
    const auto it = st.ready.find(st.next_drain);
    if (it == st.ready.end()) break;
    Completed done = std::move(it->second);
    st.ready.erase(it);
    apply_completed(st, std::move(done), cache, stats, out);
    ++st.next_drain;
  }
  // Notify under the lock so the state cannot be torn down between a
  // waiter's predicate turning true and this notification landing.
  st.cv.notify_all();
}

}  // namespace

JobServer::JobServer(ServerOptions options)
    : options_(options), cache_(options.cache_bytes) {}

bool JobServer::parse_request(const std::string& line, Request& req,
                              std::string& error) {
  std::istringstream in(line);
  std::string tok;
  in >> tok;
  if (tok != "job") {
    error = "unknown command '" + tok + "' (expected job, stats or quit)";
    return false;
  }
  while (in >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      error = "expected key=value, got '" + tok + "'";
      return false;
    }
    const std::string key = tok.substr(0, eq);
    std::string value = tok.substr(eq + 1);
    if (key == "text") {
      // text= swallows the rest of the line (the value may contain
      // spaces; newlines travel as \n escapes).
      std::string rest;
      std::getline(in, rest);
      value += rest;
      if (!unescape_text(value, req.text, error)) return false;
      req.has_text = true;
      continue;
    }
    if (key == "id") {
      req.id = value;
    } else if (key == "file") {
      req.file = value;
    } else if (key == "seed") {
      if (!parse_u64(value, req.seed)) {
        error = "seed= expects an unsigned integer, got '" + value + "'";
        return false;
      }
      req.has_seed = true;
    } else if (key == "iterations") {
      long long it = 0;
      if (!parse_ll(value, it) || it < 1 || it > 1'000'000) {
        error = "iterations= expects 1..1000000, got '" + value + "'";
        return false;
      }
      req.iterations = static_cast<int>(it);
      req.has_iterations = true;
    } else if (key == "tables") {
      if (value == "0") {
        req.tables = false;
      } else if (value == "1") {
        req.tables = true;
      } else {
        error = "tables= expects 0 or 1, got '" + value + "'";
        return false;
      }
    } else if (key == "stage-budget-ms") {
      if (!parse_ll(value, req.stage_budget_ms) || req.stage_budget_ms < -1) {
        error = "stage-budget-ms= expects an integer >= -1, got '" + value +
                "'";
        return false;
      }
    } else if (key == "total-budget-ms") {
      if (!parse_ll(value, req.total_budget_ms) || req.total_budget_ms < -1) {
        error = "total-budget-ms= expects an integer >= -1, got '" + value +
                "'";
        return false;
      }
    } else {
      error = "unknown request key '" + key + "'";
      return false;
    }
  }
  if (req.file.empty() == !req.has_text) {
    error = "exactly one of file= or text= is required";
    return false;
  }
  return true;
}

JobServer::Outcome JobServer::run_attempt(const Request& req, bool degraded,
                                          bool& consulted,
                                          CacheConsult& consult) {
  Outcome out;
  enum Phase { kSetup, kRun } phase = kSetup;
  try {
    FTES_FAULT_POINT("serve.job");
    std::string text;
    if (!req.file.empty()) {
      std::ifstream in(req.file);
      if (!in) {
        out.cls = Outcome::kParseError;
        out.error = "cannot read '" + req.file + "'";
        return out;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    } else {
      text = req.text;
    }
    ParsedProblem problem = parse_problem_string(text);
    SynthesisOptions synth;
    synth.fault_model = problem.model;
    synth.optimize.seed = req.has_seed ? req.seed : options_.default_seed;
    synth.optimize.iterations =
        req.has_iterations ? req.iterations : options_.default_iterations;
    synth.optimize.threads = options_.threads;
    synth.build_schedule_tables = req.tables && !degraded;
    synth.stage_budget_ms = req.stage_budget_ms;
    synth.total_budget_ms = req.total_budget_ms;
    out.cache_key =
        canonical_key(problem.app, problem.arch, problem.model, synth);
    if (!degraded && options_.cache_bytes > 0 && !consulted) {
      // The seam fires before the decision is marked done, so an
      // injected cache fault is classified (and retried) exactly like
      // any other attempt failure and the next attempt consults afresh.
      FTES_FAULT_POINT("cache.lookup");
      std::string cached;
      const bool hit = consult.consult(out.cache_key, cached);
      consulted = true;
      if (hit) {
        out.cls = Outcome::kOk;
        out.cached = true;
        out.payload = std::move(cached);
        return out;
      }
    }
    // The context owns copies of the problem; construction validates the
    // model (invalid_argument classifies as parse_error via kSetup).
    auto ctx = std::make_unique<SynthesisContext>(problem.app, problem.arch,
                                                  synth);
    // Chain to the server-wide token: cancel_all() winds down every
    // in-flight job cooperatively through the stages' polling bodies.
    ctx->cancel_token().set_parent(&server_token_);
    phase = kRun;
    Pipeline pipeline = Pipeline::default_pipeline();
    const SynthesisResult result = pipeline.run(*ctx);
    if (result.cancelled) {
      out.cls = result.timed_out ? Outcome::kTimedOut : Outcome::kCancelled;
      out.error = result.timed_out ? "wall-clock budget exhausted"
                                   : "cancelled";
      if (result.wcsl.makespan > 0) {
        // Partial but well-formed: surface what the budget bought.
        out.payload = result_payload(problem.app.deadline(), result,
                                     pipeline.metrics());
      }
      return out;
    }
    out.cls = Outcome::kOk;
    out.payload =
        result_payload(problem.app.deadline(), result, pipeline.metrics());
  } catch (const fi::InjectedFault& e) {
    out.cls = Outcome::kInternal;  // transient by definition: retry
    out.error = e.what();
  } catch (const CancelledError& e) {
    out.cls = Outcome::kCancelled;
    out.error = e.what();
  } catch (const std::bad_alloc&) {
    out.cls = Outcome::kResourceExhausted;
    out.error = "allocation failure";
  } catch (const std::exception& e) {
    // Setup-phase failures (parser, model validation) are deterministic
    // properties of the input; anything a stage throws is internal.
    out.cls = phase == kSetup ? Outcome::kParseError : Outcome::kInternal;
    out.error = e.what();
  } catch (...) {
    out.cls = Outcome::kInternal;
    out.error = "unknown non-standard exception";
  }
  return out;
}

long long JobServer::backoff_delay_ms(int attempts) const {
  // Delay before attempt `attempts`+1: base << (attempts-1), capped.
  // Saturating by construction -- the value only doubles while it is at
  // most cap/2, so it can neither overflow nor overshoot the cap, no
  // matter how large --retry-backoff-ms is.
  long long ms = options_.retry_backoff_ms;
  const long long cap = options_.retry_backoff_cap_ms;
  if (ms <= 0 || cap <= 0) return 0;
  if (ms >= cap) return cap;
  for (int r = 1; r < attempts; ++r) {
    if (ms > cap / 2) return cap;
    ms <<= 1;
  }
  return ms < cap ? ms : cap;
}

JobServer::JobTrace JobServer::handle_job(const Request& req,
                                          CacheConsult& consult) {
  const Stopwatch watch;
  JobTrace trace;
  int attempts = 0;
  bool degraded = false;
  bool consulted = false;
  long long backoff_total = 0;
  Outcome out;
  for (;;) {
    if (attempts > 0) {
      ++trace.retries;
      const long long delay = backoff_delay_ms(attempts);
      if (delay > 0) {
        backoff_total += delay;
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    ++attempts;
    out = run_attempt(req, degraded, consulted, consult);
    if (out.cls == Outcome::kOk || out.cls == Outcome::kParseError ||
        out.cls == Outcome::kCancelled) {
      break;
    }
    if (out.cls == Outcome::kTimedOut) {
      // Degradation rung 2: shed the exponential table stage and retry
      // analytic-only (fresh budgets).  Rung 3 is the error response.
      if (!degraded && req.tables) {
        degraded = true;
        continue;
      }
      break;
    }
    // Transient classes: internal faults retry as-is, memory pressure
    // degrades first (the table stage dominates the footprint).
    if (out.cls == Outcome::kResourceExhausted && !degraded && req.tables) {
      degraded = true;
      continue;
    }
    if (attempts < 1 + options_.max_retries) continue;
    break;
  }

  trace.cls = out.cls;
  trace.degraded = degraded;
  trace.cache_key = out.cache_key;
  if (out.cls == Outcome::kOk && !out.cached && !degraded &&
      options_.cache_bytes > 0 && !out.cache_key.empty()) {
    try {
      // The insert seam fires here, on the job's own thread inside its
      // fi::JobScope -- the ordered application (serial: right after
      // this returns; concurrent: at drain) is replay, not a fault site.
      FTES_FAULT_POINT("cache.insert");
      trace.insert_payload = out.payload;
      trace.do_insert = true;
    } catch (...) {
      // A cache fault (injected or real) must never affect the response.
    }
  }
  trace.response =
      format_response(req.id, status_name(out.cls), attempts, out.cached,
                      degraded, backoff_total, watch.seconds(), out.error,
                      out.payload);
  return trace;
}

std::string JobServer::stats_line(const ServerStats& stats) const {
  std::ostringstream out;
  out << "{\"status\": \"stats\", \"jobs\": " << stats.jobs
      << ", \"responses\": " << stats.responses << ", \"ok\": " << stats.ok
      << ", \"parse_error\": " << stats.parse_error
      << ", \"timed_out\": " << stats.timed_out
      << ", \"cancelled\": " << stats.cancelled
      << ", \"resource_exhausted\": " << stats.resource_exhausted
      << ", \"internal\": " << stats.internal
      << ", \"retries\": " << stats.retries
      << ", \"degraded\": " << stats.degraded << ", \"cache\": {\"hits\": "
      << cache_.hits() << ", \"misses\": " << cache_.misses()
      << ", \"evictions\": " << cache_.evictions()
      << ", \"entries\": " << cache_.entry_count()
      << ", \"bytes\": " << cache_.bytes_used()
      << ", \"budget\": " << cache_.budget_bytes() << "}"
      << ", \"stages\": [" << cache_.metrics().to_json() << "]"
      << ", \"fault_injection\": {";
  bool first = true;
  for (const auto& [site, st] : fi::stats()) {
    if (!first) out << ", ";
    first = false;
    json_escape(out, site);
    out << ": {\"hits\": " << st.hits << ", \"fired\": " << st.fired << "}";
  }
  out << "}}";
  return out.str();
}

ServerStats JobServer::serve(std::istream& in, std::ostream& out) {
  // A worker-less shared pool (single-core hardware) would never run a
  // submitted job; requests then fall back to the serial loop, which is
  // byte-identical by definition.
  const bool concurrent =
      options_.serve_jobs > 1 && ThreadPool::shared().worker_count() > 0;
  return concurrent ? serve_concurrent(in, out) : serve_serial(in, out);
}

ServerStats JobServer::serve_serial(std::istream& in, std::ostream& out) {
  ServerStats stats;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream head(line);
    std::string cmd;
    head >> cmd;
    if (cmd == "quit") break;
    if (cmd == "stats") {
      out << stats_line(stats) << "\n" << std::flush;
      continue;
    }
    const std::uint64_t seq = static_cast<std::uint64_t>(stats.jobs);
    ++stats.jobs;
    std::string response;
    try {
      Request req;
      std::string perr;
      if (!parse_request(line, req, perr)) {
        ++stats.parse_error;
        response = format_response(req.id, "parse_error", 0, false, false, 0,
                                   0.0, perr, std::string());
      } else {
        // The job scope pins fault-injection schedules to the job's
        // stream index, so this serial loop and serve_concurrent()
        // inject identically for the same request stream.
        const fi::JobScope scope(seq);
        SerialConsult consult(cache_);
        JobTrace trace = handle_job(req, consult);
        bump_class(stats, trace.cls);
        stats.retries += trace.retries;
        if (trace.degraded) ++stats.degraded;
        if (trace.do_insert) {
          guarded_insert(cache_, trace.cache_key, trace.insert_payload);
        }
        response = std::move(trace.response);
      }
    } catch (...) {
      // Last-ditch per-request guard: even a failure while *formatting*
      // the response must not kill the server or skip a response line.
      ++stats.internal;
      response = kLastDitchResponse;
    }
    ++stats.responses;
    out << response << "\n" << std::flush;
  }
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_evictions = cache_.evictions();
  out << stats_line(stats) << "\n" << std::flush;
  return stats;
}

ServerStats JobServer::serve_concurrent(std::istream& in, std::ostream& out) {
  ServerStats stats;
  ServeState st;
  ThreadPool& pool = ThreadPool::shared();
  const std::uint64_t window = static_cast<std::uint64_t>(options_.serve_jobs);

  // Every in-flight job drains before the line is written: quit, EOF and
  // stats are barriers, so no response is ever dropped or reordered.
  const auto drain_barrier = [&](std::uint64_t submitted) {
    std::unique_lock<std::mutex> lock(st.mu);
    st.cv.wait(lock, [&] { return st.next_drain == submitted; });
  };

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream head(line);
    std::string cmd;
    head >> cmd;
    if (cmd == "quit") break;
    if (cmd == "stats") {
      drain_barrier(static_cast<std::uint64_t>(stats.jobs));
      out << stats_line(stats) << "\n" << std::flush;
      continue;
    }
    const std::uint64_t seq = static_cast<std::uint64_t>(stats.jobs);
    ++stats.jobs;
    {
      // Backpressure: at most `serve_jobs` jobs submitted-but-undrained.
      // In-flight jobs always progress (the gate and the coalescing
      // chains only ever wait on lower sequence numbers), so this wait
      // always clears.
      std::unique_lock<std::mutex> lock(st.mu);
      st.cv.wait(lock, [&] { return seq - st.next_drain < window; });
    }
    Request req;
    std::string perr;
    bool parsed = false;
    bool parse_threw = false;
    try {
      parsed = parse_request(line, req, perr);
    } catch (...) {
      parse_threw = true;
    }
    if (!parsed) {
      // Malformed requests complete inline on the reader thread; they
      // still occupy their sequence slot so the response stream stays in
      // request order.
      Completed c;
      try {
        if (parse_threw) {
          c.cls = Outcome::kInternal;
          c.response = kLastDitchResponse;
        } else {
          c.cls = Outcome::kParseError;
          c.response = format_response(req.id, "parse_error", 0, false, false,
                                       0, 0.0, perr, std::string());
        }
      } catch (...) {
        c.cls = Outcome::kInternal;
        c.response = kLastDitchResponse;
      }
      st.gate.skip(seq);
      complete_job(st, seq, std::move(c), cache_, stats, out);
      continue;
    }
    pool.submit([this, &st, &stats, &out, seq, req]() {
      Completed c;
      ConcurrentConsult consult(st, cache_, seq);
      try {
        const fi::JobScope scope(seq);
        JobTrace trace = handle_job(req, consult);
        c.response = std::move(trace.response);
        c.cls = trace.cls;
        c.retries = trace.retries;
        c.degraded = trace.degraded;
        c.do_insert = trace.do_insert;
        c.cache_key = std::move(trace.cache_key);
        c.insert_payload = std::move(trace.insert_payload);
      } catch (...) {
        // Last-ditch per-job guard, as in the serial loop: one response
        // per sequence slot, no matter what.
        c = Completed{};
        c.cls = Outcome::kInternal;
        c.response = kLastDitchResponse;
      }
      consult.finish(c);
      complete_job(st, seq, std::move(c), cache_, stats, out);
    });
  }

  drain_barrier(static_cast<std::uint64_t>(stats.jobs));
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_evictions = cache_.evictions();
  out << stats_line(stats) << "\n" << std::flush;
  return stats;
}

}  // namespace ftes::serve
