// Structural result cache for the job server (ROADMAP item 3).
//
// A job's synthesis result is a pure function of the *structure* of the
// problem -- (application, architecture, k) -- and of the
// result-affecting synthesis options (seed, iteration counts, stage
// switches).  canonical_key() serializes exactly that tuple into a
// normalized text key: process names are dropped (they never appear in a
// response payload, so structurally identical problems that differ only
// in naming dedup to one entry), WCET tables are emitted sorted by node
// id, and the thread count, pool and wall-clock budgets are deliberately
// excluded (results are bit-identical for any `--threads`, and a budget
// changes *whether* a result completes, not its value -- incomplete
// results are never cached).
//
// The cache itself is a plain LRU over the full key strings (no hashing
// in the lookup path, so collisions are impossible by construction) with
// a byte budget: every entry is charged key + payload + a fixed
// bookkeeping overhead, inserting past the budget evicts from the
// least-recently-used tail, and an entry larger than the whole budget is
// not stored at all.  Counters surface through a StageMetrics
// ("result_cache" pseudo-stage) in the server's stats report.
//
// Thread safety: every operation -- lookup, peek, insert (including the
// duplicate-key refresh), eviction and every counter read -- holds the
// one internal mutex, so `bytes_used_` always equals the sum of the live
// entries' charges (asserted after every mutation; audit() exposes the
// same check to tests).  The fault-injection seams for `cache.lookup` /
// `cache.insert` live in the *caller* (serve/job_server.cpp), not here:
// the server replays cache mutations in request-sequence order, and an
// injected fault must fire on the job's own thread where it can be
// classified and retried, not during that ordered replay.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/pipeline.h"
#include "io/app_parser.h"

namespace ftes::serve {

/// Canonical text key of the normalized (application, architecture, k,
/// options) tuple.  See the header comment for what is included.
[[nodiscard]] std::string canonical_key(const Application& app,
                                        const Architecture& arch,
                                        const FaultModel& model,
                                        const SynthesisOptions& options);

class ResultCache {
 public:
  /// `budget_bytes` = 0 disables storage entirely (every lookup misses).
  explicit ResultCache(std::size_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  /// Looks `key` up; on a hit copies the cached payload into `payload`,
  /// refreshes the entry's LRU position and counts a hit.  On a miss
  /// counts a miss and leaves `payload` untouched.
  [[nodiscard]] bool lookup(const std::string& key, std::string& payload);

  /// Read-only probe: copies the payload on a hit but refreshes nothing
  /// and counts nothing.  The concurrent server uses it to *predict* the
  /// sequence-ordered lookup it will replay later.
  [[nodiscard]] bool peek(const std::string& key, std::string& payload) const;

  /// Inserts (or refreshes) `key` -> `payload`, evicting LRU entries
  /// until the byte budget holds.  A payload that cannot fit even in an
  /// empty cache is dropped (counted as neither insert nor eviction).
  void insert(const std::string& key, const std::string& payload);

  [[nodiscard]] long long hits() const;
  [[nodiscard]] long long misses() const;
  [[nodiscard]] long long evictions() const;
  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] std::size_t budget_bytes() const { return budget_bytes_; }

  /// True iff the byte accounting is exact right now: bytes_used()
  /// equals the sum of the live entries' charges, the map and the LRU
  /// list agree, and the budget holds.  Always compiled in (the
  /// concurrent hammering tests call it); the internal assert form runs
  /// after every mutation in debug builds.
  [[nodiscard]] bool audit() const;

  /// The counters as a "result_cache" pseudo-stage for stats reports.
  [[nodiscard]] StageMetrics metrics() const;

 private:
  struct Entry {
    std::string key;
    std::string payload;
  };
  using LruList = std::list<Entry>;

  [[nodiscard]] static std::size_t charge(const Entry& e) {
    return e.key.size() + e.payload.size() + kEntryOverhead;
  }
  void evict_until_within_budget_locked();
  [[nodiscard]] bool audit_locked() const;

  /// Flat accounting charge per entry for the list/map bookkeeping.
  static constexpr std::size_t kEntryOverhead = 64;

  const std::size_t budget_bytes_;
  mutable std::mutex mutex_;  ///< one lock over every op and counter
  std::size_t bytes_used_ = 0;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> entries_;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
};

}  // namespace ftes::serve
