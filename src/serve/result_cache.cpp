#include "serve/result_cache.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

namespace ftes::serve {

namespace {

void append_double(std::ostringstream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

}  // namespace

std::string canonical_key(const Application& app, const Architecture& arch,
                          const FaultModel& model,
                          const SynthesisOptions& options) {
  std::ostringstream out;
  out << "v1;arch n=" << arch.node_count() << " payload="
      << arch.bus().slot_payload() << " slots=";
  for (const TdmaSlot& slot : arch.bus().slots()) {
    out << slot.owner.get() << ":" << slot.length << ",";
  }
  out << ";k=" << model.k << ";deadline=" << app.deadline()
      << ";period=" << app.period() << ";";
  for (const Process& p : app.processes()) {
    out << "p";
    std::vector<std::pair<NodeId, Time>> wcets;
    wcets.reserve(p.wcet.size());
    // lint: order-insensitive -- the entries are sorted by node id below
    // before they reach the key, so the map's iteration order is
    // irrelevant
    for (const auto& kv : p.wcet) wcets.push_back(kv);
    std::sort(wcets.begin(), wcets.end());
    for (const auto& [node, wcet] : wcets) {
      out << " " << node.get() << "=" << wcet;
    }
    out << " a=" << p.alpha << " m=" << p.mu << " c=" << p.chi
        << " f=" << (p.frozen ? 1 : 0) << " r=" << p.release;
    if (p.fixed_mapping) out << " map=" << p.fixed_mapping->get();
    if (p.local_deadline) out << " dl=" << *p.local_deadline;
    if (p.fixed_policy) out << " pol=" << static_cast<int>(*p.fixed_policy);
    if (p.soft) {
      out << " soft=";
      append_double(out, p.soft->utility);
      out << ":" << p.soft->soft_deadline << ":" << p.soft->window;
    }
    out << ";";
  }
  for (const Message& m : app.messages()) {
    out << "e " << m.src.get() << ">" << m.dst.get() << " s=" << m.size
        << " f=" << (m.frozen ? 1 : 0) << ";";
  }
  const OptimizeOptions& opt = options.optimize;
  out << "opt seed=" << opt.seed << " it=" << opt.iterations
      << " ten=" << opt.tenure << " nb=" << opt.neighborhood
      << " maxcp=" << opt.max_checkpoints
      << " space=" << static_cast<int>(opt.space)
      << " map=" << (opt.optimize_mapping ? 1 : 0)
      << " cp=" << (opt.optimize_checkpoints ? 1 : 0)
      << " refine=" << (options.refine_checkpoints ? 1 : 0)
      << " tables=" << (options.build_schedule_tables ? 1 : 0);
  return out.str();
}

bool ResultCache::lookup(const std::string& key, std::string& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  payload = it->second->payload;
  ++hits_;
  return true;
}

bool ResultCache::peek(const std::string& key, std::string& payload) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  payload = it->second->payload;
  return true;
}

void ResultCache::insert(const std::string& key, const std::string& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place (by construction the payload of a given key never
    // changes, but a caller may legitimately re-insert one that was
    // evicted and recomputed).  The whole subtract-mutate-re-add runs
    // under the one mutex, so the charge delta is applied atomically and
    // the accounting can never observe a half-updated entry.
    bytes_used_ -= charge(*it->second);
    it->second->payload = payload;
    bytes_used_ += charge(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_until_within_budget_locked();
    assert(audit_locked());
    return;
  }
  Entry entry{key, payload};
  if (charge(entry) > budget_bytes_) return;  // can never fit
  bytes_used_ += charge(entry);
  lru_.push_front(std::move(entry));
  entries_[lru_.begin()->key] = lru_.begin();
  evict_until_within_budget_locked();
  assert(audit_locked());
}

void ResultCache::evict_until_within_budget_locked() {
  while (bytes_used_ > budget_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_used_ -= charge(victim);
    entries_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
  assert(audit_locked());
}

long long ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

long long ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

long long ResultCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t ResultCache::entry_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t ResultCache::bytes_used() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_used_;
}

bool ResultCache::audit() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return audit_locked();
}

bool ResultCache::audit_locked() const {
  if (entries_.size() != lru_.size()) return false;
  std::size_t live = 0;
  for (const Entry& e : lru_) {
    const auto it = entries_.find(e.key);
    if (it == entries_.end() || &*it->second != &e) return false;
    live += charge(e);
  }
  return live == bytes_used_ && bytes_used_ <= budget_bytes_;
}

StageMetrics ResultCache::metrics() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StageMetrics m;
  m.stage = "result_cache";
  m.result_cache_hits = hits_;
  m.result_cache_misses = misses_;
  m.result_cache_evictions = evictions_;
  return m;
}

}  // namespace ftes::serve
