#include "serve/result_cache.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "util/fault_injection.h"

namespace ftes::serve {

namespace {

void append_double(std::ostringstream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

}  // namespace

std::string canonical_key(const Application& app, const Architecture& arch,
                          const FaultModel& model,
                          const SynthesisOptions& options) {
  std::ostringstream out;
  out << "v1;arch n=" << arch.node_count() << " payload="
      << arch.bus().slot_payload() << " slots=";
  for (const TdmaSlot& slot : arch.bus().slots()) {
    out << slot.owner.get() << ":" << slot.length << ",";
  }
  out << ";k=" << model.k << ";deadline=" << app.deadline()
      << ";period=" << app.period() << ";";
  for (const Process& p : app.processes()) {
    out << "p";
    std::vector<std::pair<NodeId, Time>> wcets;
    wcets.reserve(p.wcet.size());
    // lint: order-insensitive -- the entries are sorted by node id below
    // before they reach the key, so the map's iteration order is
    // irrelevant
    for (const auto& kv : p.wcet) wcets.push_back(kv);
    std::sort(wcets.begin(), wcets.end());
    for (const auto& [node, wcet] : wcets) {
      out << " " << node.get() << "=" << wcet;
    }
    out << " a=" << p.alpha << " m=" << p.mu << " c=" << p.chi
        << " f=" << (p.frozen ? 1 : 0) << " r=" << p.release;
    if (p.fixed_mapping) out << " map=" << p.fixed_mapping->get();
    if (p.local_deadline) out << " dl=" << *p.local_deadline;
    if (p.fixed_policy) out << " pol=" << static_cast<int>(*p.fixed_policy);
    if (p.soft) {
      out << " soft=";
      append_double(out, p.soft->utility);
      out << ":" << p.soft->soft_deadline << ":" << p.soft->window;
    }
    out << ";";
  }
  for (const Message& m : app.messages()) {
    out << "e " << m.src.get() << ">" << m.dst.get() << " s=" << m.size
        << " f=" << (m.frozen ? 1 : 0) << ";";
  }
  const OptimizeOptions& opt = options.optimize;
  out << "opt seed=" << opt.seed << " it=" << opt.iterations
      << " ten=" << opt.tenure << " nb=" << opt.neighborhood
      << " maxcp=" << opt.max_checkpoints
      << " space=" << static_cast<int>(opt.space)
      << " map=" << (opt.optimize_mapping ? 1 : 0)
      << " cp=" << (opt.optimize_checkpoints ? 1 : 0)
      << " refine=" << (options.refine_checkpoints ? 1 : 0)
      << " tables=" << (options.build_schedule_tables ? 1 : 0);
  return out.str();
}

bool ResultCache::lookup(const std::string& key, std::string& payload) {
  FTES_FAULT_POINT("cache.lookup");
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  payload = it->second->payload;
  ++hits_;
  return true;
}

void ResultCache::insert(const std::string& key, const std::string& payload) {
  FTES_FAULT_POINT("cache.insert");
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: by construction the payload of a given key never changes,
    // but tolerate a caller that re-inserts after an eviction race.
    bytes_used_ -= charge(*it->second);
    it->second->payload = payload;
    bytes_used_ += charge(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_until_within_budget();
    return;
  }
  Entry entry{key, payload};
  if (charge(entry) > budget_bytes_) return;  // can never fit
  bytes_used_ += charge(entry);
  lru_.push_front(std::move(entry));
  entries_[key] = lru_.begin();
  evict_until_within_budget();
}

void ResultCache::evict_until_within_budget() {
  while (bytes_used_ > budget_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_used_ -= charge(victim);
    entries_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

StageMetrics ResultCache::metrics() const {
  StageMetrics m;
  m.stage = "result_cache";
  m.result_cache_hits = hits_;
  m.result_cache_misses = misses_;
  m.result_cache_evictions = evictions_;
  return m;
}

}  // namespace ftes::serve
