// Small generic directed-graph substrate used by the FT-CPG and the
// worst-case schedule length analysis: adjacency lists over dense integer
// vertex ids, topological sort, reachability, weighted longest path, and
// GraphViz DOT export.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/time_types.h"

namespace ftes {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int vertex_count);

  int add_vertex();
  void add_edge(int from, int to);

  [[nodiscard]] int vertex_count() const {
    return static_cast<int>(out_.size());
  }
  [[nodiscard]] int edge_count() const { return edge_count_; }
  [[nodiscard]] const std::vector<int>& successors(int v) const;
  [[nodiscard]] const std::vector<int>& predecessors(int v) const;
  [[nodiscard]] bool has_edge(int from, int to) const;

  /// Kahn topological order; throws std::invalid_argument on a cycle.
  [[nodiscard]] std::vector<int> topological_order() const;

  [[nodiscard]] bool is_acyclic() const;

  /// Vertices reachable from `start` (including `start`).
  [[nodiscard]] std::vector<bool> reachable_from(int start) const;

  /// Longest path value where each vertex contributes `weight(v)` and the
  /// path may start/end anywhere.  Requires acyclic.
  [[nodiscard]] Time longest_path(
      const std::function<Time(int)>& weight) const;

  /// Per-vertex longest distance from any source, *excluding* the vertex's
  /// own weight (i.e. earliest possible start in an unlimited-resource
  /// schedule).  Requires acyclic.
  [[nodiscard]] std::vector<Time> longest_distance_to(
      const std::function<Time(int)>& weight) const;

  /// Per-vertex longest remaining path *including* own weight (standard
  /// critical-path priority for list scheduling).  Requires acyclic.
  [[nodiscard]] std::vector<Time> critical_path_from(
      const std::function<Time(int)>& weight) const;

  /// DOT text; `label(v)` supplies vertex labels.
  [[nodiscard]] std::string to_dot(
      const std::function<std::string(int)>& label) const;

 private:
  void check_vertex(int v) const;

  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  int edge_count_ = 0;
};

}  // namespace ftes
