#include "graph/digraph.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ftes {

Digraph::Digraph(int vertex_count) {
  if (vertex_count < 0) throw std::invalid_argument("negative vertex count");
  out_.resize(static_cast<std::size_t>(vertex_count));
  in_.resize(static_cast<std::size_t>(vertex_count));
}

int Digraph::add_vertex() {
  out_.emplace_back();
  in_.emplace_back();
  return vertex_count() - 1;
}

void Digraph::check_vertex(int v) const {
  if (v < 0 || v >= vertex_count()) {
    throw std::out_of_range("vertex out of range");
  }
}

void Digraph::add_edge(int from, int to) {
  check_vertex(from);
  check_vertex(to);
  if (from == to) throw std::invalid_argument("self-loop");
  out_[static_cast<std::size_t>(from)].push_back(to);
  in_[static_cast<std::size_t>(to)].push_back(from);
  ++edge_count_;
}

const std::vector<int>& Digraph::successors(int v) const {
  check_vertex(v);
  return out_[static_cast<std::size_t>(v)];
}

const std::vector<int>& Digraph::predecessors(int v) const {
  check_vertex(v);
  return in_[static_cast<std::size_t>(v)];
}

bool Digraph::has_edge(int from, int to) const {
  check_vertex(from);
  check_vertex(to);
  const auto& succ = out_[static_cast<std::size_t>(from)];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

std::vector<int> Digraph::topological_order() const {
  std::vector<int> indegree(static_cast<std::size_t>(vertex_count()), 0);
  for (int v = 0; v < vertex_count(); ++v) {
    for (int s : out_[static_cast<std::size_t>(v)]) {
      ++indegree[static_cast<std::size_t>(s)];
    }
  }
  std::vector<int> queue;
  for (int v = 0; v < vertex_count(); ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(vertex_count()));
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int v = queue[head];
    order.push_back(v);
    for (int s : out_[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) queue.push_back(s);
    }
  }
  if (static_cast<int>(order.size()) != vertex_count()) {
    throw std::invalid_argument("digraph has a cycle");
  }
  return order;
}

bool Digraph::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::vector<bool> Digraph::reachable_from(int start) const {
  check_vertex(start);
  std::vector<bool> seen(static_cast<std::size_t>(vertex_count()), false);
  std::vector<int> stack{start};
  seen[static_cast<std::size_t>(start)] = true;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int s : out_[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  return seen;
}

std::vector<Time> Digraph::longest_distance_to(
    const std::function<Time(int)>& weight) const {
  std::vector<Time> dist(static_cast<std::size_t>(vertex_count()), 0);
  for (int v : topological_order()) {
    for (int s : out_[static_cast<std::size_t>(v)]) {
      dist[static_cast<std::size_t>(s)] =
          std::max(dist[static_cast<std::size_t>(s)],
                   dist[static_cast<std::size_t>(v)] + weight(v));
    }
  }
  return dist;
}

std::vector<Time> Digraph::critical_path_from(
    const std::function<Time(int)>& weight) const {
  std::vector<Time> rem(static_cast<std::size_t>(vertex_count()), 0);
  const std::vector<int> order = topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int v = *it;
    Time best = 0;
    for (int s : out_[static_cast<std::size_t>(v)]) {
      best = std::max(best, rem[static_cast<std::size_t>(s)]);
    }
    rem[static_cast<std::size_t>(v)] = best + weight(v);
  }
  return rem;
}

Time Digraph::longest_path(const std::function<Time(int)>& weight) const {
  Time best = 0;
  for (Time d : critical_path_from(weight)) best = std::max(best, d);
  return best;
}

std::string Digraph::to_dot(
    const std::function<std::string(int)>& label) const {
  std::ostringstream out;
  out << "digraph G {\n  rankdir=TB;\n";
  for (int v = 0; v < vertex_count(); ++v) {
    out << "  v" << v << " [label=\"" << label(v) << "\"];\n";
  }
  for (int v = 0; v < vertex_count(); ++v) {
    for (int s : out_[static_cast<std::size_t>(v)]) {
      out << "  v" << v << " -> v" << s << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace ftes
