// The comparison approaches of the paper's evaluation (Figs. 7 and 8).
//
//   MXR -- the paper's approach [13,15]: tabu search over mapping AND
//          fault-tolerance policy (checkpointing / replication / hybrid).
//   MX  -- FT-aware mapping optimization, but the policy is fixed to
//          re-execution for every process.
//   MR  -- FT-aware mapping optimization with active replication only.
//   SFX -- "straightforward": mapping optimized ignoring fault tolerance,
//          then re-execution added on top with no remapping.
//   Local checkpointing [27] -- per-process isolated optimal checkpoint
//          counts (Fig. 8 baseline); Global [15] -- checkpoint counts
//          optimized against the whole-application WCSL.
#pragma once

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "opt/policy_assignment.h"

namespace ftes {

/// The paper's full approach (policy assignment + mapping).
[[nodiscard]] OptimizeResult run_mxr(const Application& app,
                                     const Architecture& arch,
                                     const FaultModel& model,
                                     const OptimizeOptions& base);

/// Re-execution only, mapping optimized (Fig. 7's MX).
[[nodiscard]] OptimizeResult run_mx(const Application& app,
                                    const Architecture& arch,
                                    const FaultModel& model,
                                    const OptimizeOptions& base);

/// Replication only, mapping optimized (Fig. 7's MR).
[[nodiscard]] OptimizeResult run_mr(const Application& app,
                                    const Architecture& arch,
                                    const FaultModel& model,
                                    const OptimizeOptions& base);

/// Straightforward baseline (Fig. 7's SFX): FT-ignorant mapping, then
/// re-execution layered on top without remapping.
[[nodiscard]] OptimizeResult run_sfx(const Application& app,
                                     const Architecture& arch,
                                     const FaultModel& model,
                                     const OptimizeOptions& base);

/// Non-fault-tolerant reference: FT-ignorant optimized mapping, no
/// redundancy; its makespan is the FTO denominator.
[[nodiscard]] Time non_ft_reference(const Application& app,
                                    const Architecture& arch,
                                    const OptimizeOptions& base);

}  // namespace ftes
