// Shared incremental evaluation context of the design-space exploration.
//
// The tabu optimizers and the checkpoint refinement evaluate tens of
// thousands of candidates per run, each differing from an incumbent
// assignment in a single process plan.  Evaluating a candidate from
// scratch pays twice: a full PolicyAssignment copy per candidate and a
// full budgeted-longest-path DP (sched/wcsl.h) over the augmented schedule
// DAG.  EvalContext removes both costs:
//
//   * Moves are expressed as (process, new ProcessPlan) against a cached
//     *base* assignment.  Per-thread workspaces materialize a candidate by
//     swapping the one plan in and out, so no full assignment is copied
//     per candidate.
//   * The base's DP rows are cached.  A candidate's augmented DAG is
//     diffed against the base's: a vertex whose release, weight table and
//     predecessor set are unchanged, and whose predecessors are all clean,
//     reuses the cached row; everything downstream of a change is
//     recomputed (dirty-successor propagation).
//
// Results are bit-identical to a from-scratch evaluation: the fault-free
// list schedule is always rebuilt exactly, and a reused row equals the row
// the full DP would compute (the same integer recurrence on inputs proven
// equal by the diff).  The win is skipping the DP work outside the DAG
// region a move actually touches; EvalStats reports the reuse rate.
//
// Thread safety: evaluate_move / fault_free_makespan may run concurrently
// (the parallel neighborhood evaluation relies on this); rebase /
// rebase_fault_free must not race with in-flight evaluations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "opt/eval_stats.h"
#include "sched/list_scheduler.h"
#include "sched/wcsl.h"

namespace ftes {

class EvalContext {
 public:
  /// The referenced application/architecture must outlive the context.
  EvalContext(const Application& app, const Architecture& arch,
              FaultModel model);

  struct Outcome {
    Time makespan = 0;  ///< analytic WCSL makespan
    Time cost = 0;      ///< makespan + soft local-deadline penalties
  };

  /// Recomputes the cached schedule + DP for `base` (one full evaluation)
  /// and returns its outcome.  Invalidates workspaces lazily.
  Outcome rebase(const PolicyAssignment& base);

  /// Caches `base` for fault-free (list-schedule makespan) move evaluation
  /// only; no DP (and no base schedule) is built -- callers that need the
  /// base's own makespan already have it from the move evaluation that won.
  void rebase_fault_free(const PolicyAssignment& base);

  /// WCSL outcome of base-with-plan(pid)-replaced-by-plan, evaluated
  /// incrementally against the cached DP.  Requires a prior rebase().
  [[nodiscard]] Outcome evaluate_move(ProcessId pid, const ProcessPlan& plan);

  /// Fault-free list-schedule makespan of the same move (the mapping
  /// optimizer's objective).  Requires any prior rebase.
  [[nodiscard]] Time fault_free_makespan(ProcessId pid,
                                         const ProcessPlan& plan);

  /// Non-incremental evaluation of an arbitrary assignment (stats-counted).
  [[nodiscard]] WcslResult evaluate_full(const PolicyAssignment& assignment);

  [[nodiscard]] const PolicyAssignment& base() const { return base_; }
  [[nodiscard]] const FaultModel& model() const { return model_; }

  /// Snapshot of the (atomic) counters; safe to call concurrently.
  [[nodiscard]] EvalStats stats() const;

 private:
  struct Workspace {
    PolicyAssignment assignment;
    std::uint64_t version = 0;
    std::vector<std::vector<Time>> L;
    std::vector<int> to_base;
    std::vector<char> clean;
    std::vector<int> mapped_preds;
    std::vector<Time> process_finish;
  };

  [[nodiscard]] std::unique_ptr<Workspace> acquire();
  void put_back(std::unique_ptr<Workspace> ws);

  /// Applies plan to the workspace's base copy, runs `body(ws)`, restores.
  template <class Body>
  auto with_move(ProcessId pid, const ProcessPlan& plan, const Body& body);

  [[nodiscard]] Outcome incremental_outcome(Workspace& ws);
  [[nodiscard]] Time penalized_cost(const std::vector<Time>& process_finish,
                                    Time makespan) const;

  const Application& app_;
  const Architecture& arch_;
  FaultModel model_;

  // Cached base: assignment, its fault-free schedule, augmented DAG, DP
  // rows, and lookup structures for the candidate diff.
  PolicyAssignment base_;
  std::uint64_t version_ = 0;
  bool base_has_dp_ = false;
  ListSchedule base_sched_;
  WcslDag base_dag_;
  std::vector<std::vector<Time>> base_L_;
  // Flat (process, copy) -> base vertex and (message, source copy) -> base
  // vertex lookups via prefix offsets over the *base* plan shapes; -1 for
  // keys absent from the base schedule.
  std::vector<int> base_first_copy_;
  std::vector<int> base_copy_vertex_;
  std::vector<int> base_first_tx_;
  std::vector<int> base_msg_vertex_;
  std::vector<std::vector<int>> base_sorted_preds_;

  std::mutex ws_mutex_;
  std::vector<std::unique_ptr<Workspace>> idle_ws_;

  std::atomic<long long> evaluations_{0};
  std::atomic<long long> full_evals_{0};
  std::atomic<long long> incremental_evals_{0};
  std::atomic<long long> fault_free_evals_{0};
  std::atomic<long long> rebases_{0};
  std::atomic<long long> dp_vertices_total_{0};
  std::atomic<long long> dp_vertices_reused_{0};
};

}  // namespace ftes
