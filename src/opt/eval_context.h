// Shared incremental evaluation context of the design-space exploration.
//
// The tabu optimizers and the checkpoint refinement evaluate tens of
// thousands of candidates per run, each differing from an incumbent
// assignment in a single process plan.  Evaluating a candidate from
// scratch pays three times: a full PolicyAssignment copy per candidate, a
// full fault-free list schedule rebuild, and a full budgeted-longest-path
// DP (sched/wcsl.h) over the augmented schedule DAG.  EvalContext removes
// all three costs:
//
//   * Moves are expressed as (process, new ProcessPlan) against a cached
//     *base* assignment.  Per-thread workspaces materialize a candidate by
//     swapping the one plan in and out, so no full assignment is copied
//     per candidate.
//   * The base's list schedule is built once with a ScheduleCheckpointLog
//     (sched/list_scheduler.h); a candidate's schedule resumes from the
//     last snapshot that provably precedes any placement the move can
//     affect instead of replaying the whole event sequence.
//   * The base's DP rows are cached.  A candidate's augmented DAG is
//     diffed against the base's: a vertex whose release, weight table and
//     predecessor set are unchanged, and whose predecessors are all clean,
//     reuses the cached row; everything downstream of a change is
//     recomputed (dirty-successor propagation).
//   * During a sweep the best candidate's DAG + DP rows are kept; a
//     rebase() onto exactly that winning move adopts them (a pointer swap)
//     instead of re-running the DP -- the common accept step of the search
//     engine's loop becomes near-free.
//   * Any rebase whose new base differs from the old in a single plan
//     rebuilds the base schedule by *record-while-resuming*: the accepted
//     move is replayed from the old log's nearest safe snapshot while a
//     complete log for the new base is emitted
//     (list_schedule_resume(..., record)), so accepting a move no longer
//     pays a from-scratch schedule build to stay resumable.
//
// Results are bit-identical to a from-scratch evaluation: the resumed list
// schedule is exact by construction (property-tested against full
// rebuilds), and a reused row equals the row the full DP would compute
// (the same integer recurrence on inputs proven equal by the diff).
// EvalStats reports the reuse rates of all three layers.
//
// Thread safety: evaluate_move / fault_free_makespan may run concurrently
// (the parallel neighborhood evaluation relies on this); rebase /
// rebase_fault_free must not race with in-flight evaluations.  The
// winning-move cache resolves cost ties by a total order on moves, so its
// content -- and therefore every counter -- is thread-count invariant.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "opt/eval_stats.h"
#include "sched/list_scheduler.h"
#include "sched/wcsl.h"

namespace ftes {

class EvalContext {
 public:
  /// The referenced application/architecture must outlive the context.
  EvalContext(const Application& app, const Architecture& arch,
              FaultModel model);

  struct Outcome {
    Time makespan = 0;  ///< analytic WCSL makespan
    Time cost = 0;      ///< makespan + soft local-deadline penalties
  };

  /// Recomputes the cached schedule + DP for `base` and returns its
  /// outcome.  When `base` is the previous base with exactly the cached
  /// winning move applied, the candidate's artifacts are adopted instead
  /// of recomputed (near-free; counted as a rebase cache hit).
  /// Invalidates workspaces lazily.  A valid `accepted` asserts that the
  /// new base differs from the old in at most that one plan (the engine's
  /// accept step knows its move), skipping the O(P) diff scans.
  Outcome rebase(const PolicyAssignment& base, ProcessId accepted = {});

  /// Caches `base` for fault-free (list-schedule makespan) move evaluation
  /// only; builds the base schedule + checkpoint log but no DP.  Returns
  /// the base's own fault-free makespan.  `accepted` as for rebase().
  Time rebase_fault_free(const PolicyAssignment& base, ProcessId accepted = {});

  /// WCSL outcome of base-with-plan(pid)-replaced-by-plan, evaluated
  /// incrementally against the cached DP.  Requires a prior rebase().
  [[nodiscard]] Outcome evaluate_move(ProcessId pid, const ProcessPlan& plan);

  /// Fault-free list-schedule makespan of the same move (the mapping
  /// optimizer's objective).  Requires any prior rebase.
  [[nodiscard]] Time fault_free_makespan(ProcessId pid,
                                         const ProcessPlan& plan);

  /// Evaluation of an arbitrary assignment (stats-counted).  Served
  /// entirely from the cached base DP when `assignment` equals the current
  /// base; non-incremental otherwise.
  [[nodiscard]] WcslResult evaluate_full(const PolicyAssignment& assignment);

  [[nodiscard]] const PolicyAssignment& base() const { return base_; }
  [[nodiscard]] const FaultModel& model() const { return model_; }

  /// Snapshot of the (atomic) counters; safe to call concurrently.
  [[nodiscard]] EvalStats stats() const;

 private:
  struct Workspace {
    PolicyAssignment assignment;
    std::uint64_t version = 0;
    ListSchedule sched;
    WcslDag dag;
    std::vector<std::vector<Time>> L;
    std::vector<int> to_base;
    std::vector<char> clean;
    std::vector<int> mapped_preds;
    std::vector<Time> process_finish;
  };

  /// Winning-move cache: the artifacts of the best candidate evaluated
  /// since the last rebase, one slot per selection metric (the policy tabu
  /// search accepts by cost, the checkpoint refinement by makespan).
  /// Ties resolve by a total order on (process, plan) so the cached entry
  /// is identical for every thread count.  Artifacts are *moved* out of
  /// the evaluating workspace and shared between the two slots, so a
  /// store under the cache mutex is O(1) -- no DP-row copies on the
  /// parallel evaluation path.  (The candidate's schedule is not kept:
  /// an adopting rebase must rebuild it anyway to record a fresh
  /// checkpoint log.)
  struct CachedArtifacts {
    WcslDag dag;
    std::vector<std::vector<Time>> L;
  };
  struct CacheEntry {
    bool valid = false;
    ProcessId pid;
    ProcessPlan plan;
    Outcome outcome;
    std::shared_ptr<CachedArtifacts> artifacts;
  };

  [[nodiscard]] std::unique_ptr<Workspace> acquire();
  void put_back(std::unique_ptr<Workspace> ws);

  /// Applies plan to the workspace's base copy, runs `body(ws)`, restores.
  template <class Body>
  auto with_move(ProcessId pid, const ProcessPlan& plan, const Body& body);

  [[nodiscard]] Outcome incremental_outcome(Workspace& ws, ProcessId pid);
  void record_resume_stats(const ListScheduleResumeStats& stats);
  /// May move ws.dag / ws.L into the cache (they are dead after a move
  /// evaluation and rebuilt by the next one).
  void maybe_cache_winner(Workspace& ws, ProcessId pid,
                          const Outcome& outcome);
  void invalidate_winner_cache();
  /// Rebuilds base_sched_ + base_log_ for `base` (the member base_ still
  /// holds the OLD base): record-while-resuming when the bases differ in
  /// exactly one plan and a log exists, from-scratch otherwise.  Accepted
  /// moves are re-recorded as a batch against the retained grand-base log
  /// (see grand_base_), so consecutive acceptances share prefix snapshots
  /// with one anchor instead of chaining per-move copies.  `accepted`
  /// as for rebase().
  void rebuild_base_schedule(const PolicyAssignment& base, ProcessId accepted);
  /// The single plan in which `base` differs from the cached base_, or -1
  /// for none/many.  O(1) when the `accepted` hint is valid (debug-checked
  /// against a full scan), O(P) otherwise.
  [[nodiscard]] std::int32_t single_diff_pid(const PolicyAssignment& base,
                                             ProcessId accepted) const;
  /// Re-anchors the grand base to (base, log) and clears the pending run.
  void anchor_grand_base(const PolicyAssignment& base,
                         const ScheduleCheckpointLog& log);
  void rebuild_base_lookups();
  [[nodiscard]] Outcome outcome_from_base_rows() const;
  [[nodiscard]] Time penalized_cost(const std::vector<Time>& process_finish,
                                    Time makespan) const;

  const Application& app_;
  const Architecture& arch_;
  FaultModel model_;

  // Cached base: assignment, its fault-free schedule + checkpoint log,
  // augmented DAG, DP rows, and lookup structures for the candidate diff.
  PolicyAssignment base_;
  std::uint64_t version_ = 0;
  bool base_has_dp_ = false;
  bool base_has_log_ = false;
  ListSchedule base_sched_;
  ScheduleCheckpointLog base_log_;
  WcslDag base_dag_;
  std::vector<std::vector<Time>> base_L_;
  // (message, source copy) -> base transmission vertex via prefix offsets
  // over the *base* plan shapes; -1 for keys absent from the base schedule.
  // (The copy-side lookup needs no table: copy vertices are prefix-indexed
  // by construction, see ListSchedule::first_copy.)
  std::vector<int> base_first_tx_;
  std::vector<int> base_msg_vertex_;
  std::vector<std::vector<int>> base_sorted_preds_;

  // Batched-accept anchor: consecutive accepted moves are re-recorded as
  // one *batch* against this retained grand base + log (multi-move
  // record-while-resuming) instead of each resuming from its immediate
  // predecessor.  Every recorded log in the run then shares its prefix
  // snapshots with the one anchor (structural sharing, no chained
  // copies), while staying bit-identical to a from-scratch log of the
  // current base.  The run is capped at kRebaseBatchWindow moves -- the
  // resume point is the min over the whole batch, so an unbounded run
  // would degenerate toward full replays -- and re-anchored (cheap: log
  // copies share snapshot refs) when the cap is hit or any full rebuild
  // breaks the chain.
  static constexpr std::size_t kRebaseBatchWindow = 2;
  bool grand_valid_ = false;
  PolicyAssignment grand_base_;
  ScheduleCheckpointLog grand_log_;
  std::vector<ProcessId> pending_;  ///< accepted since the grand anchor

  std::mutex ws_mutex_;
  std::vector<std::unique_ptr<Workspace>> idle_ws_;

  std::mutex cache_mutex_;
  CacheEntry best_cost_;  ///< minimizes (cost, move key)
  CacheEntry best_span_;  ///< minimizes (makespan, move key)

  std::atomic<long long> evaluations_{0};
  std::atomic<long long> full_evals_{0};
  std::atomic<long long> incremental_evals_{0};
  std::atomic<long long> fault_free_evals_{0};
  std::atomic<long long> rebases_{0};
  std::atomic<long long> dp_vertices_total_{0};
  std::atomic<long long> dp_vertices_reused_{0};
  std::atomic<long long> ls_full_builds_{0};
  std::atomic<long long> ls_resumes_{0};
  std::atomic<long long> ls_events_total_{0};
  std::atomic<long long> ls_events_resumed_{0};
  std::atomic<long long> heap_pops_{0};
  std::atomic<long long> rebase_cache_hits_{0};
  std::atomic<long long> rebase_log_recorded_{0};
  std::atomic<long long> rebase_log_events_resumed_{0};
  std::atomic<long long> rebase_log_events_replayed_{0};
  std::atomic<long long> rebase_full_builds_{0};
  std::atomic<long long> rebase_batched_{0};
  std::atomic<long long> rebase_interval_mismatch_{0};
  std::atomic<long long> snapshot_refs_shared_{0};
  std::atomic<long long> snapshot_bytes_copied_{0};
  std::atomic<long long> snapshot_bytes_shared_{0};
};

}  // namespace ftes
