#include "opt/search_engine.h"

#include <utility>

#include "util/thread_pool.h"

namespace ftes {

SearchResult neighborhood_search(SearchProblem& problem,
                                 PolicyAssignment initial,
                                 const SearchOptions& options) {
  TabuList tabu(options.tenure);
  const int threads = resolve_threads(options.threads);
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();

  PolicyAssignment current = std::move(initial);
  Time current_cost = problem.commit(current);
  // With require_improvement the incumbent is monotone, so `current` IS the
  // best and the per-improvement assignment copy is skipped.
  PolicyAssignment best;
  if (!options.require_improvement) best = current;
  Time best_cost = current_cost;

  SearchStats stats;
  stats.evaluations = 1;

  std::vector<Move> moves;
  std::vector<Time> costs;
  bool accepted_last = false;

  for (int iter = 0;
       options.max_iterations < 0 || iter < options.max_iterations; ++iter) {
    if (options.cancel && options.cancel->poll()) {
      stats.cancelled = true;
      break;
    }

    // --- phase 1: sample the neighborhood (serial, generator owns RNG) ---
    moves.clear();
    if (!problem.neighborhood(iter, current, accepted_last, moves)) break;
    ++stats.iterations;
    accepted_last = false;
    stats.sampled_moves += static_cast<long long>(moves.size());
    if (moves.empty()) continue;

    // --- phase 2: evaluate all sampled moves (parallel, pure) ------------
    costs.assign(moves.size(), kTimeInfinity);
    parallel_for(pool, moves.size(), threads, [&](std::size_t i) {
      // Chunk-granular cancellation point: an armed deadline fires within
      // one candidate evaluation instead of one full neighborhood.
      if (options.cancel && options.cancel->poll()) return;
      costs[i] = problem.evaluate(moves[i]);
    });
    // A cancellation observed mid-neighborhood leaves gaps in `costs`;
    // selecting from a partially evaluated sample would be timing-
    // dependent, so the iteration is abandoned wholesale.
    if (options.cancel && options.cancel->cancelled()) {
      stats.cancelled = true;
      break;
    }
    stats.evaluations += static_cast<int>(moves.size());

    // --- phase 3: pick the admissible move (serial, in sample order) -----
    Time threshold = options.require_improvement ? current_cost : kTimeInfinity;
    const Move* selected = nullptr;
    for (std::size_t i = 0; i < moves.size(); ++i) {
      if (options.tenure > 0 &&
          tabu.is_tabu(moves[i].key, iter, costs[i], best_cost)) {
        ++stats.tabu_rejected;  // recent, and aspiration not met
        continue;
      }
      if (costs[i] < threshold) {
        threshold = costs[i];
        selected = &moves[i];
      }
    }
    if (!selected) continue;  // no admissible move

    // --- phase 4: accept -------------------------------------------------
    current.plan(selected->pid) = selected->plan;
    problem.commit_accept(current, *selected);
    current_cost = threshold;
    ++stats.accepted_moves;
    // A selected move that is still tabu-recent got past the filter only
    // by beating the global best: the aspiration criterion fired.
    if (options.tenure > 0 && tabu.is_tabu(selected->key, iter)) {
      ++stats.aspiration_accepted;
    }
    accepted_last = true;
    if (options.tenure > 0) tabu.make_tabu(selected->key, iter);
    if (current_cost < best_cost) {
      best_cost = current_cost;
      if (!options.require_improvement) best = current;
    }
  }

  SearchResult result;
  result.best = options.require_improvement ? std::move(current)
                                            : std::move(best);
  result.best_cost = best_cost;
  result.stats = stats;
  return result;
}

}  // namespace ftes
