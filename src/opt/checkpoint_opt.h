// Checkpoint-count optimization (Section 6 / [15], evaluated in Fig. 8).
//
// The baseline [27] picks each process's checkpoint count in isolation
// (fault/recovery.h's optimal_checkpoints_local).  That is locally optimal
// but globally suboptimal: checkpoints trade per-process overhead chi
// against shared recovery slack, and the trade depends on where the process
// sits in the schedule.  The global optimizer below performs coordinate
// descent on the checkpoint counts against the full WCSL objective; an
// exhaustive exact optimizer over small instances certifies it in tests
// (standing in for an ILP formulation, DESIGN.md Section 5).
#pragma once

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "util/time_types.h"

namespace ftes {

/// Sets X of every checkpointed copy to the isolated optimum of [27]
/// (each copy considered alone, tolerating all of its recoveries).
void apply_local_checkpointing(const Application& app,
                               PolicyAssignment& assignment,
                               int max_checkpoints);

struct CheckpointOptResult {
  PolicyAssignment assignment;
  Time wcsl = 0;
  int evaluations = 0;
};

/// Coordinate descent: repeatedly sweep all checkpointed copies, trying
/// X-1 / X+1 (and keeping any strict WCSL improvement) until a full sweep
/// makes no progress or `max_rounds` is hit.
[[nodiscard]] CheckpointOptResult optimize_checkpoints_global(
    const Application& app, const Architecture& arch, const FaultModel& model,
    PolicyAssignment initial, int max_checkpoints, int max_rounds = 8);

/// Exhaustive search over all checkpoint-count vectors in
/// [1, max_checkpoints]^(#checkpointed copies).  Exponential; guarded by
/// `max_combinations` (throws std::length_error beyond it).  Test oracle.
[[nodiscard]] CheckpointOptResult optimize_checkpoints_exact(
    const Application& app, const Architecture& arch, const FaultModel& model,
    PolicyAssignment initial, int max_checkpoints,
    std::int64_t max_combinations = 2'000'000);

}  // namespace ftes
