// Checkpoint-count optimization (Section 6 / [15], evaluated in Fig. 8).
//
// The baseline [27] picks each process's checkpoint count in isolation
// (fault/recovery.h's optimal_checkpoints_local).  That is locally optimal
// but globally suboptimal: checkpoints trade per-process overhead chi
// against shared recovery slack, and the trade depends on where the process
// sits in the schedule.  The global optimizer below performs coordinate
// descent on the checkpoint counts against the full WCSL objective; an
// exhaustive exact optimizer over small instances certifies it in tests
// (standing in for an ILP formulation, DESIGN.md Section 5).
#pragma once

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "opt/eval_stats.h"
#include "opt/search_engine.h"
#include "util/cancellation.h"
#include "util/time_types.h"

namespace ftes {

class EvalContext;
class ThreadPool;

/// Sets X of every checkpointed copy to the isolated optimum of [27]
/// (each copy considered alone, tolerating all of its recoveries).
void apply_local_checkpointing(const Application& app,
                               PolicyAssignment& assignment,
                               int max_checkpoints);

struct CheckpointOptResult {
  PolicyAssignment assignment;
  Time wcsl = 0;
  int evaluations = 0;
  EvalStats eval_stats;      ///< evaluator counters spent by this run
  SearchStats search_stats;  ///< engine counters (opt/search_engine.h)
};

struct CheckpointOptOptions {
  int max_checkpoints = 8;
  int max_rounds = 8;
  /// Concurrent WCSL evaluations of a copy's candidate counts (1 = serial;
  /// 0 = all hardware threads).  Candidates are evaluated against the same
  /// incumbent and selected serially in candidate order, so the result is
  /// identical for every thread count.
  int threads = 1;
  /// Pool supplying the helper threads; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Shared incremental evaluator; nullptr = a private one.
  EvalContext* eval = nullptr;
  /// Cooperative cancellation: polled per target copy and inside every
  /// parallel candidate evaluation.
  CancellationToken* cancel = nullptr;
};

/// Coordinate descent: repeatedly sweep all checkpointed copies; for each
/// copy the candidate counts X-2 / X-1 / X+1 / X+2 / 1 ("no intermediate
/// checkpoints") are evaluated concurrently against the incumbent and the
/// best strict WCSL improvement (earliest candidate on ties) is kept.
/// Sweeps repeat until one makes no progress or max_rounds is hit.
[[nodiscard]] CheckpointOptResult optimize_checkpoints_global(
    const Application& app, const Architecture& arch, const FaultModel& model,
    PolicyAssignment initial, const CheckpointOptOptions& options);

/// Back-compatible convenience overload.
[[nodiscard]] CheckpointOptResult optimize_checkpoints_global(
    const Application& app, const Architecture& arch, const FaultModel& model,
    PolicyAssignment initial, int max_checkpoints, int max_rounds = 8);

/// Exhaustive search over all checkpoint-count vectors in
/// [1, max_checkpoints]^(#checkpointed copies).  Exponential; guarded by
/// `max_combinations` (throws std::length_error beyond it).  Test oracle.
[[nodiscard]] CheckpointOptResult optimize_checkpoints_exact(
    const Application& app, const Architecture& arch, const FaultModel& model,
    PolicyAssignment initial, int max_checkpoints,
    std::int64_t max_combinations = 2'000'000);

}  // namespace ftes
