#include "opt/bus_opt.h"

#include <algorithm>
#include <vector>

#include "sched/wcsl.h"
#include "util/random.h"

namespace ftes {

namespace {

Time evaluate_with_bus(const Application& app, const Architecture& arch,
                       const TdmaBus& bus, const PolicyAssignment& pa,
                       const FaultModel& fm) {
  Architecture candidate = arch;
  candidate.set_bus(bus);
  return evaluate_wcsl(app, candidate, pa, fm).makespan;
}

}  // namespace

BusOptResult optimize_bus_access(const Application& app,
                                 const Architecture& arch,
                                 const PolicyAssignment& assignment,
                                 const FaultModel& model,
                                 const BusOptOptions& options) {
  Rng rng(options.seed);
  BusOptResult result;
  std::vector<TdmaSlot> slots = arch.bus().slots();
  const std::int64_t payload = arch.bus().slot_payload();

  auto build = [&](const std::vector<TdmaSlot>& s) {
    TdmaBus bus = TdmaBus::from_slots(s);
    bus.set_slot_payload(payload);
    return bus;
  };

  result.bus = build(slots);
  result.wcsl_before =
      evaluate_with_bus(app, arch, result.bus, assignment, model);
  result.wcsl_after = result.wcsl_before;
  result.evaluations = 1;

  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<TdmaSlot> candidate = slots;
    if (slots.size() > 1 && rng.chance(0.5)) {
      // Swap two slots in the round.
      const std::size_t a = rng.index(candidate.size());
      const std::size_t b = rng.index(candidate.size());
      if (a == b) continue;
      std::swap(candidate[a], candidate[b]);
    } else {
      // Rescale one slot (halve or grow by ~50%).
      const std::size_t a = rng.index(candidate.size());
      Time next = rng.chance(0.5) ? candidate[a].length / 2
                                  : candidate[a].length + candidate[a].length / 2 + 1;
      next = std::clamp(next, options.min_slot_length,
                        options.max_slot_length);
      if (next == candidate[a].length) continue;
      candidate[a].length = next;
    }
    const TdmaBus bus = build(candidate);
    const Time wcsl = evaluate_with_bus(app, arch, bus, assignment, model);
    ++result.evaluations;
    if (wcsl < result.wcsl_after) {
      result.wcsl_after = wcsl;
      result.bus = bus;
      slots = std::move(candidate);
    }
  }
  return result;
}

}  // namespace ftes
