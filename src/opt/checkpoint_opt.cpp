#include "opt/checkpoint_opt.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fault/recovery.h"
#include "opt/eval_context.h"
#include "sched/wcsl.h"
#include "util/thread_pool.h"

namespace ftes {

void apply_local_checkpointing(const Application& app,
                               PolicyAssignment& assignment,
                               int max_checkpoints) {
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    const Process& proc = app.process(pid);
    for (CopyPlan& copy : assignment.plan(pid).copies) {
      if (copy.checkpoints < 1) continue;
      RecoveryParams params{proc.wcet_on(copy.node), proc.alpha, proc.mu,
                            proc.chi};
      copy.checkpoints =
          optimal_checkpoints_local(params, copy.recoveries, max_checkpoints);
    }
  }
}

namespace {

/// (process, copy) pairs that carry checkpoints.
std::vector<std::pair<ProcessId, int>> checkpointed_copies(
    const Application& app, const PolicyAssignment& pa) {
  std::vector<std::pair<ProcessId, int>> result;
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    const ProcessPlan& plan = pa.plan(pid);
    for (int j = 0; j < plan.copy_count(); ++j) {
      if (plan.copies[static_cast<std::size_t>(j)].checkpoints >= 1) {
        result.emplace_back(pid, j);
      }
    }
  }
  return result;
}

}  // namespace

CheckpointOptResult optimize_checkpoints_global(
    const Application& app, const Architecture& arch, const FaultModel& model,
    PolicyAssignment initial, const CheckpointOptOptions& options) {
  std::unique_ptr<EvalContext> owned_eval;
  EvalContext* eval = options.eval;
  if (!eval) {
    owned_eval = std::make_unique<EvalContext>(app, arch, model);
    eval = owned_eval.get();
  }
  const EvalStats stats_before = eval->stats();
  const int threads = resolve_threads(options.threads);
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();

  CheckpointOptResult result;
  result.assignment = std::move(initial);
  result.wcsl = eval->rebase(result.assignment).makespan;
  result.evaluations = 1;

  const auto targets = checkpointed_copies(app, result.assignment);
  std::vector<int> candidates;
  std::vector<Time> wcsls;
  bool cancelled = false;
  for (int round = 0; round < options.max_rounds && !cancelled; ++round) {
    bool improved = false;
    for (const auto& [pid, j] : targets) {
      if (options.cancel && options.cancel->poll()) {
        cancelled = true;
        break;
      }
      CopyPlan& copy =
          result.assignment.plan(pid).copies[static_cast<std::size_t>(j)];
      // Neighbour counts plus the "no intermediate checkpoints" extreme --
      // off-critical processes often want n = 1 to shed the n*chi overhead
      // entirely, which +-1 steps reach only through a cost plateau.
      const int current = copy.checkpoints;
      candidates.clear();
      for (int next : {current - 2, current - 1, current + 1, current + 2, 1}) {
        if (next < 1 || next > options.max_checkpoints || next == current ||
            std::find(candidates.begin(), candidates.end(), next) !=
                candidates.end()) {
          continue;
        }
        candidates.push_back(next);
      }
      if (candidates.empty()) continue;

      // All candidate counts are judged against the same incumbent, so
      // their (incremental) evaluations run concurrently; the selection
      // below is serial in candidate order for thread-count invariance.
      wcsls.assign(candidates.size(), kTimeInfinity);
      parallel_for(pool, candidates.size(), threads, [&](std::size_t n) {
        // Chunk-granular cancellation point (see policy_assignment.cpp).
        if (options.cancel && options.cancel->poll()) return;
        ProcessPlan plan = result.assignment.plan(pid);
        plan.copies[static_cast<std::size_t>(j)].checkpoints =
            candidates[n];
        wcsls[n] = eval->evaluate_move(pid, plan).makespan;
      });
      // A partially evaluated candidate set must not drive a selection.
      if (options.cancel && options.cancel->cancelled()) {
        cancelled = true;
        break;
      }
      result.evaluations += static_cast<int>(candidates.size());

      int chosen = -1;
      Time chosen_wcsl = result.wcsl;
      for (std::size_t n = 0; n < candidates.size(); ++n) {
        if (wcsls[n] < chosen_wcsl) {
          chosen_wcsl = wcsls[n];
          chosen = static_cast<int>(n);
        }
      }
      if (chosen >= 0) {
        copy.checkpoints = candidates[static_cast<std::size_t>(chosen)];
        result.wcsl = chosen_wcsl;
        improved = true;
        eval->rebase(result.assignment);
      }
    }
    if (!improved) break;
  }
  result.eval_stats = eval->stats().since(stats_before);
  return result;
}

CheckpointOptResult optimize_checkpoints_global(const Application& app,
                                                const Architecture& arch,
                                                const FaultModel& model,
                                                PolicyAssignment initial,
                                                int max_checkpoints,
                                                int max_rounds) {
  CheckpointOptOptions options;
  options.max_checkpoints = max_checkpoints;
  options.max_rounds = max_rounds;
  return optimize_checkpoints_global(app, arch, model, std::move(initial),
                                     options);
}

CheckpointOptResult optimize_checkpoints_exact(const Application& app,
                                               const Architecture& arch,
                                               const FaultModel& model,
                                               PolicyAssignment initial,
                                               int max_checkpoints,
                                               std::int64_t max_combinations) {
  const auto targets = checkpointed_copies(app, initial);
  std::int64_t combinations = 1;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    combinations *= max_checkpoints;
    if (combinations > max_combinations) {
      throw std::length_error("exact checkpoint search space too large");
    }
  }

  CheckpointOptResult result;
  result.assignment = initial;
  result.wcsl = evaluate_wcsl(app, arch, result.assignment, model).makespan;
  result.evaluations = 1;

  std::vector<int> counts(targets.size(), 1);
  PolicyAssignment candidate = initial;
  while (true) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      candidate.plan(targets[i].first)
          .copies[static_cast<std::size_t>(targets[i].second)]
          .checkpoints = counts[i];
    }
    const Time wcsl = evaluate_wcsl(app, arch, candidate, model).makespan;
    ++result.evaluations;
    if (wcsl < result.wcsl) {
      result.wcsl = wcsl;
      result.assignment = candidate;
    }
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < counts.size()) {
      if (++counts[pos] <= max_checkpoints) break;
      counts[pos] = 1;
      ++pos;
    }
    if (pos == counts.size()) break;
    if (counts.empty()) break;
  }
  return result;
}

}  // namespace ftes
