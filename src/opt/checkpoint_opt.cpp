#include "opt/checkpoint_opt.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fault/recovery.h"
#include "opt/eval_context.h"
#include "opt/search_engine.h"
#include "sched/wcsl.h"

namespace ftes {

void apply_local_checkpointing(const Application& app,
                               PolicyAssignment& assignment,
                               int max_checkpoints) {
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    const Process& proc = app.process(pid);
    for (CopyPlan& copy : assignment.plan(pid).copies) {
      if (copy.checkpoints < 1) continue;
      RecoveryParams params{proc.wcet_on(copy.node), proc.alpha, proc.mu,
                            proc.chi};
      copy.checkpoints =
          optimal_checkpoints_local(params, copy.recoveries, max_checkpoints);
    }
  }
}

namespace {

/// (process, copy) pairs that carry checkpoints.
std::vector<std::pair<ProcessId, int>> checkpointed_copies(
    const Application& app, const PolicyAssignment& pa) {
  std::vector<std::pair<ProcessId, int>> result;
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    const ProcessPlan& plan = pa.plan(pid);
    for (int j = 0; j < plan.copy_count(); ++j) {
      if (plan.copies[static_cast<std::size_t>(j)].checkpoints >= 1) {
        result.emplace_back(pid, j);
      }
    }
  }
  return result;
}

/// Coordinate descent over checkpoint counts as a neighborhood problem:
/// each engine iteration is one target (process, copy); its neighborhood
/// is the candidate counts X-2 / X-1 / X+1 / X+2 / 1 ("no intermediate
/// checkpoints" -- off-critical processes often want n = 1 to shed the
/// n*chi overhead entirely, which +-1 steps reach only through a cost
/// plateau), judged by the WCSL makespan.  The generator carries the sweep
/// state (round, target cursor, improved flag) and stops the engine when a
/// full sweep makes no progress or max_rounds is exhausted; the engine's
/// require_improvement acceptance keeps only strict improvements
/// (earliest candidate on ties), exactly the historical descent.
class CheckpointDescentProblem final : public SearchProblem {
 public:
  CheckpointDescentProblem(EvalContext& eval,
                           std::vector<std::pair<ProcessId, int>> targets,
                           int max_checkpoints, int max_rounds)
      : eval_(eval),
        targets_(std::move(targets)),
        max_checkpoints_(max_checkpoints),
        max_rounds_(max_rounds) {}

  bool neighborhood(int /*iteration*/, const PolicyAssignment& current,
                    bool accepted_last, std::vector<Move>& out) override {
    improved_ = improved_ || accepted_last;
    if (max_rounds_ <= 0) return false;
    while (true) {
      if (next_target_ == targets_.size()) {  // sweep boundary
        if (!improved_ || round_ + 1 >= max_rounds_) return false;
        ++round_;
        next_target_ = 0;
        improved_ = false;
      }
      const auto& [pid, j] = targets_[next_target_++];
      const ProcessPlan& plan = current.plan(pid);
      const int count = plan.copies[static_cast<std::size_t>(j)].checkpoints;
      counts_.clear();
      for (int next : {count - 2, count - 1, count + 1, count + 2, 1}) {
        if (next < 1 || next > max_checkpoints_ || next == count ||
            std::find(counts_.begin(), counts_.end(), next) !=
                counts_.end()) {
          continue;
        }
        counts_.push_back(next);
      }
      if (counts_.empty()) continue;  // clamped target: straight to the next
      for (int next : counts_) {
        ProcessPlan moved = plan;
        moved.copies[static_cast<std::size_t>(j)].checkpoints = next;
        out.push_back(Move{pid, std::move(moved),
                           TabuList::Key{2, pid.get(), j, next}});
      }
      return true;
    }
  }

  Time evaluate(const Move& move) override {
    return eval_.evaluate_move(move.pid, move.plan).makespan;
  }

  Time commit(const PolicyAssignment& current) override {
    return eval_.rebase(current).makespan;
  }

  Time commit_accept(const PolicyAssignment& current,
                     const Move& accepted) override {
    return eval_.rebase(current, accepted.pid).makespan;
  }

 private:
  EvalContext& eval_;
  std::vector<std::pair<ProcessId, int>> targets_;
  int max_checkpoints_;
  int max_rounds_;
  std::size_t next_target_ = 0;
  int round_ = 0;
  bool improved_ = false;
  std::vector<int> counts_;
};

}  // namespace

CheckpointOptResult optimize_checkpoints_global(
    const Application& app, const Architecture& arch, const FaultModel& model,
    PolicyAssignment initial, const CheckpointOptOptions& options) {
  std::unique_ptr<EvalContext> owned_eval;
  EvalContext* eval = options.eval;
  if (!eval) {
    owned_eval = std::make_unique<EvalContext>(app, arch, model);
    eval = owned_eval.get();
  }
  const EvalStats stats_before = eval->stats();

  CheckpointDescentProblem problem(*eval, checkpointed_copies(app, initial),
                                   options.max_checkpoints,
                                   options.max_rounds);
  SearchOptions search;
  search.require_improvement = true;  // pure descent, no tabu list
  search.threads = options.threads;
  search.pool = options.pool;
  search.cancel = options.cancel;
  SearchResult found =
      neighborhood_search(problem, std::move(initial), search);

  CheckpointOptResult result;
  result.assignment = std::move(found.best);
  result.wcsl = found.best_cost;
  result.evaluations = found.stats.evaluations;
  result.search_stats = found.stats;
  result.eval_stats = eval->stats().since(stats_before);
  return result;
}

CheckpointOptResult optimize_checkpoints_global(const Application& app,
                                                const Architecture& arch,
                                                const FaultModel& model,
                                                PolicyAssignment initial,
                                                int max_checkpoints,
                                                int max_rounds) {
  CheckpointOptOptions options;
  options.max_checkpoints = max_checkpoints;
  options.max_rounds = max_rounds;
  return optimize_checkpoints_global(app, arch, model, std::move(initial),
                                     options);
}

CheckpointOptResult optimize_checkpoints_exact(const Application& app,
                                               const Architecture& arch,
                                               const FaultModel& model,
                                               PolicyAssignment initial,
                                               int max_checkpoints,
                                               std::int64_t max_combinations) {
  const auto targets = checkpointed_copies(app, initial);
  std::int64_t combinations = 1;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    combinations *= max_checkpoints;
    if (combinations > max_combinations) {
      throw std::length_error("exact checkpoint search space too large");
    }
  }

  CheckpointOptResult result;
  result.assignment = initial;
  result.wcsl = evaluate_wcsl(app, arch, result.assignment, model).makespan;
  result.evaluations = 1;

  std::vector<int> counts(targets.size(), 1);
  PolicyAssignment candidate = initial;
  while (true) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      candidate.plan(targets[i].first)
          .copies[static_cast<std::size_t>(targets[i].second)]
          .checkpoints = counts[i];
    }
    const Time wcsl = evaluate_wcsl(app, arch, candidate, model).makespan;
    ++result.evaluations;
    if (wcsl < result.wcsl) {
      result.wcsl = wcsl;
      result.assignment = candidate;
    }
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < counts.size()) {
      if (++counts[pos] <= max_checkpoints) break;
      counts[pos] = 1;
      ++pos;
    }
    if (pos == counts.size()) break;
    if (counts.empty()) break;
  }
  return result;
}

}  // namespace ftes
