#include "opt/soft_hard.h"

#include <algorithm>
#include <stdexcept>

#include "sched/wcsl.h"
#include "util/random.h"

namespace ftes {

double utility_at(const SoftSpec& spec, Time finish) {
  if (finish <= spec.soft_deadline) return spec.utility;
  if (spec.window <= 0) return 0.0;
  const Time over = finish - spec.soft_deadline;
  if (over >= spec.window) return 0.0;
  return spec.utility *
         (1.0 - static_cast<double>(over) / static_cast<double>(spec.window));
}

namespace {

/// Checks closure: dropped processes are soft and their successors are all
/// dropped.
void check_drop_set(const Application& app, const std::vector<bool>& dropped) {
  if (static_cast<int>(dropped.size()) != app.process_count()) {
    throw std::invalid_argument("drop set size mismatch");
  }
  for (int i = 0; i < app.process_count(); ++i) {
    if (!dropped[static_cast<std::size_t>(i)]) continue;
    const Process& p = app.process(ProcessId{i});
    if (!p.soft) {
      throw std::invalid_argument("hard process '" + p.name + "' dropped");
    }
    for (ProcessId succ : app.successors(ProcessId{i})) {
      if (!dropped[static_cast<std::size_t>(succ.get())]) {
        throw std::invalid_argument("drop set not successor-closed at '" +
                                    p.name + "'");
      }
    }
  }
}

/// Builds the kept-only sub-application and the matching sub-assignment.
struct Filtered {
  Application app;
  PolicyAssignment assignment;
  std::vector<int> old_of_new;  // new pid -> old pid
};

Filtered filter(const Application& app, const PolicyAssignment& pa,
                const std::vector<bool>& dropped) {
  Filtered f;
  std::vector<int> new_of_old(static_cast<std::size_t>(app.process_count()),
                              -1);
  for (int i = 0; i < app.process_count(); ++i) {
    if (dropped[static_cast<std::size_t>(i)]) continue;
    new_of_old[static_cast<std::size_t>(i)] =
        f.app.add_process(app.process(ProcessId{i})).get();
    f.old_of_new.push_back(i);
  }
  for (const Message& m : app.messages()) {
    const int s = new_of_old[static_cast<std::size_t>(m.src.get())];
    const int d = new_of_old[static_cast<std::size_t>(m.dst.get())];
    if (s < 0 || d < 0) continue;
    Message copy = m;
    copy.src = ProcessId{s};
    copy.dst = ProcessId{d};
    f.app.add_message(std::move(copy));
  }
  f.app.set_deadline(app.deadline());
  f.app.set_period(app.period());
  f.assignment = PolicyAssignment(f.app.process_count());
  for (int n = 0; n < f.app.process_count(); ++n) {
    f.assignment.plan(ProcessId{n}) =
        pa.plan(ProcessId{f.old_of_new[static_cast<std::size_t>(n)]});
  }
  return f;
}

}  // namespace

SoftHardEvaluation evaluate_soft_hard(const Application& app,
                                      const Architecture& arch,
                                      const PolicyAssignment& assignment,
                                      const FaultModel& model,
                                      const std::vector<bool>& dropped) {
  check_drop_set(app, dropped);
  const Filtered f = filter(app, assignment, dropped);
  SoftHardEvaluation eval;
  if (f.app.process_count() == 0) {
    eval.hard_feasible = true;
    return eval;
  }
  const WcslResult wcsl = evaluate_wcsl(f.app, arch, f.assignment, model);
  eval.wcsl = wcsl.makespan;
  eval.hard_feasible = wcsl.makespan <= app.deadline();
  for (int n = 0; n < f.app.process_count(); ++n) {
    const Process& p = f.app.process(ProcessId{n});
    const Time finish = wcsl.process_finish[static_cast<std::size_t>(n)];
    if (p.soft) {
      eval.total_utility += utility_at(*p.soft, finish);
    } else if (p.local_deadline && finish > *p.local_deadline) {
      eval.hard_feasible = false;
    }
  }
  return eval;
}

SoftHardResult optimize_soft_hard(const Application& app,
                                  const Architecture& arch,
                                  const PolicyAssignment& assignment,
                                  const FaultModel& model,
                                  const SoftHardOptions& options) {
  Rng rng(options.seed);
  SoftHardResult result;
  result.dropped.assign(static_cast<std::size_t>(app.process_count()), false);

  // Droppable = soft with no hard process downstream.
  std::vector<bool> droppable(static_cast<std::size_t>(app.process_count()),
                              true);
  const std::vector<ProcessId> topo = app.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const ProcessId pid = *it;
    bool ok = app.process(pid).soft.has_value();
    for (ProcessId succ : app.successors(pid)) {
      if (!droppable[static_cast<std::size_t>(succ.get())]) ok = false;
    }
    // A process whose successor is kept can still be dropped later only if
    // the successor is dropped too; droppable[] records the *potential*.
    droppable[static_cast<std::size_t>(pid.get())] = ok;
  }

  // Closure helper: dropping pid drops all droppable descendants.
  auto drop_closure = [&](std::vector<bool>& set, ProcessId pid) {
    std::vector<ProcessId> stack{pid};
    while (!stack.empty()) {
      const ProcessId p = stack.back();
      stack.pop_back();
      if (set[static_cast<std::size_t>(p.get())]) continue;
      set[static_cast<std::size_t>(p.get())] = true;
      for (ProcessId succ : app.successors(p)) stack.push_back(succ);
    }
  };

  result.evaluation =
      evaluate_soft_hard(app, arch, assignment, model, result.dropped);
  result.evaluations = 1;

  // Greedy repair: while hard-infeasible, drop the droppable process with
  // the lowest utility density (utility / WCET) whose closure is legal.
  while (!result.evaluation.hard_feasible) {
    int best = -1;
    double best_density = 0.0;
    for (int i = 0; i < app.process_count(); ++i) {
      if (result.dropped[static_cast<std::size_t>(i)] ||
          !droppable[static_cast<std::size_t>(i)]) {
        continue;
      }
      const Process& p = app.process(ProcessId{i});
      Time wcet = 0;
      // lint: order-insensitive -- max over the values is commutative, so
      // hash order cannot change the density tie-break below
      for (const auto& [node, c] : p.wcet) wcet = std::max(wcet, c);
      const double density =
          p.soft->utility / static_cast<double>(std::max<Time>(wcet, 1));
      if (best < 0 || density < best_density) {
        best = i;
        best_density = density;
      }
    }
    if (best < 0) break;  // nothing left to drop; hard set is infeasible
    drop_closure(result.dropped, ProcessId{best});
    result.evaluation =
        evaluate_soft_hard(app, arch, assignment, model, result.dropped);
    ++result.evaluations;
  }

  // Local search: toggle drops (drop a kept closure / restore a dropped
  // process whose predecessors are kept), accept if utility improves while
  // staying hard-feasible.
  for (int iter = 0; iter < options.iterations; ++iter) {
    const int i =
        static_cast<int>(rng.index(static_cast<std::size_t>(app.process_count())));
    const ProcessId pid{i};
    std::vector<bool> candidate = result.dropped;
    if (result.dropped[static_cast<std::size_t>(i)]) {
      // Restore: legal only if no dropped predecessor remains.
      bool ok = true;
      for (ProcessId pred : app.predecessors(pid)) {
        if (candidate[static_cast<std::size_t>(pred.get())]) ok = false;
      }
      if (!ok) continue;
      candidate[static_cast<std::size_t>(i)] = false;
    } else {
      if (!droppable[static_cast<std::size_t>(i)]) continue;
      drop_closure(candidate, pid);
    }
    const SoftHardEvaluation eval =
        evaluate_soft_hard(app, arch, assignment, model, candidate);
    ++result.evaluations;
    if (eval.hard_feasible &&
        (!result.evaluation.hard_feasible ||
         eval.total_utility > result.evaluation.total_utility)) {
      result.dropped = std::move(candidate);
      result.evaluation = eval;
    }
  }
  return result;
}

}  // namespace ftes
