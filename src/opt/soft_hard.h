// Fault-tolerant scheduling with soft and hard time constraints
// (Izosimov et al., DATE 2008 [17], the scheduling family the paper's
// Section 5.2 points to).
//
// Hard processes must complete -- on time -- in every scenario of at most k
// transient faults.  Soft processes each carry a utility function
//
//     U(t) = U0                                   for t <= soft_deadline
//     U(t) = U0 * (1 - (t - d)/window)            for d < t <= d + window
//     U(t) = 0                                    afterwards
//
// and may be *dropped*: a dropped soft process (and, transitively,
// everything that depends on it) is not executed at all, freeing its
// resources.  The optimization picks the drop set and evaluates the
// worst-case completion of every kept process under k faults, maximizing
// the total worst-case utility subject to hard-deadline feasibility.
//
// Dropping is closed under successors: a process may only be dropped if all
// its successors are dropped too, and hard processes are never droppable
// (nor, therefore, any ancestor of a hard process).
#pragma once

#include <cstdint>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "util/time_types.h"

namespace ftes {

/// U(t) for one soft spec (0 for t beyond the decay window).
[[nodiscard]] double utility_at(const SoftSpec& spec, Time finish);

struct SoftHardEvaluation {
  bool hard_feasible = false;   ///< all hard deadlines hold in the worst case
  double total_utility = 0.0;   ///< sum of worst-case utilities of kept softs
  Time wcsl = 0;                ///< worst-case schedule length of kept set
};

/// Evaluates one drop set (dropped[i] == true -> process i not executed).
/// Throws std::invalid_argument if the drop set is not closed or drops a
/// hard process.
[[nodiscard]] SoftHardEvaluation evaluate_soft_hard(
    const Application& app, const Architecture& arch,
    const PolicyAssignment& assignment, const FaultModel& model,
    const std::vector<bool>& dropped);

struct SoftHardOptions {
  int iterations = 100;  ///< local-search toggles attempted
  std::uint64_t seed = 1;
};

struct SoftHardResult {
  std::vector<bool> dropped;
  SoftHardEvaluation evaluation;
  int evaluations = 0;
};

/// Greedy repair (drop lowest-utility-density closed sets until the hard
/// deadlines hold) followed by first-improvement local search on the drop
/// set, maximizing (hard_feasible, total_utility).
[[nodiscard]] SoftHardResult optimize_soft_hard(const Application& app,
                                                const Architecture& arch,
                                                const PolicyAssignment& assignment,
                                                const FaultModel& model,
                                                const SoftHardOptions& options);

}  // namespace ftes
