#include "opt/policy_assignment.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fault/recovery.h"
#include "opt/eval_context.h"
#include "opt/search_engine.h"
#include "sched/wcsl.h"
#include "util/logging.h"
#include "util/random.h"

namespace ftes {

namespace {

/// Nodes a process may run on, in id order.
std::vector<NodeId> allowed_nodes(const Process& p, const Architecture& arch) {
  std::vector<NodeId> nodes;
  for (NodeId n : arch.node_ids()) {
    if (p.can_run_on(n)) nodes.push_back(n);
  }
  return nodes;
}

int local_opt_checkpoints(const Process& p, NodeId node, int k,
                          int max_checkpoints) {
  RecoveryParams params{p.wcet_on(node), p.alpha, p.mu, p.chi};
  return optimal_checkpoints_local(params, k, max_checkpoints);
}

/// Places the copies of a replication/hybrid plan round-robin over the
/// least-loaded allowed nodes.
void place_copies(ProcessPlan& plan, const std::vector<NodeId>& allowed,
                  std::vector<Time>& load, const Process& proc) {
  // Sort allowed nodes by current load (stable on id for determinism).
  std::vector<NodeId> order = allowed;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const Time la = load[static_cast<std::size_t>(a.get())];
    const Time lb = load[static_cast<std::size_t>(b.get())];
    if (la != lb) return la < lb;
    return a.get() < b.get();
  });
  for (std::size_t j = 0; j < plan.copies.size(); ++j) {
    const NodeId n = order[j % order.size()];
    plan.copies[j].node = n;
    load[static_cast<std::size_t>(n.get())] += proc.wcet_on(n);
  }
}

ProcessPlan initial_plan(const Process& proc, const Architecture& arch,
                         const FaultModel& model, PolicySpace space,
                         int max_checkpoints, std::vector<Time>& load) {
  const std::vector<NodeId> allowed = allowed_nodes(proc, arch);
  ProcessPlan plan;
  switch (space) {
    case PolicySpace::kReexecutionOnly:
      plan = make_checkpointing_plan(model.k, 1);
      break;
    case PolicySpace::kCheckpointingOnly:
    case PolicySpace::kFull:
      plan = make_checkpointing_plan(model.k, 1);
      break;
    case PolicySpace::kReplicationOnly:
      plan = make_replication_plan(model.k);
      break;
  }
  // Designer-fixed policy kinds override the space's default shape.
  if (proc.fixed_policy) {
    switch (*proc.fixed_policy) {
      case PolicyKind::kCheckpointing:
        plan = make_checkpointing_plan(model.k, 1);
        break;
      case PolicyKind::kReplication:
        plan = make_replication_plan(model.k);
        break;
      case PolicyKind::kReplicationAndCheckpointing:
        plan = model.k >= 2 ? make_hybrid_plan(model.k, 1, 1)
                            : make_checkpointing_plan(model.k, 1);
        break;
    }
  }
  if (proc.fixed_mapping) {
    plan.copies[0].node = *proc.fixed_mapping;
    load[static_cast<std::size_t>(proc.fixed_mapping->get())] +=
        proc.wcet_on(*proc.fixed_mapping);
    if (plan.copy_count() > 1) {
      ProcessPlan rest = plan;
      rest.copies.erase(rest.copies.begin());
      place_copies(rest, allowed, load, proc);
      for (int j = 1; j < plan.copy_count(); ++j) {
        plan.copies[static_cast<std::size_t>(j)] =
            rest.copies[static_cast<std::size_t>(j - 1)];
      }
    }
  } else {
    place_copies(plan, allowed, load, proc);
  }
  if (space != PolicySpace::kReexecutionOnly &&
      space != PolicySpace::kReplicationOnly) {
    for (CopyPlan& c : plan.copies) {
      if (c.checkpoints >= 1) {
        c.checkpoints = local_opt_checkpoints(proc, c.node, c.recoveries,
                                              max_checkpoints);
      }
    }
  }
  return plan;
}

/// Neighborhood + objective of the mapping + FT policy assignment tabu
/// search: the three move families of Section 6 (remap a copy, switch the
/// policy kind, adjust a checkpoint count), judged by the WCSL analysis
/// plus soft local-deadline penalties.
class PolicyAssignmentProblem final : public SearchProblem {
 public:
  // Move encoding for the tabu list: (family, process, a, b).
  enum MoveFamily { kRemap = 0, kPolicy = 1, kCheckpoint = 2 };

  PolicyAssignmentProblem(const Application& app, const Architecture& arch,
                          const FaultModel& model, EvalContext& eval,
                          const OptimizeOptions& options)
      : app_(app),
        arch_(arch),
        model_(model),
        eval_(eval),
        options_(options),
        rng_(options.seed) {}

  bool neighborhood(int /*iteration*/, const PolicyAssignment& current,
                    bool /*accepted_last*/, std::vector<Move>& out) override {
    for (int s = 0; s < options_.neighborhood; ++s) {
      TabuList::Key key{};
      const ProcessId pid{
          static_cast<std::int32_t>(rng_.index(
              static_cast<std::size_t>(app_.process_count())))};
      const Process& proc = app_.process(pid);
      ProcessPlan plan = current.plan(pid);
      const std::vector<NodeId> allowed = allowed_nodes(proc, arch_);

      // Pick an applicable move family.
      std::vector<int> families;
      if (options_.optimize_mapping && allowed.size() > 1) {
        families.push_back(kRemap);
      }
      if (options_.space == PolicySpace::kFull && !proc.fixed_policy) {
        families.push_back(kPolicy);
      }
      if (options_.optimize_checkpoints &&
          options_.space != PolicySpace::kReexecutionOnly &&
          options_.space != PolicySpace::kReplicationOnly) {
        families.push_back(kCheckpoint);
      }
      if (families.empty()) continue;
      const int family = families[rng_.index(families.size())];

      if (family == kRemap) {
        const int copy = static_cast<int>(rng_.index(plan.copies.size()));
        if (copy == 0 && proc.fixed_mapping) continue;
        CopyPlan& cp = plan.copies[static_cast<std::size_t>(copy)];
        const NodeId to = allowed[rng_.index(allowed.size())];
        if (to == cp.node) continue;
        cp.node = to;
        if (cp.checkpoints >= 1 && options_.optimize_checkpoints) {
          cp.checkpoints = local_opt_checkpoints(proc, to, cp.recoveries,
                                                 options_.max_checkpoints);
        }
        key = {kRemap, pid.get(), copy, to.get()};
      } else if (family == kPolicy) {
        // Switch between checkpointing / replication / hybrid.
        const NodeId home = plan.copies[0].node;
        int choice =
            static_cast<int>(rng_.uniform_int(0, model_.k >= 2 ? 2 : 1));
        if (choice == 0 && plan.kind == PolicyKind::kCheckpointing) choice = 1;
        if (choice == 1 && plan.kind == PolicyKind::kReplication) choice = 0;
        if (choice == 0) {
          plan = make_checkpointing_plan(model_.k, 1);
          plan.copies[0].node = home;
          if (options_.optimize_checkpoints) {
            plan.copies[0].checkpoints = local_opt_checkpoints(
                proc, home, model_.k, options_.max_checkpoints);
          }
        } else if (choice == 1) {
          plan = make_replication_plan(model_.k);
          plan.copies[0].node = home;
          for (int j = 1; j < plan.copy_count(); ++j) {
            plan.copies[static_cast<std::size_t>(j)].node =
                allowed[rng_.index(allowed.size())];
          }
        } else {
          const int q = static_cast<int>(rng_.uniform_int(1, model_.k - 1));
          plan = make_hybrid_plan(model_.k, q, 1);
          plan.copies[0].node = home;
          if (options_.optimize_checkpoints) {
            plan.copies[0].checkpoints = local_opt_checkpoints(
                proc, home, plan.copies[0].recoveries,
                options_.max_checkpoints);
          }
          for (int j = 1; j < plan.copy_count(); ++j) {
            plan.copies[static_cast<std::size_t>(j)].node =
                allowed[rng_.index(allowed.size())];
          }
        }
        if (proc.fixed_mapping) plan.copies[0].node = *proc.fixed_mapping;
        key = {kPolicy, pid.get(), static_cast<int>(plan.kind),
               plan.copy_count()};
      } else {
        // Checkpoint count +-1 on a checkpointed copy.
        std::vector<int> checkpointed;
        for (int j = 0; j < plan.copy_count(); ++j) {
          if (plan.copies[static_cast<std::size_t>(j)].checkpoints >= 1) {
            checkpointed.push_back(j);
          }
        }
        if (checkpointed.empty()) continue;
        const int copy = checkpointed[rng_.index(checkpointed.size())];
        CopyPlan& cp = plan.copies[static_cast<std::size_t>(copy)];
        const int delta = rng_.chance(0.5) ? 1 : -1;
        const int next =
            std::clamp(cp.checkpoints + delta, 1, options_.max_checkpoints);
        if (next == cp.checkpoints) continue;
        cp.checkpoints = next;
        key = {kCheckpoint, pid.get(), copy, next};
      }

      out.push_back(Move{pid, std::move(plan), key});
    }
    return true;
  }

  Time evaluate(const Move& move) override {
    return eval_.evaluate_move(move.pid, move.plan).cost;
  }

  Time commit(const PolicyAssignment& current) override {
    return eval_.rebase(current).cost;
  }

  Time commit_accept(const PolicyAssignment& current,
                     const Move& accepted) override {
    return eval_.rebase(current, accepted.pid).cost;
  }

 private:
  const Application& app_;
  const Architecture& arch_;
  const FaultModel& model_;
  EvalContext& eval_;
  const OptimizeOptions& options_;
  Rng rng_;
};

}  // namespace

PolicyAssignment greedy_initial(const Application& app,
                                const Architecture& arch,
                                const FaultModel& model, PolicySpace space,
                                int max_checkpoints) {
  PolicyAssignment pa(app.process_count());
  std::vector<Time> load(static_cast<std::size_t>(arch.node_count()), 0);
  for (ProcessId pid : app.topological_order()) {
    pa.plan(pid) = initial_plan(app.process(pid), arch, model, space,
                                max_checkpoints, load);
  }
  return pa;
}

Time assignment_cost(const Application& app, const Architecture& arch,
                     const PolicyAssignment& assignment,
                     const FaultModel& model) {
  const WcslResult wcsl = evaluate_wcsl(app, arch, assignment, model);
  Time cost = wcsl.makespan;
  for (int i = 0; i < app.process_count(); ++i) {
    const Process& p = app.process(ProcessId{i});
    if (p.local_deadline) {
      const Time miss =
          wcsl.process_finish[static_cast<std::size_t>(i)] - *p.local_deadline;
      if (miss > 0) cost += 10 * miss;  // soft penalty steers back to feasible
    }
  }
  return cost;
}

OptimizeResult optimize_policy_and_mapping(const Application& app,
                                           const Architecture& arch,
                                           const FaultModel& model,
                                           const OptimizeOptions& options) {
  return optimize_from(
      app, arch, model, options,
      greedy_initial(app, arch, model, options.space, options.max_checkpoints));
}

OptimizeResult optimize_from(const Application& app, const Architecture& arch,
                             const FaultModel& model,
                             const OptimizeOptions& options,
                             PolicyAssignment initial) {
  model.validate();
  initial.validate(app, model);
  std::unique_ptr<EvalContext> owned_eval;
  EvalContext* eval = options.eval;
  if (!eval) {
    owned_eval = std::make_unique<EvalContext>(app, arch, model);
    eval = owned_eval.get();
  }
  const EvalStats stats_before = eval->stats();

  PolicyAssignmentProblem problem(app, arch, model, *eval, options);
  SearchOptions search;
  // Non-positive budgets historically ran zero iterations, never forever.
  search.max_iterations = std::max(0, options.iterations);
  search.tenure = options.tenure;
  search.threads = options.threads;
  search.pool = options.pool;
  search.cancel = options.cancel;
  SearchResult found =
      neighborhood_search(problem, std::move(initial), search);

  OptimizeResult result;
  result.assignment = std::move(found.best);
  // Served from the cached base DP when the search ends on its best
  // assignment (the common case); full evaluation otherwise.
  const WcslResult wcsl = eval->evaluate_full(result.assignment);
  result.wcsl = wcsl.makespan;
  result.schedulable = wcsl.meets_deadlines(app);
  result.evaluations = found.stats.evaluations;
  result.search_stats = found.stats;
  result.eval_stats = eval->stats().since(stats_before);
  return result;
}

}  // namespace ftes
