// Small tabu-search bookkeeping utilities shared by the optimizers of
// Section 6 ([13]'s mapping + policy assignment heuristic family), driven
// through the generic engine of opt/search_engine.h.
#pragma once

#include <cstdint>
#include <tuple>
#include <unordered_map>

#include "util/time_types.h"

namespace ftes {

/// Move attributes recently applied are tabu for `tenure` iterations.  The
/// plain is_tabu(key, iteration) only answers the recency question; callers
/// wanting the usual aspiration criterion (a tabu move that improves the
/// global best is accepted anyway) use the four-argument overload below.
/// Keys are 4-int tuples encoded by the caller.
///
/// Storage is a hash table keyed by the packed attribute (the lookup runs
/// once per sampled candidate, so the old ordered std::map's pointer-chasing
/// log(n) compare chain was pure overhead -- recency needs no order).  The
/// hash finalizes both 64-bit halves of the key through SplitMix64's mixer,
/// so near-identical keys (the common case: same move family, neighbouring
/// process ids) land in unrelated buckets.  Semantics are untouched and no
/// operation iterates the table, so search results cannot depend on hash
/// order -- the golden outputs pin this.
class TabuList {
 public:
  explicit TabuList(int tenure) : tenure_(tenure) {}

  using Key = std::tuple<int, int, int, int>;

  [[nodiscard]] bool is_tabu(const Key& key, int iteration) const {
    auto it = expiry_.find(key);
    return it != expiry_.end() && it->second > iteration;
  }

  /// Aspiration-aware check: the move is rejected only if its attribute is
  /// tabu AND its cost does not beat `best_cost` (the best cost seen so far
  /// in the whole search).  Strict improvement is required, matching the
  /// classic aspiration-by-objective criterion.
  [[nodiscard]] bool is_tabu(const Key& key, int iteration, Time cost,
                             Time best_cost) const {
    return is_tabu(key, iteration) && cost >= best_cost;
  }

  void make_tabu(const Key& key, int iteration) {
    expiry_[key] = iteration + tenure_;
  }

  void clear() { expiry_.clear(); }

 private:
  struct KeyHash {
    static std::uint64_t mix(std::uint64_t x) {  // SplitMix64 finalizer
      x += 0x9E3779B97F4A7C15ull;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      return x ^ (x >> 31);
    }
    std::size_t operator()(const Key& key) const {
      const std::uint64_t lo =
          (static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(std::get<0>(key)))
           << 32) |
          static_cast<std::uint32_t>(std::get<1>(key));
      const std::uint64_t hi =
          (static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(std::get<2>(key)))
           << 32) |
          static_cast<std::uint32_t>(std::get<3>(key));
      return static_cast<std::size_t>(mix(lo ^ mix(hi)));
    }
  };

  int tenure_;
  std::unordered_map<Key, int, KeyHash> expiry_;
};

}  // namespace ftes
