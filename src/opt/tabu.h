// Small tabu-search bookkeeping utilities shared by the optimizers of
// Section 6 ([13]'s mapping + policy assignment heuristic family).
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

namespace ftes {

/// Move attributes recently applied are tabu for `tenure` iterations, with
/// the usual aspiration override (a tabu move that improves the global best
/// is always accepted).  Keys are 4-int tuples encoded by the caller.
class TabuList {
 public:
  explicit TabuList(int tenure) : tenure_(tenure) {}

  using Key = std::tuple<int, int, int, int>;

  [[nodiscard]] bool is_tabu(const Key& key, int iteration) const {
    auto it = expiry_.find(key);
    return it != expiry_.end() && it->second > iteration;
  }

  void make_tabu(const Key& key, int iteration) {
    expiry_[key] = iteration + tenure_;
  }

  void clear() { expiry_.clear(); }

 private:
  int tenure_;
  std::map<Key, int> expiry_;
};

}  // namespace ftes
