// Small tabu-search bookkeeping utilities shared by the optimizers of
// Section 6 ([13]'s mapping + policy assignment heuristic family).
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "util/time_types.h"

namespace ftes {

/// Move attributes recently applied are tabu for `tenure` iterations.  The
/// plain is_tabu(key, iteration) only answers the recency question; callers
/// wanting the usual aspiration criterion (a tabu move that improves the
/// global best is accepted anyway) use the four-argument overload below.
/// Keys are 4-int tuples encoded by the caller.
class TabuList {
 public:
  explicit TabuList(int tenure) : tenure_(tenure) {}

  using Key = std::tuple<int, int, int, int>;

  [[nodiscard]] bool is_tabu(const Key& key, int iteration) const {
    auto it = expiry_.find(key);
    return it != expiry_.end() && it->second > iteration;
  }

  /// Aspiration-aware check: the move is rejected only if its attribute is
  /// tabu AND its cost does not beat `best_cost` (the best cost seen so far
  /// in the whole search).  Strict improvement is required, matching the
  /// classic aspiration-by-objective criterion.
  [[nodiscard]] bool is_tabu(const Key& key, int iteration, Time cost,
                             Time best_cost) const {
    return is_tabu(key, iteration) && cost >= best_cost;
  }

  void make_tabu(const Key& key, int iteration) {
    expiry_[key] = iteration + tenure_;
  }

  void clear() { expiry_.clear(); }

 private:
  int tenure_;
  std::map<Key, int> expiry_;
};

}  // namespace ftes
