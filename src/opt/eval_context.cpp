#include "opt/eval_context.h"

#include <algorithm>
#include <stdexcept>

namespace ftes {

EvalContext::EvalContext(const Application& app, const Architecture& arch,
                         FaultModel model)
    : app_(app), arch_(arch), model_(model) {
  model_.validate();
}

std::unique_ptr<EvalContext::Workspace> EvalContext::acquire() {
  {
    std::lock_guard<std::mutex> lock(ws_mutex_);
    if (!idle_ws_.empty()) {
      std::unique_ptr<Workspace> ws = std::move(idle_ws_.back());
      idle_ws_.pop_back();
      return ws;
    }
  }
  return std::make_unique<Workspace>();
}

void EvalContext::put_back(std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(ws_mutex_);
  idle_ws_.push_back(std::move(ws));
}

template <class Body>
auto EvalContext::with_move(ProcessId pid, const ProcessPlan& plan,
                            const Body& body) {
  std::unique_ptr<Workspace> ws = acquire();
  if (ws->version != version_) {
    ws->assignment = base_;
    ws->version = version_;
  }
  ProcessPlan saved = std::move(ws->assignment.plan(pid));
  ws->assignment.plan(pid) = plan;
  try {
    auto result = body(*ws);
    ws->assignment.plan(pid) = std::move(saved);
    put_back(std::move(ws));
    return result;
  } catch (...) {
    ws->assignment.plan(pid) = std::move(saved);
    put_back(std::move(ws));
    throw;
  }
}

Time EvalContext::penalized_cost(const std::vector<Time>& process_finish,
                                 Time makespan) const {
  Time cost = makespan;
  for (int i = 0; i < app_.process_count(); ++i) {
    const Process& p = app_.process(ProcessId{i});
    if (p.local_deadline) {
      const Time miss =
          process_finish[static_cast<std::size_t>(i)] - *p.local_deadline;
      if (miss > 0) cost += 10 * miss;  // mirror of assignment_cost()
    }
  }
  return cost;
}

EvalContext::Outcome EvalContext::rebase(const PolicyAssignment& base) {
  const int k = model_.k;
  base_ = base;
  ++version_;
  base_sched_ = list_schedule(app_, arch_, base_);
  base_dag_ = build_wcsl_dag(app_, arch_, base_, k, base_sched_);
  const int total = base_dag_.g.vertex_count();

  base_L_.assign(static_cast<std::size_t>(total), {});
  for (int v : base_dag_.g.topological_order()) {
    wcsl_dp_row(base_dag_, v, base_L_, k, base_L_[static_cast<std::size_t>(v)]);
  }

  base_first_copy_.assign(static_cast<std::size_t>(app_.process_count()) + 1,
                          0);
  for (int p = 0; p < app_.process_count(); ++p) {
    base_first_copy_[static_cast<std::size_t>(p) + 1] =
        base_first_copy_[static_cast<std::size_t>(p)] +
        base_.plan(ProcessId{p}).copy_count();
  }
  base_copy_vertex_.assign(static_cast<std::size_t>(base_dag_.copy_count), -1);
  for (int i = 0; i < base_dag_.copy_count; ++i) {
    const ScheduledCopy& sc = base_sched_.copies[static_cast<std::size_t>(i)];
    base_copy_vertex_[static_cast<std::size_t>(
        base_first_copy_[static_cast<std::size_t>(sc.ref.process.get())] +
        sc.ref.copy)] = i;
  }
  base_first_tx_.assign(static_cast<std::size_t>(app_.message_count()) + 1, 0);
  for (int mi = 0; mi < app_.message_count(); ++mi) {
    base_first_tx_[static_cast<std::size_t>(mi) + 1] =
        base_first_tx_[static_cast<std::size_t>(mi)] +
        base_.plan(app_.message(MessageId{mi}).src).copy_count();
  }
  base_msg_vertex_.assign(
      static_cast<std::size_t>(
          base_first_tx_[static_cast<std::size_t>(app_.message_count())]),
      -1);
  for (int m = 0; m < base_dag_.msg_count; ++m) {
    const ScheduledMessage& sm =
        base_sched_.messages[static_cast<std::size_t>(m)];
    base_msg_vertex_[static_cast<std::size_t>(
        base_first_tx_[static_cast<std::size_t>(sm.msg.get())] +
        sm.src_copy)] = base_dag_.msg_vertex(m);
  }
  base_sorted_preds_.assign(static_cast<std::size_t>(total), {});
  for (int v = 0; v < total; ++v) {
    base_sorted_preds_[static_cast<std::size_t>(v)] = base_dag_.g.predecessors(v);
    std::sort(base_sorted_preds_[static_cast<std::size_t>(v)].begin(),
              base_sorted_preds_[static_cast<std::size_t>(v)].end());
  }
  base_has_dp_ = true;
  rebases_.fetch_add(1, std::memory_order_relaxed);

  Outcome out;
  std::vector<Time> process_finish(
      static_cast<std::size_t>(app_.process_count()), 0);
  for (int v = 0; v < total; ++v) {
    const Time worst =
        base_L_[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    out.makespan = std::max(out.makespan, worst);
    if (v < base_dag_.copy_count) {
      Time& pf = process_finish[static_cast<std::size_t>(
          base_sched_.copies[static_cast<std::size_t>(v)].ref.process.get())];
      pf = std::max(pf, worst);
    }
  }
  out.cost = penalized_cost(process_finish, out.makespan);
  return out;
}

void EvalContext::rebase_fault_free(const PolicyAssignment& base) {
  base_ = base;
  ++version_;
  base_has_dp_ = false;
  rebases_.fetch_add(1, std::memory_order_relaxed);
}

EvalContext::Outcome EvalContext::incremental_outcome(Workspace& ws) {
  const int k = model_.k;
  const ListSchedule sched = list_schedule(app_, arch_, ws.assignment);
  const WcslDag dag = build_wcsl_dag(app_, arch_, ws.assignment, k, sched);
  const int total = dag.g.vertex_count();

  // Map candidate vertices onto base vertices by identity key: copies by
  // (process, copy), transmissions by (message, source copy).  A remap or
  // policy move may create or drop vertices; unmapped ones are dirty.
  ws.to_base.assign(static_cast<std::size_t>(total), -1);
  for (int i = 0; i < dag.copy_count; ++i) {
    const ScheduledCopy& sc = sched.copies[static_cast<std::size_t>(i)];
    const std::int32_t p = sc.ref.process.get();
    if (sc.ref.copy < base_.plan(sc.ref.process).copy_count()) {
      ws.to_base[static_cast<std::size_t>(i)] =
          base_copy_vertex_[static_cast<std::size_t>(
              base_first_copy_[static_cast<std::size_t>(p)] + sc.ref.copy)];
    }
  }
  for (int m = 0; m < dag.msg_count; ++m) {
    const ScheduledMessage& sm = sched.messages[static_cast<std::size_t>(m)];
    const std::int32_t mi = sm.msg.get();
    if (sm.src_copy <
        base_.plan(app_.message(sm.msg).src).copy_count()) {
      ws.to_base[static_cast<std::size_t>(dag.msg_vertex(m))] =
          base_msg_vertex_[static_cast<std::size_t>(
              base_first_tx_[static_cast<std::size_t>(mi)] + sm.src_copy)];
    }
  }

  ws.L.assign(static_cast<std::size_t>(total), {});
  ws.clean.assign(static_cast<std::size_t>(total), 0);
  long long reused = 0;
  for (int v : dag.g.topological_order()) {
    const int u = ws.to_base[static_cast<std::size_t>(v)];
    bool reusable =
        u >= 0 &&
        dag.release[static_cast<std::size_t>(v)] ==
            base_dag_.release[static_cast<std::size_t>(u)] &&
        dag.weight[static_cast<std::size_t>(v)] ==
            base_dag_.weight[static_cast<std::size_t>(u)];
    if (reusable) {
      const std::vector<int>& preds = dag.g.predecessors(v);
      const std::vector<int>& base_preds =
          base_sorted_preds_[static_cast<std::size_t>(u)];
      reusable = preds.size() == base_preds.size();
      if (reusable) {
        ws.mapped_preds.clear();
        for (int p : preds) {
          const int bp = ws.to_base[static_cast<std::size_t>(p)];
          if (bp < 0 || !ws.clean[static_cast<std::size_t>(p)]) {
            reusable = false;
            break;
          }
          ws.mapped_preds.push_back(bp);
        }
        if (reusable) {
          std::sort(ws.mapped_preds.begin(), ws.mapped_preds.end());
          reusable = ws.mapped_preds == base_preds;
        }
      }
    }
    if (reusable) {
      ws.L[static_cast<std::size_t>(v)] = base_L_[static_cast<std::size_t>(u)];
      ws.clean[static_cast<std::size_t>(v)] = 1;
      ++reused;
    } else {
      wcsl_dp_row(dag, v, ws.L, k, ws.L[static_cast<std::size_t>(v)]);
    }
  }

  Outcome out;
  ws.process_finish.assign(static_cast<std::size_t>(app_.process_count()), 0);
  for (int v = 0; v < total; ++v) {
    const Time worst =
        ws.L[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    out.makespan = std::max(out.makespan, worst);
    if (v < dag.copy_count) {
      Time& pf = ws.process_finish[static_cast<std::size_t>(
          sched.copies[static_cast<std::size_t>(v)].ref.process.get())];
      pf = std::max(pf, worst);
    }
  }
  out.cost = penalized_cost(ws.process_finish, out.makespan);

  dp_vertices_total_.fetch_add(total, std::memory_order_relaxed);
  dp_vertices_reused_.fetch_add(reused, std::memory_order_relaxed);
  return out;
}

EvalContext::Outcome EvalContext::evaluate_move(ProcessId pid,
                                                const ProcessPlan& plan) {
  if (!base_has_dp_) {
    throw std::logic_error("EvalContext::evaluate_move without rebase()");
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  incremental_evals_.fetch_add(1, std::memory_order_relaxed);
  return with_move(pid, plan,
                   [&](Workspace& ws) { return incremental_outcome(ws); });
}

Time EvalContext::fault_free_makespan(ProcessId pid, const ProcessPlan& plan) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  fault_free_evals_.fetch_add(1, std::memory_order_relaxed);
  return with_move(pid, plan, [&](Workspace& ws) {
    return list_schedule(app_, arch_, ws.assignment).makespan;
  });
}

WcslResult EvalContext::evaluate_full(const PolicyAssignment& assignment) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  full_evals_.fetch_add(1, std::memory_order_relaxed);
  return evaluate_wcsl(app_, arch_, assignment, model_);
}

EvalStats EvalContext::stats() const {
  EvalStats s;
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.full_evals = full_evals_.load(std::memory_order_relaxed);
  s.incremental_evals = incremental_evals_.load(std::memory_order_relaxed);
  s.fault_free_evals = fault_free_evals_.load(std::memory_order_relaxed);
  s.rebases = rebases_.load(std::memory_order_relaxed);
  s.dp_vertices_total = dp_vertices_total_.load(std::memory_order_relaxed);
  s.dp_vertices_reused = dp_vertices_reused_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ftes
