#include "opt/eval_context.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace ftes {

namespace {

/// Total order on (process, plan) moves, used to break metric ties in the
/// winning-move cache deterministically: the parallel neighborhood
/// evaluation updates the cache in a thread-dependent order, and without a
/// total order the surviving tie entry -- and hence the rebase hit/miss
/// pattern reported by EvalStats -- would vary with the thread count.
bool move_key_less(ProcessId a_pid, const ProcessPlan& a, ProcessId b_pid,
                   const ProcessPlan& b) {
  if (a_pid != b_pid) return a_pid < b_pid;
  if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  if (a.copies.size() != b.copies.size()) {
    return a.copies.size() < b.copies.size();
  }
  for (std::size_t j = 0; j < a.copies.size(); ++j) {
    const CopyPlan& x = a.copies[j];
    const CopyPlan& y = b.copies[j];
    if (x.node != y.node) return x.node < y.node;
    if (x.checkpoints != y.checkpoints) return x.checkpoints < y.checkpoints;
    if (x.recoveries != y.recoveries) return x.recoveries < y.recoveries;
  }
  return false;
}

}  // namespace

EvalContext::EvalContext(const Application& app, const Architecture& arch,
                         FaultModel model)
    : app_(app), arch_(arch), model_(model) {
  model_.validate();
}

std::unique_ptr<EvalContext::Workspace> EvalContext::acquire() {
  {
    std::lock_guard<std::mutex> lock(ws_mutex_);
    if (!idle_ws_.empty()) {
      std::unique_ptr<Workspace> ws = std::move(idle_ws_.back());
      idle_ws_.pop_back();
      return ws;
    }
  }
  return std::make_unique<Workspace>();
}

void EvalContext::put_back(std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(ws_mutex_);
  idle_ws_.push_back(std::move(ws));
}

template <class Body>
auto EvalContext::with_move(ProcessId pid, const ProcessPlan& plan,
                            const Body& body) {
  std::unique_ptr<Workspace> ws = acquire();
  if (ws->version != version_) {
    ws->assignment = base_;
    ws->version = version_;
  }
  ProcessPlan saved = std::move(ws->assignment.plan(pid));
  ws->assignment.plan(pid) = plan;
  try {
    auto result = body(*ws);
    ws->assignment.plan(pid) = std::move(saved);
    put_back(std::move(ws));
    return result;
  } catch (...) {
    ws->assignment.plan(pid) = std::move(saved);
    put_back(std::move(ws));
    throw;
  }
}

Time EvalContext::penalized_cost(const std::vector<Time>& process_finish,
                                 Time makespan) const {
  Time cost = makespan;
  for (int i = 0; i < app_.process_count(); ++i) {
    const Process& p = app_.process(ProcessId{i});
    if (p.local_deadline) {
      const Time miss =
          process_finish[static_cast<std::size_t>(i)] - *p.local_deadline;
      if (miss > 0) cost += 10 * miss;  // mirror of assignment_cost()
    }
  }
  return cost;
}

void EvalContext::rebuild_base_lookups() {
  const int total = base_dag_.g.vertex_count();
  base_first_tx_.assign(static_cast<std::size_t>(app_.message_count()) + 1, 0);
  for (int mi = 0; mi < app_.message_count(); ++mi) {
    base_first_tx_[static_cast<std::size_t>(mi) + 1] =
        base_first_tx_[static_cast<std::size_t>(mi)] +
        base_.plan(app_.message(MessageId{mi}).src).copy_count();
  }
  base_msg_vertex_.assign(
      static_cast<std::size_t>(
          base_first_tx_[static_cast<std::size_t>(app_.message_count())]),
      -1);
  for (int m = 0; m < base_dag_.msg_count; ++m) {
    const ScheduledMessage& sm =
        base_sched_.messages[static_cast<std::size_t>(m)];
    base_msg_vertex_[static_cast<std::size_t>(
        base_first_tx_[static_cast<std::size_t>(sm.msg.get())] +
        sm.src_copy)] = base_dag_.msg_vertex(m);
  }
  base_sorted_preds_.assign(static_cast<std::size_t>(total), {});
  for (int v = 0; v < total; ++v) {
    base_sorted_preds_[static_cast<std::size_t>(v)] =
        base_dag_.g.predecessors(v);
    std::sort(base_sorted_preds_[static_cast<std::size_t>(v)].begin(),
              base_sorted_preds_[static_cast<std::size_t>(v)].end());
  }
}

EvalContext::Outcome EvalContext::outcome_from_base_rows() const {
  const int k = model_.k;
  Outcome out;
  std::vector<Time> process_finish(
      static_cast<std::size_t>(app_.process_count()), 0);
  for (int v = 0; v < base_dag_.g.vertex_count(); ++v) {
    const Time worst =
        base_L_[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    out.makespan = std::max(out.makespan, worst);
    if (v < base_dag_.copy_count) {
      Time& pf = process_finish[static_cast<std::size_t>(
          base_sched_.copies[static_cast<std::size_t>(v)].ref.process.get())];
      pf = std::max(pf, worst);
    }
  }
  out.cost = penalized_cost(process_finish, out.makespan);
  return out;
}

void EvalContext::invalidate_winner_cache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  best_cost_ = CacheEntry{};
  best_span_ = CacheEntry{};
}

std::int32_t EvalContext::single_diff_pid(const PolicyAssignment& base,
                                          ProcessId accepted) const {
  if (base.process_count() != base_.process_count()) return -1;
  if (accepted.valid()) {
#ifndef NDEBUG
    // The hint is a promise, not a request: nothing but `accepted` changed.
    for (int i = 0; i < base.process_count(); ++i) {
      assert(i == accepted.get() ||
             base.plan(ProcessId{i}) == base_.plan(ProcessId{i}));
    }
#endif
    return base.plan(accepted) != base_.plan(accepted) ? accepted.get() : -1;
  }
  std::int32_t diff_pid = -1;
  int diffs = 0;
  for (int i = 0; i < base.process_count() && diffs <= 1; ++i) {
    if (base.plan(ProcessId{i}) != base_.plan(ProcessId{i})) {
      diff_pid = i;
      ++diffs;
    }
  }
  return diffs == 1 ? diff_pid : -1;
}

void EvalContext::anchor_grand_base(const PolicyAssignment& base,
                                    const ScheduleCheckpointLog& log) {
  grand_base_ = base;
  grand_log_ = log;  // the copy shares snapshot refs -- O(E) indices, 0
                     // snapshot bytes
  pending_.clear();
  grand_valid_ = true;
}

void EvalContext::rebuild_base_schedule(const PolicyAssignment& base,
                                        ProcessId accepted) {
  // Accepted-move fast path: a new base differing from the old in exactly
  // one plan replays the whole pending batch of accepted moves from the
  // grand-base log's nearest safe snapshot while recording the new base's
  // log (record-while-resuming) -- the resulting schedule AND log are
  // bit-identical to a from-scratch build, and the log's prefix snapshots
  // are shared with the grand anchor's by reference.
  std::int32_t diff_pid =
      base_has_log_ ? single_diff_pid(base, accepted) : -1;
  // A resume-recorded log inherits the old base's snapshot interval; take
  // the fast path only when that equals the interval a default from-scratch
  // rebuild would pick for the new base (the common case -- single-plan
  // moves rarely shift round(sqrt(E))), so the produced log -- and with it
  // every later resume decision and counter -- is bit-identical to the
  // rebuild it replaces.
  if (diff_pid >= 0 &&
      default_snapshot_interval(app_, base) != base_log_.snapshot_interval) {
    rebase_interval_mismatch_.fetch_add(1, std::memory_order_relaxed);
    diff_pid = -1;
  }
  if (diff_pid >= 0) {
    // Extend the batched run, or open a fresh one anchored at the still-
    // current base when none exists or the window is full (unbounded runs
    // would push the shared resume point toward event 0).
    if (!grand_valid_ || pending_.size() >= kRebaseBatchWindow) {
      anchor_grand_base(base_, base_log_);
    }
    pending_.push_back(ProcessId{diff_pid});
    ScheduleCheckpointLog new_log;
    ListScheduleResumeStats rstats;
    ListSchedule sched =
        list_schedule_resume(app_, arch_, grand_base_, grand_log_, base,
                             pending_, &rstats, &new_log);
    base_sched_ = std::move(sched);
    base_log_ = std::move(new_log);
    if (pending_.size() > 1) {
      rebase_batched_.fetch_add(1, std::memory_order_relaxed);
    }
    snapshot_refs_shared_.fetch_add(
        static_cast<long long>(rstats.snapshots_shared),
        std::memory_order_relaxed);
    snapshot_bytes_copied_.fetch_add(
        static_cast<long long>(rstats.snapshot_bytes_copied),
        std::memory_order_relaxed);
    snapshot_bytes_shared_.fetch_add(
        static_cast<long long>(rstats.snapshot_bytes_shared),
        std::memory_order_relaxed);
    if (rstats.resumed) {
      rebase_log_recorded_.fetch_add(1, std::memory_order_relaxed);
      rebase_log_events_resumed_.fetch_add(
          static_cast<long long>(rstats.events_resumed),
          std::memory_order_relaxed);
      rebase_log_events_replayed_.fetch_add(
          static_cast<long long>(rstats.events_replayed),
          std::memory_order_relaxed);
    } else {
      // No snapshot preceded the batch's first affected event: the
      // recording run degenerated to a (still log-producing) full build.
      // Re-anchor so the next acceptance starts a fresh window instead of
      // shrinking this one's resume point further.
      rebase_full_builds_.fetch_add(1, std::memory_order_relaxed);
      anchor_grand_base(base, base_log_);
    }
  } else {
    base_sched_ = list_schedule(app_, arch_, base, base_log_);
    rebase_full_builds_.fetch_add(1, std::memory_order_relaxed);
    anchor_grand_base(base, base_log_);
  }
  base_has_log_ = true;
}

EvalContext::Outcome EvalContext::rebase(const PolicyAssignment& base,
                                         ProcessId accepted) {
  const int k = model_.k;

  // Winning-move cache: when the new base is the old base with exactly one
  // plan replaced, and that (process, plan) matches a cached candidate,
  // adopt the candidate's DAG + DP rows wholesale.  Only the fault-free
  // schedule remains -- rebuilt by record-while-resuming from the grand
  // log (its checkpoint log must describe the new base) -- so the accept
  // step pays neither the DP nor a from-scratch schedule build.
  if (base_has_dp_) {
    const std::int32_t diff_pid = single_diff_pid(base, accepted);
    if (diff_pid >= 0) {
      Outcome out;
      bool hit = false;
      {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        for (CacheEntry* slot : {&best_cost_, &best_span_}) {
          if (slot->valid && slot->pid.get() == diff_pid &&
              slot->plan == base.plan(ProcessId{diff_pid})) {
            // Both slots may share these artifacts; both are invalidated
            // below, before the lock is released, so moving out is safe.
            base_dag_ = std::move(slot->artifacts->dag);
            base_L_ = std::move(slot->artifacts->L);
            out = slot->outcome;
            best_cost_ = CacheEntry{};
            best_span_ = CacheEntry{};
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        rebuild_base_schedule(base, accepted);  // resumes from the grand log
        base_ = base;
        ++version_;
        rebuild_base_lookups();
        base_has_dp_ = true;
        rebases_.fetch_add(1, std::memory_order_relaxed);
        rebase_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return out;
      }
    }
  }

  invalidate_winner_cache();
  rebuild_base_schedule(base, accepted);  // resumes from the grand log
  base_ = base;
  ++version_;
  base_dag_ = build_wcsl_dag(app_, arch_, base_, k, base_sched_);
  const int total = base_dag_.g.vertex_count();

  base_L_.assign(static_cast<std::size_t>(total), {});
  for (int v : base_dag_.g.topological_order()) {
    wcsl_dp_row(base_dag_, v, base_L_, k, base_L_[static_cast<std::size_t>(v)]);
  }
  rebuild_base_lookups();
  base_has_dp_ = true;
  rebases_.fetch_add(1, std::memory_order_relaxed);
  return outcome_from_base_rows();
}

Time EvalContext::rebase_fault_free(const PolicyAssignment& base,
                                    ProcessId accepted) {
  invalidate_winner_cache();
  base_has_dp_ = false;
  rebuild_base_schedule(base, accepted);
  base_ = base;
  ++version_;
  rebases_.fetch_add(1, std::memory_order_relaxed);
  return base_sched_.makespan;
}

void EvalContext::record_resume_stats(const ListScheduleResumeStats& stats) {
  (stats.resumed ? ls_resumes_ : ls_full_builds_)
      .fetch_add(1, std::memory_order_relaxed);
  ls_events_total_.fetch_add(static_cast<long long>(stats.events_total),
                             std::memory_order_relaxed);
  ls_events_resumed_.fetch_add(static_cast<long long>(stats.events_resumed),
                               std::memory_order_relaxed);
  heap_pops_.fetch_add(static_cast<long long>(stats.heap_pops),
                       std::memory_order_relaxed);
}

EvalContext::Outcome EvalContext::incremental_outcome(Workspace& ws,
                                                      ProcessId pid) {
  const int k = model_.k;
  ListScheduleResumeStats rstats;
  ws.sched = list_schedule_resume(app_, arch_, base_, base_log_,
                                  ws.assignment, pid, &rstats);
  record_resume_stats(rstats);
  ws.dag = build_wcsl_dag(app_, arch_, ws.assignment, k, ws.sched);
  const ListSchedule& sched = ws.sched;
  const WcslDag& dag = ws.dag;
  const int total = dag.g.vertex_count();

  // Map candidate vertices onto base vertices by identity key: copies by
  // (process, copy) -- prefix arithmetic on both sides -- transmissions by
  // (message, source copy).  A remap or policy move may create or drop
  // vertices; unmapped ones are dirty.
  ws.to_base.assign(static_cast<std::size_t>(total), -1);
  for (int i = 0; i < dag.copy_count; ++i) {
    const ScheduledCopy& sc = sched.copies[static_cast<std::size_t>(i)];
    if (sc.ref.copy < base_.plan(sc.ref.process).copy_count()) {
      ws.to_base[static_cast<std::size_t>(i)] =
          base_sched_.first_copy[static_cast<std::size_t>(
              sc.ref.process.get())] +
          sc.ref.copy;
    }
  }
  for (int m = 0; m < dag.msg_count; ++m) {
    const ScheduledMessage& sm = sched.messages[static_cast<std::size_t>(m)];
    const std::int32_t mi = sm.msg.get();
    if (sm.src_copy <
        base_.plan(app_.message(sm.msg).src).copy_count()) {
      ws.to_base[static_cast<std::size_t>(dag.msg_vertex(m))] =
          base_msg_vertex_[static_cast<std::size_t>(
              base_first_tx_[static_cast<std::size_t>(mi)] + sm.src_copy)];
    }
  }

  ws.L.assign(static_cast<std::size_t>(total), {});
  ws.clean.assign(static_cast<std::size_t>(total), 0);
  long long reused = 0;
  for (int v : dag.g.topological_order()) {
    const int u = ws.to_base[static_cast<std::size_t>(v)];
    bool reusable =
        u >= 0 &&
        dag.release[static_cast<std::size_t>(v)] ==
            base_dag_.release[static_cast<std::size_t>(u)] &&
        dag.weight[static_cast<std::size_t>(v)] ==
            base_dag_.weight[static_cast<std::size_t>(u)];
    if (reusable) {
      const std::vector<int>& preds = dag.g.predecessors(v);
      const std::vector<int>& base_preds =
          base_sorted_preds_[static_cast<std::size_t>(u)];
      reusable = preds.size() == base_preds.size();
      if (reusable) {
        ws.mapped_preds.clear();
        for (int p : preds) {
          const int bp = ws.to_base[static_cast<std::size_t>(p)];
          if (bp < 0 || !ws.clean[static_cast<std::size_t>(p)]) {
            reusable = false;
            break;
          }
          ws.mapped_preds.push_back(bp);
        }
        if (reusable) {
          std::sort(ws.mapped_preds.begin(), ws.mapped_preds.end());
          reusable = ws.mapped_preds == base_preds;
        }
      }
    }
    if (reusable) {
      ws.L[static_cast<std::size_t>(v)] = base_L_[static_cast<std::size_t>(u)];
      ws.clean[static_cast<std::size_t>(v)] = 1;
      ++reused;
    } else {
      wcsl_dp_row(dag, v, ws.L, k, ws.L[static_cast<std::size_t>(v)]);
    }
  }

  Outcome out;
  ws.process_finish.assign(static_cast<std::size_t>(app_.process_count()), 0);
  for (int v = 0; v < total; ++v) {
    const Time worst =
        ws.L[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    out.makespan = std::max(out.makespan, worst);
    if (v < dag.copy_count) {
      Time& pf = ws.process_finish[static_cast<std::size_t>(
          sched.copies[static_cast<std::size_t>(v)].ref.process.get())];
      pf = std::max(pf, worst);
    }
  }
  out.cost = penalized_cost(ws.process_finish, out.makespan);

  dp_vertices_total_.fetch_add(total, std::memory_order_relaxed);
  dp_vertices_reused_.fetch_add(reused, std::memory_order_relaxed);
  return out;
}

void EvalContext::maybe_cache_winner(Workspace& ws, ProcessId pid,
                                     const Outcome& outcome) {
  const ProcessPlan& plan = ws.assignment.plan(pid);
  const auto improves = [&](Time metric, Time slot_metric,
                            const CacheEntry& slot) {
    if (!slot.valid) return true;
    if (metric != slot_metric) return metric < slot_metric;
    return move_key_less(pid, plan, slot.pid, slot.plan);
  };
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const bool cost_improves =
      improves(outcome.cost, best_cost_.outcome.cost, best_cost_);
  const bool span_improves =
      improves(outcome.makespan, best_span_.outcome.makespan, best_span_);
  if (!cost_improves && !span_improves) return;
  // The workspace artifacts are dead after this evaluation (the next move
  // rebuilds them), so stealing them keeps the critical section O(1).
  auto artifacts = std::make_shared<CachedArtifacts>();
  artifacts->dag = std::move(ws.dag);
  artifacts->L = std::move(ws.L);
  const auto store = [&](CacheEntry& slot) {
    slot.valid = true;
    slot.pid = pid;
    slot.plan = plan;
    slot.outcome = outcome;
    slot.artifacts = artifacts;
  };
  if (cost_improves) store(best_cost_);
  if (span_improves) store(best_span_);
}

EvalContext::Outcome EvalContext::evaluate_move(ProcessId pid,
                                                const ProcessPlan& plan) {
  if (!base_has_dp_) {
    throw std::logic_error("EvalContext::evaluate_move without rebase()");
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  incremental_evals_.fetch_add(1, std::memory_order_relaxed);
  return with_move(pid, plan, [&](Workspace& ws) {
    const Outcome out = incremental_outcome(ws, pid);
    maybe_cache_winner(ws, pid, out);
    return out;
  });
}

Time EvalContext::fault_free_makespan(ProcessId pid, const ProcessPlan& plan) {
  if (!base_has_log_) {
    throw std::logic_error("EvalContext::fault_free_makespan without rebase");
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  fault_free_evals_.fetch_add(1, std::memory_order_relaxed);
  return with_move(pid, plan, [&](Workspace& ws) {
    ListScheduleResumeStats rstats;
    const Time makespan =
        list_schedule_resume(app_, arch_, base_, base_log_, ws.assignment,
                             pid, &rstats)
            .makespan;
    record_resume_stats(rstats);
    return makespan;
  });
}

WcslResult EvalContext::evaluate_full(const PolicyAssignment& assignment) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  full_evals_.fetch_add(1, std::memory_order_relaxed);
  if (base_has_dp_ && assignment.process_count() == base_.process_count()) {
    bool same = true;
    for (int i = 0; i < assignment.process_count() && same; ++i) {
      same = assignment.plan(ProcessId{i}) == base_.plan(ProcessId{i});
    }
    if (same) {
      // The final analysis of an optimizer's accepted base: every DP row is
      // already cached, so only the result extraction remains.
      const int total = base_dag_.g.vertex_count();
      dp_vertices_total_.fetch_add(total, std::memory_order_relaxed);
      dp_vertices_reused_.fetch_add(total, std::memory_order_relaxed);
      return wcsl_result_from_rows(app_, base_sched_, base_dag_, base_L_,
                                   model_.k);
    }
  }
  return evaluate_wcsl(app_, arch_, assignment, model_);
}

EvalStats EvalContext::stats() const {
  EvalStats s;
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.full_evals = full_evals_.load(std::memory_order_relaxed);
  s.incremental_evals = incremental_evals_.load(std::memory_order_relaxed);
  s.fault_free_evals = fault_free_evals_.load(std::memory_order_relaxed);
  s.rebases = rebases_.load(std::memory_order_relaxed);
  s.dp_vertices_total = dp_vertices_total_.load(std::memory_order_relaxed);
  s.dp_vertices_reused = dp_vertices_reused_.load(std::memory_order_relaxed);
  s.ls_full_builds = ls_full_builds_.load(std::memory_order_relaxed);
  s.ls_resumes = ls_resumes_.load(std::memory_order_relaxed);
  s.ls_events_total = ls_events_total_.load(std::memory_order_relaxed);
  s.ls_events_resumed = ls_events_resumed_.load(std::memory_order_relaxed);
  s.heap_pops = heap_pops_.load(std::memory_order_relaxed);
  s.rebase_cache_hits = rebase_cache_hits_.load(std::memory_order_relaxed);
  s.rebase_log_recorded =
      rebase_log_recorded_.load(std::memory_order_relaxed);
  s.rebase_log_events_resumed =
      rebase_log_events_resumed_.load(std::memory_order_relaxed);
  s.rebase_log_events_replayed =
      rebase_log_events_replayed_.load(std::memory_order_relaxed);
  s.rebase_full_builds = rebase_full_builds_.load(std::memory_order_relaxed);
  s.rebase_batched = rebase_batched_.load(std::memory_order_relaxed);
  s.rebase_interval_mismatch =
      rebase_interval_mismatch_.load(std::memory_order_relaxed);
  s.snapshot_refs_shared =
      snapshot_refs_shared_.load(std::memory_order_relaxed);
  s.snapshot_bytes_copied =
      snapshot_bytes_copied_.load(std::memory_order_relaxed);
  s.snapshot_bytes_shared =
      snapshot_bytes_shared_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ftes
