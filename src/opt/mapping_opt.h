// Fault-tolerance-agnostic mapping optimization: the classic
// makespan-minimizing mapping of [8], used both as the paper's FTO
// reference point ("the same techniques, ignoring fault tolerance") and as
// the first stage of the straightforward SFX baseline of Fig. 7.
#pragma once

#include <cstdint>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/policy.h"
#include "opt/eval_stats.h"
#include "opt/search_engine.h"
#include "util/cancellation.h"
#include "util/time_types.h"

namespace ftes {

class ThreadPool;

struct MappingOptOptions {
  int iterations = 200;
  int tenure = 8;
  int neighborhood = 16;
  std::uint64_t seed = 1;
  /// Concurrent makespan evaluations of the sampled neighborhood (1 =
  /// serial; 0 = all hardware threads); deterministic for any value.
  int threads = 1;
  /// Pool supplying the helper threads; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation: polled per tabu iteration and inside every
  /// parallel evaluation chunk.
  CancellationToken* cancel = nullptr;
};

struct MappingOptResult {
  /// One no-overhead copy per process (checkpoints = recoveries = 0),
  /// mapped; usable as the non-fault-tolerant reference or as the mapping
  /// seed for FT policy layering.
  PolicyAssignment assignment;
  Time makespan = 0;  ///< fault-free list-schedule makespan
  int evaluations = 0;
  EvalStats eval_stats;      ///< evaluator counters spent by this run
  SearchStats search_stats;  ///< engine counters (opt/search_engine.h)
};

/// Tabu search over process-to-node mapping minimizing the fault-free
/// makespan (k is ignored entirely).
[[nodiscard]] MappingOptResult optimize_mapping_no_ft(
    const Application& app, const Architecture& arch,
    const MappingOptOptions& options);

}  // namespace ftes
