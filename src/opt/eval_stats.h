// Counters of the incremental evaluation context (opt/eval_context.h),
// kept in a tiny header so optimizer result structs can embed them without
// pulling in the evaluator itself.
//
// `evaluations` counts objective evaluations of any kind; the remaining
// counters break down how they were served.  Two cache layers exist: the
// WCSL DP row cache (a reused vertex is a budgeted-longest-path row taken
// from the cached base instead of recomputed) and the list-schedule
// checkpoint log (a resumed event is a copy/transmission placement served
// by a base snapshot instead of replayed).  `rebase_cache_hits` counts
// base recomputations served wholesale from the winning candidate's cached
// schedule + DP rows.
#pragma once

namespace ftes {

struct EvalStats {
  long long evaluations = 0;        ///< objective evaluations, any kind
  long long full_evals = 0;         ///< complete list-schedule + DP runs
  long long incremental_evals = 0;  ///< move evals against the cached base
  long long fault_free_evals = 0;   ///< list-schedule-only makespan evals
  long long rebases = 0;            ///< base recomputations
  long long dp_vertices_total = 0;  ///< DP rows needed by incremental evals
  long long dp_vertices_reused = 0; ///< of those, rows served from the cache

  // List-scheduler incrementality (move evaluations only; accepted-move
  // rebases are broken out separately below).
  long long ls_full_builds = 0;     ///< move schedules built from scratch
  long long ls_resumes = 0;         ///< move schedules resumed from a snapshot
  long long ls_events_total = 0;    ///< placement events move schedules needed
  long long ls_events_resumed = 0;  ///< of those, served by snapshot prefixes
  long long heap_pops = 0;          ///< ready/tx queue pops in move schedules
  long long rebase_cache_hits = 0;  ///< rebases served by the move cache

  // Accepted-move rebases: a rebase onto a single-plan diff replays the
  // move from the old base's log while recording the new base's log
  // (record-while-resuming) instead of paying a from-scratch build.
  long long rebase_log_recorded = 0;  ///< rebase logs produced by resume
  /// Of the rebase schedules' placement events, those served by the old
  /// base's snapshot prefix during record-while-resuming.
  long long rebase_log_events_resumed = 0;
  /// Events the record-while-resuming rebases actually executed (the
  /// replayed suffix -- the time cost the snapshot prefix did not avoid).
  long long rebase_log_events_replayed = 0;
  long long rebase_full_builds = 0;  ///< rebase schedules built from scratch
  /// Rebase records that diffed a batch of >1 accepted moves against the
  /// retained grand-base log instead of re-recording one move at a time.
  long long rebase_batched = 0;
  /// Interval-gate misses: accepted-move rebases forced to a full rebuild
  /// because the new base's default snapshot interval no longer matches
  /// the retained log's (the gate that keeps recorded logs bit-identical).
  long long rebase_interval_mismatch = 0;

  // Copy-on-write snapshot storage (util/snapshot_store.h): how rebase
  // record prefixes were produced.
  long long snapshot_refs_shared = 0;  ///< prefix snapshots adopted by ref
  /// Bytes materialized into snapshots (copied prefixes + live suffix
  /// records) across rebase recordings; shared refs contribute zero.
  long long snapshot_bytes_copied = 0;
  /// Bytes of the shared prefix snapshots -- what deep-copying records
  /// would have paid on top of snapshot_bytes_copied (the CI sublinearity
  /// check compares the two growth rates).
  long long snapshot_bytes_shared = 0;

  /// Fraction of DP rows served from the cache across incremental evals.
  [[nodiscard]] double dp_reuse_fraction() const {
    return dp_vertices_total > 0
               ? static_cast<double>(dp_vertices_reused) /
                     static_cast<double>(dp_vertices_total)
               : 0.0;
  }

  /// Fraction of list-schedule placement events served by snapshot resumes.
  [[nodiscard]] double ls_resume_fraction() const {
    return ls_events_total > 0
               ? static_cast<double>(ls_events_resumed) /
                     static_cast<double>(ls_events_total)
               : 0.0;
  }

  void add(const EvalStats& other) {
    evaluations += other.evaluations;
    full_evals += other.full_evals;
    incremental_evals += other.incremental_evals;
    fault_free_evals += other.fault_free_evals;
    rebases += other.rebases;
    dp_vertices_total += other.dp_vertices_total;
    dp_vertices_reused += other.dp_vertices_reused;
    ls_full_builds += other.ls_full_builds;
    ls_resumes += other.ls_resumes;
    ls_events_total += other.ls_events_total;
    ls_events_resumed += other.ls_events_resumed;
    heap_pops += other.heap_pops;
    rebase_cache_hits += other.rebase_cache_hits;
    rebase_log_recorded += other.rebase_log_recorded;
    rebase_log_events_resumed += other.rebase_log_events_resumed;
    rebase_log_events_replayed += other.rebase_log_events_replayed;
    rebase_full_builds += other.rebase_full_builds;
    rebase_batched += other.rebase_batched;
    rebase_interval_mismatch += other.rebase_interval_mismatch;
    snapshot_refs_shared += other.snapshot_refs_shared;
    snapshot_bytes_copied += other.snapshot_bytes_copied;
    snapshot_bytes_shared += other.snapshot_bytes_shared;
  }

  /// Counter deltas since `earlier` (used to attribute a shared context's
  /// work to one optimizer run / pipeline stage).
  [[nodiscard]] EvalStats since(const EvalStats& earlier) const {
    EvalStats d = *this;
    d.evaluations -= earlier.evaluations;
    d.full_evals -= earlier.full_evals;
    d.incremental_evals -= earlier.incremental_evals;
    d.fault_free_evals -= earlier.fault_free_evals;
    d.rebases -= earlier.rebases;
    d.dp_vertices_total -= earlier.dp_vertices_total;
    d.dp_vertices_reused -= earlier.dp_vertices_reused;
    d.ls_full_builds -= earlier.ls_full_builds;
    d.ls_resumes -= earlier.ls_resumes;
    d.ls_events_total -= earlier.ls_events_total;
    d.ls_events_resumed -= earlier.ls_events_resumed;
    d.heap_pops -= earlier.heap_pops;
    d.rebase_cache_hits -= earlier.rebase_cache_hits;
    d.rebase_log_recorded -= earlier.rebase_log_recorded;
    d.rebase_log_events_resumed -= earlier.rebase_log_events_resumed;
    d.rebase_log_events_replayed -= earlier.rebase_log_events_replayed;
    d.rebase_full_builds -= earlier.rebase_full_builds;
    d.rebase_batched -= earlier.rebase_batched;
    d.rebase_interval_mismatch -= earlier.rebase_interval_mismatch;
    d.snapshot_refs_shared -= earlier.snapshot_refs_shared;
    d.snapshot_bytes_copied -= earlier.snapshot_bytes_copied;
    d.snapshot_bytes_shared -= earlier.snapshot_bytes_shared;
    return d;
  }
};

}  // namespace ftes
