// Counters of the incremental evaluation context (opt/eval_context.h),
// kept in a tiny header so optimizer result structs can embed them without
// pulling in the evaluator itself.
//
// `evaluations` counts objective evaluations of any kind; the remaining
// counters break down how they were served.  The DP vertex counters are
// the cache metric of the pipeline's per-stage reports: a reused vertex is
// a budgeted-longest-path row taken from the cached base instead of being
// recomputed.
#pragma once

namespace ftes {

struct EvalStats {
  long long evaluations = 0;        ///< objective evaluations, any kind
  long long full_evals = 0;         ///< complete list-schedule + DP runs
  long long incremental_evals = 0;  ///< move evals against the cached base
  long long fault_free_evals = 0;   ///< list-schedule-only makespan evals
  long long rebases = 0;            ///< base recomputations (full DP each)
  long long dp_vertices_total = 0;  ///< DP rows needed by incremental evals
  long long dp_vertices_reused = 0; ///< of those, rows served from the cache

  /// Fraction of DP rows served from the cache across incremental evals.
  [[nodiscard]] double dp_reuse_fraction() const {
    return dp_vertices_total > 0
               ? static_cast<double>(dp_vertices_reused) /
                     static_cast<double>(dp_vertices_total)
               : 0.0;
  }

  void add(const EvalStats& other) {
    evaluations += other.evaluations;
    full_evals += other.full_evals;
    incremental_evals += other.incremental_evals;
    fault_free_evals += other.fault_free_evals;
    rebases += other.rebases;
    dp_vertices_total += other.dp_vertices_total;
    dp_vertices_reused += other.dp_vertices_reused;
  }

  /// Counter deltas since `earlier` (used to attribute a shared context's
  /// work to one optimizer run / pipeline stage).
  [[nodiscard]] EvalStats since(const EvalStats& earlier) const {
    EvalStats d = *this;
    d.evaluations -= earlier.evaluations;
    d.full_evals -= earlier.full_evals;
    d.incremental_evals -= earlier.incremental_evals;
    d.fault_free_evals -= earlier.fault_free_evals;
    d.rebases -= earlier.rebases;
    d.dp_vertices_total -= earlier.dp_vertices_total;
    d.dp_vertices_reused -= earlier.dp_vertices_reused;
    return d;
  }
};

}  // namespace ftes
