#include "opt/mapping_opt.h"

#include <utility>
#include <vector>

#include "opt/eval_context.h"
#include "opt/tabu.h"
#include "sched/list_scheduler.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ftes {

namespace {

PolicyAssignment bare_greedy(const Application& app,
                             const Architecture& arch) {
  PolicyAssignment pa(app.process_count());
  std::vector<Time> load(static_cast<std::size_t>(arch.node_count()), 0);
  for (ProcessId pid : app.topological_order()) {
    const Process& proc = app.process(pid);
    ProcessPlan plan;
    plan.kind = PolicyKind::kCheckpointing;
    CopyPlan copy;  // no checkpoints / recoveries: plain execution
    if (proc.fixed_mapping) {
      copy.node = *proc.fixed_mapping;
    } else {
      Time best = kTimeInfinity;
      for (NodeId n : arch.node_ids()) {
        if (!proc.can_run_on(n)) continue;
        const Time finish = load[static_cast<std::size_t>(n.get())] +
                            proc.wcet_on(n);
        if (finish < best) {
          best = finish;
          copy.node = n;
        }
      }
    }
    load[static_cast<std::size_t>(copy.node.get())] += proc.wcet_on(copy.node);
    plan.copies.push_back(copy);
    pa.plan(pid) = plan;
  }
  return pa;
}

}  // namespace

MappingOptResult optimize_mapping_no_ft(const Application& app,
                                        const Architecture& arch,
                                        const MappingOptOptions& options) {
  Rng rng(options.seed);
  TabuList tabu(options.tenure);
  const int threads = resolve_threads(options.threads);
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  // Fault-free objective: the evaluator only rebuilds list schedules, so
  // the fault model is irrelevant (k = 0 keeps validation happy).
  EvalContext eval(app, arch, FaultModel{0});

  PolicyAssignment current = bare_greedy(app, arch);
  // Rebasing builds the base schedule + checkpoint log (so candidate moves
  // resume instead of rescheduling from scratch) and reports its makespan.
  Time current_cost = eval.rebase_fault_free(current);
  PolicyAssignment best = current;
  Time best_cost = current_cost;
  int evaluations = 1;

  // Sampled remap moves awaiting evaluation (one rewritten plan each, not
  // a whole assignment copy); generation is serial on the RNG, makespan
  // evaluation is pure and parallel (same result for any thread count).
  struct Candidate {
    ProcessId pid;
    ProcessPlan plan;
    TabuList::Key key;
  };
  std::vector<Candidate> candidates;
  std::vector<Time> costs;

  for (int iter = 0; iter < options.iterations; ++iter) {
    if (options.cancel && options.cancel->poll()) break;
    candidates.clear();
    for (int s = 0; s < options.neighborhood; ++s) {
      const ProcessId pid{static_cast<std::int32_t>(
          rng.index(static_cast<std::size_t>(app.process_count())))};
      const Process& proc = app.process(pid);
      if (proc.fixed_mapping || proc.wcet.size() < 2) continue;
      std::vector<NodeId> allowed;
      for (NodeId n : arch.node_ids()) {
        if (proc.can_run_on(n)) allowed.push_back(n);
      }
      ProcessPlan plan = current.plan(pid);
      const NodeId to = allowed[rng.index(allowed.size())];
      if (to == plan.copies[0].node) continue;
      plan.copies[0].node = to;
      const TabuList::Key key{0, pid.get(), 0, to.get()};
      candidates.push_back(Candidate{pid, std::move(plan), key});
    }

    costs.assign(candidates.size(), kTimeInfinity);
    parallel_for(pool, candidates.size(), threads, [&](std::size_t i) {
      // Chunk-granular cancellation point (see policy_assignment.cpp).
      if (options.cancel && options.cancel->poll()) return;
      costs[i] =
          eval.fault_free_makespan(candidates[i].pid, candidates[i].plan);
    });
    if (options.cancel && options.cancel->cancelled()) break;
    evaluations += static_cast<int>(candidates.size());

    Time best_move_cost = kTimeInfinity;
    const Candidate* best_move = nullptr;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (tabu.is_tabu(candidates[i].key, iter, costs[i], best_cost)) continue;
      if (costs[i] < best_move_cost) {
        best_move_cost = costs[i];
        best_move = &candidates[i];
      }
    }
    if (!best_move) continue;
    current.plan(best_move->pid) = best_move->plan;
    eval.rebase_fault_free(current);
    current_cost = best_move_cost;
    tabu.make_tabu(best_move->key, iter);
    if (current_cost < best_cost) {
      best_cost = current_cost;
      best = current;
    }
  }

  MappingOptResult result;
  result.assignment = best;
  result.makespan = best_cost;
  result.evaluations = evaluations;
  result.eval_stats = eval.stats();
  return result;
}

}  // namespace ftes
