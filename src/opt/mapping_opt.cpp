#include "opt/mapping_opt.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "opt/eval_context.h"
#include "opt/search_engine.h"
#include "sched/list_scheduler.h"
#include "util/random.h"

namespace ftes {

namespace {

PolicyAssignment bare_greedy(const Application& app,
                             const Architecture& arch) {
  PolicyAssignment pa(app.process_count());
  std::vector<Time> load(static_cast<std::size_t>(arch.node_count()), 0);
  for (ProcessId pid : app.topological_order()) {
    const Process& proc = app.process(pid);
    ProcessPlan plan;
    plan.kind = PolicyKind::kCheckpointing;
    CopyPlan copy;  // no checkpoints / recoveries: plain execution
    if (proc.fixed_mapping) {
      copy.node = *proc.fixed_mapping;
    } else {
      Time best = kTimeInfinity;
      for (NodeId n : arch.node_ids()) {
        if (!proc.can_run_on(n)) continue;
        const Time finish = load[static_cast<std::size_t>(n.get())] +
                            proc.wcet_on(n);
        if (finish < best) {
          best = finish;
          copy.node = n;
        }
      }
    }
    load[static_cast<std::size_t>(copy.node.get())] += proc.wcet_on(copy.node);
    plan.copies.push_back(copy);
    pa.plan(pid) = plan;
  }
  return pa;
}

/// Neighborhood + objective of the FT-ignorant mapping search: sampled
/// remap moves on copy 0, judged by the fault-free list-schedule makespan.
class MappingProblem final : public SearchProblem {
 public:
  MappingProblem(const Application& app, const Architecture& arch,
                 EvalContext& eval, const MappingOptOptions& options)
      : app_(app),
        arch_(arch),
        eval_(eval),
        rng_(options.seed),
        neighborhood_(options.neighborhood) {}

  bool neighborhood(int /*iteration*/, const PolicyAssignment& current,
                    bool /*accepted_last*/, std::vector<Move>& out) override {
    for (int s = 0; s < neighborhood_; ++s) {
      const ProcessId pid{static_cast<std::int32_t>(
          rng_.index(static_cast<std::size_t>(app_.process_count())))};
      const Process& proc = app_.process(pid);
      if (proc.fixed_mapping || proc.wcet.size() < 2) continue;
      std::vector<NodeId> allowed;
      for (NodeId n : arch_.node_ids()) {
        if (proc.can_run_on(n)) allowed.push_back(n);
      }
      ProcessPlan plan = current.plan(pid);
      const NodeId to = allowed[rng_.index(allowed.size())];
      if (to == plan.copies[0].node) continue;
      plan.copies[0].node = to;
      out.push_back(
          Move{pid, std::move(plan), TabuList::Key{0, pid.get(), 0, to.get()}});
    }
    return true;
  }

  Time evaluate(const Move& move) override {
    return eval_.fault_free_makespan(move.pid, move.plan);
  }

  Time commit(const PolicyAssignment& current) override {
    // Rebasing builds the base schedule + checkpoint log (so candidate
    // moves resume instead of rescheduling from scratch) and reports its
    // makespan.
    return eval_.rebase_fault_free(current);
  }

  Time commit_accept(const PolicyAssignment& current,
                     const Move& accepted) override {
    return eval_.rebase_fault_free(current, accepted.pid);
  }

 private:
  const Application& app_;
  const Architecture& arch_;
  EvalContext& eval_;
  Rng rng_;
  int neighborhood_;
};

}  // namespace

MappingOptResult optimize_mapping_no_ft(const Application& app,
                                        const Architecture& arch,
                                        const MappingOptOptions& options) {
  // Fault-free objective: the evaluator only rebuilds list schedules, so
  // the fault model is irrelevant (k = 0 keeps validation happy).
  EvalContext eval(app, arch, FaultModel{0});
  MappingProblem problem(app, arch, eval, options);

  SearchOptions search;
  // Non-positive budgets historically ran zero iterations, never forever.
  search.max_iterations = std::max(0, options.iterations);
  search.tenure = options.tenure;
  search.threads = options.threads;
  search.pool = options.pool;
  search.cancel = options.cancel;
  SearchResult found =
      neighborhood_search(problem, bare_greedy(app, arch), search);

  MappingOptResult result;
  result.assignment = std::move(found.best);
  result.makespan = found.best_cost;
  result.evaluations = found.stats.evaluations;
  result.search_stats = found.stats;
  result.eval_stats = eval.stats();
  return result;
}

}  // namespace ftes
