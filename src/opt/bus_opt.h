// TDMA bus access optimization (Eles et al. [8]: "Scheduling with Bus
// Access Optimization for Distributed Embedded Systems").
//
// The order and length of the TDMA slots is itself a synthesis knob: a node
// that sends on the application's critical path wants its slot early in the
// round and long enough for one frame, while idle nodes' slots pad the
// round and delay everybody.  This module hill-climbs over
//   * slot order (swap two slots in the round), and
//   * slot lengths (scale a slot within [min,max]),
// minimizing the worst-case schedule length of a fixed policy assignment.
#pragma once

#include <cstdint>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "util/time_types.h"

namespace ftes {

struct BusOptOptions {
  int iterations = 200;
  Time min_slot_length = 1;
  Time max_slot_length = 64;
  std::uint64_t seed = 1;
};

struct BusOptResult {
  TdmaBus bus;
  Time wcsl_before = 0;
  Time wcsl_after = 0;
  int evaluations = 0;
};

/// Optimizes the bus of `arch` for the given assignment; returns the tuned
/// bus (the caller installs it with Architecture::set_bus).  Never returns
/// a bus worse than the input.
[[nodiscard]] BusOptResult optimize_bus_access(const Application& app,
                                               const Architecture& arch,
                                               const PolicyAssignment& assignment,
                                               const FaultModel& model,
                                               const BusOptOptions& options);

}  // namespace ftes
