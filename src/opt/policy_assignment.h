// Mapping + fault-tolerance policy assignment optimization (Section 6,
// consolidating [13] and [15]): decide, per process, whether to use
// checkpointing/re-execution, active replication, or a combination, place
// every copy on a node, and choose checkpoint counts, minimizing the
// worst-case schedule length under k transient faults.
//
// The engine is a tabu search over three move families (remap a copy,
// switch the policy kind, adjust a checkpoint count), seeded by a greedy
// load-balancing construction; the objective is the WCSL analysis of
// sched/wcsl.h plus soft penalties for local-deadline violations.
#pragma once

#include <cstdint>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "opt/eval_stats.h"
#include "opt/search_engine.h"
#include "util/cancellation.h"
#include "util/time_types.h"

namespace ftes {

class EvalContext;
class ThreadPool;

/// Search space restriction, used to express the paper's comparison
/// baselines (Fig. 7).
enum class PolicySpace {
  kReexecutionOnly,   ///< MX: checkpointing fixed to one checkpoint
  kCheckpointingOnly, ///< checkpointing with optimized checkpoint counts
  kReplicationOnly,   ///< MR: active replication for every process
  kFull,              ///< MXR: checkpointing / replication / hybrid
};

struct OptimizeOptions {
  PolicySpace space = PolicySpace::kFull;
  bool optimize_mapping = true;
  /// Search over checkpoint counts (ignored for kReexecutionOnly /
  /// kReplicationOnly).
  bool optimize_checkpoints = true;
  int iterations = 300;
  int tenure = 8;
  /// Random moves sampled per iteration.
  int neighborhood = 24;
  int max_checkpoints = 8;
  std::uint64_t seed = 1;
  /// Concurrent WCSL evaluations of the sampled neighborhood (1 = serial;
  /// 0 = all hardware threads).  Candidate generation stays serial on the
  /// iteration's RNG, so the result is identical for every thread count.
  int threads = 1;
  /// Pool supplying the helper threads; nullptr = ThreadPool::shared().
  /// Mainly for tests, which need a multi-worker pool even on single-core
  /// machines (where the shared pool has no workers).
  ThreadPool* pool = nullptr;
  /// Incremental evaluator to run against; nullptr = a private one.  Must
  /// be built on the same application/architecture/fault model.  Sharing
  /// one across stages (core/pipeline.h) reuses its workspaces and
  /// aggregates its statistics (the search rebases it on its own start).
  EvalContext* eval = nullptr;
  /// Cooperative cancellation: polled at every tabu iteration AND inside
  /// every parallel evaluation chunk (so an armed deadline fires within
  /// one candidate evaluation, not one full neighborhood); the search
  /// returns its best-so-far when the token fires.  nullptr = never
  /// cancelled.
  CancellationToken* cancel = nullptr;
};

struct OptimizeResult {
  PolicyAssignment assignment;
  Time wcsl = 0;
  bool schedulable = false;
  int evaluations = 0;
  /// Evaluator counters spent by this run (cache reuse, full vs
  /// incremental evaluations); see opt/eval_stats.h.
  EvalStats eval_stats;
  /// Engine counters of the tabu search (opt/search_engine.h).
  SearchStats search_stats;
};

/// Greedy initial solution: processes in topological order, copy-0 mapping
/// on the allowed node minimizing (finish-of-load + wcet); policies per
/// `space` (checkpointing plans start from the local-optimal checkpoint
/// count of [27]).
[[nodiscard]] PolicyAssignment greedy_initial(const Application& app,
                                              const Architecture& arch,
                                              const FaultModel& model,
                                              PolicySpace space,
                                              int max_checkpoints);

/// Full tabu-search optimization.
[[nodiscard]] OptimizeResult optimize_policy_and_mapping(
    const Application& app, const Architecture& arch, const FaultModel& model,
    const OptimizeOptions& options);

/// Tabu search from a caller-provided start (used by baselines/ablations).
[[nodiscard]] OptimizeResult optimize_from(const Application& app,
                                           const Architecture& arch,
                                           const FaultModel& model,
                                           const OptimizeOptions& options,
                                           PolicyAssignment initial);

/// Objective: WCSL makespan plus soft local-deadline penalties.
[[nodiscard]] Time assignment_cost(const Application& app,
                                   const Architecture& arch,
                                   const PolicyAssignment& assignment,
                                   const FaultModel& model);

}  // namespace ftes
