// Generic neighborhood-search engine behind the Section 6 heuristic family.
//
// The paper's design-space exploration is one search pattern instantiated
// three times -- mapping tabu search (opt/mapping_opt.h), mapping + policy
// tabu search (opt/policy_assignment.h) and checkpoint coordinate descent
// (opt/checkpoint_opt.h) -- and each used to hand-roll the same loop:
// sample a neighborhood serially (the RNG owns the iteration), evaluate
// the candidates in parallel (pure incremental evaluations against a
// cached base), select serially in sample order, accept, rebase.  The
// engine below owns that loop once:
//
//   * Moves are typed: a Move replaces one process's plan wholesale (the
//     (process, plan) encoding of opt/eval_context.h), which covers remap,
//     policy-switch and checkpoint-delta moves alike.
//   * Neighborhood generation is pluggable (SearchProblem::neighborhood);
//     the generator is called serially, so sampling can consume an RNG and
//     carry arbitrary sweep state (the coordinate descent's round/target
//     cursor lives entirely in its generator).
//   * Tabu recency + the classic aspiration-by-objective criterion are
//     shared (opt/tabu.h); tenure = 0 disables them (pure descent).
//   * Candidate evaluation runs `threads` wide but selection is serial in
//     sample order, so the accepted trajectory -- and every counter in
//     SearchStats -- is bit-identical for any thread count.
//   * Cancellation is polled once per iteration and inside every parallel
//     evaluation chunk; a partially evaluated neighborhood is abandoned
//     wholesale (selecting from it would be timing-dependent).
//
// The three optimizers are thin SearchProblem implementations plus their
// public option/result adapters; every future move family or search
// strategy (portfolios, restarts, simulated annealing acceptance) slots in
// as another SearchProblem or another engine option.
#pragma once

#include <vector>

#include "fault/policy.h"
#include "opt/tabu.h"
#include "util/cancellation.h"
#include "util/time_types.h"

namespace ftes {

class ThreadPool;

/// One candidate move: replace process `pid`'s plan with `plan`.  `key` is
/// the move's tabu attribute (ignored when the tabu list is disabled).
struct Move {
  ProcessId pid;
  ProcessPlan plan;
  TabuList::Key key{};
};

/// Counters of one engine run.  All are thread-count invariant.
struct SearchStats {
  /// Objective evaluations: the initial commit plus every candidate of
  /// every completed (non-cancelled) neighborhood.
  int evaluations = 0;
  long long iterations = 0;        ///< neighborhoods sampled
  long long sampled_moves = 0;     ///< candidates generated
  long long accepted_moves = 0;    ///< moves applied to the incumbent
  long long tabu_rejected = 0;     ///< candidates vetoed by tabu recency
  long long aspiration_accepted = 0;  ///< tabu moves admitted by aspiration
  bool cancelled = false;          ///< the run was cut by its token

  void add(const SearchStats& other) {
    evaluations += other.evaluations;
    iterations += other.iterations;
    sampled_moves += other.sampled_moves;
    accepted_moves += other.accepted_moves;
    tabu_rejected += other.tabu_rejected;
    aspiration_accepted += other.aspiration_accepted;
    cancelled = cancelled || other.cancelled;
  }
};

/// A neighborhood + objective definition.  The engine calls neighborhood()
/// and commit() serially; evaluate() must be pure and thread-safe (it runs
/// concurrently over one neighborhood).
class SearchProblem {
 public:
  virtual ~SearchProblem() = default;

  /// Appends the iteration's sampled moves to `out` (cleared by the
  /// engine).  `accepted_last` reports whether the previous iteration
  /// accepted a move (coordinate-descent generators use it to detect
  /// converged sweeps).  Returning false ends the search.  An empty `out`
  /// skips the iteration (it still counts toward max_iterations).
  virtual bool neighborhood(int iteration, const PolicyAssignment& current,
                            bool accepted_last, std::vector<Move>& out) = 0;

  /// Objective of one candidate (lower is better).  Thread-safe.
  [[nodiscard]] virtual Time evaluate(const Move& move) = 0;

  /// Re-anchors incremental state (typically EvalContext::rebase) onto the
  /// incumbent; called once before the first iteration -- the return value
  /// is the incumbent's starting objective -- and after every acceptance
  /// (the engine then keeps the accepted candidate's evaluated objective,
  /// which equals the return value bit-for-bit).
  virtual Time commit(const PolicyAssignment& current) = 0;

  /// Acceptance commit: `current` is the previous incumbent with exactly
  /// `accepted` applied.  Problems backed by an EvalContext override this
  /// to forward the accepted process as a rebase hint (the O(P) diff scan
  /// per acceptance collapses to O(1) and the batched rebase path
  /// engages); the default ignores the hint.
  virtual Time commit_accept(const PolicyAssignment& current,
                             const Move& accepted) {
    (void)accepted;
    return commit(current);
  }
};

struct SearchOptions {
  /// Iteration budget; 0 runs no iterations at all (the start is still
  /// committed and returned), negative runs until the generator stops.
  int max_iterations = -1;
  /// Tabu tenure; 0 disables the tabu list and aspiration entirely.
  int tenure = 0;
  /// Accept only moves strictly better than the incumbent (coordinate
  /// descent / hill climbing); false = best admissible move wins even
  /// uphill (tabu search).
  bool require_improvement = false;
  /// Concurrent candidate evaluations (1 = serial; 0 = all hardware
  /// threads); the result is identical for any value.
  int threads = 1;
  /// Pool supplying the helper threads; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation: polled per iteration and inside every
  /// parallel evaluation chunk.  nullptr = never cancelled.
  CancellationToken* cancel = nullptr;
};

struct SearchResult {
  PolicyAssignment best;  ///< best accepted incumbent (the start if none)
  Time best_cost = 0;     ///< its objective
  SearchStats stats;
};

/// Runs the sample / evaluate-parallel / select-serial loop to completion
/// (iteration budget, generator stop, or cancellation) and returns the
/// best incumbent visited.
[[nodiscard]] SearchResult neighborhood_search(SearchProblem& problem,
                                               PolicyAssignment initial,
                                               const SearchOptions& options);

}  // namespace ftes
