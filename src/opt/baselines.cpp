#include "opt/baselines.h"

#include "opt/mapping_opt.h"
#include "sched/wcsl.h"

namespace ftes {

namespace {

MappingOptOptions mapping_options(const OptimizeOptions& base) {
  MappingOptOptions opts;
  opts.iterations = base.iterations;
  opts.tenure = base.tenure;
  opts.neighborhood = base.neighborhood;
  opts.seed = base.seed;
  opts.threads = base.threads;
  return opts;
}

}  // namespace

OptimizeResult run_mxr(const Application& app, const Architecture& arch,
                       const FaultModel& model, const OptimizeOptions& base) {
  OptimizeOptions opts = base;
  opts.space = PolicySpace::kFull;

  // Multi-start: the full policy space is much larger than the restricted
  // ones, so a single greedy-seeded run can lose to MX on big instances
  // within the same iteration budget.  Seeding a second run from the MX
  // optimum makes MXR dominate MX by construction (the tabu search never
  // returns a solution worse than its start).
  OptimizeResult from_greedy = optimize_policy_and_mapping(app, arch, model, opts);

  OptimizeOptions mx_opts = base;
  mx_opts.space = PolicySpace::kReexecutionOnly;
  mx_opts.optimize_checkpoints = false;
  const OptimizeResult mx = optimize_policy_and_mapping(app, arch, model, mx_opts);
  OptimizeResult from_mx = optimize_from(app, arch, model, opts, mx.assignment);
  from_mx.evaluations += mx.evaluations;
  from_mx.eval_stats.add(mx.eval_stats);

  OptimizeResult& best = from_mx.wcsl < from_greedy.wcsl ? from_mx : from_greedy;
  best.evaluations = from_greedy.evaluations + from_mx.evaluations;
  EvalStats stats = from_greedy.eval_stats;
  stats.add(from_mx.eval_stats);
  best.eval_stats = stats;
  return best;
}

OptimizeResult run_mx(const Application& app, const Architecture& arch,
                      const FaultModel& model, const OptimizeOptions& base) {
  OptimizeOptions opts = base;
  opts.space = PolicySpace::kReexecutionOnly;
  opts.optimize_checkpoints = false;
  return optimize_policy_and_mapping(app, arch, model, opts);
}

OptimizeResult run_mr(const Application& app, const Architecture& arch,
                      const FaultModel& model, const OptimizeOptions& base) {
  OptimizeOptions opts = base;
  opts.space = PolicySpace::kReplicationOnly;
  opts.optimize_checkpoints = false;
  return optimize_policy_and_mapping(app, arch, model, opts);
}

OptimizeResult run_sfx(const Application& app, const Architecture& arch,
                       const FaultModel& model, const OptimizeOptions& base) {
  // Stage 1: FT-ignorant mapping.
  const MappingOptResult mapping =
      optimize_mapping_no_ft(app, arch, mapping_options(base));
  // Stage 2: layer re-execution on the fixed mapping.
  PolicyAssignment pa(app.process_count());
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    ProcessPlan plan = make_checkpointing_plan(model.k, 1);
    plan.copies[0].node = mapping.assignment.plan(pid).copies[0].node;
    pa.plan(pid) = plan;
  }
  OptimizeResult result;
  result.assignment = pa;
  const WcslResult wcsl = evaluate_wcsl(app, arch, pa, model);
  result.wcsl = wcsl.makespan;
  result.schedulable = wcsl.meets_deadlines(app);
  result.evaluations = mapping.evaluations + 1;
  result.eval_stats = mapping.eval_stats;
  result.eval_stats.evaluations += 1;
  result.eval_stats.full_evals += 1;
  return result;
}

Time non_ft_reference(const Application& app, const Architecture& arch,
                      const OptimizeOptions& base) {
  return optimize_mapping_no_ft(app, arch, mapping_options(base)).makespan;
}

}  // namespace ftes
