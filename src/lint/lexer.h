// Lightweight C++ tokenizer for the ftes-lint rule engine.
//
// This is deliberately NOT a compiler front end: rules only need a stream of
// identifiers/punctuators with line numbers, with comments, string/char
// literals and preprocessor directives stripped (so "std::rand" inside a log
// message or a #define never trips a rule).  What IS preserved from comments
// are the lint suppression annotations (written here in quotes so this very
// comment does not register as one):
//
//   "lint: <tag>[, <tag>...] -- <one-line justification>"  after "//"
//
// An annotation suppresses matching diagnostics on the same line (trailing
// comment) or on the next line that contains code (full-line comment above
// the offending statement; intervening comment-only lines are fine).
#pragma once

#include <string>
#include <vector>

namespace ftes::lint {

enum class TokKind {
  Identifier,  ///< identifiers and keywords
  Number,
  Punct,  ///< one char each, except "::" and "->" which stay fused
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based
};

struct Annotation {
  int line = 0;                   ///< line the comment sits on
  int target_line = 0;            ///< line of code the annotation governs
  std::vector<std::string> tags;  ///< parsed tag list
  bool justified = false;         ///< true when a "-- why" part is present
  std::string why;                ///< the justification text itself
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Annotation> annotations;
  std::vector<std::string> lines;  ///< raw source lines, for anchors/indent
};

/// Tokenizes `source`.  Never fails: malformed input degrades to fewer
/// tokens, never to an exception (lint must not crash on odd vendored code).
[[nodiscard]] LexedFile lex(const std::string& source);

}  // namespace ftes::lint
