// Configuration of the ftes-lint pass: which directories each rule governs
// and which files are allowlisted.  Paths are relative to the lint root with
// '/' separators; a scope entry is a path prefix ("" matches everything).
//
// The project defaults encode the invariants documented in
// docs/INVARIANTS.md -- tests override them to point rules at fixture trees.
#pragma once

#include <string>
#include <vector>

namespace ftes::lint {

struct LintConfig {
  /// Directories scanned under the root (missing ones are skipped, so a
  /// fixture tree with only src/ works).
  std::vector<std::string> scan_roots = {"src", "tools", "bench"};

  /// R2 (nondeterminism): files allowed to read wall clocks / entropy.
  /// Exact relative paths, not prefixes.
  std::vector<std::string> nondet_allowlist = {
      "src/util/stopwatch.h",   // the one sanctioned Stopwatch
      "src/util/cancellation.h",  // the deadline watchdog's clock
      "src/core/metrics.cpp",   // wall-clock metric helpers
      "bench/plain_bench.h",    // bench reporters time themselves...
      "bench/bench_report.h",   //
      "bench/bench_common.h",   // ...by design
  };

  /// R3 (missing-cancel-poll): parallel_for chunk bodies here must poll.
  /// src/serve/ is in scope since PR 8: the job server runs every job on
  /// the shared pool under a per-job budget.
  std::vector<std::string> cancel_scopes = {"src/opt/", "src/sched/",
                                            "src/sim/", "src/batch/",
                                            "src/serve/"};

  /// R4 (float-in-result-path): result code here is integer-scaled.
  std::vector<std::string> integer_result_scopes = {"src/sched/", "src/sim/",
                                                    "src/fault/"};

  /// R5 (ordered-container-hot-path): PRs 2-3 flattened std::map/std::set
  /// out of these; reintroductions must prove they are off the per-move
  /// evaluation path.
  std::vector<std::string> hot_path_scopes = {"src/opt/", "src/sched/",
                                              "src/sim/"};

  /// R6 (missing-catch-all): job-boundary code here promises per-job
  /// isolation, so every try's catch chain must end in `catch (...)`
  /// (an injected non-standard exception must not kill the server).
  std::vector<std::string> catch_scopes = {"src/serve/"};

  /// When set, every suppression annotation must carry a "-- why" part
  /// (enforced by the lint_tree ctest target).
  bool require_justifications = false;
};

/// True when `path` starts with any prefix in `scopes` ("" matches all).
[[nodiscard]] inline bool in_scope(const std::string& path,
                                   const std::vector<std::string>& scopes) {
  for (const std::string& prefix : scopes) {
    if (path.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

[[nodiscard]] inline bool is_allowlisted(
    const std::string& path, const std::vector<std::string>& allowlist) {
  for (const std::string& entry : allowlist) {
    if (path == entry) return true;
  }
  return false;
}

}  // namespace ftes::lint
