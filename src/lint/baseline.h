// Committed-baseline support: grandfathered findings live in a checked-in
// file (tools/lint_baseline.txt) keyed by "file|rule|anchor" -- no line
// numbers, so edits elsewhere in a file do not churn the baseline.  The
// lint run fails only on findings NOT in the baseline, and CI regenerates
// the baseline and diffs it against the committed copy so it can only
// shrink, never grow silently.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/diagnostic.h"

namespace ftes::lint {

/// Parses baseline text: '#' comment lines and blank lines are skipped,
/// every other line is a literal key.
[[nodiscard]] std::set<std::string> parse_baseline(const std::string& text);

struct BaselineSplit {
  std::vector<Diagnostic> fresh;  ///< findings not covered by the baseline
  int grandfathered = 0;          ///< findings matched (and swallowed)
};

[[nodiscard]] BaselineSplit apply_baseline(
    const std::vector<Diagnostic>& diagnostics,
    const std::set<std::string>& baseline);

/// Renders the given findings as a baseline file (stable header + sorted
/// unique keys).  Byte-stable: CI diffs this output against the committed
/// file.
[[nodiscard]] std::string render_baseline(
    const std::vector<Diagnostic>& diagnostics);

}  // namespace ftes::lint
