#include "lint/lexer.h"

#include <algorithm>
#include <cctype>

namespace ftes::lint {
namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parses one "//"-comment body into an annotation.  Returns false when the
/// comment is not a lint directive.
bool parse_annotation(const std::string& body, int line, Annotation* out) {
  std::string text = trim(body);
  // Tolerate doc-comment slashes and a leading '!' (/// lint:, //! lint:).
  while (!text.empty() && (text.front() == '/' || text.front() == '!')) {
    text.erase(text.begin());
  }
  text = trim(text);
  constexpr const char kPrefix[] = "lint:";
  if (text.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  text = trim(text.substr(sizeof(kPrefix) - 1));

  std::string tags_part = text;
  std::string why;
  if (const std::size_t dash = text.find("--"); dash != std::string::npos) {
    tags_part = trim(text.substr(0, dash));
    why = trim(text.substr(dash + 2));
  }
  out->line = line;
  out->justified = !why.empty();
  out->why = why;
  out->tags.clear();
  std::size_t pos = 0;
  while (pos <= tags_part.size()) {
    const std::size_t comma = tags_part.find(',', pos);
    const std::string tag =
        trim(comma == std::string::npos ? tags_part.substr(pos)
                                        : tags_part.substr(pos, comma - pos));
    if (!tag.empty()) out->tags.push_back(tag);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->tags.empty();
}

}  // namespace

LexedFile lex(const std::string& source) {
  LexedFile out;

  // Raw lines (anchor text, indentation for --fix-annotations).
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= source.size(); ++i) {
      if (i == source.size() || source[i] == '\n') {
        std::string line = source.substr(start, i - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        out.lines.push_back(std::move(line));
        start = i + 1;
      }
    }
  }

  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_code = false;  // any token since the last newline?

  auto skip_line_comment = [&] {  // at "//"; returns at '\n' or EOF
    const std::size_t body_start = i + 2;
    while (i < n && source[i] != '\n') ++i;
    Annotation ann;
    if (parse_annotation(source.substr(body_start, i - body_start), line,
                         &ann)) {
      out.annotations.push_back(ann);
    }
  };

  auto skip_block_comment = [&] {  // at "/*"
    i += 2;
    while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
      if (source[i] == '\n') ++line;
      ++i;
    }
    i = std::min(n, i + 2);
  };

  auto skip_string = [&](char quote) {  // at the opening quote
    ++i;
    while (i < n && source[i] != quote) {
      if (source[i] == '\\' && i + 1 < n) ++i;
      if (source[i] == '\n') ++line;  // unterminated; keep line count sane
      ++i;
    }
    if (i < n) ++i;
  };

  auto skip_raw_string = [&] {  // at the '"' of R"delim(
    ++i;
    std::string delim;
    while (i < n && source[i] != '(') delim.push_back(source[i++]);
    const std::string close = ")" + delim + "\"";
    const std::size_t end = source.find(close, i);
    for (std::size_t j = i; j < std::min(end, n); ++j) {
      if (source[j] == '\n') ++line;
    }
    i = end == std::string::npos ? n : end + close.size();
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      skip_line_comment();
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      skip_block_comment();
      continue;
    }
    if (c == '#' && !line_has_code) {
      // Preprocessor directive: skip the logical line (honoring backslash
      // continuations) so includes and macro bodies never trip a rule.
      while (i < n) {
        if (source[i] == '\n') {
          if (i > 0 && source[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;  // the '\n' itself is handled by the main loop
        }
        if (source[i] == '/' && i + 1 < n && source[i + 1] == '/') {
          skip_line_comment();
          break;
        }
        ++i;
      }
      continue;
    }
    if (c == '"') {
      skip_string('"');
      line_has_code = true;
      continue;
    }
    if (c == '\'') {
      skip_string('\'');
      line_has_code = true;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(source[j])) ++j;
      std::string word = source.substr(i, j - i);
      // String-literal prefixes: R"(, u8R"(, L"...", etc.
      if (j < n && source[j] == '"') {
        static const char* kRawPrefixes[] = {"R", "u8R", "uR", "UR", "LR"};
        static const char* kStrPrefixes[] = {"u8", "u", "U", "L"};
        if (std::find_if(std::begin(kRawPrefixes), std::end(kRawPrefixes),
                         [&](const char* p) { return word == p; }) !=
            std::end(kRawPrefixes)) {
          i = j;
          skip_raw_string();
          line_has_code = true;
          continue;
        }
        if (std::find_if(std::begin(kStrPrefixes), std::end(kStrPrefixes),
                         [&](const char* p) { return word == p; }) !=
            std::end(kStrPrefixes)) {
          i = j;
          skip_string('"');
          line_has_code = true;
          continue;
        }
      }
      out.tokens.push_back({TokKind::Identifier, std::move(word), line});
      i = j;
      line_has_code = true;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (is_ident_char(source[j]) || source[j] == '\'' ||
                       ((source[j] == '+' || source[j] == '-') && j > i &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                         source[j - 1] == 'p' || source[j - 1] == 'P')) ||
                       source[j] == '.')) {
        ++j;
      }
      out.tokens.push_back({TokKind::Number, source.substr(i, j - i), line});
      i = j;
      line_has_code = true;
      continue;
    }
    // Punctuation.  Only "::" and "->" are fused: rules qualify names with
    // them; every other operator can stay single-char.
    if (c == ':' && i + 1 < n && source[i + 1] == ':') {
      out.tokens.push_back({TokKind::Punct, "::", line});
      i += 2;
    } else if (c == '-' && i + 1 < n && source[i + 1] == '>') {
      out.tokens.push_back({TokKind::Punct, "->", line});
      i += 2;
    } else {
      out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
      ++i;
    }
    line_has_code = true;
  }

  // Resolve each annotation to the line of code it governs: its own line for
  // trailing comments, otherwise the next line holding any token.
  for (Annotation& ann : out.annotations) {
    ann.target_line = ann.line;
    bool same_line = false;
    int next_code = 0;
    for (const Token& t : out.tokens) {
      if (t.line == ann.line) {
        same_line = true;
        break;
      }
      if (t.line > ann.line) {
        next_code = t.line;
        break;
      }
    }
    if (!same_line && next_code > 0) ann.target_line = next_code;
  }

  return out;
}

}  // namespace ftes::lint
