#include "lint/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lint/lexer.h"
#include "lint/rules.h"

namespace ftes::lint {
namespace {

[[nodiscard]] bool is_cpp_source(const std::filesystem::path& p) {
  static const std::set<std::string> kExts = {".h",  ".hpp", ".hh", ".cpp",
                                              ".cc", ".cxx", ".inl"};
  return kExts.count(p.extension().string()) > 0;
}

[[nodiscard]] std::string to_rel_slash(const std::filesystem::path& p,
                                       const std::filesystem::path& root) {
  return std::filesystem::relative(p, root).generic_string();
}

}  // namespace

std::vector<SourceFile> load_tree(const std::string& root,
                                  const LintConfig& config) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  const fs::path root_path(root);
  for (const std::string& sub : config.scan_roots) {
    const fs::path dir = root_path / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file() || !is_cpp_source(it->path())) continue;
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back({to_rel_slash(it->path(), root_path), buf.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

LintResult run_lint(const std::vector<SourceFile>& files,
                    const LintConfig& config) {
  LintResult result;
  result.files_scanned = static_cast<int>(files.size());

  // Pass 1: lex everything once and build the tree-wide index of names
  // declared with an unordered container type (R1 needs cross-file
  // knowledge: `p.wcet` iterated in src/opt is declared in src/app).
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  std::set<std::string> unordered_names;
  for (const SourceFile& f : files) {
    lexed.push_back(lex(f.content));
    collect_unordered_names(lexed.back(), &unordered_names);
  }

  // Pass 2: rules, then suppression by annotation.
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<Diagnostic> raw;
    run_rules(files[i].path, lexed[i], unordered_names, config, &raw);
    for (Diagnostic& d : raw) {
      const std::string tag = suppression_tag(d.rule);
      bool suppressed = false;
      if (!tag.empty()) {
        for (const Annotation& ann : lexed[i].annotations) {
          if (ann.target_line != d.line) continue;
          if (std::find(ann.tags.begin(), ann.tags.end(), tag) !=
              ann.tags.end()) {
            suppressed = true;
            break;
          }
        }
      }
      if (suppressed) {
        ++result.suppressed;
      } else {
        result.diagnostics.push_back(std::move(d));
      }
    }
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            diagnostic_before);
  return result;
}

int fix_annotations(std::vector<SourceFile>* files,
                    const std::vector<Diagnostic>& findings) {
  // Group insertion lines per file; walk bottom-up so earlier insertions do
  // not shift later line numbers.
  std::map<std::string, std::map<int, std::string, std::greater<int>>> plan;
  for (const Diagnostic& d : findings) {
    const std::string tag = suppression_tag(d.rule);
    if (tag.empty()) continue;
    plan[d.file].emplace(
        d.line, "// lint: " + tag + " -- TODO(lint): justify this suppression");
  }

  int inserted = 0;
  for (SourceFile& f : *files) {
    const auto it = plan.find(f.path);
    if (it == plan.end()) continue;
    std::vector<std::string> lines;
    {
      std::size_t start = 0;
      for (std::size_t i = 0; i <= f.content.size(); ++i) {
        if (i == f.content.size() || f.content[i] == '\n') {
          lines.push_back(f.content.substr(start, i - start));
          start = i + 1;
        }
      }
      // A trailing newline yields one phantom empty segment; drop it so
      // re-joining reproduces the original byte-for-byte.
      if (!f.content.empty() && f.content.back() == '\n') lines.pop_back();
    }
    for (const auto& [line, comment] : it->second) {
      if (line < 1 || static_cast<std::size_t>(line) > lines.size()) continue;
      const std::string& code = lines[static_cast<std::size_t>(line) - 1];
      const std::size_t indent_len = code.find_first_not_of(" \t");
      const std::string indent =
          indent_len == std::string::npos ? "" : code.substr(0, indent_len);
      lines.insert(lines.begin() + (line - 1), indent + comment);
      ++inserted;
    }
    std::string rebuilt;
    for (const std::string& l : lines) {
      rebuilt += l;
      rebuilt += '\n';
    }
    f.content = std::move(rebuilt);
  }
  return inserted;
}

}  // namespace ftes::lint
