// Diagnostic record shared by the ftes-lint rule engine, baseline store and
// the ftes_lint tool.
//
// A diagnostic is keyed two ways:
//   * format():       "file:line: rule: message" -- the human-facing line,
//                     exact enough for tests to assert on;
//   * baseline_key(): "file|rule|anchor" -- line-number-free, so a committed
//                     baseline survives unrelated edits above a grandfathered
//                     finding.  The anchor is the trimmed source line text.
#pragma once

#include <string>

namespace ftes::lint {

struct Diagnostic {
  std::string file;     ///< path relative to the lint root, '/'-separated
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id, e.g. "unordered-iter"
  std::string message;  ///< human-readable explanation with the fix hint
  std::string anchor;   ///< trimmed text of the offending source line
};

inline std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": " + d.rule + ": " +
         d.message;
}

inline std::string baseline_key(const Diagnostic& d) {
  return d.file + "|" + d.rule + "|" + d.anchor;
}

/// Stable output and baseline order: by file, then line, then rule.
inline bool diagnostic_before(const Diagnostic& a, const Diagnostic& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  return a.rule < b.rule;
}

}  // namespace ftes::lint
