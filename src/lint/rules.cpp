#include "lint/rules.h"

#include <algorithm>
#include <array>
#include <cstddef>

namespace ftes::lint {
namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Identifier && t.text == text;
}

[[nodiscard]] bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::Punct && t.text == text;
}

/// Index of the token matching the opener at `open_idx` (same-kind nesting),
/// or tokens.size() when unbalanced.
[[nodiscard]] std::size_t match_forward(const Tokens& toks,
                                        std::size_t open_idx,
                                        const char* open, const char* close) {
  int depth = 0;
  for (std::size_t i = open_idx; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) ++depth;
    if (is_punct(toks[i], close) && --depth == 0) return i;
  }
  return toks.size();
}

[[nodiscard]] std::string anchor_for(const LexedFile& file, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > file.lines.size()) {
    return {};
  }
  const std::string& raw = file.lines[static_cast<std::size_t>(line) - 1];
  const std::size_t b = raw.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  return raw.substr(b, raw.find_last_not_of(" \t") - b + 1);
}

void emit(const std::string& path, const LexedFile& file, int line,
          const char* rule, std::string message,
          std::vector<Diagnostic>* out) {
  // One diagnostic per (rule, line): a line like `std::map<K, std::set<V>>`
  // is one finding, not two.
  for (const Diagnostic& d : *out) {
    if (d.line == line && d.rule == rule) return;
  }
  out->push_back(Diagnostic{path, line, rule, std::move(message),
                            anchor_for(file, line)});
}

[[nodiscard]] bool is_unordered_container(const Token& t) {
  return is_ident(t, "unordered_map") || is_ident(t, "unordered_set") ||
         is_ident(t, "unordered_multimap") || is_ident(t, "unordered_multiset");
}

// --- R1: iteration over unordered containers -------------------------------

void rule_unordered_iter(const std::string& path, const LexedFile& file,
                         const std::set<std::string>& names,
                         std::vector<Diagnostic>* out) {
  const Tokens& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered-declared name.
    if (is_ident(toks[i], "for") && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close == toks.size()) continue;
      // The range-for ':' sits at nesting depth 1 (directly inside the for
      // parens); a ternary's ':' is consumed by its pending '?'.
      std::size_t colon = 0;
      int depth = 0;
      int pending_ternary = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (is_punct(toks[k], "(") || is_punct(toks[k], "[") ||
            is_punct(toks[k], "{")) {
          ++depth;
        } else if (is_punct(toks[k], ")") || is_punct(toks[k], "]") ||
                   is_punct(toks[k], "}")) {
          --depth;
        } else if (depth == 1 && is_punct(toks[k], "?")) {
          ++pending_ternary;
        } else if (depth == 1 && is_punct(toks[k], ":")) {
          if (pending_ternary > 0) {
            --pending_ternary;
          } else {
            colon = k;
            break;
          }
        } else if (depth == 1 && is_punct(toks[k], ";")) {
          break;  // classic for loop
        }
      }
      if (colon == 0) continue;
      for (std::size_t k = colon + 1; k < close; ++k) {
        if (toks[k].kind == TokKind::Identifier &&
            names.count(toks[k].text) > 0) {
          emit(path, file, toks[i].line, kRuleUnorderedIter,
               "range-for over unordered container '" + toks[k].text +
                   "': iteration order is implementation-defined and can "
                   "leak into results; sort/flatten it or annotate the loop "
                   "with `// lint: order-insensitive -- <why>`",
               out);
          break;
        }
      }
    }
    // Explicit iterator walks: name.begin() / name->cbegin() / ...
    if (toks[i].kind == TokKind::Identifier && names.count(toks[i].text) > 0 &&
        i + 2 < toks.size() &&
        (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->"))) {
      static constexpr std::array<const char*, 4> kBegin = {
          "begin", "cbegin", "rbegin", "crbegin"};
      for (const char* b : kBegin) {
        if (is_ident(toks[i + 2], b)) {
          emit(path, file, toks[i].line, kRuleUnorderedIter,
               "iterator walk over unordered container '" + toks[i].text +
                   "': iteration order is implementation-defined; sort the "
                   "keys first or annotate with "
                   "`// lint: order-insensitive -- <why>`",
               out);
          break;
        }
      }
    }
  }
}

// --- R2: nondeterminism sources ---------------------------------------------

void rule_nondeterminism(const std::string& path, const LexedFile& file,
                         std::vector<Diagnostic>* out) {
  const Tokens& toks = file.tokens;

  // Per-file clock aliases: `using Clock = std::chrono::steady_clock;`.
  std::set<std::string> clock_aliases;
  static constexpr std::array<const char*, 3> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "using") || !is_punct(toks[i + 2], "=")) continue;
    for (std::size_t k = i + 3; k < toks.size() && !is_punct(toks[k], ";");
         ++k) {
      for (const char* c : kClocks) {
        if (is_ident(toks[k], c)) clock_aliases.insert(toks[i + 1].text);
      }
    }
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    const bool after_member_access =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    const bool qualified = i > 0 && is_punct(toks[i - 1], "::");
    const bool std_qualified =
        qualified && i >= 2 && is_ident(toks[i - 2], "std");

    if (t.text == "random_device") {
      emit(path, file, t.line, kRuleNondeterminism,
           "std::random_device is an entropy source; derive every stream "
           "from the run's printed seed (util/random.h) instead",
           out);
      continue;
    }
    if ((t.text == "rand" || t.text == "srand") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") && !after_member_access &&
        (!qualified || std_qualified)) {
      emit(path, file, t.line, kRuleNondeterminism,
           t.text + "() draws from hidden global state; use the seeded "
                    "ftes::Rng (util/random.h) instead",
           out);
      continue;
    }
    if (t.text == "time" && i + 2 < toks.size() &&
        is_punct(toks[i + 1], "(") && !after_member_access &&
        (!qualified || std_qualified) &&
        (i == 0 || toks[i - 1].kind != TokKind::Identifier) &&
        (is_ident(toks[i + 2], "nullptr") || is_ident(toks[i + 2], "NULL") ||
         toks[i + 2].text == "0" || is_punct(toks[i + 2], "&"))) {
      emit(path, file, t.line, kRuleNondeterminism,
           "time() reads the wall clock; results must not depend on when "
           "the run happens (allowlisted: stopwatch/metrics/bench reporters)",
           out);
      continue;
    }
    if (t.text == "now" && i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        qualified && i >= 2) {
      const std::string& q = toks[i - 2].text;
      const bool is_clock =
          std::find_if(kClocks.begin(), kClocks.end(),
                       [&](const char* c) { return q == c; }) != kClocks.end() ||
          clock_aliases.count(q) > 0;
      if (is_clock) {
        emit(path, file, t.line, kRuleNondeterminism,
             q + "::now() reads a clock in result-affecting code; only the "
                 "allowlisted stopwatch/watchdog/bench files may (see "
                 "docs/INVARIANTS.md R2)",
             out);
      }
    }
  }
}

// --- R3: parallel_for chunk bodies must poll cancellation -------------------

void rule_missing_cancel_poll(const std::string& path, const LexedFile& file,
                              std::vector<Diagnostic>* out) {
  const Tokens& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "parallel_for") || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    // Skip the declarations/definitions in util/thread_pool.*: a preceding
    // type or qualifier means this is not a call site.
    if (i > 0 && (is_ident(toks[i - 1], "void") || is_punct(toks[i - 1], "::"))) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == toks.size()) continue;
    std::size_t body_open = toks.size();
    for (std::size_t k = i + 2; k < close; ++k) {
      if (is_punct(toks[k], "{")) {
        body_open = k;
        break;
      }
    }
    bool polled = false;
    if (body_open != toks.size()) {
      const std::size_t body_close = match_forward(toks, body_open, "{", "}");
      static constexpr std::array<const char*, 5> kPolls = {
          "poll", "cancelled", "is_cancelled", "throw_if_cancelled",
          "check_cancel"};
      for (std::size_t k = body_open; k < std::min(body_close, close); ++k) {
        for (const char* p : kPolls) {
          if (is_ident(toks[k], p)) polled = true;
        }
      }
    }
    if (!polled) {
      emit(path, file, toks[i].line, kRuleMissingCancelPoll,
           body_open == toks.size()
               ? std::string("parallel_for body is not an inline lambda; "
                             "cannot verify a cancellation poll -- annotate "
                             "with `// lint: cancel-ok -- <why>` if the body "
                             "polls elsewhere")
               : std::string(
                     "parallel_for chunk body never polls a "
                     "CancellationToken: an armed deadline cannot fire until "
                     "the whole loop drains; add `if (cancel && "
                     "cancel->poll()) return;` or annotate with "
                     "`// lint: cancel-ok -- <why>`"),
           out);
    }
  }
}

// --- R4: no floating point in integer-scaled result code --------------------

void rule_float_in_result_path(const std::string& path, const LexedFile& file,
                               std::vector<Diagnostic>* out) {
  for (const Token& t : file.tokens) {
    if (is_ident(t, "float") || is_ident(t, "double")) {
      emit(path, file, t.line, kRuleFloatInResultPath,
           "'" + t.text + "' in integer-scaled result code: times are int64 "
                          "ticks (util/time_types.h) so accumulation order "
                          "can never change a result; use integer math or "
                          "annotate with `// lint: float-ok -- <why>`",
           out);
    }
  }
}

// --- R5: ordered containers on the eval hot path ----------------------------

void rule_ordered_hot_path(const std::string& path, const LexedFile& file,
                           std::vector<Diagnostic>* out) {
  const Tokens& toks = file.tokens;
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (!is_punct(toks[i - 1], "::") || !is_ident(toks[i - 2], "std") ||
        !is_punct(toks[i + 1], "<")) {
      continue;
    }
    if (is_ident(toks[i], "map") || is_ident(toks[i], "set") ||
        is_ident(toks[i], "multimap") || is_ident(toks[i], "multiset")) {
      emit(path, file, toks[i].line, kRuleOrderedHotPath,
           "std::" + toks[i].text + " in eval-hot-path code: PRs 2-3 "
               "flattened node-based containers out of the per-move "
               "evaluation loop; use a flat vector/hash or annotate with "
               "`// lint: cold-path -- <why>`",
           out);
    }
  }
}

// --- R6: job-boundary catch chains must end in catch (...) ------------------

void rule_missing_catch_all(const std::string& path, const LexedFile& file,
                            std::vector<Diagnostic>* out) {
  const Tokens& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "try") || !is_punct(toks[i + 1], "{")) continue;
    std::size_t body_close = match_forward(toks, i + 1, "{", "}");
    if (body_close == toks.size()) continue;
    // Walk the catch chain.  The lexer emits "..." as three "." puncts, so
    // an exhaustive handler is any catch whose parens contain a "." punct.
    bool has_catch_all = false;
    bool any_catch = false;
    int last_catch_line = toks[i].line;
    std::size_t k = body_close + 1;
    while (k + 1 < toks.size() && is_ident(toks[k], "catch") &&
           is_punct(toks[k + 1], "(")) {
      any_catch = true;
      last_catch_line = toks[k].line;
      const std::size_t params_close = match_forward(toks, k + 1, "(", ")");
      if (params_close == toks.size()) break;
      for (std::size_t p = k + 2; p < params_close; ++p) {
        if (is_punct(toks[p], ".")) has_catch_all = true;
      }
      if (params_close + 1 >= toks.size() ||
          !is_punct(toks[params_close + 1], "{")) {
        break;
      }
      const std::size_t handler_close =
          match_forward(toks, params_close + 1, "{", "}");
      if (handler_close == toks.size()) break;
      k = handler_close + 1;
    }
    if (any_catch && !has_catch_all) {
      emit(path, file, last_catch_line, kRuleMissingCatchAll,
           "catch chain without a final `catch (...)` in job-boundary code: "
           "a non-standard exception would escape the job and kill the "
           "server; add `catch (...)` or annotate with "
           "`// lint: catch-ok -- <why>`",
           out);
    }
  }
}

// --- annotation hygiene ------------------------------------------------------

void rule_annotations(const std::string& path, const LexedFile& file,
                      const LintConfig& config,
                      std::vector<Diagnostic>* out) {
  static const std::set<std::string> kKnown = {
      kTagOrderInsensitive, kTagCancelOk, kTagFloatOk, kTagColdPath,
      kTagCatchOk};
  for (const Annotation& ann : file.annotations) {
    bool any_known = false;
    for (const std::string& tag : ann.tags) {
      if (kKnown.count(tag) > 0) {
        any_known = true;
      } else {
        emit(path, file, ann.line, kRuleUnknownAnnotation,
             "unknown lint tag '" + tag + "' (known: order-insensitive, "
                 "cancel-ok, float-ok, cold-path, catch-ok); a typo here "
                 "silently disables nothing and suppresses nothing",
             out);
      }
    }
    const bool placeholder = ann.why.find("TODO") != std::string::npos;
    if (config.require_justifications && any_known &&
        (!ann.justified || placeholder)) {
      emit(path, file, ann.line, kRuleNeedsJustification,
           placeholder
               ? std::string("suppression justification is still the "
                             "--fix-annotations TODO placeholder; replace it "
                             "with the real one-line why")
               : std::string("suppression annotation lacks a justification; "
                             "write `// lint: <tag> -- <one-line why>`"),
           out);
    }
  }
}

}  // namespace

std::string suppression_tag(const std::string& rule) {
  if (rule == kRuleUnorderedIter) return kTagOrderInsensitive;
  if (rule == kRuleMissingCancelPoll) return kTagCancelOk;
  if (rule == kRuleFloatInResultPath) return kTagFloatOk;
  if (rule == kRuleOrderedHotPath) return kTagColdPath;
  if (rule == kRuleMissingCatchAll) return kTagCatchOk;
  return {};
}

std::vector<RuleInfo> rule_table() {
  return {
      {kRuleUnorderedIter, kTagOrderInsensitive,
       "no iteration over std::unordered_{map,set} whose order can reach "
       "results"},
      {kRuleNondeterminism, "",
       "no entropy/wall-clock sources outside the allowlisted "
       "stopwatch/watchdog/bench files"},
      {kRuleMissingCancelPoll, kTagCancelOk,
       "every parallel_for chunk body in opt/sched/sim/batch polls a "
       "CancellationToken"},
      {kRuleFloatInResultPath, kTagFloatOk,
       "no float/double in sched/sim/fault result code (integer-scaled "
       "evaluation)"},
      {kRuleOrderedHotPath, kTagColdPath,
       "no std::map/std::set reintroduced into opt/sched/sim without a "
       "cold-path proof"},
      {kRuleMissingCatchAll, kTagCatchOk,
       "every catch chain in serve/ job-boundary code ends in catch (...) "
       "(per-job isolation)"},
      {kRuleUnknownAnnotation, "", "every `// lint:` tag must be a known tag"},
      {kRuleNeedsJustification, "",
       "with --require-justifications, every suppression carries a -- why"},
  };
}

void collect_unordered_names(const LexedFile& file,
                             std::set<std::string>* names) {
  const Tokens& toks = file.tokens;
  std::set<std::string> aliases;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_unordered_container(toks[i]) || !is_punct(toks[i + 1], "<")) {
      continue;
    }
    // `using Wcets = std::unordered_map<...>;` -- remember the alias so
    // `Wcets wcet;` below also registers.
    if (i >= 4 && is_punct(toks[i - 1], "::") && is_punct(toks[i - 3], "=") &&
        toks[i - 4].kind == TokKind::Identifier &&
        i >= 5 && is_ident(toks[i - 5], "using")) {
      aliases.insert(toks[i - 4].text);
      continue;
    }
    std::size_t j = match_forward(toks, i + 1, "<", ">");
    if (j == toks.size()) continue;
    ++j;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::Identifier) {
      names->insert(toks[j].text);
    }
  }
  // One level of alias-typed declarations within the same file.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::Identifier && aliases.count(toks[i].text) &&
        toks[i + 1].kind == TokKind::Identifier) {
      names->insert(toks[i + 1].text);
    }
  }
}

void run_rules(const std::string& path, const LexedFile& file,
               const std::set<std::string>& unordered_names,
               const LintConfig& config, std::vector<Diagnostic>* out) {
  rule_unordered_iter(path, file, unordered_names, out);
  if (!is_allowlisted(path, config.nondet_allowlist)) {
    rule_nondeterminism(path, file, out);
  }
  if (in_scope(path, config.cancel_scopes)) {
    rule_missing_cancel_poll(path, file, out);
  }
  if (in_scope(path, config.integer_result_scopes)) {
    rule_float_in_result_path(path, file, out);
  }
  if (in_scope(path, config.hot_path_scopes)) {
    rule_ordered_hot_path(path, file, out);
  }
  if (in_scope(path, config.catch_scopes)) {
    rule_missing_catch_all(path, file, out);
  }
  rule_annotations(path, file, config, out);
}

}  // namespace ftes::lint
