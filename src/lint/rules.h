// The six project-invariant rules enforced by ftes-lint, plus the two
// annotation hygiene checks.  Each rule is a pure function over one lexed
// file (R1 additionally consumes the tree-wide unordered-name index) that
// appends diagnostics; suppression and baselines are applied by the engine.
//
//   rule id                        suppression tag      protects
//   unordered-iter            (R1) order-insensitive    bit-identical results
//   nondeterminism            (R2) allowlist only       reproducible runs
//   missing-cancel-poll       (R3) cancel-ok            bounded cancel latency
//   float-in-result-path      (R4) float-ok             integer-scaled eval
//   ordered-container-hot-path(R5) cold-path            flattened hot paths
//   missing-catch-all         (R6) catch-ok             per-job isolation
//
// See docs/INVARIANTS.md for the full catalogue (which PR established each
// invariant and what breaking it looks like).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/config.h"
#include "lint/diagnostic.h"
#include "lint/lexer.h"

namespace ftes::lint {

/// Rule ids.
inline constexpr char kRuleUnorderedIter[] = "unordered-iter";
inline constexpr char kRuleNondeterminism[] = "nondeterminism";
inline constexpr char kRuleMissingCancelPoll[] = "missing-cancel-poll";
inline constexpr char kRuleFloatInResultPath[] = "float-in-result-path";
inline constexpr char kRuleOrderedHotPath[] = "ordered-container-hot-path";
inline constexpr char kRuleMissingCatchAll[] = "missing-catch-all";
inline constexpr char kRuleUnknownAnnotation[] = "unknown-annotation";
inline constexpr char kRuleNeedsJustification[] = "annotation-needs-justification";

/// Suppression tags (kRuleNondeterminism is allowlist-gated, not taggable:
/// a clock read is either sanctioned infrastructure or a bug).
inline constexpr char kTagOrderInsensitive[] = "order-insensitive";
inline constexpr char kTagCancelOk[] = "cancel-ok";
inline constexpr char kTagFloatOk[] = "float-ok";
inline constexpr char kTagColdPath[] = "cold-path";
inline constexpr char kTagCatchOk[] = "catch-ok";

/// Maps a rule id to its suppression tag; empty when not suppressible.
[[nodiscard]] std::string suppression_tag(const std::string& rule);

/// One row of `ftes_lint --list-rules`.
struct RuleInfo {
  std::string id;
  std::string tag;  ///< empty = not suppressible by annotation
  std::string summary;
};
[[nodiscard]] std::vector<RuleInfo> rule_table();

/// Pass 1 over every scanned file: collects the declared names of
/// unordered containers (members like `wcet`, locals, one level of
/// `using X = std::unordered_map<...>` aliases).  The ordered set keeps the
/// engine itself deterministic.
void collect_unordered_names(const LexedFile& file,
                             std::set<std::string>* names);

/// Pass 2: runs R1-R5 plus the annotation checks on one file, appending raw
/// (pre-suppression) diagnostics to `out`.
void run_rules(const std::string& path, const LexedFile& file,
               const std::set<std::string>& unordered_names,
               const LintConfig& config, std::vector<Diagnostic>* out);

}  // namespace ftes::lint
