// The ftes-lint engine: loads a source tree, runs the rules in two passes
// (tree-wide unordered-name index, then per-file checks), applies
// suppression annotations, and can mechanically insert missing suppression
// comments (--fix-annotations).
//
// Everything is deterministic: files are visited in sorted path order and
// diagnostics are emitted in (file, line, rule) order, so the tool's output
// and the generated baseline are byte-stable across platforms and runs.
#pragma once

#include <string>
#include <vector>

#include "lint/config.h"
#include "lint/diagnostic.h"

namespace ftes::lint {

struct SourceFile {
  std::string path;  ///< relative to the lint root, '/'-separated
  std::string content;
};

struct LintResult {
  /// Post-suppression findings, sorted by (file, line, rule).
  std::vector<Diagnostic> diagnostics;
  int files_scanned = 0;
  int suppressed = 0;  ///< findings silenced by a matching annotation
};

/// Runs all rules over the given files.
[[nodiscard]] LintResult run_lint(const std::vector<SourceFile>& files,
                                  const LintConfig& config);

/// Loads every C++ source under root/<scan_root> for each configured scan
/// root (missing roots are skipped).  Paths in the result are relative to
/// `root` and sorted.
[[nodiscard]] std::vector<SourceFile> load_tree(const std::string& root,
                                                const LintConfig& config);

/// For every suppressible finding, inserts a suppression comment line above
/// the offending line (matching its indentation) with a TODO justification:
///
///   // lint: <tag> -- TODO(lint): justify this suppression
///
/// Returns the number of insertions; `files` contents are rewritten in
/// place.  Non-suppressible findings (nondeterminism, annotation hygiene)
/// are left alone -- those need a code fix, not a comment.
int fix_annotations(std::vector<SourceFile>* files,
                    const std::vector<Diagnostic>& findings);

}  // namespace ftes::lint
