#include "lint/baseline.h"

#include <algorithm>

namespace ftes::lint {

std::set<std::string> parse_baseline(const std::string& text) {
  std::set<std::string> keys;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string line = text.substr(start, i - start);
      start = i + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t b = line.find_first_not_of(" \t");
      if (b == std::string::npos || line[b] == '#') continue;
      keys.insert(line.substr(b));
    }
  }
  return keys;
}

BaselineSplit apply_baseline(const std::vector<Diagnostic>& diagnostics,
                             const std::set<std::string>& baseline) {
  BaselineSplit split;
  for (const Diagnostic& d : diagnostics) {
    if (baseline.count(baseline_key(d)) > 0) {
      ++split.grandfathered;
    } else {
      split.fresh.push_back(d);
    }
  }
  return split;
}

std::string render_baseline(const std::vector<Diagnostic>& diagnostics) {
  std::set<std::string> keys;
  for (const Diagnostic& d : diagnostics) keys.insert(baseline_key(d));
  std::string out =
      "# ftes-lint baseline: grandfathered findings, one per line as\n"
      "# file|rule|anchor.  Every entry must carry a justifying comment\n"
      "# above it.  This file may only shrink; CI regenerates it with\n"
      "# `ftes_lint --write-baseline` and diffs against this copy.\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

}  // namespace ftes::lint
