#include "arch/tdma_bus.h"

#include <cassert>
#include <stdexcept>

namespace ftes {

TdmaBus TdmaBus::uniform(int node_count, Time slot_length) {
  if (node_count <= 0) throw std::invalid_argument("bus needs >= 1 node");
  if (slot_length <= 0) throw std::invalid_argument("slot length must be > 0");
  std::vector<TdmaSlot> slots;
  slots.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    slots.push_back(TdmaSlot{NodeId{i}, slot_length});
  }
  return from_slots(std::move(slots));
}

TdmaBus TdmaBus::from_slots(std::vector<TdmaSlot> slots) {
  if (slots.empty()) throw std::invalid_argument("empty TDMA round");
  TdmaBus bus;
  bus.slots_ = std::move(slots);
  bus.offsets_.reserve(bus.slots_.size());
  Time at = 0;
  for (const TdmaSlot& s : bus.slots_) {
    if (s.length <= 0) throw std::invalid_argument("slot length must be > 0");
    if (!s.owner.valid()) throw std::invalid_argument("slot without owner");
    bus.offsets_.push_back(at);
    at += s.length;
  }
  bus.round_length_ = at;
  return bus;
}

int TdmaBus::frames_needed(std::int64_t size) const {
  assert(slot_payload_ > 0);
  if (size <= 0) return 1;  // condition values and empty payloads: one frame
  return static_cast<int>((size + slot_payload_ - 1) / slot_payload_);
}

Time TdmaBus::slot_offset(std::size_t slot_index) const {
  assert(slot_index < offsets_.size());
  return offsets_[slot_index];
}

Time TdmaBus::next_slot_start(NodeId sender, Time ready) const {
  assert(round_length_ > 0);
  const Time round_begin = (ready / round_length_) * round_length_;
  // Scan this round and the next; the sender owns at least one slot per
  // round in every valid configuration, otherwise it simply cannot send.
  for (int round = 0; round < 2; ++round) {
    const Time base = round_begin + round * round_length_;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].owner != sender) continue;
      const Time start = base + offsets_[i];
      if (start >= ready) return start;
    }
  }
  throw std::logic_error("sender owns no TDMA slot");
}

Time TdmaBus::transmission_finish(NodeId sender, Time ready,
                                  std::int64_t size) const {
  const int frames = frames_needed(size);
  Time at = ready;
  Time finish = ready;
  for (int f = 0; f < frames; ++f) {
    const Time start = next_slot_start(sender, at);
    // Find the slot we started in to know its length.
    const Time in_round = start % round_length_;
    Time slot_len = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (offsets_[i] == in_round && slots_[i].owner == sender) {
        slot_len = slots_[i].length;
        break;
      }
    }
    assert(slot_len > 0);
    finish = start + slot_len;
    at = finish;
  }
  return finish;
}

Time TdmaBus::worst_case_duration(NodeId sender, std::int64_t size) const {
  // Worst case: readiness occurs just after the sender's slot began, so we
  // wait almost a full round, then occupy `frames` rounds' worth of slots.
  Time slot_len = 0;
  for (const TdmaSlot& s : slots_) {
    if (s.owner == sender) slot_len = s.length;
  }
  if (slot_len == 0) throw std::logic_error("sender owns no TDMA slot");
  const int frames = frames_needed(size);
  return round_length_ + (frames - 1) * round_length_ + slot_len;
}

}  // namespace ftes
