// TDMA broadcast bus in the style of the Time-Triggered Protocol (TTP),
// the communication substrate of DATE'08 Section 2.
//
// Time on the bus is divided into rounds; a round is a fixed sequence of
// slots, one per node (a node may own several slots if the designer assigns
// them).  A node may start transmitting a frame only at the beginning of one
// of its own slots, and a frame must fit into one slot.  Condition values
// (Section 5.2 of the paper) travel as one-slot broadcast frames.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time_types.h"

namespace ftes {

/// One slot of the TDMA round.
struct TdmaSlot {
  NodeId owner;      ///< node allowed to transmit in this slot
  Time length = 0;   ///< slot duration in ticks
};

class TdmaBus {
 public:
  TdmaBus() = default;

  /// Builds a bus whose round contains exactly one slot per node, each of
  /// the given length, in node-id order.  This is the configuration used in
  /// all shipped experiments.
  static TdmaBus uniform(int node_count, Time slot_length);

  /// Builds a bus from an explicit slot sequence (round layout).
  static TdmaBus from_slots(std::vector<TdmaSlot> slots);

  [[nodiscard]] const std::vector<TdmaSlot>& slots() const { return slots_; }
  [[nodiscard]] Time round_length() const { return round_length_; }

  /// Bytes a slot can carry are abstracted away: a message whose worst-case
  /// size fits the protocol occupies exactly one slot of its sender, as in
  /// TTP.  Larger payloads occupy ceil(size/slot_payload) consecutive rounds.
  /// `slot_payload` is the abstract per-slot capacity (same unit as size).
  void set_slot_payload(std::int64_t payload) { slot_payload_ = payload; }
  [[nodiscard]] std::int64_t slot_payload() const { return slot_payload_; }

  /// Number of frames (slots of the sender) needed for `size` payload units.
  [[nodiscard]] int frames_needed(std::int64_t size) const;

  /// Earliest time >= `ready` at which `sender` may begin transmitting,
  /// i.e. the start of the sender's next slot.  O(slots per round).
  [[nodiscard]] Time next_slot_start(NodeId sender, Time ready) const;

  /// Completion time of a transmission of `size` payload units by `sender`
  /// that becomes ready at `ready`: the end of the last slot used.
  [[nodiscard]] Time transmission_finish(NodeId sender, Time ready,
                                         std::int64_t size) const;

  /// Upper bound on (finish - ready) for any ready time: worst-case wait
  /// for the sender's slot plus the frames themselves.  Used by the
  /// conservative worst-case schedule length DP (DESIGN.md Section 4).
  [[nodiscard]] Time worst_case_duration(NodeId sender,
                                         std::int64_t size) const;

  /// Start time of slot `slot_index` within the round beginning at 0.
  [[nodiscard]] Time slot_offset(std::size_t slot_index) const;

 private:
  std::vector<TdmaSlot> slots_;
  std::vector<Time> offsets_;  ///< prefix sums of slot lengths
  Time round_length_ = 0;
  std::int64_t slot_payload_ = 1;
};

}  // namespace ftes
