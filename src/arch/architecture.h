// Distributed hardware architecture of DATE'08 Section 2: a set of
// computation nodes sharing one broadcast TDMA bus.
#pragma once

#include <string>
#include <vector>

#include "arch/tdma_bus.h"
#include "util/time_types.h"

namespace ftes {

/// A computation node: CPU + communication controller.  WCETs are specified
/// per (process, node) in the application model, so the node itself only
/// carries identity and bookkeeping attributes.
struct HwNode {
  std::string name;
};

class Architecture {
 public:
  Architecture() = default;

  /// Convenience: `count` nodes named N1..Ncount plus a uniform TDMA bus
  /// with one `slot_length`-tick slot per node.
  static Architecture homogeneous(int count, Time slot_length);

  NodeId add_node(std::string name);
  void set_bus(TdmaBus bus) { bus_ = std::move(bus); }

  [[nodiscard]] const std::vector<HwNode>& nodes() const { return nodes_; }
  [[nodiscard]] const HwNode& node(NodeId id) const;
  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] const TdmaBus& bus() const { return bus_; }
  [[nodiscard]] TdmaBus& bus() { return bus_; }

  /// All node ids, in index order (handy for range-for in optimizers).
  [[nodiscard]] std::vector<NodeId> node_ids() const;

 private:
  std::vector<HwNode> nodes_;
  TdmaBus bus_;
};

}  // namespace ftes
