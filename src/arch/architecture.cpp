#include "arch/architecture.h"

#include <stdexcept>

namespace ftes {

Architecture Architecture::homogeneous(int count, Time slot_length) {
  Architecture arch;
  for (int i = 0; i < count; ++i) {
    arch.add_node("N" + std::to_string(i + 1));
  }
  arch.set_bus(TdmaBus::uniform(count, slot_length));
  return arch;
}

NodeId Architecture::add_node(std::string name) {
  nodes_.push_back(HwNode{std::move(name)});
  return NodeId{static_cast<std::int32_t>(nodes_.size() - 1)};
}

const HwNode& Architecture::node(NodeId id) const {
  if (!id.valid() || id.get() >= node_count()) {
    throw std::out_of_range("invalid NodeId");
  }
  return nodes_[static_cast<std::size_t>(id.get())];
}

std::vector<NodeId> Architecture::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (int i = 0; i < node_count(); ++i) ids.push_back(NodeId{i});
  return ids;
}

}  // namespace ftes
