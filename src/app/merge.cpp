#include "app/merge.h"

#include <numeric>
#include <stdexcept>
#include <string>

namespace ftes {

Time lcm_period(const std::vector<Time>& periods) {
  if (periods.empty()) throw std::invalid_argument("no periods");
  Time result = 1;
  for (Time t : periods) {
    if (t <= 0) throw std::invalid_argument("period must be > 0");
    const Time g = std::gcd(result, t);
    const Time factor = t / g;
    if (result > kTimeInfinity / factor) {
      throw std::overflow_error("hyperperiod overflow");
    }
    result *= factor;
  }
  return result;
}

Application merge(const std::vector<PeriodicApplication>& apps) {
  std::vector<Time> periods;
  periods.reserve(apps.size());
  for (const PeriodicApplication& a : apps) periods.push_back(a.period);
  const Time hyper = lcm_period(periods);

  Application merged;
  merged.set_period(hyper);
  merged.set_deadline(hyper);

  for (const PeriodicApplication& a : apps) {
    const Time instances = hyper / a.period;
    for (Time j = 0; j < instances; ++j) {
      const std::string suffix = j == 0 ? "" : "#" + std::to_string(j);
      const Time offset = j * a.period;
      // Map original ProcessId -> merged ProcessId for this instance.
      std::vector<ProcessId> remap;
      remap.reserve(a.graph.processes().size());
      for (const Process& p : a.graph.processes()) {
        Process copy = p;
        copy.name += suffix;
        copy.release = p.release + offset;
        if (copy.local_deadline) {
          *copy.local_deadline += offset;
        } else if (a.graph.deadline() < kTimeInfinity &&
                   a.graph.outputs(ProcessId{static_cast<std::int32_t>(
                                       remap.size())})
                       .empty()) {
          // Sink of an application with its own deadline: inherit it.
          copy.local_deadline = offset + a.graph.deadline();
        }
        remap.push_back(merged.add_process(std::move(copy)));
      }
      for (const Message& m : a.graph.messages()) {
        Message copy = m;
        copy.name += suffix;
        copy.src = remap[static_cast<std::size_t>(m.src.get())];
        copy.dst = remap[static_cast<std::size_t>(m.dst.get())];
        merged.add_message(std::move(copy));
      }
    }
  }
  return merged;
}

}  // namespace ftes
