// Merging of several periodic applications A_k into the single virtual
// application A executed with period T = lcm(T_k), as in DATE'08 Section 4.
//
// Each application graph G_k is instantiated T/T_k times; instance j of G_k
// gets release offset j*T_k and (if G_k carries a deadline D_k <= T_k) the
// local deadline j*T_k + D_k on its sink processes.  Process and message
// names are suffixed with "#j" for j > 0 so schedule tables stay readable.
#pragma once

#include <vector>

#include "app/application.h"

namespace ftes {

/// One input to the merge: a graph plus its period.  The application's own
/// deadline (if set, i.e. < kTimeInfinity) becomes a local deadline of its
/// sink processes in every instance.
struct PeriodicApplication {
  Application graph;
  Time period = 0;
};

/// Least common multiple with overflow guard (throws std::overflow_error).
[[nodiscard]] Time lcm_period(const std::vector<Time>& periods);

/// Merges the given periodic applications into one virtual application with
/// period T = lcm of all periods; the global deadline of the result is T.
[[nodiscard]] Application merge(const std::vector<PeriodicApplication>& apps);

}  // namespace ftes
