#include "app/application.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "arch/architecture.h"

namespace ftes {

Time Process::wcet_on(NodeId n) const {
  auto it = wcet.find(n);
  if (it == wcet.end()) {
    throw std::invalid_argument("process '" + name +
                                "' has a mapping restriction on node " +
                                std::to_string(n.get()));
  }
  return it->second;
}

ProcessId Application::add_process(Process p) {
  if (p.name.empty()) p.name = "P" + std::to_string(processes_.size() + 1);
  processes_.push_back(std::move(p));
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  return ProcessId{static_cast<std::int32_t>(processes_.size() - 1)};
}

ProcessId Application::add_process(std::string name,
                                   std::vector<std::pair<NodeId, Time>> wcets,
                                   Time alpha, Time mu, Time chi) {
  Process p;
  p.name = std::move(name);
  for (auto& [node, c] : wcets) p.wcet[node] = c;
  p.alpha = alpha;
  p.mu = mu;
  p.chi = chi;
  return add_process(std::move(p));
}

MessageId Application::add_message(Message m) {
  if (!m.src.valid() || m.src.get() >= process_count() || !m.dst.valid() ||
      m.dst.get() >= process_count()) {
    throw std::invalid_argument("message endpoints out of range");
  }
  if (m.src == m.dst) throw std::invalid_argument("self-message");
  if (m.name.empty()) m.name = "m" + std::to_string(messages_.size() + 1);
  messages_.push_back(std::move(m));
  const MessageId id{static_cast<std::int32_t>(messages_.size() - 1)};
  const Message& stored = messages_.back();
  out_edges_[static_cast<std::size_t>(stored.src.get())].push_back(id);
  in_edges_[static_cast<std::size_t>(stored.dst.get())].push_back(id);
  return id;
}

MessageId Application::connect(ProcessId src, ProcessId dst, std::string name,
                               std::int64_t size) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.name = std::move(name);
  m.size = size;
  return add_message(std::move(m));
}

Process& Application::process(ProcessId id) {
  return const_cast<Process&>(std::as_const(*this).process(id));
}

const Process& Application::process(ProcessId id) const {
  if (!id.valid() || id.get() >= process_count()) {
    throw std::out_of_range("invalid ProcessId");
  }
  return processes_[static_cast<std::size_t>(id.get())];
}

Message& Application::message(MessageId id) {
  return const_cast<Message&>(std::as_const(*this).message(id));
}

const Message& Application::message(MessageId id) const {
  if (!id.valid() || id.get() >= message_count()) {
    throw std::out_of_range("invalid MessageId");
  }
  return messages_[static_cast<std::size_t>(id.get())];
}

const std::vector<MessageId>& Application::inputs(ProcessId p) const {
  return in_edges_.at(static_cast<std::size_t>(p.get()));
}

const std::vector<MessageId>& Application::outputs(ProcessId p) const {
  return out_edges_.at(static_cast<std::size_t>(p.get()));
}

std::vector<ProcessId> Application::predecessors(ProcessId p) const {
  std::vector<ProcessId> result;
  for (MessageId m : inputs(p)) {
    const ProcessId src = message(m).src;
    if (std::find(result.begin(), result.end(), src) == result.end()) {
      result.push_back(src);
    }
  }
  return result;
}

std::vector<ProcessId> Application::successors(ProcessId p) const {
  std::vector<ProcessId> result;
  for (MessageId m : outputs(p)) {
    const ProcessId dst = message(m).dst;
    if (std::find(result.begin(), result.end(), dst) == result.end()) {
      result.push_back(dst);
    }
  }
  return result;
}

std::vector<ProcessId> Application::topological_order() const {
  std::vector<int> indegree(processes_.size(), 0);
  for (const Message& m : messages_) {
    ++indegree[static_cast<std::size_t>(m.dst.get())];
  }
  std::vector<ProcessId> queue;
  for (int i = 0; i < process_count(); ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) queue.push_back(ProcessId{i});
  }
  std::vector<ProcessId> order;
  order.reserve(processes_.size());
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const ProcessId p = queue[head];
    order.push_back(p);
    for (MessageId m : outputs(p)) {
      const ProcessId dst = message(m).dst;
      if (--indegree[static_cast<std::size_t>(dst.get())] == 0) {
        queue.push_back(dst);
      }
    }
  }
  if (order.size() != processes_.size()) {
    throw std::invalid_argument("application graph has a cycle");
  }
  return order;
}

std::vector<ProcessId> Application::roots() const {
  std::vector<ProcessId> result;
  for (int i = 0; i < process_count(); ++i) {
    if (inputs(ProcessId{i}).empty()) result.push_back(ProcessId{i});
  }
  return result;
}

std::vector<ProcessId> Application::sinks() const {
  std::vector<ProcessId> result;
  for (int i = 0; i < process_count(); ++i) {
    if (outputs(ProcessId{i}).empty()) result.push_back(ProcessId{i});
  }
  return result;
}

std::vector<ProcessId> Application::process_ids() const {
  std::vector<ProcessId> ids;
  ids.reserve(processes_.size());
  for (int i = 0; i < process_count(); ++i) ids.push_back(ProcessId{i});
  return ids;
}

void Application::validate(const Architecture& arch) const {
  if (processes_.empty()) throw std::invalid_argument("empty application");
  (void)topological_order();  // throws on cycles
  for (int i = 0; i < process_count(); ++i) {
    const Process& p = processes_[static_cast<std::size_t>(i)];
    if (p.wcet.empty()) {
      throw std::invalid_argument("process '" + p.name +
                                  "' cannot run on any node");
    }
    // Checked in node order: with several invalid entries the error thrown
    // (and thus any message a caller surfaces) must not depend on hash
    // iteration order.
    std::vector<std::pair<NodeId, Time>> entries(
        // lint: order-insensitive -- copied out, then sorted by node below
        p.wcet.begin(), p.wcet.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [node, c] : entries) {
      if (!node.valid() || node.get() >= arch.node_count()) {
        throw std::invalid_argument("process '" + p.name +
                                    "' references unknown node");
      }
      if (c <= 0) {
        throw std::invalid_argument("process '" + p.name +
                                    "' has non-positive WCET");
      }
    }
    if (p.fixed_mapping && !p.can_run_on(*p.fixed_mapping)) {
      throw std::invalid_argument("process '" + p.name +
                                  "' fixed to a restricted node");
    }
    if (p.alpha < 0 || p.mu < 0 || p.chi < 0 || p.release < 0) {
      throw std::invalid_argument("process '" + p.name +
                                  "' has negative overhead/release");
    }
  }
  for (const Message& m : messages_) {
    if (m.size <= 0) {
      throw std::invalid_argument("message '" + m.name +
                                  "' has non-positive size");
    }
  }
  if (deadline_ <= 0) throw std::invalid_argument("non-positive deadline");
}

}  // namespace ftes
