// Application model of DATE'08 Section 4.
//
// A (virtual) application A is a directed acyclic graph G(V, E).  Each node
// is a non-preemptable process with per-node worst-case execution times
// (absence of a WCET entry == mapping restriction, the "X" of the paper's
// Fig. 3c).  Each edge is a message; messages between processes mapped to
// the same node cost nothing extra (folded into the sender's WCET), between
// different nodes they occupy the TDMA bus.
//
// Per-process fault-tolerance overheads: error detection alpha, recovery mu,
// checkpointing chi.  Transparency: a process or message may be declared
// `frozen` (T(v) = frozen) which forces one start time across all fault
// scenarios.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/policy_kind.h"
#include "util/time_types.h"

namespace ftes {

class Architecture;

/// Soft real-time specification ([17]: soft processes contribute a utility
/// that decays with completion time; they may be dropped entirely).  A
/// process without a SoftSpec is hard: it must complete, on time, in every
/// fault scenario.
struct SoftSpec {
  double utility = 1.0;   ///< U0: utility when finishing by soft_deadline
  Time soft_deadline = 0; ///< full utility up to here
  Time window = 1;        ///< linear decay to zero over the window after it
};

struct Process {
  std::string name;

  /// WCET per node; a node missing from the map is a mapping restriction.
  std::unordered_map<NodeId, Time> wcet;

  Time alpha = 0;  ///< error-detection overhead (per execution segment)
  Time mu = 0;     ///< recovery overhead (restore checkpoint / inputs)
  Time chi = 0;    ///< checkpointing overhead (save one checkpoint)

  bool frozen = false;  ///< transparency requirement T(P) = frozen

  /// Designer-fixed mapping (e.g. close to a sensor); optimizers must not
  /// move such processes.
  std::optional<NodeId> fixed_mapping;

  /// Optional local deadline d_local (absolute, within the cycle).
  std::optional<Time> local_deadline;

  /// Soft process marker ([17]); absent == hard process.
  std::optional<SoftSpec> soft;

  /// Designer-fixed fault-tolerance policy kind (Section 6: criticality,
  /// legacy or certification reasons may dictate P(Pi) up front).  The
  /// optimizers keep the kind and only tune its parameters; validation
  /// rejects assignments that override it.
  std::optional<PolicyKind> fixed_policy;

  /// Release offset within the merged hyperperiod (0 for single-period
  /// applications; set by merge() for later instances of shorter-period
  /// application graphs).
  Time release = 0;

  [[nodiscard]] bool can_run_on(NodeId n) const { return wcet.count(n) > 0; }
  [[nodiscard]] Time wcet_on(NodeId n) const;
};

struct Message {
  std::string name;
  ProcessId src;
  ProcessId dst;
  std::int64_t size = 1;  ///< worst-case payload (abstract units)
  bool frozen = false;    ///< transparency requirement T(m) = frozen
};

/// The merged application A = G(V, E) with a global hard deadline D.
class Application {
 public:
  Application() = default;

  ProcessId add_process(Process p);
  MessageId add_message(Message m);

  /// Convenience used by fixtures: process with identical overheads and an
  /// explicit WCET table {node -> wcet}.
  ProcessId add_process(std::string name,
                        std::vector<std::pair<NodeId, Time>> wcets,
                        Time alpha, Time mu, Time chi);

  /// Convenience edge with size 1.
  MessageId connect(ProcessId src, ProcessId dst, std::string name = {},
                    std::int64_t size = 1);

  void set_deadline(Time d) { deadline_ = d; }
  [[nodiscard]] Time deadline() const { return deadline_; }

  void set_period(Time t) { period_ = t; }
  [[nodiscard]] Time period() const { return period_; }

  [[nodiscard]] const std::vector<Process>& processes() const {
    return processes_;
  }
  [[nodiscard]] const std::vector<Message>& messages() const {
    return messages_;
  }
  [[nodiscard]] Process& process(ProcessId id);
  [[nodiscard]] const Process& process(ProcessId id) const;
  [[nodiscard]] Message& message(MessageId id);
  [[nodiscard]] const Message& message(MessageId id) const;
  [[nodiscard]] int process_count() const {
    return static_cast<int>(processes_.size());
  }
  [[nodiscard]] int message_count() const {
    return static_cast<int>(messages_.size());
  }

  /// Incoming / outgoing message ids of a process (edge adjacency).
  [[nodiscard]] const std::vector<MessageId>& inputs(ProcessId p) const;
  [[nodiscard]] const std::vector<MessageId>& outputs(ProcessId p) const;

  /// Predecessor / successor process ids (deduplicated, stable order).
  [[nodiscard]] std::vector<ProcessId> predecessors(ProcessId p) const;
  [[nodiscard]] std::vector<ProcessId> successors(ProcessId p) const;

  /// Topological order of processes; throws std::invalid_argument if the
  /// graph has a cycle.
  [[nodiscard]] std::vector<ProcessId> topological_order() const;

  /// Source processes (no inputs).
  [[nodiscard]] std::vector<ProcessId> roots() const;
  /// Sink processes (no outputs).
  [[nodiscard]] std::vector<ProcessId> sinks() const;

  /// Validates the model against an architecture: acyclic, every process
  /// runs on >= 1 node, fixed mappings respect restrictions, deadline > 0.
  /// Throws std::invalid_argument with a precise message on violation.
  void validate(const Architecture& arch) const;

  /// All process ids in index order.
  [[nodiscard]] std::vector<ProcessId> process_ids() const;

 private:
  std::vector<Process> processes_;
  std::vector<Message> messages_;
  std::vector<std::vector<MessageId>> in_edges_;
  std::vector<std::vector<MessageId>> out_edges_;
  Time deadline_ = kTimeInfinity;
  Time period_ = 0;
};

}  // namespace ftes
