#include "sched/schedule_table.h"

#include <algorithm>
#include <sstream>

namespace ftes {

int CondRegistry::id(CopyRef copy, int fault_index, const std::string& name) {
  const auto key = std::make_pair(
      std::make_pair(copy.process.get(), copy.copy), fault_index);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const int new_id = static_cast<int>(labels_.size());
  ids_[key] = new_id;
  labels_.push_back("F_" + name + "^" + std::to_string(fault_index));
  copies_.push_back(copy);
  fault_indices_.push_back(fault_index);
  return new_id;
}

int CondRegistry::find(CopyRef copy, int fault_index) const {
  const auto key = std::make_pair(
      std::make_pair(copy.process.get(), copy.copy), fault_index);
  auto it = ids_.find(key);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& CondRegistry::label(int id) const {
  return labels_.at(static_cast<std::size_t>(id));
}

CopyRef CondRegistry::copy_of(int id) const {
  return copies_.at(static_cast<std::size_t>(id));
}

int CondRegistry::fault_index_of(int id) const {
  return fault_indices_.at(static_cast<std::size_t>(id));
}

std::string CondRegistry::render(const Guard& guard) const {
  if (guard.literals().empty()) return "true";
  std::ostringstream out;
  bool first = true;
  for (const Literal& lit : guard.literals()) {
    if (!first) out << " & ";
    first = false;
    if (!lit.faulted) out << "!";
    out << label(lit.vertex);
  }
  return out.str();
}

int ScheduleTables::total_entries() const {
  int count = 0;
  for (const TableRows& rows : node_rows) {
    for (const auto& [name, entries] : rows) count += static_cast<int>(entries.size());
  }
  for (const auto& [name, entries] : bus_rows) {
    count += static_cast<int>(entries.size());
  }
  return count;
}

namespace {

void render_rows(std::ostringstream& out, const TableRows& rows,
                 const CondRegistry& conds) {
  for (const auto& [name, entries] : rows) {
    out << "  " << name << ":";
    for (const TableEntry& e : entries) {
      out << "  " << e.start;
      if (!e.label.empty()) out << " (" << e.label << ")";
      out << " {" << conds.render(e.guard) << "}";
    }
    out << "\n";
  }
}

}  // namespace

std::string ScheduleTables::to_text(const Architecture& arch) const {
  std::ostringstream out;
  for (std::size_t n = 0; n < node_rows.size(); ++n) {
    out << "Schedule table for " << arch.node(NodeId{static_cast<std::int32_t>(n)}).name
        << ":\n";
    render_rows(out, node_rows[n], conds);
  }
  out << "Bus schedule:\n";
  render_rows(out, bus_rows, conds);
  out << "WCSL = " << wcsl << " over " << scenario_count << " scenarios, "
      << total_entries() << " table entries\n";
  return out.str();
}

}  // namespace ftes
