#include "sched/wcsl.h"

#include <algorithm>
#include <vector>

#include "fault/recovery.h"
#include "graph/digraph.h"

namespace ftes {

bool WcslResult::meets_deadlines(const Application& app) const {
  if (makespan > app.deadline()) return false;
  for (int i = 0; i < app.process_count(); ++i) {
    const Process& p = app.process(ProcessId{i});
    if (p.local_deadline &&
        process_finish[static_cast<std::size_t>(i)] > *p.local_deadline) {
      return false;
    }
  }
  return true;
}

WcslDag build_wcsl_dag(const Application& app, const Architecture& arch,
                       const PolicyAssignment& assignment, int k,
                       const ListSchedule& schedule) {
  WcslDag a;
  a.copy_count = static_cast<int>(schedule.copies.size());
  a.msg_count = static_cast<int>(schedule.messages.size());
  const int total = a.copy_count + a.msg_count;
  a.g = Digraph(total);

  // Copy vertices are prefix-indexed by construction of the list scheduler
  // (copy j of process p sits at schedule.first_copy[p] + j), so the
  // (process, copy) -> vertex lookup is pure arithmetic; this builder runs
  // once per objective evaluation, so no maps and no scan here.
  std::vector<int> first_copy(
      static_cast<std::size_t>(app.process_count()) + 1, 0);
  for (int p = 0; p < app.process_count(); ++p) {
    first_copy[static_cast<std::size_t>(p) + 1] =
        first_copy[static_cast<std::size_t>(p)] +
        assignment.plan(ProcessId{p}).copy_count();
  }
  const auto cv = [&](std::int32_t process, int copy) {
    return first_copy[static_cast<std::size_t>(process)] + copy;
  };

  // Data edges.  Cross-node messages go through their transmission vertex;
  // co-located flow is a direct edge.  Same flat scheme for the
  // (message, source copy) -> transmission lookup.
  std::vector<int> first_tx(static_cast<std::size_t>(app.message_count()) + 1,
                            0);
  for (int mi = 0; mi < app.message_count(); ++mi) {
    first_tx[static_cast<std::size_t>(mi) + 1] =
        first_tx[static_cast<std::size_t>(mi)] +
        assignment.plan(app.message(MessageId{mi}).src).copy_count();
  }
  std::vector<int> tx_of(
      static_cast<std::size_t>(first_tx[static_cast<std::size_t>(
          app.message_count())]),
      -1);
  for (int m = 0; m < a.msg_count; ++m) {
    const ScheduledMessage& sm = schedule.messages[static_cast<std::size_t>(m)];
    tx_of[static_cast<std::size_t>(
        first_tx[static_cast<std::size_t>(sm.msg.get())] + sm.src_copy)] = m;
    a.g.add_edge(cv(app.message(sm.msg).src.get(), sm.src_copy),
                 a.msg_vertex(m));
  }
  for (int mi = 0; mi < app.message_count(); ++mi) {
    const Message& msg = app.message(MessageId{mi});
    const ProcessPlan& sp = assignment.plan(msg.src);
    const ProcessPlan& dp = assignment.plan(msg.dst);
    for (int sj = 0; sj < sp.copy_count(); ++sj) {
      const int tx = tx_of[static_cast<std::size_t>(
          first_tx[static_cast<std::size_t>(mi)] + sj)];
      for (int dj = 0; dj < dp.copy_count(); ++dj) {
        const int dst_v = cv(msg.dst.get(), dj);
        if (tx >= 0) {
          a.g.add_edge(a.msg_vertex(tx), dst_v);
        } else {
          a.g.add_edge(cv(msg.src.get(), sj), dst_v);
        }
      }
    }
  }

  // Resource edges: static order on each node and on the bus.
  for (const auto& order : schedule.node_order) {
    for (std::size_t i = 1; i < order.size(); ++i) {
      a.g.add_edge(order[i - 1], order[i]);
    }
  }
  for (std::size_t i = 1; i < schedule.bus_order.size(); ++i) {
    a.g.add_edge(a.msg_vertex(schedule.bus_order[i - 1]),
                 a.msg_vertex(schedule.bus_order[i]));
  }

  // Per-vertex weight tables w_v(f), f = 0..k.
  a.weight.assign(static_cast<std::size_t>(total),
                  std::vector<Time>(static_cast<std::size_t>(k) + 1, 0));
  a.release.assign(static_cast<std::size_t>(total), 0);
  for (int i = 0; i < a.copy_count; ++i) {
    const ScheduledCopy& sc = schedule.copies[static_cast<std::size_t>(i)];
    const Process& proc = app.process(sc.ref.process);
    const CopyPlan& cp = assignment.plan(sc.ref.process)
                             .copies.at(static_cast<std::size_t>(sc.ref.copy));
    RecoveryParams params{proc.wcet_on(sc.node), proc.alpha, proc.mu,
                          proc.chi};
    a.release[static_cast<std::size_t>(i)] = proc.release;
    for (int f = 0; f <= k; ++f) {
      Time w;
      if (cp.checkpoints >= 1) {
        w = checkpointed_exec_time(params, cp.checkpoints,
                                   std::min(f, cp.recoveries));
      } else {
        w = replica_exec_time(params);
      }
      a.weight[static_cast<std::size_t>(i)][static_cast<std::size_t>(f)] = w;
    }
  }
  for (int m = 0; m < a.msg_count; ++m) {
    const ScheduledMessage& sm = schedule.messages[static_cast<std::size_t>(m)];
    const Time w =
        arch.bus().worst_case_duration(sm.sender, app.message(sm.msg).size);
    for (int f = 0; f <= k; ++f) {
      a.weight[static_cast<std::size_t>(a.msg_vertex(m))]
              [static_cast<std::size_t>(f)] = w;
    }
  }
  return a;
}

Time wcsl_dp_row(const WcslDag& dag, int v,
                 const std::vector<std::vector<Time>>& L, int k,
                 std::vector<Time>& row) {
  // best_in[b] = max over predecessors p of L(p, b); nondecreasing in b by
  // construction of L.  Faults spent on a transmission never help the
  // adversary (constant weight), so the DP naturally assigns f = 0 there.
  std::vector<Time> best_in(static_cast<std::size_t>(k) + 1, 0);
  for (int p : dag.g.predecessors(v)) {
    for (int b = 0; b <= k; ++b) {
      best_in[static_cast<std::size_t>(b)] = std::max(
          best_in[static_cast<std::size_t>(b)],
          L[static_cast<std::size_t>(p)][static_cast<std::size_t>(b)]);
    }
  }
  row.assign(static_cast<std::size_t>(k) + 1, 0);
  for (int b = 0; b <= k; ++b) {
    Time best = 0;
    for (int f = 0; f <= b; ++f) {
      const Time start =
          std::max(dag.release[static_cast<std::size_t>(v)],
                   best_in[static_cast<std::size_t>(b - f)]);
      best = std::max(best, start + dag.weight[static_cast<std::size_t>(v)]
                                              [static_cast<std::size_t>(f)]);
    }
    row[static_cast<std::size_t>(b)] = best;
  }
  return best_in[static_cast<std::size_t>(k)];
}

namespace {

void fill_result_vertex(WcslResult& result, const ListSchedule& schedule,
                        const WcslDag& a, int v, Time worst_start,
                        Time worst_finish) {
  result.makespan = std::max(result.makespan, worst_finish);
  if (v < a.copy_count) {
    const ScheduledCopy& sc = schedule.copies[static_cast<std::size_t>(v)];
    auto& pf =
        result.process_finish[static_cast<std::size_t>(sc.ref.process.get())];
    pf = std::max(pf, worst_finish);
    result.copy_worst_start[static_cast<std::size_t>(v)] = worst_start;
    result.copy_worst_finish[static_cast<std::size_t>(v)] = worst_finish;
  } else {
    result.msg_worst_ready[static_cast<std::size_t>(v - a.copy_count)] =
        worst_start;
  }
}

WcslResult make_result(const Application& app, const WcslDag& a) {
  WcslResult result;
  result.process_finish.assign(static_cast<std::size_t>(app.process_count()),
                               0);
  result.copy_worst_start.assign(static_cast<std::size_t>(a.copy_count), 0);
  result.copy_worst_finish.assign(static_cast<std::size_t>(a.copy_count), 0);
  result.msg_worst_ready.assign(static_cast<std::size_t>(a.msg_count), 0);
  return result;
}

}  // namespace

WcslResult wcsl_result_from_rows(const Application& app,
                                 const ListSchedule& schedule,
                                 const WcslDag& dag,
                                 const std::vector<std::vector<Time>>& L,
                                 int k) {
  WcslResult result = make_result(app, dag);
  for (int v = 0; v < dag.g.vertex_count(); ++v) {
    Time in_k = 0;
    for (int p : dag.g.predecessors(v)) {
      in_k = std::max(
          in_k, L[static_cast<std::size_t>(p)][static_cast<std::size_t>(k)]);
    }
    const Time worst_start =
        std::max(dag.release[static_cast<std::size_t>(v)], in_k);
    const Time worst =
        L[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    fill_result_vertex(result, schedule, dag, v, worst_start, worst);
  }
  return result;
}

WcslResult worst_case_schedule_length(const Application& app,
                                      const Architecture& arch,
                                      const PolicyAssignment& assignment,
                                      const FaultModel& model,
                                      const ListSchedule& schedule) {
  model.validate();
  const int k = model.k;
  const WcslDag a = build_wcsl_dag(app, arch, assignment, k, schedule);
  const int total = a.g.vertex_count();

  // Budgeted longest-path DP in topological order (one wcsl_dp_row call per
  // vertex).
  std::vector<std::vector<Time>> L(static_cast<std::size_t>(total));
  WcslResult result = make_result(app, a);

  for (int v : a.g.topological_order()) {
    const Time in_k =
        wcsl_dp_row(a, v, L, k, L[static_cast<std::size_t>(v)]);
    const Time worst =
        L[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    const Time worst_start =
        std::max(a.release[static_cast<std::size_t>(v)], in_k);
    fill_result_vertex(result, schedule, a, v, worst_start, worst);
  }
  return result;
}

WcslResult worst_case_transparent(const Application& app,
                                  const Architecture& arch,
                                  const PolicyAssignment& assignment,
                                  const FaultModel& model,
                                  const ListSchedule& schedule) {
  model.validate();
  const int k = model.k;
  const WcslDag a = build_wcsl_dag(app, arch, assignment, k, schedule);
  const int total = a.g.vertex_count();

  // Transparent (root-schedule) analysis: the start of every vertex must
  // hold in *every* scenario, and every vertex must be able to absorb all k
  // faults locally inside its slack.  Budgets therefore do not split along
  // a path: plain longest path with full-k weights.
  std::vector<Time> start(static_cast<std::size_t>(total), 0);
  std::vector<Time> finish(static_cast<std::size_t>(total), 0);
  WcslResult result = make_result(app, a);

  for (int v : a.g.topological_order()) {
    Time s = a.release[static_cast<std::size_t>(v)];
    for (int p : a.g.predecessors(v)) {
      s = std::max(s, finish[static_cast<std::size_t>(p)]);
    }
    start[static_cast<std::size_t>(v)] = s;
    finish[static_cast<std::size_t>(v)] =
        s + a.weight[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    fill_result_vertex(result, schedule, a, v, s,
                       finish[static_cast<std::size_t>(v)]);
  }
  return result;
}

WcslResult evaluate_wcsl(const Application& app, const Architecture& arch,
                         const PolicyAssignment& assignment,
                         const FaultModel& model) {
  const ListSchedule schedule = list_schedule(app, arch, assignment);
  return worst_case_schedule_length(app, arch, assignment, model, schedule);
}

}  // namespace ftes
