#include "sched/wcsl.h"

#include <algorithm>
#include <map>

#include "fault/recovery.h"
#include "graph/digraph.h"

namespace ftes {

bool WcslResult::meets_deadlines(const Application& app) const {
  if (makespan > app.deadline()) return false;
  for (int i = 0; i < app.process_count(); ++i) {
    const Process& p = app.process(ProcessId{i});
    if (p.local_deadline &&
        process_finish[static_cast<std::size_t>(i)] > *p.local_deadline) {
      return false;
    }
  }
  return true;
}

namespace {

/// The resource-augmented schedule DAG shared by both analyses: vertices
/// are copies (0..copy_count) then transmissions; edges are data
/// precedences plus per-node / bus static orders; weight[v][f] is the
/// execution time of v when f faults strike it (capped at its recoveries).
struct Augmented {
  Digraph g;
  int copy_count = 0;
  int msg_count = 0;
  std::vector<std::vector<Time>> weight;
  std::vector<Time> release;

  [[nodiscard]] int msg_vertex(int m) const { return copy_count + m; }
};

Augmented build_augmented(const Application& app, const Architecture& arch,
                          const PolicyAssignment& assignment, int k,
                          const ListSchedule& schedule) {
  Augmented a;
  a.copy_count = static_cast<int>(schedule.copies.size());
  a.msg_count = static_cast<int>(schedule.messages.size());
  const int total = a.copy_count + a.msg_count;
  a.g = Digraph(total);

  std::map<std::pair<std::int32_t, int>, int> copy_vertex;
  for (int i = 0; i < a.copy_count; ++i) {
    const ScheduledCopy& sc = schedule.copies[static_cast<std::size_t>(i)];
    copy_vertex[{sc.ref.process.get(), sc.ref.copy}] = i;
  }

  // Data edges.  Cross-node messages go through their transmission vertex;
  // co-located flow is a direct edge.
  std::map<std::pair<std::int32_t, int>, int> tx_of;  // (msg, src copy) -> m
  for (int m = 0; m < a.msg_count; ++m) {
    const ScheduledMessage& sm = schedule.messages[static_cast<std::size_t>(m)];
    tx_of[{sm.msg.get(), sm.src_copy}] = m;
    a.g.add_edge(copy_vertex.at({app.message(sm.msg).src.get(), sm.src_copy}),
                 a.msg_vertex(m));
  }
  for (int mi = 0; mi < app.message_count(); ++mi) {
    const Message& msg = app.message(MessageId{mi});
    const ProcessPlan& sp = assignment.plan(msg.src);
    const ProcessPlan& dp = assignment.plan(msg.dst);
    for (int sj = 0; sj < sp.copy_count(); ++sj) {
      auto tx = tx_of.find({mi, sj});
      for (int dj = 0; dj < dp.copy_count(); ++dj) {
        const int dst_v = copy_vertex.at({msg.dst.get(), dj});
        if (tx != tx_of.end()) {
          a.g.add_edge(a.msg_vertex(tx->second), dst_v);
        } else {
          a.g.add_edge(copy_vertex.at({msg.src.get(), sj}), dst_v);
        }
      }
    }
  }

  // Resource edges: static order on each node and on the bus.
  for (const auto& order : schedule.node_order) {
    for (std::size_t i = 1; i < order.size(); ++i) {
      a.g.add_edge(order[i - 1], order[i]);
    }
  }
  for (std::size_t i = 1; i < schedule.bus_order.size(); ++i) {
    a.g.add_edge(a.msg_vertex(schedule.bus_order[i - 1]),
                 a.msg_vertex(schedule.bus_order[i]));
  }

  // Per-vertex weight tables w_v(f), f = 0..k.
  a.weight.assign(static_cast<std::size_t>(total),
                  std::vector<Time>(static_cast<std::size_t>(k) + 1, 0));
  a.release.assign(static_cast<std::size_t>(total), 0);
  for (int i = 0; i < a.copy_count; ++i) {
    const ScheduledCopy& sc = schedule.copies[static_cast<std::size_t>(i)];
    const Process& proc = app.process(sc.ref.process);
    const CopyPlan& cp = assignment.plan(sc.ref.process)
                             .copies.at(static_cast<std::size_t>(sc.ref.copy));
    RecoveryParams params{proc.wcet_on(sc.node), proc.alpha, proc.mu,
                          proc.chi};
    a.release[static_cast<std::size_t>(i)] = proc.release;
    for (int f = 0; f <= k; ++f) {
      Time w;
      if (cp.checkpoints >= 1) {
        w = checkpointed_exec_time(params, cp.checkpoints,
                                   std::min(f, cp.recoveries));
      } else {
        w = replica_exec_time(params);
      }
      a.weight[static_cast<std::size_t>(i)][static_cast<std::size_t>(f)] = w;
    }
  }
  for (int m = 0; m < a.msg_count; ++m) {
    const ScheduledMessage& sm = schedule.messages[static_cast<std::size_t>(m)];
    const Time w =
        arch.bus().worst_case_duration(sm.sender, app.message(sm.msg).size);
    for (int f = 0; f <= k; ++f) {
      a.weight[static_cast<std::size_t>(a.msg_vertex(m))]
              [static_cast<std::size_t>(f)] = w;
    }
  }
  return a;
}

void fill_result_vertex(WcslResult& result, const ListSchedule& schedule,
                        const Augmented& a, int v, Time worst_start,
                        Time worst_finish) {
  result.makespan = std::max(result.makespan, worst_finish);
  if (v < a.copy_count) {
    const ScheduledCopy& sc = schedule.copies[static_cast<std::size_t>(v)];
    auto& pf =
        result.process_finish[static_cast<std::size_t>(sc.ref.process.get())];
    pf = std::max(pf, worst_finish);
    result.copy_worst_start[static_cast<std::size_t>(v)] = worst_start;
    result.copy_worst_finish[static_cast<std::size_t>(v)] = worst_finish;
  } else {
    result.msg_worst_ready[static_cast<std::size_t>(v - a.copy_count)] =
        worst_start;
  }
}

WcslResult make_result(const Application& app, const Augmented& a) {
  WcslResult result;
  result.process_finish.assign(static_cast<std::size_t>(app.process_count()),
                               0);
  result.copy_worst_start.assign(static_cast<std::size_t>(a.copy_count), 0);
  result.copy_worst_finish.assign(static_cast<std::size_t>(a.copy_count), 0);
  result.msg_worst_ready.assign(static_cast<std::size_t>(a.msg_count), 0);
  return result;
}

}  // namespace

WcslResult worst_case_schedule_length(const Application& app,
                                      const Architecture& arch,
                                      const PolicyAssignment& assignment,
                                      const FaultModel& model,
                                      const ListSchedule& schedule) {
  model.validate();
  const int k = model.k;
  const Augmented a = build_augmented(app, arch, assignment, k, schedule);
  const int total = a.g.vertex_count();

  // Budgeted longest-path DP in topological order.
  // best_in[v][b] = max over predecessors p of L(p, b); L(v,b) computed from
  // it.  Faults spent on a transmission never help the adversary (constant
  // weight), so the DP naturally assigns f = 0 there.
  std::vector<std::vector<Time>> L(
      static_cast<std::size_t>(total),
      std::vector<Time>(static_cast<std::size_t>(k) + 1, 0));
  WcslResult result = make_result(app, a);

  for (int v : a.g.topological_order()) {
    std::vector<Time> best_in(static_cast<std::size_t>(k) + 1, 0);
    for (int p : a.g.predecessors(v)) {
      for (int b = 0; b <= k; ++b) {
        best_in[static_cast<std::size_t>(b)] = std::max(
            best_in[static_cast<std::size_t>(b)],
            L[static_cast<std::size_t>(p)][static_cast<std::size_t>(b)]);
      }
    }
    // best_in is nondecreasing in b by construction of L.
    for (int b = 0; b <= k; ++b) {
      Time best = 0;
      for (int f = 0; f <= b; ++f) {
        const Time start =
            std::max(a.release[static_cast<std::size_t>(v)],
                     best_in[static_cast<std::size_t>(b - f)]);
        best = std::max(best, start + a.weight[static_cast<std::size_t>(v)]
                                              [static_cast<std::size_t>(f)]);
      }
      L[static_cast<std::size_t>(v)][static_cast<std::size_t>(b)] = best;
    }
    const Time worst =
        L[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    const Time worst_start = std::max(a.release[static_cast<std::size_t>(v)],
                                      best_in[static_cast<std::size_t>(k)]);
    fill_result_vertex(result, schedule, a, v, worst_start, worst);
  }
  return result;
}

WcslResult worst_case_transparent(const Application& app,
                                  const Architecture& arch,
                                  const PolicyAssignment& assignment,
                                  const FaultModel& model,
                                  const ListSchedule& schedule) {
  model.validate();
  const int k = model.k;
  const Augmented a = build_augmented(app, arch, assignment, k, schedule);
  const int total = a.g.vertex_count();

  // Transparent (root-schedule) analysis: the start of every vertex must
  // hold in *every* scenario, and every vertex must be able to absorb all k
  // faults locally inside its slack.  Budgets therefore do not split along
  // a path: plain longest path with full-k weights.
  std::vector<Time> start(static_cast<std::size_t>(total), 0);
  std::vector<Time> finish(static_cast<std::size_t>(total), 0);
  WcslResult result = make_result(app, a);

  for (int v : a.g.topological_order()) {
    Time s = a.release[static_cast<std::size_t>(v)];
    for (int p : a.g.predecessors(v)) {
      s = std::max(s, finish[static_cast<std::size_t>(p)]);
    }
    start[static_cast<std::size_t>(v)] = s;
    finish[static_cast<std::size_t>(v)] =
        s + a.weight[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
    fill_result_vertex(result, schedule, a, v, s,
                       finish[static_cast<std::size_t>(v)]);
  }
  return result;
}

WcslResult evaluate_wcsl(const Application& app, const Architecture& arch,
                         const PolicyAssignment& assignment,
                         const FaultModel& model) {
  const ListSchedule schedule = list_schedule(app, arch, assignment);
  return worst_case_schedule_length(app, arch, assignment, model, schedule);
}

}  // namespace ftes
