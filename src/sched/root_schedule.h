// Root schedules: fully transparent recovery (Kandasamy et al. [19],
// generalized to k faults as in the group's follow-up work [16]).
//
// Where the conditional scheduler (sched/cond_scheduler.h) emits one
// activation time per condition conjunction, a *root schedule* pins every
// copy and every transmission to a single start time that holds in every
// admissible fault scenario -- the degenerate "everything frozen" point of
// the transparency spectrum.  Recovery happens inside the idle slack left
// between a copy's worst-case finish and the next fixed start on the same
// resource, so no other node ever observes a fault (maximal fault
// containment and debugability, maximal schedule-length cost; the paper's
// Section 3.3 trade-off in its extreme).
//
// Construction: take the fault-free list schedule's static orders, then pin
// every copy/transmission to its start under the *transparent timing law*
// (sched/wcsl.h's worst_case_transparent): since any k faults may hit any
// stage in some scenario, budgets do not split along paths -- every vertex
// is pinned after its predecessors' full-k worst finishes and carries slack
// for k local faults.  validate_root_schedule re-checks the result scenario
// by scenario.
#pragma once

#include <string>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "sched/list_scheduler.h"
#include "sched/wcsl.h"

namespace ftes {

/// One pinned execution slot of the root schedule.
struct RootSlot {
  CopyRef ref;
  NodeId node;
  Time start = 0;        ///< fixed start, identical in every scenario
  Time worst_finish = 0; ///< start + E(n, k_usable)
  Time slack = 0;        ///< idle time to the next fixed start on the node
};

struct RootMessageSlot {
  MessageId msg;
  int src_copy = 0;
  NodeId sender;
  Time ready = 0;  ///< pinned worst-case ready time
  Time start = 0;  ///< TDMA-aligned fixed transmission start
  Time finish = 0;
};

struct RootSchedule {
  std::vector<RootSlot> slots;          ///< all copies, pinned
  std::vector<RootMessageSlot> messages;
  Time wcsl = 0;

  /// Activation count: one entry per copy/message -- the "table size" of a
  /// root schedule, to contrast with ScheduleTables::total_entries().
  [[nodiscard]] int total_entries() const {
    return static_cast<int>(slots.size() + messages.size());
  }

  [[nodiscard]] std::string to_text(const Application& app,
                                    const Architecture& arch) const;
};

/// Builds the root schedule for a mapped policy assignment.
[[nodiscard]] RootSchedule build_root_schedule(const Application& app,
                                               const Architecture& arch,
                                               const PolicyAssignment& assignment,
                                               const FaultModel& model);

/// Property check over *all* admissible scenarios (exponential in k; use on
/// small instances): in every scenario each copy's recovery fits inside its
/// slack, messages are ready by their pinned transmission, and the deadline
/// holds.  Returns human-readable violations.
struct RootValidation {
  bool ok = true;
  std::vector<std::string> violations;
};

[[nodiscard]] RootValidation validate_root_schedule(
    const Application& app, const Architecture& arch,
    const PolicyAssignment& assignment, const FaultModel& model,
    const RootSchedule& root);

}  // namespace ftes
