// Conditional scheduling of fault-tolerant applications into quasi-static
// schedule tables (DATE'08 Section 5).
//
// The generator walks the full fault-scenario tree (every distribution of
// at most k faults over the copies of the policy assignment) and simulates
// the distributed quasi-static execution of each scenario with one
// deterministic list-scheduling policy.  Determinism gives the quasi-static
// property for free: two scenarios that share a condition-history prefix
// make identical decisions up to the divergence point, so the per-scenario
// activations merge into consistent table columns.  Column guards are the
// intersection of the revealed condition values over all scenarios that
// produce the same activation -- exactly the minimal conjunctions of the
// paper's Fig. 6.
//
// Transparency (frozen processes/messages) is honoured by a fixpoint: the
// start of a frozen item is pinned to the maximum over all scenarios of its
// natural start, and scenarios are re-simulated until no pin moves.  Frozen
// messages are always transmitted on the bus (even between co-located
// processes) so their slot is observable in every scenario, as in the
// paper's Fig. 6 where frozen m3 occupies a bus slot at t = 120.
//
// Condition values are broadcast on the TDMA bus after the producing
// execution segment terminates (Section 5.2); remote nodes learn a copy's
// death only through such broadcasts.
//
// Scope note: checkpointing/re-execution chains and frozen sync nodes are
// exact; consumers of *replicated* producers wait until every copy has
// either delivered or is known dead (the conservative join of DESIGN.md §4).
#pragma once

#include <map>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "fault/scenario.h"
#include "sched/schedule_table.h"
#include "util/cancellation.h"

namespace ftes {

class ThreadPool;

/// Execution of one copy within one scenario.
struct ExecTrace {
  CopyRef copy;
  Time start = 0;
  Time end = 0;  ///< completion (survived) or node-release on death
  bool died = false;
  int faults = 0;
  std::vector<Time> attempt_starts;  ///< absolute; [0] == start
};

/// One bus transmission within one scenario.
struct TxTrace {
  bool is_condition = false;
  MessageId msg;      ///< valid for data / frozen-sync transmissions
  int src_copy = -1;  ///< -1 for frozen-sync transmissions
  int cond_id = -1;   ///< valid for condition broadcasts
  bool value = false; ///< broadcast condition value
  NodeId sender;
  Time ready = 0;
  Time start = 0;
  Time finish = 0;
};

/// A revealed condition value (global timeline).
struct Reveal {
  int cond_id = -1;
  bool value = false;
  Time at = 0;
};

struct ScenarioTrace {
  FaultScenario scenario;
  std::vector<ExecTrace> execs;
  std::vector<TxTrace> txs;
  std::vector<Reveal> reveals;
  Time makespan = 0;
};

struct CondScheduleOptions {
  /// Guard against the exponential scenario tree.
  int max_scenarios = 200000;
  /// Fixpoint iteration cap for the frozen-start pinning.
  int max_fixpoint_iterations = 64;
  /// When false, transparency flags in the application are ignored
  /// (performance-optimal schedules; used as the 0%-frozen ablation point).
  bool respect_transparency = true;
  /// Schedule condition-value broadcasts on the bus (Section 5.2).  Turning
  /// them off models idealized signalling: remote nodes learn conditions
  /// (including copy deaths) instantly.  Used by ablations and by tests
  /// comparing against the WCSL DP, which ignores broadcast contention.
  bool schedule_condition_broadcasts = true;
  /// Concurrent per-scenario simulations / table-record extractions
  /// (1 = serial; 0 = all hardware threads).  Scenarios are independent
  /// within a fixpoint iteration and results are collected in scenario
  /// order, so the output is identical for every thread count.
  int threads = 1;
  /// Pool supplying the helper threads; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation: polled per simulated scenario and per
  /// extracted trace.  Tables built from a scenario subset would be wrong
  /// (not partial), so the generator throws CancelledError when the token
  /// fires.  nullptr = never cancelled.
  CancellationToken* cancel = nullptr;
};

struct CondScheduleResult {
  ScheduleTables tables;
  std::vector<ScenarioTrace> traces;
  /// Worst-case completion over all scenarios.
  Time wcsl = 0;
  int scenario_count = 0;
  /// Pinned start of every frozen copy, keyed by display label.
  // lint: cold-path -- result metadata built once per schedule; ordered so
  // transparency reports print deterministically
  std::map<std::string, Time> frozen_starts;
};

[[nodiscard]] CondScheduleResult conditional_schedule(
    const Application& app, const Architecture& arch,
    const PolicyAssignment& assignment, const FaultModel& model,
    const CondScheduleOptions& options = {});

}  // namespace ftes
