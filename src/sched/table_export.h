// Export of synthesized schedule tables.
//
// Two formats:
//   * JSON -- for tooling and inspection (one object per node, rows keyed by
//     name, entries {start, label, guard: [{cond, value}]});
//   * C source -- the deployable artifact: a constant dispatch table per
//     node for the distributed run-time scheduler of Section 5.2 (each
//     entry: row id, start tick, guard as an array of (condition id,
//     expected value) pairs).
#pragma once

#include <string>

#include "arch/architecture.h"
#include "sched/schedule_table.h"

namespace ftes {

/// JSON rendering of the complete table set (stable key order).
[[nodiscard]] std::string tables_to_json(const ScheduleTables& tables,
                                         const Architecture& arch);

/// Self-contained C source with one `ftes_table_entry` array per node plus
/// the condition-name table.  `symbol_prefix` namespaces the emitted
/// identifiers (default "ftes").
[[nodiscard]] std::string tables_to_c_source(const ScheduleTables& tables,
                                             const Architecture& arch,
                                             const std::string& symbol_prefix = "ftes");

}  // namespace ftes
