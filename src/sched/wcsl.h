// Worst-case schedule length (WCSL) under at most k transient faults.
//
// Analysis used inside the design-space exploration of Section 6 (the
// optimizers call it tens of thousands of times, so it must be fast).
//
// Model (DESIGN.md Section 4).  Starting from the fault-free list schedule
// we build the *resource-augmented* DAG: data-precedence edges
// (producer copy -> its bus transmissions -> consumer copies) plus resource
// edges chaining consecutive executions on each node and consecutive
// transmissions on the bus.  Delays caused by faults serialize along such
// chains, so the adversarial makespan is the budgeted longest path
//
//     L(v, b) = max_{0 <= f <= b} [ w_v(f) + max(rel_v, max_{p in pred(v)}
//                                                 L(p, b - f)) ]
//     WCSL    = max_v L(v, k)
//
// where w_v(f) for a checkpointed copy is E(n, min(f, R)) -- beyond R
// recoveries the copy is dead and stops delaying its timeline -- a pure
// replica contributes C regardless (a fault kills it; consumers wait for
// the slowest copy, which is already in the DAG via the all-copies join),
// and a bus transmission contributes its worst-case TDMA duration.
//
// Conservative choices (both standard in [13,16]): the static order of the
// fault-free schedule is kept (the run-time scheduler can only do better),
// and transmissions pay the full worst-case round wait.
//
// Thread safety: every function here is pure -- all inputs are taken by
// const reference, and no global or cached state exists -- so concurrent
// calls on shared Application/Architecture/PolicyAssignment objects are
// safe.  The parallel optimizers (opt/) and the batch runner (batch/) rely
// on this guarantee; keep new code here free of mutable/static state.
#pragma once

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "graph/digraph.h"
#include "sched/list_scheduler.h"

namespace ftes {

struct WcslResult {
  Time makespan = 0;
  /// Worst-case finish per process (max over copies), indexed by ProcessId;
  /// used for local deadline checks.
  std::vector<Time> process_finish;

  /// Per-copy worst-case start/finish, aligned with ListSchedule::copies.
  /// The start is the latest time the copy can be forced to begin by k
  /// adversarial faults; root schedules (sched/root_schedule.h) pin copies
  /// to exactly these times.
  std::vector<Time> copy_worst_start;
  std::vector<Time> copy_worst_finish;
  /// Per-transmission worst-case ready time, aligned with
  /// ListSchedule::messages.
  std::vector<Time> msg_worst_ready;

  [[nodiscard]] bool meets_deadlines(const Application& app) const;
};

/// The resource-augmented schedule DAG shared by the WCSL analyses below
/// and the incremental evaluator (opt/eval_context.h): vertices are copies
/// (0..copy_count) followed by bus transmissions; edges are data
/// precedences plus the per-node / bus static orders of the fault-free
/// schedule; weight[v][f] is the execution time of v when f faults strike
/// it (capped at its recoveries).
struct WcslDag {
  Digraph g;
  int copy_count = 0;
  int msg_count = 0;
  std::vector<std::vector<Time>> weight;
  std::vector<Time> release;

  [[nodiscard]] int msg_vertex(int m) const { return copy_count + m; }
};

/// Builds the augmented DAG for one (assignment, schedule) pair.
[[nodiscard]] WcslDag build_wcsl_dag(const Application& app,
                                     const Architecture& arch,
                                     const PolicyAssignment& assignment, int k,
                                     const ListSchedule& schedule);

/// One row of the budgeted longest-path DP: fills `row` with L(v, b) for
/// b = 0..k given the already-computed rows of v's predecessors in `L`
/// (aliasing row == L[v] is fine, v never precedes itself).  Returns the
/// incoming bound max_p L(p, k), i.e. the worst-case start of v before its
/// release is applied.
Time wcsl_dp_row(const WcslDag& dag, int v,
                 const std::vector<std::vector<Time>>& L, int k,
                 std::vector<Time>& row);

/// Rebuilds the full analysis result from already-computed DP rows `L` (as
/// filled by wcsl_dp_row over `dag` in topological order).  Used by the
/// incremental evaluator (opt/eval_context.h) to serve a final
/// evaluate_full() of the cached base entirely from its cached rows.
[[nodiscard]] WcslResult wcsl_result_from_rows(
    const Application& app, const ListSchedule& schedule, const WcslDag& dag,
    const std::vector<std::vector<Time>>& L, int k);

/// Budgeted longest-path analysis over an existing fault-free schedule.
[[nodiscard]] WcslResult worst_case_schedule_length(
    const Application& app, const Architecture& arch,
    const PolicyAssignment& assignment, const FaultModel& model,
    const ListSchedule& schedule);

/// Transparent-recovery analysis: start times that hold in *every* scenario
/// with every copy absorbing all k faults locally (no budget split along
/// paths).  This is the timing law of root schedules
/// (sched/root_schedule.h); it dominates worst_case_schedule_length and the
/// gap is exactly the price of full transparency.
[[nodiscard]] WcslResult worst_case_transparent(
    const Application& app, const Architecture& arch,
    const PolicyAssignment& assignment, const FaultModel& model,
    const ListSchedule& schedule);

/// Convenience: list-schedule then analyze.  This is the objective function
/// of every optimizer in src/opt.
[[nodiscard]] WcslResult evaluate_wcsl(const Application& app,
                                       const Architecture& arch,
                                       const PolicyAssignment& assignment,
                                       const FaultModel& model);

}  // namespace ftes
