#include "sched/list_scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

#include "fault/recovery.h"
#include "graph/digraph.h"
#include "util/binary_heap.h"

namespace ftes {

int ListSchedule::copy_index(CopyRef ref) const {
  const std::int32_t p = ref.process.get();
  if (p < 0 || static_cast<std::size_t>(p) + 1 >= first_copy.size()) return -1;
  if (ref.copy < 0) return -1;
  const int idx = first_copy[static_cast<std::size_t>(p)] + ref.copy;
  if (idx >= first_copy[static_cast<std::size_t>(p) + 1]) return -1;
  return idx;
}

Time ListSchedule::process_finish(ProcessId p) const {
  if (!p.valid() ||
      static_cast<std::size_t>(p.get()) + 1 >= first_copy.size()) {
    return 0;
  }
  Time latest = 0;
  for (int i = first_copy[static_cast<std::size_t>(p.get())];
       i < first_copy[static_cast<std::size_t>(p.get()) + 1]; ++i) {
    latest = std::max(latest, copies[static_cast<std::size_t>(i)].finish);
  }
  return latest;
}

std::size_t snapshot_bytes(const ScheduleSnapshot& s) {
  std::size_t bytes = sizeof(ScheduleSnapshot);
  bytes += s.node_free.size() * sizeof(Time);
  bytes += s.placed.size() * sizeof(char);
  bytes += s.deps_left.size() * sizeof(int);
  bytes += s.data_ready.size() * sizeof(Time);
  bytes += s.ready_heap.size() * sizeof(SnapshotReadyEntry);
  bytes += s.tx_heap.size() * sizeof(TxEntry);
  bytes += s.partial.copies.size() * sizeof(ScheduledCopy);
  bytes += s.partial.messages.size() * sizeof(ScheduledMessage);
  bytes += s.partial.bus_order.size() * sizeof(int);
  bytes += s.partial.first_copy.size() * sizeof(int);
  for (const std::vector<int>& order : s.partial.node_order) {
    bytes += sizeof(order) + order.size() * sizeof(int);
  }
  return bytes;
}

Time fault_free_duration(const Application& app, const CopyPlan& copy,
                         ProcessId pid) {
  const Process& proc = app.process(pid);
  RecoveryParams params{proc.wcet_on(copy.node), proc.alpha, proc.mu,
                        proc.chi};
  if (copy.checkpoints >= 1) {
    return checkpointed_exec_time(params, copy.checkpoints, 0);
  }
  return replica_exec_time(params);
}

PolicyAssignment strip_fault_tolerance(const Application& app,
                                       const PolicyAssignment& reference) {
  PolicyAssignment stripped(app.process_count());
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    ProcessPlan plan;
    plan.kind = PolicyKind::kCheckpointing;
    CopyPlan copy;
    copy.node = reference.plan(pid).copies.at(0).node;
    copy.checkpoints = 0;  // no checkpoint overhead, no recoveries
    copy.recoveries = 0;
    plan.copies.push_back(copy);
    stripped.plan(pid) = plan;
  }
  return stripped;
}

namespace {

/// Exact event count of a full build: every copy placement plus one bus
/// transmission per (cross-node message, producer copy).  Shared by
/// Scheduler::total_events and default_snapshot_interval so the event
/// definition cannot drift between them.
std::size_t count_total_events(const Application& app,
                               const PolicyAssignment& assignment) {
  std::size_t events = 0;
  for (int i = 0; i < assignment.process_count(); ++i) {
    events +=
        static_cast<std::size_t>(assignment.plan(ProcessId{i}).copy_count());
  }
  for (const Message& m : app.messages()) {
    const ProcessPlan& sp = assignment.plan(m.src);
    const ProcessPlan& dp = assignment.plan(m.dst);
    for (const CopyPlan& s : sp.copies) {
      for (const CopyPlan& d : dp.copies) {
        if (d.node != s.node) {
          ++events;
          break;
        }
      }
    }
  }
  return events;
}

/// The default snapshot interval for a build of that many events: the
/// nearest integer to sqrt(events), in pure integer math so the interval
/// (and thus every snapshot-resume counter) is bit-identical across libm
/// implementations.  r = floor(sqrt(n)) by digit-pair isqrt, bumped past
/// the midpoint since (r + 0.5)^2 = r^2 + r + 0.25.
int interval_for_events(std::size_t events) {
  std::size_t r = 0;
  std::size_t rem = events;
  std::size_t bit = std::size_t{1}
                    << (std::numeric_limits<std::size_t>::digits - 2);
  while (bit > rem) bit >>= 2;
  while (bit != 0) {
    if (rem >= r + bit) {
      rem -= r + bit;
      r = (r >> 1) + bit;
    } else {
      r >>= 1;
    }
    bit >>= 2;
  }
  if (events - r * r > r) ++r;  // round half up, matching llround(sqrt(n))
  return std::max(1, static_cast<int>(r));
}

struct CopyVertex {
  CopyRef ref;
  NodeId node;
  Time duration = 0;
  Time release = 0;
};

/// Min order of the ready queue: earliest start, then highest partial
/// critical path rank, then lowest vertex id -- the exact pick of the
/// historical linear ready-scan.
struct ReadyLess {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    if (a.start != b.start) return a.start < b.start;
    if (a.rank != b.rank) return a.rank > b.rank;
    return a.vertex < b.vertex;
  }
};

/// Min order of the pending-transmission queue: earliest ready, then lowest
/// message id, then enqueue order -- the historical linear minimum search.
struct TxLess {
  bool operator()(const TxEntry& a, const TxEntry& b) const {
    if (a.ready != b.ready) return a.ready < b.ready;
    if (a.msg != b.msg) return a.msg < b.msg;
    return a.seq < b.seq;
  }
};

/// One list-scheduling run: static problem data (copy vertices, precedence
/// graph, priorities) plus the dynamic event-loop state.  The dynamic state
/// either starts fresh (full build) or is restored from a base run's
/// ScheduleSnapshot with the moved process's vertices re-derived (resume).
class Scheduler {
 public:
  Scheduler(const Application& app, const Architecture& arch,
            const PolicyAssignment& assignment)
      : app_(app), arch_(arch), assignment_(assignment) {}

  // ---- static problem data ---------------------------------------------

  void build_static() {
    if (assignment_.process_count() != app_.process_count()) {
      throw std::invalid_argument("assignment size mismatch");
    }
    first_copy.assign(static_cast<std::size_t>(app_.process_count()) + 1, 0);
    for (int i = 0; i < app_.process_count(); ++i) {
      const ProcessId pid{i};
      const ProcessPlan& plan = assignment_.plan(pid);
      if (plan.copies.empty()) {
        throw std::invalid_argument("plan without copies");
      }
      first_copy[static_cast<std::size_t>(i) + 1] =
          first_copy[static_cast<std::size_t>(i)] + plan.copy_count();
      for (int j = 0; j < plan.copy_count(); ++j) {
        const CopyPlan& copy = plan.copies[static_cast<std::size_t>(j)];
        if (!copy.node.valid()) throw std::invalid_argument("unmapped copy");
        CopyVertex v;
        v.ref = CopyRef{pid, j};
        v.node = copy.node;
        v.duration = fault_free_duration(app_, copy, pid);
        v.release = app_.process(pid).release;
        verts.push_back(v);
      }
    }

    // Copy-level precedence graph (producer copy -> consumer copy).
    g = Digraph(static_cast<int>(verts.size()));
    for (const Message& m : app_.messages()) {
      const ProcessPlan& sp = assignment_.plan(m.src);
      const ProcessPlan& dp = assignment_.plan(m.dst);
      for (int sj = 0; sj < sp.copy_count(); ++sj) {
        for (int dj = 0; dj < dp.copy_count(); ++dj) {
          g.add_edge(vertex_of(m.src, sj), vertex_of(m.dst, dj));
        }
      }
    }

    // Priorities: partial critical path (durations + worst-case bus).
    rank = g.critical_path_from([&](int v) {
      // Approximate communication by the worst-case bus duration of the
      // process's heaviest outgoing message; exact slot timing is resolved
      // during the actual placement below.
      const CopyVertex& cv = verts[static_cast<std::size_t>(v)];
      Time comm = 0;
      for (MessageId mid : app_.outputs(cv.ref.process)) {
        comm = std::max(comm, arch_.bus().worst_case_duration(
                                  cv.node, app_.message(mid).size));
      }
      return cv.duration + comm;
    });
  }

  [[nodiscard]] int vertex_of(ProcessId p, int copy) const {
    return first_copy[static_cast<std::size_t>(p.get())] + copy;
  }

  /// Exact event count of a full run (count_total_events above; the copy
  /// placements equal verts.size() by construction).
  [[nodiscard]] std::size_t total_events() const {
    return count_total_events(app_, assignment_);
  }

  // ---- dynamic state ----------------------------------------------------

  void init_dynamic() {
    result.copies.assign(verts.size(), ScheduledCopy{});
    result.first_copy = first_copy;
    result.node_order.assign(static_cast<std::size_t>(arch_.node_count()), {});
    node_free.assign(static_cast<std::size_t>(arch_.node_count()), 0);
    placed.assign(verts.size(), 0);
    data_ready.assign(verts.size(), 0);
    deps_left.assign(verts.size(), 0);
    for (std::size_t v = 0; v < verts.size(); ++v) {
      deps_left[v] =
          static_cast<int>(g.predecessors(static_cast<int>(v)).size());
    }
    remaining = verts.size();
    if (log) {
      log->snapshots.clear();
      log->avail_event.assign(verts.size(), 0);
      log->placed_event.assign(verts.size(), 0);
      log->ties.clear();
      log->rank = rank;
    }
    for (std::size_t v = 0; v < verts.size(); ++v) {
      if (deps_left[v] == 0) {
        ready.push(ReadyEntry{start_of(static_cast<int>(v)),
                              rank[v], static_cast<int>(v)});
      }
    }
  }

  [[nodiscard]] Time start_of(int v) const {
    const CopyVertex& cv = verts[static_cast<std::size_t>(v)];
    return std::max({data_ready[static_cast<std::size_t>(v)], cv.release,
                     node_free[static_cast<std::size_t>(cv.node.get())]});
  }

  // ---- event loop -------------------------------------------------------

  ListSchedule run() {
    while (remaining > 0) {
      if (log &&
          event % static_cast<std::size_t>(log->snapshot_interval) == 0 &&
          event != skip_snapshot_event) {
        take_snapshot();
      }

      // Best startable copy: pop stale ready entries (a vertex's true start
      // only grows, so an entry whose key matches its recomputed start is
      // the true minimum under ReadyLess -- see docs/ARCHITECTURE.md).
      int best_vertex = -1;
      Time best_start = kTimeInfinity;
      while (!ready.empty()) {
        const ReadyEntry top = ready.top();
        const Time now = start_of(top.vertex);
        if (now != top.start) {
          ready.pop();
          ++heap_pops;
          ready.push(ReadyEntry{now, top.rank, top.vertex});
          continue;
        }
        best_vertex = top.vertex;
        best_start = top.start;
        break;
      }

      // A transmission ready no later than the earliest startable copy is
      // committed first, keeping the bus FIFO in ready order.
      if (!txq.empty() && (best_vertex < 0 || txq.top().ready <= best_start)) {
        const TxEntry tx = txq.top();
        txq.pop();
        ++heap_pops;
        commit_tx(tx);
      } else if (best_vertex < 0) {
        throw std::logic_error("list scheduler deadlock (cyclic copy graph?)");
      } else {
        ready.pop();
        ++heap_pops;
        if (log) record_start_ties(best_vertex, best_start);
        commit_copy(best_vertex, best_start);
      }
      ++event;
    }

    // Bus finish may exceed the last copy finish; the cycle ends when all
    // activity (including transmissions) completed.
    for (const ScheduledMessage& m : result.messages) {
      result.makespan = std::max(result.makespan, m.finish);
    }
    if (log) log->event_count = event;
    return std::move(result);
  }

  void commit_copy(int v, Time start) {
    const CopyVertex& cv = verts[static_cast<std::size_t>(v)];
    ScheduledCopy sc;
    sc.ref = cv.ref;
    sc.node = cv.node;
    sc.start = start;
    sc.finish = start + cv.duration;
    result.copies[static_cast<std::size_t>(v)] = sc;
    placed[static_cast<std::size_t>(v)] = 1;
    --remaining;
    node_free[static_cast<std::size_t>(cv.node.get())] = sc.finish;
    result.node_order[static_cast<std::size_t>(cv.node.get())].push_back(v);
    result.makespan = std::max(result.makespan, sc.finish);
    if (log) log->placed_event[static_cast<std::size_t>(v)] = event;

    // Emit deliveries / enqueue transmissions for outgoing messages.
    for (MessageId mid : app_.outputs(cv.ref.process)) {
      const Message& m = app_.message(mid);
      const ProcessPlan& dp = assignment_.plan(m.dst);
      bool cross_node = false;
      for (const CopyPlan& d : dp.copies) {
        if (d.node != cv.node) cross_node = true;
      }
      if (cross_node) {
        txq.push(TxEntry{sc.finish, mid.get(), tx_seq++, cv.ref.copy,
                         cv.node});
      } else {
        deliver(m, sc.finish);
      }
    }
  }

  void commit_tx(const TxEntry& tx) {
    const Message& m = app_.message(MessageId{tx.msg});
    const Time ready_at = std::max(tx.ready, bus_free);
    const Time start = arch_.bus().next_slot_start(tx.sender, ready_at);
    const Time finish =
        arch_.bus().transmission_finish(tx.sender, ready_at, m.size);
    bus_free = finish;
    result.bus_order.push_back(static_cast<int>(result.messages.size()));
    result.messages.push_back(
        ScheduledMessage{MessageId{tx.msg}, tx.src_copy, tx.sender, tx.ready,
                         start, finish});
    deliver(m, finish);
  }

  /// Producer delivered message m at `delivery` to all consumer copies:
  /// update their readiness and dependency counters; a copy whose last
  /// dependency resolved joins the ready queue.
  void deliver(const Message& m, Time delivery) {
    const ProcessPlan& dp = assignment_.plan(m.dst);
    for (int dj = 0; dj < dp.copy_count(); ++dj) {
      const int dv = vertex_of(m.dst, dj);
      data_ready[static_cast<std::size_t>(dv)] =
          std::max(data_ready[static_cast<std::size_t>(dv)], delivery);
      if (--deps_left[static_cast<std::size_t>(dv)] == 0) {
        if (log) log->avail_event[static_cast<std::size_t>(dv)] = event + 1;
        ready.push(ReadyEntry{start_of(dv),
                              rank[static_cast<std::size_t>(dv)], dv});
      }
    }
  }

  /// Called (log builds only) after popping the winning copy but before
  /// committing it: every other ready vertex whose true start equals the
  /// winner's participates in a rank-broken tie at this event.  Stale
  /// entries encountered on the way are refreshed, never dropped.
  void record_start_ties(int winner, Time start) {
    std::vector<ReadyEntry> tied;
    while (!ready.empty()) {
      const ReadyEntry top = ready.top();
      const Time now = start_of(top.vertex);
      if (now != top.start) {
        ready.pop();
        ready.push(ReadyEntry{now, top.rank, top.vertex});
        continue;
      }
      if (top.start != start) break;  // fresh minimum past the winner's start
      tied.push_back(top);
      ready.pop();
    }
    if (!tied.empty()) {
      ScheduleCheckpointLog::StartTie tie;
      tie.event = event;
      tie.winner = winner;
      tie.contenders.push_back(winner);
      for (const ReadyEntry& e : tied) {
        tie.contenders.push_back(e.vertex);
        ready.push(e);
      }
      // Canonical order: the set of contenders is a pure function of the
      // tied state, but heap pop order depends on ranks -- which differ
      // between a base build and a resumed candidate recording its own
      // log.  (tie.winner keeps the actual pick.)
      std::sort(tie.contenders.begin(), tie.contenders.end());
      log->ties.push_back(std::move(tie));
    }
  }

  void take_snapshot() {
    ScheduleSnapshot s;
    s.event_index = event;
    s.remaining = remaining;
    s.bus_free = bus_free;
    s.tx_seq = tx_seq;
    s.node_free = node_free;
    s.placed = placed;
    s.deps_left = deps_left;
    s.data_ready = data_ready;
    // Canonical heap images: entries re-keyed to their *current* start
    // (lazy keys may be stale, and staleness depends on the refresh
    // history, which a resumed run does not share with a from-scratch
    // one) and sorted by (start, vertex).  Restoring a re-keyed entry is
    // sound -- the true start only grows, so the key stays a valid lower
    // bound -- and the snapshot becomes a pure function of the semantic
    // state (placed / deps / readiness / node- and bus-free times).
    // Ranks are NOT stored: they depend on the assignment, not on the
    // placed prefix, and are re-stamped by the restoring run -- which
    // makes prefix snapshots bitwise shareable between a base and a
    // candidate with the same copy layout.
    s.ready_heap.reserve(ready.items().size());
    for (const ReadyEntry& e : ready.items()) {
      s.ready_heap.push_back(SnapshotReadyEntry{start_of(e.vertex), e.vertex});
    }
    std::sort(s.ready_heap.begin(), s.ready_heap.end(),
              [](const SnapshotReadyEntry& a, const SnapshotReadyEntry& b) {
                return a.start != b.start ? a.start < b.start
                                          : a.vertex < b.vertex;
              });
    s.tx_heap = txq.items();
    std::sort(s.tx_heap.begin(), s.tx_heap.end(),
              [](const TxEntry& a, const TxEntry& b) { return TxLess{}(a, b); });
    s.partial = result;
    ++snapshots_taken;
    snapshot_bytes_taken += snapshot_bytes(s);
    log->snapshots.append(std::move(s));
  }

  const Application& app_;
  const Architecture& arch_;
  const PolicyAssignment& assignment_;

  // Static problem data.
  std::vector<CopyVertex> verts;
  std::vector<int> first_copy;
  Digraph g;
  std::vector<Time> rank;

  // Dynamic event-loop state.
  ListSchedule result;
  std::vector<char> placed;
  std::vector<int> deps_left;
  std::vector<Time> data_ready;
  std::vector<Time> node_free;
  Time bus_free = 0;
  BinaryMinHeap<ReadyEntry, ReadyLess> ready;
  BinaryMinHeap<TxEntry, TxLess> txq;
  int tx_seq = 0;
  std::size_t remaining = 0;
  std::size_t event = 0;
  std::size_t heap_pops = 0;
  std::size_t snapshots_taken = 0;       ///< snapshots materialized live
  std::size_t snapshot_bytes_taken = 0;  ///< their snapshot_bytes() total
  /// A resumed run that transplanted the base snapshot at exactly this
  /// event (by reference or remapped) suppresses the live re-record.
  std::size_t skip_snapshot_event = static_cast<std::size_t>(-1);

  ScheduleCheckpointLog* log = nullptr;
};

ListSchedule build_schedule(const Application& app, const Architecture& arch,
                            const PolicyAssignment& assignment,
                            ScheduleCheckpointLog* log, int snapshot_interval,
                            std::size_t* heap_pops) {
  Scheduler s(app, arch, assignment);
  s.build_static();
  if (log) {
    if (snapshot_interval <= 0) {
      snapshot_interval = interval_for_events(s.total_events());
    }
    log->snapshot_interval = snapshot_interval;
    s.log = log;
  }
  s.init_dynamic();
  ListSchedule out = s.run();
  if (heap_pops) *heap_pops += s.heap_pops;
  return out;
}

}  // namespace

ListSchedule list_schedule(const Application& app, const Architecture& arch,
                           const PolicyAssignment& assignment) {
  return build_schedule(app, arch, assignment, nullptr, 0, nullptr);
}

ListSchedule list_schedule(const Application& app, const Architecture& arch,
                           const PolicyAssignment& assignment,
                           ScheduleCheckpointLog& log, int snapshot_interval) {
  return build_schedule(app, arch, assignment, &log, snapshot_interval,
                        nullptr);
}

int default_snapshot_interval(const Application& app,
                              const PolicyAssignment& assignment) {
  return interval_for_events(count_total_events(app, assignment));
}

ListSchedule list_schedule_resume(const Application& app,
                                  const Architecture& arch,
                                  const PolicyAssignment& base,
                                  const ScheduleCheckpointLog& log,
                                  const PolicyAssignment& candidate,
                                  ProcessId moved,
                                  ListScheduleResumeStats* stats,
                                  ScheduleCheckpointLog* record) {
  return list_schedule_resume(app, arch, base, log, candidate,
                              std::vector<ProcessId>{moved}, stats, record);
}

ListSchedule list_schedule_resume(const Application& app,
                                  const Architecture& arch,
                                  const PolicyAssignment& base,
                                  const ScheduleCheckpointLog& log,
                                  const PolicyAssignment& candidate,
                                  const std::vector<ProcessId>& moved,
                                  ListScheduleResumeStats* stats,
                                  ScheduleCheckpointLog* record) {
  ListScheduleResumeStats local;
  Scheduler s(app, arch, candidate);
  s.build_static();

  // Base-side vertex layout (the log's event indices are per base vertex).
  const int process_count = app.process_count();
  std::vector<int> base_first(static_cast<std::size_t>(process_count) + 1, 0);
  for (int i = 0; i < process_count; ++i) {
    base_first[static_cast<std::size_t>(i) + 1] =
        base_first[static_cast<std::size_t>(i)] +
        base.plan(ProcessId{i}).copy_count();
  }
  const int base_total = base_first[static_cast<std::size_t>(process_count)];

  // The moved set, deduplicated into ascending pid order.
  std::vector<char> is_moved(static_cast<std::size_t>(process_count), 0);
  for (const ProcessId p : moved) {
    is_moved[static_cast<std::size_t>(p.get())] = 1;
  }
  std::vector<ProcessId> mv;
  mv.reserve(moved.size());
  for (int i = 0; i < process_count; ++i) {
    if (is_moved[static_cast<std::size_t>(i)]) mv.push_back(ProcessId{i});
  }

  std::vector<int> base_proc(static_cast<std::size_t>(base_total), 0);
  for (int i = 0; i < process_count; ++i) {
    for (int bv = base_first[static_cast<std::size_t>(i)];
         bv < base_first[static_cast<std::size_t>(i) + 1]; ++bv) {
      base_proc[static_cast<std::size_t>(bv)] = i;
    }
  }
  const auto moved_vertex = [&](int bv) {
    return is_moved[static_cast<std::size_t>(
               base_proc[static_cast<std::size_t>(bv)])] != 0;
  };
  // Candidate vertex of a non-moved base vertex.  Monotone in bv: within
  // a process the offset is constant and the per-process blocks keep
  // their relative order, so remapped sorted lists stay sorted.
  const auto remap = [&](int bv) {
    assert(!moved_vertex(bv));
    const int bp = base_proc[static_cast<std::size_t>(bv)];
    return s.first_copy[static_cast<std::size_t>(bp)] +
           (bv - base_first[static_cast<std::size_t>(bp)]);
  };
  // When every moved process keeps its copy count the remap is the
  // identity and prefix snapshots are *bitwise* equal to what a
  // from-scratch candidate build would record (canonical, rank-free, and
  // free of moved-copy state before the first affected event) -- the
  // condition for sharing them by reference instead of copying.
  const bool layout_same = s.first_copy == base_first;

  // ---- first affected event --------------------------------------------
  //
  // The candidate run provably coincides with the base run up to (not
  // including) `limit`:
  //   * a moved process's copies cannot be selected before they are
  //     ready (avail_event; their readiness index is move-invariant
  //     because it is produced by unaffected producer deliveries),
  //   * a producer placement whose inbound-to-moved message flips between
  //     local delivery and a bus transmission behaves differently, so it
  //     must be replayed (placed_event),
  //   * a vertex whose priority rank changed (every ancestor of a moved
  //     process, typically) can win or lose start-time ties -- but ranks
  //     decide *only* such ties, and ready-queue entries are transplanted
  //     with the candidate's ranks below, so the resume point only has to
  //     precede the vertex's first recorded tie, not its readiness.
  // Everything else depends only on data the moves do not touch.  For a
  // batch of moves the bound is the min over the whole set.
  std::size_t limit = log.event_count;
  for (const ProcessId mp : mv) {
    const int p = mp.get();
    for (int bv = base_first[static_cast<std::size_t>(p)];
         bv < base_first[static_cast<std::size_t>(p) + 1]; ++bv) {
      limit = std::min(limit, log.avail_event[static_cast<std::size_t>(bv)]);
    }
    for (MessageId mid : app.inputs(mp)) {
      const Message& m = app.message(mid);
      // A moved producer's placements all happen at/after `limit` (its
      // copies' readiness bounds limit, and a copy is placed no earlier
      // than it becomes available), so they are replayed regardless of
      // how the message flips -- no check needed.
      if (is_moved[static_cast<std::size_t>(m.src.get())]) continue;
      const ProcessPlan& sp = base.plan(m.src);
      const ProcessPlan& base_dp = base.plan(mp);
      const ProcessPlan& cand_dp = candidate.plan(mp);
      for (int sj = 0; sj < sp.copy_count(); ++sj) {
        const NodeId sn = sp.copies[static_cast<std::size_t>(sj)].node;
        bool cross_base = false;
        for (const CopyPlan& d : base_dp.copies) {
          if (d.node != sn) cross_base = true;
        }
        bool cross_cand = false;
        for (const CopyPlan& d : cand_dp.copies) {
          if (d.node != sn) cross_cand = true;
        }
        if (cross_base != cross_cand) {
          limit = std::min(
              limit, log.placed_event[static_cast<std::size_t>(
                         base_first[static_cast<std::size_t>(m.src.get())] +
                         sj)]);
        }
      }
    }
  }
  // Re-judge every recorded start-time tie with the candidate's ranks (in
  // event order; ties at or past the current limit are replayed anyway).
  // The prefix before a tie is identical by induction, so the tie's
  // contender set is identical too -- only the rank-based pick can differ.
  for (const ScheduleCheckpointLog::StartTie& tie : log.ties) {
    if (tie.event >= limit) break;
    int best = -1;
    Time best_rank = 0;
    bool involves_moved = false;
    for (const int bv : tie.contenders) {
      if (moved_vertex(bv)) {
        // Unreachable while limit <= every moved process's readiness, but
        // be conservative if it ever is.
        involves_moved = true;
        break;
      }
      const int cv = remap(bv);
      const Time r = s.rank[static_cast<std::size_t>(cv)];
      // Same pick rule as the ready queue: max rank, then min vertex id
      // (remapping preserves the relative id order of non-moved vertices).
      if (best < 0 || r > best_rank || (r == best_rank && cv < best)) {
        best = cv;
        best_rank = r;
      }
    }
    if (involves_moved || best != remap(tie.winner)) {
      limit = tie.event;
      break;
    }
  }

  // ---- nearest usable snapshot -----------------------------------------
  const ScheduleSnapshot* snap = nullptr;
  for (auto it = log.snapshots.rbegin(); it != log.snapshots.rend(); ++it) {
    if ((*it)->event_index <= limit) {
      snap = it->get();
      break;
    }
  }

  if (record) {
    // Record-while-resuming: the replayed suffix records live through the
    // normal logging hooks; prefix content is transplanted from the base
    // log below (resume path) or recorded in full (fallback path).  The
    // recorded log inherits the base interval so its prefix snapshots can
    // be taken verbatim from the base's (both sit at multiples of it).
    // `record` must be a distinct object: clearing it in place would free
    // the very snapshots the transplant still reads.
    assert(record != &log);
    record->snapshot_interval = log.snapshot_interval;
    record->snapshots.clear();
    record->ties.clear();
    record->event_count = 0;
    s.log = record;
  }

  if (!snap || snap->event_index == 0) {
    s.init_dynamic();
  } else {
    // ---- transplant the snapshot into the candidate's vertex space ------
    const std::size_t cand_total = s.verts.size();
#ifndef NDEBUG
    for (const ProcessId mp : mv) {
      // Moved processes are untouched before the resume point.
      for (int bv = base_first[static_cast<std::size_t>(mp.get())];
           bv < base_first[static_cast<std::size_t>(mp.get()) + 1]; ++bv) {
        assert(!snap->placed[static_cast<std::size_t>(bv)]);
      }
    }
#endif

    s.result.first_copy = s.first_copy;
    s.result.messages = snap->partial.messages;
    s.result.bus_order = snap->partial.bus_order;
    s.result.makespan = snap->partial.makespan;
    if (layout_same) {
      // Identity remap: take the read-only prefix wholesale instead of
      // copying it element by element (moved copies are unplaced with
      // default slots, and their readiness is re-seeded below).
      s.result.copies = snap->partial.copies;
      s.result.node_order = snap->partial.node_order;
      s.placed = snap->placed;
      s.deps_left = snap->deps_left;
      s.data_ready = snap->data_ready;
    } else {
      s.result.copies.assign(cand_total, ScheduledCopy{});
      s.result.node_order.assign(static_cast<std::size_t>(arch.node_count()),
                                 {});
      for (std::size_t n = 0; n < snap->partial.node_order.size(); ++n) {
        for (int v : snap->partial.node_order[n]) {
          s.result.node_order[n].push_back(remap(v));
        }
      }
      s.placed.assign(cand_total, 0);
      s.deps_left.assign(cand_total, 0);
      s.data_ready.assign(cand_total, 0);
      for (int bv = 0; bv < base_total; ++bv) {
        if (moved_vertex(bv)) continue;
        const std::size_t cv = static_cast<std::size_t>(remap(bv));
        s.placed[cv] = snap->placed[static_cast<std::size_t>(bv)];
        if (s.placed[cv]) {
          s.result.copies[cv] =
              snap->partial.copies[static_cast<std::size_t>(bv)];
        }
        s.deps_left[cv] = snap->deps_left[static_cast<std::size_t>(bv)];
        s.data_ready[cv] = snap->data_ready[static_cast<std::size_t>(bv)];
      }
    }
    // All copies of one process share (deps_left, data_ready): deliveries
    // broadcast to every copy and the predecessor count is independent of
    // the process's own plan.  Seed every moved process's candidate copies
    // from its base copy 0, then adjust the consumers of moved producers
    // whose copy count changed (one dependency per producer copy; no
    // deliveries from moved producers happened yet).  The adjustment runs
    // after the seeding so a moved consumer of a moved producer is
    // corrected too.
    for (const ProcessId mp : mv) {
      const int bf = base_first[static_cast<std::size_t>(mp.get())];
      const int shared_deps = snap->deps_left[static_cast<std::size_t>(bf)];
      const Time shared_ready =
          snap->data_ready[static_cast<std::size_t>(bf)];
      const int count = candidate.plan(mp).copy_count();
      for (int j = 0; j < count; ++j) {
        const std::size_t cv = static_cast<std::size_t>(s.vertex_of(mp, j));
        s.deps_left[cv] = shared_deps;
        s.data_ready[cv] = shared_ready;
      }
    }
    for (const ProcessId mp : mv) {
      const int delta_p =
          candidate.plan(mp).copy_count() - base.plan(mp).copy_count();
      if (delta_p == 0) continue;
      for (MessageId mid : app.outputs(mp)) {
        const Message& m = app.message(mid);
        const int count = candidate.plan(m.dst).copy_count();
        for (int dj = 0; dj < count; ++dj) {
          s.deps_left[static_cast<std::size_t>(s.vertex_of(m.dst, dj))] +=
              delta_p;
        }
      }
    }

    s.node_free = snap->node_free;
    s.bus_free = snap->bus_free;
    s.tx_seq = snap->tx_seq;
    s.remaining =
        snap->remaining + (cand_total - static_cast<std::size_t>(base_total));
    s.event = snap->event_index;

    // Ready queue: keep unaffected entries' start keys (move-invariant),
    // stamp each with the *candidate's* rank -- a rank change only breaks
    // future ties, which the resume-point bound already guarantees did not
    // occur in the kept prefix -- and re-derive the moved processes'
    // entries with the candidate's mapping and rank.
    std::vector<ReadyEntry> entries;
    entries.reserve(snap->ready_heap.size() + mv.size());
    for (const SnapshotReadyEntry& e : snap->ready_heap) {
      if (moved_vertex(e.vertex)) continue;
      const int cv = remap(e.vertex);
      entries.push_back(
          ReadyEntry{e.start, s.rank[static_cast<std::size_t>(cv)], cv});
    }
    for (const ProcessId mp : mv) {
      if (s.deps_left[static_cast<std::size_t>(s.vertex_of(mp, 0))] != 0) {
        continue;
      }
      const int count = candidate.plan(mp).copy_count();
      for (int j = 0; j < count; ++j) {
        const int cv = s.vertex_of(mp, j);
        entries.push_back(ReadyEntry{
            s.start_of(cv), s.rank[static_cast<std::size_t>(cv)], cv});
      }
    }
    s.ready.assign(std::move(entries));
    s.txq.assign(snap->tx_heap);

    if (record) {
      // ---- transplant the skipped prefix's log content ------------------
      //
      // Everything the replay does not re-execute is move-invariant by the
      // resume-point bound: event indices (avail/placed) of prefix events,
      // tie groups before the resume point (same contender sets -- a pure
      // function of the tied state -- and same winners, re-judged above),
      // and prefix snapshots (canonical, so equal to what a from-scratch
      // candidate build would record at the same event).  Entries whose
      // events fall at or past the resume point are overwritten by the
      // replay's own recording.
      record->rank = s.rank;
      if (layout_same) {
        // Identity remap: per-vertex indices transplant wholesale.  Moved
        // copies' base values are correct too -- their readiness index is
        // shared per process and move-invariant, and their placed entries
        // (base suffix placements) are overwritten when the replay places
        // them.
        record->avail_event = log.avail_event;
        record->placed_event = log.placed_event;
      } else {
        record->avail_event.assign(cand_total, 0);
        record->placed_event.assign(cand_total, 0);
        for (int bv = 0; bv < base_total; ++bv) {
          if (moved_vertex(bv)) continue;
          const std::size_t cv = static_cast<std::size_t>(remap(bv));
          record->avail_event[cv] =
              log.avail_event[static_cast<std::size_t>(bv)];
          record->placed_event[cv] =
              log.placed_event[static_cast<std::size_t>(bv)];
        }
        // All copies of one process share their readiness index.  When a
        // moved process's last inbound delivery happened in the prefix,
        // the replay never re-delivers it, so the index must come from the
        // base; a delivery during replay overwrites it.
        for (const ProcessId mp : mv) {
          const std::size_t shared_avail =
              log.avail_event[static_cast<std::size_t>(
                  base_first[static_cast<std::size_t>(mp.get())])];
          const int count = candidate.plan(mp).copy_count();
          for (int j = 0; j < count; ++j) {
            record->avail_event[static_cast<std::size_t>(
                s.vertex_of(mp, j))] = shared_avail;
          }
        }
      }
      for (const ScheduleCheckpointLog::StartTie& tie : log.ties) {
        if (tie.event >= snap->event_index) break;
        if (layout_same) {
          record->ties.push_back(tie);
          continue;
        }
        ScheduleCheckpointLog::StartTie t;
        t.event = tie.event;
        t.winner = remap(tie.winner);
        t.contenders.reserve(tie.contenders.size());
        // Contenders are sorted by vertex id and the remap is monotone.
        for (const int bv : tie.contenders) t.contenders.push_back(remap(bv));
        record->ties.push_back(std::move(t));
      }
      // Prefix snapshots, including the resume-point snapshot itself (the
      // live re-record at that event is suppressed): shared by reference
      // when the copy layout is unchanged, materialized remapped
      // otherwise.  A shared snapshot must predate `limit` -- at
      // event_index == limit a moved copy can already sit in the ready
      // image with a start key that depends on its (changed) plan; the
      // materialized rebuild below recomputes the ready image from the
      // transplanted semantic state, so it has no such restriction.
      for (const auto& bs_ref : log.snapshots) {
        const ScheduleSnapshot& bs = *bs_ref;
        if (bs.event_index > snap->event_index) break;
        if (layout_same) {
          if (bs.event_index >= limit) break;
          record->snapshots.share(bs_ref);
          ++local.snapshots_shared;
          local.snapshot_bytes_shared += snapshot_bytes(bs);
          if (bs.event_index == snap->event_index) {
            s.skip_snapshot_event = snap->event_index;
          }
          continue;
        }
        ScheduleSnapshot ns;
        ns.event_index = bs.event_index;
        ns.remaining =
            bs.remaining + (cand_total - static_cast<std::size_t>(base_total));
        ns.bus_free = bs.bus_free;
        ns.tx_seq = bs.tx_seq;
        ns.node_free = bs.node_free;
        ns.placed.assign(cand_total, 0);
        ns.deps_left.assign(cand_total, 0);
        ns.data_ready.assign(cand_total, 0);
        ns.partial.first_copy = s.first_copy;
        ns.partial.copies.assign(cand_total, ScheduledCopy{});
        for (int bv = 0; bv < base_total; ++bv) {
          if (moved_vertex(bv)) continue;
          const std::size_t cv = static_cast<std::size_t>(remap(bv));
          ns.placed[cv] = bs.placed[static_cast<std::size_t>(bv)];
          ns.deps_left[cv] = bs.deps_left[static_cast<std::size_t>(bv)];
          ns.data_ready[cv] = bs.data_ready[static_cast<std::size_t>(bv)];
          ns.partial.copies[cv] =
              bs.partial.copies[static_cast<std::size_t>(bv)];
        }
        // Same seeding rules as the dynamic-state transplant above.
        for (const ProcessId mp : mv) {
          const int bf = base_first[static_cast<std::size_t>(mp.get())];
          const int snap_deps = bs.deps_left[static_cast<std::size_t>(bf)];
          const Time snap_ready =
              bs.data_ready[static_cast<std::size_t>(bf)];
          const int count = candidate.plan(mp).copy_count();
          for (int j = 0; j < count; ++j) {
            const std::size_t cv =
                static_cast<std::size_t>(s.vertex_of(mp, j));
            ns.deps_left[cv] = snap_deps;
            ns.data_ready[cv] = snap_ready;
          }
        }
        for (const ProcessId mp : mv) {
          const int delta_p =
              candidate.plan(mp).copy_count() - base.plan(mp).copy_count();
          if (delta_p == 0) continue;
          for (MessageId mid : app.outputs(mp)) {
            const Message& m = app.message(mid);
            const int count = candidate.plan(m.dst).copy_count();
            for (int dj = 0; dj < count; ++dj) {
              ns.deps_left[static_cast<std::size_t>(
                  s.vertex_of(m.dst, dj))] += delta_p;
            }
          }
        }
        ns.partial.node_order.assign(
            static_cast<std::size_t>(arch.node_count()), {});
        for (std::size_t n = 0; n < bs.partial.node_order.size(); ++n) {
          for (const int v : bs.partial.node_order[n]) {
            ns.partial.node_order[n].push_back(remap(v));
          }
        }
        ns.partial.messages = bs.partial.messages;
        ns.partial.bus_order = bs.partial.bus_order;
        ns.partial.makespan = bs.partial.makespan;
        // Canonical ready image, rebuilt from the transplanted semantic
        // state (ready == available and unplaced).
        for (std::size_t cv = 0; cv < cand_total; ++cv) {
          if (ns.placed[cv] || ns.deps_left[cv] != 0) continue;
          const Time start = std::max(
              {ns.data_ready[cv], s.verts[cv].release,
               ns.node_free[static_cast<std::size_t>(
                   s.verts[cv].node.get())]});
          ns.ready_heap.push_back(
              SnapshotReadyEntry{start, static_cast<int>(cv)});
        }
        std::sort(ns.ready_heap.begin(), ns.ready_heap.end(),
                  [](const SnapshotReadyEntry& a, const SnapshotReadyEntry& b) {
                    return a.start != b.start ? a.start < b.start
                                              : a.vertex < b.vertex;
                  });
        ns.tx_heap = bs.tx_heap;  // canonical and move-invariant (no moved
                                  // producer placed, senders untouched)
        ++local.snapshots_copied;
        local.snapshot_bytes_copied += snapshot_bytes(ns);
        if (bs.event_index == snap->event_index) {
          s.skip_snapshot_event = snap->event_index;
        }
        record->snapshots.append(std::move(ns));
      }
    }

    local.resumed = true;
    local.events_resumed = snap->event_index;
  }

  ListSchedule out = s.run();
  local.events_total = s.event;
  local.events_replayed = s.event - local.events_resumed;
  local.heap_pops = s.heap_pops;
  local.snapshots_copied += s.snapshots_taken;
  local.snapshot_bytes_copied += s.snapshot_bytes_taken;
  if (stats) *stats = local;
  return out;
}

}  // namespace ftes
