#include "sched/list_scheduler.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "fault/recovery.h"
#include "graph/digraph.h"

namespace ftes {

int ListSchedule::copy_index(CopyRef ref) const {
  for (std::size_t i = 0; i < copies.size(); ++i) {
    if (copies[i].ref == ref) return static_cast<int>(i);
  }
  return -1;
}

Time ListSchedule::process_finish(ProcessId p) const {
  Time latest = 0;
  auto it = copies_by_process.find(p);
  if (it == copies_by_process.end()) return 0;
  for (int idx : it->second) {
    latest = std::max(latest, copies[static_cast<std::size_t>(idx)].finish);
  }
  return latest;
}

Time fault_free_duration(const Application& app, const CopyPlan& copy,
                         ProcessId pid) {
  const Process& proc = app.process(pid);
  RecoveryParams params{proc.wcet_on(copy.node), proc.alpha, proc.mu,
                        proc.chi};
  if (copy.checkpoints >= 1) {
    return checkpointed_exec_time(params, copy.checkpoints, 0);
  }
  return replica_exec_time(params);
}

PolicyAssignment strip_fault_tolerance(const Application& app,
                                       const PolicyAssignment& reference) {
  PolicyAssignment stripped(app.process_count());
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    ProcessPlan plan;
    plan.kind = PolicyKind::kCheckpointing;
    CopyPlan copy;
    copy.node = reference.plan(pid).copies.at(0).node;
    copy.checkpoints = 0;  // no checkpoint overhead, no recoveries
    copy.recoveries = 0;
    plan.copies.push_back(copy);
    stripped.plan(pid) = plan;
  }
  return stripped;
}

namespace {

struct CopyVertex {
  CopyRef ref;
  NodeId node;
  Time duration = 0;
  Time release = 0;
};

}  // namespace

ListSchedule list_schedule(const Application& app, const Architecture& arch,
                           const PolicyAssignment& assignment) {
  if (assignment.process_count() != app.process_count()) {
    throw std::invalid_argument("assignment size mismatch");
  }

  // ---- Vertices: every copy of every process ----------------------------
  std::vector<CopyVertex> verts;
  std::map<std::pair<std::int32_t, int>, int> vert_of;  // (pid, copy) -> idx
  for (int i = 0; i < app.process_count(); ++i) {
    const ProcessId pid{i};
    const ProcessPlan& plan = assignment.plan(pid);
    if (plan.copies.empty()) throw std::invalid_argument("plan without copies");
    for (int j = 0; j < plan.copy_count(); ++j) {
      const CopyPlan& copy = plan.copies[static_cast<std::size_t>(j)];
      if (!copy.node.valid()) throw std::invalid_argument("unmapped copy");
      CopyVertex v;
      v.ref = CopyRef{pid, j};
      v.node = copy.node;
      v.duration = fault_free_duration(app, copy, pid);
      v.release = app.process(pid).release;
      vert_of[{pid.get(), j}] = static_cast<int>(verts.size());
      verts.push_back(v);
    }
  }

  // ---- Copy-level precedence graph (producer copy -> consumer copy) -----
  Digraph g(static_cast<int>(verts.size()));
  for (const Message& m : app.messages()) {
    const ProcessPlan& sp = assignment.plan(m.src);
    const ProcessPlan& dp = assignment.plan(m.dst);
    for (int sj = 0; sj < sp.copy_count(); ++sj) {
      for (int dj = 0; dj < dp.copy_count(); ++dj) {
        g.add_edge(vert_of.at({m.src.get(), sj}), vert_of.at({m.dst.get(), dj}));
      }
    }
  }

  // ---- Priorities: partial critical path (durations + worst-case bus) ---
  const std::vector<Time> rank = g.critical_path_from([&](int v) {
    // Approximate communication by the worst-case bus duration of the
    // process's heaviest outgoing message; exact slot timing is resolved
    // during the actual placement below.
    const CopyVertex& cv = verts[static_cast<std::size_t>(v)];
    Time comm = 0;
    for (MessageId mid : app.outputs(cv.ref.process)) {
      comm = std::max(
          comm, arch.bus().worst_case_duration(cv.node, app.message(mid).size));
    }
    return cv.duration + comm;
  });

  // ---- List scheduling ---------------------------------------------------
  ListSchedule result;
  result.copies.resize(verts.size());
  result.node_order.resize(static_cast<std::size_t>(arch.node_count()));
  std::vector<Time> node_free(static_cast<std::size_t>(arch.node_count()), 0);
  Time bus_free = 0;

  std::vector<bool> placed(verts.size(), false);
  std::vector<int> deps_left(verts.size(), 0);
  for (std::size_t v = 0; v < verts.size(); ++v) {
    deps_left[v] = static_cast<int>(g.predecessors(static_cast<int>(v)).size());
  }
  // data_ready[v]: max over placed producers of their delivery time to v.
  std::vector<Time> data_ready(verts.size(), 0);

  // Transmissions pending placement, sorted by (ready, msg id, copy).
  struct PendingTx {
    Time ready;
    MessageId msg;
    int src_copy;
    NodeId sender;
  };
  std::vector<PendingTx> pending_tx;

  auto deliver = [&](const Message& m, int src_vertex, Time delivery) {
    // Producer copy src delivered message m at `delivery` to all consumer
    // copies: update their readiness and dependency counters.
    const ProcessPlan& dp = assignment.plan(m.dst);
    for (int dj = 0; dj < dp.copy_count(); ++dj) {
      const int dv = vert_of.at({m.dst.get(), dj});
      data_ready[static_cast<std::size_t>(dv)] =
          std::max(data_ready[static_cast<std::size_t>(dv)], delivery);
      --deps_left[static_cast<std::size_t>(dv)];
    }
    (void)src_vertex;
  };

  std::size_t remaining = verts.size();
  while (remaining > 0) {
    // Place any transmission that is ready no later than the earliest
    // startable copy, to keep the bus FIFO in ready order.
    Time best_start = kTimeInfinity;
    int best_vertex = -1;
    for (std::size_t v = 0; v < verts.size(); ++v) {
      if (placed[v] || deps_left[v] > 0) continue;
      const CopyVertex& cv = verts[v];
      const Time start =
          std::max({data_ready[v], cv.release,
                    node_free[static_cast<std::size_t>(cv.node.get())]});
      if (start < best_start ||
          (start == best_start &&
           rank[static_cast<std::size_t>(best_vertex)] <
               rank[v])) {
        best_start = start;
        best_vertex = static_cast<int>(v);
      }
    }

    Time earliest_tx = kTimeInfinity;
    std::size_t tx_index = pending_tx.size();
    for (std::size_t t = 0; t < pending_tx.size(); ++t) {
      if (pending_tx[t].ready < earliest_tx ||
          (pending_tx[t].ready == earliest_tx &&
           tx_index < pending_tx.size() &&
           pending_tx[t].msg < pending_tx[tx_index].msg)) {
        earliest_tx = pending_tx[t].ready;
        tx_index = t;
      }
    }

    if (tx_index < pending_tx.size() &&
        (best_vertex < 0 || earliest_tx <= best_start)) {
      // Commit the transmission.
      const PendingTx tx = pending_tx[tx_index];
      pending_tx.erase(pending_tx.begin() +
                       static_cast<std::ptrdiff_t>(tx_index));
      const Message& m = app.message(tx.msg);
      const Time ready = std::max(tx.ready, bus_free);
      const Time start = arch.bus().next_slot_start(tx.sender, ready);
      const Time finish =
          arch.bus().transmission_finish(tx.sender, ready, m.size);
      bus_free = finish;
      ScheduledMessage sm{tx.msg, tx.src_copy, tx.sender, tx.ready, start,
                          finish};
      result.bus_order.push_back(static_cast<int>(result.messages.size()));
      result.messages.push_back(sm);
      const int sv = vert_of.at({m.src.get(), tx.src_copy});
      deliver(m, sv, finish);
      continue;
    }

    if (best_vertex < 0) {
      throw std::logic_error("list scheduler deadlock (cyclic copy graph?)");
    }

    // Commit the copy.
    const std::size_t v = static_cast<std::size_t>(best_vertex);
    const CopyVertex& cv = verts[v];
    ScheduledCopy sc;
    sc.ref = cv.ref;
    sc.node = cv.node;
    sc.start = best_start;
    sc.finish = best_start + cv.duration;
    result.copies[v] = sc;
    placed[v] = true;
    --remaining;
    node_free[static_cast<std::size_t>(cv.node.get())] = sc.finish;
    result.node_order[static_cast<std::size_t>(cv.node.get())].push_back(
        static_cast<int>(v));
    result.makespan = std::max(result.makespan, sc.finish);
    result.copies_by_process[cv.ref.process].push_back(static_cast<int>(v));

    // Emit deliveries / enqueue transmissions for outgoing messages.
    for (MessageId mid : app.outputs(cv.ref.process)) {
      const Message& m = app.message(mid);
      const ProcessPlan& dp = assignment.plan(m.dst);
      bool cross_node = false;
      for (const CopyPlan& d : dp.copies) {
        if (d.node != cv.node) cross_node = true;
      }
      if (cross_node) {
        pending_tx.push_back(PendingTx{sc.finish, mid, cv.ref.copy, cv.node});
      } else {
        deliver(m, best_vertex, sc.finish);
      }
    }
  }

  // Bus finish may exceed the last copy finish; the cycle ends when all
  // activity (including transmissions) completed.
  for (const ScheduledMessage& m : result.messages) {
    result.makespan = std::max(result.makespan, m.finish);
  }
  return result;
}

}  // namespace ftes
