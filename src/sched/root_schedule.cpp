#include "sched/root_schedule.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "fault/recovery.h"
#include "fault/scenario.h"

namespace ftes {

RootSchedule build_root_schedule(const Application& app,
                                 const Architecture& arch,
                                 const PolicyAssignment& assignment,
                                 const FaultModel& model) {
  assignment.validate(app, model);
  const ListSchedule sched = list_schedule(app, arch, assignment);
  // Transparent timing law: pins must hold in every scenario and each
  // copy's slack must absorb all k faults locally.
  const WcslResult wcsl =
      worst_case_transparent(app, arch, assignment, model, sched);

  RootSchedule root;
  root.wcsl = wcsl.makespan;
  root.slots.reserve(sched.copies.size());
  for (std::size_t v = 0; v < sched.copies.size(); ++v) {
    RootSlot slot;
    slot.ref = sched.copies[v].ref;
    slot.node = sched.copies[v].node;
    slot.start = wcsl.copy_worst_start[v];
    slot.worst_finish = wcsl.copy_worst_finish[v];
    root.slots.push_back(slot);
  }
  // Slack: gap to the next pinned start in the node's static order.
  for (std::size_t n = 0; n < sched.node_order.size(); ++n) {
    const auto& order = sched.node_order[n];
    for (std::size_t i = 0; i < order.size(); ++i) {
      RootSlot& slot = root.slots[static_cast<std::size_t>(order[i])];
      const Time next =
          i + 1 < order.size()
              ? root.slots[static_cast<std::size_t>(order[i + 1])].start
              : wcsl.makespan;
      slot.slack = next - slot.worst_finish;
    }
  }

  // Messages: pinned at their worst-case ready times, serialized on the bus
  // in the static order (budget monotonicity keeps them disjoint).
  Time bus_free = 0;
  for (int m : sched.bus_order) {
    const ScheduledMessage& sm = sched.messages[static_cast<std::size_t>(m)];
    RootMessageSlot slot;
    slot.msg = sm.msg;
    slot.src_copy = sm.src_copy;
    slot.sender = sm.sender;
    slot.ready =
        std::max(wcsl.msg_worst_ready[static_cast<std::size_t>(m)], bus_free);
    slot.start = arch.bus().next_slot_start(slot.sender, slot.ready);
    slot.finish = arch.bus().transmission_finish(slot.sender, slot.ready,
                                                 app.message(sm.msg).size);
    bus_free = slot.finish;
    root.wcsl = std::max(root.wcsl, slot.finish);
    root.messages.push_back(slot);
  }
  return root;
}

std::string RootSchedule::to_text(const Application& app,
                                  const Architecture& arch) const {
  std::ostringstream out;
  out << "Root schedule (fully transparent recovery):\n";
  for (int n = 0; n < arch.node_count(); ++n) {
    out << "  " << arch.node(NodeId{n}).name << ":";
    std::vector<const RootSlot*> mine;
    for (const RootSlot& s : slots) {
      if (s.node == NodeId{n}) mine.push_back(&s);
    }
    std::sort(mine.begin(), mine.end(),
              [](const RootSlot* a, const RootSlot* b) {
                return a->start < b->start;
              });
    for (const RootSlot* s : mine) {
      out << "  " << app.process(s->ref.process).name;
      if (s->ref.copy > 0) out << "(" << s->ref.copy + 1 << ")";
      out << "@" << s->start << "+slack" << s->slack;
    }
    out << "\n";
  }
  out << "  bus:";
  for (const RootMessageSlot& m : messages) {
    out << "  " << app.message(m.msg).name << "@" << m.start;
  }
  out << "\n  WCSL = " << wcsl << ", " << total_entries() << " entries\n";
  return out.str();
}

RootValidation validate_root_schedule(const Application& app,
                                      const Architecture& arch,
                                      const PolicyAssignment& assignment,
                                      const FaultModel& model,
                                      const RootSchedule& root) {
  (void)arch;
  RootValidation result;
  auto fail = [&](std::string what) {
    result.ok = false;
    result.violations.push_back(std::move(what));
  };

  // Node orders by pinned start.
  // lint: cold-path -- one-shot root-schedule validation, not move eval
  std::map<std::int32_t, std::vector<const RootSlot*>> per_node;
  for (const RootSlot& s : root.slots) {
    per_node[s.node.get()].push_back(&s);
  }
  for (auto& [node, slots] : per_node) {
    std::sort(slots.begin(), slots.end(),
              [](const RootSlot* a, const RootSlot* b) {
                return a->start < b->start;
              });
  }
  // lint: cold-path -- one-shot root-schedule validation, not move eval
  std::map<std::pair<std::int32_t, int>, const RootSlot*> slot_of;
  for (const RootSlot& s : root.slots) {
    slot_of[{s.ref.process.get(), s.ref.copy}] = &s;
  }
  // Pinned message slots by (msg, src copy).
  // lint: cold-path -- one-shot root-schedule validation, not move eval
  std::map<std::pair<std::int32_t, int>, const RootMessageSlot*> msg_slot;
  for (const RootMessageSlot& m : root.messages) {
    msg_slot[{m.msg.get(), m.src_copy}] = &m;
  }

  // Scenario-independent: remote consumers must be pinned after the
  // transmissions that feed them.
  for (const RootMessageSlot& m : root.messages) {
    const Message& msg = app.message(m.msg);
    const ProcessPlan& dp = assignment.plan(msg.dst);
    for (int dj = 0; dj < dp.copy_count(); ++dj) {
      const RootSlot* consumer = slot_of.at({msg.dst.get(), dj});
      if (consumer->node != m.sender && consumer->start < m.finish) {
        fail("consumer " + app.process(msg.dst).name +
             " pinned before transmission of " + msg.name + " completes");
      }
    }
  }

  for (const FaultScenario& scenario :
       enumerate_scenarios(app, assignment, model.k)) {
    Time completion = 0;
    for (const auto& [node, slots] : per_node) {
      for (std::size_t i = 0; i < slots.size(); ++i) {
        const RootSlot& s = *slots[i];
        const Process& proc = app.process(s.ref.process);
        const CopyPlan& cp =
            assignment.plan(s.ref.process)
                .copies[static_cast<std::size_t>(s.ref.copy)];
        RecoveryParams params{proc.wcet_on(s.node), proc.alpha, proc.mu,
                              proc.chi};
        const int f = scenario.faults_on(s.ref);
        const int usable = cp.checkpoints >= 1 ? cp.recoveries : 0;
        Time end;
        if (f <= usable) {
          end = s.start + (cp.checkpoints >= 1
                               ? checkpointed_exec_time(params, cp.checkpoints,
                                                        f)
                               : replica_exec_time(params));
          completion = std::max(completion, end);
          if (proc.local_deadline && end > *proc.local_deadline) {
            fail("local deadline of " + proc.name + " missed in " +
                 scenario.to_string(app));
          }
        } else {
          end = s.start +
                fault_occurrence_offset(params, std::max(cp.checkpoints, 1),
                                        usable + 1) +
                params.alpha;
        }
        if (i + 1 < slots.size() && end > slots[i + 1]->start) {
          fail("recovery of " + proc.name + " overruns the slack before " +
               app.process(slots[i + 1]->ref.process).name + " in " +
               scenario.to_string(app));
        }
        // Data readiness of pinned transmissions from this copy.
        if (f <= usable) {
          for (MessageId mid : app.outputs(s.ref.process)) {
            auto it = msg_slot.find({mid.get(), s.ref.copy});
            if (it != msg_slot.end() && end > it->second->ready) {
              fail("message " + app.message(mid).name +
                   " not ready by its pinned slot in " +
                   scenario.to_string(app));
            }
          }
        }
      }
    }
    if (completion > app.deadline()) {
      fail("deadline missed in " + scenario.to_string(app));
    }
  }

  // Transparency by construction: every copy has exactly one slot.
  for (const RootSlot& s : root.slots) {
    if (!slot_of.count({s.ref.process.get(), s.ref.copy})) {
      fail("internal: missing slot");
    }
  }
  return result;
}

}  // namespace ftes
